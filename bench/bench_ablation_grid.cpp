// Ablation: virtual grid shape p x q for a fixed 60-node machine (the
// paper fixes 15 x 4 after tuning, §V-A). Sweeps the factorizations of 60.
#include <iostream>

#include "bench_util.hpp"
#include "core/algorithms.hpp"

using namespace hqr;

int main(int argc, char** argv) {
  Cli cli(argc, argv, {{"b", "280"}, {"csv", ""}});
  const int b = static_cast<int>(cli.integer("b"));

  SimOptions opts;
  opts.platform = Platform::edel();
  opts.b = b;

  TextTable table({"case", "p", "q", "GFlop/s", "% peak", "messages"});
  struct Case {
    const char* name;
    long long m, n;
  };
  for (const Case& c : {Case{"tall-skinny", 286720, 4480},
                        Case{"square", 33600, 33600}}) {
    const int mt = static_cast<int>((c.m + b - 1) / b);
    const int nt = static_cast<int>((c.n + b - 1) / b);
    for (auto [p, q] : {std::pair{60, 1}, std::pair{30, 2}, std::pair{20, 3},
                        std::pair{15, 4}, std::pair{10, 6}, std::pair{6, 10},
                        std::pair{4, 15}, std::pair{1, 60}}) {
      HqrConfig cfg{p, 4, TreeKind::Fibonacci, TreeKind::Fibonacci, true};
      SimResult r =
          simulate_algorithm(make_hqr_run(mt, nt, cfg, q), c.m, c.n, opts);
      table.row()
          .add(c.name)
          .add(p)
          .add(q)
          .add(r.gflops, 5)
          .add(100.0 * r.peak_fraction, 3)
          .add(r.messages);
    }
  }
  bench::emit(table, cli, "Ablation: virtual grid shape on 60 nodes");
  return 0;
}
