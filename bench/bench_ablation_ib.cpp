// Ablation: inner blocking (ib) of the tile kernels. The plain full-T
// kernels pay an extra O(b^3) in every MQR application; the production
// inner-blocked variants reduce the T-multiply to O(ib b^2). This bench
// measures the real kernel rates across ib — the from-scratch analogue of
// the PLASMA ib tuning that underlies the paper's 7.21 / 6.28 GFlop/s
// kernel measurements.
#include <functional>
#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "kernels/ib_kernels.hpp"
#include "kernels/weights.hpp"
#include "linalg/random_matrix.hpp"

using namespace hqr;

namespace {

double time_loop(int reps, const std::function<void()>& fn) {
  Stopwatch sw;
  for (int r = 0; r < reps; ++r) fn();
  return sw.seconds() / reps;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv, {{"b", "128"}, {"reps", "5"}, {"csv", ""}});
  const int b = static_cast<int>(cli.integer("b"));
  const int reps = static_cast<int>(cli.integer("reps"));

  Rng rng(3);
  TileWorkspace ws(b);
  Matrix t(b, b);

  TextTable table({"kernel", "ib", "ms", "GFlop/s"});
  for (int ib : {8, 16, 32, 0}) {  // 0 = plain full-T kernels
    if (ib > b) continue;
    // TSMQR: the dominant update kernel.
    {
      Matrix a1 = random_gaussian(b, b, rng);
      Matrix a2 = random_gaussian(b, b, rng);
      if (ib == 0)
        tsqrt(a1.view(), a2.view(), t.view(), ws);
      else
        tsqrt_ib(a1.view(), a2.view(), t.view(), ib, ws);
      Matrix c1 = random_gaussian(b, b, rng);
      Matrix c2 = random_gaussian(b, b, rng);
      const double secs = time_loop(reps, [&] {
        if (ib == 0)
          tsmqr(c1.view(), c2.view(), a2.view(), t.view(), Trans::Yes, ws);
        else
          tsmqr_ib(c1.view(), c2.view(), a2.view(), t.view(), ib, Trans::Yes,
                   ws);
      });
      table.row()
          .add("TSMQR")
          .add(ib == 0 ? "full-T" : std::to_string(ib))
          .add(secs * 1e3, 4)
          .add(kernel_flops(KernelType::TSMQR, b) / secs / 1e9, 4);
    }
    // TTMQR: the TT update kernel.
    {
      Matrix a1 = random_gaussian(b, b, rng);
      Matrix a2 = random_gaussian(b, b, rng);
      if (ib == 0)
        ttqrt(a1.view(), a2.view(), t.view(), ws);
      else
        ttqrt_ib(a1.view(), a2.view(), t.view(), ib, ws);
      Matrix c1 = random_gaussian(b, b, rng);
      Matrix c2 = random_gaussian(b, b, rng);
      const double secs = time_loop(reps, [&] {
        if (ib == 0)
          ttmqr(c1.view(), c2.view(), a2.view(), t.view(), Trans::Yes, ws);
        else
          ttmqr_ib(c1.view(), c2.view(), a2.view(), t.view(), ib, Trans::Yes,
                   ws);
      });
      table.row()
          .add("TTMQR")
          .add(ib == 0 ? "full-T" : std::to_string(ib))
          .add(secs * 1e3, 4)
          .add(kernel_flops(KernelType::TTMQR, b) / secs / 1e9, 4);
    }
  }
  bench::emit(table, cli, "Inner-blocking ablation (real kernels)");
  std::cout << "\nNote: GFlop/s uses the paper's nominal flop count "
               "(weight * b^3 / 3); full-T kernels execute ~25% more real "
               "flops, which is exactly the overhead ib removes.\n";
  return 0;
}
