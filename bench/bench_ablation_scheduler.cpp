// Ablation: scheduler priority policy and network-model components in the
// cluster simulator (DESIGN.md's design-choice ablations). Shows how much of
// HQR's simulated performance comes from critical-path priorities, NIC
// serialization and the communication-thread CPU model.
#include <iostream>

#include "bench_util.hpp"
#include "core/algorithms.hpp"
#include "obs/obs_cli.hpp"

using namespace hqr;

int main(int argc, char** argv) {
  Cli cli(argc, argv, obs::with_obs_flags({{"b", "280"}, {"csv", ""}}));
  const int b = static_cast<int>(cli.integer("b"));
  const int p = 15, q = 4;

  TextTable table({"case", "algorithm", "priority", "nic", "comm-cpu",
                   "GFlop/s", "% peak"});
  struct Case {
    const char* name;
    long long m, n;
  };
  for (const Case& c : {Case{"tall-skinny", 286720, 4480},
                        Case{"square", 33600, 33600}}) {
    const int mt = static_cast<int>((c.m + b - 1) / b);
    const int nt = static_cast<int>((c.n + b - 1) / b);
    HqrConfig cfg{p, 4, TreeKind::Fibonacci, TreeKind::Fibonacci, true};
    const AlgorithmRun runs[] = {make_hqr_run(mt, nt, cfg, q),
                                 make_bbd10_run(mt, nt, p, q)};
    for (const auto& run : runs) {
      for (bool priority : {true, false}) {
        for (bool nic : {true, false}) {
          for (bool comm_cpu : {true, false}) {
            SimOptions opts;
            opts.platform = Platform::edel();
            opts.b = b;
            opts.priority_scheduling = priority;
            opts.nic_contention = nic;
            opts.comm_thread_steal = comm_cpu;
            SimResult r = simulate_algorithm(run, c.m, c.n, opts);
            table.row()
                .add(c.name)
                .add(run.name)
                .add(priority ? "cp" : "fifo")
                .add(nic ? "on" : "off")
                .add(comm_cpu ? "on" : "off")
                .add(r.gflops, 5)
                .add(100.0 * r.peak_fraction, 3);
          }
        }
      }
    }
  }
  bench::emit(table, cli, "Ablation: scheduler and network model");

  // Observability pass on a scaled-down tall-skinny HQR run (the full-size
  // sweeps above would produce multi-hundred-MB traces).
  obs::ObsSession obs(cli);
  if (obs.any_enabled() || obs.report_requested()) {
    const int mt = 96, nt = 16;
    HqrConfig cfg{p, 4, TreeKind::Fibonacci, TreeKind::Fibonacci, true};
    AlgorithmRun run = make_hqr_run(mt, nt, cfg, q);
    SimOptions opts;
    opts.platform = Platform::edel();
    opts.b = b;
    opts.trace = obs.trace();
    opts.metrics = obs.metrics();
    simulate_algorithm(run, static_cast<long long>(mt) * b,
                       static_cast<long long>(nt) * b, opts);
    std::cout << "\nobservability pass (" << run.name << ", " << mt << "x"
              << nt << " tiles):\n";
    TaskGraph graph(expand_to_kernels(run.list, mt, nt), mt, nt);
    obs.finish(&graph);
  }
  return 0;
}
