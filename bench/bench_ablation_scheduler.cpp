// Ablation: scheduler priority policy and network-model components in the
// cluster simulator (DESIGN.md's design-choice ablations). Shows how much of
// HQR's simulated performance comes from critical-path priorities, NIC
// serialization and the communication-thread CPU model.
#include <iostream>

#include "bench_util.hpp"
#include "core/algorithms.hpp"

using namespace hqr;

int main(int argc, char** argv) {
  Cli cli(argc, argv, {{"b", "280"}, {"csv", ""}});
  const int b = static_cast<int>(cli.integer("b"));
  const int p = 15, q = 4;

  TextTable table({"case", "algorithm", "priority", "nic", "comm-cpu",
                   "GFlop/s", "% peak"});
  struct Case {
    const char* name;
    long long m, n;
  };
  for (const Case& c : {Case{"tall-skinny", 286720, 4480},
                        Case{"square", 33600, 33600}}) {
    const int mt = static_cast<int>((c.m + b - 1) / b);
    const int nt = static_cast<int>((c.n + b - 1) / b);
    HqrConfig cfg{p, 4, TreeKind::Fibonacci, TreeKind::Fibonacci, true};
    const AlgorithmRun runs[] = {make_hqr_run(mt, nt, cfg, q),
                                 make_bbd10_run(mt, nt, p, q)};
    for (const auto& run : runs) {
      for (bool priority : {true, false}) {
        for (bool nic : {true, false}) {
          for (bool comm_cpu : {true, false}) {
            SimOptions opts;
            opts.platform = Platform::edel();
            opts.b = b;
            opts.priority_scheduling = priority;
            opts.nic_contention = nic;
            opts.comm_thread_steal = comm_cpu;
            SimResult r = simulate_algorithm(run, c.m, c.n, opts);
            table.row()
                .add(c.name)
                .add(run.name)
                .add(priority ? "cp" : "fifo")
                .add(nic ? "on" : "off")
                .add(comm_cpu ? "on" : "off")
                .add(r.gflops, 5)
                .add(100.0 * r.peak_fraction, 3);
          }
        }
      }
    }
  }
  bench::emit(table, cli, "Ablation: scheduler and network model");
  return 0;
}
