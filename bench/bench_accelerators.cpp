// Future-work experiment (§VI): HQR on nodes equipped with accelerators.
// Update kernels (the GEMM-rich 85%+ of the flops) offload to per-node
// accelerators; panel factorization stays on the CPU cores. Sweeps the
// accelerator count and reports the speedup and where the CPU panel chain
// becomes the bottleneck.
#include <iostream>

#include "bench_util.hpp"
#include "core/algorithms.hpp"

using namespace hqr;

int main(int argc, char** argv) {
  Cli cli(argc, argv, {{"b", "280"}, {"csv", ""}});
  const int b = static_cast<int>(cli.integer("b"));
  const int p = 15, q = 4;

  TextTable table({"case", "accels/node", "GFlop/s", "speedup vs 0",
                   "core util", "accel util"});
  struct Case {
    const char* name;
    long long m, n;
  };
  for (const Case& c : {Case{"tall-skinny", 143360, 4480},
                        Case{"square", 33600, 33600}}) {
    const int mt = static_cast<int>((c.m + b - 1) / b);
    const int nt = static_cast<int>((c.n + b - 1) / b);
    HqrConfig cfg{p, 4, TreeKind::Fibonacci, TreeKind::Fibonacci, true};
    auto run = make_hqr_run(mt, nt, cfg, q);
    double base = 0.0;
    for (int accels : {0, 1, 2, 4}) {
      SimOptions opts;
      opts.platform = Platform::edel();
      opts.platform.accels_per_node = accels;
      opts.b = b;
      SimResult r = simulate_algorithm(run, c.m, c.n, opts);
      if (accels == 0) base = r.seconds;
      table.row()
          .add(c.name)
          .add(accels)
          .add(r.gflops, 5)
          .add(base / r.seconds, 4)
          .add(r.core_utilization, 3)
          .add(r.accel_utilization, 3);
    }
  }
  bench::emit(table, cli, "Accelerator extension (paper future work)");
  std::cout << "\nNote: GFlop/s can exceed the CPU-only theoretical peak "
               "(4358 GFlop/s) once accelerators carry the update flops; "
               "the panel chain on the CPU caps the scaling.\n";
  return 0;
}
