// Critical-path analysis across trees and shapes, including the §V-B claim
// that on the 68 x 16 local matrix of the largest tall-skinny run the
// flat-tree critical path is ~2.6x the greedy one.
#include <iostream>

#include "bench_util.hpp"
#include "dag/task_graph.hpp"
#include "trees/hqr_tree.hpp"
#include "trees/single_level.hpp"

using namespace hqr;

namespace {

TaskGraph graph_for(const EliminationList& list, int mt, int nt) {
  return TaskGraph(expand_to_kernels(list, mt, nt), mt, nt);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv, {{"csv", ""}});

  TextTable table({"mt", "nt", "algorithm", "tasks", "unit CP",
                   "weighted CP (b^3/3)"});
  for (auto [mt, nt] : {std::pair{68, 16}, std::pair{128, 8},
                        std::pair{64, 64}, std::pair{256, 4}}) {
    struct Entry {
      std::string name;
      EliminationList list;
    };
    HqrConfig hqr_cfg{4, 2, TreeKind::Greedy, TreeKind::Fibonacci, true};
    const Entry entries[] = {
        {"flat TS", flat_ts_list(mt, nt)},
        {"flat TT", per_panel_tree_list(TreeKind::Flat, mt, nt)},
        {"binary", per_panel_tree_list(TreeKind::Binary, mt, nt)},
        {"fibonacci", per_panel_tree_list(TreeKind::Fibonacci, mt, nt)},
        {"greedy", greedy_global_list(mt, nt).list},
        {"hqr p=4 a=2", hqr_elimination_list(mt, nt, hqr_cfg)},
    };
    double flat_cp = 0.0, greedy_cp = 0.0;
    for (const auto& e : entries) {
      TaskGraph g = graph_for(e.list, mt, nt);
      const double wcp = g.critical_path(unit_weight_duration);
      if (e.name == "flat TT") flat_cp = wcp;
      if (e.name == "greedy") greedy_cp = wcp;
      table.row()
          .add(mt)
          .add(nt)
          .add(e.name)
          .add(g.size())
          .add(g.unit_critical_path())
          .add(wcp, 6);
    }
    if (mt == 68 && nt == 16) {
      std::cout << "68 x 16 (paper §V-B local matrix): flat/greedy critical "
                   "path ratio = "
                << flat_cp / greedy_cp << " (paper model predicts ~2.6)\n";
    }
  }
  bench::emit(table, cli, "Critical paths per algorithm");
  return 0;
}
