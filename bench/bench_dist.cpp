// Distributed-runtime benchmark: factor the same matrix while trading
// ranks for threads at a fixed total core count (e.g. 8 cores as 1x8,
// 2x4, 4x2, 8x1 ranks x threads). Each configuration forks real worker
// processes over the local socket mesh, so the measured makespan includes
// genuine message traffic; the messages/bytes columns show the price of
// distributing the DAG (they match the cluster simulator's model count by
// construction). Pass --json=PATH for machine-readable results including
// each rank's idle time.
//
// Every configuration runs in forked children, so results cross process
// boundaries via a small fragment file written by rank 0 and re-read by
// the parent.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "dag/partition.hpp"
#include "distrun/dist_exec.hpp"
#include "linalg/random_matrix.hpp"
#include "net/launcher.hpp"
#include "obs/metrics.hpp"
#include "trees/hqr_tree.hpp"

using namespace hqr;

namespace {

// Near-square process grid for `ranks` nodes (largest divisor <= sqrt).
void pick_grid(int ranks, int* p, int* q) {
  *p = 1;
  for (int d = 1; d * d <= ranks; ++d)
    if (ranks % d == 0) *p = d;
  *q = ranks / *p;
}

struct ConfigResult {
  int ranks = 0;
  int threads = 0;
  double seconds = 0.0;
  long long messages = 0;
  long long bytes = 0;
  std::vector<double> idle;  // per-rank worker idle seconds (summed)
  std::vector<double> busy;
};

// One line per field; parsed back by the parent after run_ranks returns.
void write_fragment(const std::string& path, const distrun::DistStats& s) {
  std::ofstream out(path);
  HQR_CHECK(out.good(), "cannot write " << path);
  out.precision(17);
  long long msgs = 0, bytes = 0;
  std::ostringstream idle, busy;
  for (const distrun::DistRankStats& r : s.ranks) {
    msgs += r.data_messages_sent;
    bytes += r.data_bytes_sent;
    idle << ' ' << r.idle_seconds;
    busy << ' ' << r.busy_seconds;
  }
  out << "seconds " << s.seconds << "\nmessages " << msgs << "\nbytes "
      << bytes << "\nidle" << idle.str() << "\nbusy" << busy.str() << "\n";
  HQR_CHECK(out.good(), "write to " << path << " failed");
}

ConfigResult read_fragment(const std::string& path) {
  std::ifstream in(path);
  HQR_CHECK(in.good(), "missing bench fragment " << path);
  ConfigResult r;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "seconds") ls >> r.seconds;
    if (key == "messages") ls >> r.messages;
    if (key == "bytes") ls >> r.bytes;
    for (double v; (key == "idle" || key == "busy") && (ls >> v);)
      (key == "idle" ? r.idle : r.busy).push_back(v);
  }
  return r;
}

void write_json(const std::string& path, int m, int n, int b, int cores,
                const std::vector<ConfigResult>& rows) {
  std::ofstream out(path);
  HQR_CHECK(out.good(), "cannot write " << path);
  out << "{\n  \"schema\": \"hqr-bench-dist-v1\",\n"
      << "  \"m\": " << m << ", \"n\": " << n << ", \"b\": " << b
      << ", \"total_cores\": " << cores << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ConfigResult& r = rows[i];
    out << "    {\"ranks\": " << r.ranks << ", \"threads\": " << r.threads
        << ", \"seconds\": " << r.seconds << ", \"messages\": " << r.messages
        << ", \"bytes\": " << r.bytes << ", \"idle_seconds\": [";
    for (std::size_t k = 0; k < r.idle.size(); ++k)
      out << (k ? ", " : "") << r.idle[k];
    out << "], \"busy_seconds\": [";
    for (std::size_t k = 0; k < r.busy.size(); ++k)
      out << (k ? ", " : "") << r.busy[k];
    out << "]}" << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::cout << "(json written to " << path << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv, {{"m", "1024"},
                       {"n", "1024"},
                       {"b", "128"},
                       {"cores", "8"},
                       {"p", "4"},
                       {"a", "2"},
                       {"low", "greedy"},
                       {"high", "fibonacci"},
                       {"domino", "true"},
                       {"ib", "0"},
                       {"timeout", "300"},
                       {"json", ""},
                       {"csv", ""}});
  const int m = static_cast<int>(cli.integer("m"));
  const int n = static_cast<int>(cli.integer("n"));
  const int b = static_cast<int>(cli.integer("b"));
  const int cores = static_cast<int>(cli.integer("cores"));
  const std::string fragment = "bench_dist_fragment.tmp";

  std::vector<ConfigResult> rows;
  TextTable table({"ranks", "grid", "threads", "seconds", "messages",
                   "MB sent", "max idle s"});
  for (int ranks = 1; ranks <= cores; ranks *= 2) {
    const int threads = cores / ranks;
    int gp = 0, gq = 0;
    pick_grid(ranks, &gp, &gq);

    const auto rank_main = [&](net::Comm& comm) -> int {
      Rng rng(11);
      Matrix a = random_gaussian(m, n, rng);
      const TiledMatrix probe = TiledMatrix::from_matrix(a, b);
      HqrConfig cfg;
      cfg.p = static_cast<int>(cli.integer("p"));
      cfg.a = static_cast<int>(cli.integer("a"));
      cfg.low = tree_from_name(cli.str("low"));
      cfg.high = tree_from_name(cli.str("high"));
      cfg.domino = cli.flag("domino");
      EliminationList list = hqr_elimination_list(probe.mt(), probe.nt(), cfg);
      const Distribution dist = Distribution::block_cyclic_2d(gp, gq);

      distrun::DistOptions opts;
      opts.threads = threads;
      opts.ib = static_cast<int>(cli.integer("ib"));
      opts.progress_timeout_seconds =
          static_cast<double>(cli.integer("timeout"));
      // Attach a metrics sink so the executor records per-worker busy/idle
      // (unobserved runs skip that bookkeeping, like RunStats).
      obs::MetricsRegistry metrics;
      opts.metrics = &metrics;

      distrun::DistStats stats;
      QRFactors f =
          distrun::dist_qr_factorize(comm, a, b, list, dist, opts, &stats);
      (void)f;
      if (comm.rank() == 0) write_fragment(fragment, stats);
      return 0;
    };

    net::LaunchOptions lopts;
    lopts.timeout_seconds = 2.0 * static_cast<double>(cli.integer("timeout"));
    const int rc = net::run_ranks(ranks, rank_main, lopts);
    HQR_CHECK(rc == 0, "distributed run failed for ranks=" << ranks
                                                           << " (exit " << rc
                                                           << ")");
    ConfigResult r = read_fragment(fragment);
    r.ranks = ranks;
    r.threads = threads;
    double max_idle = 0.0;
    for (double v : r.idle) max_idle = std::max(max_idle, v);
    table.row()
        .add(ranks)
        .add(std::to_string(gp) + "x" + std::to_string(gq))
        .add(threads)
        .add(r.seconds, 4)
        .add(r.messages)
        .add(static_cast<double>(r.bytes) / 1e6, 2)
        .add(max_idle, 4);
    rows.push_back(std::move(r));
  }
  std::remove(fragment.c_str());

  bench::emit(table, cli,
              "Distributed runtime: ranks vs threads at " +
                  std::to_string(cores) + " total cores");
  if (!cli.str("json").empty())
    write_json(cli.str("json"), m, n, b, cores, rows);
  return 0;
}
