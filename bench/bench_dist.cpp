// Distributed-runtime benchmark: factor the same matrix while trading
// ranks for threads at a fixed total core count (e.g. 8 cores as 1x8,
// 2x4, 4x2, 8x1 ranks x threads). Each configuration forks real worker
// processes over the local socket mesh, so the measured makespan includes
// genuine message traffic; the messages/bytes columns show the price of
// distributing the DAG (they match the cluster simulator's model count by
// construction). Pass --json=PATH for machine-readable results
// (hqr-bench-dist-v2, see EXPERIMENTS.md): per-configuration totals plus a
// per_rank breakdown with busy/idle seconds, the longest Data-starvation
// gap (max_recv_wait_seconds) and wire message counts by tag. Pass
// --progress to stream live per-rank telemetry to stderr while each
// configuration runs. --transport=unix|tcp picks the rank mesh wiring and
// --bcast=binomial|eager the tile broadcast shape (see dist_exec.hpp);
// neither changes the total message count, only where time and sends land.
//
// Every configuration runs in forked children, so results cross process
// boundaries via a small fragment file written by rank 0 and re-read by
// the parent.
#include <algorithm>
#include <array>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "dag/partition.hpp"
#include "distrun/dist_exec.hpp"
#include "linalg/random_matrix.hpp"
#include "net/launcher.hpp"
#include "obs/metrics.hpp"
#include "trees/hqr_tree.hpp"

using namespace hqr;

namespace {

// Near-square process grid for `ranks` nodes (largest divisor <= sqrt).
void pick_grid(int ranks, int* p, int* q) {
  *p = 1;
  for (int d = 1; d * d <= ranks; ++d)
    if (ranks % d == 0) *p = d;
  *q = ranks / *p;
}

struct ConfigResult {
  int ranks = 0;
  int threads = 0;
  double seconds = 0.0;
  long long messages = 0;
  long long bytes = 0;
  std::vector<double> idle;  // per-rank worker idle seconds (summed)
  std::vector<double> busy;
  std::vector<distrun::DistRankStats> per_rank;
};

// One line per field; parsed back by the parent after run_ranks returns.
// Per-rank stats ride as one positional "rank ..." line each.
void write_fragment(const std::string& path, const distrun::DistStats& s) {
  std::ofstream out(path);
  HQR_CHECK(out.good(), "cannot write " << path);
  out.precision(17);
  long long msgs = 0, bytes = 0;
  std::ostringstream idle, busy;
  for (const distrun::DistRankStats& r : s.ranks) {
    msgs += r.data_messages_sent;
    bytes += r.data_bytes_sent;
    idle << ' ' << r.idle_seconds;
    busy << ' ' << r.busy_seconds;
  }
  out << "seconds " << s.seconds << "\nmessages " << msgs << "\nbytes "
      << bytes << "\nidle" << idle.str() << "\nbusy" << busy.str() << "\n";
  for (const distrun::DistRankStats& r : s.ranks) {
    out << "rank " << r.rank << ' ' << r.threads << ' ' << r.tasks << ' '
        << r.data_messages_sent << ' ' << r.data_bytes_sent << ' '
        << r.data_messages_recv << ' ' << r.data_bytes_recv << ' '
        << r.busy_seconds << ' ' << r.idle_seconds << ' '
        << r.max_recv_wait_seconds;
    for (long long v : r.messages_sent_by_tag) out << ' ' << v;
    for (long long v : r.messages_recv_by_tag) out << ' ' << v;
    out << '\n';
  }
  HQR_CHECK(out.good(), "write to " << path << " failed");
}

ConfigResult read_fragment(const std::string& path) {
  std::ifstream in(path);
  HQR_CHECK(in.good(), "missing bench fragment " << path);
  ConfigResult r;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "seconds") ls >> r.seconds;
    if (key == "messages") ls >> r.messages;
    if (key == "bytes") ls >> r.bytes;
    for (double v; (key == "idle" || key == "busy") && (ls >> v);)
      (key == "idle" ? r.idle : r.busy).push_back(v);
    if (key == "rank") {
      distrun::DistRankStats rs;
      ls >> rs.rank >> rs.threads >> rs.tasks >> rs.data_messages_sent >>
          rs.data_bytes_sent >> rs.data_messages_recv >> rs.data_bytes_recv >>
          rs.busy_seconds >> rs.idle_seconds >> rs.max_recv_wait_seconds;
      for (long long& v : rs.messages_sent_by_tag) ls >> v;
      for (long long& v : rs.messages_recv_by_tag) ls >> v;
      HQR_CHECK(ls, "malformed rank line in " << path << ": '" << line << "'");
      r.per_rank.push_back(rs);
    }
  }
  return r;
}

void write_tag_counts(std::ofstream& out, const char* name,
                      const std::array<long long, net::kTagCount>& counts) {
  out << "\"" << name << "\": {";
  bool first = true;
  for (int t = 1; t < net::kTagCount; ++t) {
    out << (first ? "" : ", ") << "\""
        << net::tag_name(static_cast<net::Tag>(t))
        << "\": " << counts[static_cast<std::size_t>(t)];
    first = false;
  }
  out << "}";
}

void write_json(const std::string& path, int m, int n, int b, int cores,
                const std::vector<ConfigResult>& rows) {
  std::ofstream out(path);
  HQR_CHECK(out.good(), "cannot write " << path);
  out << "{\n  \"schema\": \"hqr-bench-dist-v2\",\n"
      << "  \"m\": " << m << ", \"n\": " << n << ", \"b\": " << b
      << ", \"total_cores\": " << cores << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ConfigResult& r = rows[i];
    out << "    {\"ranks\": " << r.ranks << ", \"threads\": " << r.threads
        << ", \"seconds\": " << r.seconds << ", \"messages\": " << r.messages
        << ", \"bytes\": " << r.bytes << ", \"idle_seconds\": [";
    for (std::size_t k = 0; k < r.idle.size(); ++k)
      out << (k ? ", " : "") << r.idle[k];
    out << "], \"busy_seconds\": [";
    for (std::size_t k = 0; k < r.busy.size(); ++k)
      out << (k ? ", " : "") << r.busy[k];
    out << "], \"per_rank\": [";
    for (std::size_t k = 0; k < r.per_rank.size(); ++k) {
      const distrun::DistRankStats& rs = r.per_rank[k];
      out << (k ? "," : "") << "\n      {\"rank\": " << rs.rank
          << ", \"threads\": " << rs.threads << ", \"tasks\": " << rs.tasks
          << ", \"data_messages_sent\": " << rs.data_messages_sent
          << ", \"data_bytes_sent\": " << rs.data_bytes_sent
          << ", \"data_messages_recv\": " << rs.data_messages_recv
          << ", \"data_bytes_recv\": " << rs.data_bytes_recv
          << ", \"busy_seconds\": " << rs.busy_seconds
          << ", \"idle_seconds\": " << rs.idle_seconds
          << ", \"max_recv_wait_seconds\": " << rs.max_recv_wait_seconds
          << ", ";
      write_tag_counts(out, "messages_sent_by_tag", rs.messages_sent_by_tag);
      out << ", ";
      write_tag_counts(out, "messages_recv_by_tag", rs.messages_recv_by_tag);
      out << "}";
    }
    out << "\n    ]}" << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::cout << "(json written to " << path << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv, {{"m", "1024"},
                       {"n", "1024"},
                       {"b", "128"},
                       {"cores", "8"},
                       {"p", "4"},
                       {"a", "2"},
                       {"low", "greedy"},
                       {"high", "fibonacci"},
                       {"domino", "true"},
                       {"ib", "0"},
                       {"transport", "unix"},
                       {"bcast", "binomial"},
                       {"timeout", "300"},
                       {"json", ""},
                       {"csv", ""},
                       {"progress", "false"}});
  const int m = static_cast<int>(cli.integer("m"));
  const int n = static_cast<int>(cli.integer("n"));
  const int b = static_cast<int>(cli.integer("b"));
  const int cores = static_cast<int>(cli.integer("cores"));
  const std::string fragment = "bench_dist_fragment.tmp";

  std::vector<ConfigResult> rows;
  TextTable table({"ranks", "grid", "threads", "seconds", "messages",
                   "MB sent", "max idle s", "max wait s"});
  for (int ranks = 1; ranks <= cores; ranks *= 2) {
    const int threads = cores / ranks;
    int gp = 0, gq = 0;
    pick_grid(ranks, &gp, &gq);

    const auto rank_main = [&](net::Comm& comm) -> int {
      Rng rng(11);
      Matrix a = random_gaussian(m, n, rng);
      const TiledMatrix probe = TiledMatrix::from_matrix(a, b);
      HqrConfig cfg;
      cfg.p = static_cast<int>(cli.integer("p"));
      cfg.a = static_cast<int>(cli.integer("a"));
      cfg.low = tree_from_name(cli.str("low"));
      cfg.high = tree_from_name(cli.str("high"));
      cfg.domino = cli.flag("domino");
      EliminationList list = hqr_elimination_list(probe.mt(), probe.nt(), cfg);
      const Distribution dist = Distribution::block_cyclic_2d(gp, gq);

      distrun::DistOptions opts;
      opts.threads = threads;
      opts.ib = static_cast<int>(cli.integer("ib"));
      opts.broadcast = cli.str("bcast") == "eager" ? BroadcastKind::Eager
                                                   : BroadcastKind::Binomial;
      opts.progress_timeout_seconds =
          static_cast<double>(cli.integer("timeout"));
      // Attach a metrics sink so the executor records per-worker busy/idle
      // (unobserved runs skip that bookkeeping, like RunStats).
      obs::MetricsRegistry metrics;
      opts.metrics = &metrics;
      if (cli.flag("progress")) {
        opts.telemetry_interval_seconds = 0.5;
        if (comm.rank() == 0) {
          opts.on_telemetry = [](const distrun::DistTelemetry& t) {
            std::fprintf(stderr,
                         "[progress] rank %d: %lld/%lld tasks, sendq %lld "
                         "frames, data %lld out / %lld in\n",
                         t.rank, t.tasks_done, t.tasks_total,
                         t.send_queue_frames, t.data_messages_sent,
                         t.data_messages_recv);
          };
        }
      }

      distrun::DistStats stats;
      QRFactors f =
          distrun::dist_qr_factorize(comm, a, b, list, dist, opts, &stats);
      (void)f;
      if (comm.rank() == 0) write_fragment(fragment, stats);
      return 0;
    };

    net::LaunchOptions lopts;
    lopts.timeout_seconds = 2.0 * static_cast<double>(cli.integer("timeout"));
    lopts.transport.kind = cli.str("transport");
    const int rc = net::run_ranks(ranks, rank_main, lopts);
    HQR_CHECK(rc == 0, "distributed run failed for ranks=" << ranks
                                                           << " (exit " << rc
                                                           << ")");
    ConfigResult r = read_fragment(fragment);
    r.ranks = ranks;
    r.threads = threads;
    double max_idle = 0.0;
    for (double v : r.idle) max_idle = std::max(max_idle, v);
    double max_wait = 0.0;
    for (const distrun::DistRankStats& rs : r.per_rank)
      max_wait = std::max(max_wait, rs.max_recv_wait_seconds);
    table.row()
        .add(ranks)
        .add(std::to_string(gp) + "x" + std::to_string(gq))
        .add(threads)
        .add(r.seconds, 4)
        .add(r.messages)
        .add(static_cast<double>(r.bytes) / 1e6, 2)
        .add(max_idle, 4)
        .add(max_wait, 4);
    rows.push_back(std::move(r));
  }
  std::remove(fragment.c_str());

  bench::emit(table, cli,
              "Distributed runtime: ranks vs threads at " +
                  std::to_string(cores) + " total cores");
  if (!cli.str("json").empty())
    write_json(cli.str("json"), m, n, b, cores, rows);
  return 0;
}
