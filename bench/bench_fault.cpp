// Chaos sweep on the cluster simulator: inject a deterministic rank kill
// into 1k-4k-node HQR runs across high-level tree shapes and report what
// recovery costs — makespan inflation over the fault-free run, tasks the
// replacement re-executes, frames the survivors replay and the duplicates
// the replacement re-posts. The same FaultPlan grammar drives the real
// runtime (fault/plan.hpp), so the deterministic quantities cross-validate
// against a measured run (examples/fault_quickstart.cpp): tasks_reexecuted
// equals the victim partition's task count exactly under both.
//
// Pass --json=PATH for machine-readable results (hqr-bench-fault-v1,
// consumed by tools/bench_compare.py).
#include <iostream>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/algorithms.hpp"
#include "fault/plan.hpp"

using namespace hqr;

namespace {

// Near-square grid for `nodes` (largest divisor <= sqrt).
void pick_grid(int nodes, int* p, int* q) {
  *p = 1;
  for (int d = 1; d * d <= nodes; ++d)
    if (nodes % d == 0) *p = d;
  *q = nodes / *p;
}

struct Row {
  int nodes = 0, p = 0, q = 0, mt = 0, nt = 0;
  std::string high;
  int victim = 0;
  long long at_task = 0;
  SimResult base, faulty;
};

void write_json(const std::string& path, int b, long long at,
                double restart_seconds, const std::vector<Row>& rows) {
  std::ofstream out(path);
  HQR_CHECK(out.good(), "cannot write " << path);
  out.precision(17);
  out << "{\n  \"schema\": \"hqr-bench-fault-v1\",\n"
      << "  \"b\": " << b << ", \"at_task\": " << at
      << ", \"restart_seconds\": " << restart_seconds << ",\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const double inflation =
        r.base.seconds > 0 ? r.faulty.seconds / r.base.seconds - 1.0 : 0.0;
    out << "    {\"nodes\": " << r.nodes << ", \"grid\": \"" << r.p << "x"
        << r.q << "\", \"high\": \"" << r.high << "\", \"mt\": " << r.mt
        << ", \"nt\": " << r.nt << ", \"tasks\": " << r.base.tasks
        << ", \"victim\": " << r.victim << ", \"kill_seconds\": "
        << r.faulty.kill_seconds << ",\n     \"base_seconds\": "
        << r.base.seconds << ", \"fault_seconds\": " << r.faulty.seconds
        << ", \"recovery_inflation\": " << inflation
        << ",\n     \"tasks_lost\": " << r.faulty.tasks_lost
        << ", \"tasks_reexecuted\": " << r.faulty.tasks_reexecuted
        << ", \"messages_replayed\": " << r.faulty.messages_replayed
        << ", \"messages_resent\": " << r.faulty.messages_resent
        << ", \"base_messages\": " << r.base.messages
        << ", \"fault_messages\": " << r.faulty.messages << "}"
        << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::cout << "(json written to " << path << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv, {{"b", "280"},
                       {"a", "4"},
                       {"at", "3"},
                       {"restart", "0.05"},
                       {"bcast", "binomial"},
                       {"json", ""},
                       {"csv", ""},
                       {"quick", "false"}});
  const int b = static_cast<int>(cli.integer("b"));
  const long long at = cli.integer("at");
  const double restart_seconds = std::stod(cli.str("restart"));

  std::vector<int> node_counts = {1024, 2048, 4096};
  if (cli.flag("quick")) node_counts = {1024};

  std::vector<Row> rows;
  TextTable table({"nodes", "grid", "high", "tasks", "base s", "fault s",
                   "inflation %", "re-exec", "replayed", "resent"});
  for (TreeKind high :
       {TreeKind::Greedy, TreeKind::Binary, TreeKind::Flat}) {
    for (int nodes : node_counts) {
      int p = 0, q = 0;
      pick_grid(nodes, &p, &q);
      // ~4 tile rows per grid row and one tile column per grid column keeps
      // every node populated while the task count stays tractable at 4k
      // nodes.
      const int mt = 4 * p, nt = q;
      const long long m = static_cast<long long>(mt) * b;
      const long long n = static_cast<long long>(nt) * b;
      HqrConfig cfg{p, static_cast<int>(cli.integer("a")), TreeKind::Greedy,
                    high, /*domino=*/false};
      AlgorithmRun run = make_hqr_run(mt, nt, cfg, q);

      SimOptions so;
      so.platform = Platform::edel();
      so.b = b;
      so.broadcast = cli.str("bcast") == "eager" ? BroadcastKind::Eager
                                                 : BroadcastKind::Binomial;
      const SimResult base = simulate_algorithm(run, m, n, so);

      // Deterministic victim away from rank 0 (the gather root in the real
      // runtime stays irreplaceable).
      const int victim = nodes / 2 + 1;
      fault::FaultAction kill;
      kill.kind = fault::FaultKind::KillRank;
      kill.rank = victim;
      kill.at_task = at;
      so.fault_plan.actions.push_back(kill);
      so.fault_restart_seconds = restart_seconds;
      const SimResult faulty = simulate_algorithm(run, m, n, so);
      HQR_CHECK(faulty.faults_injected == 1,
                "kill at completion " << at << " never fired on node "
                                      << victim);

      Row r;
      r.nodes = nodes;
      r.p = p;
      r.q = q;
      r.mt = mt;
      r.nt = nt;
      r.high = tree_name(high);
      r.victim = victim;
      r.at_task = at;
      r.base = base;
      r.faulty = faulty;
      const double inflation =
          base.seconds > 0 ? faulty.seconds / base.seconds - 1.0 : 0.0;
      table.row()
          .add(nodes)
          .add(std::to_string(p) + "x" + std::to_string(q))
          .add(r.high)
          .add(base.tasks)
          .add(base.seconds, 4)
          .add(faulty.seconds, 4)
          .add(100.0 * inflation, 3)
          .add(faulty.tasks_reexecuted)
          .add(faulty.messages_replayed)
          .add(faulty.messages_resent);
      rows.push_back(std::move(r));
    }
  }

  bench::emit(table, cli,
              "Fault sweep: one rank killed and recovered, by scale and "
              "high-level tree");
  if (!cli.str("json").empty())
    write_json(cli.str("json"), b, at, restart_seconds, rows);
  return 0;
}
