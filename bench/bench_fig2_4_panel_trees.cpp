// Regenerates Figures 2-4: the binary tree, the flat/binary hierarchical
// tree (p = 3 clusters, cyclic layout) and the domain tree (2 domains per
// cluster) for a single panel of m = 12 rows.
#include <iostream>

#include "bench_util.hpp"
#include "trees/hqr_tree.hpp"
#include "trees/validate.hpp"

using namespace hqr;

namespace {

void print_edges(const std::string& title, const EliminationList& list) {
  std::cout << "\n== " << title << " ==\n";
  for (const auto& e : list) {
    std::cout << "  elim(" << e.row << ", " << e.piv << ", " << e.k << ") "
              << (e.ts ? "[TS]" : "[TT]") << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv, {{"m", "12"}, {"csv", ""}});
  const int m = static_cast<int>(cli.integer("m"));

  {
    auto pairs = reduce_subset(TreeKind::Binary, [&] {
      std::vector<int> rows(m);
      for (int i = 0; i < m; ++i) rows[i] = i;
      return rows;
    }());
    std::cout << "== Figure 2: binary tree for panel 0 ==\n";
    for (const auto& p : pairs)
      std::cout << "  round " << p.round << ": " << p.victim << " <- "
                << p.killer << "\n";
  }
  {
    // Figure 3: flat/binary with p = 3 clusters (cyclic layout): local flat
    // trees rooted at rows 0, 1, 2, then a binary tree over the roots.
    HqrConfig cfg{3, 1000, TreeKind::Flat, TreeKind::Binary, true};
    auto list = hqr_elimination_list(m, 1, cfg);
    check_valid(list, m, 1);
    print_edges("Figure 3: flat/binary tree (p=3, cyclic)", list);
  }
  {
    // Figure 4: domain tree, two domains per cluster (a = 2 with m = 12,
    // p = 3), binary tree over the six domain killers.
    HqrConfig cfg{3, 2, TreeKind::Binary, TreeKind::Binary, true};
    auto list = hqr_elimination_list(m, 1, cfg);
    check_valid(list, m, 1);
    print_edges("Figure 4: domain tree (2 domains/cluster)", list);
  }
  return 0;
}
