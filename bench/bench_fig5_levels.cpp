// Regenerates Figure 5: tile reduction levels (0 = TS, 1 = head, 2 = domino,
// 3 = top) for the m = 24, n = 10, p = 3, a = 2 example of §IV-B, in both
// the global view and the per-cluster local views.
#include <iostream>

#include "bench_util.hpp"
#include "trees/hqr_tree.hpp"

using namespace hqr;

int main(int argc, char** argv) {
  Cli cli(argc, argv,
          {{"mt", "24"}, {"nt", "10"}, {"p", "3"}, {"a", "2"}, {"csv", ""}});
  const int mt = static_cast<int>(cli.integer("mt"));
  const int nt = static_cast<int>(cli.integer("nt"));
  HqrConfig cfg{static_cast<int>(cli.integer("p")),
                static_cast<int>(cli.integer("a")), TreeKind::Greedy,
                TreeKind::Greedy, true};

  std::cout << "Figure 5(a): global view (rows x panels), '.' = above "
               "diagonal\n     ";
  for (int k = 0; k < nt; ++k) std::cout << k % 10 << ' ';
  std::cout << "\n";
  for (int i = 0; i < mt; ++i) {
    std::cout << (i < 10 ? " " : "") << i << " | ";
    for (int k = 0; k < nt; ++k) {
      const int lvl = tile_level(i, k, mt, cfg);
      if (lvl < 0)
        std::cout << ". ";
      else
        std::cout << lvl << ' ';
    }
    std::cout << " (node P" << i % cfg.p << ")\n";
  }

  std::cout << "\nFigure 5(b): local views per cluster\n";
  for (int r = 0; r < cfg.p; ++r) {
    std::cout << "  P" << r << ":\n";
    for (int lm = 0; r + lm * cfg.p < mt; ++lm) {
      const int i = r + lm * cfg.p;
      std::cout << "   lm=" << (lm < 10 ? " " : "") << lm << " (row " << i
                << ") | ";
      for (int k = 0; k < nt; ++k) {
        const int lvl = tile_level(i, k, mt, cfg);
        std::cout << (lvl < 0 ? std::string(". ")
                              : std::to_string(lvl) + " ");
      }
      std::cout << "\n";
    }
  }
  return 0;
}
