// Regenerates Figure 6: HQR performance on M x 4480 matrices for every
// high-level tree, low-level tree in {greedy (6a), flat (6b)} and TS-domain
// size a in {1, 4, 8}. Domino optimization off, as in the paper.
#include <iostream>

#include "bench_util.hpp"
#include "core/algorithms.hpp"

using namespace hqr;

int main(int argc, char** argv) {
  Cli cli(argc, argv, {{"b", "280"}, {"n", "4480"}, {"csv", ""}, {"quick", "false"}});
  const int b = static_cast<int>(cli.integer("b"));
  const long long n = cli.integer("n");
  const int nt = static_cast<int>((n + b - 1) / b);
  const int p = 15, q = 4;

  SimOptions opts;
  opts.platform = Platform::edel();
  opts.b = b;

  std::vector<long long> ms = {4480, 8960, 17920, 35840, 71680, 143360, 286720};
  if (cli.flag("quick")) ms = {4480, 35840, 286720};

  TextTable table({"M", "low", "high", "a", "GFlop/s", "% peak", "messages"});
  for (TreeKind low : {TreeKind::Greedy, TreeKind::Flat}) {
    std::cout << "Figure 6" << (low == TreeKind::Greedy ? "(a)" : "(b)")
              << ": low-level tree = " << tree_name(low) << "\n";
    for (TreeKind high : {TreeKind::Greedy, TreeKind::Binary, TreeKind::Flat,
                          TreeKind::Fibonacci}) {
      for (int a : {1, 4, 8}) {
        for (long long m : ms) {
          const int mt = static_cast<int>((m + b - 1) / b);
          HqrConfig cfg{p, a, low, high, /*domino=*/false};
          auto run = make_hqr_run(mt, nt, cfg, q);
          SimResult r = simulate_algorithm(run, m, n, opts);
          table.row()
              .add(m)
              .add(tree_name(low))
              .add(tree_name(high))
              .add(a)
              .add(r.gflops, 5)
              .add(100.0 * r.peak_fraction, 3)
              .add(r.messages);
        }
      }
    }
  }
  bench::emit(table, cli, "Figure 6: influence of TS level and trees");
  return 0;
}
