// Regenerates Figure 7: influence of the low-level tree and the domino
// (coupling level) optimization; a = 4, high-level tree = Fibonacci, on
// M x 4480 matrices.
#include <iostream>

#include "bench_util.hpp"
#include "core/algorithms.hpp"

using namespace hqr;

int main(int argc, char** argv) {
  Cli cli(argc, argv, {{"b", "280"}, {"n", "4480"}, {"csv", ""}, {"quick", "false"}});
  const int b = static_cast<int>(cli.integer("b"));
  const long long n = cli.integer("n");
  const int nt = static_cast<int>((n + b - 1) / b);
  const int p = 15, q = 4;

  SimOptions opts;
  opts.platform = Platform::edel();
  opts.b = b;

  std::vector<long long> ms = {17920, 35840, 71680, 143360, 286720};
  if (cli.flag("quick")) ms = {17920, 286720};

  TextTable table({"M", "low", "domino", "GFlop/s", "% peak"});
  for (bool domino : {false, true}) {
    for (TreeKind low : {TreeKind::Flat, TreeKind::Fibonacci, TreeKind::Greedy,
                         TreeKind::Binary}) {
      for (long long m : ms) {
        const int mt = static_cast<int>((m + b - 1) / b);
        HqrConfig cfg{p, 4, low, TreeKind::Fibonacci, domino};
        SimResult r =
            simulate_algorithm(make_hqr_run(mt, nt, cfg, q), m, n, opts);
        table.row()
            .add(m)
            .add(tree_name(low))
            .add(domino ? "on" : "off")
            .add(r.gflops, 5)
            .add(100.0 * r.peak_fraction, 3);
      }
    }
  }
  bench::emit(table, cli,
              "Figure 7: low-level tree x domino (a=4, high=fibonacci)");
  return 0;
}
