// Regenerates Figure 8: HQR vs [BBD+10] vs [SLHD10] vs ScaLAPACK on
// M x 4480 matrices, M from square to tall-and-skinny. HQR is configured as
// in §V-C: both trees Fibonacci, a = 4, domino on.
#include <iostream>

#include "baselines/scalapack_model.hpp"
#include "bench_util.hpp"
#include "core/algorithms.hpp"

using namespace hqr;

int main(int argc, char** argv) {
  Cli cli(argc, argv, {{"b", "280"}, {"n", "4480"}, {"csv", ""}, {"quick", "false"}});
  const int b = static_cast<int>(cli.integer("b"));
  const long long n = cli.integer("n");
  const int nt = static_cast<int>((n + b - 1) / b);
  const int p = 15, q = 4, nodes = 60;

  SimOptions opts;
  opts.platform = Platform::edel();
  opts.b = b;
  ScalapackOptions sopts;
  sopts.platform = opts.platform;

  std::vector<long long> ms = {4480, 8960, 17920, 35840, 71680, 143360, 286720};
  if (cli.flag("quick")) ms = {4480, 35840, 286720};

  TextTable table({"M", "algorithm", "GFlop/s", "% peak", "messages",
                   "volume GB"});
  for (long long m : ms) {
    const int mt = static_cast<int>((m + b - 1) / b);
    HqrConfig cfg{p, 4, TreeKind::Fibonacci, TreeKind::Fibonacci, true};
    const AlgorithmRun runs[] = {
        make_hqr_run(mt, nt, cfg, q),
        make_slhd10_run(mt, nt, nodes),
        make_bbd10_run(mt, nt, p, q),
    };
    for (const auto& run : runs) {
      SimResult r = simulate_algorithm(run, m, n, opts);
      table.row()
          .add(m)
          .add(run.name)
          .add(r.gflops, 5)
          .add(100.0 * r.peak_fraction, 3)
          .add(r.messages)
          .add(r.volume_gbytes, 4);
    }
    SimResult sc = simulate_scalapack(m, n, sopts);
    table.row()
        .add(m)
        .add("ScaLAPACK (model)")
        .add(sc.gflops, 5)
        .add(100.0 * sc.peak_fraction, 3)
        .add(sc.messages)
        .add(sc.volume_gbytes, 4);
  }
  bench::emit(table, cli, "Figure 8: algorithm comparison on M x 4480");

  std::cout << "\nPaper reference (largest M): HQR 2505 GF/s (57.5%), "
               "[SLHD10] 1897 (43.5%), [BBD+10] 798 (18.3%), ScaLAPACK 277 "
               "(6.4%)\n";
  return 0;
}
