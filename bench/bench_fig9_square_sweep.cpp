// Regenerates Figure 9: algorithm comparison on 67200 x N matrices, N from
// tall-and-skinny to square. HQR configured as in §V-C: high-level tree
// FLATTREE, low-level FIBONACCI, a and the domino optimization switched with
// N (a = 1 / domino on while columns are scarce, a = 4 / domino off once
// parallelism is plentiful). Also reports the [SLHD10]/HQR ratio the paper
// checks against the p(1 - n/3m) load-balance model (§III-C).
#include <iostream>

#include "baselines/scalapack_model.hpp"
#include "bench_util.hpp"
#include "core/algorithms.hpp"

using namespace hqr;

int main(int argc, char** argv) {
  Cli cli(argc, argv, {{"b", "280"}, {"m", "67200"}, {"csv", ""}, {"quick", "false"}});
  const int b = static_cast<int>(cli.integer("b"));
  const long long m = cli.integer("m");
  const int mt = static_cast<int>((m + b - 1) / b);
  const int p = 15, q = 4, nodes = 60;

  SimOptions opts;
  opts.platform = Platform::edel();
  opts.b = b;
  ScalapackOptions sopts;
  sopts.platform = opts.platform;

  std::vector<long long> ns = {1120, 4480, 8960, 17920, 33600, 50400, 67200};
  if (cli.flag("quick")) ns = {4480, 33600, 67200};

  TextTable table({"N", "algorithm", "GFlop/s", "% peak", "messages"});
  double hqr_gflops = 0.0, slhd_gflops = 0.0;
  for (long long n : ns) {
    const int nt = static_cast<int>((n + b - 1) / b);
    const bool scarce = n <= 8960;  // few tile columns: favor parallelism
    HqrConfig cfg{p, scarce ? 1 : 4, TreeKind::Fibonacci, TreeKind::Flat,
                  /*domino=*/scarce};
    const AlgorithmRun runs[] = {
        make_hqr_run(mt, nt, cfg, q),
        make_slhd10_run(mt, nt, nodes),
        make_bbd10_run(mt, nt, p, q),
    };
    for (const auto& run : runs) {
      SimResult r = simulate_algorithm(run, m, n, opts);
      table.row()
          .add(n)
          .add(run.name)
          .add(r.gflops, 5)
          .add(100.0 * r.peak_fraction, 3)
          .add(r.messages);
      if (&run == &runs[0]) hqr_gflops = r.gflops;
      if (&run == &runs[1]) slhd_gflops = r.gflops;
    }
    SimResult sc = simulate_scalapack(m, n, sopts);
    table.row()
        .add(n)
        .add("ScaLAPACK (model)")
        .add(sc.gflops, 5)
        .add(100.0 * sc.peak_fraction, 3)
        .add(sc.messages);
    const double bound =
        block_distribution_speedup_bound(static_cast<double>(m),
                                         static_cast<double>(n), nodes) /
        nodes;
    std::cout << "N=" << n << ": [SLHD10]/HQR = "
              << (hqr_gflops > 0 ? slhd_gflops / hqr_gflops : 0.0)
              << "  (1D-block load-balance bound " << bound << ")\n";
  }
  bench::emit(table, cli, "Figure 9: algorithm comparison on 67200 x N");

  std::cout << "\nPaper reference (square): HQR ~3000 GF/s (68.7%), "
               "[BBD+10] 62.2%, [SLHD10] ~2000 (46.7%), ScaLAPACK 1925 "
               "(44.2%); ratio [SLHD10]/HQR ~ 2/3 at N=M, ~5/6 at N=M/2\n";
  return 0;
}
