// Microbenchmarks of the six tile kernels (google-benchmark): the real
// numeric kernels, across tile sizes, including the paper's b = 280. The
// TS-vs-TT rate gap measured here is the quantity the simulator's
// calibration (KernelRates) encodes.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "kernels/tile_kernels.hpp"
#include "kernels/weights.hpp"
#include "linalg/random_matrix.hpp"

namespace hqr {
namespace {

Matrix random_tile(int b, std::uint64_t seed) {
  Rng rng(seed);
  return random_gaussian(b, b, rng);
}

void report_rate(benchmark::State& state, KernelType type, int b) {
  state.counters["GFlop/s"] = benchmark::Counter(
      kernel_flops(type, b) * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}

void BM_Geqrt(benchmark::State& state) {
  const int b = static_cast<int>(state.range(0));
  Matrix a0 = random_tile(b, 1);
  Matrix t(b, b);
  TileWorkspace ws(b);
  for (auto _ : state) {
    state.PauseTiming();
    Matrix a = a0;
    state.ResumeTiming();
    geqrt(a.view(), t.view(), ws);
    benchmark::DoNotOptimize(a.storage().data());
  }
  report_rate(state, KernelType::GEQRT, b);
}

void BM_Unmqr(benchmark::State& state) {
  const int b = static_cast<int>(state.range(0));
  Matrix v = random_tile(b, 2);
  Matrix t(b, b);
  TileWorkspace ws(b);
  geqrt(v.view(), t.view(), ws);
  Matrix c = random_tile(b, 3);
  for (auto _ : state) {
    unmqr(v.view(), t.view(), Trans::Yes, c.view(), ws);
    benchmark::DoNotOptimize(c.storage().data());
  }
  report_rate(state, KernelType::UNMQR, b);
}

void BM_Tsqrt(benchmark::State& state) {
  const int b = static_cast<int>(state.range(0));
  Matrix a1_0 = random_tile(b, 4);
  Matrix a2_0 = random_tile(b, 5);
  Matrix t(b, b);
  TileWorkspace ws(b);
  for (auto _ : state) {
    state.PauseTiming();
    Matrix a1 = a1_0, a2 = a2_0;
    state.ResumeTiming();
    tsqrt(a1.view(), a2.view(), t.view(), ws);
    benchmark::DoNotOptimize(a2.storage().data());
  }
  report_rate(state, KernelType::TSQRT, b);
}

void BM_Tsmqr(benchmark::State& state) {
  const int b = static_cast<int>(state.range(0));
  Matrix a1 = random_tile(b, 6), a2 = random_tile(b, 7);
  Matrix t(b, b);
  TileWorkspace ws(b);
  tsqrt(a1.view(), a2.view(), t.view(), ws);
  Matrix c1 = random_tile(b, 8), c2 = random_tile(b, 9);
  for (auto _ : state) {
    tsmqr(c1.view(), c2.view(), a2.view(), t.view(), Trans::Yes, ws);
    benchmark::DoNotOptimize(c2.storage().data());
  }
  report_rate(state, KernelType::TSMQR, b);
}

void BM_Ttqrt(benchmark::State& state) {
  const int b = static_cast<int>(state.range(0));
  Matrix a1_0 = random_tile(b, 10);
  Matrix a2_0 = random_tile(b, 11);
  Matrix t(b, b);
  TileWorkspace ws(b);
  for (auto _ : state) {
    state.PauseTiming();
    Matrix a1 = a1_0, a2 = a2_0;
    state.ResumeTiming();
    ttqrt(a1.view(), a2.view(), t.view(), ws);
    benchmark::DoNotOptimize(a2.storage().data());
  }
  report_rate(state, KernelType::TTQRT, b);
}

void BM_Ttmqr(benchmark::State& state) {
  const int b = static_cast<int>(state.range(0));
  Matrix a1 = random_tile(b, 12), a2 = random_tile(b, 13);
  Matrix t(b, b);
  TileWorkspace ws(b);
  ttqrt(a1.view(), a2.view(), t.view(), ws);
  Matrix c1 = random_tile(b, 14), c2 = random_tile(b, 15);
  for (auto _ : state) {
    ttmqr(c1.view(), c2.view(), a2.view(), t.view(), Trans::Yes, ws);
    benchmark::DoNotOptimize(c2.storage().data());
  }
  report_rate(state, KernelType::TTMQR, b);
}

BENCHMARK(BM_Geqrt)->Arg(64)->Arg(128)->Arg(280)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Unmqr)->Arg(64)->Arg(128)->Arg(280)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Tsqrt)->Arg(64)->Arg(128)->Arg(280)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Tsmqr)->Arg(64)->Arg(128)->Arg(280)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Ttqrt)->Arg(64)->Arg(128)->Arg(280)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Ttmqr)->Arg(64)->Arg(128)->Arg(280)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hqr

BENCHMARK_MAIN();
