// Microbenchmarks of the six tile kernels (google-benchmark): the real
// numeric kernels, across tile sizes, including the paper's b = 280 and
// the production inner-blocked variants at b = 200, ib = 32.
//
// Every benchmark runs under a selectable GEMM backend (last Args entry:
// 0 = packed cache-blocked core, 1 = retained naive loops), so the same
// binary produces the speedup pairs that gate the blocked core. The
// TS-vs-TT rate gap measured here is the quantity the simulator's
// calibration (KernelRates) encodes.
//
// Pass --json[=PATH] to additionally write machine-readable results
// (default PATH: BENCH_kernels.json; see DESIGN.md for the schema). The
// hqr-bench-kernels-v2 schema carries a machine identity block (cpu id,
// supported ISA tiers, the dispatched micro-kernel) and per-result
// "isa"/"shape" fields recording which micro-kernel produced the number:
//   {"kernel": "tsmqr", "b": 200, "ib": 32, "backend": "packed",
//    "isa": "avx512", "shape": "16x8", "gflops": ...}
// plus packed-vs-naive speedups for every (kernel, b, ib) measured under
// both backends. tools/bench_compare.py refuses to gate files from
// different machines unless told otherwise (--allow-cross-host).
#include <benchmark/benchmark.h>

#include <cctype>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "kernels/ib_kernels.hpp"
#include "kernels/tile_kernels.hpp"
#include "kernels/weights.hpp"
#include "linalg/kernel_tuning.hpp"
#include "linalg/micro_kernel.hpp"
#include "linalg/random_matrix.hpp"

namespace hqr {
namespace {

struct BenchResult {
  std::string kernel;
  int b = 0;
  int ib = 0;
  std::string backend;
  std::string isa;    // micro-kernel ISA tier active during the run
  std::string shape;  // its MR x NR register tile, e.g. "16x8"
  double gflops = 0.0;
};

std::vector<BenchResult>& collected() {
  static std::vector<BenchResult> results;
  return results;
}

// Captures each finished run's rate counter for the JSON writer, then
// defers to the console output.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      BenchResult r;
      // Names look like "BM_Tsmqr/200/32/0": kernel / b / ib / backend.
      const std::string name = run.benchmark_name();
      const std::size_t slash = name.find('/');
      std::string kernel = name.substr(0, slash);
      if (kernel.rfind("BM_", 0) == 0) kernel = kernel.substr(3);
      for (char& c : kernel) c = static_cast<char>(std::tolower(c));
      r.kernel = kernel;
      r.b = static_cast<int>(run.counters.at("b"));
      r.ib = static_cast<int>(run.counters.at("ib"));
      r.backend = run.counters.at("naive") != 0 ? "naive" : "packed";
      const MicroKernel& mk = active_micro_kernel();
      r.isa = mk.isa;
      r.shape = std::to_string(mk.mr) + "x" + std::to_string(mk.nr);
      r.gflops = run.counters.at("GFlop/s");
      collected().push_back(r);
    }
    ConsoleReporter::ReportRuns(runs);
  }
};

void write_json(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "bench_kernels: cannot write " << path << "\n";
    return;
  }
  const MicroKernel& mk = active_micro_kernel();
  out << "{\n  \"schema\": \"hqr-bench-kernels-v2\",\n";
  // Machine identity: bench numbers only compare within one host, so the
  // comparison tooling can refuse cross-host gating.
  out << "  \"machine\": {\"cpu\": \"" << tuning_cpu_id()
      << "\", \"isa_supported\": [";
  bool first = true;
  for (const char* tier : {"portable", "avx2", "avx512"}) {
    if (!micro_kernel_isa_supported(tier)) continue;
    out << (first ? "" : ", ") << "\"" << tier << "\"";
    first = false;
  }
  out << "], \"kernel\": \"" << mk.name << "\"},\n  \"results\": [\n";
  const std::vector<BenchResult>& rs = collected();
  for (std::size_t i = 0; i < rs.size(); ++i) {
    const BenchResult& r = rs[i];
    out << "    {\"kernel\": \"" << r.kernel << "\", \"b\": " << r.b
        << ", \"ib\": " << r.ib << ", \"backend\": \"" << r.backend
        << "\", \"isa\": \"" << r.isa << "\", \"shape\": \"" << r.shape
        << "\", \"gflops\": " << r.gflops << "}"
        << (i + 1 < rs.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"speedups\": [\n";
  // Packed-over-naive ratio for every configuration measured both ways.
  std::vector<std::string> lines;
  for (const BenchResult& p : rs) {
    if (p.backend != "packed") continue;
    for (const BenchResult& n : rs) {
      if (n.backend == "naive" && n.kernel == p.kernel && n.b == p.b &&
          n.ib == p.ib && n.gflops > 0.0) {
        lines.push_back("    {\"kernel\": \"" + p.kernel +
                        "\", \"b\": " + std::to_string(p.b) +
                        ", \"ib\": " + std::to_string(p.ib) +
                        ", \"speedup\": " + std::to_string(p.gflops / n.gflops) +
                        "}");
      }
    }
  }
  for (std::size_t i = 0; i < lines.size(); ++i)
    out << lines[i] << (i + 1 < lines.size() ? "," : "") << "\n";
  out << "  ]\n}\n";
  std::cout << "bench_kernels: wrote " << path << "\n";
}

Matrix random_tile(int b, std::uint64_t seed) {
  Rng rng(seed);
  return random_gaussian(b, b, rng);
}

// Applies the backend selected by the benchmark's last argument for the
// duration of one benchmark, restoring the default afterwards.
class BackendGuard {
 public:
  explicit BackendGuard(bool naive) {
    if (naive) set_gemm_backend(GemmBackend::Naive);
  }
  ~BackendGuard() { set_gemm_backend(GemmBackend::Packed); }
};

// Args are {b, ib, naive}: ib == 0 runs the plain full-T kernel, ib > 0
// the inner-blocked production variant.
void report(benchmark::State& state, KernelType type) {
  const int b = static_cast<int>(state.range(0));
  state.counters["GFlop/s"] = benchmark::Counter(
      kernel_flops(type, b) * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
  state.counters["b"] = static_cast<double>(state.range(0));
  state.counters["ib"] = static_cast<double>(state.range(1));
  state.counters["naive"] = static_cast<double>(state.range(2));
}

void BM_Geqrt(benchmark::State& state) {
  const int b = static_cast<int>(state.range(0));
  const int ib = static_cast<int>(state.range(1));
  BackendGuard guard(state.range(2) != 0);
  Matrix a0 = random_tile(b, 1);
  Matrix t(b, b);
  TileWorkspace ws(b);
  for (auto _ : state) {
    state.PauseTiming();
    Matrix a = a0;
    state.ResumeTiming();
    if (ib > 0) {
      geqrt_ib(a.view(), t.view(), ib, ws);
    } else {
      geqrt(a.view(), t.view(), ws);
    }
    benchmark::DoNotOptimize(a.storage().data());
  }
  report(state, KernelType::GEQRT);
}

void BM_Unmqr(benchmark::State& state) {
  const int b = static_cast<int>(state.range(0));
  const int ib = static_cast<int>(state.range(1));
  BackendGuard guard(state.range(2) != 0);
  Matrix v = random_tile(b, 2);
  Matrix t(b, b);
  TileWorkspace ws(b);
  if (ib > 0) {
    geqrt_ib(v.view(), t.view(), ib, ws);
  } else {
    geqrt(v.view(), t.view(), ws);
  }
  Matrix c = random_tile(b, 3);
  for (auto _ : state) {
    if (ib > 0) {
      unmqr_ib(v.view(), t.view(), ib, Trans::Yes, c.view(), ws);
    } else {
      unmqr(v.view(), t.view(), Trans::Yes, c.view(), ws);
    }
    benchmark::DoNotOptimize(c.storage().data());
  }
  report(state, KernelType::UNMQR);
}

void BM_Tsqrt(benchmark::State& state) {
  const int b = static_cast<int>(state.range(0));
  const int ib = static_cast<int>(state.range(1));
  BackendGuard guard(state.range(2) != 0);
  Matrix a1_0 = random_tile(b, 4);
  Matrix a2_0 = random_tile(b, 5);
  Matrix t(b, b);
  TileWorkspace ws(b);
  for (auto _ : state) {
    state.PauseTiming();
    Matrix a1 = a1_0, a2 = a2_0;
    state.ResumeTiming();
    if (ib > 0) {
      tsqrt_ib(a1.view(), a2.view(), t.view(), ib, ws);
    } else {
      tsqrt(a1.view(), a2.view(), t.view(), ws);
    }
    benchmark::DoNotOptimize(a2.storage().data());
  }
  report(state, KernelType::TSQRT);
}

void BM_Tsmqr(benchmark::State& state) {
  const int b = static_cast<int>(state.range(0));
  const int ib = static_cast<int>(state.range(1));
  BackendGuard guard(state.range(2) != 0);
  Matrix a1 = random_tile(b, 6), a2 = random_tile(b, 7);
  Matrix t(b, b);
  TileWorkspace ws(b);
  if (ib > 0) {
    tsqrt_ib(a1.view(), a2.view(), t.view(), ib, ws);
  } else {
    tsqrt(a1.view(), a2.view(), t.view(), ws);
  }
  Matrix c1 = random_tile(b, 8), c2 = random_tile(b, 9);
  for (auto _ : state) {
    if (ib > 0) {
      tsmqr_ib(c1.view(), c2.view(), a2.view(), t.view(), ib, Trans::Yes, ws);
    } else {
      tsmqr(c1.view(), c2.view(), a2.view(), t.view(), Trans::Yes, ws);
    }
    benchmark::DoNotOptimize(c2.storage().data());
  }
  report(state, KernelType::TSMQR);
}

void BM_Ttqrt(benchmark::State& state) {
  const int b = static_cast<int>(state.range(0));
  const int ib = static_cast<int>(state.range(1));
  BackendGuard guard(state.range(2) != 0);
  Matrix a1_0 = random_tile(b, 10);
  Matrix a2_0 = random_tile(b, 11);
  Matrix t(b, b);
  TileWorkspace ws(b);
  for (auto _ : state) {
    state.PauseTiming();
    Matrix a1 = a1_0, a2 = a2_0;
    state.ResumeTiming();
    if (ib > 0) {
      ttqrt_ib(a1.view(), a2.view(), t.view(), ib, ws);
    } else {
      ttqrt(a1.view(), a2.view(), t.view(), ws);
    }
    benchmark::DoNotOptimize(a2.storage().data());
  }
  report(state, KernelType::TTQRT);
}

void BM_Ttmqr(benchmark::State& state) {
  const int b = static_cast<int>(state.range(0));
  const int ib = static_cast<int>(state.range(1));
  BackendGuard guard(state.range(2) != 0);
  Matrix a1 = random_tile(b, 12), a2 = random_tile(b, 13);
  Matrix t(b, b);
  TileWorkspace ws(b);
  if (ib > 0) {
    ttqrt_ib(a1.view(), a2.view(), t.view(), ib, ws);
  } else {
    ttqrt(a1.view(), a2.view(), t.view(), ws);
  }
  Matrix c1 = random_tile(b, 14), c2 = random_tile(b, 15);
  for (auto _ : state) {
    if (ib > 0) {
      ttmqr_ib(c1.view(), c2.view(), a2.view(), t.view(), ib, Trans::Yes, ws);
    } else {
      ttmqr(c1.view(), c2.view(), a2.view(), t.view(), Trans::Yes, ws);
    }
    benchmark::DoNotOptimize(c2.storage().data());
  }
  report(state, KernelType::TTMQR);
}

// Coverage: every reported (b, ib) point under both backends, so the
// packed/naive speedup ratio — the load-insensitive quantity the CI gate
// checks — is defined everywhere: the plain-kernel tile-size sweep, the
// production ib configuration (b = 200, ib = 32), and the paper's b = 280
// point both plain and ib-blocked.
void configure(benchmark::internal::Benchmark* bench) {
  bench->Args({64, 0, 0})
      ->Args({64, 0, 1})
      ->Args({128, 0, 0})
      ->Args({128, 0, 1})
      ->Args({280, 0, 0})
      ->Args({280, 0, 1})
      ->Args({200, 32, 0})
      ->Args({200, 32, 1})
      ->Args({280, 32, 0})
      ->Args({280, 32, 1})
      ->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_Geqrt)->Apply(configure);
BENCHMARK(BM_Unmqr)->Apply(configure);
BENCHMARK(BM_Tsqrt)->Apply(configure);
BENCHMARK(BM_Tsmqr)->Apply(configure);
BENCHMARK(BM_Ttqrt)->Apply(configure);
BENCHMARK(BM_Ttmqr)->Apply(configure);

}  // namespace
}  // namespace hqr

int main(int argc, char** argv) {
  // Peel off --json[=PATH] before google-benchmark sees the argv.
  std::string json_path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_kernels.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  hqr::CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty()) hqr::write_json(json_path);
  return 0;
}
