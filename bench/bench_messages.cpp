// Communication-avoidance accounting (paper §IV-A): inter-node messages and
// volume per algorithm, plus per-panel cross-node elimination counts, and
// the load-balance statistics of the distributions (§III-C).
#include <iostream>

#include "bench_util.hpp"
#include "core/algorithms.hpp"

using namespace hqr;

int main(int argc, char** argv) {
  Cli cli(argc, argv, {{"b", "280"}, {"csv", ""}});
  const int b = static_cast<int>(cli.integer("b"));
  const int p = 15, q = 4, nodes = 60;

  SimOptions opts;
  opts.platform = Platform::edel();
  opts.b = b;

  TextTable table({"case", "algorithm", "messages", "volume GB",
                   "msgs/elimination", "load imbalance"});
  struct Case {
    const char* name;
    long long m, n;
  };
  for (const Case& c : {Case{"tall-skinny", 286720, 4480},
                        Case{"square", 33600, 33600}}) {
    const int mt = static_cast<int>((c.m + b - 1) / b);
    const int nt = static_cast<int>((c.n + b - 1) / b);
    long long elims = 0;
    for (int k = 0; k < std::min(mt, nt); ++k) elims += mt - 1 - k;

    HqrConfig cfg{p, 4, TreeKind::Fibonacci, TreeKind::Fibonacci, true};
    const AlgorithmRun runs[] = {
        make_hqr_run(mt, nt, cfg, q),
        make_slhd10_run(mt, nt, nodes),
        make_bbd10_run(mt, nt, p, q),
    };
    for (const auto& run : runs) {
      SimResult r = simulate_algorithm(run, c.m, c.n, opts);
      auto load = qr_load_stats(mt, nt, run.dist);
      table.row()
          .add(c.name)
          .add(run.name)
          .add(r.messages)
          .add(r.volume_gbytes, 4)
          .add(static_cast<double>(r.messages) / elims, 3)
          .add(load.imbalance, 3);
    }
  }
  bench::emit(table, cli, "Communication and load-balance accounting");
  return 0;
}
