// Real-execution benchmark of the shared-memory runtime ("DAGuE-lite"):
// factors an actual matrix with the from-scratch kernels across thread
// counts, scheduler backends and policies. On a many-core host this shows
// the parallel scaling of the tile DAG; the backend column is the
// work-stealing vs global-queue ablation (--sched={both,steal,global}),
// the policy columns the scheduler-design ablation (priority vs FIFO,
// data-reuse on/off). Pass --json=PATH for machine-readable results with
// the per-run scheduler counters (local hits, steals, overflow pops).
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "linalg/random_matrix.hpp"
#include "obs/obs_cli.hpp"
#include "runtime/executor.hpp"
#include "simcluster/simulator.hpp"
#include "trees/hqr_tree.hpp"

using namespace hqr;

namespace {

struct RunRow {
  int threads;
  SchedulerKind sched;
  bool priority;
  bool reuse;
  double seconds;
  double gflops;
  RunStats stats;
};

void write_json(const std::string& path, int m, int n, int b, int ib,
                const std::vector<RunRow>& rows) {
  std::ofstream out(path);
  HQR_CHECK(out.good(), "cannot write " << path);
  out << "{\n  \"schema\": \"hqr-bench-runtime-v1\",\n"
      << "  \"m\": " << m << ", \"n\": " << n << ", \"b\": " << b
      << ", \"ib\": " << ib << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RunRow& r = rows[i];
    out << "    {\"threads\": " << r.threads << ", \"sched\": \""
        << scheduler_kind_name(r.sched) << "\", \"policy\": \""
        << (r.priority ? "cp-priority" : "fifo") << "\", \"data_reuse\": "
        << (r.reuse ? "true" : "false") << ", \"seconds\": " << r.seconds
        << ", \"gflops\": " << r.gflops << ", \"tasks\": "
        << r.stats.total_tasks << ", \"reuse_hits\": " << r.stats.reuse_hits
        << ", \"queue_pops\": " << r.stats.queue_pops << ", \"local_hits\": "
        << r.stats.local_hits << ", \"steals\": " << r.stats.steals
        << ", \"steal_fails\": " << r.stats.steal_fails
        << ", \"overflow_pops\": " << r.stats.overflow_pops << "}"
        << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::cout << "(json written to " << path << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv,
          obs::with_obs_flags({{"m", "768"},
                               {"n", "512"},
                               {"b", "64"},
                               {"ib", "0"},
                               {"sched", "both"},
                               {"json", ""},
                               {"csv", ""}}));
  const int m = static_cast<int>(cli.integer("m"));
  const int n = static_cast<int>(cli.integer("n"));
  const int b = static_cast<int>(cli.integer("b"));
  const int ib = static_cast<int>(cli.integer("ib"));
  std::vector<SchedulerKind> scheds;
  if (cli.str("sched") == "both") {
    scheds = {SchedulerKind::Steal, SchedulerKind::Global};
  } else {
    scheds = {scheduler_kind_from_name(cli.str("sched"))};
  }

  Rng rng(11);
  Matrix a = random_gaussian(m, n, rng);
  TiledMatrix probe = TiledMatrix::from_matrix(a, b);
  HqrConfig cfg{4, 2, TreeKind::Greedy, TreeKind::Fibonacci, true};
  auto list = hqr_elimination_list(probe.mt(), probe.nt(), cfg);
  const double gflop = qr_useful_flops(m, n) / 1e9;

  std::vector<RunRow> rows;
  TextTable table({"threads", "sched", "policy", "data-reuse", "seconds",
                   "GFlop/s", "tasks", "local", "steals", "overflow"});
  for (int threads : {1, 2, 4, 8}) {
    for (SchedulerKind sched : scheds) {
      for (bool priority : {true, false}) {
        for (bool reuse : {true, false}) {
          if (!priority && reuse) continue;  // reuse needs priorities
          ExecutorOptions opts{threads, priority, reuse, ib, sched};
          RunStats stats;
          Stopwatch sw;
          QRFactors f = qr_factorize_parallel(a, b, list, opts, &stats);
          const double secs = sw.seconds();
          (void)f;
          table.row()
              .add(threads)
              .add(scheduler_kind_name(sched))
              .add(priority ? "cp-priority" : "fifo")
              .add(reuse ? "on" : "off")
              .add(secs, 4)
              .add(gflop / secs, 4)
              .add(stats.total_tasks)
              .add(stats.local_hits)
              .add(stats.steals)
              .add(stats.overflow_pops);
          rows.push_back(
              {threads, sched, priority, reuse, secs, gflop / secs, stats});
        }
      }
    }
  }
  bench::emit(table, cli, "Runtime scaling (real kernels, this host)");
  if (!cli.str("json").empty()) write_json(cli.str("json"), m, n, b, ib, rows);

  // Observed rerun of the strongest configuration when --trace/--metrics/
  // --report were given (the sweep above stays unobserved so its timings
  // are clean).
  obs::ObsSession obs(cli);
  if (obs.any_enabled() || obs.report_requested()) {
    ExecutorOptions opts{8, true, true, ib, scheds.front()};
    opts.trace = obs.trace();
    opts.metrics = obs.metrics();
    TiledMatrix tiled = TiledMatrix::from_matrix(a, b);
    KernelList kernels = expand_to_kernels(list, probe.mt(), probe.nt());
    TaskGraph graph(kernels, probe.mt(), probe.nt());
    QRFactors f(std::move(tiled), std::move(kernels), opts.ib);
    RunStats stats = execute_parallel(f, graph, opts);
    std::cout << "\nobserved rerun (8 threads, "
              << scheduler_kind_name(opts.scheduler)
              << ", cp-priority, data-reuse): " << stats.local_hits
              << " local pops, " << stats.steals << " steals, "
              << stats.steal_fails << " failed attempts, "
              << stats.overflow_pops << " overflow pops\n";
    obs.finish(&graph);
  }
  return 0;
}
