// Real-execution benchmark of the shared-memory runtime ("DAGuE-lite"):
// factors an actual matrix with the from-scratch kernels across thread
// counts and scheduler policies. On a many-core host this shows the
// parallel scaling of the tile DAG; the policy columns are the
// scheduler-design ablation (priority vs FIFO, data-reuse on/off).
#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "linalg/random_matrix.hpp"
#include "obs/obs_cli.hpp"
#include "runtime/executor.hpp"
#include "simcluster/simulator.hpp"
#include "trees/hqr_tree.hpp"

using namespace hqr;

int main(int argc, char** argv) {
  Cli cli(argc, argv,
          obs::with_obs_flags({{"m", "768"},
                               {"n", "512"},
                               {"b", "64"},
                               {"ib", "0"},
                               {"csv", ""}}));
  const int m = static_cast<int>(cli.integer("m"));
  const int n = static_cast<int>(cli.integer("n"));
  const int b = static_cast<int>(cli.integer("b"));
  const int ib = static_cast<int>(cli.integer("ib"));

  Rng rng(11);
  Matrix a = random_gaussian(m, n, rng);
  TiledMatrix probe = TiledMatrix::from_matrix(a, b);
  HqrConfig cfg{4, 2, TreeKind::Greedy, TreeKind::Fibonacci, true};
  auto list = hqr_elimination_list(probe.mt(), probe.nt(), cfg);
  const double gflop = qr_useful_flops(m, n) / 1e9;

  TextTable table({"threads", "policy", "data-reuse", "seconds", "GFlop/s",
                   "tasks"});
  for (int threads : {1, 2, 4, 8}) {
    for (bool priority : {true, false}) {
      for (bool reuse : {true, false}) {
        if (!priority && reuse) continue;  // reuse needs priorities
        ExecutorOptions opts{threads, priority, reuse, ib};
        RunStats stats;
        Stopwatch sw;
        QRFactors f = qr_factorize_parallel(a, b, list, opts, &stats);
        const double secs = sw.seconds();
        (void)f;
        table.row()
            .add(threads)
            .add(priority ? "cp-priority" : "fifo")
            .add(reuse ? "on" : "off")
            .add(secs, 4)
            .add(gflop / secs, 4)
            .add(stats.total_tasks);
      }
    }
  }
  bench::emit(table, cli, "Runtime scaling (real kernels, this host)");

  // Observed rerun of the strongest configuration when --trace/--metrics/
  // --report were given (the sweep above stays unobserved so its timings
  // are clean).
  obs::ObsSession obs(cli);
  if (obs.any_enabled() || obs.report_requested()) {
    ExecutorOptions opts{8, true, true, ib};
    opts.trace = obs.trace();
    opts.metrics = obs.metrics();
    TiledMatrix tiled = TiledMatrix::from_matrix(a, b);
    KernelList kernels = expand_to_kernels(list, probe.mt(), probe.nt());
    TaskGraph graph(kernels, probe.mt(), probe.nt());
    QRFactors f(std::move(tiled), std::move(kernels), opts.ib);
    execute_parallel(f, graph, opts);
    std::cout << "\nobserved rerun (8 threads, cp-priority, data-reuse):\n";
    obs.finish(&graph);
  }
  return 0;
}
