// Benchmark of the QR-as-a-service path: an in-process server on a
// loopback socket, real wire framing, real client threads.
//
// Two experiments:
//   1. Request latency under concurrency — `--clients` is swept (1..max);
//      each client thread submits `--requests` QR jobs of the same shape
//      back to back and records the client-observed latency of each.
//      Reported: throughput (requests/s) and p50/p95/p99 latency.
//   2. Batch fusion — `--problems` small QRs submitted (a) as ONE
//      SubmitBatch, which the server runs as a single fused DAG in one
//      scheduler pass, and (b) as the same problems submitted one request
//      at a time. The fused/sequential ratio is the payoff of fusing tiny
//      DAGs: one admission, one completion barrier, zero idle gaps between
//      problems.
//
// Pass --json=PATH for machine-readable results (schema
// hqr-bench-serve-v1, consumed by tools/bench_compare.py).
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "linalg/random_matrix.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

using namespace hqr;
using namespace hqr::serve;

namespace {

struct LatencyRow {
  int clients;
  int requests;  // total across clients
  double seconds;
  double throughput_rps;
  double p50_ms, p95_ms, p99_ms;
};

struct BatchRow {
  std::string mode;
  int problems;
  double seconds;
  double problems_per_second;
  double fused_speedup;  // only on the fused row; 0 elsewhere
};

double percentile(std::vector<double> v, double q) {
  std::sort(v.begin(), v.end());
  if (v.empty()) return 0.0;
  const double idx = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

LatencyRow run_latency(const Server& server, int clients, int per_client,
                       int m, int n, int b) {
  std::vector<std::vector<double>> lat(clients);
  std::vector<std::thread> threads;
  Stopwatch sw;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(1000 + c);
      ClientOptions copts;
      copts.port = server.port();
      copts.tenant = c;
      Client client(copts);
      Matrix a = random_gaussian(m, n, rng);
      for (int rep = 0; rep < per_client; ++rep) {
        Stopwatch one;
        (void)client.submit_qr(a, b);
        lat[c].push_back(one.seconds() * 1e3);
      }
    });
  }
  for (auto& t : threads) t.join();
  const double total = sw.seconds();

  std::vector<double> all;
  for (const auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  LatencyRow row;
  row.clients = clients;
  row.requests = static_cast<int>(all.size());
  row.seconds = total;
  row.throughput_rps = static_cast<double>(all.size()) / total;
  row.p50_ms = percentile(all, 0.50);
  row.p95_ms = percentile(all, 0.95);
  row.p99_ms = percentile(all, 0.99);
  return row;
}

void write_json(const std::string& path, int m, int n, int b, int threads,
                int small_m, int small_n, int small_b,
                const std::vector<LatencyRow>& lat,
                const std::vector<BatchRow>& batch) {
  std::ofstream out(path);
  HQR_CHECK(out.good(), "cannot write " << path);
  out << "{\n  \"schema\": \"hqr-bench-serve-v1\",\n"
      << "  \"m\": " << m << ", \"n\": " << n << ", \"b\": " << b
      << ", \"threads\": " << threads << ",\n"
      << "  \"small_m\": " << small_m << ", \"small_n\": " << small_n
      << ", \"small_b\": " << small_b << ",\n  \"results\": [\n";
  bool first = true;
  auto sep = [&] {
    if (!first) out << ",\n";
    first = false;
  };
  for (const LatencyRow& r : lat) {
    sep();
    out << "    {\"mode\": \"qr\", \"clients\": " << r.clients
        << ", \"requests\": " << r.requests << ", \"seconds\": " << r.seconds
        << ", \"throughput_rps\": " << r.throughput_rps
        << ", \"p50_ms\": " << r.p50_ms << ", \"p95_ms\": " << r.p95_ms
        << ", \"p99_ms\": " << r.p99_ms << "}";
  }
  for (const BatchRow& r : batch) {
    sep();
    out << "    {\"mode\": \"" << r.mode << "\", \"problems\": " << r.problems
        << ", \"seconds\": " << r.seconds
        << ", \"problems_per_second\": " << r.problems_per_second;
    if (r.fused_speedup > 0.0)
      out << ", \"fused_speedup\": " << r.fused_speedup;
    out << "}";
  }
  out << "\n  ]\n}\n";
  std::cout << "(json written to " << path << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv, {{"m", "256"},
                       {"n", "128"},
                       {"b", "32"},
                       {"threads", "4"},
                       {"max-clients", "8"},
                       {"requests", "8"},
                       {"problems", "1000"},
                       {"small-m", "24"},
                       {"small-n", "16"},
                       {"small-b", "8"},
                       {"json", ""},
                       {"csv", ""}});
  const int m = static_cast<int>(cli.integer("m"));
  const int n = static_cast<int>(cli.integer("n"));
  const int b = static_cast<int>(cli.integer("b"));
  const int threads = static_cast<int>(cli.integer("threads"));
  const int max_clients = static_cast<int>(cli.integer("max-clients"));
  const int per_client = static_cast<int>(cli.integer("requests"));
  const int problems = static_cast<int>(cli.integer("problems"));
  const int small_m = static_cast<int>(cli.integer("small-m"));
  const int small_n = static_cast<int>(cli.integer("small-n"));
  const int small_b = static_cast<int>(cli.integer("small-b"));

  ServerOptions sopts;
  sopts.threads = threads;
  Server server(sopts);

  // -- Experiment 1: latency/throughput vs client concurrency ------------
  std::vector<LatencyRow> lat;
  TextTable lat_table({"clients", "requests", "throughput_rps", "p50_ms",
                       "p95_ms", "p99_ms"});
  for (int clients = 1; clients <= max_clients; clients *= 2) {
    LatencyRow row = run_latency(server, clients, per_client, m, n, b);
    lat.push_back(row);
    lat_table.row()
        .add(row.clients)
        .add(row.requests)
        .add(row.throughput_rps, 4)
        .add(row.p50_ms, 4)
        .add(row.p95_ms, 4)
        .add(row.p99_ms, 4);
  }
  std::ostringstream title;
  title << "serve latency, " << m << "x" << n << " b=" << b << ", "
        << threads << " worker threads";
  bench::emit(lat_table, cli, title.str());

  // -- Experiment 2: fused batch vs one-request-at-a-time ----------------
  Rng rng(7);
  std::vector<Matrix> small;
  small.reserve(static_cast<std::size_t>(problems));
  for (int p = 0; p < problems; ++p)
    small.push_back(
        random_gaussian(small_m + p % 5, small_n + p % 3, rng));

  ClientOptions copts;
  copts.port = server.port();
  Client client(copts);

  Stopwatch fused_sw;
  std::vector<Matrix> fused_rs = client.submit_batch(small, small_b);
  const double fused_seconds = fused_sw.seconds();
  HQR_CHECK(fused_rs.size() == small.size(), "batch result count mismatch");

  Stopwatch seq_sw;
  for (const Matrix& a : small) (void)client.submit_qr(a, small_b);
  const double seq_seconds = seq_sw.seconds();

  std::vector<BatchRow> batch;
  batch.push_back({"batch-fused", problems, fused_seconds,
                   problems / fused_seconds, seq_seconds / fused_seconds});
  batch.push_back({"batch-sequential", problems, seq_seconds,
                   problems / seq_seconds, 0.0});
  TextTable batch_table(
      {"mode", "problems", "seconds", "problems_per_second", "speedup"});
  for (const BatchRow& r : batch)
    batch_table.row()
        .add(r.mode)
        .add(r.problems)
        .add(r.seconds, 4)
        .add(r.problems_per_second, 5)
        .add(r.fused_speedup > 0.0 ? r.fused_speedup : 1.0, 4);
  std::ostringstream btitle;
  btitle << "batch fusion, " << problems << " problems ~" << small_m << "x"
         << small_n << " b=" << small_b;
  bench::emit(batch_table, cli, btitle.str());

  if (cli.has("json") && !cli.str("json").empty())
    write_json(cli.str("json"), m, n, b, threads, small_m, small_n, small_b,
               lat, batch);
  server.stop();
  return 0;
}
