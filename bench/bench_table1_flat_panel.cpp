// Regenerates Table I (flat-tree reduction of panel 0, m = 12) and the edge
// list of Figure 1.
#include <iostream>

#include "bench_util.hpp"
#include "trees/single_level.hpp"
#include "trees/steps.hpp"
#include "trees/validate.hpp"

using namespace hqr;

int main(int argc, char** argv) {
  Cli cli(argc, argv, {{"m", "12"}, {"csv", ""}});
  const int m = static_cast<int>(cli.integer("m"));

  auto list = flat_ts_list(m, 1);
  check_valid(list, m, 1);
  auto steps = asap_steps(list, m, 1);
  auto t = killer_step_table(list, steps, m, 1);

  TextTable table({"Row index", "Killer", "Step"});
  for (int i = 0; i < m; ++i) {
    table.row().add(i);
    if (t.killer_of(i, 0) < 0) {
      table.add("*").add("");
    } else {
      table.add(t.killer_of(i, 0)).add(t.step_of(i, 0));
    }
  }
  bench::emit(table, cli, "Table I: flat tree reduction of panel 0");

  std::cout << "\nFigure 1 (flat tree edges, victim <- killer):\n  ";
  for (const auto& e : list) std::cout << e.row << "<-" << e.piv << " ";
  std::cout << "\n";
  return 0;
}
