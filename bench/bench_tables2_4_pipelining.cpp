// Regenerates Tables II, III and IV: killer/step tables of the first three
// panels under the flat, binary and greedy algorithms (coarse-grain model,
// §III-B). Known deviations from the published cells are discussed in
// EXPERIMENTS.md.
#include <iostream>

#include "bench_util.hpp"
#include "trees/single_level.hpp"
#include "trees/steps.hpp"
#include "trees/validate.hpp"

using namespace hqr;

namespace {

void print_table(const Cli& cli, const std::string& title,
                 const EliminationList& list, const std::vector<int>& steps,
                 int m, int panels) {
  auto t = killer_step_table(list, steps, m, panels);
  std::vector<std::string> headers = {"Row"};
  for (int k = 0; k < panels; ++k) {
    // Appends, not operator+ chains: GCC 12 -Wrestrict false-positives on
    // the temporaries under -O2.
    std::string p = "P";
    p += std::to_string(k);
    headers.push_back(p + " killer");
    headers.push_back(p + " step");
  }
  TextTable table(headers);
  for (int i = 0; i < m; ++i) {
    table.row().add(i);
    for (int k = 0; k < panels; ++k) {
      if (t.killer_of(i, k) < 0) {
        table.add(i == k ? "*" : "").add("");
      } else {
        table.add(t.killer_of(i, k)).add(t.step_of(i, k));
      }
    }
  }
  bench::emit(table, cli, title);
  std::cout << "makespan: " << coarse_makespan(steps) << " steps\n";
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv, {{"m", "12"}, {"panels", "3"}, {"csv", ""}});
  const int m = static_cast<int>(cli.integer("m"));
  const int panels = static_cast<int>(cli.integer("panels"));

  {
    auto list = flat_ts_list(m, panels);
    check_valid(list, m, panels);
    print_table(cli, "Table II: flat tree, first " + std::to_string(panels) +
                         " panels",
                list, asap_steps(list, m, panels), m, panels);
  }
  {
    auto list = per_panel_tree_list(TreeKind::Binary, m, panels);
    check_valid(list, m, panels);
    print_table(cli, "Table III: binary tree", list,
                asap_steps(list, m, panels), m, panels);
  }
  {
    auto sl = greedy_global_list(m, panels);
    check_valid(sl.list, m, panels);
    print_table(cli, "Table IV: greedy", sl.list, sl.step, m, panels);
  }
  return 0;
}
