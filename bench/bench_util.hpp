// Shared helpers for the figure/table regeneration drivers.
#pragma once

#include <iostream>
#include <string>

#include "common/cli.hpp"
#include "common/table.hpp"

namespace hqr::bench {

// Prints the table, and saves CSV next to it when --csv=<path> was given.
inline void emit(const TextTable& table, const Cli& cli,
                 const std::string& title) {
  std::cout << "\n== " << title << " ==\n";
  table.print(std::cout);
  if (cli.has("csv") && !cli.str("csv").empty()) {
    table.save_csv(cli.str("csv"));
    std::cout << "(csv written to " << cli.str("csv") << ")\n";
  }
}

}  // namespace hqr::bench
