file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ib.dir/bench_ablation_ib.cpp.o"
  "CMakeFiles/bench_ablation_ib.dir/bench_ablation_ib.cpp.o.d"
  "bench_ablation_ib"
  "bench_ablation_ib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
