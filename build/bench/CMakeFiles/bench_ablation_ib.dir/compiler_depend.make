# Empty compiler generated dependencies file for bench_ablation_ib.
# This may be replaced when dependencies are built.
