file(REMOVE_RECURSE
  "CMakeFiles/bench_accelerators.dir/bench_accelerators.cpp.o"
  "CMakeFiles/bench_accelerators.dir/bench_accelerators.cpp.o.d"
  "bench_accelerators"
  "bench_accelerators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_accelerators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
