# Empty compiler generated dependencies file for bench_accelerators.
# This may be replaced when dependencies are built.
