# Empty dependencies file for bench_fig2_4_panel_trees.
# This may be replaced when dependencies are built.
