# Empty dependencies file for bench_fig6_highlevel_trees.
# This may be replaced when dependencies are built.
