file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_domino.dir/bench_fig7_domino.cpp.o"
  "CMakeFiles/bench_fig7_domino.dir/bench_fig7_domino.cpp.o.d"
  "bench_fig7_domino"
  "bench_fig7_domino.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_domino.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
