# Empty dependencies file for bench_fig7_domino.
# This may be replaced when dependencies are built.
