file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_tall_skinny.dir/bench_fig8_tall_skinny.cpp.o"
  "CMakeFiles/bench_fig8_tall_skinny.dir/bench_fig8_tall_skinny.cpp.o.d"
  "bench_fig8_tall_skinny"
  "bench_fig8_tall_skinny.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_tall_skinny.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
