# Empty compiler generated dependencies file for bench_fig8_tall_skinny.
# This may be replaced when dependencies are built.
