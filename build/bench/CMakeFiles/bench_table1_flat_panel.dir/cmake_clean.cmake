file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_flat_panel.dir/bench_table1_flat_panel.cpp.o"
  "CMakeFiles/bench_table1_flat_panel.dir/bench_table1_flat_panel.cpp.o.d"
  "bench_table1_flat_panel"
  "bench_table1_flat_panel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_flat_panel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
