# Empty compiler generated dependencies file for bench_table1_flat_panel.
# This may be replaced when dependencies are built.
