file(REMOVE_RECURSE
  "CMakeFiles/bench_tables2_4_pipelining.dir/bench_tables2_4_pipelining.cpp.o"
  "CMakeFiles/bench_tables2_4_pipelining.dir/bench_tables2_4_pipelining.cpp.o.d"
  "bench_tables2_4_pipelining"
  "bench_tables2_4_pipelining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tables2_4_pipelining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
