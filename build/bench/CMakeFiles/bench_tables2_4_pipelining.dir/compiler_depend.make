# Empty compiler generated dependencies file for bench_tables2_4_pipelining.
# This may be replaced when dependencies are built.
