file(REMOVE_RECURSE
  "CMakeFiles/autotune_hqr.dir/autotune_hqr.cpp.o"
  "CMakeFiles/autotune_hqr.dir/autotune_hqr.cpp.o.d"
  "autotune_hqr"
  "autotune_hqr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotune_hqr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
