# Empty dependencies file for autotune_hqr.
# This may be replaced when dependencies are built.
