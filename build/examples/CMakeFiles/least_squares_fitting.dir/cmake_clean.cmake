file(REMOVE_RECURSE
  "CMakeFiles/least_squares_fitting.dir/least_squares_fitting.cpp.o"
  "CMakeFiles/least_squares_fitting.dir/least_squares_fitting.cpp.o.d"
  "least_squares_fitting"
  "least_squares_fitting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/least_squares_fitting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
