# Empty dependencies file for least_squares_fitting.
# This may be replaced when dependencies are built.
