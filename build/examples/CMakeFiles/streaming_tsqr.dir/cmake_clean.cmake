file(REMOVE_RECURSE
  "CMakeFiles/streaming_tsqr.dir/streaming_tsqr.cpp.o"
  "CMakeFiles/streaming_tsqr.dir/streaming_tsqr.cpp.o.d"
  "streaming_tsqr"
  "streaming_tsqr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_tsqr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
