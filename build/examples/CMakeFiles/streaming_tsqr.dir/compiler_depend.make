# Empty compiler generated dependencies file for streaming_tsqr.
# This may be replaced when dependencies are built.
