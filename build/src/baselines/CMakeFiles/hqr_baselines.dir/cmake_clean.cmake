file(REMOVE_RECURSE
  "CMakeFiles/hqr_baselines.dir/scalapack_model.cpp.o"
  "CMakeFiles/hqr_baselines.dir/scalapack_model.cpp.o.d"
  "libhqr_baselines.a"
  "libhqr_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hqr_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
