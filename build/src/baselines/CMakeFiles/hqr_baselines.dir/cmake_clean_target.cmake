file(REMOVE_RECURSE
  "libhqr_baselines.a"
)
