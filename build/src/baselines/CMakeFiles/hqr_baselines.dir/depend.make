# Empty dependencies file for hqr_baselines.
# This may be replaced when dependencies are built.
