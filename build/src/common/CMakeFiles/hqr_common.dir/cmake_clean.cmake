file(REMOVE_RECURSE
  "CMakeFiles/hqr_common.dir/cli.cpp.o"
  "CMakeFiles/hqr_common.dir/cli.cpp.o.d"
  "CMakeFiles/hqr_common.dir/rng.cpp.o"
  "CMakeFiles/hqr_common.dir/rng.cpp.o.d"
  "CMakeFiles/hqr_common.dir/table.cpp.o"
  "CMakeFiles/hqr_common.dir/table.cpp.o.d"
  "libhqr_common.a"
  "libhqr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hqr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
