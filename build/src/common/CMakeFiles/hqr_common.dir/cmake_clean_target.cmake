file(REMOVE_RECURSE
  "libhqr_common.a"
)
