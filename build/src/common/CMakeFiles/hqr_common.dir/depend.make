# Empty dependencies file for hqr_common.
# This may be replaced when dependencies are built.
