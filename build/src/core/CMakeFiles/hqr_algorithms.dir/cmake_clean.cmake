file(REMOVE_RECURSE
  "CMakeFiles/hqr_algorithms.dir/algorithms.cpp.o"
  "CMakeFiles/hqr_algorithms.dir/algorithms.cpp.o.d"
  "CMakeFiles/hqr_algorithms.dir/autotune.cpp.o"
  "CMakeFiles/hqr_algorithms.dir/autotune.cpp.o.d"
  "libhqr_algorithms.a"
  "libhqr_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hqr_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
