file(REMOVE_RECURSE
  "libhqr_algorithms.a"
)
