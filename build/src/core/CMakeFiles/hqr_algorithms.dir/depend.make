# Empty dependencies file for hqr_algorithms.
# This may be replaced when dependencies are built.
