file(REMOVE_RECURSE
  "CMakeFiles/hqr_core.dir/factorization.cpp.o"
  "CMakeFiles/hqr_core.dir/factorization.cpp.o.d"
  "CMakeFiles/hqr_core.dir/incremental_tsqr.cpp.o"
  "CMakeFiles/hqr_core.dir/incremental_tsqr.cpp.o.d"
  "libhqr_core.a"
  "libhqr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hqr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
