file(REMOVE_RECURSE
  "libhqr_core.a"
)
