# Empty compiler generated dependencies file for hqr_core.
# This may be replaced when dependencies are built.
