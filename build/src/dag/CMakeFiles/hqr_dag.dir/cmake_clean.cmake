file(REMOVE_RECURSE
  "CMakeFiles/hqr_dag.dir/dot_export.cpp.o"
  "CMakeFiles/hqr_dag.dir/dot_export.cpp.o.d"
  "CMakeFiles/hqr_dag.dir/task_graph.cpp.o"
  "CMakeFiles/hqr_dag.dir/task_graph.cpp.o.d"
  "libhqr_dag.a"
  "libhqr_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hqr_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
