file(REMOVE_RECURSE
  "libhqr_dag.a"
)
