# Empty compiler generated dependencies file for hqr_dag.
# This may be replaced when dependencies are built.
