# Empty dependencies file for hqr_dag.
# This may be replaced when dependencies are built.
