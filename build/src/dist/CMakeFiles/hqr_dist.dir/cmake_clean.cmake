file(REMOVE_RECURSE
  "CMakeFiles/hqr_dist.dir/distribution.cpp.o"
  "CMakeFiles/hqr_dist.dir/distribution.cpp.o.d"
  "libhqr_dist.a"
  "libhqr_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hqr_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
