file(REMOVE_RECURSE
  "libhqr_dist.a"
)
