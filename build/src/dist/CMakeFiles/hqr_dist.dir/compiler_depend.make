# Empty compiler generated dependencies file for hqr_dist.
# This may be replaced when dependencies are built.
