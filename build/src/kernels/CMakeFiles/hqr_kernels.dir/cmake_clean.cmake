file(REMOVE_RECURSE
  "CMakeFiles/hqr_kernels.dir/geqrt.cpp.o"
  "CMakeFiles/hqr_kernels.dir/geqrt.cpp.o.d"
  "CMakeFiles/hqr_kernels.dir/ib_kernels.cpp.o"
  "CMakeFiles/hqr_kernels.dir/ib_kernels.cpp.o.d"
  "CMakeFiles/hqr_kernels.dir/tsqrt.cpp.o"
  "CMakeFiles/hqr_kernels.dir/tsqrt.cpp.o.d"
  "CMakeFiles/hqr_kernels.dir/ttqrt.cpp.o"
  "CMakeFiles/hqr_kernels.dir/ttqrt.cpp.o.d"
  "libhqr_kernels.a"
  "libhqr_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hqr_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
