file(REMOVE_RECURSE
  "libhqr_kernels.a"
)
