# Empty dependencies file for hqr_kernels.
# This may be replaced when dependencies are built.
