
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/blas.cpp" "src/linalg/CMakeFiles/hqr_linalg.dir/blas.cpp.o" "gcc" "src/linalg/CMakeFiles/hqr_linalg.dir/blas.cpp.o.d"
  "/root/repo/src/linalg/householder.cpp" "src/linalg/CMakeFiles/hqr_linalg.dir/householder.cpp.o" "gcc" "src/linalg/CMakeFiles/hqr_linalg.dir/householder.cpp.o.d"
  "/root/repo/src/linalg/matrix.cpp" "src/linalg/CMakeFiles/hqr_linalg.dir/matrix.cpp.o" "gcc" "src/linalg/CMakeFiles/hqr_linalg.dir/matrix.cpp.o.d"
  "/root/repo/src/linalg/norms.cpp" "src/linalg/CMakeFiles/hqr_linalg.dir/norms.cpp.o" "gcc" "src/linalg/CMakeFiles/hqr_linalg.dir/norms.cpp.o.d"
  "/root/repo/src/linalg/random_matrix.cpp" "src/linalg/CMakeFiles/hqr_linalg.dir/random_matrix.cpp.o" "gcc" "src/linalg/CMakeFiles/hqr_linalg.dir/random_matrix.cpp.o.d"
  "/root/repo/src/linalg/ref_qr.cpp" "src/linalg/CMakeFiles/hqr_linalg.dir/ref_qr.cpp.o" "gcc" "src/linalg/CMakeFiles/hqr_linalg.dir/ref_qr.cpp.o.d"
  "/root/repo/src/linalg/tiled_matrix.cpp" "src/linalg/CMakeFiles/hqr_linalg.dir/tiled_matrix.cpp.o" "gcc" "src/linalg/CMakeFiles/hqr_linalg.dir/tiled_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hqr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
