file(REMOVE_RECURSE
  "CMakeFiles/hqr_linalg.dir/blas.cpp.o"
  "CMakeFiles/hqr_linalg.dir/blas.cpp.o.d"
  "CMakeFiles/hqr_linalg.dir/householder.cpp.o"
  "CMakeFiles/hqr_linalg.dir/householder.cpp.o.d"
  "CMakeFiles/hqr_linalg.dir/matrix.cpp.o"
  "CMakeFiles/hqr_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/hqr_linalg.dir/norms.cpp.o"
  "CMakeFiles/hqr_linalg.dir/norms.cpp.o.d"
  "CMakeFiles/hqr_linalg.dir/random_matrix.cpp.o"
  "CMakeFiles/hqr_linalg.dir/random_matrix.cpp.o.d"
  "CMakeFiles/hqr_linalg.dir/ref_qr.cpp.o"
  "CMakeFiles/hqr_linalg.dir/ref_qr.cpp.o.d"
  "CMakeFiles/hqr_linalg.dir/tiled_matrix.cpp.o"
  "CMakeFiles/hqr_linalg.dir/tiled_matrix.cpp.o.d"
  "libhqr_linalg.a"
  "libhqr_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hqr_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
