file(REMOVE_RECURSE
  "libhqr_linalg.a"
)
