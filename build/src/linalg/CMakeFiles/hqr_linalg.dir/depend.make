# Empty dependencies file for hqr_linalg.
# This may be replaced when dependencies are built.
