file(REMOVE_RECURSE
  "CMakeFiles/hqr_runtime.dir/executor.cpp.o"
  "CMakeFiles/hqr_runtime.dir/executor.cpp.o.d"
  "CMakeFiles/hqr_runtime.dir/qr.cpp.o"
  "CMakeFiles/hqr_runtime.dir/qr.cpp.o.d"
  "libhqr_runtime.a"
  "libhqr_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hqr_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
