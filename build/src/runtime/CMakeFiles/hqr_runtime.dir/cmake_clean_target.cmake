file(REMOVE_RECURSE
  "libhqr_runtime.a"
)
