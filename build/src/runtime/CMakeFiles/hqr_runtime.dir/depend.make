# Empty dependencies file for hqr_runtime.
# This may be replaced when dependencies are built.
