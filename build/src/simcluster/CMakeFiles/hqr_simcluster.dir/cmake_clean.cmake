file(REMOVE_RECURSE
  "CMakeFiles/hqr_simcluster.dir/platform.cpp.o"
  "CMakeFiles/hqr_simcluster.dir/platform.cpp.o.d"
  "CMakeFiles/hqr_simcluster.dir/simulator.cpp.o"
  "CMakeFiles/hqr_simcluster.dir/simulator.cpp.o.d"
  "libhqr_simcluster.a"
  "libhqr_simcluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hqr_simcluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
