file(REMOVE_RECURSE
  "libhqr_simcluster.a"
)
