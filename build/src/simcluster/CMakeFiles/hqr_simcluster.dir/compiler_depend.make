# Empty compiler generated dependencies file for hqr_simcluster.
# This may be replaced when dependencies are built.
