
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trees/elimination.cpp" "src/trees/CMakeFiles/hqr_trees.dir/elimination.cpp.o" "gcc" "src/trees/CMakeFiles/hqr_trees.dir/elimination.cpp.o.d"
  "/root/repo/src/trees/hqr_tree.cpp" "src/trees/CMakeFiles/hqr_trees.dir/hqr_tree.cpp.o" "gcc" "src/trees/CMakeFiles/hqr_trees.dir/hqr_tree.cpp.o.d"
  "/root/repo/src/trees/models.cpp" "src/trees/CMakeFiles/hqr_trees.dir/models.cpp.o" "gcc" "src/trees/CMakeFiles/hqr_trees.dir/models.cpp.o.d"
  "/root/repo/src/trees/panel_trees.cpp" "src/trees/CMakeFiles/hqr_trees.dir/panel_trees.cpp.o" "gcc" "src/trees/CMakeFiles/hqr_trees.dir/panel_trees.cpp.o.d"
  "/root/repo/src/trees/single_level.cpp" "src/trees/CMakeFiles/hqr_trees.dir/single_level.cpp.o" "gcc" "src/trees/CMakeFiles/hqr_trees.dir/single_level.cpp.o.d"
  "/root/repo/src/trees/steps.cpp" "src/trees/CMakeFiles/hqr_trees.dir/steps.cpp.o" "gcc" "src/trees/CMakeFiles/hqr_trees.dir/steps.cpp.o.d"
  "/root/repo/src/trees/validate.cpp" "src/trees/CMakeFiles/hqr_trees.dir/validate.cpp.o" "gcc" "src/trees/CMakeFiles/hqr_trees.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernels/CMakeFiles/hqr_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/hqr_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hqr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
