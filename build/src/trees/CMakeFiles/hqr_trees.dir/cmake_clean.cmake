file(REMOVE_RECURSE
  "CMakeFiles/hqr_trees.dir/elimination.cpp.o"
  "CMakeFiles/hqr_trees.dir/elimination.cpp.o.d"
  "CMakeFiles/hqr_trees.dir/hqr_tree.cpp.o"
  "CMakeFiles/hqr_trees.dir/hqr_tree.cpp.o.d"
  "CMakeFiles/hqr_trees.dir/models.cpp.o"
  "CMakeFiles/hqr_trees.dir/models.cpp.o.d"
  "CMakeFiles/hqr_trees.dir/panel_trees.cpp.o"
  "CMakeFiles/hqr_trees.dir/panel_trees.cpp.o.d"
  "CMakeFiles/hqr_trees.dir/single_level.cpp.o"
  "CMakeFiles/hqr_trees.dir/single_level.cpp.o.d"
  "CMakeFiles/hqr_trees.dir/steps.cpp.o"
  "CMakeFiles/hqr_trees.dir/steps.cpp.o.d"
  "CMakeFiles/hqr_trees.dir/validate.cpp.o"
  "CMakeFiles/hqr_trees.dir/validate.cpp.o.d"
  "libhqr_trees.a"
  "libhqr_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hqr_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
