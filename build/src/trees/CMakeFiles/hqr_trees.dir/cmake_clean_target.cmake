file(REMOVE_RECURSE
  "libhqr_trees.a"
)
