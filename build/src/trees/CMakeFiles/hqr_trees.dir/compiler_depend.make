# Empty compiler generated dependencies file for hqr_trees.
# This may be replaced when dependencies are built.
