# Empty dependencies file for test_factorization.
# This may be replaced when dependencies are built.
