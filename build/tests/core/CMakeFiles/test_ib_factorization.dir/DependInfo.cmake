
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_ib_factorization.cpp" "tests/core/CMakeFiles/test_ib_factorization.dir/test_ib_factorization.cpp.o" "gcc" "tests/core/CMakeFiles/test_ib_factorization.dir/test_ib_factorization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hqr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/hqr_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/hqr_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/trees/CMakeFiles/hqr_trees.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/hqr_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/hqr_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hqr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
