file(REMOVE_RECURSE
  "CMakeFiles/test_ib_factorization.dir/test_ib_factorization.cpp.o"
  "CMakeFiles/test_ib_factorization.dir/test_ib_factorization.cpp.o.d"
  "test_ib_factorization"
  "test_ib_factorization.pdb"
  "test_ib_factorization[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ib_factorization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
