# Empty compiler generated dependencies file for test_ib_factorization.
# This may be replaced when dependencies are built.
