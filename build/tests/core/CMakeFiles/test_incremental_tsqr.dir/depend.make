# Empty dependencies file for test_incremental_tsqr.
# This may be replaced when dependencies are built.
