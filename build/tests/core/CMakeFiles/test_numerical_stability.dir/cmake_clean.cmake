file(REMOVE_RECURSE
  "CMakeFiles/test_numerical_stability.dir/test_numerical_stability.cpp.o"
  "CMakeFiles/test_numerical_stability.dir/test_numerical_stability.cpp.o.d"
  "test_numerical_stability"
  "test_numerical_stability.pdb"
  "test_numerical_stability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numerical_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
