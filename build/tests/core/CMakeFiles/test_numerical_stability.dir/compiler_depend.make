# Empty compiler generated dependencies file for test_numerical_stability.
# This may be replaced when dependencies are built.
