file(REMOVE_RECURSE
  "CMakeFiles/test_random_trees.dir/test_random_trees.cpp.o"
  "CMakeFiles/test_random_trees.dir/test_random_trees.cpp.o.d"
  "test_random_trees"
  "test_random_trees.pdb"
  "test_random_trees[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
