# Empty compiler generated dependencies file for test_random_trees.
# This may be replaced when dependencies are built.
