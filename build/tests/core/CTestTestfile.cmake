# CMake generated Testfile for 
# Source directory: /root/repo/tests/core
# Build directory: /root/repo/build/tests/core
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core/test_factorization[1]_include.cmake")
include("/root/repo/build/tests/core/test_random_trees[1]_include.cmake")
include("/root/repo/build/tests/core/test_incremental_tsqr[1]_include.cmake")
include("/root/repo/build/tests/core/test_autotune[1]_include.cmake")
include("/root/repo/build/tests/core/test_ib_factorization[1]_include.cmake")
include("/root/repo/build/tests/core/test_numerical_stability[1]_include.cmake")
