# CMake generated Testfile for 
# Source directory: /root/repo/tests/dist
# Build directory: /root/repo/build/tests/dist
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/dist/test_distribution[1]_include.cmake")
