
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/kernels/test_ib_kernels.cpp" "tests/kernels/CMakeFiles/test_ib_kernels.dir/test_ib_kernels.cpp.o" "gcc" "tests/kernels/CMakeFiles/test_ib_kernels.dir/test_ib_kernels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernels/CMakeFiles/hqr_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/hqr_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hqr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
