file(REMOVE_RECURSE
  "CMakeFiles/test_ib_kernels.dir/test_ib_kernels.cpp.o"
  "CMakeFiles/test_ib_kernels.dir/test_ib_kernels.cpp.o.d"
  "test_ib_kernels"
  "test_ib_kernels.pdb"
  "test_ib_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ib_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
