# Empty compiler generated dependencies file for test_ib_kernels.
# This may be replaced when dependencies are built.
