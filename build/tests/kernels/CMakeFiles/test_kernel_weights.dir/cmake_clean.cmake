file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_weights.dir/test_kernel_weights.cpp.o"
  "CMakeFiles/test_kernel_weights.dir/test_kernel_weights.cpp.o.d"
  "test_kernel_weights"
  "test_kernel_weights.pdb"
  "test_kernel_weights[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
