# Empty compiler generated dependencies file for test_kernel_weights.
# This may be replaced when dependencies are built.
