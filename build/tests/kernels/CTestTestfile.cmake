# CMake generated Testfile for 
# Source directory: /root/repo/tests/kernels
# Build directory: /root/repo/build/tests/kernels
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/kernels/test_tile_kernels[1]_include.cmake")
include("/root/repo/build/tests/kernels/test_kernel_weights[1]_include.cmake")
include("/root/repo/build/tests/kernels/test_ib_kernels[1]_include.cmake")
