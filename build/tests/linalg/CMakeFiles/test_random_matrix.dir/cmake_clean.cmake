file(REMOVE_RECURSE
  "CMakeFiles/test_random_matrix.dir/test_random_matrix.cpp.o"
  "CMakeFiles/test_random_matrix.dir/test_random_matrix.cpp.o.d"
  "test_random_matrix"
  "test_random_matrix.pdb"
  "test_random_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
