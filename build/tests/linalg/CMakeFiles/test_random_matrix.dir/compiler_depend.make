# Empty compiler generated dependencies file for test_random_matrix.
# This may be replaced when dependencies are built.
