file(REMOVE_RECURSE
  "CMakeFiles/test_ref_qr.dir/test_ref_qr.cpp.o"
  "CMakeFiles/test_ref_qr.dir/test_ref_qr.cpp.o.d"
  "test_ref_qr"
  "test_ref_qr.pdb"
  "test_ref_qr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ref_qr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
