# Empty dependencies file for test_ref_qr.
# This may be replaced when dependencies are built.
