file(REMOVE_RECURSE
  "CMakeFiles/test_tiled_matrix.dir/test_tiled_matrix.cpp.o"
  "CMakeFiles/test_tiled_matrix.dir/test_tiled_matrix.cpp.o.d"
  "test_tiled_matrix"
  "test_tiled_matrix.pdb"
  "test_tiled_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tiled_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
