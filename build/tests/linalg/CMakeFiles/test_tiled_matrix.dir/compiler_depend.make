# Empty compiler generated dependencies file for test_tiled_matrix.
# This may be replaced when dependencies are built.
