# CMake generated Testfile for 
# Source directory: /root/repo/tests/linalg
# Build directory: /root/repo/build/tests/linalg
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/linalg/test_matrix[1]_include.cmake")
include("/root/repo/build/tests/linalg/test_blas[1]_include.cmake")
include("/root/repo/build/tests/linalg/test_norms[1]_include.cmake")
include("/root/repo/build/tests/linalg/test_householder[1]_include.cmake")
include("/root/repo/build/tests/linalg/test_ref_qr[1]_include.cmake")
include("/root/repo/build/tests/linalg/test_tiled_matrix[1]_include.cmake")
include("/root/repo/build/tests/linalg/test_random_matrix[1]_include.cmake")
