file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_q.dir/test_parallel_q.cpp.o"
  "CMakeFiles/test_parallel_q.dir/test_parallel_q.cpp.o.d"
  "test_parallel_q"
  "test_parallel_q.pdb"
  "test_parallel_q[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_q.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
