# Empty dependencies file for test_parallel_q.
# This may be replaced when dependencies are built.
