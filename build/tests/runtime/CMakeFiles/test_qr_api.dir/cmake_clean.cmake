file(REMOVE_RECURSE
  "CMakeFiles/test_qr_api.dir/test_qr_api.cpp.o"
  "CMakeFiles/test_qr_api.dir/test_qr_api.cpp.o.d"
  "test_qr_api"
  "test_qr_api.pdb"
  "test_qr_api[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qr_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
