# Empty compiler generated dependencies file for test_qr_api.
# This may be replaced when dependencies are built.
