file(REMOVE_RECURSE
  "CMakeFiles/test_accelerators.dir/test_accelerators.cpp.o"
  "CMakeFiles/test_accelerators.dir/test_accelerators.cpp.o.d"
  "test_accelerators"
  "test_accelerators.pdb"
  "test_accelerators[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accelerators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
