file(REMOVE_RECURSE
  "CMakeFiles/test_scalapack_model.dir/test_scalapack_model.cpp.o"
  "CMakeFiles/test_scalapack_model.dir/test_scalapack_model.cpp.o.d"
  "test_scalapack_model"
  "test_scalapack_model.pdb"
  "test_scalapack_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scalapack_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
