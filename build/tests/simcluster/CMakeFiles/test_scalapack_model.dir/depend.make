# Empty dependencies file for test_scalapack_model.
# This may be replaced when dependencies are built.
