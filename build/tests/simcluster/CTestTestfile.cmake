# CMake generated Testfile for 
# Source directory: /root/repo/tests/simcluster
# Build directory: /root/repo/build/tests/simcluster
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/simcluster/test_simulator[1]_include.cmake")
include("/root/repo/build/tests/simcluster/test_platform[1]_include.cmake")
include("/root/repo/build/tests/simcluster/test_scalapack_model[1]_include.cmake")
include("/root/repo/build/tests/simcluster/test_accelerators[1]_include.cmake")
include("/root/repo/build/tests/simcluster/test_paper_figures[1]_include.cmake")
