
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trees/test_hqr_tree.cpp" "tests/trees/CMakeFiles/test_hqr_tree.dir/test_hqr_tree.cpp.o" "gcc" "tests/trees/CMakeFiles/test_hqr_tree.dir/test_hqr_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trees/CMakeFiles/hqr_trees.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/hqr_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/hqr_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hqr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
