file(REMOVE_RECURSE
  "CMakeFiles/test_hqr_tree.dir/test_hqr_tree.cpp.o"
  "CMakeFiles/test_hqr_tree.dir/test_hqr_tree.cpp.o.d"
  "test_hqr_tree"
  "test_hqr_tree.pdb"
  "test_hqr_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hqr_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
