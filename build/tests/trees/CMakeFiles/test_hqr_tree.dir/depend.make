# Empty dependencies file for test_hqr_tree.
# This may be replaced when dependencies are built.
