file(REMOVE_RECURSE
  "CMakeFiles/test_panel_trees.dir/test_panel_trees.cpp.o"
  "CMakeFiles/test_panel_trees.dir/test_panel_trees.cpp.o.d"
  "test_panel_trees"
  "test_panel_trees.pdb"
  "test_panel_trees[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_panel_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
