# Empty dependencies file for test_panel_trees.
# This may be replaced when dependencies are built.
