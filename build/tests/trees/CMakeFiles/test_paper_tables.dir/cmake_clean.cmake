file(REMOVE_RECURSE
  "CMakeFiles/test_paper_tables.dir/test_paper_tables.cpp.o"
  "CMakeFiles/test_paper_tables.dir/test_paper_tables.cpp.o.d"
  "test_paper_tables"
  "test_paper_tables.pdb"
  "test_paper_tables[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
