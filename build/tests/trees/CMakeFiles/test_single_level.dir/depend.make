# Empty dependencies file for test_single_level.
# This may be replaced when dependencies are built.
