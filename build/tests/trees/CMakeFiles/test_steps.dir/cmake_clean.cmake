file(REMOVE_RECURSE
  "CMakeFiles/test_steps.dir/test_steps.cpp.o"
  "CMakeFiles/test_steps.dir/test_steps.cpp.o.d"
  "test_steps"
  "test_steps.pdb"
  "test_steps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
