# Empty compiler generated dependencies file for test_steps.
# This may be replaced when dependencies are built.
