# CMake generated Testfile for 
# Source directory: /root/repo/tests/trees
# Build directory: /root/repo/build/tests/trees
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/trees/test_panel_trees[1]_include.cmake")
include("/root/repo/build/tests/trees/test_single_level[1]_include.cmake")
include("/root/repo/build/tests/trees/test_hqr_tree[1]_include.cmake")
include("/root/repo/build/tests/trees/test_validate[1]_include.cmake")
include("/root/repo/build/tests/trees/test_steps[1]_include.cmake")
include("/root/repo/build/tests/trees/test_paper_tables[1]_include.cmake")
include("/root/repo/build/tests/trees/test_elimination[1]_include.cmake")
include("/root/repo/build/tests/trees/test_models[1]_include.cmake")
