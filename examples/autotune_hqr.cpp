// Auto-tune the HQR parameter space for a given matrix shape and platform:
// the systematic exploration the paper names as future work (§VI), made
// cheap by the calibrated simulator. Prints the top candidates and the
// paper-style interpretation of the winner.
//
//   ./autotune_hqr --m=286720 --n=4480 --nodes=60
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/autotune.hpp"

using namespace hqr;

int main(int argc, char** argv) {
  Cli cli(argc, argv, {{"m", "143360"},
                       {"n", "4480"},
                       {"b", "280"},
                       {"nodes", "60"},
                       {"top", "10"}});
  const long long m = cli.integer("m");
  const long long n = cli.integer("n");
  const int b = static_cast<int>(cli.integer("b"));
  const int nodes = static_cast<int>(cli.integer("nodes"));
  const int mt = static_cast<int>((m + b - 1) / b);
  const int nt = static_cast<int>((n + b - 1) / b);

  SimOptions opts;
  opts.platform = Platform::edel();
  opts.b = b;

  std::cout << "tuning HQR for " << m << " x " << n << " (" << mt << " x "
            << nt << " tiles) on " << nodes << " nodes...\n";
  AutotuneResult r = autotune_hqr(mt, nt, m, n, nodes, opts);

  TextTable table({"rank", "p", "q", "a", "low", "high", "domino", "GFlop/s",
                   "% peak", "messages"});
  const int top = std::min<int>(static_cast<int>(cli.integer("top")),
                                static_cast<int>(r.explored.size()));
  for (int i = 0; i < top; ++i) {
    const auto& c = r.explored[static_cast<std::size_t>(i)];
    table.row()
        .add(i + 1)
        .add(c.config.p)
        .add(c.grid_q)
        .add(c.config.a)
        .add(tree_name(c.config.low))
        .add(tree_name(c.config.high))
        .add(c.config.domino ? "on" : "off")
        .add(c.result.gflops, 5)
        .add(100.0 * c.result.peak_fraction, 3)
        .add(c.result.messages);
  }
  table.print(std::cout);
  std::cout << "\nexplored " << r.explored.size()
            << " configurations; winner: " << r.best.config.describe()
            << " on a " << r.best.config.p << "x" << r.best.grid_q
            << " grid\n";
  return 0;
}
