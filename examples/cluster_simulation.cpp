// Simulate a QR factorization on a cluster of multicore nodes and explore
// how the HQR tree parameters trade communication against parallelism —
// the experiment loop of the paper's §V, on a platform you configure.
//
//   ./cluster_simulation [--m=143360] [--n=4480] [--b=280] [--nodes=60]
//                        [--cores=8] [--p=15] [--trace=out.json]
//                        [--metrics=metrics.json] [--report]
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/algorithms.hpp"
#include "obs/obs_cli.hpp"

using namespace hqr;

int main(int argc, char** argv) {
  Cli cli(argc, argv, obs::with_obs_flags({{"m", "143360"},
                                           {"n", "4480"},
                                           {"b", "280"},
                                           {"nodes", "60"},
                                           {"cores", "8"},
                                           {"p", "15"},
                                           {"latency_us", "1.5"},
                                           {"bandwidth_gbs", "1.8"}}));
  const long long m = cli.integer("m");
  const long long n = cli.integer("n");
  const int b = static_cast<int>(cli.integer("b"));
  const int nodes = static_cast<int>(cli.integer("nodes"));
  const int p = static_cast<int>(cli.integer("p"));
  HQR_CHECK(nodes % p == 0, "nodes must be a multiple of p");
  const int q = nodes / p;
  const int mt = static_cast<int>((m + b - 1) / b);
  const int nt = static_cast<int>((n + b - 1) / b);

  SimOptions opts;
  opts.platform = Platform::edel();
  opts.platform.nodes = nodes;
  opts.platform.cores_per_node = static_cast<int>(cli.integer("cores"));
  opts.platform.latency = cli.real("latency_us") * 1e-6;
  opts.platform.bandwidth = cli.real("bandwidth_gbs") * 1e9;
  opts.b = b;

  std::cout << "platform: " << opts.platform.describe() << "\n"
            << "matrix: " << m << " x " << n << " (" << mt << " x " << nt
            << " tiles of " << b << "), virtual grid " << p << " x " << q
            << "\n\n";

  TextTable table({"low", "high", "a", "domino", "GFlop/s", "% peak",
                   "messages", "util"});
  for (TreeKind low : {TreeKind::Flat, TreeKind::Greedy}) {
    for (TreeKind high : {TreeKind::Flat, TreeKind::Fibonacci}) {
      for (int a : {1, 4}) {
        for (bool domino : {false, true}) {
          HqrConfig cfg{p, a, low, high, domino};
          SimResult r =
              simulate_algorithm(make_hqr_run(mt, nt, cfg, q), m, n, opts);
          table.row()
              .add(tree_name(low))
              .add(tree_name(high))
              .add(a)
              .add(domino ? "on" : "off")
              .add(r.gflops, 5)
              .add(100.0 * r.peak_fraction, 3)
              .add(r.messages)
              .add(r.core_utilization, 3);
        }
      }
    }
  }
  table.print(std::cout);

  // Optional observability pass over one representative configuration:
  // --trace writes a Gantt trace (.json opens in Perfetto, else CSV),
  // --metrics the simulator counters, --report the bottleneck analysis.
  obs::ObsSession obs(cli);
  if (obs.any_enabled() || obs.report_requested()) {
    SimOptions traced = opts;
    traced.trace = obs.trace();
    traced.metrics = obs.metrics();
    HqrConfig cfg{p, 4, TreeKind::Greedy, TreeKind::Fibonacci, true};
    AlgorithmRun run = make_hqr_run(mt, nt, cfg, q);
    simulate_algorithm(run, m, n, traced);
    std::cout << "\nobservability pass (" << run.name << "):\n";
    TaskGraph graph(expand_to_kernels(run.list, mt, nt), mt, nt);
    obs.finish(&graph);
  }

  // Best single recommendation for this shape, echoing §V-C's reasoning.
  std::cout << "\nHint: tall-skinny shapes want parallel low-level trees and "
               "the domino coupling; square shapes want a = 4 (TS kernels) "
               "and a flat high-level tree.\n";
  return 0;
}
