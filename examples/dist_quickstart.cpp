// Distributed quickstart: factor a random matrix across several local
// ranks (forked processes talking over a socket mesh), verify on rank 0
// that the gathered result is bit-identical to a single-process
// factorization, and compare the measured message traffic head-to-head
// with the cluster simulator's prediction.
//
//   ./dist_quickstart [--ranks=4] [--m=1024] [--n=1024] [--b=128]
//                     [--dist=2d|block1d|cyclic1d] [--grid-p=2] [--grid-q=2]
//                     [--p=4] [--a=2] [--low=greedy] [--high=fibonacci]
//                     [--threads=2] [--sched=steal|global] [--ib=0]
//                     [--transport=unix|tcp] [--bcast=binomial|eager]
//                     [--timeout=120] [--seed=42]
//                     [--trace=dist_trace] [--progress]
//
// --transport picks how the rank mesh is wired: "unix" (default) forks over
// pre-connected socketpairs, "tcp" runs the loopback rendezvous + all-pairs
// TCP mesh that a multi-host launcher would use. --bcast picks how a
// completed tile reaches its consumer ranks: "binomial" (default) relays
// down a broadcast tree, "eager" posts every copy from the producer. Both
// choices leave the factors and the total message count bit-for-bit
// unchanged — only the wiring and the per-rank send counts move.
//
// With --trace (or its older spelling --trace-prefix), every rank writes
// <prefix>.rank<r>.csv — clock-aligned via the startup sync handshake and
// carrying one flow-event half per inter-rank tile message — and the parent
// merges them into <prefix>.json (one Perfetto process row per rank, one
// thread track per worker, arrows for tile transfers). The parent then
// cross-checks the dynamic trace against the static CommPlan: complete
// flow count must equal the planned message count, causally ordered.
//
// With --progress, ranks stream telemetry heartbeats to rank 0, which
// prints live per-rank progress (tasks done, send-queue depth, data
// traffic) on stderr while the DAG executes.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "dag/partition.hpp"
#include "distrun/dist_exec.hpp"
#include "linalg/norms.hpp"
#include "linalg/random_matrix.hpp"
#include "net/launcher.hpp"
#include "simcluster/simulator.hpp"
#include "trees/hqr_tree.hpp"
#include "trees/validate.hpp"

using namespace hqr;

namespace {

Distribution make_distribution(const Cli& cli, int ranks, int mt) {
  const std::string kind = cli.str("dist");
  if (kind == "2d") {
    const int p = static_cast<int>(cli.integer("grid-p"));
    const int q = static_cast<int>(cli.integer("grid-q"));
    HQR_CHECK(p * q == ranks, "--grid-p * --grid-q must equal --ranks");
    return Distribution::block_cyclic_2d(p, q);
  }
  if (kind == "block1d") return Distribution::block_1d(ranks, mt);
  if (kind == "cyclic1d") return Distribution::cyclic_1d(ranks);
  HQR_CHECK(false, "unknown --dist '" << kind << "' (want 2d|block1d|cyclic1d)");
}

// Bitwise comparison of two factorizations (tiles and T factors).
bool bit_identical(const QRFactors& x, const QRFactors& y) {
  const Matrix ax = x.a().to_padded_matrix();
  const Matrix ay = y.a().to_padded_matrix();
  for (int j = 0; j < ax.cols(); ++j)
    for (int i = 0; i < ax.rows(); ++i)
      if (ax(i, j) != ay(i, j)) return false;
  for (const KernelOp& op : x.kernels()) {
    ConstMatrixView tx, ty;
    if (op.type == KernelType::GEQRT) {
      tx = x.t_geqrt(op.row, op.k);
      ty = y.t_geqrt(op.row, op.k);
    } else if (op.type == KernelType::TSQRT || op.type == KernelType::TTQRT) {
      tx = x.t_pencil(op.row, op.k);
      ty = y.t_pencil(op.row, op.k);
    } else {
      continue;
    }
    for (int j = 0; j < tx.cols; ++j)
      for (int i = 0; i < tx.rows; ++i)
        if (tx(i, j) != ty(i, j)) return false;
  }
  return true;
}

BroadcastKind bcast_from_name(const std::string& name) {
  if (name == "binomial") return BroadcastKind::Binomial;
  if (name == "eager") return BroadcastKind::Eager;
  HQR_CHECK(false, "unknown --bcast '" << name << "' (want binomial|eager)");
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv, {{"ranks", "4"},
                       {"m", "1024"},
                       {"n", "1024"},
                       {"b", "128"},
                       {"dist", "2d"},
                       {"grid-p", "2"},
                       {"grid-q", "2"},
                       {"p", "4"},
                       {"a", "2"},
                       {"low", "greedy"},
                       {"high", "fibonacci"},
                       {"domino", "true"},
                       {"threads", "2"},
                       {"sched", "steal"},
                       {"ib", "0"},
                       {"transport", "unix"},
                       {"bcast", "binomial"},
                       {"timeout", "120"},
                       {"seed", "42"},
                       {"trace", ""},
                       {"trace-prefix", ""},
                       {"progress", "false"}});
  const int ranks = static_cast<int>(cli.integer("ranks"));
  const int m = static_cast<int>(cli.integer("m"));
  const int n = static_cast<int>(cli.integer("n"));
  const int b = static_cast<int>(cli.integer("b"));
  const BroadcastKind bcast = bcast_from_name(cli.str("bcast"));
  const double timeout = static_cast<double>(cli.integer("timeout"));
  const std::string trace_prefix =
      !cli.str("trace").empty() ? cli.str("trace") : cli.str("trace-prefix");
  const bool progress = cli.flag("progress");

  // Everything each rank needs is rebuilt deterministically from the CLI
  // arguments inside the child — nothing is shipped at startup.
  const auto rank_main = [&](net::Comm& comm) -> int {
    Rng rng(static_cast<std::uint64_t>(cli.integer("seed")));
    Matrix a = random_gaussian(m, n, rng);
    const TiledMatrix probe = TiledMatrix::from_matrix(a, b);

    HqrConfig cfg;
    cfg.p = static_cast<int>(cli.integer("p"));
    cfg.a = static_cast<int>(cli.integer("a"));
    cfg.low = tree_from_name(cli.str("low"));
    cfg.high = tree_from_name(cli.str("high"));
    cfg.domino = cli.flag("domino");
    EliminationList list = hqr_elimination_list(probe.mt(), probe.nt(), cfg);
    check_valid(list, probe.mt(), probe.nt());

    const Distribution dist = make_distribution(cli, ranks, probe.mt());

    obs::TraceRecorder trace;
    distrun::DistOptions opts;
    opts.threads = static_cast<int>(cli.integer("threads"));
    opts.scheduler = scheduler_kind_from_name(cli.str("sched"));
    opts.ib = static_cast<int>(cli.integer("ib"));
    opts.broadcast = bcast;
    opts.progress_timeout_seconds = timeout;
    if (!trace_prefix.empty()) opts.trace = &trace;
    if (progress) {
      opts.telemetry_interval_seconds = 0.25;
      if (comm.rank() == 0) {
        opts.on_telemetry = [](const distrun::DistTelemetry& t) {
          std::fprintf(stderr,
                       "[progress] rank %d: %lld/%lld tasks, sendq %lld "
                       "frames, data %lld out / %lld in\n",
                       t.rank, t.tasks_done, t.tasks_total,
                       t.send_queue_frames, t.data_messages_sent,
                       t.data_messages_recv);
        };
      }
    }

    distrun::DistStats stats;
    QRFactors f = distrun::dist_qr_factorize(comm, a, b, list, dist, opts,
                                             &stats);
    if (!trace_prefix.empty())
      trace.save_csv(trace_prefix + ".rank" + std::to_string(comm.rank()) +
                     ".csv");
    if (comm.rank() != 0) return 0;

    std::cout << "algorithm: " << cfg.describe() << "\n"
              << "matrix: " << m << " x " << n << " elements, " << probe.mt()
              << " x " << probe.nt() << " tiles of " << b << "\n"
              << "ranks: " << ranks << " (" << dist.describe() << "), "
              << opts.threads << " thread(s) each\n"
              << "transport: " << cli.str("transport") << ", broadcast: "
              << cli.str("bcast") << "\n"
              << "factorized in " << stats.seconds << " s\n";

    TextTable t({"rank", "tasks", "msgs sent", "bytes sent", "msgs recv"});
    for (const distrun::DistRankStats& r : stats.ranks)
      t.row()
          .add(r.rank)
          .add(r.tasks)
          .add(r.data_messages_sent)
          .add(r.data_bytes_sent)
          .add(r.data_messages_recv);
    t.print(std::cout);

    // Measured traffic vs the simulator's model, same graph + distribution.
    long long measured_msgs = 0;
    for (const distrun::DistRankStats& r : stats.ranks)
      measured_msgs += r.data_messages_sent;
    KernelList kernels = expand_to_kernels(list, probe.mt(), probe.nt());
    TaskGraph graph(kernels, probe.mt(), probe.nt());
    SimOptions sopts;
    sopts.b = b;
    sopts.broadcast = bcast;
    const SimResult sim = simulate_qr(graph, dist, m, n, sopts);
    std::cout << "messages: measured " << measured_msgs << ", planned "
              << stats.plan_messages << ", simulated " << sim.messages << "\n"
              << "model volume: " << stats.plan_volume_bytes / 1e9
              << " GB (simulator: " << sim.volume_gbytes << " GB)\n";
    const bool msgs_ok =
        measured_msgs == stats.plan_messages && sim.messages == measured_msgs;

    // Verify: gathered factors must be bit-identical to a one-process run,
    // and A = QR to machine precision.
    QRFactors ref = qr_factorize_sequential(a, b, list, opts.ib);
    const bool identical = bit_identical(f, ref);
    std::cout << "bit-identical to single-process run: "
              << (identical ? "yes" : "NO") << "\n";
    Matrix q = build_q(f);
    Matrix q_slice = materialize(q.block(0, 0, m, f.n()));
    Matrix r = extract_r(f);
    const double orth = orthogonality_error(q.view());
    const double resid =
        factorization_residual(a.view(), q_slice.view(), r.view());
    std::cout << "||Q^T Q - I||_F          = " << orth << "\n"
              << "||A - Q R||_F / ||A||_F  = " << resid << "\n";
    const bool ok = identical && msgs_ok && orth < 1e-12 && resid < 1e-12;
    std::cout << (ok ? "OK: distributed run verified\n"
                     : "FAILURE: distributed run wrong\n");
    return ok ? 0 : 1;
  };

  net::LaunchOptions lopts;
  lopts.timeout_seconds = timeout > 0 ? timeout * 2 : 0;
  lopts.transport.kind = cli.str("transport");
  const int rc = net::run_ranks(ranks, rank_main, lopts);
  if (rc != 0) {
    std::cerr << "distributed run failed (exit " << rc << ")\n";
    return rc;
  }
  if (!trace_prefix.empty()) {
    std::vector<std::string> csvs;
    for (int r = 0; r < ranks; ++r)
      csvs.push_back(trace_prefix + ".rank" + std::to_string(r) + ".csv");
    const obs::TraceRecorder merged = obs::merge_rank_traces(csvs);
    merged.save_chrome_json(trace_prefix + ".json");
    std::cout << "merged trace: " << trace_prefix << ".json (" << merged.size()
              << " tasks, " << merged.complete_flow_count() << " flows)\n";

    // Cross-check the dynamic trace against the static plan the ranks
    // executed (rebuilt deterministically from the same CLI arguments):
    // every planned inter-rank message must appear as one paired flow whose
    // aligned send timestamp precedes its receive timestamp.
    const int mt = (m + b - 1) / b, nt = (n + b - 1) / b;
    HqrConfig cfg;
    cfg.p = static_cast<int>(cli.integer("p"));
    cfg.a = static_cast<int>(cli.integer("a"));
    cfg.low = tree_from_name(cli.str("low"));
    cfg.high = tree_from_name(cli.str("high"));
    cfg.domino = cli.flag("domino");
    const EliminationList list = hqr_elimination_list(mt, nt, cfg);
    const Distribution dist = make_distribution(cli, ranks, mt);
    const KernelList kernels = expand_to_kernels(list, mt, nt);
    const TaskGraph graph(kernels, mt, nt);
    const CommPlan plan(graph, dist, bcast_from_name(cli.str("bcast")));

    long long complete = 0, causal = 0;
    for (const obs::FlowEvent& fl : merged.flows()) {
      if (!fl.complete()) continue;
      ++complete;
      if (fl.send_time < fl.recv_time) ++causal;
    }
    std::cout << "flow events: " << complete << " paired (planned "
              << plan.messages() << "), " << causal
              << " causally ordered after clock alignment\n";
    if (complete != plan.messages() || causal != complete) {
      std::cerr << "FAILURE: trace flows disagree with the plan\n";
      return 1;
    }
  }
  return 0;
}
