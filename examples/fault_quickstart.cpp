// Fault-tolerance quickstart: factor a matrix across local ranks while a
// deterministic fault plan kills one of them mid-run, let the launcher fork
// a replacement that re-executes the lost partition, and verify that the
// recovered factorization is bit-identical to the fault-free sequential
// run. Then cross-validate the recovery cost against the cluster
// simulator's prediction for the same plan: the number of tasks the
// replacement re-executes is deterministic (the victim's partition size),
// so sim == measured == CommPlan::tasks_on(victim) must hold exactly,
// while replayed-frame counts are timing-dependent and only bounded by
// CommPlan::received_by(victim).
//
//   ./fault_quickstart [--ranks=4] [--m=768] [--n=768] [--b=128]
//                      [--plan='kill:2@3'] [--transport=unix|tcp]
//                      [--bcast=binomial|eager] [--threads=2]
//                      [--timeout=120] [--seed=42] [--trace=ft_trace]
//
// --plan uses the fault/plan.hpp grammar: kill:<rank>@<k>,
// drop:<rank>-<peer>@<k>, delay:<rank>-<peer>@<k>+<seconds>, joined by
// ';'. Recovery is transport-blind (replacements receive their mesh as
// passed descriptors), so the same run works under unix and tcp.
//
// With --trace, every surviving rank writes <prefix>.rank<r>.csv and the
// parent merges them into <prefix>.json, same as dist_quickstart. A killed
// victim never writes its file — the replacement does, so under a kill
// plan the merged timeline shows the victim's row going quiet at the kill
// and the replacement's re-execution plus the survivors' replay flows.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "dag/partition.hpp"
#include "distrun/dist_exec.hpp"
#include "fault/ft_launcher.hpp"
#include "linalg/norms.hpp"
#include "linalg/random_matrix.hpp"
#include "obs/trace.hpp"
#include "simcluster/simulator.hpp"
#include "trees/hqr_tree.hpp"
#include "trees/validate.hpp"

using namespace hqr;

namespace {

// Bitwise comparison of two factorizations (tiles and T factors).
bool bit_identical(const QRFactors& x, const QRFactors& y) {
  const Matrix ax = x.a().to_padded_matrix();
  const Matrix ay = y.a().to_padded_matrix();
  for (int j = 0; j < ax.cols(); ++j)
    for (int i = 0; i < ax.rows(); ++i)
      if (ax(i, j) != ay(i, j)) return false;
  for (const KernelOp& op : x.kernels()) {
    ConstMatrixView tx, ty;
    if (op.type == KernelType::GEQRT) {
      tx = x.t_geqrt(op.row, op.k);
      ty = y.t_geqrt(op.row, op.k);
    } else if (op.type == KernelType::TSQRT || op.type == KernelType::TTQRT) {
      tx = x.t_pencil(op.row, op.k);
      ty = y.t_pencil(op.row, op.k);
    } else {
      continue;
    }
    for (int j = 0; j < tx.cols; ++j)
      for (int i = 0; i < tx.rows; ++i)
        if (tx(i, j) != ty(i, j)) return false;
  }
  return true;
}

// Per-rank fault stats cross the launcher process boundary as a small
// fragment file written by rank 0 (the rank that gathered them).
void write_fragment(const std::string& path,
                    const std::vector<distrun::DistRankStats>& ranks) {
  std::ofstream out(path);
  HQR_CHECK(out.good(), "cannot write " << path);
  for (const distrun::DistRankStats& r : ranks)
    out << "rank " << r.rank << ' ' << r.incarnation << ' ' << r.tasks << ' '
        << r.faults_injected << ' ' << r.peers_down << ' ' << r.peers_replaced
        << ' ' << r.frames_dropped << ' ' << r.frames_replayed << ' '
        << r.bytes_replayed << ' ' << r.data_messages_sent << '\n';
  HQR_CHECK(out.good(), "write to " << path << " failed");
}

std::vector<distrun::DistRankStats> read_fragment(const std::string& path) {
  std::ifstream in(path);
  HQR_CHECK(in.good(), "missing fragment " << path
                                           << " (did rank 0 fail early?)");
  std::vector<distrun::DistRankStats> ranks;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string key;
    distrun::DistRankStats r;
    ls >> key >> r.rank >> r.incarnation >> r.tasks >> r.faults_injected >>
        r.peers_down >> r.peers_replaced >> r.frames_dropped >>
        r.frames_replayed >> r.bytes_replayed >> r.data_messages_sent;
    HQR_CHECK(key == "rank" && ls, "malformed fragment line '" << line << "'");
    ranks.push_back(r);
  }
  return ranks;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv, {{"ranks", "4"},
                       {"m", "768"},
                       {"n", "768"},
                       {"b", "128"},
                       {"grid-p", "2"},
                       {"grid-q", "2"},
                       {"p", "4"},
                       {"a", "2"},
                       {"low", "greedy"},
                       {"high", "fibonacci"},
                       {"domino", "true"},
                       {"threads", "2"},
                       {"plan", "kill:2@3"},
                       {"transport", "unix"},
                       {"bcast", "binomial"},
                       {"timeout", "120"},
                       {"seed", "42"},
                       {"trace", ""}});
  const int ranks = static_cast<int>(cli.integer("ranks"));
  const int m = static_cast<int>(cli.integer("m"));
  const int n = static_cast<int>(cli.integer("n"));
  const int b = static_cast<int>(cli.integer("b"));
  const int gp = static_cast<int>(cli.integer("grid-p"));
  const int gq = static_cast<int>(cli.integer("grid-q"));
  HQR_CHECK(gp * gq == ranks, "--grid-p * --grid-q must equal --ranks");
  const BroadcastKind bcast =
      cli.str("bcast") == "eager" ? BroadcastKind::Eager
                                  : BroadcastKind::Binomial;
  const double timeout = static_cast<double>(cli.integer("timeout"));
  const std::string trace_prefix = cli.str("trace");
  const fault::FaultPlan fplan = fault::FaultPlan::parse(cli.str("plan"));
  const std::string fragment =
      "fault_quickstart_" + cli.str("transport") + ".tmp";

  const auto rank_main = [&](net::Comm& comm,
                             const fault::FtRankContext& ctx) -> int {
    Rng rng(static_cast<std::uint64_t>(cli.integer("seed")));
    Matrix a = random_gaussian(m, n, rng);
    const TiledMatrix probe = TiledMatrix::from_matrix(a, b);

    HqrConfig cfg;
    cfg.p = static_cast<int>(cli.integer("p"));
    cfg.a = static_cast<int>(cli.integer("a"));
    cfg.low = tree_from_name(cli.str("low"));
    cfg.high = tree_from_name(cli.str("high"));
    cfg.domino = cli.flag("domino");
    EliminationList list = hqr_elimination_list(probe.mt(), probe.nt(), cfg);
    check_valid(list, probe.mt(), probe.nt());
    const Distribution dist = Distribution::block_cyclic_2d(gp, gq);

    obs::TraceRecorder trace;
    distrun::DistOptions opts;
    opts.threads = static_cast<int>(cli.integer("threads"));
    opts.broadcast = bcast;
    opts.progress_timeout_seconds = timeout;
    if (!trace_prefix.empty()) opts.trace = &trace;
    opts.fault.faults = ctx.faults;
    opts.fault.recovery = true;
    opts.fault.is_replacement = ctx.is_replacement;
    opts.fault.incarnation = ctx.incarnation;
    opts.fault.control_fd = ctx.control_fd;
    opts.fault.on_failure = [&](const fault::RankFailure& f) {
      std::fprintf(stderr, "[rank %d] observed: %s\n", comm.rank(),
                   f.describe().c_str());
    };

    distrun::DistStats stats;
    QRFactors f =
        distrun::dist_qr_factorize(comm, a, b, list, dist, opts, &stats);
    if (!trace_prefix.empty())
      trace.save_csv(trace_prefix + ".rank" + std::to_string(comm.rank()) +
                     ".csv");
    if (comm.rank() != 0) return 0;

    write_fragment(fragment, stats.ranks);
    std::cout << "plan: " << fplan.describe() << "\n"
              << "matrix: " << m << " x " << n << ", tiles " << probe.mt()
              << " x " << probe.nt() << " of " << b << ", ranks " << ranks
              << " (" << dist.describe() << ")\n"
              << "transport: " << cli.str("transport") << ", broadcast: "
              << cli.str("bcast") << "\n"
              << "factorized in " << stats.seconds << " s\n";
    TextTable t({"rank", "inc", "tasks", "sent", "replayed", "dropped",
                 "peers down"});
    for (const distrun::DistRankStats& r : stats.ranks)
      t.row()
          .add(r.rank)
          .add(r.incarnation)
          .add(r.tasks)
          .add(r.data_messages_sent)
          .add(r.frames_replayed)
          .add(r.frames_dropped)
          .add(r.peers_down);
    t.print(std::cout);

    // The recovered factorization must be bit-identical to the fault-free
    // sequential run — recovery is exact re-execution, not approximation.
    QRFactors ref = qr_factorize_sequential(a, b, list, opts.ib);
    const bool identical = bit_identical(f, ref);
    Matrix q = build_q(f);
    Matrix q_slice = materialize(q.block(0, 0, m, f.n()));
    Matrix r = extract_r(f);
    const double orth = orthogonality_error(q.view());
    const double resid =
        factorization_residual(a.view(), q_slice.view(), r.view());
    std::cout << "bit-identical to fault-free sequential run: "
              << (identical ? "yes" : "NO") << "\n"
              << "||Q^T Q - I||_F          = " << orth << "\n"
              << "||A - Q R||_F / ||A||_F  = " << resid << "\n";
    return identical && orth < 1e-12 && resid < 1e-12 ? 0 : 1;
  };

  fault::FtLaunchOptions lopts;
  lopts.launch.timeout_seconds = timeout > 0 ? timeout * 2 : 0;
  lopts.launch.transport.kind = cli.str("transport");
  lopts.plan = fplan;
  const fault::FtLaunchReport report = run_ranks_ft(ranks, rank_main, lopts);
  for (const fault::RankFailure& f : report.failures)
    std::cout << "launcher observed: " << f.describe() << "\n";
  std::cout << "replacements forked: " << report.replacements_forked
            << ", links re-wired: " << report.links_rewired << "\n";
  if (!report.ok()) {
    std::cerr << "FAILURE: recovered run did not verify (rank "
              << report.launch.failed_rank << ")\n";
    return 1;
  }
  if (!trace_prefix.empty()) {
    std::vector<std::string> csvs;
    for (int r = 0; r < ranks; ++r)
      csvs.push_back(trace_prefix + ".rank" + std::to_string(r) + ".csv");
    const obs::TraceRecorder merged = obs::merge_rank_traces(csvs);
    merged.save_chrome_json(trace_prefix + ".json");
    std::cout << "merged trace: " << trace_prefix << ".json (" << merged.size()
              << " tasks, " << merged.complete_flow_count() << " flows)\n";
    for (int r = 0; r < ranks; ++r)
      std::remove((trace_prefix + ".rank" + std::to_string(r) + ".csv").c_str());
  }

  // Cross-validate the measured recovery against the simulator's
  // prediction for the same fault plan.
  const std::vector<distrun::DistRankStats> measured = read_fragment(fragment);
  std::remove(fragment.c_str());
  const int mt = (m + b - 1) / b, nt = (n + b - 1) / b;
  HqrConfig cfg;
  cfg.p = static_cast<int>(cli.integer("p"));
  cfg.a = static_cast<int>(cli.integer("a"));
  cfg.low = tree_from_name(cli.str("low"));
  cfg.high = tree_from_name(cli.str("high"));
  cfg.domino = cli.flag("domino");
  const EliminationList list = hqr_elimination_list(mt, nt, cfg);
  const KernelList kernels = expand_to_kernels(list, mt, nt);
  const TaskGraph graph(kernels, mt, nt);
  const Distribution dist = Distribution::block_cyclic_2d(gp, gq);
  const CommPlan plan(graph, dist, bcast);
  SimOptions sopts;
  sopts.b = b;
  sopts.broadcast = bcast;
  sopts.fault_plan = fplan;
  const SimResult sim = simulate_qr(graph, dist, m, n, sopts);

  bool ok = true;
  for (const fault::FaultAction& act : fplan.actions) {
    if (act.kind != fault::FaultKind::KillRank) continue;
    const int victim = act.rank;
    const distrun::DistRankStats& vic = measured[static_cast<std::size_t>(victim)];
    const long long planned = plan.tasks_on(victim);
    long long replayed = 0;
    for (const distrun::DistRankStats& r : measured)
      replayed += r.frames_replayed;
    std::cout << "victim rank " << victim << ": incarnation "
              << vic.incarnation << "\n"
              << "tasks re-executed: measured " << vic.tasks << ", simulated "
              << sim.tasks_reexecuted << ", partition size " << planned << "\n"
              << "frames replayed: measured " << replayed << ", simulated "
              << sim.messages_replayed << ", bound (received_by) "
              << plan.received_by(victim) << "\n"
              << "replacement sends: measured " << vic.data_messages_sent
              << ", plan sent_by " << plan.sent_by(victim) << "\n"
              << "simulated recovery: kill at " << sim.kill_seconds
              << " s, makespan " << sim.seconds << " s\n";
    // Deterministic quantity: exact agreement required.
    ok = ok && vic.incarnation >= 1 && vic.tasks == planned &&
         sim.tasks_reexecuted == planned;
    // Timing-dependent quantities: the plan bounds them.
    ok = ok && replayed <= plan.received_by(victim) &&
         sim.messages_replayed <= plan.received_by(victim) &&
         vic.data_messages_sent == plan.sent_by(victim);
  }
  std::cout << (ok ? "OK: recovery verified and cross-validated\n"
                   : "FAILURE: recovery cross-validation failed\n");
  return ok ? 0 : 1;
}
