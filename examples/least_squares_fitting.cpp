// Least-squares polynomial fitting on a tall-and-skinny Vandermonde system —
// the workload class the paper's tall-skinny experiments motivate. Solves
// min ||A x - y|| with the tile QR (hierarchical greedy trees) and compares
// against the blocked Householder reference.
//
//   ./least_squares_fitting [--samples=4000] [--degree=9] [--noise=0.01]
#include <cmath>
#include <iostream>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "core/factorization.hpp"
#include "linalg/norms.hpp"
#include "linalg/ref_qr.hpp"
#include "trees/hqr_tree.hpp"

using namespace hqr;

int main(int argc, char** argv) {
  Cli cli(argc, argv, {{"samples", "4000"},
                       {"degree", "9"},
                       {"noise", "0.01"},
                       {"b", "32"},
                       {"seed", "7"}});
  const int m = static_cast<int>(cli.integer("samples"));
  const int deg = static_cast<int>(cli.integer("degree"));
  const int n = deg + 1;
  const double noise = cli.real("noise");
  const int b = static_cast<int>(cli.integer("b"));

  // Planted polynomial, sampled on [-1, 1] with noise.
  Rng rng(static_cast<std::uint64_t>(cli.integer("seed")));
  Matrix coeff(n, 1);
  for (int j = 0; j < n; ++j) coeff(j, 0) = rng.uniform(-2.0, 2.0);

  Matrix a(m, n);
  Matrix y(m, 1);
  for (int i = 0; i < m; ++i) {
    const double x = -1.0 + 2.0 * i / (m - 1);
    double pw = 1.0, val = 0.0;
    for (int j = 0; j < n; ++j) {
      a(i, j) = pw;
      val += coeff(j, 0) * pw;
      pw *= x;
    }
    y(i, 0) = val + noise * rng.gaussian();
  }

  // Tall-and-skinny: use a many-domain hierarchical tree (all-TT greedy),
  // the configuration class the paper recommends for this shape.
  const TiledMatrix probe = TiledMatrix::from_matrix(a, b);
  HqrConfig cfg{8, 1, TreeKind::Greedy, TreeKind::Greedy, true};
  auto list = hqr_elimination_list(probe.mt(), probe.nt(), cfg);

  Matrix x_tile = tile_least_squares(a, y, b, list);
  Matrix x_ref = least_squares(a, y);

  std::cout << "Vandermonde system: " << m << " x " << n << " (" << probe.mt()
            << " x " << probe.nt() << " tiles)\n";
  std::cout << "deg  planted      tile-QR      reference\n";
  double max_err = 0.0;
  for (int j = 0; j < n; ++j) {
    std::printf("%3d  %+.6f  %+.6f  %+.6f\n", j, coeff(j, 0), x_tile(j, 0),
                x_ref(j, 0));
    max_err = std::max(max_err, std::abs(x_tile(j, 0) - x_ref(j, 0)));
  }
  std::cout << "max |tile - reference| = " << max_err << "\n";

  // Residual of the fit.
  Matrix r = y;
  gemm(Trans::No, Trans::No, -1.0, a.view(), x_tile.view(), 1.0, r.view());
  std::cout << "fit residual ||Ax - y||_2 = " << frobenius_norm(r.view())
            << " (noise level " << noise * std::sqrt(m) << ")\n";
  const bool ok = max_err < 1e-8;
  std::cout << (ok ? "OK: tile solver agrees with the reference\n"
                   : "FAILURE: solvers disagree\n");
  return ok ? 0 : 1;
}
