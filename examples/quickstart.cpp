// Quickstart: factor a random matrix with the hierarchical QR algorithm,
// executed by the shared-memory runtime, and verify the result the way the
// paper does (§V-A): Q has orthonormal columns and A = QR to machine
// precision.
//
//   ./quickstart [--m=600] [--n=360] [--b=40] [--p=4] [--a=2]
//                [--low=greedy] [--high=fibonacci] [--threads=4]
//                [--sched=steal|global]
//                [--trace=out.json] [--metrics=metrics.json] [--report]
#include <iostream>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "linalg/norms.hpp"
#include "linalg/random_matrix.hpp"
#include "obs/obs_cli.hpp"
#include "runtime/executor.hpp"
#include "trees/hqr_tree.hpp"
#include "trees/validate.hpp"

using namespace hqr;

int main(int argc, char** argv) {
  Cli cli(argc, argv,
          obs::with_obs_flags({{"m", "600"},
                               {"n", "360"},
                               {"b", "40"},
                               {"p", "4"},
                               {"a", "2"},
                               {"low", "greedy"},
                               {"high", "fibonacci"},
                               {"domino", "true"},
                               {"threads", "4"},
                               {"sched", "steal"},
                               {"seed", "42"}}));
  const int m = static_cast<int>(cli.integer("m"));
  const int n = static_cast<int>(cli.integer("n"));
  const int b = static_cast<int>(cli.integer("b"));

  // 1. Build the input.
  Rng rng(static_cast<std::uint64_t>(cli.integer("seed")));
  Matrix a = random_gaussian(m, n, rng);

  // 2. Choose the reduction trees (the elimination list fully defines the
  //    algorithm, paper §II).
  HqrConfig cfg;
  cfg.p = static_cast<int>(cli.integer("p"));
  cfg.a = static_cast<int>(cli.integer("a"));
  cfg.low = tree_from_name(cli.str("low"));
  cfg.high = tree_from_name(cli.str("high"));
  cfg.domino = cli.flag("domino");

  const TiledMatrix probe = TiledMatrix::from_matrix(a, b);
  EliminationList list = hqr_elimination_list(probe.mt(), probe.nt(), cfg);
  check_valid(list, probe.mt(), probe.nt());
  std::cout << "algorithm: " << cfg.describe() << "\n"
            << "matrix: " << m << " x " << n << " elements, " << probe.mt()
            << " x " << probe.nt() << " tiles of " << b << "\n"
            << "eliminations: " << list.size() << "\n";

  // 3. Factor with the parallel runtime. The graph is built here (rather
  //    than inside qr_factorize_parallel) so the observability layer can
  //    trace the run and chase dependencies through it.
  obs::ObsSession obs(cli);
  ExecutorOptions opts;
  opts.threads = static_cast<int>(cli.integer("threads"));
  opts.scheduler = scheduler_kind_from_name(cli.str("sched"));
  opts.trace = obs.trace();
  opts.metrics = obs.metrics();
  TiledMatrix tiled = TiledMatrix::from_matrix(a, b);
  KernelList kernels = expand_to_kernels(list, probe.mt(), probe.nt());
  TaskGraph graph(kernels, probe.mt(), probe.nt());
  QRFactors f(std::move(tiled), std::move(kernels), opts.ib);
  Stopwatch sw;
  RunStats stats = execute_parallel(f, graph, opts);
  std::cout << "factorized in " << sw.seconds() << " s with " << stats.threads
            << " threads, " << scheduler_kind_name(opts.scheduler)
            << " scheduler (" << stats.total_tasks << " kernel tasks, "
            << 100.0 * stats.reuse_hit_rate() << "% data-reuse hits, "
            << stats.steals << " steals)\n";
  obs.finish(&graph);

  // 4. Verify.
  Matrix q = build_q(f);
  Matrix q_slice = materialize(q.block(0, 0, m, f.n()));
  Matrix r = extract_r(f);
  const double orth = orthogonality_error(q.view());
  const double resid = factorization_residual(a.view(), q_slice.view(), r.view());
  std::cout << "||Q^T Q - I||_F          = " << orth << "\n"
            << "||A - Q R||_F / ||A||_F  = " << resid << "\n";
  const bool ok = orth < 1e-12 && resid < 1e-12;
  std::cout << (ok ? "OK: checks satisfied to machine precision\n"
                   : "FAILURE: factorization inaccurate\n");
  return ok ? 0 : 1;
}
