// QR-as-a-service quickstart: start a factorization server in-process,
// drive it the way external tenants would, and verify every answer
// bit-for-bit against the in-process factorization.
//
//   ./serve_quickstart [--clients=8] [--m=96] [--n=64] [--b=16]
//                      [--problems=1000] [--threads=4]
//
// Three client patterns, all over the real socket protocol:
//   1. `--clients` concurrent tenants, each submitting a QR job of its own
//      shape and tree; all share the one server worker pool, and each gets
//      back exactly the R the sequential factorization of its matrix
//      produces.
//   2. One tenant submitting `--problems` small matrices as a single batch
//      request: the server fuses them into one DAG and runs them in one
//      scheduler pass.
//   3. A streaming tall-skinny session: rows arrive block by block, the
//      running R is queried mid-stream and at close.
//
// Exits nonzero on any mismatch, so this doubles as the serve smoke test.
#include <iostream>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/factorization.hpp"
#include "core/incremental_tsqr.hpp"
#include "linalg/norms.hpp"
#include "linalg/random_matrix.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

using namespace hqr;
using namespace hqr::serve;

namespace {

Matrix sequential_r(const Matrix& a, int b, TreeChoice tree) {
  TiledMatrix t = TiledMatrix::from_matrix(a, b);
  return extract_r(
      qr_factorize_sequential(a, b, elimination_for(tree, t.mt(), t.nt())));
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv, {{"clients", "8"},
                       {"m", "96"},
                       {"n", "64"},
                       {"b", "16"},
                       {"problems", "1000"},
                       {"threads", "4"}});
  const int clients = static_cast<int>(cli.integer("clients"));
  const int m = static_cast<int>(cli.integer("m"));
  const int n = static_cast<int>(cli.integer("n"));
  const int b = static_cast<int>(cli.integer("b"));
  const int problems = static_cast<int>(cli.integer("problems"));

  ServerOptions sopts;
  sopts.threads = static_cast<int>(cli.integer("threads"));
  Server server(sopts);
  std::cout << "server listening on 127.0.0.1:" << server.port() << " with "
            << sopts.threads << " worker threads\n";

  int failures = 0;

  // -- 1. Concurrent tenants, one pool -----------------------------------
  const TreeChoice trees[] = {TreeChoice::FlatTs, TreeChoice::Binary,
                              TreeChoice::Greedy, TreeChoice::Fibonacci};
  std::vector<std::thread> tenants;
  std::vector<int> tenant_fail(clients, 0);
  for (int c = 0; c < clients; ++c) {
    tenants.emplace_back([&, c] {
      try {
        Rng rng(100 + c);
        ClientOptions copts;
        copts.port = server.port();
        copts.tenant = c;
        Client client(copts);
        Matrix a = random_gaussian(m + 8 * c, n, rng);
        const TreeChoice tree = trees[c % 4];
        QROutcome res = client.submit_qr(a, b, 0, tree);
        if (max_abs_diff(sequential_r(a, b, tree).view(), res.r.view()) !=
            0.0)
          tenant_fail[c] = 1;
      } catch (const std::exception& e) {
        std::cerr << "tenant " << c << ": " << e.what() << "\n";
        tenant_fail[c] = 1;
      }
    });
  }
  for (auto& t : tenants) t.join();
  for (int c = 0; c < clients; ++c) failures += tenant_fail[c];
  std::cout << clients << " concurrent tenants: "
            << (failures == 0 ? "all bit-identical to sequential" : "MISMATCH")
            << "\n";

  // -- 2. One fused batch of small problems ------------------------------
  ClientOptions copts;
  copts.port = server.port();
  Client client(copts);
  Rng rng(7);
  std::vector<Matrix> small;
  for (int p = 0; p < problems; ++p)
    small.push_back(random_gaussian(12 + p % 5, 8 + p % 3, rng));
  std::vector<Matrix> rs = client.submit_batch(small, 4);
  int batch_bad = 0;
  for (int p = 0; p < problems; ++p)
    if (max_abs_diff(sequential_r(small[p], 4, TreeChoice::FlatTs).view(),
                     rs[p].view()) != 0.0)
      ++batch_bad;
  failures += batch_bad;
  std::cout << problems << " problems in one fused batch: "
            << (batch_bad == 0 ? "all bit-identical" : "MISMATCH") << "\n";

  // -- 3. Streaming tall-skinny session ----------------------------------
  const int sn = 16, sb = 4;
  IncrementalTSQR local(sn, sb);
  std::int32_t stream = client.stream_open(sn, sb);
  for (int blk = 0; blk < 4; ++blk) {
    Matrix rows = random_gaussian(5 + blk, sn, rng);
    client.stream_append(stream, rows);
    local.add_rows(rows);
  }
  Matrix final_r = client.stream_close(stream);
  const bool stream_ok =
      max_abs_diff(local.r().view(), final_r.view()) == 0.0;
  if (!stream_ok) ++failures;
  std::cout << "streaming TSQR session: "
            << (stream_ok ? "matches in-process reduction bit for bit"
                          : "MISMATCH")
            << "\n";

  // -- Server-side accounting --------------------------------------------
  ServerStatus st = client.status();
  TextTable table({"counter", "value"});
  auto counter = [&](const char* name, std::int64_t value) {
    table.row().add(name).add(static_cast<long long>(value));
  };
  counter("requests_accepted", st.requests_accepted);
  counter("requests_completed", st.requests_completed);
  counter("batches_accepted", st.batches_accepted);
  counter("batch_problems", st.batch_problems);
  counter("streams_opened", st.streams_opened);
  counter("stream_rows", st.stream_rows);
  counter("max_active_dags", st.max_active_dags);
  std::cout << "\n== server status ==\n";
  table.print(std::cout);

  server.stop();
  if (failures != 0) {
    std::cerr << failures << " mismatches\n";
    return 1;
  }
  std::cout << "\nOK\n";
  return 0;
}
