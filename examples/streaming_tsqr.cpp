// Streaming tall-and-skinny QR: compute the R factor (and from it, e.g. the
// normal-equations-free least-squares basis) of a matrix far too tall to
// hold in memory, processing it in row blocks with constant memory — the
// TSQR use case of the communication-avoiding QR line of work the paper
// builds on ([6], [19]).
//
//   ./streaming_tsqr [--cols=24] [--block_rows=512] [--blocks=64]
#include <cmath>
#include <iostream>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "core/incremental_tsqr.hpp"
#include "linalg/norms.hpp"
#include "linalg/random_matrix.hpp"

using namespace hqr;

int main(int argc, char** argv) {
  Cli cli(argc, argv, {{"cols", "24"},
                       {"block_rows", "512"},
                       {"blocks", "64"},
                       {"b", "8"},
                       {"seed", "1"}});
  const int n = static_cast<int>(cli.integer("cols"));
  const int rows = static_cast<int>(cli.integer("block_rows"));
  const int blocks = static_cast<int>(cli.integer("blocks"));
  const long long total = static_cast<long long>(rows) * blocks;

  std::cout << "streaming a " << total << " x " << n
            << " matrix through TSQR in " << blocks << " blocks of " << rows
            << " rows (memory: one block + one R)\n";

  Rng rng(static_cast<std::uint64_t>(cli.integer("seed")));
  IncrementalTSQR tsqr(n, static_cast<int>(cli.integer("b")));

  // Frobenius norm accumulated on the fly: orthogonal reductions preserve
  // it, so ||R||_F at the end must equal ||A||_F — a streaming checksum.
  double ssq = 0.0;
  Stopwatch sw;
  for (int blk = 0; blk < blocks; ++blk) {
    Matrix block = random_gaussian(rows, n, rng);
    const double f = frobenius_norm(block.view());
    ssq += f * f;
    tsqr.add_rows(block);
  }
  const double secs = sw.seconds();

  Matrix r = tsqr.r();
  const double norm_a = std::sqrt(ssq);
  const double norm_r = frobenius_norm(r.view());
  std::cout << "processed " << tsqr.rows_seen() << " rows in " << secs
            << " s (" << tsqr.rows_seen() / secs / 1e6 << " Mrows/s)\n"
            << "||A||_F = " << norm_a << ", ||R||_F = " << norm_r
            << ", rel. diff = " << std::abs(norm_a - norm_r) / norm_a << "\n";

  // R's diagonal gives the column scales of the orthogonalized basis.
  std::cout << "R diagonal (first 8): ";
  for (int i = 0; i < std::min(8, n); ++i) std::cout << r(i, i) << " ";
  std::cout << "\n";

  const bool ok = std::abs(norm_a - norm_r) / norm_a < 1e-12;
  std::cout << (ok ? "OK: streaming R is an exact orthogonal reduction\n"
                   : "FAILURE: norm mismatch\n");
  return ok ? 0 : 1;
}
