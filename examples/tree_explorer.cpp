// Interactive exploration of elimination trees: prints the killer/step
// table, the tile-level map and the elimination list for any configuration
// — the tool to reason about algorithms the way §III-IV of the paper does.
//
//   ./tree_explorer --mt=12 --nt=3 --algo=hqr --p=3 --a=2
//   ./tree_explorer --mt=12 --nt=3 --algo=greedy
#include <algorithm>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "dag/dot_export.hpp"
#include "trees/hqr_tree.hpp"
#include "trees/single_level.hpp"
#include "trees/steps.hpp"
#include "trees/validate.hpp"

using namespace hqr;

int main(int argc, char** argv) {
  Cli cli(argc, argv, {{"mt", "12"},
                       {"nt", "3"},
                       {"algo", "hqr"},
                       {"p", "3"},
                       {"a", "2"},
                       {"low", "greedy"},
                       {"high", "fibonacci"},
                       {"domino", "true"},
                       {"show_list", "false"},
                       {"dot", ""},
                       {"dot_updates", "false"}});
  const int mt = static_cast<int>(cli.integer("mt"));
  const int nt = static_cast<int>(cli.integer("nt"));
  const std::string algo = cli.str("algo");

  EliminationList list;
  std::vector<int> steps;
  HqrConfig cfg{static_cast<int>(cli.integer("p")),
                static_cast<int>(cli.integer("a")),
                tree_from_name(cli.str("low")), tree_from_name(cli.str("high")),
                cli.flag("domino")};
  if (algo == "hqr") {
    list = hqr_elimination_list(mt, nt, cfg);
    std::cout << cfg.describe() << "\n";
  } else if (algo == "flat_ts") {
    list = flat_ts_list(mt, nt);
  } else if (algo == "greedy") {
    auto sl = greedy_global_list(mt, nt);
    list = sl.list;
    steps = sl.step;
  } else {
    list = per_panel_tree_list(tree_from_name(algo), mt, nt);
  }
  check_valid(list, mt, nt);
  if (steps.empty()) steps = asap_steps(list, mt, nt);

  const int panels = std::min({mt, nt, 6});
  auto t = killer_step_table(list, steps, mt, panels);
  std::vector<std::string> headers = {"Row"};
  for (int k = 0; k < panels; ++k) {
    // Appends, not operator+ chains: GCC 12 -Wrestrict false-positives on
    // the temporaries under -O2.
    std::string p = "P";
    p += std::to_string(k);
    headers.push_back(p + " killer");
    headers.push_back(p + " step");
  }
  TextTable table(headers);
  for (int i = 0; i < mt; ++i) {
    table.row().add(i);
    for (int k = 0; k < panels; ++k) {
      if (t.killer_of(i, k) < 0)
        table.add(i == k ? "*" : "").add("");
      else
        table.add(t.killer_of(i, k)).add(t.step_of(i, k));
    }
  }
  std::cout << "\nkiller/step table (first " << panels << " panels):\n";
  table.print(std::cout);
  std::cout << "coarse makespan: " << coarse_makespan(steps) << " steps, "
            << list.size() << " eliminations\n";

  if (algo == "hqr") {
    std::cout << "\ntile levels (0=TS, 1=head, 2=domino, 3=top, .=R "
                 "region):\n";
    for (int i = 0; i < mt; ++i) {
      std::cout << "  ";
      for (int k = 0; k < nt; ++k) {
        const int lvl = tile_level(i, k, mt, cfg);
        std::cout << (lvl < 0 ? '.' : static_cast<char>('0' + lvl)) << ' ';
      }
      std::cout << "\n";
    }
  }

  if (!cli.str("dot").empty()) {
    TaskGraph g(expand_to_kernels(list, mt, nt), mt, nt);
    DotOptions dopt;
    dopt.include_updates = cli.flag("dot_updates");
    save_dot(cli.str("dot"), g, dopt);
    std::cout << "\nDAG written to " << cli.str("dot") << " (" << g.size()
              << " tasks); render with: dot -Tsvg " << cli.str("dot")
              << " -o dag.svg\n";
  }

  if (cli.flag("show_list")) {
    std::cout << "\nelimination list:\n";
    for (const auto& e : list)
      std::cout << "  elim(" << e.row << ", " << e.piv << ", " << e.k << ") "
                << (e.ts ? "[TS]" : "[TT]") << "\n";
  }
  return 0;
}
