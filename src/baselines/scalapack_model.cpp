#include "baselines/scalapack_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace hqr {

SimResult simulate_scalapack(long long m, long long n,
                             const ScalapackOptions& opts) {
  HQR_CHECK(m >= 1 && n >= 1 && m >= n, "expects m >= n >= 1");
  HQR_CHECK(opts.nb >= 1 && opts.grid_p >= 1 && opts.grid_q >= 1,
            "bad ScaLAPACK parameters");
  const Platform& pf = opts.platform;
  const double alpha = pf.latency;
  const double beta = pf.bandwidth;
  const double log_p = std::log2(std::max(2, opts.grid_p));
  const double log_q = std::log2(std::max(2, opts.grid_q));

  SimResult res;
  double time = 0.0;

  for (long long j0 = 0; j0 < n; j0 += opts.nb) {
    const long long bw = std::min<long long>(opts.nb, n - j0);
    const double rows = static_cast<double>(m - j0);
    const double cols_rem = static_cast<double>(n - j0 - bw);

    // Panel factorization: bw sequential column steps. Work: applying each
    // reflector to the remaining panel columns, 4 * rows * bw^2 / 2 flops
    // total, memory-bound on the owning process column (p nodes share rows).
    const double panel_flops = 2.0 * rows * bw * bw;
    const double panel_rate = opts.grid_p * opts.panel_node_gflops * 1e9;
    // Each column: an allreduce for the norm and a broadcast of the
    // reflector across the p process rows.
    const double panel_latency = 2.0 * bw * log_p * alpha;
    time += panel_flops / panel_rate + panel_latency;
    res.messages += static_cast<long long>(2.0 * bw * log_p);

    if (cols_rem > 0) {
      // Broadcast the panel (rows x bw) along the process rows.
      const double bytes = rows * bw * sizeof(double) / opts.grid_p;
      time += log_q * (alpha + bytes / beta);
      res.messages += static_cast<long long>(log_q) * opts.grid_p;
      res.volume_gbytes += bytes * opts.grid_q / 1e9;

      // Trailing update: Q^T applied to rows x cols_rem, 4*rows*cols_rem*bw
      // flops, compute-bound across the whole machine.
      const double upd_flops = 4.0 * rows * cols_rem * bw;
      const double upd_rate = static_cast<double>(opts.grid_p) * opts.grid_q *
                              pf.cores_per_node * opts.update_core_gflops *
                              1e9;
      // Row-wise reduction of W = V^T C across process rows.
      const double w_bytes = bw * (cols_rem / opts.grid_q) * sizeof(double);
      time += upd_flops / upd_rate + log_p * (alpha + w_bytes / beta);
      res.messages += static_cast<long long>(log_p) * opts.grid_q;
      res.volume_gbytes += w_bytes * opts.grid_q / 1e9;
    }
  }

  res.seconds = time;
  res.useful_gflop = qr_useful_flops(m, n) / 1e9;
  res.gflops = res.useful_gflop / time;
  res.peak_fraction = res.gflops / pf.theoretical_peak_gflops();
  res.tasks = (n + opts.nb - 1) / opts.nb;
  res.core_utilization = res.peak_fraction;  // analytic model: no DES detail
  res.critical_path_seconds = time;
  return res;
}

}  // namespace hqr
