// Performance model of the ScaLAPACK QR factorization (pdgeqrf) on the
// simulated platform — the paper's §V-C comparison baseline.
//
// ScaLAPACK is a panel algorithm, not a tile algorithm: every one of the N
// matrix columns performs a distributed reduction across the p process rows
// (norm + scale), so its latency term carries a factor b more messages than
// any tile algorithm (paper §V-C), and the panel factorization is a
// memory-bound sequential chain of column steps that the trailing update
// cannot overlap (no lookahead in the reference pdgeqrf). The model charges,
// per b-wide panel:
//   * b column steps on the owning process column: memory-bound local
//     GEMV work at `panel_node_gflops` per node plus 2 log2(p) latencies;
//   * a panel broadcast along the process rows;
//   * the trailing-matrix block-reflector update, compute-bound across all
//     nodes at `update_core_gflops` per core.
#pragma once

#include "simcluster/platform.hpp"
#include "simcluster/simulator.hpp"

namespace hqr {

struct ScalapackOptions {
  Platform platform;
  int nb = 64;      // ScaLAPACK block (panel) width
  int grid_p = 15;  // process grid rows
  int grid_q = 4;   // process grid columns
  // Memory-bound panel rate per node (tall GEMV chains, no blocking).
  double panel_node_gflops = 0.35;
  // Compute-bound update rate per core (dlarfb-class).
  double update_core_gflops = 6.5;
};

// Simulates pdgeqrf on an m x n matrix; returns the same result structure as
// the tile simulator (message/volume fields reflect the per-column
// reductions and panel broadcasts).
SimResult simulate_scalapack(long long m, long long n,
                             const ScalapackOptions& opts);

}  // namespace hqr
