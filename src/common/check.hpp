// Error handling primitives used across the HQR library.
//
// Library code throws hqr::Error on contract violations; HQR_CHECK is used
// for argument validation on public entry points (always on), HQR_ASSERT for
// internal invariants (compiled out in NDEBUG builds, like assert, but with
// a formatted message).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hqr {

// Exception type thrown by all HQR components on contract violation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void fail(const char* expr, const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << "HQR check failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace hqr

// Always-on check with streamed message: HQR_CHECK(n >= 0, "n=" << n).
#define HQR_CHECK(cond, ...)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream hqr_check_os_;                                   \
      hqr_check_os_ << "" __VA_ARGS__;                                    \
      ::hqr::detail::fail(#cond, __FILE__, __LINE__, hqr_check_os_.str()); \
    }                                                                     \
  } while (0)

#ifdef NDEBUG
#define HQR_ASSERT(cond, ...) \
  do {                        \
  } while (0)
#else
#define HQR_ASSERT(cond, ...) HQR_CHECK(cond, __VA_ARGS__)
#endif
