#include "common/cli.hpp"

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>

#include "common/check.hpp"

namespace hqr {

std::map<std::string, std::string> merge_flags(
    std::map<std::string, std::string> spec,
    const std::map<std::string, std::string>& group) {
  for (const auto& [name, def] : group) spec.emplace(name, def);
  return spec;
}

Cli::Cli(int argc, char** argv, std::map<std::string, std::string> spec)
    : values_(std::move(spec)) {
  const std::map<std::string, std::string> defaults = values_;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    std::string name = arg;
    std::string value;
    bool have_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      have_value = true;
    }
    auto it = values_.find(name);
    if (it == values_.end() && name == "help") {
      std::cout << usage(argv[0] ? argv[0] : "prog") << "\n";
      std::exit(0);
    }
    HQR_CHECK(it != values_.end(), "unknown flag --" << name);
    const std::string& def = defaults.at(name);
    const bool boolean = (def == "true" || def == "false");
    if (!have_value) {
      if (boolean) {
        // A detached true/false token belongs to the flag (`--domino
        // false`); anything else leaves the bare flag meaning "true".
        if (i + 1 < argc && (std::strcmp(argv[i + 1], "true") == 0 ||
                             std::strcmp(argv[i + 1], "false") == 0)) {
          value = argv[++i];
        } else {
          value = "true";
        }
      } else {
        HQR_CHECK(i + 1 < argc, "flag --" << name << " needs a value");
        value = argv[++i];
      }
    }
    it->second = value;
    provided_.insert(name);
  }
}

bool Cli::has(const std::string& name) const {
  return provided_.count(name) != 0;
}

std::string Cli::str(const std::string& name) const {
  auto it = values_.find(name);
  HQR_CHECK(it != values_.end(), "flag --" << name << " not declared");
  return it->second;
}

long long Cli::integer(const std::string& name) const {
  const std::string v = str(name);
  char* end = nullptr;
  long long r = std::strtoll(v.c_str(), &end, 10);
  HQR_CHECK(end && *end == '\0' && !v.empty(),
            "flag --" << name << " expects an integer, got '" << v << "'");
  return r;
}

double Cli::real(const std::string& name) const {
  const std::string v = str(name);
  char* end = nullptr;
  double r = std::strtod(v.c_str(), &end);
  HQR_CHECK(end && *end == '\0' && !v.empty(),
            "flag --" << name << " expects a number, got '" << v << "'");
  return r;
}

bool Cli::flag(const std::string& name) const {
  const std::string v = str(name);
  HQR_CHECK(v == "true" || v == "false",
            "flag --" << name << " expects true/false, got '" << v << "'");
  return v == "true";
}

std::string Cli::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program;
  for (const auto& [name, def] : values_) {
    os << " [--" << name << "=" << def << "]";
  }
  return os.str();
}

}  // namespace hqr
