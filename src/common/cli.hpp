// Minimal command-line flag parsing for examples and bench drivers.
//
// Supports `--name=value`, `--name value` and boolean `--name` /
// `--name true|false`. Unknown flags are an error (typos surface
// immediately), except `--help`, which prints usage and exits 0.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace hqr {

// Merges a shared flag group (e.g. the observability flags declared by
// obs::with_obs_flags) into a driver's own spec. Driver-specific defaults
// win on name collision.
std::map<std::string, std::string> merge_flags(
    std::map<std::string, std::string> spec,
    const std::map<std::string, std::string>& group);

class Cli {
 public:
  // `spec` maps flag name -> default value (as string). A default of "false"
  // or "true" marks a boolean flag that may appear without a value.
  Cli(int argc, char** argv, std::map<std::string, std::string> spec);

  // True iff the user explicitly passed --name (declared flags that kept
  // their default return false).
  bool has(const std::string& name) const;
  std::string str(const std::string& name) const;
  long long integer(const std::string& name) const;
  double real(const std::string& name) const;
  bool flag(const std::string& name) const;

  // Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  // Renders a usage string listing all flags and defaults.
  std::string usage(const std::string& program) const;

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> provided_;  // flags the user actually passed
  std::vector<std::string> positional_;
};

}  // namespace hqr
