#include "common/rng.hpp"

#include <cmath>

namespace hqr {

double Rng::gaussian() {
  // Marsaglia polar method; one variate per call (the spare is discarded to
  // keep the generator stateless beyond its 256-bit core state).
  for (;;) {
    const double u = uniform(-1.0, 1.0);
    const double v = uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

}  // namespace hqr
