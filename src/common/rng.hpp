// Deterministic, seedable pseudo-random number generation.
//
// We use xoshiro256** (public-domain algorithm by Blackman & Vigna) rather
// than std::mt19937 so that streams are cheap to split per-tile / per-thread
// and results are identical across standard libraries.
#pragma once

#include <cstdint>

namespace hqr {

// SplitMix64: used to seed xoshiro state from a single 64-bit seed.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x243f6a8885a308d3ULL) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Standard normal variate (Marsaglia polar method).
  double gaussian();

  // Derive an independent stream for (e.g.) a tile or thread index.
  Rng split(std::uint64_t stream) const {
    std::uint64_t sm = s_[0] ^ (stream * 0x9e3779b97f4a7c15ULL) ^ s_[3];
    Rng child(0);
    for (auto& s : child.s_) s = splitmix64(sm);
    return child;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace hqr
