// Wall-clock stopwatch for benches and examples.
#pragma once

#include <chrono>

namespace hqr {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  // Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hqr
