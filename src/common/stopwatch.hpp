// Wall-clock stopwatch for benches and examples.
#pragma once

#include <chrono>

namespace hqr {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  // Rebases the stopwatch onto an explicit origin expressed as a
  // monotonic_seconds() value, so several components (executor trace lanes,
  // communication-thread flow events) can share one time zero.
  void set_origin(double monotonic_origin_seconds) {
    start_ = Clock::time_point(std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(monotonic_origin_seconds)));
  }

  // Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// The raw monotonic clock as seconds since its (arbitrary, per-boot) epoch.
// All ranks forked onto one host read the same hardware clock, so these
// values are directly comparable across local processes; across hosts the
// clock-sync handshake (net/clock_sync.hpp) estimates the offset instead.
inline double monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace hqr
