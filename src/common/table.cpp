#include "common/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace hqr {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  HQR_CHECK(!headers_.empty(), "table needs at least one column");
}

TextTable& TextTable::row() {
  HQR_CHECK(rows_.empty() || rows_.back().size() == headers_.size(),
            "previous row incomplete: " << rows_.back().size() << " of "
                                        << headers_.size() << " cells");
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::add(const std::string& value) {
  HQR_CHECK(!rows_.empty(), "call row() before add()");
  HQR_CHECK(rows_.back().size() < headers_.size(), "row overflow");
  rows_.back().push_back(value);
  return *this;
}

TextTable& TextTable::add(const char* value) { return add(std::string(value)); }

TextTable& TextTable::add(long long value) { return add(std::to_string(value)); }
TextTable& TextTable::add(unsigned long long value) {
  return add(std::to_string(value));
}
TextTable& TextTable::add(int value) { return add(std::to_string(value)); }
TextTable& TextTable::add(std::size_t value) { return add(std::to_string(value)); }

TextTable& TextTable::add(double value, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << value;
  return add(os.str());
}

const std::string& TextTable::cell(std::size_t r, std::size_t c) const {
  HQR_CHECK(r < rows_.size() && c < headers_.size(), "cell out of range");
  return rows_[r][c];
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(width[c]))
         << cells[c];
    }
    os << " |\n";
  };
  line(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& r : rows_) line(r);
}

void TextTable::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      const bool quote = cells[c].find(',') != std::string::npos;
      if (quote) os << '"';
      os << cells[c];
      if (quote) os << '"';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
}

void TextTable::save_csv(const std::string& path) const {
  std::ofstream f(path);
  HQR_CHECK(f.good(), "cannot open " << path << " for writing");
  write_csv(f);
  HQR_CHECK(f.good(), "write to " << path << " failed");
}

}  // namespace hqr
