// Plain-text table and CSV emission for benches and examples.
//
// Every table/figure bench prints (a) an aligned text table for humans and
// (b) optionally a CSV file for plotting, through this single facility.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hqr {

// A simple row/column table of strings with typed cell setters.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  // Starts a new row; subsequent add() calls fill it left to right.
  TextTable& row();

  TextTable& add(const std::string& value);
  TextTable& add(const char* value);
  TextTable& add(long long value);
  TextTable& add(unsigned long long value);
  TextTable& add(int value);
  TextTable& add(std::size_t value);
  // Formats with `precision` significant digits.
  TextTable& add(double value, int precision = 6);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return headers_.size(); }
  const std::string& cell(std::size_t r, std::size_t c) const;

  // Aligned, human-readable rendering.
  void print(std::ostream& os) const;

  // RFC-4180-ish CSV rendering (no quoting needed for our numeric content,
  // but commas in cells are quoted defensively).
  void write_csv(std::ostream& os) const;
  // Writes CSV to `path`; throws hqr::Error on I/O failure.
  void save_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hqr
