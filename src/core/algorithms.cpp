#include "core/algorithms.hpp"

#include "dag/task_graph.hpp"

namespace hqr {

AlgorithmRun make_hqr_run(int mt, int nt, const HqrConfig& cfg, int grid_q) {
  AlgorithmRun run;
  run.name = "HQR " + cfg.describe();
  run.list = hqr_elimination_list(mt, nt, cfg);
  run.dist = Distribution::block_cyclic_2d(cfg.p, grid_q);
  run.mt = mt;
  run.nt = nt;
  return run;
}

AlgorithmRun make_bbd10_run(int mt, int nt, int grid_p, int grid_q) {
  AlgorithmRun run;
  run.name = "[BBD+10] flat TS tile QR";
  run.list = flat_ts_list(mt, nt);
  run.dist = Distribution::block_cyclic_2d(grid_p, grid_q);
  run.mt = mt;
  run.nt = nt;
  return run;
}

AlgorithmRun make_slhd10_run(int mt, int nt, int nodes) {
  AlgorithmRun run;
  run.name = "[SLHD10] 1D block + binary";
  run.list = hqr_elimination_list(mt, nt, slhd10_config(mt, nodes));
  run.dist = Distribution::block_1d(nodes, mt);
  run.mt = mt;
  run.nt = nt;
  return run;
}

AlgorithmRun make_custom_run(std::string name, EliminationList list,
                             Distribution dist, int mt, int nt) {
  AlgorithmRun run;
  run.name = std::move(name);
  run.list = std::move(list);
  run.dist = dist;
  run.mt = mt;
  run.nt = nt;
  return run;
}

SimResult simulate_algorithm(const AlgorithmRun& run, long long m, long long n,
                             const SimOptions& opts) {
  KernelList kernels = expand_to_kernels(run.list, run.mt, run.nt);
  TaskGraph graph(kernels, run.mt, run.nt);
  return simulate_qr(graph, run.dist, m, n, opts);
}

}  // namespace hqr
