// Named end-to-end algorithm configurations: HQR and the comparators of the
// paper's §V (each is an elimination list plus a data distribution), with a
// one-call path from configuration to simulated cluster performance.
#pragma once

#include <string>

#include "dist/distribution.hpp"
#include "simcluster/simulator.hpp"
#include "trees/hqr_tree.hpp"
#include "trees/single_level.hpp"

namespace hqr {

// An algorithm instance ready to factor an mt x nt tile matrix.
struct AlgorithmRun {
  std::string name;
  EliminationList list;
  Distribution dist = Distribution::cyclic_1d(1);
  int mt = 0;
  int nt = 0;
};

// HQR on a p x q virtual grid matching a 2D block-cyclic distribution
// (cfg.p must equal the grid's p).
AlgorithmRun make_hqr_run(int mt, int nt, const HqrConfig& cfg, int grid_q);

// [BBD+10]: distribution-unaware flat TS tile QR on a 2D block-cyclic grid
// (the DAGuE tile QR of the paper's comparison).
AlgorithmRun make_bbd10_run(int mt, int nt, int grid_p, int grid_q);

// [SLHD10]: 1D block distribution, intra-node TS flat tree, inter-node
// binary tree (paper §V-A parameterization).
AlgorithmRun make_slhd10_run(int mt, int nt, int nodes);

// Arbitrary pairing of an elimination list with a data distribution — the
// §IV-A flexibility: "the actual (physical) distribution of tiles to
// clusters needs not obey the virtual p x q cluster grid", which is how the
// paper expresses all previously published algorithms in one framework.
AlgorithmRun make_custom_run(std::string name, EliminationList list,
                             Distribution dist, int mt, int nt);

// Builds the kernel DAG for `run` and simulates it; m, n are element
// dimensions (for the GFlop/s figure of merit).
SimResult simulate_algorithm(const AlgorithmRun& run, long long m, long long n,
                             const SimOptions& opts);

}  // namespace hqr
