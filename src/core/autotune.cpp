#include "core/autotune.hpp"

#include <algorithm>

namespace hqr {

AutotuneResult autotune_hqr(int mt, int nt, long long m, long long n,
                            int nodes, SimOptions opts) {
  HQR_CHECK(nodes >= 1, "need at least one node");
  AutotuneResult out;

  std::vector<std::pair<int, int>> grids;
  for (int p = 1; p <= nodes; ++p)
    if (nodes % p == 0) grids.push_back({p, nodes / p});

  for (auto [p, q] : grids) {
    for (int a : {1, 4, 8}) {
      if (a > 1 && static_cast<long long>(a) * p > mt) continue;  // no TS room
      for (TreeKind low : {TreeKind::Flat, TreeKind::Greedy}) {
        for (TreeKind high : {TreeKind::Flat, TreeKind::Fibonacci}) {
          if (p == 1 && high != TreeKind::Flat) continue;  // high tree unused
          for (bool domino : {false, true}) {
            AutotuneCandidate cand;
            cand.config = HqrConfig{p, a, low, high, domino};
            cand.grid_q = q;
            SimOptions local = opts;
            local.platform.nodes = nodes;
            cand.result = simulate_algorithm(
                make_hqr_run(mt, nt, cand.config, q), m, n, local);
            out.explored.push_back(std::move(cand));
          }
        }
      }
    }
  }

  std::stable_sort(out.explored.begin(), out.explored.end(),
                   [](const AutotuneCandidate& x, const AutotuneCandidate& y) {
                     return x.result.gflops > y.result.gflops;
                   });
  HQR_CHECK(!out.explored.empty(), "no feasible candidate");
  out.best = out.explored.front();
  return out;
}

}  // namespace hqr
