// Simulation-driven auto-tuning of the HQR parameter space.
//
// The paper fixes (p, q, a, trees, domino) per experiment by hand and names
// the systematic exploration of this "huge parameter space" as future work
// (§VI). The simulator makes the exploration cheap: enumerate candidate
// configurations, simulate each on the target platform, keep the best.
#pragma once

#include <vector>

#include "core/algorithms.hpp"

namespace hqr {

struct AutotuneCandidate {
  HqrConfig config;
  int grid_q = 1;
  SimResult result;
};

struct AutotuneResult {
  AutotuneCandidate best;
  std::vector<AutotuneCandidate> explored;  // sorted best-first
};

// Explores virtual-grid factorizations p x q of `nodes`, a in {1, 4, 8},
// low trees {flat, greedy}, high trees {flat, fibonacci} and domino on/off
// for an mt x nt tile problem of m x n elements, simulating each candidate
// under `opts` (opts.platform.nodes must equal p * q for every candidate;
// it is overridden per candidate). Returns all candidates sorted by
// simulated GFlop/s.
AutotuneResult autotune_hqr(int mt, int nt, long long m, long long n,
                            int nodes, SimOptions opts);

}  // namespace hqr
