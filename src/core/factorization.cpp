#include "core/factorization.hpp"

#include <algorithm>

#include "kernels/ib_kernels.hpp"
#include "linalg/blas.hpp"

namespace hqr {

QRFactors::QRFactors(TiledMatrix a, KernelList kernels, int ib)
    : a_(std::move(a)),
      kernels_(std::move(kernels)),
      ib_(ib),
      kmax_(std::min(a_.mt(), a_.nt())) {
  HQR_CHECK(ib_ >= 0 && ib_ <= a_.b(),
            "inner block ib=" << ib_ << " out of [0, " << a_.b() << "]");
  const std::size_t tiles = static_cast<std::size_t>(a_.mt()) * kmax_;
  const std::size_t tile_elems = static_cast<std::size_t>(a_.b()) * a_.b();
  tg_storage_.assign(tiles * tile_elems, 0.0);
  tp_storage_.assign(tiles * tile_elems, 0.0);
}

MatrixView QRFactors::t_geqrt(int r, int k) {
  HQR_ASSERT(r >= 0 && r < mt() && k >= 0 && k < kmax_, "T index out of range");
  const std::size_t te = static_cast<std::size_t>(b()) * b();
  return MatrixView(
      tg_storage_.data() + (static_cast<std::size_t>(k) * mt() + r) * te, b(),
      b(), b());
}

ConstMatrixView QRFactors::t_geqrt(int r, int k) const {
  return const_cast<QRFactors*>(this)->t_geqrt(r, k);
}

MatrixView QRFactors::t_pencil(int i, int k) {
  HQR_ASSERT(i >= 0 && i < mt() && k >= 0 && k < kmax_, "T index out of range");
  const std::size_t te = static_cast<std::size_t>(b()) * b();
  return MatrixView(
      tp_storage_.data() + (static_cast<std::size_t>(k) * mt() + i) * te, b(),
      b(), b());
}

ConstMatrixView QRFactors::t_pencil(int i, int k) const {
  return const_cast<QRFactors*>(this)->t_pencil(i, k);
}

void execute_kernel(const KernelOp& op, QRFactors& f, TileWorkspace& ws) {
  TiledMatrix& a = f.a();
  const int ib = f.ib();
  const bool blocked = ib >= 1 && ib < f.b();
  switch (op.type) {
    case KernelType::GEQRT:
      if (blocked)
        geqrt_ib(a.tile(op.row, op.k), f.t_geqrt(op.row, op.k), ib, ws);
      else
        geqrt(a.tile(op.row, op.k), f.t_geqrt(op.row, op.k), ws);
      break;
    case KernelType::UNMQR:
      if (blocked)
        unmqr_ib(a.tile(op.row, op.k), f.t_geqrt(op.row, op.k), ib,
                 Trans::Yes, a.tile(op.row, op.j), ws);
      else
        unmqr(a.tile(op.row, op.k), f.t_geqrt(op.row, op.k), Trans::Yes,
              a.tile(op.row, op.j), ws);
      break;
    case KernelType::TSQRT:
      if (blocked)
        tsqrt_ib(a.tile(op.piv, op.k), a.tile(op.row, op.k),
                 f.t_pencil(op.row, op.k), ib, ws);
      else
        tsqrt(a.tile(op.piv, op.k), a.tile(op.row, op.k),
              f.t_pencil(op.row, op.k), ws);
      break;
    case KernelType::TSMQR:
      if (blocked)
        tsmqr_ib(a.tile(op.piv, op.j), a.tile(op.row, op.j),
                 a.tile(op.row, op.k), f.t_pencil(op.row, op.k), ib,
                 Trans::Yes, ws);
      else
        tsmqr(a.tile(op.piv, op.j), a.tile(op.row, op.j), a.tile(op.row, op.k),
              f.t_pencil(op.row, op.k), Trans::Yes, ws);
      break;
    case KernelType::TTQRT:
      if (blocked)
        ttqrt_ib(a.tile(op.piv, op.k), a.tile(op.row, op.k),
                 f.t_pencil(op.row, op.k), ib, ws);
      else
        ttqrt(a.tile(op.piv, op.k), a.tile(op.row, op.k),
              f.t_pencil(op.row, op.k), ws);
      break;
    case KernelType::TTMQR:
      if (blocked)
        ttmqr_ib(a.tile(op.piv, op.j), a.tile(op.row, op.j),
                 a.tile(op.row, op.k), f.t_pencil(op.row, op.k), ib,
                 Trans::Yes, ws);
      else
        ttmqr(a.tile(op.piv, op.j), a.tile(op.row, op.j), a.tile(op.row, op.k),
              f.t_pencil(op.row, op.k), Trans::Yes, ws);
      break;
  }
}

QRFactors qr_factorize_sequential(const Matrix& a, int b,
                                  const EliminationList& list, int ib) {
  TiledMatrix tiled = TiledMatrix::from_matrix(a, b);
  KernelList kernels = expand_to_kernels(list, tiled.mt(), tiled.nt());
  QRFactors f(std::move(tiled), std::move(kernels), ib);
  TileWorkspace ws(b);
  for (const KernelOp& op : f.kernels()) execute_kernel(op, f, ws);
  return f;
}

KernelList q_apply_ops(const QRFactors& f, Trans trans, int nt_c,
                       bool economy) {
  const KernelList factors = factor_kernels_only(f.kernels());
  KernelList out;
  out.reserve(factors.size() * static_cast<std::size_t>(nt_c));
  auto emit = [&](const KernelOp& op) {
    KernelType t = KernelType::UNMQR;
    if (op.type == KernelType::TSQRT) t = KernelType::TSMQR;
    if (op.type == KernelType::TTQRT) t = KernelType::TTMQR;
    const int jbegin = economy ? std::min(op.k, nt_c) : 0;
    for (int j = jbegin; j < nt_c; ++j)
      out.push_back({t, op.row, op.piv, op.k, j});
  };
  // Q = Q_1 Q_2 ... Q_E: Q^T applies the factor kernels forward, Q applies
  // them reversed.
  if (trans == Trans::Yes) {
    for (const KernelOp& op : factors) emit(op);
  } else {
    for (auto it = factors.rbegin(); it != factors.rend(); ++it) emit(*it);
  }
  return out;
}

void execute_apply_kernel(const KernelOp& op, const QRFactors& f, Trans trans,
                          TiledMatrix& c, TileWorkspace& ws) {
  const TiledMatrix& a = f.a();
  const int ib = f.ib();
  const bool blocked = ib >= 1 && ib < f.b();
  switch (op.type) {
    case KernelType::UNMQR:
      if (blocked)
        unmqr_ib(a.tile(op.row, op.k), f.t_geqrt(op.row, op.k), ib, trans,
                 c.tile(op.row, op.j), ws);
      else
        unmqr(a.tile(op.row, op.k), f.t_geqrt(op.row, op.k), trans,
              c.tile(op.row, op.j), ws);
      break;
    case KernelType::TSMQR:
      if (blocked)
        tsmqr_ib(c.tile(op.piv, op.j), c.tile(op.row, op.j),
                 a.tile(op.row, op.k), f.t_pencil(op.row, op.k), ib, trans,
                 ws);
      else
        tsmqr(c.tile(op.piv, op.j), c.tile(op.row, op.j), a.tile(op.row, op.k),
              f.t_pencil(op.row, op.k), trans, ws);
      break;
    case KernelType::TTMQR:
      if (blocked)
        ttmqr_ib(c.tile(op.piv, op.j), c.tile(op.row, op.j),
                 a.tile(op.row, op.k), f.t_pencil(op.row, op.k), ib, trans,
                 ws);
      else
        ttmqr(c.tile(op.piv, op.j), c.tile(op.row, op.j), a.tile(op.row, op.k),
              f.t_pencil(op.row, op.k), trans, ws);
      break;
    default:
      HQR_CHECK(false, "not a Q-application kernel");
  }
}

Matrix build_q(const QRFactors& f) {
  TiledMatrix q(f.a().padded_m(),
                std::min(f.a().padded_m(), f.a().padded_n()), f.b());
  // Identity pattern on the element diagonal.
  for (int d = 0; d < std::min(q.padded_m(), q.padded_n()); ++d) q.set(d, d, 1.0);

  TileWorkspace ws(f.b());
  for (const KernelOp& op :
       q_apply_ops(f, Trans::No, q.nt(), /*economy=*/true))
    execute_apply_kernel(op, f, Trans::No, q, ws);
  return q.to_padded_matrix();
}

void apply_q(const QRFactors& f, Trans trans, TiledMatrix& c) {
  HQR_CHECK(c.mt() == f.mt() && c.b() == f.b(),
            "apply_q: tile row/size mismatch");
  TileWorkspace ws(f.b());
  for (const KernelOp& op : q_apply_ops(f, trans, c.nt()))
    execute_apply_kernel(op, f, trans, c, ws);
}

Matrix extract_r(const QRFactors& f) {
  const int n = f.n();
  const int k = std::min(f.m(), n);
  Matrix r(k, n);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i <= std::min(j, k - 1); ++i) r(i, j) = f.a().at(i, j);
  return r;
}

Matrix tile_least_squares(const Matrix& a, const Matrix& b, int tile_size,
                          const EliminationList& list) {
  HQR_CHECK(a.rows() >= a.cols(), "tile_least_squares expects m >= n");
  HQR_CHECK(b.rows() == a.rows(), "rhs row mismatch");
  QRFactors f = qr_factorize_sequential(a, tile_size, list);
  TiledMatrix c = TiledMatrix::from_matrix(b, tile_size);
  apply_q(f, Trans::Yes, c);
  Matrix qtb = c.to_matrix();
  const int n = a.cols();
  Matrix x = materialize(qtb.block(0, 0, n, b.cols()));
  Matrix r = extract_r(f);
  trsm_left(UpLo::Upper, Trans::No, Diag::NonUnit, r.view(), x.view());
  return x;
}

}  // namespace hqr
