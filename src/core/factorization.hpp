// Tile QR factorization driven by an elimination list: the core public API.
//
// Any valid elimination list (single-level, hierarchical HQR, greedy, ...)
// fully determines the factorization (paper §II). This module executes the
// derived kernel list on real data, stores the compact-WY factors, and can
// form Q, apply Q/Q^T, extract R and solve least-squares problems.
#pragma once

#include <vector>

#include "kernels/tile_kernels.hpp"
#include "linalg/tiled_matrix.hpp"
#include "trees/elimination.hpp"

namespace hqr {

// The complete output of a tile QR factorization.
class QRFactors {
 public:
  // ib = 0 (default) uses the plain full-T kernels; 1 <= ib < b uses the
  // inner-blocked production kernels (kernels/ib_kernels.hpp).
  QRFactors(TiledMatrix a, KernelList kernels, int ib = 0);

  // Inner block size (0 = plain kernels).
  int ib() const { return ib_; }

  int mt() const { return a_.mt(); }
  int nt() const { return a_.nt(); }
  int b() const { return a_.b(); }
  int m() const { return a_.m(); }
  int n() const { return a_.n(); }

  // Factored tiles: R in the upper "triangle" of the tile grid, Householder
  // data below.
  const TiledMatrix& a() const { return a_; }
  TiledMatrix& a() { return a_; }

  // T factor of GEQRT at (r, k) / of TSQRT-TTQRT killing (i, k).
  MatrixView t_geqrt(int r, int k);
  ConstMatrixView t_geqrt(int r, int k) const;
  MatrixView t_pencil(int i, int k);
  ConstMatrixView t_pencil(int i, int k) const;

  const KernelList& kernels() const { return kernels_; }

 private:
  TiledMatrix a_;
  KernelList kernels_;
  int ib_;
  int kmax_;
  std::vector<double> tg_storage_;  // (mt x kmax) tiles of b x b
  std::vector<double> tp_storage_;
};

// Executes one kernel of a factorization in place. Exposed so that the
// shared-memory runtime and the sequential driver share one dispatch path.
void execute_kernel(const KernelOp& op, QRFactors& f, TileWorkspace& ws);

// Factors `a` (tiled with tile size b) using the given elimination list,
// executing kernels sequentially in list order. The list is not re-validated
// here (use trees/validate.hpp); an invalid list yields a wrong R, which the
// residual checks catch. ib selects inner blocking (0 = plain kernels).
QRFactors qr_factorize_sequential(const Matrix& a, int b,
                                  const EliminationList& list, int ib = 0);

// Forms the economy Q: padded_m x min(padded_m, padded_n) elements (slice
// the first m rows and min(m, n) columns for the unpadded factor). Wide
// matrices (n > m) yield the m x m orthogonal factor.
Matrix build_q(const QRFactors& f);

// Applies Q (trans = No) or Q^T (trans = Yes) to the tiled matrix c in
// place; c must have the same tile rows and tile size as the factorization.
void apply_q(const QRFactors& f, Trans trans, TiledMatrix& c);

// The ordered update-kernel list realizing a Q (trans = No) or Q^T
// (trans = Yes) application on a target with nt_c tile columns. Each op is
// UNMQR/TSMQR/TTMQR with op.j = target tile column and (row, piv, k)
// naming the V/T source in the factorization. With economy = true, an op of
// panel k only touches columns >= k — valid only when the target starts as
// the identity (the build_q optimization). Feed to
// TaskGraph::apply_graph + the runtime for a parallel orgqr/ormqr.
KernelList q_apply_ops(const QRFactors& f, Trans trans, int nt_c,
                       bool economy = false);

// Executes one op of a Q application against c.
void execute_apply_kernel(const KernelOp& op, const QRFactors& f, Trans trans,
                          TiledMatrix& c, TileWorkspace& ws);

// Extracts the min(m, n) x n upper-triangular/trapezoidal R (unpadded).
Matrix extract_r(const QRFactors& f);

// Solves min ||A x - b||_2 through a tile QR with the given elimination
// list; a is m x n with m >= n, b is m x nrhs, result n x nrhs.
Matrix tile_least_squares(const Matrix& a, const Matrix& b, int tile_size,
                          const EliminationList& list);

}  // namespace hqr
