#include "core/incremental_tsqr.hpp"

#include <algorithm>

namespace hqr {

namespace {

int checked_nt(int n, int b) {
  HQR_CHECK(n >= 1 && b >= 1, "bad TSQR shape n=" << n << " b=" << b);
  return (n + b - 1) / b;
}

}  // namespace

IncrementalTSQR::IncrementalTSQR(int n, int b)
    : n_(n),
      b_(b),
      nt_(checked_nt(n, b)),
      r_tiles_(nt_ * b, n, b),
      t_scratch_(b, b),
      ws_(b) {}

void IncrementalTSQR::add_rows(const Matrix& block) {
  HQR_CHECK(block.cols() == n_, "block has " << block.cols()
                                             << " columns, expected " << n_);
  HQR_CHECK(block.rows() >= 1, "empty block");
  TiledMatrix incoming = TiledMatrix::from_matrix(block, b_);

  // Flat TS reduction of the incoming tiles into the running triangle: the
  // diagonal tile (k, k) of R kills tile (i, k) of the block, then the
  // trailing tiles of both rows are updated. Starting from R = 0 this also
  // handles the very first block (Householder reflectors on a zero pivot
  // column are well defined).
  for (int k = 0; k < nt_; ++k) {
    for (int i = 0; i < incoming.mt(); ++i) {
      tsqrt(r_tiles_.tile(k, k), incoming.tile(i, k), t_scratch_.view(), ws_);
      for (int j = k + 1; j < nt_; ++j) {
        tsmqr(r_tiles_.tile(k, j), incoming.tile(i, j),
              ConstMatrixView(incoming.tile(i, k)),
              ConstMatrixView(t_scratch_.view()), Trans::Yes, ws_);
      }
    }
  }
  rows_seen_ += block.rows();
}

Matrix IncrementalTSQR::r() const {
  const int k =
      static_cast<int>(std::min<long long>(rows_seen_, n_));
  Matrix out(k, n_);
  for (int j = 0; j < n_; ++j)
    for (int i = 0; i <= std::min(j, k - 1); ++i)
      out(i, j) = r_tiles_.at(i, j);
  return out;
}

}  // namespace hqr
