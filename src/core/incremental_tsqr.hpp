// Streaming tall-and-skinny QR (TSQR) — the R-only reduction of the
// communication-avoiding QR literature the paper builds on (Demmel et al.
// [6], Langou's "computing the R of the QR factorization of tall and skinny
// matrices using MPI_Reduce" [19]).
//
// Maintains the R factor of all rows seen so far. Each arriving block of
// rows is reduced into the running triangle with the same TSQRT/TSMQR
// kernels the factorization uses: for each panel k, the block's tile (i, k)
// is killed by the running R's diagonal tile (k, k), exactly a flat TS tree
// whose killer persists across blocks. Memory stays O(n^2 + block), no
// matter how many rows stream through.
#pragma once

#include "kernels/tile_kernels.hpp"
#include "linalg/tiled_matrix.hpp"

namespace hqr {

class IncrementalTSQR {
 public:
  // n = number of columns, b = tile size.
  IncrementalTSQR(int n, int b);

  // Reduces a block of rows (any positive row count, exactly n columns)
  // into the running R.
  void add_rows(const Matrix& block);

  // Current min(rows_seen, n) x n upper-triangular/trapezoidal R: the R
  // factor of the vertical concatenation of all added blocks, up to the
  // usual column-sign ambiguity.
  Matrix r() const;

  long long rows_seen() const { return rows_seen_; }
  int cols() const { return n_; }

 private:
  int n_;
  int b_;
  int nt_;
  long long rows_seen_ = 0;
  TiledMatrix r_tiles_;    // nt x nt tiles; upper triangle holds R
  Matrix t_scratch_;       // discarded T factor (R-only reduction)
  TileWorkspace ws_;
};

}  // namespace hqr
