#include "core/kernel_tune.hpp"

#include <chrono>
#include <sstream>
#include <vector>

#include "common/rng.hpp"
#include "kernels/ib_kernels.hpp"
#include "kernels/tile_kernels.hpp"
#include "linalg/micro_kernel.hpp"
#include "linalg/random_matrix.hpp"

namespace hqr {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Times one rep of `body` repeatedly until `min_time` seconds accumulate
// (one warmup rep excluded) and returns seconds per rep.
template <typename F>
double time_per_rep(double min_time, F&& body) {
  body();  // warmup: faults pages, sizes pack buffers, warms caches
  int reps = 0;
  const Clock::time_point t0 = Clock::now();
  double elapsed = 0.0;
  do {
    body();
    ++reps;
    elapsed = seconds_since(t0);
  } while (elapsed < min_time);
  return elapsed / reps;
}

// Benchmark fixture: factored tile pair so the apply kernels run on
// well-scaled compact-WY data (random V/T would blow the iterates up).
struct TuneFixture {
  int b;
  int ib;
  Matrix a_src, c1_src, c2_src;
  Matrix v2, t, c1, c2, a, tg;

  TuneFixture(int b_, int ib_)
      : b(b_), ib(ib_), a_src(b_, b_), c1_src(b_, b_), c2_src(b_, b_),
        v2(b_, b_), t(b_, b_), c1(b_, b_), c2(b_, b_), a(b_, b_),
        tg(b_, b_) {
    Rng rng(42);
    a_src = random_uniform(b, b, rng);
    c1_src = random_uniform(b, b, rng);
    c2_src = random_uniform(b, b, rng);
    TileWorkspace ws(b);
    copy(a_src.view(), a.block(0, 0, b, b));
    copy(c2_src.view(), v2.block(0, 0, b, b));
    tsqrt(a.block(0, 0, b, b), v2.block(0, 0, b, b), t.block(0, 0, b, b),
          ws);
  }

  // One TSMQR apply (weight 12: the dominant DAG kernel) plus, when ib > 0,
  // one TSMQR_ib — both paths ride the packed GEMM core.
  double apply_once(TileWorkspace& ws) {
    copy(c1_src.view(), c1.block(0, 0, b, b));
    copy(c2_src.view(), c2.block(0, 0, b, b));
    tsmqr(c1.block(0, 0, b, b), c2.block(0, 0, b, b), v2.view(), t.view(),
          Trans::Yes, ws);
    double flops = 4.0 * b * b * static_cast<double>(b);
    if (ib > 0) {
      copy(c1_src.view(), c1.block(0, 0, b, b));
      copy(c2_src.view(), c2.block(0, 0, b, b));
      tsmqr_ib(c1.block(0, 0, b, b), c2.block(0, 0, b, b), v2.view(),
               t.view(), ib, Trans::Yes, ws);
      flops *= 2.0;
    }
    return flops;
  }

  // One full-T GEQRT + TSQRT factorization pair: the panel-width-sensitive
  // paths.
  double factor_once(TileWorkspace& ws) {
    copy(a_src.view(), a.block(0, 0, b, b));
    geqrt(a.block(0, 0, b, b), tg.block(0, 0, b, b), ws);
    copy(a_src.view(), a.block(0, 0, b, b));
    copy(c1_src.view(), c1.block(0, 0, b, b));
    tsqrt(c1.block(0, 0, b, b), a.block(0, 0, b, b), tg.block(0, 0, b, b),
          ws);
    return (4.0 / 3.0 + 2.0) * b * b * static_cast<double>(b);
  }
};

}  // namespace

KernelTuning tune_kernels(const TuneOptions& opts) {
  HQR_CHECK(opts.b >= 8, "tune: tile size too small");
  const GemmBlocking saved_blocking = gemm_blocking();
  const MicroKernel& saved_kernel = active_micro_kernel();
  const int saved_panel = householder_panel();

  TuneFixture fx(opts.b, opts.ib);
  TileWorkspace ws(opts.b);

  const std::vector<int> mcs = {96, 144, 192, 288};
  const std::vector<int> kcs = {192, 256, 320};

  KernelTuning best = default_kernel_tuning();
  double best_gfs = 0.0;
  for (const MicroKernel& k : micro_kernel_registry()) {
    if (!micro_kernel_isa_supported(k.isa)) continue;
    set_active_micro_kernel(k);
    for (const int mc : mcs) {
      for (const int kc : kcs) {
        GemmBlocking bl;
        bl.mc = mc;
        bl.kc = kc;
        set_gemm_blocking(bl);
        double flops = 0.0;
        const double spr = time_per_rep(opts.min_time, [&] {
          flops = fx.apply_once(ws);
        });
        const double gfs = flops / spr * 1e-9;
        if (opts.report) {
          std::ostringstream desc;
          desc << k.name << " mc=" << mc << " kc=" << kc;
          opts.report(desc.str(), gfs);
        }
        if (gfs > best_gfs) {
          best_gfs = gfs;
          best.kernel = k.name;
          best.blocking = bl;
        }
      }
    }
  }

  // Panel width search with the winning kernel/blocking pinned.
  set_active_micro_kernel(best.kernel);
  set_gemm_blocking(best.blocking);
  double best_factor_gfs = 0.0;
  for (const int pw : {16, 24, 32, 48, 64}) {
    if (pw > opts.b) continue;
    set_householder_panel(pw);
    double flops = 0.0;
    const double spr = time_per_rep(opts.min_time, [&] {
      flops = fx.factor_once(ws);
    });
    const double gfs = flops / spr * 1e-9;
    if (opts.report) {
      std::ostringstream desc;
      desc << "householder_panel=" << pw;
      opts.report(desc.str(), gfs);
    }
    if (gfs > best_factor_gfs) {
      best_factor_gfs = gfs;
      best.householder_panel = pw;
    }
  }

  set_gemm_blocking(saved_blocking);
  set_active_micro_kernel(saved_kernel);
  set_householder_panel(saved_panel);
  best.cpu = tuning_cpu_id();
  return best;
}

}  // namespace hqr
