// Empirical micro-kernel autotuner.
//
// Searches the runtime-dispatchable micro-kernel variants x GEMM cache
// blocking x Householder panel width by timing the tile kernels that
// dominate DAG execution (TSMQR carries weight 12 of the paper's flop
// budget; GEQRT covers the panel-factorization paths) on this machine at
// the requested (b, ib). The winner feeds the persistent per-host cache
// (linalg/kernel_tuning.hpp) consumed automatically at startup; the
// `hqr_tune` tool is the CLI driver.
#pragma once

#include <functional>
#include <string>

#include "linalg/kernel_tuning.hpp"

namespace hqr {

struct TuneOptions {
  int b = 280;             // tile size to tune for
  int ib = 32;             // inner block of the ib kernel paths
  double min_time = 0.02;  // seconds of measurement per candidate
  // Progress sink (candidate description + GFlop/s); null = silent.
  std::function<void(const std::string&, double)> report;
};

// Runs the search and returns the best configuration for this host (cpu id
// filled in). Restores the process-wide kernel/blocking/panel state it
// mutates while measuring.
KernelTuning tune_kernels(const TuneOptions& opts);

}  // namespace hqr
