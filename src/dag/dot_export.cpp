#include "dag/dot_export.hpp"

#include <fstream>
#include <map>
#include <ostream>
#include <vector>

#include "common/check.hpp"
#include "dag/partition.hpp"

namespace hqr {
namespace {

std::string label(const KernelOp& op) {
  // Built with appends only: GCC 12's -Wrestrict false-positives on
  // chained std::string operator+ once this gets inlined into write_dot.
  std::string s = kernel_name(op.type);
  s += '(';
  s += std::to_string(op.row);
  if (op.type != KernelType::GEQRT && op.type != KernelType::UNMQR) {
    s += ',';
    s += std::to_string(op.piv);
  }
  s += ',';
  s += std::to_string(op.k);
  if (op.j >= 0) {
    s += ',';
    s += std::to_string(op.j);
  }
  s += ')';
  return s;
}

// Destination-rank edge palette (cycled past 8 ranks).
const char* const kRankColors[] = {"red",         "blue",     "forestgreen",
                                   "darkorange",  "purple",   "deepskyblue",
                                   "goldenrod",   "magenta"};

const char* rank_color(int rank) {
  return kRankColors[static_cast<std::size_t>(rank) %
                     (sizeof(kRankColors) / sizeof(kRankColors[0]))];
}

}  // namespace

void write_dot(std::ostream& os, const TaskGraph& graph,
               const DotOptions& opts) {
  // Which tasks are emitted (all, or factor kernels only).
  std::vector<char> keep(static_cast<std::size_t>(graph.size()), 1);
  if (!opts.include_updates) {
    for (int i = 0; i < graph.size(); ++i)
      keep[i] = is_factor_kernel(graph.op(i).type);
  }

  // Owner-computes rank per task, for the communication view.
  std::vector<int> rank;
  if (opts.dist) {
    rank.resize(static_cast<std::size_t>(graph.size()));
    for (int i = 0; i < graph.size(); ++i)
      rank[i] = task_node(graph.op(i), *opts.dist);
  }
  const auto node_label = [&](int i) {
    std::string s = label(graph.op(i));
    if (opts.dist) {
      s += '@';
      s += std::to_string(rank[static_cast<std::size_t>(i)]);
    }
    return s;
  };
  const auto edge_attrs = [&](int from, int to) -> std::string {
    if (!opts.dist || rank[static_cast<std::size_t>(from)] ==
                          rank[static_cast<std::size_t>(to)])
      return "";
    return std::string(" [color=") +
           rank_color(rank[static_cast<std::size_t>(to)]) + ", penwidth=1.6]";
  };

  os << "digraph tile_qr {\n  rankdir=TB;\n  node [fontsize=10];\n";

  if (opts.cluster_by_panel) {
    std::map<int, std::vector<int>> by_panel;
    for (int i = 0; i < graph.size(); ++i)
      if (keep[i]) by_panel[graph.op(i).k].push_back(i);
    for (const auto& [k, tasks] : by_panel) {
      os << "  subgraph cluster_panel" << k << " {\n    label=\"panel " << k
         << "\";\n";
      for (int i : tasks) {
        const KernelOp& op = graph.op(i);
        os << "    t" << i << " [label=\"" << node_label(i) << "\", shape="
           << (is_factor_kernel(op.type) ? "box" : "ellipse") << "];\n";
      }
      os << "  }\n";
    }
  } else {
    for (int i = 0; i < graph.size(); ++i) {
      if (!keep[i]) continue;
      const KernelOp& op = graph.op(i);
      os << "  t" << i << " [label=\"" << node_label(i) << "\", shape="
         << (is_factor_kernel(op.type) ? "box" : "ellipse") << "];\n";
    }
  }

  if (opts.include_updates) {
    for (int i = 0; i < graph.size(); ++i)
      for (auto s : graph.successors(i))
        os << "  t" << i << " -> t" << s << edge_attrs(i, s) << ";\n";
  } else {
    // Factor-only skeleton: contract paths through dropped update tasks so
    // the transitive factor-to-factor dependencies survive.
    for (int i = 0; i < graph.size(); ++i) {
      if (!keep[i]) continue;
      // BFS through non-kept successors.
      std::vector<int> stack(graph.successors(i).begin(),
                             graph.successors(i).end());
      std::vector<char> seen(static_cast<std::size_t>(graph.size()), 0);
      while (!stack.empty()) {
        const int s = stack.back();
        stack.pop_back();
        if (seen[s]) continue;
        seen[s] = 1;
        if (keep[s]) {
          os << "  t" << i << " -> t" << s << edge_attrs(i, s) << ";\n";
        } else {
          for (auto nxt : graph.successors(s)) stack.push_back(nxt);
        }
      }
    }
  }
  os << "}\n";
}

void save_dot(const std::string& path, const TaskGraph& graph,
              const DotOptions& opts) {
  std::ofstream f(path);
  HQR_CHECK(f.good(), "cannot open " << path << " for writing");
  write_dot(f, graph, opts);
  HQR_CHECK(f.good(), "write to " << path << " failed");
}

}  // namespace hqr
