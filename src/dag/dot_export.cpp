#include "dag/dot_export.hpp"

#include <fstream>
#include <map>
#include <ostream>
#include <vector>

#include "common/check.hpp"

namespace hqr {
namespace {

std::string label(const KernelOp& op) {
  std::string s = kernel_name(op.type) + "(" + std::to_string(op.row);
  if (op.type != KernelType::GEQRT && op.type != KernelType::UNMQR)
    s += "," + std::to_string(op.piv);
  s += "," + std::to_string(op.k);
  if (op.j >= 0) s += "," + std::to_string(op.j);
  return s + ")";
}

}  // namespace

void write_dot(std::ostream& os, const TaskGraph& graph,
               const DotOptions& opts) {
  // Which tasks are emitted (all, or factor kernels only).
  std::vector<char> keep(static_cast<std::size_t>(graph.size()), 1);
  if (!opts.include_updates) {
    for (int i = 0; i < graph.size(); ++i)
      keep[i] = is_factor_kernel(graph.op(i).type);
  }

  os << "digraph tile_qr {\n  rankdir=TB;\n  node [fontsize=10];\n";

  if (opts.cluster_by_panel) {
    std::map<int, std::vector<int>> by_panel;
    for (int i = 0; i < graph.size(); ++i)
      if (keep[i]) by_panel[graph.op(i).k].push_back(i);
    for (const auto& [k, tasks] : by_panel) {
      os << "  subgraph cluster_panel" << k << " {\n    label=\"panel " << k
         << "\";\n";
      for (int i : tasks) {
        const KernelOp& op = graph.op(i);
        os << "    t" << i << " [label=\"" << label(op) << "\", shape="
           << (is_factor_kernel(op.type) ? "box" : "ellipse") << "];\n";
      }
      os << "  }\n";
    }
  } else {
    for (int i = 0; i < graph.size(); ++i) {
      if (!keep[i]) continue;
      const KernelOp& op = graph.op(i);
      os << "  t" << i << " [label=\"" << label(op) << "\", shape="
         << (is_factor_kernel(op.type) ? "box" : "ellipse") << "];\n";
    }
  }

  if (opts.include_updates) {
    for (int i = 0; i < graph.size(); ++i)
      for (auto s : graph.successors(i))
        os << "  t" << i << " -> t" << s << ";\n";
  } else {
    // Factor-only skeleton: contract paths through dropped update tasks so
    // the transitive factor-to-factor dependencies survive.
    for (int i = 0; i < graph.size(); ++i) {
      if (!keep[i]) continue;
      // BFS through non-kept successors.
      std::vector<int> stack(graph.successors(i).begin(),
                             graph.successors(i).end());
      std::vector<char> seen(static_cast<std::size_t>(graph.size()), 0);
      while (!stack.empty()) {
        const int s = stack.back();
        stack.pop_back();
        if (seen[s]) continue;
        seen[s] = 1;
        if (keep[s]) {
          os << "  t" << i << " -> t" << s << ";\n";
        } else {
          for (auto nxt : graph.successors(s)) stack.push_back(nxt);
        }
      }
    }
  }
  os << "}\n";
}

void save_dot(const std::string& path, const TaskGraph& graph,
              const DotOptions& opts) {
  std::ofstream f(path);
  HQR_CHECK(f.good(), "cannot open " << path << " for writing");
  write_dot(f, graph, opts);
  HQR_CHECK(f.good(), "write to " << path << " failed");
}

}  // namespace hqr
