// Graphviz DOT export of task graphs — the visual-inspection tool for the
// DAGs the paper reasons about (its Figures 1-4 are exactly such trees).
#pragma once

#include <iosfwd>
#include <string>

#include "dag/task_graph.hpp"
#include "dist/distribution.hpp"

namespace hqr {

struct DotOptions {
  // Include update kernels (UNMQR/TSMQR/TTMQR); false plots the factor-only
  // skeleton — the panel reduction trees themselves.
  bool include_updates = true;
  // Cluster nodes by panel index (subgraphs per k).
  bool cluster_by_panel = true;
  // Communication view: with a distribution, node labels gain an "@rank"
  // suffix and every inter-rank edge is colored by its *destination* rank
  // (the rank that pays for the transfer); intra-rank edges stay black.
  const Distribution* dist = nullptr;
};

// Writes `graph` in DOT format. Node labels are "KERNEL(row,piv,k[,j])";
// factor kernels are drawn as boxes, updates as ellipses.
void write_dot(std::ostream& os, const TaskGraph& graph,
               const DotOptions& opts = {});

// Convenience: writes to a file; throws hqr::Error on I/O failure.
void save_dot(const std::string& path, const TaskGraph& graph,
              const DotOptions& opts = {});

}  // namespace hqr
