// Graphviz DOT export of task graphs — the visual-inspection tool for the
// DAGs the paper reasons about (its Figures 1-4 are exactly such trees).
#pragma once

#include <iosfwd>
#include <string>

#include "dag/task_graph.hpp"

namespace hqr {

struct DotOptions {
  // Include update kernels (UNMQR/TSMQR/TTMQR); false plots the factor-only
  // skeleton — the panel reduction trees themselves.
  bool include_updates = true;
  // Cluster nodes by panel index (subgraphs per k).
  bool cluster_by_panel = true;
};

// Writes `graph` in DOT format. Node labels are "KERNEL(row,piv,k[,j])";
// factor kernels are drawn as boxes, updates as ellipses.
void write_dot(std::ostream& os, const TaskGraph& graph,
               const DotOptions& opts = {});

// Convenience: writes to a file; throws hqr::Error on I/O failure.
void save_dot(const std::string& path, const TaskGraph& graph,
              const DotOptions& opts = {});

}  // namespace hqr
