#include "dag/partition.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace hqr {

int task_node(const KernelOp& op, const Distribution& dist) {
  switch (op.type) {
    case KernelType::GEQRT:
      return dist.owner(op.row, op.k);
    case KernelType::UNMQR:
      return dist.owner(op.row, op.j);
    case KernelType::TSQRT:
    case KernelType::TTQRT:
      return dist.owner(op.row, op.k);
    case KernelType::TSMQR:
    case KernelType::TTMQR:
      return dist.owner(op.row, op.j);
  }
  HQR_CHECK(false, "unreachable kernel type");
}

CommPlan::CommPlan(const TaskGraph& graph, const Distribution& dist,
                   BroadcastKind kind)
    : kind_(kind) {
  const std::int32_t n = graph.size();
  const int nranks = dist.nodes();
  node_.resize(static_cast<std::size_t>(n));
  tasks_by_rank_.assign(static_cast<std::size_t>(nranks), 0);
  sent_by_rank_.assign(static_cast<std::size_t>(nranks), 0);
  recv_by_rank_.assign(static_cast<std::size_t>(nranks), 0);
  for (std::int32_t t = 0; t < n; ++t) {
    node_[t] = static_cast<std::int32_t>(task_node(graph.op(t), dist));
    ++tasks_by_rank_[static_cast<std::size_t>(node_[t])];
  }

  // Per-producer broadcast dedup, same stamp trick as the simulator's
  // arrival[] scratch: one entry per (producer, consuming rank).
  std::vector<std::int32_t> stamp(static_cast<std::size_t>(nranks), -1);
  send_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (std::int32_t t = 0; t < n; ++t) {
    send_offsets_[static_cast<std::size_t>(t) + 1] =
        send_offsets_[static_cast<std::size_t>(t)];
    for (std::int32_t s : graph.successors(t)) {
      const std::int32_t d = node_[static_cast<std::size_t>(s)];
      if (d == node_[static_cast<std::size_t>(t)] || stamp[d] == t) continue;
      stamp[d] = t;
      ++send_offsets_[static_cast<std::size_t>(t) + 1];
    }
  }
  messages_ = send_offsets_[static_cast<std::size_t>(n)];
  send_dests_.resize(static_cast<std::size_t>(messages_));
  std::fill(stamp.begin(), stamp.end(), -1);
  for (std::int32_t t = 0; t < n; ++t) {
    std::int64_t cursor = send_offsets_[static_cast<std::size_t>(t)];
    for (std::int32_t s : graph.successors(t)) {
      const std::int32_t d = node_[static_cast<std::size_t>(s)];
      if (d == node_[static_cast<std::size_t>(t)] || stamp[d] == t) continue;
      stamp[d] = t;
      send_dests_[static_cast<std::size_t>(cursor++)] = d;
    }
    const std::int64_t first = send_offsets_[static_cast<std::size_t>(t)];
    std::sort(send_dests_.data() + first, send_dests_.data() + cursor);
    // Each consumer receives exactly once under either broadcast kind; only
    // who sends it differs (g - 1 edges total either way).
    for (std::int64_t i = first; i < cursor; ++i)
      ++recv_by_rank_[static_cast<std::size_t>(
          send_dests_[static_cast<std::size_t>(i)])];
    const int g = static_cast<int>(cursor - first) + 1;  // root + consumers
    if (kind_ == BroadcastKind::Eager) {
      sent_by_rank_[static_cast<std::size_t>(node_[t])] += g - 1;
    } else {
      for (int v = 0; v < g; ++v) {
        const std::int32_t rank =
            v == 0 ? node_[static_cast<std::size_t>(t)]
                   : send_dests_[static_cast<std::size_t>(first + v - 1)];
        for_each_binomial_child(v, g, [&](int) {
          ++sent_by_rank_[static_cast<std::size_t>(rank)];
        });
      }
    }
  }
}

std::vector<std::int32_t> CommPlan::bcast_children(int task, int rank) const {
  const std::span<const std::int32_t> d = dests(task);
  const int g = static_cast<int>(d.size()) + 1;
  std::vector<std::int32_t> out;
  if (g == 1) return out;
  if (kind_ == BroadcastKind::Eager) {
    if (rank == node_of(task)) out.assign(d.begin(), d.end());
    return out;
  }
  int v;  // this rank's virtual index in the broadcast group
  if (rank == node_of(task)) {
    v = 0;
  } else {
    const auto it = std::lower_bound(d.begin(), d.end(), rank);
    if (it == d.end() || *it != rank) return out;  // not a group member
    v = static_cast<int>(it - d.begin()) + 1;
  }
  for_each_binomial_child(v, g, [&](int c) {
    out.push_back(d[static_cast<std::size_t>(c - 1)]);
  });
  return out;
}

}  // namespace hqr
