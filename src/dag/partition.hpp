// Owner-computes partition of a task graph under a data distribution
// (paper §IV-A): every kernel executes on the node that owns the tile it
// zeroes or updates in place. This is the single source of truth for
// task-to-node mapping, shared by the cluster simulator (src/simcluster/),
// the real distributed runtime (src/distrun/) and the DOT communication
// view (dag/dot_export.hpp) — so the model and the implementation can never
// disagree about where a task runs or which edges cross ranks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dag/task_graph.hpp"
#include "dist/distribution.hpp"

namespace hqr {

// Node on which a kernel executes: the owner of the tile it zeroes (factor
// kernels) or updates in place (update kernels).
int task_node(const KernelOp& op, const Distribution& dist);

// How a producer's output reaches its consuming ranks.
//
//   Eager     The producer posts one frame per consuming rank itself.
//   Binomial  Consuming ranks form a binomial broadcast tree rooted at the
//             producer (group = producer, then consumers ascending);
//             intermediate ranks re-post the payload to their subtree.
//
// Either way every consuming rank receives the payload exactly once, so
// the total message count is the group size minus one for both kinds —
// only *who sends* changes. The tree bounds any one rank's sends per
// broadcast by ceil(log2(group)) instead of group-1, which is what keeps a
// hot producer's NIC from serializing a wide broadcast.
enum class BroadcastKind { Eager, Binomial };

// Children of virtual rank v in a binomial tree over g members, where
// parent(v) clears v's lowest set bit: v + 2^j for every 2^j below that
// bit (below g's power-of-two ceiling for the root). Emitted highest
// first, so the payload reaches the deepest subtree earliest — the same
// order the distributed runtime posts forwards and the simulator
// serializes them on the sender's NIC.
template <typename Emit>
void for_each_binomial_child(int v, int g, Emit&& emit) {
  int top = 1;
  while (top < g) top <<= 1;
  const int lsb = v == 0 ? top : (v & -v);
  for (int mask = lsb >> 1; mask >= 1; mask >>= 1)
    if (v + mask < g) emit(v + mask);
}

// Cross-rank communication plan of a task graph under `dist`, with the
// producer-to-node broadcast dedup both the simulator and the runtime
// apply: a producer's output is shipped to each consuming node once, no
// matter how many consumers that node hosts. `messages` therefore equals
// SimResult::messages for the same (graph, dist) by construction; the
// distributed runtime sends exactly `bcast_children(t, rank)` per rank per
// broadcast, making the simulator's communication model a falsifiable
// prediction under either broadcast kind.
class CommPlan {
 public:
  CommPlan(const TaskGraph& graph, const Distribution& dist,
           BroadcastKind kind = BroadcastKind::Eager);

  int ranks() const { return static_cast<int>(tasks_by_rank_.size()); }
  // Executing rank of each task.
  const std::vector<std::int32_t>& node() const { return node_; }
  int node_of(int task) const { return node_[static_cast<std::size_t>(task)]; }

  BroadcastKind kind() const { return kind_; }

  // Distinct remote ranks that consume the output of `task` (ascending).
  std::span<const std::int32_t> dests(int task) const {
    return {send_dests_.data() + send_offsets_[static_cast<std::size_t>(task)],
            static_cast<std::size_t>(
                send_offsets_[static_cast<std::size_t>(task) + 1] -
                send_offsets_[static_cast<std::size_t>(task)])};
  }

  // Ranks that `rank` must ship `task`'s output to once it holds the
  // payload (as producer or after receiving it). Eager: the producer sends
  // to every dest, everyone else sends nothing. Binomial: each broadcast
  // group member forwards to its subtree children. Empty when `rank` is
  // not in the broadcast group.
  std::vector<std::int32_t> bcast_children(int task, int rank) const;

  // Total inter-rank messages (== simulator's SimResult::messages).
  long long messages() const { return messages_; }
  // Model traffic volume in bytes under the simulator's one-tile-per-message
  // assumption (== SimResult::volume_gbytes * 1e9 for tile size b).
  double model_volume_bytes(int b) const {
    return static_cast<double>(messages_) * b * b * sizeof(double);
  }

  long long tasks_on(int rank) const {
    return tasks_by_rank_[static_cast<std::size_t>(rank)];
  }
  long long sent_by(int rank) const {
    return sent_by_rank_[static_cast<std::size_t>(rank)];
  }
  long long received_by(int rank) const {
    return recv_by_rank_[static_cast<std::size_t>(rank)];
  }

 private:
  BroadcastKind kind_ = BroadcastKind::Eager;
  std::vector<std::int32_t> node_;
  std::vector<std::int64_t> send_offsets_;  // CSR over tasks
  std::vector<std::int32_t> send_dests_;
  long long messages_ = 0;
  std::vector<long long> tasks_by_rank_;
  std::vector<long long> sent_by_rank_;
  std::vector<long long> recv_by_rank_;
};

}  // namespace hqr
