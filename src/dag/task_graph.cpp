#include "dag/task_graph.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace hqr {
namespace {

// Per-tile access bookkeeping for dependency inference.
struct TileState {
  std::int32_t last_writer = -1;
  std::vector<std::int32_t> readers_since;  // readers after last write
};

// Read/write sets of a kernel as (region_index, is_write) pairs.
//
// Factored panel tiles carry two independent regions, exactly as in the
// DPLASMA dataflow: U = upper triangle incl. diagonal (the R factor /
// triangular V2 of TTQRT), L = strict lower triangle (the GEQRT Householder
// vectors). UNMQR reads only L of its panel tile while TSQRT/TTQRT rewrite
// only U of the killer tile — they are concurrent, not WAR-serialized.
// T-factor tiles are private to their producing kernel and the updates that
// read them, whose ordering is already induced by the A-tile regions, so
// they are not tracked separately.
template <typename Fn>
void for_each_access(const KernelOp& op, int mt, Fn&& fn) {
  auto upper = [mt](int i, int j) {
    return 2 * (static_cast<std::int64_t>(j) * mt + i);
  };
  auto lower = [mt](int i, int j) {
    return 2 * (static_cast<std::int64_t>(j) * mt + i) + 1;
  };
  switch (op.type) {
    case KernelType::GEQRT:
      fn(upper(op.row, op.k), true);
      fn(lower(op.row, op.k), true);
      break;
    case KernelType::UNMQR:
      fn(lower(op.row, op.k), false);  // reads V (+T)
      fn(upper(op.row, op.j), true);
      fn(lower(op.row, op.j), true);
      break;
    case KernelType::TSQRT:
      fn(upper(op.piv, op.k), true);  // R1 in place
      fn(upper(op.row, op.k), true);  // V2 overwrites the full victim tile
      fn(lower(op.row, op.k), true);
      break;
    case KernelType::TTQRT:
      fn(upper(op.piv, op.k), true);  // R1 in place
      fn(upper(op.row, op.k), true);  // triangular V2; victim's L untouched
      break;
    case KernelType::TSMQR:
      fn(upper(op.row, op.k), false);  // reads dense V2 (+T)
      fn(lower(op.row, op.k), false);
      fn(upper(op.piv, op.j), true);
      fn(lower(op.piv, op.j), true);
      fn(upper(op.row, op.j), true);
      fn(lower(op.row, op.j), true);
      break;
    case KernelType::TTMQR:
      fn(upper(op.row, op.k), false);  // reads triangular V2 (+T)
      fn(upper(op.piv, op.j), true);
      fn(lower(op.piv, op.j), true);
      fn(upper(op.row, op.j), true);
      fn(lower(op.row, op.j), true);
      break;
  }
}

}  // namespace

TaskGraph::TaskGraph(const KernelList& kernels, int mt, int nt)
    : ops_(kernels) {
  HQR_CHECK(mt >= 1 && nt >= 1, "empty tile grid");
  const std::int32_t n = size();
  npred_.assign(static_cast<std::size_t>(n), 0);

  // Edge discovery is run twice with identical results: a counting pass to
  // size the CSR arrays, then a filling pass. This keeps peak memory at the
  // final footprint even for the ~10^7-task square-matrix DAGs.
  std::vector<TileState> tiles(2 * static_cast<std::size_t>(mt) * nt);
  std::vector<std::int32_t> stamp(static_cast<std::size_t>(n), -1);

  auto sweep = [&](auto&& on_edge) {
    for (auto& t : tiles) {
      t.last_writer = -1;
      t.readers_since.clear();
    }
    std::fill(stamp.begin(), stamp.end(), -1);
    for (std::int32_t idx = 0; idx < n; ++idx) {
      auto add_edge = [&](std::int32_t from) {
        if (from < 0 || from == idx) return;
        if (stamp[from] == idx) return;  // duplicate edge
        stamp[from] = idx;
        on_edge(from, idx);
      };
      for_each_access(ops_[idx], mt, [&](std::int64_t t, bool write) {
        TileState& st = tiles[static_cast<std::size_t>(t)];
        if (write) {
          // WAW when no readers intervened, WAR edges otherwise (a reader's
          // RAW edge to the last writer makes WAW transitive).
          if (st.readers_since.empty()) {
            add_edge(st.last_writer);
          } else {
            for (std::int32_t r : st.readers_since) add_edge(r);
          }
          st.last_writer = idx;
          st.readers_since.clear();
        } else {
          add_edge(st.last_writer);  // RAW
          st.readers_since.push_back(idx);
        }
      });
    }
  };

  offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  sweep([&](std::int32_t from, std::int32_t to) {
    ++offsets_[static_cast<std::size_t>(from) + 1];
    ++npred_[to];
  });
  for (std::int32_t i = 0; i < n; ++i) offsets_[i + 1] += offsets_[i];

  edges_.assign(static_cast<std::size_t>(offsets_[n]), 0);
  std::vector<std::int64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  sweep([&](std::int32_t from, std::int32_t to) {
    edges_[static_cast<std::size_t>(cursor[from]++)] = to;
  });
}

TaskGraph TaskGraph::apply_graph(const KernelList& ops, int mt, int nt_c) {
  HQR_CHECK(mt >= 1 && nt_c >= 1, "empty target grid");
  TaskGraph g;
  g.ops_ = ops;
  const std::int32_t n = g.size();
  g.npred_.assign(static_cast<std::size_t>(n), 0);

  // Every op rewrites its C tiles in place: dependencies are last-writer
  // chains per tile of C.
  auto tiles_of = [&](const KernelOp& op, auto&& fn) {
    const std::int64_t base = static_cast<std::int64_t>(op.j) * mt;
    switch (op.type) {
      case KernelType::UNMQR:
        fn(base + op.row);
        break;
      case KernelType::TSMQR:
      case KernelType::TTMQR:
        fn(base + op.piv);
        fn(base + op.row);
        break;
      default:
        HQR_CHECK(false, "apply graph expects update kernels only");
    }
  };

  std::vector<std::int32_t> last_writer(
      static_cast<std::size_t>(mt) * nt_c, -1);
  std::vector<std::int32_t> stamp(static_cast<std::size_t>(n), -1);
  auto sweep = [&](auto&& on_edge) {
    std::fill(last_writer.begin(), last_writer.end(), -1);
    std::fill(stamp.begin(), stamp.end(), -1);
    for (std::int32_t idx = 0; idx < n; ++idx) {
      tiles_of(g.ops_[idx], [&](std::int64_t t) {
        const std::int32_t from = last_writer[static_cast<std::size_t>(t)];
        last_writer[static_cast<std::size_t>(t)] = idx;
        if (from < 0 || from == idx || stamp[from] == idx) return;
        stamp[from] = idx;
        on_edge(from, idx);
      });
    }
  };

  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  sweep([&](std::int32_t from, std::int32_t to) {
    ++g.offsets_[static_cast<std::size_t>(from) + 1];
    ++g.npred_[to];
  });
  for (std::int32_t i = 0; i < n; ++i) g.offsets_[i + 1] += g.offsets_[i];
  g.edges_.assign(static_cast<std::size_t>(g.offsets_[n]), 0);
  std::vector<std::int64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  sweep([&](std::int32_t from, std::int32_t to) {
    g.edges_[static_cast<std::size_t>(cursor[from]++)] = to;
  });
  return g;
}

std::vector<std::int32_t> TaskGraph::roots() const {
  std::vector<std::int32_t> r;
  for (std::int32_t i = 0; i < size(); ++i)
    if (npred_[i] == 0) r.push_back(i);
  return r;
}

double TaskGraph::critical_path(
    const std::function<double(const KernelOp&)>& duration,
    std::vector<double>* depth) const {
  const int n = size();
  std::vector<double> d(static_cast<std::size_t>(n), 0.0);
  double best = 0.0;
  // Indices are a topological order; sweep backwards.
  for (int i = n - 1; i >= 0; --i) {
    double succ_max = 0.0;
    for (std::int32_t s : successors(i)) succ_max = std::max(succ_max, d[s]);
    d[i] = duration(ops_[i]) + succ_max;
    best = std::max(best, d[i]);
  }
  if (depth) *depth = std::move(d);
  return best;
}

int TaskGraph::unit_critical_path() const {
  std::vector<double> depth;
  const double cp = critical_path([](const KernelOp&) { return 1.0; }, &depth);
  return static_cast<int>(cp + 0.5);
}

double TaskGraph::total_work(
    const std::function<double(const KernelOp&)>& duration) const {
  double w = 0.0;
  for (const KernelOp& op : ops_) w += duration(op);
  return w;
}

double unit_weight_duration(const KernelOp& op) {
  return static_cast<double>(kernel_weight(op.type));
}

}  // namespace hqr
