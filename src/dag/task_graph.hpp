// Data-flow task graph: the DAGuE-style representation of a tiled QR
// factorization (paper §IV-C).
//
// The kernel list (derived from an elimination list) is expanded into a DAG
// by tracking, per tile, the last writer and the readers since that write:
// read-after-write, write-after-read and write-after-write orderings become
// edges. The kernel list is in sequentially-valid order, so indices are a
// topological order of the DAG by construction.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "trees/elimination.hpp"

namespace hqr {

class TaskGraph {
 public:
  // Builds the dependency graph over `kernels` for an mt x nt tile grid.
  TaskGraph(const KernelList& kernels, int mt, int nt);

  // Builds the dependency graph of a Q/Q^T *application*: `ops` are update
  // kernels (UNMQR/TSMQR/TTMQR) whose `j` indexes the tile columns of the
  // target matrix C (mt tile rows, nt_c tile columns) and whose V/T inputs
  // are immutable — dependencies are write-write chains on C tiles only.
  // `ops` must be in a sequentially valid order (as produced by
  // q_apply_ops).
  static TaskGraph apply_graph(const KernelList& ops, int mt, int nt_c);

  int size() const { return static_cast<int>(ops_.size()); }
  const KernelOp& op(int idx) const { return ops_[idx]; }
  const KernelList& ops() const { return ops_; }

  // Direct successors / predecessor count of a task. Successor edges are
  // stored in CSR form: DAGs of square-matrix runs reach ~10^7 tasks.
  std::span<const std::int32_t> successors(int idx) const {
    return {edges_.data() + offsets_[idx],
            static_cast<std::size_t>(offsets_[idx + 1] - offsets_[idx])};
  }
  int num_predecessors(int idx) const { return npred_[idx]; }
  std::int64_t num_edges() const { return static_cast<std::int64_t>(edges_.size()); }

  // Tasks with no predecessors.
  std::vector<std::int32_t> roots() const;

  // Longest path through the DAG where each task's duration is given by
  // `duration(op)`; also fills `depth[idx]` = longest path from idx to any
  // sink, inclusive (the standard scheduling priority).
  double critical_path(const std::function<double(const KernelOp&)>& duration,
                       std::vector<double>* depth = nullptr) const;

  // Unit-duration critical path (number of kernels on the longest chain).
  int unit_critical_path() const;

  // Sum of duration over all tasks.
  double total_work(
      const std::function<double(const KernelOp&)>& duration) const;

 private:
  TaskGraph() = default;

  KernelList ops_;
  std::vector<std::int64_t> offsets_;  // size() + 1 entries
  std::vector<std::int32_t> edges_;    // successor indices
  std::vector<std::int32_t> npred_;
};

// Duration model in "b^3/3" units: kernel weight (paper §II).
double unit_weight_duration(const KernelOp& op);

}  // namespace hqr
