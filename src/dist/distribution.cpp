#include "dist/distribution.hpp"

#include <algorithm>
#include <sstream>

#include "kernels/weights.hpp"

namespace hqr {

Distribution Distribution::block_cyclic_2d(int p, int q) {
  HQR_CHECK(p >= 1 && q >= 1, "bad grid " << p << "x" << q);
  return Distribution(Kind::BlockCyclic2D, p * q, p, q, 1);
}

Distribution Distribution::block_1d(int nodes, int mt) {
  HQR_CHECK(nodes >= 1 && mt >= 1, "bad 1D block parameters");
  const int rows_per = (mt + nodes - 1) / nodes;
  return Distribution(Kind::Block1D, nodes, nodes, 1, rows_per);
}

Distribution Distribution::cyclic_1d(int nodes) {
  HQR_CHECK(nodes >= 1, "bad node count");
  return Distribution(Kind::Cyclic1D, nodes, nodes, 1, 1);
}

int Distribution::owner(int i, int j) const {
  HQR_ASSERT(i >= 0 && j >= 0, "negative tile index");
  switch (kind_) {
    case Kind::BlockCyclic2D:
      return (i % p_) * q_ + (j % q_);
    case Kind::Block1D:
      return std::min(i / rows_per_, nodes_ - 1);
    case Kind::Cyclic1D:
      return i % nodes_;
  }
  HQR_CHECK(false, "unreachable distribution kind");
}

std::string Distribution::describe() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::BlockCyclic2D:
      os << "block-cyclic " << p_ << "x" << q_;
      break;
    case Kind::Block1D:
      os << "1D block over " << nodes_ << " nodes (chunk " << rows_per_ << ")";
      break;
    case Kind::Cyclic1D:
      os << "1D cyclic over " << nodes_ << " nodes";
      break;
  }
  return os.str();
}

LoadStats qr_load_stats(int mt, int nt, const Distribution& dist) {
  HQR_CHECK(mt >= 1 && nt >= 1, "empty grid");
  LoadStats s;
  s.node_weight.assign(static_cast<std::size_t>(dist.nodes()), 0.0);
  // Work model: each panel k charges its owner row-tiles below the diagonal
  // with one elimination + (nt - 1 - k) updates of TS weight; the exact
  // kernel mix does not change totals (§II invariant), so TS weights give
  // the right shares.
  double total = 0.0;
  for (int k = 0; k < std::min(mt, nt); ++k) {
    for (int i = k; i < mt; ++i) {
      for (int j = k; j < nt; ++j) {
        // Tile (i, j) is written once per panel k by a factor/update kernel
        // executing on its owner.
        const double w = (j == k)
                             ? kernel_weight(KernelType::TSQRT)
                             : kernel_weight(KernelType::TSMQR);
        s.node_weight[static_cast<std::size_t>(dist.owner(i, j))] += w;
        total += w;
      }
    }
  }
  double mx = 0.0, mean = total / dist.nodes();
  for (auto& w : s.node_weight) {
    mx = std::max(mx, w);
    w /= total;
  }
  s.imbalance = mx / mean - 1.0;
  s.parallel_fraction = mean / mx;
  return s;
}

double block_distribution_speedup_bound(double m, double n, int p) {
  return p * (1.0 - n / (3.0 * m));
}

}  // namespace hqr
