// Data distributions: which node owns each tile (paper §III-A / §IV-A).
//
// The 2D block-cyclic distribution on a p x q grid is HQR's native layout;
// the 1D block distribution is what [SLHD10] and [Agullo et al.] use and is
// the source of their load imbalance on square matrices (§III-C).
#pragma once

#include <string>
#include <vector>

#include "common/check.hpp"

namespace hqr {

class Distribution {
 public:
  enum class Kind { BlockCyclic2D, Block1D, Cyclic1D };

  // 2D block-cyclic on a p x q grid: owner(i, j) = (i mod p) * q + (j mod q).
  static Distribution block_cyclic_2d(int p, int q);
  // 1D block over `nodes` nodes: rows split into contiguous chunks of
  // ceil(mt / nodes) tile rows, all columns local.
  static Distribution block_1d(int nodes, int mt);
  // 1D cyclic over `nodes` nodes: owner(i, j) = i mod nodes.
  static Distribution cyclic_1d(int nodes);

  int owner(int i, int j) const;
  int nodes() const { return nodes_; }
  Kind kind() const { return kind_; }
  std::string describe() const;

  // Grid shape for BlockCyclic2D (p, q); (nodes, 1) otherwise.
  int grid_p() const { return p_; }
  int grid_q() const { return q_; }

 private:
  Distribution(Kind kind, int nodes, int p, int q, int rows_per)
      : kind_(kind), nodes_(nodes), p_(p), q_(q), rows_per_(rows_per) {}

  Kind kind_;
  int nodes_;
  int p_ = 1, q_ = 1;
  int rows_per_ = 1;  // Block1D chunk height
};

// Load statistics of a QR factorization under a distribution: per-node share
// of the total kernel weight, assuming each kernel runs on the owner of its
// victim tile.
struct LoadStats {
  std::vector<double> node_weight;  // fraction of total weight per node
  double imbalance = 0.0;           // max/mean - 1
  double parallel_fraction = 0.0;   // mean/max = attainable efficiency
};

LoadStats qr_load_stats(int mt, int nt, const Distribution& dist);

// The paper's §III-C bound: the speedup attainable by a 1D block
// distribution on p clusters for an m x n (tile) matrix is p(1 - n/(3m)).
double block_distribution_speedup_bound(double m, double n, int p);

}  // namespace hqr
