#include "distrun/dist_exec.hpp"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include <signal.h>
#include <unistd.h>

#include "common/check.hpp"
#include "common/stopwatch.hpp"
#include "dag/partition.hpp"
#include "distrun/payload.hpp"
#include "fault/sent_log.hpp"

namespace hqr::distrun {
namespace {

double sum(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s;
}

DistRankStats local_rank_stats(int rank, const DistOptions& opts,
                               const RunStats& rs,
                               const net::CommCounters& c,
                               double max_recv_wait_seconds) {
  DistRankStats s;
  s.rank = rank;
  s.threads = opts.threads;
  s.tasks = rs.total_tasks;
  s.data_messages_sent = c.data_messages_sent;
  s.data_bytes_sent = c.data_bytes_sent;
  s.data_messages_recv = c.data_messages_recv;
  s.data_bytes_recv = c.data_bytes_recv;
  s.exec_seconds = rs.seconds;
  s.busy_seconds = sum(rs.busy_seconds_per_thread);
  s.idle_seconds = sum(rs.idle_seconds_per_thread);
  s.terminal_wait_seconds = sum(rs.terminal_wait_seconds_per_thread);
  s.max_recv_wait_seconds = max_recv_wait_seconds;
  s.messages_sent_by_tag = c.messages_sent_by_tag;
  s.messages_recv_by_tag = c.messages_recv_by_tag;
  return s;
}

}  // namespace

QRFactors dist_qr_factorize(net::Comm& comm, const Matrix& a, int b,
                            const EliminationList& list,
                            const Distribution& dist, const DistOptions& opts,
                            DistStats* stats) {
  Stopwatch wall;
  const int me = comm.rank();
  const int nranks = comm.size();
  HQR_CHECK(dist.nodes() == nranks,
            "distribution has " << dist.nodes() << " nodes but communicator "
                                << nranks << " ranks");

  // Every rank rebuilds the same graph and plan from the same inputs — the
  // structures are never shipped, only tile data is.
  TiledMatrix tiled = TiledMatrix::from_matrix(a, b);
  const int mt = tiled.mt(), nt = tiled.nt();
  KernelList kernels = expand_to_kernels(list, mt, nt);
  TaskGraph graph(kernels, mt, nt);
  CommPlan plan(graph, dist, opts.broadcast);
  QRFactors f(std::move(tiled), std::move(kernels), opts.ib);
  // Region-version gates keep out-of-order Data applies (cross-sender
  // inversion, SentTileLog replays) from regressing the replica; see
  // RegionGates in payload.hpp.
  RegionGates gates(mt, nt);
  // This rank's tasks in graph (= topological) order, plus completion
  // flags — the comm loop's `locally_ready` gate (see there) reads both to
  // hold back frames that would overtake this rank's own pending tasks.
  std::vector<std::int32_t> my_tasks;
  for (std::int32_t p = 0; p < graph.size(); ++p)
    if (plan.node_of(p) == me) my_tasks.push_back(p);
  std::vector<std::atomic<char>> local_done(
      static_cast<std::size_t>(graph.size()));

  const double shutdown_timeout = opts.progress_timeout_seconds > 0
                                      ? opts.progress_timeout_seconds
                                      : 3600.0;

  std::atomic<long long> progress{0};  // bumped on every local completion
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::string error;
  const auto fail = [&](const std::string& why) {
    std::lock_guard<std::mutex> lk(error_mu);
    if (!failed.load(std::memory_order_relaxed)) error = why;
    failed.store(true, std::memory_order_release);
  };

  // --- Fault injection and recovery state (inert on fault-free runs) ---
  const bool ft = opts.fault.recovery;
  const bool chaos = !opts.fault.faults.empty();
  fault::SentTileLog sent_log(nranks, opts.fault.sent_log_max_bytes);
  std::atomic<long long> fault_activity{0};  // feeds the progress watchdog
  std::atomic<long long> frames_replayed{0};
  std::atomic<long long> bytes_replayed{0};
  std::atomic<int> faults_injected{0};
  // Shutdown-phase frames a link re-wire must re-ship (replay covers Data
  // only): a non-zero rank re-posts Stats+Gather when its rank-0 link is
  // replaced, rank 0 re-posts Bye. Written by the main thread before the
  // flag flips; hooks on the same phase's pump read them after.
  std::atomic<bool> stats_posted{false};
  std::atomic<bool> bye_posted{false};
  std::vector<std::uint8_t> stats_payload;
  std::vector<std::uint8_t> gather_payload;
  const auto note_failure = [&](int who) {
    fault_activity.fetch_add(1, std::memory_order_relaxed);
    if (opts.fault.on_failure) {
      fault::RankFailure fl;
      fl.rank = who;
      fl.detected_by = me;
      fl.reason = fault::FailureReason::PeerClosed;
      fl.seconds = monotonic_seconds();
      opts.fault.on_failure(fl);
    }
  };

  // One time zero per rank, shared by the executor's worker lanes and the
  // communication thread's flow stamps; set right after the clock-sync
  // handshake below. The trace header's clock offset places that zero on
  // rank 0's clock, which is what merge_rank_traces aligns by. Declared
  // (not set) here because the recovery hooks capture it by reference.
  double origin = 0.0;

  if (ft) {
    // Armed before the clock-sync handshake: injections fire at local task
    // completions, so a fast victim can sync, run its first tasks, and die
    // while slower ranks are still in their own handshake — their sync
    // pump must survive draining the dead peer's socket. From here on,
    // peer death marks the peer down, reports LinkDown to the launcher,
    // and fires these hooks on whichever thread is pumping (sync loop or
    // main thread during setup/shutdown, comm thread during execution).
    net::CommFaultHooks hooks;
    hooks.on_peer_down = [&](int q) { note_failure(q); };
    hooks.on_peer_replaced = [&](int q) {
      fault_activity.fetch_add(1, std::memory_order_relaxed);
      const bool complete = sent_log.replay(
          q, [&](int task, const fault::SentTileLog::Payload& p) {
            comm.post(q, net::Tag::Data, task, p->data(), p->size());
            frames_replayed.fetch_add(1, std::memory_order_relaxed);
            bytes_replayed.fetch_add(static_cast<long long>(p->size()),
                                     std::memory_order_relaxed);
            if (opts.trace)
              opts.trace->record_flow_send(task, me, q,
                                           monotonic_seconds() - origin);
          });
      if (!complete)
        fail("sent-tile log overflowed (cap " +
             std::to_string(opts.fault.sent_log_max_bytes) +
             " bytes); cannot replay history to rank " + std::to_string(q));
      // Replay covers Data only; shutdown control frames the down window
      // swallowed must be re-shipped by hand.
      if (q == 0 && stats_posted.load(std::memory_order_acquire)) {
        comm.post(0, net::Tag::Stats, me, stats_payload.data(),
                  stats_payload.size());
        comm.post(0, net::Tag::Gather, me, gather_payload.data(),
                  gather_payload.size());
      }
      if (me == 0 && bye_posted.load(std::memory_order_acquire))
        comm.post(q, net::Tag::Bye, 0, nullptr, 0);
    };
    comm.enable_fault_tolerance(opts.fault.control_fd, std::move(hooks));
  }

  // Clock alignment runs before any Data traffic. A fast peer can finish
  // its sync rounds and start executing while we are still in the
  // handshake; whatever it sends is parked in `held` and replayed through
  // the regular handler once the engine's port exists. A victim can even
  // die in that window — with recovery on, the pump above marks it down
  // and the handshake completes on the surviving links (the victim's own
  // pings were already answered: injections trigger on task completions,
  // which come strictly after its sync).
  std::vector<net::Message> held;
  net::ClockSync csync;
  // A replacement rank joins mid-run: the survivors are deep in execution
  // and will not answer sync pings, so it adopts offset zero (exact for
  // forked single-host ranks, which is the only place recovery runs).
  if (nranks > 1 && opts.clock_sync_rounds > 0 && !opts.fault.is_replacement)
    csync = net::sync_clocks(comm, &held, opts.clock_sync_rounds,
                             shutdown_timeout);

  origin = monotonic_seconds();
  if (opts.trace) opts.trace->set_clock_offset(origin + csync.offset_seconds);

  ExecutorOptions eopts;
  eopts.threads = opts.threads;
  eopts.priority_scheduling = opts.priority_scheduling;
  eopts.data_reuse = opts.data_reuse;
  eopts.ib = opts.ib;
  eopts.scheduler = opts.scheduler;
  eopts.trace = opts.trace;
  eopts.metrics = opts.metrics;
  eopts.trace_origin = origin;

  // Fires chaos actions armed at the k-th local completion (1-based).
  const auto inject_at = [&](long long k) {
    for (const fault::FaultAction& a : opts.fault.faults) {
      if (a.at_task != k) continue;
      switch (a.kind) {
        case fault::FaultKind::KillRank:
          std::fprintf(stderr,
                       "[rank %d] fault injection: SIGKILL at local task "
                       "%lld\n",
                       me, k);
          std::fflush(stderr);
          ::kill(::getpid(), SIGKILL);
          break;  // unreachable
        case fault::FaultKind::DropLink:
          std::fprintf(stderr,
                       "[rank %d] fault injection: severing link to rank %d "
                       "at local task %lld\n",
                       me, a.peer, k);
          comm.sever_link(a.peer);
          faults_injected.fetch_add(1, std::memory_order_relaxed);
          break;
        case fault::FaultKind::DelayLink:
          comm.pause_peer(a.peer, a.delay_seconds);
          faults_injected.fetch_add(1, std::memory_order_relaxed);
          break;
      }
    }
  };

  PartitionView view;
  view.task_rank = &plan.node();
  view.my_rank = me;
  view.on_complete = [&](std::int32_t idx) {
    // Stamp this task's write regions before anything can release its
    // successors: a late stale frame must find the gates already advanced.
    gates.bump_writes(graph.op(idx), idx);
    local_done[static_cast<std::size_t>(idx)].store(1,
                                                    std::memory_order_release);
    const long long k = progress.fetch_add(1, std::memory_order_relaxed) + 1;
    // Injection sits before the broadcast: a killed rank's k-th output
    // never leaves the process, exactly the window the simulator models.
    if (chaos) inject_at(k);
    // One pack, one frame per broadcast-tree child (Eager: every consuming
    // rank; Binomial: this producer's direct children — the rest is
    // relayed by intermediate consumers as the payload arrives there).
    const std::vector<std::int32_t> kids = plan.bcast_children(idx, me);
    if (kids.empty()) return;
    std::vector<std::uint8_t> payload;
    pack_task_output(graph.op(idx), f, payload);
    // Stamp the send BEFORE posting: the frame can reach the receiver (and
    // be stamped there) while this worker is descheduled, and a post-post
    // stamp would then violate send < recv on the merged timeline.
    const double t = opts.trace ? monotonic_seconds() - origin : 0.0;
    if (ft) {
      // Log BEFORE posting, sharing the one payload across destinations:
      // the log must cover every frame ever posted — including frames
      // dropped while a peer is down — for replay to be the full history.
      // The order is load-bearing: a ReplacePeer re-wire drops the peer's
      // send queue and then replays this log, so a frame enqueued before
      // its append could land in that drop window while still invisible to
      // the replay — lost for good. Logged-then-posted, the worst case is
      // a duplicate delivery, which the receiver's seen-producer dedup
      // absorbs.
      const auto sp = std::make_shared<const std::vector<std::uint8_t>>(
          std::move(payload));
      for (std::int32_t d : kids) {
        sent_log.append(d, idx, sp);
        comm.post(d, net::Tag::Data, idx, sp->data(), sp->size());
        if (opts.trace) opts.trace->record_flow_send(idx, me, d, t);
      }
      return;
    }
    for (std::int32_t d : kids) {
      comm.post(d, net::Tag::Data, idx, payload.data(), payload.size());
      if (opts.trace) opts.trace->record_flow_send(idx, me, d, t);
    }
  };

  // Control frames that arrive ahead of their phase. A rank whose slice of
  // the DAG finishes early posts Stats+Gather while rank 0 may still be
  // executing; the execution-phase loop parks them here and the collect
  // phase replays them. Written only by the comm thread during the run and
  // read by the main thread after joining it, so no lock is needed.
  std::vector<net::Message> pending;

  // Largest gap between consecutive Data arrivals, measured on the comm
  // thread; written before the join in before_teardown, read after.
  double max_recv_wait = 0.0;

  // Register telemetry gauges up front (registration locks; updates don't).
  obs::Gauge* queue_frames_gauge = nullptr;
  obs::Gauge* queue_bytes_gauge = nullptr;
  if (opts.metrics && opts.telemetry_interval_seconds > 0) {
    queue_frames_gauge = &opts.metrics->gauge("net.send_queue_frames");
    queue_bytes_gauge = &opts.metrics->gauge("net.send_queue_bytes");
  }

  // Communication thread: drives the socket mesh while workers execute.
  // Every received Data frame is applied to the local replica immediately —
  // any local task that could touch those regions is either an ancestor of
  // the producer (finished everywhere already) or an unreleased successor.
  // Under tree broadcasts it is also re-posted to this rank's subtree
  // children first, so a relay never waits on local compute.
  std::thread comm_thread;
  // Producers whose Data frame already arrived (comm thread only): each
  // tree member has exactly one parent so duplicates are protocol bugs,
  // but a dedup keyed by producer id keeps a misbehaving peer from
  // double-applying updates or amplifying forwards.
  std::vector<char> seen_data(static_cast<std::size_t>(graph.size()), 0);
  std::atomic<bool> stop{false};
  const auto comm_loop = [&](RemotePort* port) {
    Stopwatch sw;
    double last_activity = 0.0;
    double last_data = 0.0;
    long long seen = progress.load(std::memory_order_relaxed);
    long long fseen = fault_activity.load(std::memory_order_relaxed);
    double next_tick = opts.telemetry_interval_seconds;
    const auto sample_telemetry = [&]() {
      DistTelemetry t;
      t.rank = me;
      t.threads = opts.threads;
      t.tasks_done = progress.load(std::memory_order_relaxed);
      t.tasks_total = plan.tasks_on(me);
      t.send_queue_frames = comm.send_queue_frames();
      t.send_queue_bytes = comm.send_queue_bytes();
      const net::CommCounters c = comm.counters_snapshot();
      t.data_messages_sent = c.data_messages_sent;
      t.data_messages_recv = c.data_messages_recv;
      t.data_bytes_sent = c.data_bytes_sent;
      t.data_bytes_recv = c.data_bytes_recv;
      t.seconds = sw.seconds();
      return t;
    };
    // On an original rank a frame is always safe to apply on arrival: its
    // producer only ran because every local task that must precede it had
    // completed AND that completion's frame had left this process (wire
    // causality). A replacement breaks that — survivors' frames were
    // enabled by the DEAD incarnation's completions, so a frame can arrive
    // before this incarnation has re-executed the local tasks that must
    // precede it, and applying it would overwrite exactly the region bytes
    // those tasks still need to read. The kernel list is a topological
    // order (every graph edge goes to a higher index), so "every local
    // task that must precede frame `id`" is bounded by "every local task
    // with a lower index": hold the frame until the local completion
    // frontier passes it. Deadlock-free by induction — the lowest
    // unfinished local task's own inputs all clear this gate.
    std::size_t frontier = 0;  // my_tasks[0..frontier) have all completed
    const auto locally_ready = [&](std::int32_t id) {
      if (!opts.fault.is_replacement) return true;
      while (frontier < my_tasks.size() &&
             local_done[static_cast<std::size_t>(my_tasks[frontier])].load(
                 std::memory_order_acquire))
        ++frontier;
      return frontier >= my_tasks.size() || my_tasks[frontier] > id;
    };
    std::vector<net::Message> deferred;
    // Stall post-mortem, printed when this rank gives up (watchdog) or a
    // peer tears the run down (Abort): enough state to tell a frame that
    // never arrived from a frame stuck behind the replacement's local
    // frontier.
    const auto stall_diag = [&](const char* why) {
      std::size_t fdone = 0;
      while (fdone < my_tasks.size() &&
             local_done[static_cast<std::size_t>(my_tasks[fdone])].load(
                 std::memory_order_acquire))
        ++fdone;
      std::string ids;
      for (const net::Message& dm : deferred) ids += " " + std::to_string(dm.id);
      std::fprintf(stderr,
                   "[rank %d%s] %s: %zu/%zu local tasks done, lowest "
                   "incomplete local task %d, %zu deferred frame(s):%s\n",
                   me, opts.fault.is_replacement ? "*" : "", why, fdone,
                   my_tasks.size(),
                   fdone < my_tasks.size() ? my_tasks[fdone] : -1,
                   deferred.size(), ids.c_str());
      std::fflush(stderr);
    };
    const auto deliver = [&](net::Message&& m) {
      apply_task_output(graph.op(m.id), f, m.payload, gates, m.id);
      if (opts.trace) {
        // The arrow's head: the first local task this payload helps
        // release (graph order makes it the earliest consumer here).
        std::int32_t consumer = -1;
        for (std::int32_t s : graph.successors(m.id))
          if (plan.node_of(s) == me) {
            consumer = s;
            break;
          }
        opts.trace->record_flow_recv(m.id, m.src, me, consumer,
                                     monotonic_seconds() - origin);
      }
      const double now = sw.seconds();
      if (now - last_data > max_recv_wait) max_recv_wait = now - last_data;
      last_data = now;
      port->remote_complete(m.id);
    };
    const auto on_msg = [&](net::Message&& m) {
      switch (m.tag) {
        case net::Tag::Data: {
          HQR_CHECK(m.id >= 0 && m.id < graph.size(),
                    "Data frame names unknown task " << m.id);
          if (seen_data[static_cast<std::size_t>(m.id)]) break;
          seen_data[static_cast<std::size_t>(m.id)] = 1;
          // Relay down the broadcast tree before touching local state: the
          // subtree's latency is the payload's, not this rank's. Never
          // deferred — downstream ranks gate their own applies.
          const std::vector<std::int32_t> kids = plan.bcast_children(m.id, me);
          if (!kids.empty()) {
            const double t = opts.trace ? monotonic_seconds() - origin : 0.0;
            fault::SentTileLog::Payload sp;
            if (ft)
              sp = std::make_shared<const std::vector<std::uint8_t>>(
                  m.payload);
            for (std::int32_t d : kids) {
              // Same append-before-post ordering as on_complete: a re-wire
              // drops the queue then replays the log.
              if (ft) sent_log.append(d, m.id, sp);
              comm.post(d, net::Tag::Data, m.id, m.payload.data(),
                        m.payload.size());
              if (opts.trace) opts.trace->record_flow_send(m.id, me, d, t);
            }
          }
          if (locally_ready(m.id))
            deliver(std::move(m));
          else
            deferred.push_back(std::move(m));
          break;
        }
        case net::Tag::Telemetry:
          if (me == 0 && opts.on_telemetry &&
              m.payload.size() == sizeof(DistTelemetry)) {
            DistTelemetry t;
            std::memcpy(&t, m.payload.data(), sizeof(t));
            opts.on_telemetry(t);
          }
          break;
        case net::Tag::Abort:
          stall_diag("peer abort");
          fail("rank " + std::to_string(m.src) + " aborted the run");
          break;
        case net::Tag::Stats:
        case net::Tag::Gather:
          // A peer finished its slice before we finished ours.
          if (me == 0) {
            pending.push_back(std::move(m));
            break;
          }
          [[fallthrough]];
        default:
          fail("unexpected tag " +
               std::to_string(static_cast<unsigned>(m.tag)) +
               " during execution");
      }
    };
    for (net::Message& m : held) on_msg(std::move(m));
    held.clear();
    while (!stop.load(std::memory_order_acquire)) {
      int delivered = 0;
      try {
        delivered = comm.pump(2, on_msg);
      } catch (const std::exception& e) {
        fail(e.what());
      }
      if (failed.load(std::memory_order_acquire)) {
        port->cancel();
        return;
      }
      // Deferred frames unblock when workers finish the local tasks they
      // wait on; one delivery can run tasks that unblock another, so drain
      // to a fixed point.
      for (bool any = !deferred.empty(); any;) {
        any = false;
        for (std::size_t i = 0; i < deferred.size();) {
          if (locally_ready(deferred[i].id)) {
            net::Message m = std::move(deferred[i]);
            deferred.erase(deferred.begin() +
                           static_cast<std::ptrdiff_t>(i));
            deliver(std::move(m));
            any = true;
          } else {
            ++i;
          }
        }
      }
      if (opts.telemetry_interval_seconds > 0 && sw.seconds() >= next_tick) {
        next_tick = sw.seconds() + opts.telemetry_interval_seconds;
        const DistTelemetry t = sample_telemetry();
        if (queue_frames_gauge) {
          queue_frames_gauge->set(static_cast<double>(t.send_queue_frames));
          queue_bytes_gauge->set(static_cast<double>(t.send_queue_bytes));
        }
        if (me == 0) {
          // Rank 0's own heartbeat never crosses the wire.
          if (opts.on_telemetry) opts.on_telemetry(t);
        } else {
          comm.post(0, net::Tag::Telemetry, me, &t, sizeof(t));
        }
      }
      const long long p = progress.load(std::memory_order_relaxed);
      const long long fa = fault_activity.load(std::memory_order_relaxed);
      if (delivered > 0 || p != seen || fa != fseen) {
        // Peer-down/re-wire events count as progress: a survivor waiting
        // out a recovery is not wedged. progress_timeout_seconds must
        // exceed the worst-case recovery time (DESIGN.md §14).
        seen = p;
        fseen = fa;
        last_activity = sw.seconds();
      } else if (opts.progress_timeout_seconds > 0 &&
                 sw.seconds() - last_activity >
                     opts.progress_timeout_seconds) {
        if (opts.fault.on_failure) {
          fault::RankFailure fl;
          fl.rank = me;
          fl.detected_by = me;
          fl.reason = fault::FailureReason::WatchdogTimeout;
          fl.seconds = monotonic_seconds();
          opts.fault.on_failure(fl);
        }
        stall_diag("watchdog");
        fail("no progress for " +
             std::to_string(opts.progress_timeout_seconds) +
             "s (stuck or dead peer)");
        for (int q = 0; q < nranks; ++q)
          if (q != me) comm.post(q, net::Tag::Abort, me, nullptr, 0);
        for (int i = 0; i < 50 && !comm.flushed(); ++i)
          comm.pump(2, [](net::Message&&) {});
        port->cancel();
        return;
      }
    }
  };

  RunStats rs = execute_partition(
      f, graph, eopts, view,
      [&](RemotePort& port) {
        RemotePort* p = &port;  // the port outlives the thread (see below)
        comm_thread = std::thread([&comm_loop, p] { comm_loop(p); });
      },
      [&] {
        // Engine (and the port) must outlive the communication thread.
        stop.store(true, std::memory_order_release);
        if (comm_thread.joinable()) comm_thread.join();
      });

  HQR_CHECK(!failed.load(std::memory_order_acquire),
            "distributed run failed on rank " << me << ": " << error);

  // Shutdown/gather protocol, driven on this (main) thread. The engine
  // finishing means every inbound Data frame was consumed — each one had a
  // local successor the engine waited for — so from here only control
  // traffic flows.
  const auto buffer_msg = [&](net::Message&& m) {
    pending.push_back(std::move(m));
  };
  Stopwatch flush_sw;
  while (!comm.flushed()) {
    comm.pump(2, buffer_msg);
    HQR_CHECK(flush_sw.seconds() < shutdown_timeout,
              "rank " << me << ": shutdown flush timed out");
  }

  // Rank-local fault observability, appended to the POD stats frame.
  const auto fill_fault_stats = [&](DistRankStats& s) {
    const net::CommCounters c = comm.counters_snapshot();
    s.incarnation = opts.fault.incarnation;
    s.faults_injected = faults_injected.load(std::memory_order_relaxed);
    s.peers_down = c.peers_down;
    s.peers_replaced = c.peers_replaced;
    s.frames_dropped = c.frames_dropped_peer_down;
    s.frames_replayed = frames_replayed.load(std::memory_order_relaxed);
    s.bytes_replayed = bytes_replayed.load(std::memory_order_relaxed);
  };

  DistStats out;
  out.local_tasks = rs.total_tasks;
  out.plan_messages = plan.messages();
  out.plan_volume_bytes = plan.model_volume_bytes(b);
  out.clock = csync;
  out.run = rs;

  if (me == 0) {
    out.ranks.assign(static_cast<std::size_t>(nranks), {});
    out.ranks[0] =
        local_rank_stats(0, opts, rs, comm.counters(), max_recv_wait);
    fill_fault_stats(out.ranks[0]);
    std::vector<char> got_stats(static_cast<std::size_t>(nranks), 0);
    std::vector<char> got_gather(static_cast<std::size_t>(nranks), 0);
    got_stats[0] = got_gather[0] = 1;
    int missing = 2 * (nranks - 1);
    const auto collect = [&](net::Message&& m) {
      if (m.tag == net::Tag::Stats) {
        HQR_CHECK(m.payload.size() == sizeof(DistRankStats) &&
                      (ft || !got_stats[static_cast<std::size_t>(m.src)]),
                  "bad Stats frame from rank " << m.src);
        // First wins under recovery: a re-wired rank re-posts its Stats in
        // case the down window swallowed the original.
        if (got_stats[static_cast<std::size_t>(m.src)]) return;
        std::memcpy(&out.ranks[static_cast<std::size_t>(m.src)],
                    m.payload.data(), sizeof(DistRankStats));
        got_stats[static_cast<std::size_t>(m.src)] = 1;
        --missing;
      } else if (m.tag == net::Tag::Gather) {
        HQR_CHECK(ft || !got_gather[static_cast<std::size_t>(m.src)],
                  "duplicate Gather frame from rank " << m.src);
        if (got_gather[static_cast<std::size_t>(m.src)]) return;
        apply_gather(graph, plan, m.src, m.payload, f);
        got_gather[static_cast<std::size_t>(m.src)] = 1;
        --missing;
      } else if (ft && m.tag == net::Tag::Data) {
        // A replacement's re-post or a replay duplicate. Everything this
        // rank consumes arrived before its engine finished; drop it.
      } else if (m.tag == net::Tag::Telemetry) {
        // A rank's final heartbeat can race its Stats frame; deliver it and
        // keep collecting.
        if (opts.on_telemetry && m.payload.size() == sizeof(DistTelemetry)) {
          DistTelemetry t;
          std::memcpy(&t, m.payload.data(), sizeof(t));
          opts.on_telemetry(t);
        }
      } else {
        HQR_CHECK(false, "unexpected tag during gather (from rank "
                             << m.src << ")");
      }
    };
    for (net::Message& m : pending) collect(std::move(m));
    pending.clear();
    Stopwatch gather_sw;
    while (missing > 0) {
      comm.pump(5, collect);
      HQR_CHECK(gather_sw.seconds() < shutdown_timeout,
                "rank 0: gather timed out with " << missing
                                                 << " frame(s) missing");
    }
    // Release everyone, then make sure the releases actually left. Under
    // recovery the flag lets the re-wire hook re-post Bye to a link whose
    // down window swallowed it.
    bye_posted.store(true, std::memory_order_release);
    for (int q = 1; q < nranks; ++q)
      comm.post(q, net::Tag::Bye, 0, nullptr, 0);
    comm.set_eof_ok(true);  // peers close as soon as Bye lands
    Stopwatch bye_sw;
    while (!comm.flushed()) {
      comm.pump(2, [](net::Message&&) {});
      HQR_CHECK(bye_sw.seconds() < shutdown_timeout,
                "rank 0: shutdown release timed out");
    }
  } else {
    DistRankStats mine =
        local_rank_stats(me, opts, rs, comm.counters(), max_recv_wait);
    fill_fault_stats(mine);
    const std::vector<std::uint8_t> g = pack_gather(graph, plan, me, f);
    if (ft) {
      // Stash copies for the re-wire hook before posting: the rank-0 link
      // can die with these frames in its down window, and SentTileLog
      // replay covers Data only.
      const auto* raw = reinterpret_cast<const std::uint8_t*>(&mine);
      stats_payload.assign(raw, raw + sizeof(mine));
      gather_payload = g;
      stats_posted.store(true, std::memory_order_release);
    }
    comm.post(0, net::Tag::Stats, me, &mine, sizeof(mine));
    comm.post(0, net::Tag::Gather, me, g.data(), g.size());
    // Sibling ranks may disappear once rank 0 released them; only Bye from
    // rank 0 matters now.
    comm.set_eof_ok(true);
    bool bye = false;
    const auto await_bye = [&](net::Message&& m) {
      // Under recovery a replacement's re-posts (and replay duplicates) can
      // still arrive here; this rank consumed everything it needed before
      // its engine finished, so they drop silently.
      if (ft && m.tag != net::Tag::Bye) return;
      HQR_CHECK(m.tag == net::Tag::Bye,
                "unexpected tag while awaiting shutdown release");
      if (m.src == 0) bye = true;
    };
    for (net::Message& m : pending) await_bye(std::move(m));
    pending.clear();
    Stopwatch bye_sw;
    while (!bye) {
      comm.pump(5, await_bye);
      HQR_CHECK(bye_sw.seconds() < shutdown_timeout,
                "rank " << me << ": shutdown release never arrived");
    }
    if (ft) {
      // Frames the re-wire hook posted from this phase's pump (replays,
      // re-posts) may still sit in the send queue; kernel buffers survive
      // our close, but unwritten queue entries would not.
      Stopwatch fsw;
      while (!comm.flushed()) {
        comm.pump(2, [](net::Message&&) {});
        HQR_CHECK(fsw.seconds() < shutdown_timeout,
                  "rank " << me << ": post-release flush timed out");
      }
    }
  }

  out.comm = comm.counters();
  out.seconds = wall.seconds();

  if (opts.metrics) {
    obs::MetricsRegistry& m = *opts.metrics;
    m.counter("net.data_messages_sent").add(out.comm.data_messages_sent);
    m.counter("net.data_bytes_sent").add(out.comm.data_bytes_sent);
    m.counter("net.data_messages_recv").add(out.comm.data_messages_recv);
    m.counter("net.data_bytes_recv").add(out.comm.data_bytes_recv);
    m.counter("net.control_messages_sent")
        .add(out.comm.control_messages_sent);
    m.counter("net.control_bytes_sent").add(out.comm.control_bytes_sent);
    for (int t = 1; t < net::kTagCount; ++t) {
      const std::string n = net::tag_name(static_cast<net::Tag>(t));
      const auto ti = static_cast<std::size_t>(t);
      m.counter("net.messages_sent." + n)
          .add(out.comm.messages_sent_by_tag[ti]);
      m.counter("net.messages_recv." + n)
          .add(out.comm.messages_recv_by_tag[ti]);
    }
    m.counter("dist.local_tasks").add(out.local_tasks);
    m.counter("dist.plan_messages").add(out.plan_messages);
    m.gauge("dist.plan_volume_bytes").add(out.plan_volume_bytes);
    m.gauge("dist.seconds").add(out.seconds);
    m.gauge("dist.clock_offset_seconds").set(csync.offset_seconds);
    m.gauge("dist.clock_rtt_seconds").set(csync.min_rtt_seconds);
    m.gauge("dist.max_recv_wait_seconds").set(max_recv_wait);
    if (ft || chaos) {
      m.counter("fault.injected")
          .add(faults_injected.load(std::memory_order_relaxed));
      m.counter("fault.peers_down").add(out.comm.peers_down);
      m.counter("fault.peers_replaced").add(out.comm.peers_replaced);
      m.counter("fault.frames_dropped")
          .add(out.comm.frames_dropped_peer_down);
      m.counter("fault.frames_replayed")
          .add(frames_replayed.load(std::memory_order_relaxed));
      m.counter("fault.bytes_replayed")
          .add(bytes_replayed.load(std::memory_order_relaxed));
      m.gauge("fault.sent_log_bytes").set(static_cast<double>(
          sent_log.bytes()));
      m.gauge("fault.incarnation").set(opts.fault.incarnation);
    }
  }
  if (stats) *stats = std::move(out);
  return f;
}

}  // namespace hqr::distrun
