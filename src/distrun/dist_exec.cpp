#include "distrun/dist_exec.hpp"

#include <atomic>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "common/check.hpp"
#include "common/stopwatch.hpp"
#include "dag/partition.hpp"
#include "distrun/payload.hpp"

namespace hqr::distrun {
namespace {

double sum(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s;
}

DistRankStats local_rank_stats(int rank, const DistOptions& opts,
                               const RunStats& rs,
                               const net::CommCounters& c,
                               double max_recv_wait_seconds) {
  DistRankStats s;
  s.rank = rank;
  s.threads = opts.threads;
  s.tasks = rs.total_tasks;
  s.data_messages_sent = c.data_messages_sent;
  s.data_bytes_sent = c.data_bytes_sent;
  s.data_messages_recv = c.data_messages_recv;
  s.data_bytes_recv = c.data_bytes_recv;
  s.exec_seconds = rs.seconds;
  s.busy_seconds = sum(rs.busy_seconds_per_thread);
  s.idle_seconds = sum(rs.idle_seconds_per_thread);
  s.terminal_wait_seconds = sum(rs.terminal_wait_seconds_per_thread);
  s.max_recv_wait_seconds = max_recv_wait_seconds;
  s.messages_sent_by_tag = c.messages_sent_by_tag;
  s.messages_recv_by_tag = c.messages_recv_by_tag;
  return s;
}

}  // namespace

QRFactors dist_qr_factorize(net::Comm& comm, const Matrix& a, int b,
                            const EliminationList& list,
                            const Distribution& dist, const DistOptions& opts,
                            DistStats* stats) {
  Stopwatch wall;
  const int me = comm.rank();
  const int nranks = comm.size();
  HQR_CHECK(dist.nodes() == nranks,
            "distribution has " << dist.nodes() << " nodes but communicator "
                                << nranks << " ranks");

  // Every rank rebuilds the same graph and plan from the same inputs — the
  // structures are never shipped, only tile data is.
  TiledMatrix tiled = TiledMatrix::from_matrix(a, b);
  const int mt = tiled.mt(), nt = tiled.nt();
  KernelList kernels = expand_to_kernels(list, mt, nt);
  TaskGraph graph(kernels, mt, nt);
  CommPlan plan(graph, dist, opts.broadcast);
  QRFactors f(std::move(tiled), std::move(kernels), opts.ib);

  const double shutdown_timeout = opts.progress_timeout_seconds > 0
                                      ? opts.progress_timeout_seconds
                                      : 3600.0;

  // Clock alignment runs first, before any Data traffic. A fast peer can
  // finish its sync rounds and start executing while we are still in the
  // handshake; whatever it sends is parked in `held` and replayed through
  // the regular handler once the engine's port exists.
  std::vector<net::Message> held;
  net::ClockSync csync;
  if (nranks > 1 && opts.clock_sync_rounds > 0)
    csync = net::sync_clocks(comm, &held, opts.clock_sync_rounds,
                             shutdown_timeout);

  // One time zero per rank, shared by the executor's worker lanes and the
  // communication thread's flow stamps. The trace header's clock offset
  // places that zero on rank 0's clock, which is what merge_rank_traces
  // aligns by.
  const double origin = monotonic_seconds();
  if (opts.trace) opts.trace->set_clock_offset(origin + csync.offset_seconds);

  ExecutorOptions eopts;
  eopts.threads = opts.threads;
  eopts.priority_scheduling = opts.priority_scheduling;
  eopts.data_reuse = opts.data_reuse;
  eopts.ib = opts.ib;
  eopts.scheduler = opts.scheduler;
  eopts.trace = opts.trace;
  eopts.metrics = opts.metrics;
  eopts.trace_origin = origin;

  std::atomic<long long> progress{0};  // bumped on every local completion
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::string error;
  const auto fail = [&](const std::string& why) {
    std::lock_guard<std::mutex> lk(error_mu);
    if (!failed.load(std::memory_order_relaxed)) error = why;
    failed.store(true, std::memory_order_release);
  };

  PartitionView view;
  view.task_rank = &plan.node();
  view.my_rank = me;
  view.on_complete = [&](std::int32_t idx) {
    progress.fetch_add(1, std::memory_order_relaxed);
    // One pack, one frame per broadcast-tree child (Eager: every consuming
    // rank; Binomial: this producer's direct children — the rest is
    // relayed by intermediate consumers as the payload arrives there).
    const std::vector<std::int32_t> kids = plan.bcast_children(idx, me);
    if (kids.empty()) return;
    std::vector<std::uint8_t> payload;
    pack_task_output(graph.op(idx), f, payload);
    // Stamp the send BEFORE posting: the frame can reach the receiver (and
    // be stamped there) while this worker is descheduled, and a post-post
    // stamp would then violate send < recv on the merged timeline.
    const double t = opts.trace ? monotonic_seconds() - origin : 0.0;
    for (std::int32_t d : kids) {
      comm.post(d, net::Tag::Data, idx, payload.data(), payload.size());
      if (opts.trace) opts.trace->record_flow_send(idx, me, d, t);
    }
  };

  // Control frames that arrive ahead of their phase. A rank whose slice of
  // the DAG finishes early posts Stats+Gather while rank 0 may still be
  // executing; the execution-phase loop parks them here and the collect
  // phase replays them. Written only by the comm thread during the run and
  // read by the main thread after joining it, so no lock is needed.
  std::vector<net::Message> pending;

  // Largest gap between consecutive Data arrivals, measured on the comm
  // thread; written before the join in before_teardown, read after.
  double max_recv_wait = 0.0;

  // Register telemetry gauges up front (registration locks; updates don't).
  obs::Gauge* queue_frames_gauge = nullptr;
  obs::Gauge* queue_bytes_gauge = nullptr;
  if (opts.metrics && opts.telemetry_interval_seconds > 0) {
    queue_frames_gauge = &opts.metrics->gauge("net.send_queue_frames");
    queue_bytes_gauge = &opts.metrics->gauge("net.send_queue_bytes");
  }

  // Communication thread: drives the socket mesh while workers execute.
  // Every received Data frame is applied to the local replica immediately —
  // any local task that could touch those regions is either an ancestor of
  // the producer (finished everywhere already) or an unreleased successor.
  // Under tree broadcasts it is also re-posted to this rank's subtree
  // children first, so a relay never waits on local compute.
  std::thread comm_thread;
  // Producers whose Data frame already arrived (comm thread only): each
  // tree member has exactly one parent so duplicates are protocol bugs,
  // but a dedup keyed by producer id keeps a misbehaving peer from
  // double-applying updates or amplifying forwards.
  std::vector<char> seen_data(static_cast<std::size_t>(graph.size()), 0);
  std::atomic<bool> stop{false};
  const auto comm_loop = [&](RemotePort* port) {
    Stopwatch sw;
    double last_activity = 0.0;
    double last_data = 0.0;
    long long seen = progress.load(std::memory_order_relaxed);
    double next_tick = opts.telemetry_interval_seconds;
    const auto sample_telemetry = [&]() {
      DistTelemetry t;
      t.rank = me;
      t.threads = opts.threads;
      t.tasks_done = progress.load(std::memory_order_relaxed);
      t.tasks_total = plan.tasks_on(me);
      t.send_queue_frames = comm.send_queue_frames();
      t.send_queue_bytes = comm.send_queue_bytes();
      const net::CommCounters c = comm.counters_snapshot();
      t.data_messages_sent = c.data_messages_sent;
      t.data_messages_recv = c.data_messages_recv;
      t.data_bytes_sent = c.data_bytes_sent;
      t.data_bytes_recv = c.data_bytes_recv;
      t.seconds = sw.seconds();
      return t;
    };
    const auto on_msg = [&](net::Message&& m) {
      switch (m.tag) {
        case net::Tag::Data: {
          HQR_CHECK(m.id >= 0 && m.id < graph.size(),
                    "Data frame names unknown task " << m.id);
          if (seen_data[static_cast<std::size_t>(m.id)]) break;
          seen_data[static_cast<std::size_t>(m.id)] = 1;
          // Relay down the broadcast tree before touching local state: the
          // subtree's latency is the payload's, not this rank's.
          const std::vector<std::int32_t> kids = plan.bcast_children(m.id, me);
          if (!kids.empty()) {
            const double t = opts.trace ? monotonic_seconds() - origin : 0.0;
            for (std::int32_t d : kids) {
              comm.post(d, net::Tag::Data, m.id, m.payload.data(),
                        m.payload.size());
              if (opts.trace) opts.trace->record_flow_send(m.id, me, d, t);
            }
          }
          apply_task_output(graph.op(m.id), f, m.payload);
          if (opts.trace) {
            // The arrow's head: the first local task this payload helps
            // release (graph order makes it the earliest consumer here).
            std::int32_t consumer = -1;
            for (std::int32_t s : graph.successors(m.id))
              if (plan.node_of(s) == me) {
                consumer = s;
                break;
              }
            opts.trace->record_flow_recv(m.id, m.src, me, consumer,
                                         monotonic_seconds() - origin);
          }
          const double now = sw.seconds();
          if (now - last_data > max_recv_wait) max_recv_wait = now - last_data;
          last_data = now;
          port->remote_complete(m.id);
          break;
        }
        case net::Tag::Telemetry:
          if (me == 0 && opts.on_telemetry &&
              m.payload.size() == sizeof(DistTelemetry)) {
            DistTelemetry t;
            std::memcpy(&t, m.payload.data(), sizeof(t));
            opts.on_telemetry(t);
          }
          break;
        case net::Tag::Abort:
          fail("rank " + std::to_string(m.src) + " aborted the run");
          break;
        case net::Tag::Stats:
        case net::Tag::Gather:
          // A peer finished its slice before we finished ours.
          if (me == 0) {
            pending.push_back(std::move(m));
            break;
          }
          [[fallthrough]];
        default:
          fail("unexpected tag " +
               std::to_string(static_cast<unsigned>(m.tag)) +
               " during execution");
      }
    };
    for (net::Message& m : held) on_msg(std::move(m));
    held.clear();
    while (!stop.load(std::memory_order_acquire)) {
      int delivered = 0;
      try {
        delivered = comm.pump(2, on_msg);
      } catch (const std::exception& e) {
        fail(e.what());
      }
      if (failed.load(std::memory_order_acquire)) {
        port->cancel();
        return;
      }
      if (opts.telemetry_interval_seconds > 0 && sw.seconds() >= next_tick) {
        next_tick = sw.seconds() + opts.telemetry_interval_seconds;
        const DistTelemetry t = sample_telemetry();
        if (queue_frames_gauge) {
          queue_frames_gauge->set(static_cast<double>(t.send_queue_frames));
          queue_bytes_gauge->set(static_cast<double>(t.send_queue_bytes));
        }
        if (me == 0) {
          // Rank 0's own heartbeat never crosses the wire.
          if (opts.on_telemetry) opts.on_telemetry(t);
        } else {
          comm.post(0, net::Tag::Telemetry, me, &t, sizeof(t));
        }
      }
      const long long p = progress.load(std::memory_order_relaxed);
      if (delivered > 0 || p != seen) {
        seen = p;
        last_activity = sw.seconds();
      } else if (opts.progress_timeout_seconds > 0 &&
                 sw.seconds() - last_activity >
                     opts.progress_timeout_seconds) {
        fail("no progress for " +
             std::to_string(opts.progress_timeout_seconds) +
             "s (stuck or dead peer)");
        for (int q = 0; q < nranks; ++q)
          if (q != me) comm.post(q, net::Tag::Abort, me, nullptr, 0);
        for (int i = 0; i < 50 && !comm.flushed(); ++i)
          comm.pump(2, [](net::Message&&) {});
        port->cancel();
        return;
      }
    }
  };

  RunStats rs = execute_partition(
      f, graph, eopts, view,
      [&](RemotePort& port) {
        RemotePort* p = &port;  // the port outlives the thread (see below)
        comm_thread = std::thread([&comm_loop, p] { comm_loop(p); });
      },
      [&] {
        // Engine (and the port) must outlive the communication thread.
        stop.store(true, std::memory_order_release);
        if (comm_thread.joinable()) comm_thread.join();
      });

  HQR_CHECK(!failed.load(std::memory_order_acquire),
            "distributed run failed on rank " << me << ": " << error);

  // Shutdown/gather protocol, driven on this (main) thread. The engine
  // finishing means every inbound Data frame was consumed — each one had a
  // local successor the engine waited for — so from here only control
  // traffic flows.
  const auto buffer_msg = [&](net::Message&& m) {
    pending.push_back(std::move(m));
  };
  Stopwatch flush_sw;
  while (!comm.flushed()) {
    comm.pump(2, buffer_msg);
    HQR_CHECK(flush_sw.seconds() < shutdown_timeout,
              "rank " << me << ": shutdown flush timed out");
  }

  DistStats out;
  out.local_tasks = rs.total_tasks;
  out.plan_messages = plan.messages();
  out.plan_volume_bytes = plan.model_volume_bytes(b);
  out.clock = csync;
  out.run = rs;

  if (me == 0) {
    out.ranks.assign(static_cast<std::size_t>(nranks), {});
    out.ranks[0] =
        local_rank_stats(0, opts, rs, comm.counters(), max_recv_wait);
    std::vector<char> got_stats(static_cast<std::size_t>(nranks), 0);
    std::vector<char> got_gather(static_cast<std::size_t>(nranks), 0);
    got_stats[0] = got_gather[0] = 1;
    int missing = 2 * (nranks - 1);
    const auto collect = [&](net::Message&& m) {
      if (m.tag == net::Tag::Stats) {
        HQR_CHECK(m.payload.size() == sizeof(DistRankStats) &&
                      !got_stats[static_cast<std::size_t>(m.src)],
                  "bad Stats frame from rank " << m.src);
        std::memcpy(&out.ranks[static_cast<std::size_t>(m.src)],
                    m.payload.data(), sizeof(DistRankStats));
        got_stats[static_cast<std::size_t>(m.src)] = 1;
        --missing;
      } else if (m.tag == net::Tag::Gather) {
        HQR_CHECK(!got_gather[static_cast<std::size_t>(m.src)],
                  "duplicate Gather frame from rank " << m.src);
        apply_gather(graph, plan, m.src, m.payload, f);
        got_gather[static_cast<std::size_t>(m.src)] = 1;
        --missing;
      } else if (m.tag == net::Tag::Telemetry) {
        // A rank's final heartbeat can race its Stats frame; deliver it and
        // keep collecting.
        if (opts.on_telemetry && m.payload.size() == sizeof(DistTelemetry)) {
          DistTelemetry t;
          std::memcpy(&t, m.payload.data(), sizeof(t));
          opts.on_telemetry(t);
        }
      } else {
        HQR_CHECK(false, "unexpected tag during gather (from rank "
                             << m.src << ")");
      }
    };
    for (net::Message& m : pending) collect(std::move(m));
    pending.clear();
    Stopwatch gather_sw;
    while (missing > 0) {
      comm.pump(5, collect);
      HQR_CHECK(gather_sw.seconds() < shutdown_timeout,
                "rank 0: gather timed out with " << missing
                                                 << " frame(s) missing");
    }
    // Release everyone, then make sure the releases actually left.
    for (int q = 1; q < nranks; ++q)
      comm.post(q, net::Tag::Bye, 0, nullptr, 0);
    comm.set_eof_ok(true);  // peers close as soon as Bye lands
    Stopwatch bye_sw;
    while (!comm.flushed()) {
      comm.pump(2, [](net::Message&&) {});
      HQR_CHECK(bye_sw.seconds() < shutdown_timeout,
                "rank 0: shutdown release timed out");
    }
  } else {
    const DistRankStats mine =
        local_rank_stats(me, opts, rs, comm.counters(), max_recv_wait);
    comm.post(0, net::Tag::Stats, me, &mine, sizeof(mine));
    const std::vector<std::uint8_t> g = pack_gather(graph, plan, me, f);
    comm.post(0, net::Tag::Gather, me, g.data(), g.size());
    // Sibling ranks may disappear once rank 0 released them; only Bye from
    // rank 0 matters now.
    comm.set_eof_ok(true);
    bool bye = false;
    const auto await_bye = [&](net::Message&& m) {
      HQR_CHECK(m.tag == net::Tag::Bye,
                "unexpected tag while awaiting shutdown release");
      if (m.src == 0) bye = true;
    };
    for (net::Message& m : pending) await_bye(std::move(m));
    pending.clear();
    Stopwatch bye_sw;
    while (!bye) {
      comm.pump(5, await_bye);
      HQR_CHECK(bye_sw.seconds() < shutdown_timeout,
                "rank " << me << ": shutdown release never arrived");
    }
  }

  out.comm = comm.counters();
  out.seconds = wall.seconds();

  if (opts.metrics) {
    obs::MetricsRegistry& m = *opts.metrics;
    m.counter("net.data_messages_sent").add(out.comm.data_messages_sent);
    m.counter("net.data_bytes_sent").add(out.comm.data_bytes_sent);
    m.counter("net.data_messages_recv").add(out.comm.data_messages_recv);
    m.counter("net.data_bytes_recv").add(out.comm.data_bytes_recv);
    m.counter("net.control_messages_sent")
        .add(out.comm.control_messages_sent);
    m.counter("net.control_bytes_sent").add(out.comm.control_bytes_sent);
    for (int t = 1; t < net::kTagCount; ++t) {
      const std::string n = net::tag_name(static_cast<net::Tag>(t));
      const auto ti = static_cast<std::size_t>(t);
      m.counter("net.messages_sent." + n)
          .add(out.comm.messages_sent_by_tag[ti]);
      m.counter("net.messages_recv." + n)
          .add(out.comm.messages_recv_by_tag[ti]);
    }
    m.counter("dist.local_tasks").add(out.local_tasks);
    m.counter("dist.plan_messages").add(out.plan_messages);
    m.gauge("dist.plan_volume_bytes").add(out.plan_volume_bytes);
    m.gauge("dist.seconds").add(out.seconds);
    m.gauge("dist.clock_offset_seconds").set(csync.offset_seconds);
    m.gauge("dist.clock_rtt_seconds").set(csync.min_rtt_seconds);
    m.gauge("dist.max_recv_wait_seconds").set(max_recv_wait);
  }
  if (stats) *stats = std::move(out);
  return f;
}

}  // namespace hqr::distrun
