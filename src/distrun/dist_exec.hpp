// Distributed-memory tile QR runtime (the real counterpart of the cluster
// simulator, paper §IV-A/§V-A).
//
// Every rank holds a full replica of the input matrix, deterministically
// rebuilds the same kernel list, task graph and communication plan
// (dag/partition.hpp), and executes the owner-computes slice of the DAG on
// the shared-memory work-stealing executor. Remote dependencies flow as
// tagged tile messages driven by a dedicated communication thread; a
// completed task's output regions reach each consuming rank exactly once,
// either posted directly by the producer or relayed down a binomial
// broadcast tree of the consumers (DistOptions::broadcast), which makes
// the measured Data message count equal the simulator's prediction by
// construction under either kind. After the DAG drains, rank 0
// gathers every final tile region and T factor and returns a factorization
// bit-identical to a single-process run.
//
// Observability: before any Data traffic flows, ranks run the clock-sync
// handshake (net/clock_sync.hpp) and pin their trace recorder to a common
// origin, so per-rank trace CSVs merge into one causally consistent
// timeline; every inter-rank message is recorded as a FlowEvent half on each
// side; and an optional telemetry heartbeat streams per-rank progress to
// rank 0 while the DAG executes.
#pragma once

#include <array>
#include <functional>
#include <vector>

#include "dag/partition.hpp"
#include "dist/distribution.hpp"
#include "fault/events.hpp"
#include "fault/plan.hpp"
#include "net/clock_sync.hpp"
#include "net/comm.hpp"
#include "runtime/executor.hpp"

namespace hqr::distrun {

// Live progress heartbeat shipped to rank 0 over Tag::Telemetry while the
// DAG executes; a plain byte-copied struct (all ranks run the same binary).
// Rank 0 synthesizes its own entries locally so the consumer sees all ranks.
struct DistTelemetry {
  std::int32_t rank = 0;
  std::int32_t threads = 0;
  long long tasks_done = 0;   // local tasks completed so far
  long long tasks_total = 0;  // plan.tasks_on(rank)
  // Send-queue backpressure at sample time (frames/bytes not yet written).
  long long send_queue_frames = 0;
  long long send_queue_bytes = 0;
  long long data_messages_sent = 0;
  long long data_messages_recv = 0;
  long long data_bytes_sent = 0;
  long long data_bytes_recv = 0;
  double seconds = 0.0;  // since this rank started executing
};

// Fault injection + recovery wiring for one rank (DistOptions::fault).
// With `recovery` set the rank keeps a SentTileLog of every Data frame it
// ships, survives peer death (typed events instead of fatal errors), and
// replays the log when the launcher re-wires a link — the survivor half of
// the owner-computes recovery protocol (DESIGN.md §14). The fields mirror
// fault::FtRankContext; dist_quickstart-style callers copy them across.
struct DistFaultConfig {
  // Injections this rank arms (fault::FaultPlan::actions_for(rank)); each
  // fires at its 1-based local-completion trigger.
  std::vector<fault::FaultAction> faults;
  // Survive peer death and replay on re-wire. Off (default) keeps the
  // historical behavior: any peer failure is fatal.
  bool recovery = false;
  // This process replaces a dead rank: skip the clock-sync handshake (the
  // survivors are mid-run and will not answer) and re-execute the whole
  // partition. Survivors deduplicate the re-posted outputs.
  bool is_replacement = false;
  int incarnation = 0;  // 0 = original process
  // The launcher control channel (fault/ft_launcher.hpp); -1 = detection
  // without re-wiring.
  int control_fd = -1;
  // SentTileLog byte cap; past it the log stops recording and a later
  // replay attempt fails typed instead of replaying a partial history.
  long long sent_log_max_bytes = 256ll << 20;
  // Invoked once per detected failure, on the thread that detected it.
  std::function<void(const fault::RankFailure&)> on_failure;
};

struct DistOptions {
  int threads = 1;                  // workers per rank
  bool priority_scheduling = true;  // critical-path depth of the full DAG
  bool data_reuse = true;
  int ib = 0;
  SchedulerKind scheduler = SchedulerKind::Steal;
  // How a completed task's output reaches its consuming ranks. Binomial
  // (default) forwards through intermediate consumers so no producer's
  // send queue serializes a wide broadcast; Eager posts every frame from
  // the producer. Total Data messages are identical (the plan's invariant);
  // per-rank sent counts redistribute. All ranks must agree.
  BroadcastKind broadcast = BroadcastKind::Binomial;
  // Abort when the rank neither executes a task nor receives a message for
  // this long (a dead peer must not hang the run, or CI); <= 0 disables.
  double progress_timeout_seconds = 60.0;
  // Ping/pong rounds of the startup clock-sync handshake; 0 skips it (all
  // offsets read zero, which is exact for forked single-host ranks anyway).
  int clock_sync_rounds = 8;
  // Ship a DistTelemetry heartbeat to rank 0 every this many seconds while
  // executing; <= 0 disables. Delivered through on_telemetry on rank 0.
  double telemetry_interval_seconds = 0.0;
  // Rank 0 only: invoked once per received (or locally synthesized)
  // heartbeat, on the communication thread — keep it cheap and thread-safe.
  std::function<void(const DistTelemetry&)> on_telemetry;
  // Observability sinks for this rank's executor (worker lanes).
  obs::TraceRecorder* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  // Fault injection and recovery; inert by default.
  DistFaultConfig fault;
};

// Per-rank summary shipped to rank 0 over Tag::Stats; a plain byte-copied
// struct (all ranks run the same binary).
struct DistRankStats {
  std::int32_t rank = 0;
  std::int32_t threads = 0;
  long long tasks = 0;
  long long data_messages_sent = 0;
  long long data_bytes_sent = 0;
  long long data_messages_recv = 0;
  long long data_bytes_recv = 0;
  double exec_seconds = 0.0;
  // Summed over workers; populated only when the run was observed (a trace
  // or metrics sink attached), like RunStats.
  double busy_seconds = 0.0;
  double idle_seconds = 0.0;
  double terminal_wait_seconds = 0.0;
  // Longest gap between consecutive Data arrivals on the communication
  // thread (from loop start to the last arrival); 0 when the rank received
  // no Data. A large value pinpoints the rank that starved for remote input.
  double max_recv_wait_seconds = 0.0;
  // Wire messages by tag (net::tag_index), captured when the rank shipped
  // its stats; Data slots equal plan.sent_by/received_by for the rank.
  std::array<long long, net::kTagCount> messages_sent_by_tag{};
  std::array<long long, net::kTagCount> messages_recv_by_tag{};
  // Fault tolerance (all zero on fault-free runs).
  std::int32_t incarnation = 0;       // 0 = original process of this rank
  std::int32_t faults_injected = 0;   // chaos actions this rank armed+fired
  long long peers_down = 0;           // peer-death events this rank observed
  long long peers_replaced = 0;       // links the launcher re-wired for us
  long long frames_dropped = 0;       // posts swallowed while a peer was down
  long long frames_replayed = 0;      // SentTileLog frames re-shipped
  long long bytes_replayed = 0;
};

struct DistStats {
  double seconds = 0.0;       // this rank's wall time, run + gather
  long long local_tasks = 0;  // tasks executed on this rank
  // The communication plan's prediction — equals the simulator's
  // SimResult::messages / volume_gbytes for the same (graph, dist).
  long long plan_messages = 0;
  double plan_volume_bytes = 0.0;
  net::ClockSync clock;    // this rank's startup clock-sync estimate
  net::CommCounters comm;  // measured wire traffic of this rank
  RunStats run;            // this rank's executor stats
  std::vector<DistRankStats> ranks;  // rank 0 only: one entry per rank
};

// Factors `a` across comm.size() ranks. Every rank must call this with
// identical (a, b, list, dist) and dist.nodes() == comm.size(); collective
// over the communicator. Returns the local replica of the factors; on rank
// 0 it is complete (gathered) and bit-identical to
// qr_factorize_sequential(a, b, list, opts.ib). Throws hqr::Error on peer
// failure or progress timeout.
QRFactors dist_qr_factorize(net::Comm& comm, const Matrix& a, int b,
                            const EliminationList& list,
                            const Distribution& dist, const DistOptions& opts,
                            DistStats* stats = nullptr);

}  // namespace hqr::distrun
