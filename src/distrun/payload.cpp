#include "distrun/payload.hpp"

#include "common/check.hpp"
#include "net/message.hpp"

namespace hqr::distrun {
namespace {

// Column-major full-tile copy (tiles are contiguous, but stay ld-correct).
void pack_full(ConstMatrixView v, net::PayloadWriter& w) {
  if (v.ld == v.rows) {
    w.f64(v.data, static_cast<std::size_t>(v.rows) * v.cols);
    return;
  }
  for (int j = 0; j < v.cols; ++j)
    w.f64(v.data + static_cast<std::size_t>(j) * v.ld, v.rows);
}

void apply_full(net::PayloadReader& r, MatrixView v) {
  if (v.ld == v.rows) {
    r.f64(v.data, static_cast<std::size_t>(v.rows) * v.cols);
    return;
  }
  for (int j = 0; j < v.cols; ++j)
    r.f64(v.data + static_cast<std::size_t>(j) * v.ld, v.rows);
}

// Upper triangle including the diagonal, column by column.
void pack_upper(ConstMatrixView v, net::PayloadWriter& w) {
  for (int j = 0; j < v.cols; ++j)
    w.f64(v.data + static_cast<std::size_t>(j) * v.ld, j + 1);
}

void apply_upper(net::PayloadReader& r, MatrixView v) {
  for (int j = 0; j < v.cols; ++j)
    r.f64(v.data + static_cast<std::size_t>(j) * v.ld, j + 1);
}

// Strict lower triangle (the Householder-vector half), column by column.
void pack_strict_lower(ConstMatrixView v, net::PayloadWriter& w) {
  for (int j = 0; j + 1 < v.cols; ++j)
    w.f64(v.data + static_cast<std::size_t>(j) * v.ld + j + 1,
          v.rows - j - 1);
}

void apply_strict_lower(net::PayloadReader& r, MatrixView v) {
  for (int j = 0; j + 1 < v.cols; ++j)
    r.f64(v.data + static_cast<std::size_t>(j) * v.ld + j + 1,
          v.rows - j - 1);
}

// A full-tile payload applied per region: column j splits at the diagonal
// into upper rows [0, j] and strict-lower rows (j, rows). The two halves
// can be gated differently — TTQRT rewrites only U of a tile GEQRT wrote
// whole, so a stale GEQRT frame may still own L while having lost U.
void apply_full_gated(net::PayloadReader& r, MatrixView v, bool keep_upper,
                      bool keep_lower) {
  if (keep_upper && keep_lower) {
    apply_full(r, v);
    return;
  }
  for (int j = 0; j < v.cols; ++j) {
    double* col = v.data + static_cast<std::size_t>(j) * v.ld;
    const std::size_t nu =
        static_cast<std::size_t>(j + 1 < v.rows ? j + 1 : v.rows);
    if (keep_upper)
      r.f64(col, nu);
    else
      r.skip(nu * sizeof(double));
    const std::size_t nl = static_cast<std::size_t>(v.rows) - nu;
    if (keep_lower)
      r.f64(col + nu, nl);
    else
      r.skip(nl * sizeof(double));
  }
}

void apply_upper_gated(net::PayloadReader& r, MatrixView v, bool keep) {
  if (keep) {
    apply_upper(r, v);
    return;
  }
  for (int j = 0; j < v.cols; ++j)
    r.skip(static_cast<std::size_t>(j + 1) * sizeof(double));
}

// The write set of a kernel over tile regions, same region indexing as the
// task graph's dependency inference: 2*(j*mt + i) for the upper half of
// tile (i, j) (incl. diagonal), +1 for the strict lower half. Must stay in
// sync with for_each_access in dag/task_graph.cpp — a region written there
// but not shipped here would desynchronize the replicas.
template <typename Fn>
void for_each_write(const KernelOp& op, int mt, Fn&& fn) {
  auto upper = [mt](int i, int j) {
    return 2 * (static_cast<std::int64_t>(j) * mt + i);
  };
  auto lower = [mt](int i, int j) {
    return 2 * (static_cast<std::int64_t>(j) * mt + i) + 1;
  };
  switch (op.type) {
    case KernelType::GEQRT:
      fn(upper(op.row, op.k));
      fn(lower(op.row, op.k));
      break;
    case KernelType::UNMQR:
      fn(upper(op.row, op.j));
      fn(lower(op.row, op.j));
      break;
    case KernelType::TSQRT:
      fn(upper(op.piv, op.k));
      fn(upper(op.row, op.k));
      fn(lower(op.row, op.k));
      break;
    case KernelType::TTQRT:
      fn(upper(op.piv, op.k));
      fn(upper(op.row, op.k));
      break;
    case KernelType::TSMQR:
    case KernelType::TTMQR:
      fn(upper(op.piv, op.j));
      fn(lower(op.piv, op.j));
      fn(upper(op.row, op.j));
      fn(lower(op.row, op.j));
      break;
  }
}

}  // namespace

std::size_t task_output_bytes(const KernelOp& op, int b) {
  const std::size_t full = static_cast<std::size_t>(b) * b;
  const std::size_t upper = static_cast<std::size_t>(b) * (b + 1) / 2;
  std::size_t doubles = 0;
  switch (op.type) {
    case KernelType::GEQRT:
      doubles = full + full;  // A(row,k) + T
      break;
    case KernelType::UNMQR:
      doubles = full;  // A(row,j)
      break;
    case KernelType::TSQRT:
      doubles = upper + full + full;  // R1, V2 tile, T
      break;
    case KernelType::TTQRT:
      doubles = upper + upper + full;  // R1, triangular V2, T
      break;
    case KernelType::TSMQR:
    case KernelType::TTMQR:
      doubles = full + full;  // A(piv,j) + A(row,j)
      break;
  }
  return doubles * sizeof(double);
}

void pack_task_output(const KernelOp& op, const QRFactors& f,
                      std::vector<std::uint8_t>& out) {
  net::PayloadWriter w(out);
  const TiledMatrix& a = f.a();
  switch (op.type) {
    case KernelType::GEQRT:
      pack_full(a.tile(op.row, op.k), w);
      pack_full(f.t_geqrt(op.row, op.k), w);
      break;
    case KernelType::UNMQR:
      pack_full(a.tile(op.row, op.j), w);
      break;
    case KernelType::TSQRT:
      pack_upper(a.tile(op.piv, op.k), w);
      pack_full(a.tile(op.row, op.k), w);
      pack_full(f.t_pencil(op.row, op.k), w);
      break;
    case KernelType::TTQRT:
      pack_upper(a.tile(op.piv, op.k), w);
      pack_upper(a.tile(op.row, op.k), w);
      pack_full(f.t_pencil(op.row, op.k), w);
      break;
    case KernelType::TSMQR:
    case KernelType::TTMQR:
      pack_full(a.tile(op.piv, op.j), w);
      pack_full(a.tile(op.row, op.j), w);
      break;
  }
}

void RegionGates::bump_writes(const KernelOp& op, std::int32_t task) {
  for_each_write(op, mt_, [&](std::int64_t reg) { advance(reg, task); });
}

void apply_task_output(const KernelOp& op, QRFactors& f,
                       const std::vector<std::uint8_t>& payload,
                       RegionGates& gates, std::int32_t task) {
  HQR_CHECK(payload.size() == task_output_bytes(op, f.b()),
            "payload size mismatch for " << kernel_name(op.type) << ": got "
                                         << payload.size() << " bytes");
  net::PayloadReader r(payload);
  TiledMatrix& a = f.a();
  const int mt = f.mt();
  const auto upper = [&](int i, int j) {
    return gates.advance(2 * (static_cast<std::int64_t>(j) * mt + i), task);
  };
  const auto lower = [&](int i, int j) {
    return gates.advance(2 * (static_cast<std::int64_t>(j) * mt + i) + 1,
                         task);
  };
  switch (op.type) {
    case KernelType::GEQRT: {
      const bool ku = upper(op.row, op.k);
      const bool kl = lower(op.row, op.k);
      apply_full_gated(r, a.tile(op.row, op.k), ku, kl);
      apply_full(r, f.t_geqrt(op.row, op.k));
      break;
    }
    case KernelType::UNMQR: {
      const bool ku = upper(op.row, op.j);
      const bool kl = lower(op.row, op.j);
      apply_full_gated(r, a.tile(op.row, op.j), ku, kl);
      break;
    }
    case KernelType::TSQRT: {
      apply_upper_gated(r, a.tile(op.piv, op.k), upper(op.piv, op.k));
      const bool ku = upper(op.row, op.k);
      const bool kl = lower(op.row, op.k);
      apply_full_gated(r, a.tile(op.row, op.k), ku, kl);
      apply_full(r, f.t_pencil(op.row, op.k));
      break;
    }
    case KernelType::TTQRT: {
      apply_upper_gated(r, a.tile(op.piv, op.k), upper(op.piv, op.k));
      apply_upper_gated(r, a.tile(op.row, op.k), upper(op.row, op.k));
      apply_full(r, f.t_pencil(op.row, op.k));
      break;
    }
    case KernelType::TSMQR:
    case KernelType::TTMQR: {
      const bool ku1 = upper(op.piv, op.j);
      const bool kl1 = lower(op.piv, op.j);
      apply_full_gated(r, a.tile(op.piv, op.j), ku1, kl1);
      const bool ku2 = upper(op.row, op.j);
      const bool kl2 = lower(op.row, op.j);
      apply_full_gated(r, a.tile(op.row, op.j), ku2, kl2);
      break;
    }
  }
  HQR_CHECK(r.remaining() == 0, "trailing bytes in payload");
}

namespace {

// last_writer[region] = highest-index task writing the region, -1 if the
// region keeps its input value. Deterministic, so every rank agrees on who
// contributes what to the gather.
std::vector<std::int32_t> last_writers(const TaskGraph& graph, int mt,
                                       int nt) {
  std::vector<std::int32_t> lw(2 * static_cast<std::size_t>(mt) * nt, -1);
  for (std::int32_t t = 0; t < graph.size(); ++t)
    for_each_write(graph.op(t), mt,
                   [&](std::int64_t reg) { lw[static_cast<std::size_t>(reg)] = t; });
  return lw;
}

// Visits rank 0's gather schedule for `rank`: every final A region and
// every T factor the rank produced, in one canonical order.
template <typename RegionFn, typename TFn>
void for_each_contribution(const TaskGraph& graph, const CommPlan& plan,
                           int rank, int mt, int nt, RegionFn&& on_region,
                           TFn&& on_t) {
  const std::vector<std::int32_t> lw = last_writers(graph, mt, nt);
  for (std::size_t reg = 0; reg < lw.size(); ++reg) {
    if (lw[reg] < 0 || plan.node_of(lw[reg]) != rank) continue;
    const std::int64_t tile = static_cast<std::int64_t>(reg) / 2;
    on_region(static_cast<int>(tile % mt), static_cast<int>(tile / mt),
              /*upper=*/reg % 2 == 0);
  }
  for (std::int32_t t = 0; t < graph.size(); ++t) {
    if (plan.node_of(t) != rank) continue;
    const KernelOp& op = graph.op(t);
    if (op.type == KernelType::GEQRT || op.type == KernelType::TSQRT ||
        op.type == KernelType::TTQRT)
      on_t(op);
  }
}

}  // namespace

std::vector<std::uint8_t> pack_gather(const TaskGraph& graph,
                                      const CommPlan& plan, int rank,
                                      const QRFactors& f) {
  std::vector<std::uint8_t> out;
  net::PayloadWriter w(out);
  const TiledMatrix& a = f.a();
  for_each_contribution(
      graph, plan, rank, f.mt(), f.nt(),
      [&](int i, int j, bool upper) {
        if (upper)
          pack_upper(a.tile(i, j), w);
        else
          pack_strict_lower(a.tile(i, j), w);
      },
      [&](const KernelOp& op) {
        if (op.type == KernelType::GEQRT)
          pack_full(f.t_geqrt(op.row, op.k), w);
        else
          pack_full(f.t_pencil(op.row, op.k), w);
      });
  return out;
}

void apply_gather(const TaskGraph& graph, const CommPlan& plan, int rank,
                  const std::vector<std::uint8_t>& payload, QRFactors& f) {
  net::PayloadReader r(payload);
  TiledMatrix& a = f.a();
  for_each_contribution(
      graph, plan, rank, f.mt(), f.nt(),
      [&](int i, int j, bool upper) {
        if (upper)
          apply_upper(r, a.tile(i, j));
        else
          apply_strict_lower(r, a.tile(i, j));
      },
      [&](const KernelOp& op) {
        if (op.type == KernelType::GEQRT)
          apply_full(r, f.t_geqrt(op.row, op.k));
        else
          apply_full(r, f.t_pencil(op.row, op.k));
      });
  HQR_CHECK(r.remaining() == 0,
            "gather payload from rank " << rank << " has trailing bytes");
}

}  // namespace hqr::distrun
