// Wire payloads of the distributed runtime: which bytes travel when a task
// completes, and how the end-of-run gather reassembles the factorization on
// rank 0.
//
// A completed task ships exactly the tile regions it wrote, plus the
// T factor it produced (factor kernels only) — never whole tiles it only
// partially owns. Region accuracy matters for correctness, not just
// volume: TSQRT writes only the upper triangle of its pivot tile, whose
// strict lower half may be concurrently read on the receiving rank by an
// already-released local task; shipping the full tile would race on bytes
// the producer never touched.
//
// Payload layout is derived on both ends from the producer's KernelOp (the
// graphs are rebuilt deterministically on every rank), so frames carry no
// region descriptors:
//
//   GEQRT (row,k)      : full A(row,k), T_geqrt(row,k)
//   UNMQR (row,k -> j) : full A(row,j)
//   TSQRT (piv,row,k)  : upper A(piv,k), full A(row,k), T_pencil(row,k)
//   TTQRT (piv,row,k)  : upper A(piv,k), upper A(row,k), T_pencil(row,k)
//   TSMQR (piv,row,j)  : full A(piv,j), full A(row,j)
//   TTMQR (piv,row,j)  : full A(piv,j), full A(row,j)
//
// full = b*b doubles (column-major), upper = b*(b+1)/2 doubles (columns of
// the triangle incl. diagonal), T = b*b doubles. The T factor piggybacks on
// the A-region message because every consumer of a T has a direct RAW edge
// from its producer, so it is guaranteed to be on board the frame that
// releases the consumer.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/factorization.hpp"
#include "dag/partition.hpp"
#include "dag/task_graph.hpp"

namespace hqr::distrun {

// Monotone per-region writer versions of this rank's tile replica.
//
// Data frames from different producers share no FIFO: two ranks' streams
// can deliver same-region writers inverted, and a SentTileLog replay
// re-ships history arbitrarily late — seconds after newer writers of the
// same regions (remote frames or local kernels) already advanced the
// replica. The task graph totally orders every region's writers by task
// index, so an apply may only move a region FORWARD: a frame whose task is
// at or behind a region's gate keeps the newer bytes and skips that
// segment. Workers stamp their task's write regions at completion (before
// successors release, so anything newer is provably not yet running); the
// comm thread consults and advances gates on every Data apply.
class RegionGates {
 public:
  RegionGates(int mt, int nt)
      : mt_(mt), v_(2 * static_cast<std::size_t>(mt) * nt) {
    for (auto& g : v_) g.store(-1, std::memory_order_relaxed);
  }

  // True if `task` is newer than everything that wrote `region` so far;
  // advances the gate when it is.
  bool advance(std::int64_t region, std::int32_t task) {
    auto& g = v_[static_cast<std::size_t>(region)];
    std::int32_t cur = g.load(std::memory_order_acquire);
    while (cur < task)
      if (g.compare_exchange_weak(cur, task, std::memory_order_acq_rel))
        return true;
    return false;
  }

  // Worker-side: stamp every region `task`'s kernel writes.
  void bump_writes(const KernelOp& op, std::int32_t task);

 private:
  int mt_;
  std::vector<std::atomic<std::int32_t>> v_;
};

// Byte size of the payload `op` produces (for frame validation).
std::size_t task_output_bytes(const KernelOp& op, int b);

// Appends the regions written by `op` (current contents of `f`) to `out`
// in the canonical order above.
void pack_task_output(const KernelOp& op, const QRFactors& f,
                      std::vector<std::uint8_t>& out);

// Applies a received payload of `op` onto the local replica, region by
// region through `gates` (`task` is `op`'s graph index). Safe to call while
// workers run: every local task touching a region this frame still wins is
// either a graph ancestor of `op` (finished everywhere, or the frame could
// not exist) or a successor (not yet released); regions the gates reject
// are never written, so a late frame cannot race the newer local kernel
// that beat it. T factors apply unconditionally — each has exactly one
// writer ever (a row is factored once per column), so a frame that passed
// the seen-producer dedup is that writer's only delivery.
void apply_task_output(const KernelOp& op, QRFactors& f,
                       const std::vector<std::uint8_t>& payload,
                       RegionGates& gates, std::int32_t task);

// ---- End-of-run gather ---------------------------------------------------
//
// Both sides enumerate, in the same deterministic order, (a) every tile
// region whose last writer in the kernel list ran on `rank`, and (b) every
// T factor produced on `rank`. Rank r packs that set; rank 0 applies it.
// Regions never written stay at their initial value, which every rank's
// replica already holds.

// Payload of everything `rank` must contribute to the final factorization.
std::vector<std::uint8_t> pack_gather(const TaskGraph& graph,
                                      const CommPlan& plan, int rank,
                                      const QRFactors& f);

// Applies rank `rank`'s gather payload onto rank 0's replica.
void apply_gather(const TaskGraph& graph, const CommPlan& plan, int rank,
                  const std::vector<std::uint8_t>& payload, QRFactors& f);

}  // namespace hqr::distrun
