// Typed failure events: what the detection layers report instead of dying.
//
// Three detectors feed these events. The Comm pump notices peer streams
// closing mid-frame (PeerClosed, detected_by = the surviving rank); the
// distributed runtime's progress watchdog notices a wedged run
// (WatchdogTimeout); and the fault-tolerant launcher observes child exits
// directly (KilledBySignal / NonzeroExit / LaunchTimeout, detected_by = -1).
#pragma once

#include <string>

namespace hqr::fault {

enum class FailureReason {
  PeerClosed,       // a rank's stream hit EOF or a hard socket error
  WatchdogTimeout,  // progress watchdog expired with tasks outstanding
  KilledBySignal,   // the launcher reaped a signal death
  NonzeroExit,      // the launcher reaped a nonzero _exit
  LaunchTimeout,    // the whole-run wall-clock budget expired
};

const char* failure_reason_name(FailureReason r);

struct RankFailure {
  int rank = -1;         // the rank that failed
  int detected_by = -1;  // observing rank; -1 = the launcher itself
  FailureReason reason = FailureReason::PeerClosed;
  // Reason-specific detail: the killing signal (KilledBySignal), the exit
  // code (NonzeroExit), or 0.
  int detail = 0;
  double seconds = 0.0;  // monotonic instant of detection

  std::string describe() const;
};

}  // namespace hqr::fault
