#include "fault/ft_launcher.hpp"

#include <chrono>
#include <cstdio>
#include <exception>
#include <thread>
#include <utility>

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif

#include "common/check.hpp"
#include "common/stopwatch.hpp"
#include "net/control.hpp"

namespace hqr::fault {

namespace {

using net::Comm;
using net::ControlMsg;
using net::ControlOp;
using net::Fd;

// Shared body of the original and replacement children: run the rank
// function behind the same guard as net::run_ranks and _exit.
[[noreturn]] void run_child(
    Comm& comm, const FtRankContext& ctx,
    const std::function<int(Comm&, const FtRankContext&)>& rank_main) {
  int code = 1;
  try {
    code = rank_main(comm, ctx);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[rank %d%s] fatal: %s\n", ctx.rank,
                 ctx.is_replacement ? "*" : "", e.what());
    std::fflush(stderr);
    code = 1;
  } catch (...) {
    std::fprintf(stderr, "[rank %d] fatal: unknown exception\n", ctx.rank);
    std::fflush(stderr);
    code = 1;
  }
  std::fflush(nullptr);
  ::_exit(code);
}

[[noreturn]] void original_child(
    int rank, net::Transport& transport, std::vector<Fd>& ctrl_parent,
    std::vector<Fd>& ctrl_child, const FtLaunchOptions& opts,
    const std::function<int(Comm&, const FtRankContext&)>& rank_main) {
#ifdef __linux__
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
  for (Fd& f : ctrl_parent) f.reset();
  for (int q = 0; q < static_cast<int>(ctrl_child.size()); ++q)
    if (q != rank) ctrl_child[static_cast<std::size_t>(q)].reset();
  FtRankContext ctx;
  ctx.rank = rank;
  ctx.control_fd = ctrl_child[static_cast<std::size_t>(rank)].get();
  ctx.faults = opts.plan.actions_for(rank);
  try {
    Comm comm(rank, transport.connect_rank(rank));
    run_child(comm, ctx, rank_main);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[rank %d] fatal: %s\n", rank, e.what());
    std::fflush(nullptr);
    ::_exit(1);
  }
  ::_exit(1);  // unreachable
}

[[noreturn]] void replacement_child(
    int rank, int incarnation, std::vector<Fd>& mesh,
    std::vector<Fd>& ctrl_parent, Fd& control,
    const std::function<int(Comm&, const FtRankContext&)>& rank_main) {
#ifdef __linux__
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
  for (Fd& f : ctrl_parent) f.reset();
  FtRankContext ctx;
  ctx.rank = rank;
  ctx.is_replacement = true;
  ctx.incarnation = incarnation;
  ctx.control_fd = control.get();
  // No ctx.faults: an injection fires once per plan, not per incarnation.
  try {
    Comm comm(rank, std::move(mesh));
    run_child(comm, ctx, rank_main);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[rank %d*] fatal: %s\n", rank, e.what());
    std::fflush(nullptr);
    ::_exit(1);
  }
  ::_exit(1);  // unreachable
}

struct Death {
  int rank;
  RankFailure failure;
  int code;  // what first_failure would be
};

}  // namespace

FtLaunchReport run_ranks_ft(
    int nranks,
    const std::function<int(Comm&, const FtRankContext&)>& rank_main,
    const FtLaunchOptions& opts) {
  HQR_CHECK(nranks >= 1, "need at least one rank, got " << nranks);
  for (const FaultAction& a : opts.plan.actions) {
    HQR_CHECK(a.rank >= 0 && a.rank < nranks,
              "fault plan targets rank " << a.rank << " of " << nranks);
    HQR_CHECK(a.kind == FaultKind::KillRank ||
                  (a.peer >= 0 && a.peer < nranks && a.peer != a.rank),
              "fault plan link peer " << a.peer << " invalid");
  }

  std::unique_ptr<net::Transport> transport =
      net::make_transport(opts.launch.transport);
  transport->prepare(nranks);

  // One control socketpair per rank, created before any fork so original
  // children inherit them (mirrors the unix transport's mesh dance).
  const auto n = static_cast<std::size_t>(nranks);
  std::vector<Fd> ctrl(n);        // launcher side
  std::vector<Fd> ctrl_child(n);  // rank side
  for (std::size_t r = 0; r < n; ++r) {
    auto pair = net::stream_pair();
    ctrl[r] = std::move(pair.first);
    ctrl_child[r] = std::move(pair.second);
  }

  std::fflush(nullptr);
  std::vector<pid_t> pids(n, -1);
  std::vector<char> done(n, 0);
  std::vector<int> incarnation(n, 0);
  // sent_replace[s][q]: ReplacePeer messages sent to rank s about its link
  // to q — the launcher's mirror of s's Comm epoch for that link, used to
  // drop stale/duplicate LinkDown reports.
  std::vector<std::vector<int>> sent_replace(n, std::vector<int>(n, 0));

  for (int r = 0; r < nranks; ++r) {
    const pid_t pid = ::fork();
    HQR_CHECK(pid >= 0, "fork failed for rank " << r);
    if (pid == 0)
      original_child(r, *transport, ctrl, ctrl_child, opts, rank_main);
    pids[static_cast<std::size_t>(r)] = pid;
  }
  transport->parent_release();
  for (Fd& f : ctrl_child) f.reset();

  const double t0 = monotonic_seconds();
  const bool has_deadline = opts.launch.timeout_seconds > 0;
  const double deadline = t0 + opts.launch.timeout_seconds;

  FtLaunchReport report;
  report.launch.ranks.resize(n);
  int alive = nranks;
  int recoveries = 0;
  bool fatal = false;

  const auto recover = [&](int r) {
    ++recoveries;
    ++report.replacements_forked;
    auto new_ctrl = net::stream_pair();
    std::vector<Fd> mesh(n);
    for (int s = 0; s < nranks; ++s) {
      if (s == r) continue;
      auto pair = net::stream_pair();
      mesh[static_cast<std::size_t>(s)] = std::move(pair.first);
      if (pids[static_cast<std::size_t>(s)] > 0 &&
          !done[static_cast<std::size_t>(s)]) {
        // The liveness check above is inherently racy (the supervision
        // loop polls every 5 ms): rank s can die or finish between it and
        // this sendmsg, which then reports EPIPE — or ECONNRESET if s went
        // down with an unread control message in its queue. Either way the
        // process is gone, the next reap pass classifies the death, and
        // the replacement sees EOF on this link exactly as if s had been
        // reaped before recover() ran.
        try {
          net::send_control(ctrl[static_cast<std::size_t>(s)].get(),
                            ControlOp::ReplacePeer, r, 0, pair.second.get());
          ++sent_replace[static_cast<std::size_t>(s)]
                        [static_cast<std::size_t>(r)];
        } catch (const std::exception&) {
        }
      }
      // A dead/done survivor's end just closes: the replacement sees EOF on
      // that link, marks it down, and that rank's own recovery (if any)
      // re-wires it.
    }
    // The replacement's Comm starts with fresh epochs.
    for (std::size_t q = 0; q < n; ++q)
      sent_replace[static_cast<std::size_t>(r)][q] = 0;
    ctrl[static_cast<std::size_t>(r)] = std::move(new_ctrl.first);
    ++incarnation[static_cast<std::size_t>(r)];
    std::fflush(nullptr);
    const pid_t pid = ::fork();
    HQR_CHECK(pid >= 0, "fork failed for replacement rank " << r);
    if (pid == 0)
      replacement_child(r, incarnation[static_cast<std::size_t>(r)], mesh,
                        ctrl, new_ctrl.second, rank_main);
    pids[static_cast<std::size_t>(r)] = pid;
    ++alive;
    // Parent copies of `mesh` and new_ctrl.second close on scope exit.
  };

  std::vector<Death> deaths;
  const auto reap_one = [&](int r, int status) {
    pids[static_cast<std::size_t>(r)] = -1;
    --alive;
    net::RankExit& e = report.launch.ranks[static_cast<std::size_t>(r)];
    e = net::RankExit{};
    net::detail::record_exit(e, status);
    if (e.ok()) {
      done[static_cast<std::size_t>(r)] = 1;
      return;
    }
    Death d;
    d.rank = r;
    d.failure.rank = r;
    d.failure.seconds = monotonic_seconds() - t0;
    if (e.signaled) {
      d.failure.reason = FailureReason::KilledBySignal;
      d.failure.detail = e.term_signal;
      d.code = 1;
    } else {
      d.failure.reason = FailureReason::NonzeroExit;
      d.failure.detail = e.exit_code;
      d.code = e.exit_code;
    }
    deaths.push_back(d);
  };

  while (alive > 0) {
    // Reap pass.
    bool reaped = false;
    for (int r = 0; r < nranks; ++r) {
      pid_t& pid = pids[static_cast<std::size_t>(r)];
      if (pid <= 0) continue;
      int status = 0;
      const pid_t got = ::waitpid(pid, &status, WNOHANG);
      if (got == 0) continue;
      HQR_CHECK(got == pid, "waitpid failed for rank " << r);
      reap_one(r, status);
      reaped = true;
    }
    for (const Death& d : deaths) {
      report.failures.push_back(d.failure);
      std::fprintf(stderr, "[ft-launcher] %s\n", d.failure.describe().c_str());
      // Only crash deaths (signals) are recoverable. A nonzero _exit means
      // the rank itself concluded the run failed — a check tripped, its
      // watchdog fired, or a peer's Abort reached it — and a replacement
      // would re-execute straight into the same deterministic failure (or
      // into a mesh that is already tearing down).
      if (opts.recovery && d.rank != 0 &&
          d.failure.reason == FailureReason::KilledBySignal &&
          recoveries < opts.max_recoveries) {
        recover(d.rank);
      } else {
        if (report.launch.first_failure == 0) {
          report.launch.first_failure = d.code;
          report.launch.failed_rank = d.rank;
        }
        fatal = true;
      }
    }
    deaths.clear();
    if (fatal || alive == 0) break;
    if (has_deadline && monotonic_seconds() >= deadline) {
      std::fprintf(stderr,
                   "[ft-launcher] timeout after %.1fs, killing %d rank(s)\n",
                   opts.launch.timeout_seconds, alive);
      report.launch.timed_out = true;
      for (int r = 0; r < nranks; ++r) {
        if (pids[static_cast<std::size_t>(r)] <= 0) continue;
        RankFailure f;
        f.rank = r;
        f.reason = FailureReason::LaunchTimeout;
        f.seconds = monotonic_seconds() - t0;
        report.failures.push_back(f);
      }
      break;
    }

    // Control pass: poll the live ranks' channels for LinkDown reports
    // (5 ms doubles as the supervision loop's sleep).
    std::vector<pollfd> fds;
    std::vector<int> who;
    for (int r = 0; r < nranks; ++r) {
      if (pids[static_cast<std::size_t>(r)] <= 0) continue;
      pollfd p{};
      p.fd = ctrl[static_cast<std::size_t>(r)].get();
      p.events = POLLIN;
      fds.push_back(p);
      who.push_back(r);
    }
    const int rc = ::poll(fds.data(), fds.size(), reaped ? 0 : 5);
    if (rc <= 0) continue;
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (!(fds[i].revents & (POLLIN | POLLHUP))) continue;
      const int s = who[i];
      if (pids[static_cast<std::size_t>(s)] <= 0) continue;  // reaped above
      if (!(fds[i].revents & POLLIN)) continue;  // bare HUP: death pass's job
      ControlMsg m;
      Fd passed;
      bool got_msg = false;
      try {
        got_msg = net::recv_control(ctrl[static_cast<std::size_t>(s)].get(),
                                    &m, &passed, monotonic_seconds() + 5.0);
      } catch (const std::exception&) {
        // ECONNRESET: rank s died with an unread control message in its
        // queue (e.g. a ReplacePeer it never consumed before exiting).
        // Same meaning as the clean EOF below — the process is gone and
        // waitpid is the authority on what happened to it.
      }
      if (!got_msg)
        continue;  // EOF: the next reap pass classifies the death
      if (static_cast<ControlOp>(m.op) != ControlOp::LinkDown) continue;
      const int q = m.peer;
      HQR_CHECK(q >= 0 && q < nranks && q != s,
                "malformed LinkDown from rank " << s);
      {
        RankFailure f;
        f.rank = q;
        f.detected_by = s;
        f.reason = FailureReason::PeerClosed;
        f.seconds = monotonic_seconds() - t0;
        report.failures.push_back(f);
      }
      // Stale: a ReplacePeer for this link is already in flight (the other
      // endpoint reported first, or a rank recovery re-wired it).
      if (m.epoch !=
          sent_replace[static_cast<std::size_t>(s)][static_cast<std::size_t>(
              q)])
        continue;
      // The peer process may be dead but not yet reaped — then this is a
      // rank failure, not a link failure; leave it to the reap pass.
      pid_t& qpid = pids[static_cast<std::size_t>(q)];
      if (qpid <= 0) continue;
      int status = 0;
      const pid_t got = ::waitpid(qpid, &status, WNOHANG);
      if (got == qpid) {
        reap_one(q, status);
        continue;  // deaths handled at the top of the next iteration
      }
      // Both endpoints live: chaos DropLink. Re-wire just this link.
      // "Live" is only as fresh as the waitpid above — either endpoint
      // can be mid-exit (mesh sockets already closed, process not yet
      // reaped), in which case the sendmsg reports EPIPE, or ECONNRESET
      // if it died with unread control data queued. A failed send means
      // that endpoint is going away: count only the sends that landed so
      // the epoch book matches what each rank actually received, and let
      // the reap pass classify the death. A half-rewired link self-heals
      // — the installed end sees EOF (its peer fd closes with `pair`)
      // and reports LinkDown at the bumped epoch.
      auto pair = net::stream_pair();
      bool sent_s = false;
      bool sent_q = false;
      try {
        net::send_control(ctrl[static_cast<std::size_t>(s)].get(),
                          ControlOp::ReplacePeer, q, 0, pair.first.get());
        sent_s = true;
      } catch (const std::exception&) {
      }
      try {
        net::send_control(ctrl[static_cast<std::size_t>(q)].get(),
                          ControlOp::ReplacePeer, s, 0, pair.second.get());
        sent_q = true;
      } catch (const std::exception&) {
      }
      if (sent_s)
        ++sent_replace[static_cast<std::size_t>(s)][static_cast<std::size_t>(
            q)];
      if (sent_q)
        ++sent_replace[static_cast<std::size_t>(q)][static_cast<std::size_t>(
            s)];
      if (sent_s && sent_q) ++report.links_rewired;
    }
  }

  net::detail::kill_group(pids, report.launch.ranks,
                          opts.launch.term_grace_seconds);
  if (report.launch.timed_out && report.launch.first_failure == 0)
    report.launch.first_failure = 1;
  return report;
}

}  // namespace hqr::fault
