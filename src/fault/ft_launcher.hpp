// Fault-tolerant rank launcher: the plain launcher's fork-and-supervise
// loop, extended with a per-rank control channel, rank-failure recovery and
// link re-wiring.
//
// Topology. Next to the transport-built rank mesh, every rank gets a
// private AF_UNIX socketpair to the launcher (the control channel of
// net/control.hpp). Ranks report dead links upward (LinkDown); the
// launcher pushes repaired links downward (ReplacePeer + a passed
// descriptor). Because replacement ranks receive their entire mesh as
// passed descriptors, recovery is transport-blind: it works identically
// under `unix` and `tcp` (all ranks are forked children of one launcher).
//
// Recovery of a dead rank r (r != 0; the collector's death is final):
//   1. The supervisor reaps r, records a typed RankFailure, and creates a
//      fresh socketpair per survivor plus a fresh control channel.
//   2. Survivors get ReplacePeer{peer=r} with their end of the new link;
//      their Comm installs it and the distributed runtime replays its
//      SentTileLog into it.
//   3. A replacement process is forked with FtRankContext.is_replacement
//      set; it rebuilds the deterministic plan, re-executes r's entire
//      partition, and re-posts its outputs (survivors deduplicate).
// A LinkDown for a live peer (chaos DropLink) re-wires just that link: a
// fresh pair, ReplacePeer to both endpoints. Epoch stamps deduplicate the
// two reports a severed link produces and discard reports that predate a
// re-wire already performed.
#pragma once

#include <functional>
#include <vector>

#include "fault/events.hpp"
#include "fault/plan.hpp"
#include "net/comm.hpp"
#include "net/launcher.hpp"

namespace hqr::fault {

struct FtLaunchOptions {
  net::LaunchOptions launch;
  // The deterministic injection schedule; each rank receives its own
  // actions through FtRankContext (replacements receive none — a fault
  // fires once per plan, not once per incarnation).
  FaultPlan plan;
  // Fork replacements for dead ranks (rank 0 excluded). Off = any death
  // tears the group down, exactly like net::run_ranks_report.
  bool recovery = true;
  // Recoveries beyond this count escalate to group teardown: a rank that
  // keeps dying is a real bug, not chaos.
  int max_recoveries = 3;
};

// What a rank body learns about its incarnation.
struct FtRankContext {
  int rank = -1;
  bool is_replacement = false;
  int incarnation = 0;  // 0 = original process, 1 = first replacement, ...
  // This rank's end of the launcher control channel; wire it into
  // Comm::enable_fault_tolerance.
  int control_fd = -1;
  // The injections this incarnation must arm (empty for replacements).
  std::vector<FaultAction> faults;
};

struct FtLaunchReport {
  net::LaunchReport launch;  // final-incarnation exits, rank by rank
  std::vector<RankFailure> failures;  // every launcher-observed failure
  int replacements_forked = 0;
  int links_rewired = 0;  // DropLink repairs (rank recoveries not counted)

  bool ok() const { return launch.ok(); }
};

// Forks `nranks` ranks running `rank_main` and supervises them with
// recovery. Same fork caveat as net::run_ranks: call before the launching
// process spawns threads.
FtLaunchReport run_ranks_ft(
    int nranks,
    const std::function<int(net::Comm&, const FtRankContext&)>& rank_main,
    const FtLaunchOptions& opts = {});

}  // namespace hqr::fault
