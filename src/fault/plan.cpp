#include "fault/plan.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "fault/events.hpp"

namespace hqr::fault {

const char* failure_reason_name(FailureReason r) {
  switch (r) {
    case FailureReason::PeerClosed:
      return "peer-closed";
    case FailureReason::WatchdogTimeout:
      return "watchdog-timeout";
    case FailureReason::KilledBySignal:
      return "killed-by-signal";
    case FailureReason::NonzeroExit:
      return "nonzero-exit";
    case FailureReason::LaunchTimeout:
      return "launch-timeout";
  }
  return "?";
}

std::string RankFailure::describe() const {
  std::ostringstream os;
  os << "rank " << rank << " " << failure_reason_name(reason);
  if (detail != 0) os << " (" << detail << ")";
  os << ", detected by "
     << (detected_by < 0 ? std::string("launcher")
                         : "rank " + std::to_string(detected_by));
  return os.str();
}

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::KillRank:
      return "kill";
    case FaultKind::DropLink:
      return "drop";
    case FaultKind::DelayLink:
      return "delay";
  }
  return "?";
}

std::vector<FaultAction> FaultPlan::actions_for(int r) const {
  std::vector<FaultAction> mine;
  for (const FaultAction& a : actions)
    if (a.rank == r) mine.push_back(a);
  return mine;
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < actions.size(); ++i) {
    const FaultAction& a = actions[i];
    if (i > 0) os << ";";
    os << fault_kind_name(a.kind) << ":" << a.rank;
    if (a.kind != FaultKind::KillRank) os << "-" << a.peer;
    os << "@" << a.at_task;
    if (a.kind == FaultKind::DelayLink) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", a.delay_seconds);
      os << "+" << buf;
    }
  }
  return os.str();
}

FaultPlan FaultPlan::random(std::uint64_t seed, int nranks, int max_task) {
  HQR_CHECK(nranks >= 2, "a fault plan needs at least 2 ranks");
  HQR_CHECK(max_task >= 1, "max_task must be >= 1");
  Rng rng(seed);
  FaultPlan plan;
  plan.seed = seed;
  FaultAction a;
  const double kind = rng.uniform();
  a.kind = kind < 0.5 ? FaultKind::KillRank
                      : (kind < 0.8 ? FaultKind::DropLink
                                    : FaultKind::DelayLink);
  // Victims avoid rank 0: the collector's death is unrecoverable.
  a.rank = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(
                nranks - 1)));
  a.at_task =
      1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(max_task)));
  if (a.kind != FaultKind::KillRank) {
    a.peer = static_cast<int>(
        rng.below(static_cast<std::uint64_t>(nranks - 1)));
    if (a.peer >= a.rank) ++a.peer;  // any peer but the victim itself
  }
  if (a.kind == FaultKind::DelayLink)
    a.delay_seconds = 0.05 + 0.45 * rng.uniform();
  plan.actions.push_back(a);
  return plan;
}

namespace {

// Parses a non-negative integer at *s, advancing it past the digits.
int parse_int(const char*& s, const char* what) {
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  HQR_CHECK(end != s && v >= 0, "fault spec: bad " << what << " near '" << s
                                                   << "'");
  s = end;
  return static_cast<int>(v);
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::istringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ';')) {
    if (item.empty()) continue;
    FaultAction a;
    const char* s = item.c_str();
    if (item.rfind("kill:", 0) == 0) {
      a.kind = FaultKind::KillRank;
      s += 5;
    } else if (item.rfind("drop:", 0) == 0) {
      a.kind = FaultKind::DropLink;
      s += 5;
    } else if (item.rfind("delay:", 0) == 0) {
      a.kind = FaultKind::DelayLink;
      s += 6;
    } else {
      HQR_CHECK(false, "fault spec: unknown action '" << item
                                                      << "' (want kill:/"
                                                         "drop:/delay:)");
    }
    a.rank = parse_int(s, "rank");
    if (a.kind != FaultKind::KillRank) {
      HQR_CHECK(*s == '-', "fault spec: expected '-<peer>' in '" << item
                                                                 << "'");
      ++s;
      a.peer = parse_int(s, "peer");
      HQR_CHECK(a.peer != a.rank,
                "fault spec: link endpoints must differ in '" << item << "'");
    }
    HQR_CHECK(*s == '@', "fault spec: expected '@<task>' in '" << item
                                                               << "'");
    ++s;
    a.at_task = parse_int(s, "task trigger");
    HQR_CHECK(a.at_task >= 1, "fault spec: task trigger is 1-based");
    if (a.kind == FaultKind::DelayLink) {
      HQR_CHECK(*s == '+', "fault spec: expected '+<seconds>' in '" << item
                                                                    << "'");
      ++s;
      char* end = nullptr;
      a.delay_seconds = std::strtod(s, &end);
      HQR_CHECK(end != s && a.delay_seconds >= 0,
                "fault spec: bad delay in '" << item << "'");
      s = end;
    }
    HQR_CHECK(*s == '\0', "fault spec: trailing garbage in '" << item << "'");
    plan.actions.push_back(a);
  }
  return plan;
}

}  // namespace hqr::fault
