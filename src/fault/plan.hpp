// Deterministic fault plans: *what* to break, *where*, and *when*, pinned
// down before the run starts so that a chaos run is reproducible bit for
// bit and the cluster simulator can execute the very same plan.
//
// Triggers are logical, not temporal: `at_task = k` arms the fault at the
// victim rank's k-th local task completion (1-based). Logical triggers are
// what make the injection deterministic across machines, schedulers and
// load — wall-clock triggers would make every chaos run unique.
//
// Spec grammar (semicolon-separated actions):
//   kill:<rank>@<k>                 SIGKILL rank at its k-th completion
//   drop:<rank>-<peer>@<k>          sever the rank<->peer stream at k
//   delay:<rank>-<peer>@<k>+<sec>   hold rank->peer sends for <sec> seconds
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hqr::fault {

enum class FaultKind {
  KillRank,   // process death (SIGKILL, no cleanup)
  DropLink,   // one stream dies; both endpoints survive
  DelayLink,  // outbound frames held for delay_seconds, then restored
};

const char* fault_kind_name(FaultKind k);

struct FaultAction {
  FaultKind kind = FaultKind::KillRank;
  int rank = -1;  // the rank that executes the injection
  int peer = -1;  // the other endpoint (link faults only)
  // 1-based local-completion count that triggers the action.
  int at_task = 1;
  double delay_seconds = 0.0;  // DelayLink only
};

struct FaultPlan {
  std::vector<FaultAction> actions;
  std::uint64_t seed = 0;  // 0 = hand-written / parsed plan

  bool empty() const { return actions.empty(); }
  // Actions rank `r` must arm locally.
  std::vector<FaultAction> actions_for(int r) const;
  // Round-trips through parse(): describe() output is a valid spec.
  std::string describe() const;

  // One seeded random action. Kill victims avoid rank 0 (the collector is
  // unrecoverable by design — see DESIGN.md §14), so any seed yields a
  // recoverable plan on nranks >= 2.
  static FaultPlan random(std::uint64_t seed, int nranks, int max_task);
  // Parses the spec grammar above; throws hqr::Error on malformed input.
  static FaultPlan parse(const std::string& spec);
};

}  // namespace hqr::fault
