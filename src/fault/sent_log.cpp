#include "fault/sent_log.hpp"

#include "common/check.hpp"

namespace hqr::fault {

SentTileLog::SentTileLog(int nranks, long long max_bytes)
    : max_bytes_(max_bytes) {
  HQR_CHECK(nranks >= 1, "SentTileLog needs at least one rank");
  per_dest_.resize(static_cast<std::size_t>(nranks));
}

bool SentTileLog::append(int dest, int producer_task, Payload payload) {
  HQR_CHECK(dest >= 0 && dest < static_cast<int>(per_dest_.size()),
            "SentTileLog: bad destination " << dest);
  HQR_CHECK(payload != nullptr, "SentTileLog: null payload");
  std::lock_guard<std::mutex> lk(mu_);
  if (overflowed_) return false;
  const long long sz = static_cast<long long>(payload->size());
  if (max_bytes_ > 0 && bytes_ + sz > max_bytes_) {
    // Stop recording entirely: a log with holes replays a partial history,
    // which is worse than a typed refusal to replay at all.
    overflowed_ = true;
    return false;
  }
  per_dest_[static_cast<std::size_t>(dest)].push_back(
      Entry{producer_task, std::move(payload)});
  bytes_ += sz;
  ++frames_;
  return true;
}

bool SentTileLog::replay(
    int dest,
    const std::function<void(int producer_task, const Payload&)>& fn) const {
  HQR_CHECK(dest >= 0 && dest < static_cast<int>(per_dest_.size()),
            "SentTileLog: bad destination " << dest);
  std::lock_guard<std::mutex> lk(mu_);
  if (overflowed_) return false;
  for (const Entry& e : per_dest_[static_cast<std::size_t>(dest)])
    fn(e.producer_task, e.payload);
  return true;
}

long long SentTileLog::bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return bytes_;
}

long long SentTileLog::frames() const {
  std::lock_guard<std::mutex> lk(mu_);
  return frames_;
}

bool SentTileLog::overflowed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return overflowed_;
}

}  // namespace hqr::fault
