// Bounded per-destination log of the tile frames a rank has sent — the
// survivor half of the recovery protocol.
//
// Owner-computes recovery re-executes the dead rank's entire partition on
// a replacement, but the replacement still needs the tile payloads its
// tasks consume from *other* ranks' partitions — payloads the survivors
// sent to the dead incarnation and will never re-produce. Every Data frame
// is therefore logged at post time (a shared_ptr alias of the payload the
// comm layer ships, so the log costs pointers, not copies) and replayed
// into the re-wired link when the launcher announces the replacement.
// Entries are retained until the DAG completes: recovery can strike at any
// task, so any sent tile may still be needed. The cap turns a pathological
// memory profile into a typed RecoveryImpossible failure instead of an OOM
// kill — once the cap trips, the log stops recording and replay for any
// rank reports the gap.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace hqr::fault {

class SentTileLog {
 public:
  using Payload = std::shared_ptr<const std::vector<std::uint8_t>>;

  SentTileLog(int nranks, long long max_bytes);

  // Records one sent frame (payload as shipped, including its task id
  // header). Returns false — and records nothing — once the byte cap has
  // tripped; the log is then marked overflowed for good.
  bool append(int dest, int producer_task, Payload payload);

  // Invokes fn for every frame sent to `dest`, in send order. Returns
  // false when the log overflowed (the replay would be incomplete — the
  // caller must escalate instead of replaying a partial history).
  bool replay(int dest,
              const std::function<void(int producer_task, const Payload&)>&
                  fn) const;

  long long bytes() const;
  long long frames() const;
  bool overflowed() const;

 private:
  struct Entry {
    int producer_task;
    Payload payload;
  };

  mutable std::mutex mu_;
  std::vector<std::vector<Entry>> per_dest_;
  long long bytes_ = 0;
  long long frames_ = 0;
  long long max_bytes_;
  bool overflowed_ = false;
};

}  // namespace hqr::fault
