#include "linalg/householder.hpp"
#include "kernels/tile_kernels.hpp"

namespace hqr {

void geqrt(MatrixView a, MatrixView t, TileWorkspace& ws) {
  const int b = ws.b();
  HQR_CHECK(a.rows == b && a.cols == b && t.rows == b && t.cols == b,
            "geqrt expects b x b tiles");
  MatrixView work = ws.vec();

  for (int j = 0; j < b; ++j) {
    const int below = b - j;
    double alpha = a(j, j);
    MatrixView x = below > 1 ? a.block(j + 1, j, below - 1, 1)
                             : MatrixView(nullptr, 0, 1, 1);
    const double tau = larfg(below, alpha, x);
    a(j, j) = alpha;
    if (j + 1 < b && tau != 0.0) {
      MatrixView c = a.block(j, j + 1, below, b - j - 1);
      larf_left(tau, x, c, work);
    }
    larft_column(a, j, tau, t);
  }
}

void unmqr(ConstMatrixView v, ConstMatrixView t, Trans trans, MatrixView c,
           TileWorkspace& ws) {
  const int b = ws.b();
  HQR_CHECK(v.rows == b && v.cols == b && t.rows == b && t.cols == b &&
                c.rows == b,
            "unmqr expects b x b tiles");
  larfb_left(trans, v, t, c, ws.w1(), &ws.gemm_ws());
}

}  // namespace hqr
