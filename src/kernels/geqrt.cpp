#include "linalg/householder.hpp"
#include "kernels/panel_util.hpp"
#include "kernels/tile_kernels.hpp"

namespace hqr {

void geqrt(MatrixView a, MatrixView t, TileWorkspace& ws) {
  const int b = ws.b();
  HQR_CHECK(a.rows == b && a.cols == b && t.rows == b && t.cols == b,
            "geqrt expects b x b tiles");
  MatrixView work = ws.vec();
  const int pw = detail::panel_width(b);

  for (int j0 = 0; j0 < b; j0 += pw) {
    const int w = std::min(pw, b - j0);
    MatrixView tp = t.block(j0, j0, w, w);
    detail::zero_block(tp);

    // Factor the panel column-by-column; larf updates stay inside the
    // panel, the trailing columns get one blocked larfb below.
    ConstMatrixView vpanel = a.block(j0, j0, b - j0, w);
    for (int jl = 0; jl < w; ++jl) {
      const int j = j0 + jl;
      const int below = b - j;
      double alpha = a(j, j);
      MatrixView x = below > 1 ? a.block(j + 1, j, below - 1, 1)
                               : MatrixView(nullptr, 0, 1, 1);
      const double tau = larfg(below, alpha, x);
      a(j, j) = alpha;
      if (jl + 1 < w && tau != 0.0) {
        MatrixView c = a.block(j, j + 1, below, w - jl - 1);
        larf_left(tau, x, c, work);
      }
      larft_column(vpanel, jl, tau, tp);
    }

    if (j0 > 0) {
      // S = V1(j0:b, :)^T * Vp as an explicit trapezoid (implicit units,
      // zeroed upper): rows above j0 of V1 never meet Vp's support.
      MatrixView vtrap = ws.w2().block(0, 0, b - j0, w);
      for (int c = 0; c < w; ++c)
        for (int r = 0; r < b - j0; ++r)
          vtrap(r, c) = r > c ? a(j0 + r, j0 + c) : (r == c ? 1.0 : 0.0);
      MatrixView s = ws.w1().block(0, 0, j0, w);
      gemm(Trans::Yes, Trans::No, 1.0, a.block(j0, 0, b - j0, j0), vtrap, 0.0,
           s, ws.gemm_ws());
      detail::merge_cross_t(t, j0, w, s, ws.gemm_ws());
    }

    const int nc = b - j0 - w;
    if (nc > 0) {
      larfb_left(Trans::Yes, a.block(j0, j0, b - j0, w), tp,
                 a.block(j0, j0 + w, b - j0, nc), ws.w1().block(0, 0, w, nc),
                 &ws.gemm_ws());
    }
  }
}

void unmqr(ConstMatrixView v, ConstMatrixView t, Trans trans, MatrixView c,
           TileWorkspace& ws) {
  const int b = ws.b();
  HQR_CHECK(v.rows == b && v.cols == b && t.rows == b && t.cols == b &&
                c.rows == b,
            "unmqr expects b x b tiles");
  larfb_left(trans, v, t, c, ws.w1(), &ws.gemm_ws());
}

}  // namespace hqr
