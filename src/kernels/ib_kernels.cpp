#include "kernels/ib_kernels.hpp"

#include <algorithm>

#include "linalg/householder.hpp"

namespace hqr {
namespace {

int check_panels(int b, int ib) {
  HQR_CHECK(ib >= 1 && ib <= b, "inner block ib=" << ib << " out of [1, "
                                                  << b << "]");
  return (b + ib - 1) / ib;
}

}  // namespace

void geqrt_ib(MatrixView a, MatrixView t, int ib, TileWorkspace& ws) {
  const int b = ws.b();
  HQR_CHECK(a.rows == b && a.cols == b && t.rows == b && t.cols == b,
            "geqrt_ib expects b x b tiles");
  check_panels(b, ib);
  MatrixView work = ws.vec();

  for (int j0 = 0; j0 < b; j0 += ib) {
    const int w = std::min(ib, b - j0);
    // Factor the panel columns with plain reflectors.
    MatrixView v = a.block(j0, j0, b - j0, w);
    MatrixView tp = t.block(0, j0, w, w);
    for (int l = 0; l < w; ++l) {
      const int j = j0 + l;
      const int below = b - j;
      double alpha = a(j, j);
      MatrixView x = below > 1 ? a.block(j + 1, j, below - 1, 1)
                               : MatrixView(nullptr, 0, 1, 1);
      const double tau = larfg(below, alpha, x);
      a(j, j) = alpha;
      if (l + 1 < w && tau != 0.0) {
        MatrixView c = a.block(j, j + 1, below, w - l - 1);
        larf_left(tau, x, c, work);
      }
      larft_column(v, l, tau, tp);
    }
    // Block-apply the panel reflector to the trailing tile columns.
    const int trailing = b - (j0 + w);
    if (trailing > 0) {
      MatrixView c = a.block(j0, j0 + w, b - j0, trailing);
      larfb_left(Trans::Yes, v, tp, c, ws.w1(), &ws.gemm_ws());
    }
  }
}

void unmqr_ib(ConstMatrixView v, ConstMatrixView t, int ib, Trans trans,
              MatrixView c, TileWorkspace& ws) {
  const int b = ws.b();
  HQR_CHECK(v.rows == b && v.cols == b && t.rows == b && c.rows == b,
            "unmqr_ib expects b x b tiles");
  const int panels = check_panels(b, ib);
  // Q = Q_p0 Q_p1 ... : Q^T applies panels forward, Q reversed.
  for (int pi = 0; pi < panels; ++pi) {
    const int p = trans == Trans::Yes ? pi : panels - 1 - pi;
    const int j0 = p * ib;
    const int w = std::min(ib, b - j0);
    ConstMatrixView vp = v.block(j0, j0, b - j0, w);
    ConstMatrixView tp = t.block(0, j0, w, w);
    MatrixView cc = c.block(j0, 0, b - j0, c.cols);
    larfb_left(trans, vp, tp, cc, ws.w1(), &ws.gemm_ws());
  }
}

void tsqrt_ib(MatrixView a1, MatrixView a2, MatrixView t, int ib,
              TileWorkspace& ws) {
  const int b = ws.b();
  HQR_CHECK(a1.rows == b && a2.rows == b && t.rows == b,
            "tsqrt_ib expects b x b tiles");
  check_panels(b, ib);

  for (int j0 = 0; j0 < b; j0 += ib) {
    const int w = std::min(ib, b - j0);
    MatrixView tp = t.block(0, j0, w, w);
    // Panel factorization (same recurrences as tsqrt, restricted to the
    // panel columns).
    for (int l = 0; l < w; ++l) {
      const int j = j0 + l;
      double alpha = a1(j, j);
      MatrixView v2j = a2.col(j);
      const double tau = larfg(b + 1, alpha, v2j);
      a1(j, j) = alpha;
      if (tau != 0.0) {
        for (int jj = j + 1; jj < j0 + w; ++jj) {
          double s = a1(j, jj);
          for (int i = 0; i < b; ++i) s += a2(i, j) * a2(i, jj);
          s *= tau;
          a1(j, jj) -= s;
          for (int i = 0; i < b; ++i) a2(i, jj) -= s * a2(i, j);
        }
      }
      // T column l within the panel.
      for (int i = 0; i < l; ++i) {
        double s = 0.0;
        for (int r = 0; r < b; ++r) s += a2(r, j0 + i) * a2(r, j);
        tp(i, l) = -tau * s;
      }
      if (l > 0) {
        MatrixView tl = tp.block(0, l, l, 1);
        trmm_left(UpLo::Upper, Trans::No, Diag::NonUnit,
                  ConstMatrixView(tp.data, l, l, tp.ld), tl);
      }
      tp(l, l) = tau;
    }
    // Block-apply the panel reflector to trailing columns of the pencil:
    // V = [E_p; V2p] with E_p the identity columns at panel rows.
    const int trailing = b - (j0 + w);
    if (trailing > 0) {
      ConstMatrixView v2p = a2.block(0, j0, b, w);
      MatrixView c1p = a1.block(j0, j0 + w, w, trailing);
      MatrixView c2p = a2.block(0, j0 + w, b, trailing);
      MatrixView wk = ws.w1().block(0, 0, w, trailing);
      copy(c1p, wk);
      gemm(Trans::Yes, Trans::No, 1.0, v2p, c2p, 1.0, wk, ws.gemm_ws());
      trmm_left(UpLo::Upper, Trans::Yes, Diag::NonUnit, tp, wk);
      axpy(-1.0, wk, c1p);
      gemm(Trans::No, Trans::No, -1.0, v2p, wk, 1.0, c2p, ws.gemm_ws());
    }
  }
}

void tsmqr_ib(MatrixView c1, MatrixView c2, ConstMatrixView v2,
              ConstMatrixView t, int ib, Trans trans, TileWorkspace& ws) {
  const int b = ws.b();
  HQR_CHECK(c1.rows == b && c2.rows == b && v2.rows == b,
            "tsmqr_ib expects b x b tiles");
  const int panels = check_panels(b, ib);
  for (int pi = 0; pi < panels; ++pi) {
    const int p = trans == Trans::Yes ? pi : panels - 1 - pi;
    const int j0 = p * ib;
    const int w = std::min(ib, b - j0);
    ConstMatrixView v2p = v2.block(0, j0, b, w);
    ConstMatrixView tp = t.block(0, j0, w, w);
    MatrixView c1p = c1.block(j0, 0, w, c1.cols);
    MatrixView wk = ws.w1().block(0, 0, w, c1.cols);
    copy(c1p, wk);
    gemm(Trans::Yes, Trans::No, 1.0, v2p, c2, 1.0, wk, ws.gemm_ws());
    trmm_left(UpLo::Upper, trans, Diag::NonUnit, tp, wk);
    axpy(-1.0, wk, c1p);
    gemm(Trans::No, Trans::No, -1.0, v2p, wk, 1.0, c2, ws.gemm_ws());
  }
}

namespace {

// Zero-padded copy of the triangular V2 panel of a TTQRT factorization:
// column l (global j0 + l) has stored rows 0 .. j0+l; everything below is
// another kernel's data and must read as zero.
void load_tt_panel(ConstMatrixView v2, int j0, int w, MatrixView wp) {
  set_zero(wp);
  for (int l = 0; l < w; ++l)
    for (int r = 0; r <= j0 + l; ++r) wp(r, l) = v2(r, j0 + l);
}

}  // namespace

void ttqrt_ib(MatrixView a1, MatrixView a2, MatrixView t, int ib,
              TileWorkspace& ws) {
  const int b = ws.b();
  HQR_CHECK(a1.rows == b && a2.rows == b && t.rows == b,
            "ttqrt_ib expects b x b tiles");
  check_panels(b, ib);

  for (int j0 = 0; j0 < b; j0 += ib) {
    const int w = std::min(ib, b - j0);
    MatrixView tp = t.block(0, j0, w, w);
    for (int l = 0; l < w; ++l) {
      const int j = j0 + l;
      double alpha = a1(j, j);
      MatrixView v2j = a2.block(0, j, j + 1, 1);
      const double tau = larfg(j + 2, alpha, v2j);
      a1(j, j) = alpha;
      if (tau != 0.0) {
        for (int jj = j + 1; jj < j0 + w; ++jj) {
          double s = a1(j, jj);
          for (int r = 0; r <= j; ++r) s += a2(r, j) * a2(r, jj);
          s *= tau;
          a1(j, jj) -= s;
          for (int r = 0; r <= j; ++r) a2(r, jj) -= s * a2(r, j);
        }
      }
      for (int i = 0; i < l; ++i) {
        double s = 0.0;
        for (int r = 0; r <= j0 + i; ++r) s += a2(r, j0 + i) * a2(r, j);
        tp(i, l) = -tau * s;
      }
      if (l > 0) {
        MatrixView tl = tp.block(0, l, l, 1);
        trmm_left(UpLo::Upper, Trans::No, Diag::NonUnit,
                  ConstMatrixView(tp.data, l, l, tp.ld), tl);
      }
      tp(l, l) = tau;
    }
    const int trailing = b - (j0 + w);
    if (trailing > 0) {
      const int rows = j0 + w;  // V2 panel support
      MatrixView wp = ws.w2().block(0, 0, rows, w);
      load_tt_panel(a2, j0, w, wp);
      MatrixView c1p = a1.block(j0, j0 + w, w, trailing);
      MatrixView c2p = a2.block(0, j0 + w, rows, trailing);
      MatrixView wk = ws.w1().block(0, 0, w, trailing);
      copy(c1p, wk);
      gemm(Trans::Yes, Trans::No, 1.0, wp, c2p, 1.0, wk, ws.gemm_ws());
      trmm_left(UpLo::Upper, Trans::Yes, Diag::NonUnit, tp, wk);
      axpy(-1.0, wk, c1p);
      gemm(Trans::No, Trans::No, -1.0, wp, wk, 1.0, c2p, ws.gemm_ws());
    }
  }
}

void ttmqr_ib(MatrixView c1, MatrixView c2, ConstMatrixView v2,
              ConstMatrixView t, int ib, Trans trans, TileWorkspace& ws) {
  const int b = ws.b();
  HQR_CHECK(c1.rows == b && c2.rows == b && v2.rows == b,
            "ttmqr_ib expects b x b tiles");
  const int panels = check_panels(b, ib);
  for (int pi = 0; pi < panels; ++pi) {
    const int p = trans == Trans::Yes ? pi : panels - 1 - pi;
    const int j0 = p * ib;
    const int w = std::min(ib, b - j0);
    const int rows = j0 + w;
    MatrixView wp = ws.w2().block(0, 0, rows, w);
    load_tt_panel(v2, j0, w, wp);
    ConstMatrixView tp = t.block(0, j0, w, w);
    MatrixView c1p = c1.block(j0, 0, w, c1.cols);
    MatrixView c2p = c2.block(0, 0, rows, c2.cols);
    MatrixView wk = ws.w1().block(0, 0, w, c1.cols);
    copy(c1p, wk);
    gemm(Trans::Yes, Trans::No, 1.0, wp, c2p, 1.0, wk, ws.gemm_ws());
    trmm_left(UpLo::Upper, trans, Diag::NonUnit, tp, wk);
    axpy(-1.0, wk, c1p);
    gemm(Trans::No, Trans::No, -1.0, wp, wk, 1.0, c2p, ws.gemm_ws());
  }
}

}  // namespace hqr
