// Inner-blocked (IB) tile kernels — the production variants.
//
// The plain kernels in tile_kernels.hpp use one full-size b x b T factor per
// tile, which costs an extra O(b^3) in every MQR application. Production
// kernels (and the paper's flop weights, §II) use inner blocking: each tile
// is factored in column panels of width ib, with one ib x ib T per panel,
// stored side by side in the first ib rows of the T tile (the PLASMA ib x b
// T layout). Applications then cost 4 b^3 + O(ib b^2) instead of 5 b^3.
//
// ib must divide into the tile: any 1 <= ib <= b works (the last panel may
// be narrower). ib == b reproduces the plain kernels' math with a different
// T layout.
#pragma once

#include "kernels/tile_kernels.hpp"

namespace hqr {

// A <- QR of the tile, panel width ib; T(0:ib, :) holds the stacked panel
// T factors (panel starting at column j0 occupies T(0:w, j0:j0+w)).
void geqrt_ib(MatrixView a, MatrixView t, int ib, TileWorkspace& ws);

// C <- op(Q) C for a geqrt_ib factorization.
void unmqr_ib(ConstMatrixView v, ConstMatrixView t, int ib, Trans trans,
              MatrixView c, TileWorkspace& ws);

// Triangle-on-square factorization with panel width ib.
void tsqrt_ib(MatrixView a1, MatrixView a2, MatrixView t, int ib,
              TileWorkspace& ws);

// Applies a tsqrt_ib reflector to [C1; C2].
void tsmqr_ib(MatrixView c1, MatrixView c2, ConstMatrixView v2,
              ConstMatrixView t, int ib, Trans trans, TileWorkspace& ws);

// Triangle-on-triangle factorization with panel width ib.
void ttqrt_ib(MatrixView a1, MatrixView a2, MatrixView t, int ib,
              TileWorkspace& ws);

// Applies a ttqrt_ib reflector to [C1; C2].
void ttmqr_ib(MatrixView c1, MatrixView c2, ConstMatrixView v2,
              ConstMatrixView t, int ib, Trans trans, TileWorkspace& ws);

}  // namespace hqr
