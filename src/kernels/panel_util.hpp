// Shared helpers for the blocked full-T (ib = 0) factorization kernels.
//
// GEQRT/TSQRT/TTQRT with ib = 0 build one T for the whole tile. The blocked
// forms factor panels of `panel_width()` columns (scalar larfg/larf inside
// the panel), apply each panel's compact-WY reflector to the trailing
// columns through the packed GEMM core, and stitch the panel T factors into
// the full T with the merge formula
//
//   T(0:j0, j0:j0+w) = -T1 * S * Tp,   S = V(:, 0:j0)^T V(:, j0:j0+w),
//
// which is the standard cross-block of larft: the same compact-WY factors
// as the column-by-column construction, just accumulated blockwise.
#pragma once

#include <algorithm>

#include "linalg/blas.hpp"
#include "linalg/gemm.hpp"
#include "linalg/matrix.hpp"
#include "linalg/micro_kernel.hpp"

namespace hqr {
namespace detail {

inline int panel_width(int b) {
  return std::max(1, std::min(householder_panel(), b));
}

inline void zero_block(MatrixView m) {
  for (int j = 0; j < m.cols; ++j)
    for (int i = 0; i < m.rows; ++i) m(i, j) = 0.0;
}

// Stitches panel T (already in t(j0:j0+w, j0:j0+w), strict lower zeroed)
// into the full T: t(0:j0, j0:j0+w) = -T1 * s * Tp. `s` is the j0 x w
// cross-Gram block V(:, 0:j0)^T V(:, j0:j0+w), computed by the caller from
// its reflector storage layout.
inline void merge_cross_t(MatrixView t, int j0, int w, ConstMatrixView s,
                          GemmWorkspace& gws) {
  MatrixView tb = t.block(0, j0, j0, w);
  gemm(Trans::No, Trans::No, -1.0, s, t.block(j0, j0, w, w), 0.0, tb, gws);
  trmm_left(UpLo::Upper, Trans::No, Diag::NonUnit,
            ConstMatrixView(t.data, j0, j0, t.ld), tb);
}

}  // namespace detail
}  // namespace hqr
