// The six tile QR kernels of the paper (§II, Algorithm 2), from scratch.
//
// All kernels operate on b x b tiles with compact-WY storage:
//
//   GEQRT(A, T)        A <- {R in upper, V unit-lower below diag}, T built.
//   UNMQR(V, T, C)     C <- op(Q) C for the GEQRT reflector (TT/TS update of
//                      the killer row's trailing tiles).
//   TSQRT(A1, A2, T)   factors [R1; A2] (triangle on top of square):
//                      A1 upper triangle <- new R, A2 <- V2 (dense), T built.
//                      A1's strictly-lower part (the killer's own GEQRT V) is
//                      neither read nor written.
//   TSMQR(C1, C2, V2, T)  applies the TSQRT reflector to the tile pair
//                      [C1; C2] in trailing columns.
//   TTQRT(A1, A2, T)   factors [R1; R2] (triangle on top of triangle):
//                      A2's upper triangle <- V2 (upper triangular, stored
//                      diagonal); its strictly-lower part is untouched.
//   TTMQR(C1, C2, V2, T)  applies the TTQRT reflector to [C1; C2].
//
// Weights in b^3/3 flop units (paper §II): GEQRT 4, UNMQR 6, TSQRT 6,
// TSMQR 12, TTQRT 2, TTMQR 6.
#pragma once

#include "linalg/blas.hpp"
#include "linalg/kernel_tuning.hpp"
#include "linalg/matrix.hpp"

namespace hqr {

// Scratch buffers reused across kernel invocations; one per worker thread.
// No kernel allocates: the GEMM packing buffers are pre-sized here for
// b x b products, so every task the worker runs reuses the same memory.
class TileWorkspace {
 public:
  explicit TileWorkspace(int b) : b_(b), w1_(b, b), w2_(b, b), vec_(b, 1) {
    HQR_CHECK(b >= 1, "tile size must be >= 1");
    // First workspace in the process pulls in the per-host tuning cache
    // (kernel shape, blocking, panel width) before sizing pack buffers.
    ensure_tuning_applied();
    gemm_.reserve(b, b, b);
  }

  int b() const { return b_; }
  MatrixView w1() { return w1_.view(); }
  MatrixView w2() { return w2_.view(); }
  MatrixView vec() { return vec_.view(); }
  GemmWorkspace& gemm_ws() { return gemm_; }

 private:
  int b_;
  Matrix w1_, w2_, vec_;
  GemmWorkspace gemm_;
};

// A <- QR of the b x b tile. R overwrites the upper triangle (incl. diag);
// Householder vectors overwrite the strict lower triangle (unit diagonal
// implicit). T (b x b) receives the upper-triangular block-reflector factor.
void geqrt(MatrixView a, MatrixView t, TileWorkspace& ws);

// C <- op(Q) * C where Q = I - V T V^T from geqrt; V is the factored tile
// (only its strict lower triangle is read). trans == Trans::Yes applies Q^T
// (the factorization update); Trans::No applies Q (used when building Q).
void unmqr(ConstMatrixView v, ConstMatrixView t, Trans trans, MatrixView c,
           TileWorkspace& ws);

// Factors the 2b x b pencil [triangle(A1); A2]. On exit the upper triangle
// of A1 holds the new R, A2 holds the dense reflector block V2, T is built.
void tsqrt(MatrixView a1, MatrixView a2, MatrixView t, TileWorkspace& ws);

// Applies the TSQRT reflector to [C1; C2] (both full tiles).
void tsmqr(MatrixView c1, MatrixView c2, ConstMatrixView v2, ConstMatrixView t,
           Trans trans, TileWorkspace& ws);

// Factors the 2b x b pencil [triangle(A1); triangle(A2)]. On exit the upper
// triangle of A1 holds the new R, the upper triangle of A2 holds V2
// (triangular, stored diagonal), T is built.
void ttqrt(MatrixView a1, MatrixView a2, MatrixView t, TileWorkspace& ws);

// Applies the TTQRT reflector to [C1; C2] (both full tiles); only the upper
// triangle of v2 is read.
void ttmqr(MatrixView c1, MatrixView c2, ConstMatrixView v2, ConstMatrixView t,
           Trans trans, TileWorkspace& ws);

}  // namespace hqr
