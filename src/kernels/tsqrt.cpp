#include "linalg/householder.hpp"
#include "kernels/tile_kernels.hpp"

namespace hqr {

void tsqrt(MatrixView a1, MatrixView a2, MatrixView t, TileWorkspace& ws) {
  const int b = ws.b();
  HQR_CHECK(a1.rows == b && a1.cols == b && a2.rows == b && a2.cols == b &&
                t.rows == b && t.cols == b,
            "tsqrt expects b x b tiles");

  for (int j = 0; j < b; ++j) {
    // Householder for the pencil column [a1(j,j); a2(:, j)] of length b + 1.
    double alpha = a1(j, j);
    MatrixView v2j = a2.col(j);
    const double tau = larfg(b + 1, alpha, v2j);
    a1(j, j) = alpha;

    if (tau != 0.0) {
      // Update trailing columns jj > j of the pencil. The reflector is
      // v = [e_j; v2j]; only row j of A1 participates.
      for (int jj = j + 1; jj < b; ++jj) {
        double w = a1(j, jj);
        const double* c2 = a2.data + static_cast<std::size_t>(jj) * a2.ld;
        const double* vj = a2.data + static_cast<std::size_t>(j) * a2.ld;
        for (int i = 0; i < b; ++i) w += vj[i] * c2[i];
        w *= tau;
        a1(j, jj) -= w;
        double* c2m = a2.data + static_cast<std::size_t>(jj) * a2.ld;
        for (int i = 0; i < b; ++i) c2m[i] -= w * vj[i];
      }
    }

    // T column j: T(0:j, j) = -tau * T(0:j,0:j) * (V2(:,0:j)^T v2j). The
    // top identity block of V contributes nothing (e_i^T e_j = 0, i < j).
    for (int i = 0; i < j; ++i) {
      const double* vi = a2.data + static_cast<std::size_t>(i) * a2.ld;
      const double* vj = a2.data + static_cast<std::size_t>(j) * a2.ld;
      double s = 0.0;
      for (int r = 0; r < b; ++r) s += vi[r] * vj[r];
      t(i, j) = -tau * s;
    }
    if (j > 0) {
      MatrixView tj = t.block(0, j, j, 1);
      trmm_left(UpLo::Upper, Trans::No, Diag::NonUnit,
                ConstMatrixView(t.data, j, j, t.ld), tj);
    }
    t(j, j) = tau;
  }
}

void tsmqr(MatrixView c1, MatrixView c2, ConstMatrixView v2, ConstMatrixView t,
           Trans trans, TileWorkspace& ws) {
  const int b = ws.b();
  HQR_CHECK(c1.rows == b && c1.cols == b && c2.rows == b && c2.cols == b &&
                v2.rows == b && v2.cols == b && t.rows == b && t.cols == b,
            "tsmqr expects b x b tiles");
  // V = [I; V2]:  W = C1 + V2^T C2;  W = op(T) W;  C1 -= W;  C2 -= V2 W.
  MatrixView w = ws.w1();
  copy(c1, w);
  gemm(Trans::Yes, Trans::No, 1.0, v2, c2, 1.0, w, ws.gemm_ws());
  trmm_left(UpLo::Upper, trans, Diag::NonUnit, t, w);
  axpy(-1.0, w, c1);
  gemm(Trans::No, Trans::No, -1.0, v2, w, 1.0, c2, ws.gemm_ws());
}

}  // namespace hqr
