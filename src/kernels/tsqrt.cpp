#include "linalg/householder.hpp"
#include "kernels/panel_util.hpp"
#include "kernels/tile_kernels.hpp"

namespace hqr {

void tsqrt(MatrixView a1, MatrixView a2, MatrixView t, TileWorkspace& ws) {
  const int b = ws.b();
  HQR_CHECK(a1.rows == b && a1.cols == b && a2.rows == b && a2.cols == b &&
                t.rows == b && t.cols == b,
            "tsqrt expects b x b tiles");
  const int pw = detail::panel_width(b);

  for (int j0 = 0; j0 < b; j0 += pw) {
    const int w = std::min(pw, b - j0);
    MatrixView tp = t.block(j0, j0, w, w);
    detail::zero_block(tp);

    for (int jl = 0; jl < w; ++jl) {
      const int j = j0 + jl;
      // Householder for the pencil column [a1(j,j); a2(:, j)] of length
      // b + 1. The reflector is v = [e_j; v2j]; only row j of A1
      // participates in updates.
      double alpha = a1(j, j);
      MatrixView v2j = a2.col(j);
      const double tau = larfg(b + 1, alpha, v2j);
      a1(j, j) = alpha;

      if (tau != 0.0) {
        // Update the remaining panel columns; trailing columns past the
        // panel get one blocked application below.
        for (int jj = j + 1; jj < j0 + w; ++jj) {
          double wv = a1(j, jj);
          const double* c2 = a2.data + static_cast<std::size_t>(jj) * a2.ld;
          const double* vj = a2.data + static_cast<std::size_t>(j) * a2.ld;
          for (int i = 0; i < b; ++i) wv += vj[i] * c2[i];
          wv *= tau;
          a1(j, jj) -= wv;
          double* c2m = a2.data + static_cast<std::size_t>(jj) * a2.ld;
          for (int i = 0; i < b; ++i) c2m[i] -= wv * vj[i];
        }
      }

      // Panel T column jl: Tp(0:jl, jl) = -tau * Tp * (V2 panel^T v2j); the
      // identity blocks of V are mutually orthogonal and contribute nothing.
      for (int il = 0; il < jl; ++il) {
        const double* vi =
            a2.data + static_cast<std::size_t>(j0 + il) * a2.ld;
        const double* vj = a2.data + static_cast<std::size_t>(j) * a2.ld;
        double s = 0.0;
        for (int r = 0; r < b; ++r) s += vi[r] * vj[r];
        tp(il, jl) = -tau * s;
      }
      if (jl > 0) {
        MatrixView tj = tp.block(0, jl, jl, 1);
        trmm_left(UpLo::Upper, Trans::No, Diag::NonUnit,
                  ConstMatrixView(tp.data, jl, jl, tp.ld), tj);
      }
      tp(jl, jl) = tau;
    }

    ConstMatrixView v2p = a2.block(0, j0, b, w);
    const int nc = b - j0 - w;
    if (nc > 0) {
      // Blocked trailing update: W = C1(panel rows) + V2p^T C2; W = T^T W;
      // C1 -= W; C2 -= V2p W.
      MatrixView wk = ws.w1().block(0, 0, w, nc);
      copy(a1.block(j0, j0 + w, w, nc), wk);
      gemm(Trans::Yes, Trans::No, 1.0, v2p, a2.block(0, j0 + w, b, nc), 1.0,
           wk, ws.gemm_ws());
      trmm_left(UpLo::Upper, Trans::Yes, Diag::NonUnit, tp, wk);
      axpy(-1.0, wk, a1.block(j0, j0 + w, w, nc));
      gemm(Trans::No, Trans::No, -1.0, v2p, wk, 1.0,
           a2.block(0, j0 + w, b, nc), ws.gemm_ws());
    }

    if (j0 > 0) {
      // Cross-Gram S = V2(:, 0:j0)^T V2p (the identity parts of V are
      // orthogonal, so only the dense A2 blocks meet).
      MatrixView s = ws.w2().block(0, 0, j0, w);
      gemm(Trans::Yes, Trans::No, 1.0, a2.block(0, 0, b, j0), v2p, 0.0, s,
           ws.gemm_ws());
      detail::merge_cross_t(t, j0, w, s, ws.gemm_ws());
    }
  }
}

void tsmqr(MatrixView c1, MatrixView c2, ConstMatrixView v2, ConstMatrixView t,
           Trans trans, TileWorkspace& ws) {
  const int b = ws.b();
  HQR_CHECK(c1.rows == b && c1.cols == b && c2.rows == b && c2.cols == b &&
                v2.rows == b && v2.cols == b && t.rows == b && t.cols == b,
            "tsmqr expects b x b tiles");
  // V = [I; V2]:  W = C1 + V2^T C2;  W = op(T) W;  C1 -= W;  C2 -= V2 W.
  MatrixView w = ws.w1();
  copy(c1, w);
  gemm(Trans::Yes, Trans::No, 1.0, v2, c2, 1.0, w, ws.gemm_ws());
  trmm_left(UpLo::Upper, trans, Diag::NonUnit, t, w);
  axpy(-1.0, w, c1);
  gemm(Trans::No, Trans::No, -1.0, v2, w, 1.0, c2, ws.gemm_ws());
}

}  // namespace hqr
