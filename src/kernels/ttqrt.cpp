#include "linalg/householder.hpp"
#include "kernels/tile_kernels.hpp"

namespace hqr {

void ttqrt(MatrixView a1, MatrixView a2, MatrixView t, TileWorkspace& ws) {
  const int b = ws.b();
  HQR_CHECK(a1.rows == b && a1.cols == b && a2.rows == b && a2.cols == b &&
                t.rows == b && t.cols == b,
            "ttqrt expects b x b tiles");

  for (int j = 0; j < b; ++j) {
    // Column j of the triangle-on-triangle pencil: pivot a1(j,j), entries
    // a2(0:j+1, j) (the upper triangle of A2 holds R2 then V2).
    double alpha = a1(j, j);
    MatrixView v2j = a2.block(0, j, j + 1, 1);
    const double tau = larfg(j + 2, alpha, v2j);
    a1(j, j) = alpha;

    if (tau != 0.0) {
      // Update trailing columns jj > j: only row j of A1 and rows 0..j of A2
      // participate (the reflector support).
      for (int jj = j + 1; jj < b; ++jj) {
        double w = a1(j, jj);
        for (int i = 0; i <= j; ++i) w += a2(i, j) * a2(i, jj);
        w *= tau;
        a1(j, jj) -= w;
        for (int i = 0; i <= j; ++i) a2(i, jj) -= w * a2(i, j);
      }
    }

    // T column j over the triangular V2 (column i has rows 0..i).
    for (int i = 0; i < j; ++i) {
      double s = 0.0;
      for (int r = 0; r <= i; ++r) s += a2(r, i) * a2(r, j);
      t(i, j) = -tau * s;
    }
    if (j > 0) {
      MatrixView tj = t.block(0, j, j, 1);
      trmm_left(UpLo::Upper, Trans::No, Diag::NonUnit,
                ConstMatrixView(t.data, j, j, t.ld), tj);
    }
    t(j, j) = tau;
  }
}

void ttmqr(MatrixView c1, MatrixView c2, ConstMatrixView v2, ConstMatrixView t,
           Trans trans, TileWorkspace& ws) {
  const int b = ws.b();
  HQR_CHECK(c1.rows == b && c1.cols == b && c2.rows == b && c2.cols == b &&
                v2.rows == b && v2.cols == b && t.rows == b && t.cols == b,
            "ttmqr expects b x b tiles");
  // V = [I; V2] with V2 upper triangular (stored diagonal); only the upper
  // triangle of v2 is data — the strict lower part belongs to the victim's
  // own GEQRT reflectors and must not be read.
  MatrixView w = ws.w1();
  MatrixView w2 = ws.w2();

  // W = C1 + V2^T C2.
  copy(c2, w2);
  trmm_left(UpLo::Upper, Trans::Yes, Diag::NonUnit, v2, w2);
  copy(c1, w);
  axpy(1.0, w2, w);
  // W = op(T) W.
  trmm_left(UpLo::Upper, trans, Diag::NonUnit, t, w);
  // C1 -= W;  C2 -= V2 W.
  axpy(-1.0, w, c1);
  copy(w, w2);
  trmm_left(UpLo::Upper, Trans::No, Diag::NonUnit, v2, w2);
  axpy(-1.0, w2, c2);
}

}  // namespace hqr
