#include "linalg/householder.hpp"
#include "kernels/panel_util.hpp"
#include "kernels/tile_kernels.hpp"

namespace hqr {

void ttqrt(MatrixView a1, MatrixView a2, MatrixView t, TileWorkspace& ws) {
  const int b = ws.b();
  HQR_CHECK(a1.rows == b && a1.cols == b && a2.rows == b && a2.cols == b &&
                t.rows == b && t.cols == b,
            "ttqrt expects b x b tiles");
  const int pw = detail::panel_width(b);

  for (int j0 = 0; j0 < b; j0 += pw) {
    const int w = std::min(pw, b - j0);
    MatrixView tp = t.block(j0, j0, w, w);
    detail::zero_block(tp);

    for (int jl = 0; jl < w; ++jl) {
      const int j = j0 + jl;
      // Column j of the triangle-on-triangle pencil: pivot a1(j,j), entries
      // a2(0:j+1, j) (the upper triangle of A2 holds R2 then V2).
      double alpha = a1(j, j);
      MatrixView v2j = a2.block(0, j, j + 1, 1);
      const double tau = larfg(j + 2, alpha, v2j);
      a1(j, j) = alpha;

      if (tau != 0.0) {
        // Update the remaining panel columns (reflector support is row j of
        // A1 and rows 0..j of A2); trailing columns get one blocked
        // application below.
        for (int jj = j + 1; jj < j0 + w; ++jj) {
          double wv = a1(j, jj);
          for (int i = 0; i <= j; ++i) wv += a2(i, j) * a2(i, jj);
          wv *= tau;
          a1(j, jj) -= wv;
          for (int i = 0; i <= j; ++i) a2(i, jj) -= wv * a2(i, j);
        }
      }

      // Panel T column jl over the triangular V2 (column i has rows 0..i).
      for (int il = 0; il < jl; ++il) {
        double s = 0.0;
        for (int r = 0; r <= j0 + il; ++r) s += a2(r, j0 + il) * a2(r, j);
        tp(il, jl) = -tau * s;
      }
      if (jl > 0) {
        MatrixView tj = tp.block(0, jl, jl, 1);
        trmm_left(UpLo::Upper, Trans::No, Diag::NonUnit,
                  ConstMatrixView(tp.data, jl, jl, tp.ld), tj);
      }
      tp(jl, jl) = tau;
    }

    // Panel reflectors as an explicit trapezoid: column cl has support rows
    // 0..j0+cl (stored diagonal); entries below that belong to the victim's
    // own GEQRT reflectors and must read as zero.
    const int mh = j0 + w;
    MatrixView vtrap = ws.w2().block(0, 0, mh, w);
    for (int c = 0; c < w; ++c)
      for (int r = 0; r < mh; ++r)
        vtrap(r, c) = r <= j0 + c ? a2(r, j0 + c) : 0.0;

    const int nc = b - j0 - w;
    if (nc > 0) {
      // Blocked trailing update over the support rows 0..mh of A2.
      MatrixView wk = ws.w1().block(0, 0, w, nc);
      copy(a1.block(j0, j0 + w, w, nc), wk);
      gemm(Trans::Yes, Trans::No, 1.0, vtrap, a2.block(0, j0 + w, mh, nc),
           1.0, wk, ws.gemm_ws());
      trmm_left(UpLo::Upper, Trans::Yes, Diag::NonUnit, tp, wk);
      axpy(-1.0, wk, a1.block(j0, j0 + w, w, nc));
      gemm(Trans::No, Trans::No, -1.0, vtrap, wk, 1.0,
           a2.block(0, j0 + w, mh, nc), ws.gemm_ws());
    }

    if (j0 > 0) {
      // Cross-Gram S = V2(:, 0:j0)^T Vp: the left columns live in the
      // upper triangle of A2(0:j0, 0:j0) (stored diagonal), and only their
      // rows 0..j0 meet the panel's support.
      MatrixView s = ws.w1().block(0, 0, j0, w);
      copy(a2.block(0, j0, j0, w), s);
      trmm_left(UpLo::Upper, Trans::Yes, Diag::NonUnit,
                ConstMatrixView(a2.data, j0, j0, a2.ld), s);
      detail::merge_cross_t(t, j0, w, s, ws.gemm_ws());
    }
  }
}

void ttmqr(MatrixView c1, MatrixView c2, ConstMatrixView v2, ConstMatrixView t,
           Trans trans, TileWorkspace& ws) {
  const int b = ws.b();
  HQR_CHECK(c1.rows == b && c1.cols == b && c2.rows == b && c2.cols == b &&
                v2.rows == b && v2.cols == b && t.rows == b && t.cols == b,
            "ttmqr expects b x b tiles");
  // V = [I; V2] with V2 upper triangular (stored diagonal); only the upper
  // triangle of v2 is data — the strict lower part belongs to the victim's
  // own GEQRT reflectors and must not be read.
  MatrixView w = ws.w1();
  MatrixView w2 = ws.w2();

  // W = C1 + V2^T C2.
  copy(c2, w2);
  trmm_left(UpLo::Upper, Trans::Yes, Diag::NonUnit, v2, w2);
  copy(c1, w);
  axpy(1.0, w2, w);
  // W = op(T) W.
  trmm_left(UpLo::Upper, trans, Diag::NonUnit, t, w);
  // C1 -= W;  C2 -= V2 W.
  axpy(-1.0, w, c1);
  copy(w, w2);
  trmm_left(UpLo::Upper, Trans::No, Diag::NonUnit, v2, w2);
  axpy(-1.0, w2, c2);
}

}  // namespace hqr
