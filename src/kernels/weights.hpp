// Kernel classification, flop weights and counts (paper §II).
#pragma once

#include <cstdint>
#include <string>

#include "common/check.hpp"

namespace hqr {

enum class KernelType : std::uint8_t {
  GEQRT,
  UNMQR,
  TSQRT,
  TSMQR,
  TTQRT,
  TTMQR,
};

// Number of kernel types and a dense index for per-type arrays
// (RunStats/SimResult breakdowns, metric names).
inline constexpr int kKernelTypeCount = 6;

constexpr int kernel_type_index(KernelType k) {
  return static_cast<int>(k);
}

// Weight in units of b^3/3 floating-point operations (paper §II):
// GEQRT 4, UNMQR 6, TSQRT 6, TSMQR 12, TTQRT 2, TTMQR 6.
constexpr int kernel_weight(KernelType k) {
  switch (k) {
    case KernelType::GEQRT:
      return 4;
    case KernelType::UNMQR:
      return 6;
    case KernelType::TSQRT:
      return 6;
    case KernelType::TSMQR:
      return 12;
    case KernelType::TTQRT:
      return 2;
    case KernelType::TTMQR:
      return 6;
  }
  return 0;
}

// Flops for a kernel on b x b tiles: weight * b^3 / 3.
constexpr double kernel_flops(KernelType k, int b) {
  return kernel_weight(k) * (static_cast<double>(b) * b * b) / 3.0;
}

constexpr bool is_factor_kernel(KernelType k) {
  return k == KernelType::GEQRT || k == KernelType::TSQRT ||
         k == KernelType::TTQRT;
}

inline std::string kernel_name(KernelType k) {
  switch (k) {
    case KernelType::GEQRT:
      return "GEQRT";
    case KernelType::UNMQR:
      return "UNMQR";
    case KernelType::TSQRT:
      return "TSQRT";
    case KernelType::TSMQR:
      return "TSMQR";
    case KernelType::TTQRT:
      return "TTQRT";
    case KernelType::TTMQR:
      return "TTMQR";
  }
  HQR_CHECK(false, "unreachable kernel type");
}

// Total weight of a full m x n tile factorization is 6 m n^2 - 2 n^3 for
// m >= n (paper §II) — checked as a DAG invariant in tests.
constexpr long long total_factorization_weight(long long mt, long long nt) {
  return 6 * mt * nt * nt - 2 * nt * nt * nt;
}

}  // namespace hqr
