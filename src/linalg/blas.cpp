#include "linalg/blas.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/gemm.hpp"

namespace hqr {
namespace {

#if defined(__GNUC__) || defined(__clang__)
#define HQR_RESTRICT __restrict__
#else
#define HQR_RESTRICT
#endif

// Triangular-block size for the blocked trmm path: diagonal blocks stay on
// the scalar loops, everything off-diagonal routes through gemm.
constexpr int kTrmmBlock = 64;

void trmm_left_small(UpLo uplo, Trans ta, Diag diag, ConstMatrixView a,
                     MatrixView b);

// Blocked in-place B = op(A) B with triangular A: partition A into
// kTrmmBlock panels; each row-block of B becomes one small diagonal trmm
// plus one gemm against the strictly-triangular remainder. The visitation
// order (ascending/descending) is chosen so each row-block of B is
// finalized before any block it depends on is overwritten.
void trmm_left_blocked(UpLo uplo, Trans ta, Diag diag, ConstMatrixView a,
                       MatrixView b) {
  const int n = a.rows;
  const int nb = (n + kTrmmBlock - 1) / kTrmmBlock;
  const bool ascending = (uplo == UpLo::Upper) == (ta == Trans::No);
  for (int s = 0; s < nb; ++s) {
    const int bi = ascending ? s : nb - 1 - s;
    const int i0 = bi * kTrmmBlock;
    const int ni = std::min(kTrmmBlock, n - i0);
    MatrixView bi_block{b.data + i0, ni, b.cols, b.ld};
    // Off-diagonal contribution first uses only not-yet-visited row blocks
    // of B, but the diagonal trmm must also read the original B(i0:i0+ni);
    // run the in-place trmm first, then accumulate the gemm.
    ConstMatrixView aii{a.data + static_cast<std::size_t>(i0) * a.ld + i0, ni,
                        ni, a.ld};
    trmm_left_small(uplo, ta, diag, aii, bi_block);
    // The strictly off-diagonal part of row-block bi of op(A): columns
    // j0 < i0 contribute for effective-lower, j0 > i0 for effective-upper.
    const int j0 = ascending ? i0 + ni : 0;
    const int nj = ascending ? n - j0 : i0;
    if (nj == 0) continue;
    const ConstMatrixView arect =
        ta == Trans::No
            ? ConstMatrixView{a.data + static_cast<std::size_t>(j0) * a.ld +
                                  i0,
                              ni, nj, a.ld}
            : ConstMatrixView{a.data + static_cast<std::size_t>(i0) * a.ld +
                                  j0,
                              nj, ni, a.ld};
    ConstMatrixView brect{b.data + j0, nj, b.cols, b.ld};
    gemm(ta, Trans::No, 1.0, arect, brect, 1.0, bi_block);
  }
}

}  // namespace

void gemv(Trans ta, double alpha, ConstMatrixView a, ConstMatrixView x,
          double beta, MatrixView y) {
  HQR_CHECK(x.cols == 1 && y.cols == 1, "gemv expects vectors");
  const int m = ta == Trans::No ? a.rows : a.cols;
  const int k = ta == Trans::No ? a.cols : a.rows;
  HQR_CHECK(x.rows == k, "gemv inner dimension mismatch");
  HQR_CHECK(y.rows == m, "gemv output shape mismatch");
  double* HQR_RESTRICT yv = y.data;
  const double* HQR_RESTRICT xv = x.data;

  if (ta == Trans::No) {
    if (beta == 0.0) {
      for (int i = 0; i < m; ++i) yv[i] = 0.0;
    } else if (beta != 1.0) {
      for (int i = 0; i < m; ++i) yv[i] *= beta;
    }
    if (alpha == 0.0) return;
    // Fused-column accumulation: four columns of A per sweep of y.
    int l = 0;
    for (; l + 4 <= k; l += 4) {
      const double f0 = alpha * xv[l];
      const double f1 = alpha * xv[l + 1];
      const double f2 = alpha * xv[l + 2];
      const double f3 = alpha * xv[l + 3];
      const double* HQR_RESTRICT a0 =
          a.data + static_cast<std::size_t>(l) * a.ld;
      const double* HQR_RESTRICT a1 = a0 + a.ld;
      const double* HQR_RESTRICT a2 = a1 + a.ld;
      const double* HQR_RESTRICT a3 = a2 + a.ld;
      for (int i = 0; i < m; ++i)
        yv[i] += f0 * a0[i] + f1 * a1[i] + f2 * a2[i] + f3 * a3[i];
    }
    for (; l < k; ++l) {
      const double f = alpha * xv[l];
      const double* HQR_RESTRICT al =
          a.data + static_cast<std::size_t>(l) * a.ld;
      for (int i = 0; i < m; ++i) yv[i] += f * al[i];
    }
  } else {
    // y(j) = beta*y(j) + alpha * dot(A(:, j), x): contiguous column dots.
    for (int j = 0; j < m; ++j) {
      const double* HQR_RESTRICT aj =
          a.data + static_cast<std::size_t>(j) * a.ld;
      double s = 0.0;
      for (int l = 0; l < k; ++l) s += aj[l] * xv[l];
      const double base = beta == 0.0 ? 0.0 : beta * yv[j];
      yv[j] = base + alpha * s;
    }
  }
}

void ger(double alpha, ConstMatrixView x, ConstMatrixView y, MatrixView a) {
  HQR_CHECK(x.cols == 1 && y.cols == 1, "ger expects vectors");
  HQR_CHECK(a.rows == x.rows && a.cols == y.rows, "ger shape mismatch");
  if (alpha == 0.0) return;
  const double* HQR_RESTRICT xv = x.data;
  for (int j = 0; j < a.cols; ++j) {
    const double f = alpha * y.data[j];
    if (f == 0.0) continue;
    double* HQR_RESTRICT aj = a.data + static_cast<std::size_t>(j) * a.ld;
    for (int i = 0; i < a.rows; ++i) aj[i] += f * xv[i];
  }
}

// Both triangular routines resolve (uplo, trans) into one of four
// column-major loops up front: the trans cases become contiguous column
// dots, the no-trans cases contiguous column axpy updates. No per-element
// transpose branch (op_at) in any inner loop.
void trmm_left(UpLo uplo, Trans ta, Diag diag, ConstMatrixView a, MatrixView b) {
  HQR_CHECK(a.cols == a.rows, "trmm expects square triangular A");
  HQR_CHECK(b.rows == a.rows, "trmm shape mismatch");
  // Large triangles on the packed backend go through the blocked path so
  // the bulk of the flops lands in the SIMD gemm core. The naive backend
  // keeps the scalar loops — it is the reference oracle.
  if (gemm_backend() == GemmBackend::Packed && a.rows > 2 * kTrmmBlock &&
      b.cols >= 8) {
    trmm_left_blocked(uplo, ta, diag, a, b);
    return;
  }
  trmm_left_small(uplo, ta, diag, a, b);
}

namespace {

void trmm_left_small(UpLo uplo, Trans ta, Diag diag, ConstMatrixView a,
                     MatrixView b) {
  const int n = a.rows;
  const bool unit = diag == Diag::Unit;

  for (int j = 0; j < b.cols; ++j) {
    double* HQR_RESTRICT x = b.data + static_cast<std::size_t>(j) * b.ld;
    if (ta == Trans::No && uplo == UpLo::Upper) {
      // x = A x, A upper: column l contributes a(0:l, l) * x(l); ascending
      // l leaves x(l) unread by earlier steps.
      for (int l = 0; l < n; ++l) {
        const double* HQR_RESTRICT al =
            a.data + static_cast<std::size_t>(l) * a.ld;
        const double xl = x[l];
        for (int i = 0; i < l; ++i) x[i] += al[i] * xl;
        if (!unit) x[l] = al[l] * xl;
      }
    } else if (ta == Trans::No && uplo == UpLo::Lower) {
      // x = A x, A lower: descending l.
      for (int l = n - 1; l >= 0; --l) {
        const double* HQR_RESTRICT al =
            a.data + static_cast<std::size_t>(l) * a.ld;
        const double xl = x[l];
        for (int i = l + 1; i < n; ++i) x[i] += al[i] * xl;
        if (!unit) x[l] = al[l] * xl;
      }
    } else if (ta == Trans::Yes && uplo == UpLo::Upper) {
      // x = A^T x, A upper (effective lower): x(i) = dot(a(0:i+1, i),
      // x(0:i+1)); descending i keeps the inputs live.
      for (int i = n - 1; i >= 0; --i) {
        const double* HQR_RESTRICT ai =
            a.data + static_cast<std::size_t>(i) * a.ld;
        double s = unit ? x[i] : ai[i] * x[i];
        for (int l = 0; l < i; ++l) s += ai[l] * x[l];
        x[i] = s;
      }
    } else {
      // x = A^T x, A lower (effective upper): ascending i.
      for (int i = 0; i < n; ++i) {
        const double* HQR_RESTRICT ai =
            a.data + static_cast<std::size_t>(i) * a.ld;
        double s = unit ? x[i] : ai[i] * x[i];
        for (int l = i + 1; l < n; ++l) s += ai[l] * x[l];
        x[i] = s;
      }
    }
  }
}

}  // namespace

void trsm_left(UpLo uplo, Trans ta, Diag diag, ConstMatrixView a, MatrixView b) {
  const int n = a.rows;
  HQR_CHECK(a.cols == n, "trsm expects square triangular A");
  HQR_CHECK(b.rows == n, "trsm shape mismatch");
  const bool unit = diag == Diag::Unit;

  for (int j = 0; j < b.cols; ++j) {
    double* HQR_RESTRICT x = b.data + static_cast<std::size_t>(j) * b.ld;
    if (ta == Trans::No && uplo == UpLo::Upper) {
      // Back substitution, column form: once x(l) is final, eliminate its
      // contribution from x(0:l) with the contiguous column a(0:l, l).
      for (int l = n - 1; l >= 0; --l) {
        const double* HQR_RESTRICT al =
            a.data + static_cast<std::size_t>(l) * a.ld;
        const double xl = unit ? x[l] : x[l] / al[l];
        x[l] = xl;
        for (int i = 0; i < l; ++i) x[i] -= al[i] * xl;
      }
    } else if (ta == Trans::No && uplo == UpLo::Lower) {
      // Forward substitution, column form.
      for (int l = 0; l < n; ++l) {
        const double* HQR_RESTRICT al =
            a.data + static_cast<std::size_t>(l) * a.ld;
        const double xl = unit ? x[l] : x[l] / al[l];
        x[l] = xl;
        for (int i = l + 1; i < n; ++i) x[i] -= al[i] * xl;
      }
    } else if (ta == Trans::Yes && uplo == UpLo::Upper) {
      // A^T lower: forward substitution via contiguous column dots.
      for (int i = 0; i < n; ++i) {
        const double* HQR_RESTRICT ai =
            a.data + static_cast<std::size_t>(i) * a.ld;
        double s = x[i];
        for (int l = 0; l < i; ++l) s -= ai[l] * x[l];
        x[i] = unit ? s : s / ai[i];
      }
    } else {
      // A^T upper: back substitution via contiguous column dots.
      for (int i = n - 1; i >= 0; --i) {
        const double* HQR_RESTRICT ai =
            a.data + static_cast<std::size_t>(i) * a.ld;
        double s = x[i];
        for (int l = i + 1; l < n; ++l) s -= ai[l] * x[l];
        x[i] = unit ? s : s / ai[i];
      }
    }
  }
}

double nrm2(ConstMatrixView x) {
  HQR_CHECK(x.cols == 1, "nrm2 expects a vector");
  // Two-pass scaled norm for overflow safety, as dlassq would do.
  double scale = 0.0;
  double ssq = 1.0;
  for (int i = 0; i < x.rows; ++i) {
    const double v = std::abs(x(i, 0));
    if (v == 0.0) continue;
    if (scale < v) {
      ssq = 1.0 + ssq * (scale / v) * (scale / v);
      scale = v;
    } else {
      ssq += (v / scale) * (v / scale);
    }
  }
  return scale * std::sqrt(ssq);
}

double dot(ConstMatrixView x, ConstMatrixView y) {
  HQR_CHECK(x.cols == 1 && y.cols == 1 && x.rows == y.rows,
            "dot shape mismatch");
  double s = 0.0;
  for (int i = 0; i < x.rows; ++i) s += x(i, 0) * y(i, 0);
  return s;
}

void scal(double alpha, MatrixView x) {
  HQR_CHECK(x.cols == 1, "scal expects a vector");
  for (int i = 0; i < x.rows; ++i) x(i, 0) *= alpha;
}

}  // namespace hqr
