#include "linalg/blas.hpp"

#include <cmath>

namespace hqr {
namespace {

int op_rows(Trans t, ConstMatrixView a) { return t == Trans::No ? a.rows : a.cols; }
int op_cols(Trans t, ConstMatrixView a) { return t == Trans::No ? a.cols : a.rows; }

double op_at(Trans t, ConstMatrixView a, int i, int j) {
  return t == Trans::No ? a(i, j) : a(j, i);
}

}  // namespace

void gemm(Trans ta, Trans tb, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c) {
  const int m = op_rows(ta, a);
  const int k = op_cols(ta, a);
  const int n = op_cols(tb, b);
  HQR_CHECK(op_rows(tb, b) == k, "gemm inner dimension mismatch");
  HQR_CHECK(c.rows == m && c.cols == n, "gemm output shape mismatch");

  for (int j = 0; j < n; ++j) {
    double* cj = c.data + static_cast<std::size_t>(j) * c.ld;
    if (beta == 0.0) {
      for (int i = 0; i < m; ++i) cj[i] = 0.0;
    } else if (beta != 1.0) {
      for (int i = 0; i < m; ++i) cj[i] *= beta;
    }
    if (alpha == 0.0) continue;

    if (ta == Trans::No) {
      // c(:,j) += alpha * A * op(B)(:,j): accumulate column-by-column of A.
      for (int l = 0; l < k; ++l) {
        const double blj = op_at(tb, b, l, j);
        if (blj == 0.0) continue;
        const double f = alpha * blj;
        const double* al = a.data + static_cast<std::size_t>(l) * a.ld;
        for (int i = 0; i < m; ++i) cj[i] += f * al[i];
      }
    } else {
      // c(i,j) += alpha * dot(A(:,i), op(B)(:,j)).
      for (int i = 0; i < m; ++i) {
        const double* ai = a.data + static_cast<std::size_t>(i) * a.ld;
        double s = 0.0;
        for (int l = 0; l < k; ++l) s += ai[l] * op_at(tb, b, l, j);
        cj[i] += alpha * s;
      }
    }
  }
}

void gemv(Trans ta, double alpha, ConstMatrixView a, ConstMatrixView x,
          double beta, MatrixView y) {
  HQR_CHECK(x.cols == 1 && y.cols == 1, "gemv expects vectors");
  gemm(ta, Trans::No, alpha, a, x, beta, y);
}

void trmm_left(UpLo uplo, Trans ta, Diag diag, ConstMatrixView a, MatrixView b) {
  const int n = a.rows;
  HQR_CHECK(a.cols == n, "trmm expects square triangular A");
  HQR_CHECK(b.rows == n, "trmm shape mismatch");
  const bool unit = diag == Diag::Unit;
  // Effective triangle after transposition.
  const bool upper = (uplo == UpLo::Upper) == (ta == Trans::No);

  for (int j = 0; j < b.cols; ++j) {
    double* bj = b.data + static_cast<std::size_t>(j) * b.ld;
    if (upper) {
      // Row i of op(A) touches bj[i..n): process top-down so inputs are live.
      for (int i = 0; i < n; ++i) {
        double s = unit ? bj[i] : op_at(ta, a, i, i) * bj[i];
        for (int l = i + 1; l < n; ++l) s += op_at(ta, a, i, l) * bj[l];
        bj[i] = s;
      }
    } else {
      // Lower triangular: process bottom-up.
      for (int i = n - 1; i >= 0; --i) {
        double s = unit ? bj[i] : op_at(ta, a, i, i) * bj[i];
        for (int l = 0; l < i; ++l) s += op_at(ta, a, i, l) * bj[l];
        bj[i] = s;
      }
    }
  }
}

void trsm_left(UpLo uplo, Trans ta, Diag diag, ConstMatrixView a, MatrixView b) {
  const int n = a.rows;
  HQR_CHECK(a.cols == n, "trsm expects square triangular A");
  HQR_CHECK(b.rows == n, "trsm shape mismatch");
  const bool unit = diag == Diag::Unit;
  const bool upper = (uplo == UpLo::Upper) == (ta == Trans::No);

  for (int j = 0; j < b.cols; ++j) {
    double* bj = b.data + static_cast<std::size_t>(j) * b.ld;
    if (upper) {
      for (int i = n - 1; i >= 0; --i) {
        double s = bj[i];
        for (int l = i + 1; l < n; ++l) s -= op_at(ta, a, i, l) * bj[l];
        bj[i] = unit ? s : s / op_at(ta, a, i, i);
      }
    } else {
      for (int i = 0; i < n; ++i) {
        double s = bj[i];
        for (int l = 0; l < i; ++l) s -= op_at(ta, a, i, l) * bj[l];
        bj[i] = unit ? s : s / op_at(ta, a, i, i);
      }
    }
  }
}

double nrm2(ConstMatrixView x) {
  HQR_CHECK(x.cols == 1, "nrm2 expects a vector");
  // Two-pass scaled norm for overflow safety, as dlassq would do.
  double scale = 0.0;
  double ssq = 1.0;
  for (int i = 0; i < x.rows; ++i) {
    const double v = std::abs(x(i, 0));
    if (v == 0.0) continue;
    if (scale < v) {
      ssq = 1.0 + ssq * (scale / v) * (scale / v);
      scale = v;
    } else {
      ssq += (v / scale) * (v / scale);
    }
  }
  return scale * std::sqrt(ssq);
}

double dot(ConstMatrixView x, ConstMatrixView y) {
  HQR_CHECK(x.cols == 1 && y.cols == 1 && x.rows == y.rows,
            "dot shape mismatch");
  double s = 0.0;
  for (int i = 0; i < x.rows; ++i) s += x(i, 0) * y(i, 0);
  return s;
}

void scal(double alpha, MatrixView x) {
  HQR_CHECK(x.cols == 1, "scal expects a vector");
  for (int i = 0; i < x.rows; ++i) x(i, 0) *= alpha;
}

}  // namespace hqr
