// Level-1/2/3 BLAS-like primitives on views.
//
// Built from scratch (no external BLAS in this environment); loops are
// ordered for column-major access. These are correctness-first kernels —
// the performance story of the reproduction lives in the simulator's
// calibrated rates, not in these loops.
#pragma once

#include "linalg/matrix.hpp"

namespace hqr {

enum class Trans { No, Yes };

// C = alpha * op(A) * op(B) + beta * C.
void gemm(Trans ta, Trans tb, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c);

// y = alpha * op(A) * x + beta * y   (x, y are n x 1 views).
void gemv(Trans ta, double alpha, ConstMatrixView a, ConstMatrixView x,
          double beta, MatrixView y);

enum class UpLo { Upper, Lower };
enum class Diag { NonUnit, Unit };

// B = op(A) * B where A is triangular (left side multiply).
void trmm_left(UpLo uplo, Trans ta, Diag diag, ConstMatrixView a, MatrixView b);

// Solves op(A) * X = B in place (left side, triangular A).
void trsm_left(UpLo uplo, Trans ta, Diag diag, ConstMatrixView a, MatrixView b);

// Euclidean norm of an n x 1 view.
double nrm2(ConstMatrixView x);

// Dot product of two n x 1 views.
double dot(ConstMatrixView x, ConstMatrixView y);

// x *= alpha for an n x 1 view.
void scal(double alpha, MatrixView x);

}  // namespace hqr
