// Level-1/2/3 BLAS-like primitives on views.
//
// Built from scratch (no external BLAS in this environment). GEMM lives in
// linalg/gemm.hpp (cache-blocked packed core + naive oracle); this header
// holds the triangular, vector and rank-1 primitives. All loops are
// transpose-resolved up front so the inner loops walk contiguous
// column-major memory with no per-element branches.
#pragma once

#include "linalg/gemm.hpp"
#include "linalg/matrix.hpp"

namespace hqr {

// y = alpha * op(A) * x + beta * y   (x, y are n x 1 views). Dedicated
// fused-column implementation (does not route through gemm): the No-trans
// path accumulates four columns of A per sweep of y, the trans path is one
// contiguous dot per column. Used by the Householder kernels.
void gemv(Trans ta, double alpha, ConstMatrixView a, ConstMatrixView x,
          double beta, MatrixView y);

// Rank-1 update A += alpha * x * y^T (x m-vector, y n-vector).
void ger(double alpha, ConstMatrixView x, ConstMatrixView y, MatrixView a);

enum class UpLo { Upper, Lower };
enum class Diag { NonUnit, Unit };

// B = op(A) * B where A is triangular (left side multiply).
void trmm_left(UpLo uplo, Trans ta, Diag diag, ConstMatrixView a, MatrixView b);

// Solves op(A) * X = B in place (left side, triangular A).
void trsm_left(UpLo uplo, Trans ta, Diag diag, ConstMatrixView a, MatrixView b);

// Euclidean norm of an n x 1 view.
double nrm2(ConstMatrixView x);

// Dot product of two n x 1 views.
double dot(ConstMatrixView x, ConstMatrixView y);

// x *= alpha for an n x 1 view.
void scal(double alpha, MatrixView x);

}  // namespace hqr
