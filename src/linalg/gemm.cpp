#include "linalg/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

namespace hqr {
namespace {

#if defined(__GNUC__) || defined(__clang__)
#define HQR_RESTRICT __restrict__
#else
#define HQR_RESTRICT
#endif

// Micro-tile shape: kMR x kNR accumulators live in registers across the k
// loop. 8 x 6 keeps the accumulator file within 16 vector registers on
// AVX2 (2 ymm per column x 6 columns + operands) and well within AVX-512.
constexpr int kMR = 8;
constexpr int kNR = 6;
constexpr std::size_t kAlign = 64;

// HQR_GEMM_BACKEND=naive drops every binary (benches included) onto the
// reference loops without a rebuild — the baseline side of the bench-gated
// speedup tracking.
GemmBackend initial_backend() {
  const char* env = std::getenv("HQR_GEMM_BACKEND");
  if (env != nullptr && std::strcmp(env, "naive") == 0)
    return GemmBackend::Naive;
  return GemmBackend::Packed;
}

GemmBlocking g_blocking{};
std::atomic<GemmBackend> g_backend{initial_backend()};

constexpr int round_up(int x, int to) { return (x + to - 1) / to * to; }

int op_rows(Trans t, ConstMatrixView a) { return t == Trans::No ? a.rows : a.cols; }
int op_cols(Trans t, ConstMatrixView a) { return t == Trans::No ? a.cols : a.rows; }

double op_at(Trans t, ConstMatrixView a, int i, int j) {
  return t == Trans::No ? a(i, j) : a(j, i);
}

std::size_t a_pack_doubles(int m, int k, const GemmBlocking& bl) {
  const int mc = std::min(round_up(m, kMR), std::max(round_up(bl.mc, kMR), kMR));
  const int kc = std::min(k, std::max(bl.kc, 1));
  return static_cast<std::size_t>(mc) * static_cast<std::size_t>(kc);
}

std::size_t b_pack_doubles(int n, int k, const GemmBlocking& bl) {
  const int nc = std::min(round_up(n, kNR), std::max(round_up(bl.nc, kNR), kNR));
  const int kc = std::min(k, std::max(bl.kc, 1));
  return static_cast<std::size_t>(nc) * static_cast<std::size_t>(kc);
}

// C = beta * C, specialized for beta in {0, 1}. Applying beta once up front
// lets every k-block of the packed core use pure accumulation.
void scale_c(double beta, MatrixView c) {
  if (beta == 1.0) return;
  for (int j = 0; j < c.cols; ++j) {
    double* HQR_RESTRICT cj = c.data + static_cast<std::size_t>(j) * c.ld;
    if (beta == 0.0) {
      for (int i = 0; i < c.rows; ++i) cj[i] = 0.0;
    } else {
      for (int i = 0; i < c.rows; ++i) cj[i] *= beta;
    }
  }
}

// Packs op(A)(i0:i0+mc, p0:p0+kc) into kMR-row panels: panel ir holds, for
// each l, the kMR contiguous entries op(A)(i0+ir .. i0+ir+kMR, p0+l),
// zero-padded past the fringe. Trans is resolved here, once per block.
void pack_a(Trans ta, ConstMatrixView a, int i0, int p0, int mc, int kc,
            double* HQR_RESTRICT ap) {
  for (int ir = 0; ir < mc; ir += kMR) {
    const int mr = std::min(kMR, mc - ir);
    if (ta == Trans::No) {
      for (int l = 0; l < kc; ++l) {
        const double* HQR_RESTRICT src =
            a.data + static_cast<std::size_t>(p0 + l) * a.ld + i0 + ir;
        double* HQR_RESTRICT dst = ap + static_cast<std::size_t>(l) * kMR;
        for (int i = 0; i < mr; ++i) dst[i] = src[i];
        for (int i = mr; i < kMR; ++i) dst[i] = 0.0;
      }
    } else {
      // op(A)(i, l) = a(p0+l, i0+i): column i0+ir+i of `a` is contiguous
      // in l, so read column-wise and scatter into the panel.
      for (int i = 0; i < mr; ++i) {
        const double* HQR_RESTRICT src =
            a.data + static_cast<std::size_t>(i0 + ir + i) * a.ld + p0;
        for (int l = 0; l < kc; ++l)
          ap[static_cast<std::size_t>(l) * kMR + i] = src[l];
      }
      for (int i = mr; i < kMR; ++i)
        for (int l = 0; l < kc; ++l)
          ap[static_cast<std::size_t>(l) * kMR + i] = 0.0;
    }
    ap += static_cast<std::size_t>(kc) * kMR;
  }
}

// Packs op(B)(p0:p0+kc, j0:j0+nc) into kNR-column panels: panel jr holds,
// for each l, the kNR entries op(B)(p0+l, j0+jr .. j0+jr+kNR), zero-padded.
void pack_b(Trans tb, ConstMatrixView b, int p0, int j0, int kc, int nc,
            double* HQR_RESTRICT bp) {
  for (int jr = 0; jr < nc; jr += kNR) {
    const int nr = std::min(kNR, nc - jr);
    if (tb == Trans::No) {
      // op(B)(l, j) = b(p0+l, j0+j): column j0+jr+j contiguous in l.
      for (int j = 0; j < nr; ++j) {
        const double* HQR_RESTRICT src =
            b.data + static_cast<std::size_t>(j0 + jr + j) * b.ld + p0;
        for (int l = 0; l < kc; ++l)
          bp[static_cast<std::size_t>(l) * kNR + j] = src[l];
      }
      for (int j = nr; j < kNR; ++j)
        for (int l = 0; l < kc; ++l)
          bp[static_cast<std::size_t>(l) * kNR + j] = 0.0;
    } else {
      // op(B)(l, j) = b(j0+j, p0+l): row slice of column p0+l, contiguous
      // in j.
      for (int l = 0; l < kc; ++l) {
        const double* HQR_RESTRICT src =
            b.data + static_cast<std::size_t>(p0 + l) * b.ld + j0 + jr;
        double* HQR_RESTRICT dst = bp + static_cast<std::size_t>(l) * kNR;
        for (int j = 0; j < nr; ++j) dst[j] = src[j];
        for (int j = nr; j < kNR; ++j) dst[j] = 0.0;
      }
    }
    bp += static_cast<std::size_t>(kc) * kNR;
  }
}

// acc(kMR x kNR, column-major) = sum_l ap(:, l) * bp(l, :) over the packed
// panels. The accumulator block lives in registers across the k loop.
#if defined(__GNUC__) || defined(__clang__)
// One kMR-wide vector per micro-tile column: the compiler lowers it to the
// widest available ISA (1 zmm on AVX-512, 2 ymm on AVX2, 4 xmm on SSE2).
typedef double VecMR __attribute__((vector_size(kMR * sizeof(double))));

inline void micro_kernel(int kc, const double* HQR_RESTRICT ap,
                         const double* HQR_RESTRICT bp,
                         double* HQR_RESTRICT acc) {
  VecMR c0 = {}, c1 = {}, c2 = {}, c3 = {}, c4 = {}, c5 = {};
  static_assert(kNR == 6, "accumulator count is tied to kNR");
  for (int l = 0; l < kc; ++l) {
    // Panels are 64-byte aligned and each l-slice of A is kMR doubles, so
    // this load is aligned.
    const VecMR av = *reinterpret_cast<const VecMR*>(
        __builtin_assume_aligned(ap + static_cast<std::size_t>(l) * kMR, 64));
    const double* HQR_RESTRICT bl = bp + static_cast<std::size_t>(l) * kNR;
    c0 += av * bl[0];
    c1 += av * bl[1];
    c2 += av * bl[2];
    c3 += av * bl[3];
    c4 += av * bl[4];
    c5 += av * bl[5];
  }
  VecMR* out = reinterpret_cast<VecMR*>(__builtin_assume_aligned(acc, 64));
  out[0] = c0;
  out[1] = c1;
  out[2] = c2;
  out[3] = c3;
  out[4] = c4;
  out[5] = c5;
}
#else
inline void micro_kernel(int kc, const double* HQR_RESTRICT ap,
                         const double* HQR_RESTRICT bp,
                         double* HQR_RESTRICT acc) {
  for (int j = 0; j < kMR * kNR; ++j) acc[j] = 0.0;
  for (int l = 0; l < kc; ++l) {
    const double* HQR_RESTRICT al = ap + static_cast<std::size_t>(l) * kMR;
    const double* HQR_RESTRICT bl = bp + static_cast<std::size_t>(l) * kNR;
    for (int j = 0; j < kNR; ++j) {
      const double bv = bl[j];
      for (int i = 0; i < kMR; ++i) acc[j * kMR + i] += al[i] * bv;
    }
  }
}
#endif

// The blocked core: C += alpha * op(A) op(B), beta already applied.
void packed_impl(Trans ta, Trans tb, double alpha, ConstMatrixView a,
                 ConstMatrixView b, MatrixView c, int m, int n, int k,
                 GemmWorkspace& ws) {
  const GemmBlocking bl = gemm_blocking();
  const int mc_max = std::max(round_up(bl.mc, kMR), kMR);
  const int kc_max = std::max(bl.kc, 1);
  const int nc_max = std::max(round_up(bl.nc, kNR), kNR);
  double* const ap = ws.a_pack(a_pack_doubles(m, k, bl));
  double* const bp = ws.b_pack(b_pack_doubles(n, k, bl));

  for (int jc = 0; jc < n; jc += nc_max) {
    const int nc = std::min(nc_max, n - jc);
    for (int pc = 0; pc < k; pc += kc_max) {
      const int kc = std::min(kc_max, k - pc);
      pack_b(tb, b, pc, jc, kc, nc, bp);
      for (int ic = 0; ic < m; ic += mc_max) {
        const int mc = std::min(mc_max, m - ic);
        pack_a(ta, a, ic, pc, mc, kc, ap);
        for (int jr = 0; jr < nc; jr += kNR) {
          const int nr = std::min(kNR, nc - jr);
          const double* bpanel =
              bp + static_cast<std::size_t>(jr / kNR) * kc * kNR;
          for (int ir = 0; ir < mc; ir += kMR) {
            const int mr = std::min(kMR, mc - ir);
            const double* apanel =
                ap + static_cast<std::size_t>(ir / kMR) * kc * kMR;
            alignas(64) double acc[kMR * kNR];
            micro_kernel(kc, apanel, bpanel, acc);
            double* cb =
                c.data + static_cast<std::size_t>(jc + jr) * c.ld + ic + ir;
            if (mr == kMR && nr == kNR) {
              for (int j = 0; j < kNR; ++j) {
                double* HQR_RESTRICT cj =
                    cb + static_cast<std::size_t>(j) * c.ld;
                const double* HQR_RESTRICT accj = acc + j * kMR;
                for (int i = 0; i < kMR; ++i) cj[i] += alpha * accj[i];
              }
            } else {
              for (int j = 0; j < nr; ++j)
                for (int i = 0; i < mr; ++i)
                  cb[static_cast<std::size_t>(j) * c.ld + i] +=
                      alpha * acc[j * kMR + i];
            }
          }
        }
      }
    }
  }
}

// Direct transpose-resolved loops for problems too small to amortize
// packing (narrow ib panels, T-factor updates, fringe blocks). C += only;
// beta already applied.
void small_impl(Trans ta, Trans tb, double alpha, ConstMatrixView a,
                ConstMatrixView b, MatrixView c, int m, int n, int k) {
  if (ta == Trans::No) {
    for (int j = 0; j < n; ++j) {
      double* HQR_RESTRICT cj = c.data + static_cast<std::size_t>(j) * c.ld;
      for (int l = 0; l < k; ++l) {
        const double blj =
            tb == Trans::No
                ? b.data[static_cast<std::size_t>(j) * b.ld + l]
                : b.data[static_cast<std::size_t>(l) * b.ld + j];
        if (blj == 0.0) continue;
        const double f = alpha * blj;
        const double* HQR_RESTRICT al =
            a.data + static_cast<std::size_t>(l) * a.ld;
        for (int i = 0; i < m; ++i) cj[i] += f * al[i];
      }
    }
  } else if (tb == Trans::No) {
    for (int j = 0; j < n; ++j) {
      double* HQR_RESTRICT cj = c.data + static_cast<std::size_t>(j) * c.ld;
      const double* HQR_RESTRICT bj =
          b.data + static_cast<std::size_t>(j) * b.ld;
      for (int i = 0; i < m; ++i) {
        const double* HQR_RESTRICT ai =
            a.data + static_cast<std::size_t>(i) * a.ld;
        double s = 0.0;
        for (int l = 0; l < k; ++l) s += ai[l] * bj[l];
        cj[i] += alpha * s;
      }
    }
  } else {
    for (int j = 0; j < n; ++j) {
      double* HQR_RESTRICT cj = c.data + static_cast<std::size_t>(j) * c.ld;
      for (int i = 0; i < m; ++i) {
        const double* HQR_RESTRICT ai =
            a.data + static_cast<std::size_t>(i) * a.ld;
        double s = 0.0;
        for (int l = 0; l < k; ++l)
          s += ai[l] * b.data[static_cast<std::size_t>(l) * b.ld + j];
        cj[i] += alpha * s;
      }
    }
  }
}

bool small_case(int m, int n, int k) {
  return m < kMR || n < kNR || k < 4 ||
         static_cast<long long>(m) * n * k < 32768;
}

void check_shapes(Trans tb, ConstMatrixView b, MatrixView c, int m, int n,
                  int k) {
  HQR_CHECK(op_rows(tb, b) == k, "gemm inner dimension mismatch");
  HQR_CHECK(c.rows == m && c.cols == n, "gemm output shape mismatch");
}

void free_doubles(double* p) { std::free(p); }

}  // namespace

void set_gemm_blocking(const GemmBlocking& blocking) {
  HQR_CHECK(blocking.mc >= 1 && blocking.kc >= 1 && blocking.nc >= 1,
            "gemm blocking parameters must be >= 1");
  g_blocking = blocking;
}

GemmBlocking gemm_blocking() { return g_blocking; }

void set_gemm_backend(GemmBackend backend) {
  g_backend.store(backend, std::memory_order_relaxed);
}

GemmBackend gemm_backend() {
  return g_backend.load(std::memory_order_relaxed);
}

double* GemmWorkspace::AlignedBuffer::ensure(std::size_t doubles) {
  if (doubles <= capacity && data) return data.get();
  std::size_t bytes = doubles * sizeof(double);
  bytes = (bytes + kAlign - 1) / kAlign * kAlign;
  void* p = std::aligned_alloc(kAlign, bytes);
  HQR_CHECK(p != nullptr, "gemm packing buffer allocation failed");
  data = std::unique_ptr<double[], void (*)(double*)>(
      static_cast<double*>(p), &free_doubles);
  capacity = bytes / sizeof(double);
  return data.get();
}

void GemmWorkspace::reserve(int m, int n, int k) {
  HQR_CHECK(m >= 0 && n >= 0 && k >= 0, "negative dimension");
  if (m == 0 || n == 0 || k == 0) return;
  const GemmBlocking bl = gemm_blocking();
  a_.ensure(a_pack_doubles(m, k, bl));
  b_.ensure(b_pack_doubles(n, k, bl));
}

void gemm(Trans ta, Trans tb, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c, GemmWorkspace& ws) {
  const int m = op_rows(ta, a);
  const int k = op_cols(ta, a);
  const int n = op_cols(tb, b);
  check_shapes(tb, b, c, m, n, k);
  if (gemm_backend() == GemmBackend::Naive) {
    gemm_naive(ta, tb, alpha, a, b, beta, c);
    return;
  }
  scale_c(beta, c);
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0) return;
  if (small_case(m, n, k)) {
    small_impl(ta, tb, alpha, a, b, c, m, n, k);
  } else {
    packed_impl(ta, tb, alpha, a, b, c, m, n, k, ws);
  }
}

void gemm(Trans ta, Trans tb, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c) {
  thread_local GemmWorkspace tls;
  gemm(ta, tb, alpha, a, b, beta, c, tls);
}

void gemm_naive(Trans ta, Trans tb, double alpha, ConstMatrixView a,
                ConstMatrixView b, double beta, MatrixView c) {
  const int m = op_rows(ta, a);
  const int k = op_cols(ta, a);
  const int n = op_cols(tb, b);
  check_shapes(tb, b, c, m, n, k);

  for (int j = 0; j < n; ++j) {
    double* cj = c.data + static_cast<std::size_t>(j) * c.ld;
    if (beta == 0.0) {
      for (int i = 0; i < m; ++i) cj[i] = 0.0;
    } else if (beta != 1.0) {
      for (int i = 0; i < m; ++i) cj[i] *= beta;
    }
    if (alpha == 0.0) continue;

    if (ta == Trans::No) {
      // c(:,j) += alpha * A * op(B)(:,j): accumulate column-by-column of A.
      for (int l = 0; l < k; ++l) {
        const double blj = op_at(tb, b, l, j);
        if (blj == 0.0) continue;
        const double f = alpha * blj;
        const double* al = a.data + static_cast<std::size_t>(l) * a.ld;
        for (int i = 0; i < m; ++i) cj[i] += f * al[i];
      }
    } else {
      // c(i,j) += alpha * dot(A(:,i), op(B)(:,j)).
      for (int i = 0; i < m; ++i) {
        const double* ai = a.data + static_cast<std::size_t>(i) * a.ld;
        double s = 0.0;
        for (int l = 0; l < k; ++l) s += ai[l] * op_at(tb, b, l, j);
        cj[i] += alpha * s;
      }
    }
  }
}

}  // namespace hqr
