#include "linalg/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "linalg/micro_kernel.hpp"

namespace hqr {
namespace {

#if defined(__GNUC__) || defined(__clang__)
#define HQR_RESTRICT __restrict__
#else
#define HQR_RESTRICT
#endif

// The micro-tile shape (mr x nr) comes from the runtime-dispatched
// micro-kernel (linalg/micro_kernel.hpp): the registry picks the widest
// accumulator file the CPU supports, overridable with HQR_KERNEL_ISA.
constexpr std::size_t kAlign = 64;

// HQR_GEMM_BACKEND=naive drops every binary (benches included) onto the
// reference loops without a rebuild — the baseline side of the bench-gated
// speedup tracking.
GemmBackend initial_backend() {
  const char* env = std::getenv("HQR_GEMM_BACKEND");
  if (env != nullptr && std::strcmp(env, "naive") == 0)
    return GemmBackend::Naive;
  return GemmBackend::Packed;
}

GemmBlocking g_blocking{};
std::atomic<GemmBackend> g_backend{initial_backend()};
std::atomic<bool> g_blocking_was_set{false};

constexpr int round_up(int x, int to) { return (x + to - 1) / to * to; }

int op_rows(Trans t, ConstMatrixView a) { return t == Trans::No ? a.rows : a.cols; }
int op_cols(Trans t, ConstMatrixView a) { return t == Trans::No ? a.cols : a.rows; }

double op_at(Trans t, ConstMatrixView a, int i, int j) {
  return t == Trans::No ? a(i, j) : a(j, i);
}

std::size_t a_pack_doubles(int m, int k, const GemmBlocking& bl, int mr) {
  const int mc = std::min(round_up(m, mr), std::max(round_up(bl.mc, mr), mr));
  const int kc = std::min(k, std::max(bl.kc, 1));
  return static_cast<std::size_t>(mc) * static_cast<std::size_t>(kc);
}

std::size_t b_pack_doubles(int n, int k, const GemmBlocking& bl, int nr) {
  const int nc = std::min(round_up(n, nr), std::max(round_up(bl.nc, nr), nr));
  const int kc = std::min(k, std::max(bl.kc, 1));
  return static_cast<std::size_t>(nc) * static_cast<std::size_t>(kc);
}

// C = beta * C, specialized for beta in {0, 1}. Applying beta once up front
// lets every k-block of the packed core use pure accumulation.
void scale_c(double beta, MatrixView c) {
  if (beta == 1.0) return;
  for (int j = 0; j < c.cols; ++j) {
    double* HQR_RESTRICT cj = c.data + static_cast<std::size_t>(j) * c.ld;
    if (beta == 0.0) {
      for (int i = 0; i < c.rows; ++i) cj[i] = 0.0;
    } else {
      for (int i = 0; i < c.rows; ++i) cj[i] *= beta;
    }
  }
}

// Packs op(A)(i0:i0+mc, p0:p0+kc) into kmr-row panels: panel ir holds, for
// each l, the kmr contiguous entries op(A)(i0+ir .. i0+ir+kmr, p0+l),
// zero-padded past the fringe. Trans is resolved here, once per block.
void pack_a(Trans ta, ConstMatrixView a, int i0, int p0, int mc, int kc,
            int kmr, double* HQR_RESTRICT ap) {
  for (int ir = 0; ir < mc; ir += kmr) {
    const int mr = std::min(kmr, mc - ir);
    if (ta == Trans::No) {
      for (int l = 0; l < kc; ++l) {
        const double* HQR_RESTRICT src =
            a.data + static_cast<std::size_t>(p0 + l) * a.ld + i0 + ir;
        double* HQR_RESTRICT dst = ap + static_cast<std::size_t>(l) * kmr;
        for (int i = 0; i < mr; ++i) dst[i] = src[i];
        for (int i = mr; i < kmr; ++i) dst[i] = 0.0;
      }
    } else {
      // op(A)(i, l) = a(p0+l, i0+i): column i0+ir+i of `a` is contiguous
      // in l, so read column-wise and scatter into the panel.
      for (int i = 0; i < mr; ++i) {
        const double* HQR_RESTRICT src =
            a.data + static_cast<std::size_t>(i0 + ir + i) * a.ld + p0;
        for (int l = 0; l < kc; ++l)
          ap[static_cast<std::size_t>(l) * kmr + i] = src[l];
      }
      for (int i = mr; i < kmr; ++i)
        for (int l = 0; l < kc; ++l)
          ap[static_cast<std::size_t>(l) * kmr + i] = 0.0;
    }
    ap += static_cast<std::size_t>(kc) * kmr;
  }
}

// Packs op(B)(p0:p0+kc, j0:j0+nc) into knr-column panels: panel jr holds,
// for each l, the knr entries op(B)(p0+l, j0+jr .. j0+jr+knr), zero-padded.
void pack_b(Trans tb, ConstMatrixView b, int p0, int j0, int kc, int nc,
            int knr, double* HQR_RESTRICT bp) {
  for (int jr = 0; jr < nc; jr += knr) {
    const int nr = std::min(knr, nc - jr);
    if (tb == Trans::No) {
      // op(B)(l, j) = b(p0+l, j0+j): column j0+jr+j contiguous in l.
      for (int j = 0; j < nr; ++j) {
        const double* HQR_RESTRICT src =
            b.data + static_cast<std::size_t>(j0 + jr + j) * b.ld + p0;
        for (int l = 0; l < kc; ++l)
          bp[static_cast<std::size_t>(l) * knr + j] = src[l];
      }
      for (int j = nr; j < knr; ++j)
        for (int l = 0; l < kc; ++l)
          bp[static_cast<std::size_t>(l) * knr + j] = 0.0;
    } else {
      // op(B)(l, j) = b(j0+j, p0+l): row slice of column p0+l, contiguous
      // in j.
      for (int l = 0; l < kc; ++l) {
        const double* HQR_RESTRICT src =
            b.data + static_cast<std::size_t>(p0 + l) * b.ld + j0 + jr;
        double* HQR_RESTRICT dst = bp + static_cast<std::size_t>(l) * knr;
        for (int j = 0; j < nr; ++j) dst[j] = src[j];
        for (int j = nr; j < knr; ++j) dst[j] = 0.0;
      }
    }
    bp += static_cast<std::size_t>(kc) * knr;
  }
}

// The blocked core: C += alpha * op(A) op(B), beta already applied. The
// micro-kernel (and thus the register-tile shape) is the runtime-dispatched
// active kernel.
void packed_impl(Trans ta, Trans tb, double alpha, ConstMatrixView a,
                 ConstMatrixView b, MatrixView c, int m, int n, int k,
                 GemmWorkspace& ws) {
  const MicroKernel& mk = active_micro_kernel();
  const int kmr = mk.mr;
  const int knr = mk.nr;
  const GemmBlocking bl = gemm_blocking();
  const int mc_max = std::max(round_up(bl.mc, kmr), kmr);
  const int kc_max = std::max(bl.kc, 1);
  const int nc_max = std::max(round_up(bl.nc, knr), knr);
  double* const ap = ws.a_pack(a_pack_doubles(m, k, bl, kmr));
  double* const bp = ws.b_pack(b_pack_doubles(n, k, bl, knr));

  for (int jc = 0; jc < n; jc += nc_max) {
    const int nc = std::min(nc_max, n - jc);
    for (int pc = 0; pc < k; pc += kc_max) {
      const int kc = std::min(kc_max, k - pc);
      pack_b(tb, b, pc, jc, kc, nc, knr, bp);
      for (int ic = 0; ic < m; ic += mc_max) {
        const int mc = std::min(mc_max, m - ic);
        pack_a(ta, a, ic, pc, mc, kc, kmr, ap);
        for (int jr = 0; jr < nc; jr += knr) {
          const int nr = std::min(knr, nc - jr);
          const double* bpanel =
              bp + static_cast<std::size_t>(jr / knr) * kc * knr;
          for (int ir = 0; ir < mc; ir += kmr) {
            const int mr = std::min(kmr, mc - ir);
            const double* apanel =
                ap + static_cast<std::size_t>(ir / kmr) * kc * kmr;
            alignas(64) double acc[kMaxMicroMR * kMaxMicroNR];
            mk.fn(kc, apanel, bpanel, acc);
            double* cb =
                c.data + static_cast<std::size_t>(jc + jr) * c.ld + ic + ir;
            if (mr == kmr && nr == knr) {
              for (int j = 0; j < knr; ++j) {
                double* HQR_RESTRICT cj =
                    cb + static_cast<std::size_t>(j) * c.ld;
                const double* HQR_RESTRICT accj = acc + j * kmr;
                for (int i = 0; i < kmr; ++i) cj[i] += alpha * accj[i];
              }
            } else {
              for (int j = 0; j < nr; ++j)
                for (int i = 0; i < mr; ++i)
                  cb[static_cast<std::size_t>(j) * c.ld + i] +=
                      alpha * acc[j * kmr + i];
            }
          }
        }
      }
    }
  }
}

// Direct transpose-resolved loops for problems too small to amortize
// packing (narrow ib panels, T-factor updates, fringe blocks). C += only;
// beta already applied.
void small_impl(Trans ta, Trans tb, double alpha, ConstMatrixView a,
                ConstMatrixView b, MatrixView c, int m, int n, int k) {
  if (ta == Trans::No) {
    for (int j = 0; j < n; ++j) {
      double* HQR_RESTRICT cj = c.data + static_cast<std::size_t>(j) * c.ld;
      for (int l = 0; l < k; ++l) {
        const double blj =
            tb == Trans::No
                ? b.data[static_cast<std::size_t>(j) * b.ld + l]
                : b.data[static_cast<std::size_t>(l) * b.ld + j];
        if (blj == 0.0) continue;
        const double f = alpha * blj;
        const double* HQR_RESTRICT al =
            a.data + static_cast<std::size_t>(l) * a.ld;
        for (int i = 0; i < m; ++i) cj[i] += f * al[i];
      }
    }
  } else if (tb == Trans::No) {
    for (int j = 0; j < n; ++j) {
      double* HQR_RESTRICT cj = c.data + static_cast<std::size_t>(j) * c.ld;
      const double* HQR_RESTRICT bj =
          b.data + static_cast<std::size_t>(j) * b.ld;
      for (int i = 0; i < m; ++i) {
        const double* HQR_RESTRICT ai =
            a.data + static_cast<std::size_t>(i) * a.ld;
        double s = 0.0;
        for (int l = 0; l < k; ++l) s += ai[l] * bj[l];
        cj[i] += alpha * s;
      }
    }
  } else {
    for (int j = 0; j < n; ++j) {
      double* HQR_RESTRICT cj = c.data + static_cast<std::size_t>(j) * c.ld;
      for (int i = 0; i < m; ++i) {
        const double* HQR_RESTRICT ai =
            a.data + static_cast<std::size_t>(i) * a.ld;
        double s = 0.0;
        for (int l = 0; l < k; ++l)
          s += ai[l] * b.data[static_cast<std::size_t>(l) * b.ld + j];
        cj[i] += alpha * s;
      }
    }
  }
}

// Kernel-independent thresholds: the packed/small split must not depend on
// which micro-kernel is active, or forcing HQR_KERNEL_ISA=portable would
// change the accumulation order and break bit-identity with the SIMD path.
bool small_case(int m, int n, int k) {
  return m < 8 || n < 4 || k < 4 ||
         static_cast<long long>(m) * n * k < 32768;
}

void check_shapes(Trans tb, ConstMatrixView b, MatrixView c, int m, int n,
                  int k) {
  HQR_CHECK(op_rows(tb, b) == k, "gemm inner dimension mismatch");
  HQR_CHECK(c.rows == m && c.cols == n, "gemm output shape mismatch");
}

void free_doubles(double* p) { std::free(p); }

}  // namespace

void set_gemm_blocking(const GemmBlocking& blocking) {
  HQR_CHECK(blocking.mc >= 1 && blocking.kc >= 1 && blocking.nc >= 1,
            "gemm blocking parameters must be >= 1");
  g_blocking = blocking;
  g_blocking_was_set.store(true, std::memory_order_relaxed);
}

GemmBlocking gemm_blocking() { return g_blocking; }

bool gemm_blocking_was_set() {
  return g_blocking_was_set.load(std::memory_order_relaxed);
}

void set_gemm_backend(GemmBackend backend) {
  g_backend.store(backend, std::memory_order_relaxed);
}

GemmBackend gemm_backend() {
  return g_backend.load(std::memory_order_relaxed);
}

double* GemmWorkspace::AlignedBuffer::ensure(std::size_t doubles) {
  if (doubles <= capacity && data) return data.get();
  std::size_t bytes = doubles * sizeof(double);
  bytes = (bytes + kAlign - 1) / kAlign * kAlign;
  void* p = std::aligned_alloc(kAlign, bytes);
  HQR_CHECK(p != nullptr, "gemm packing buffer allocation failed");
  data = std::unique_ptr<double[], void (*)(double*)>(
      static_cast<double*>(p), &free_doubles);
  capacity = bytes / sizeof(double);
  return data.get();
}

void GemmWorkspace::reserve(int m, int n, int k) {
  HQR_CHECK(m >= 0 && n >= 0 && k >= 0, "negative dimension");
  if (m == 0 || n == 0 || k == 0) return;
  const GemmBlocking bl = gemm_blocking();
  // Size for the widest registered shape so a later kernel switch (autotune,
  // HQR_KERNEL_ISA) never forces a realloc mid-run.
  a_.ensure(a_pack_doubles(m, k, bl, kMaxMicroMR));
  b_.ensure(b_pack_doubles(n, k, bl, kMaxMicroNR));
}

void gemm(Trans ta, Trans tb, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c, GemmWorkspace& ws) {
  const int m = op_rows(ta, a);
  const int k = op_cols(ta, a);
  const int n = op_cols(tb, b);
  check_shapes(tb, b, c, m, n, k);
  if (gemm_backend() == GemmBackend::Naive) {
    gemm_naive(ta, tb, alpha, a, b, beta, c);
    return;
  }
  scale_c(beta, c);
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0) return;
  if (small_case(m, n, k)) {
    small_impl(ta, tb, alpha, a, b, c, m, n, k);
  } else {
    packed_impl(ta, tb, alpha, a, b, c, m, n, k, ws);
  }
}

void gemm(Trans ta, Trans tb, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c) {
  thread_local GemmWorkspace tls;
  gemm(ta, tb, alpha, a, b, beta, c, tls);
}

void gemm_naive(Trans ta, Trans tb, double alpha, ConstMatrixView a,
                ConstMatrixView b, double beta, MatrixView c) {
  const int m = op_rows(ta, a);
  const int k = op_cols(ta, a);
  const int n = op_cols(tb, b);
  check_shapes(tb, b, c, m, n, k);

  for (int j = 0; j < n; ++j) {
    double* cj = c.data + static_cast<std::size_t>(j) * c.ld;
    if (beta == 0.0) {
      for (int i = 0; i < m; ++i) cj[i] = 0.0;
    } else if (beta != 1.0) {
      for (int i = 0; i < m; ++i) cj[i] *= beta;
    }
    if (alpha == 0.0) continue;

    if (ta == Trans::No) {
      // c(:,j) += alpha * A * op(B)(:,j): accumulate column-by-column of A.
      for (int l = 0; l < k; ++l) {
        const double blj = op_at(tb, b, l, j);
        if (blj == 0.0) continue;
        const double f = alpha * blj;
        const double* al = a.data + static_cast<std::size_t>(l) * a.ld;
        for (int i = 0; i < m; ++i) cj[i] += f * al[i];
      }
    } else {
      // c(i,j) += alpha * dot(A(:,i), op(B)(:,j)).
      for (int i = 0; i < m; ++i) {
        const double* ai = a.data + static_cast<std::size_t>(i) * a.ld;
        double s = 0.0;
        for (int l = 0; l < k; ++l) s += ai[l] * op_at(tb, b, l, j);
        cj[i] += alpha * s;
      }
    }
  }
}

}  // namespace hqr
