// Cache-blocked, register-tiled GEMM core.
//
// This is the compute engine under all six tile kernels. The design follows
// the classic Goto/BLIS decomposition:
//
//   - op(A) and op(B) are packed into contiguous, 64-byte-aligned panels
//     once per cache block, resolving `Trans` at pack time so the inner
//     loops never branch on it;
//   - an unrolled kMR x kNR (8 x 6) micro-kernel accumulates a register
//     block over the packed panels (FMA-friendly with -O3 on any
//     SSE2/AVX2/AVX-512 target);
//   - three blocking parameters MC/KC/NC stage the packed panels in
//     L2 / L1 / L3 respectively (see set_gemm_blocking to retune);
//   - fringe tiles, beta in {0, 1} and small problems (where packing
//     overhead would dominate, e.g. the narrow ib-blocked T-factor
//     updates) take specialized edge paths.
//
// The previous naive triple loop is retained verbatim as `gemm_naive` — it
// is the correctness oracle for tests and the baseline for bench-gated
// speedup tracking (see set_gemm_backend / bench_kernels).
#pragma once

#include <cstddef>
#include <memory>

#include "linalg/matrix.hpp"

namespace hqr {

enum class Trans { No, Yes };

// Cache blocking parameters: C is computed in NC-wide column slabs, each
// accumulated over KC-deep panels of op(A)/op(B), with op(A) packed in
// MC x KC blocks. Defaults target a ~32K L1 / ~1M L2 core; retune with
// set_gemm_blocking (values are rounded up to the micro-tile shape).
struct GemmBlocking {
  int mc = 144;
  int kc = 256;
  int nc = 4092;
};

// Process-wide blocking used by subsequently-created packing buffers.
// Not thread-safe against concurrent gemm calls; set it at startup or in
// single-threaded test/tuning code.
void set_gemm_blocking(const GemmBlocking& blocking);
GemmBlocking gemm_blocking();

// True once set_gemm_blocking has been called in this process. The lazy
// tuning-cache hook (kernel_tuning.hpp) checks this so a deliberate
// blocking choice made before the first TileWorkspace is never clobbered.
bool gemm_blocking_was_set();

// Backend selector for benchmarking and differential testing: Packed is
// the production cache-blocked core, Naive the retained reference loops.
// Setting HQR_GEMM_BACKEND=naive in the environment selects Naive at
// startup (so any bench binary can produce its own baseline run).
enum class GemmBackend { Packed, Naive };
void set_gemm_backend(GemmBackend backend);
GemmBackend gemm_backend();

// Reusable packing buffers for the blocked core. One per worker thread
// (TileWorkspace owns one); gemm() grows them on demand and never shrinks,
// so steady-state calls allocate nothing.
class GemmWorkspace {
 public:
  GemmWorkspace() = default;

  // Pre-sizes the buffers for products up to (m x k) * (k x n) under the
  // current blocking so later gemm calls never allocate.
  void reserve(int m, int n, int k);

  // Aligned scratch of at least `doubles` entries (grown geometrically).
  double* a_pack(std::size_t doubles) { return a_.ensure(doubles); }
  double* b_pack(std::size_t doubles) { return b_.ensure(doubles); }

 private:
  struct AlignedBuffer {
    std::unique_ptr<double[], void (*)(double*)> data{nullptr, nullptr};
    std::size_t capacity = 0;

    double* ensure(std::size_t doubles);
  };

  AlignedBuffer a_, b_;
};

// C = alpha * op(A) * op(B) + beta * C through the selected backend. The
// workspace-less overload uses a thread-local GemmWorkspace.
void gemm(Trans ta, Trans tb, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c);
void gemm(Trans ta, Trans tb, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c, GemmWorkspace& ws);

// Reference implementation (the pre-blocking loops), kept as the
// correctness oracle and benchmark baseline.
void gemm_naive(Trans ta, Trans tb, double alpha, ConstMatrixView a,
                ConstMatrixView b, double beta, MatrixView c);

}  // namespace hqr
