#include "linalg/householder.hpp"

#include <cmath>

namespace hqr {

double larfg(int n, double& alpha, MatrixView x) {
  HQR_CHECK(x.cols == 1 && x.rows == n - 1, "larfg shape mismatch");
  if (n <= 1) return 0.0;
  const double xnorm = nrm2(x);
  if (xnorm == 0.0) return 0.0;  // already in the desired form

  double beta = -std::copysign(std::hypot(alpha, xnorm), alpha);
  // Guard against underflow in beta as dlarfg does (rescale loop).
  constexpr double safmin = 2.00416836000897278e-292;  // ~DBL_MIN/eps
  int rescale = 0;
  double a = alpha;
  double xn = xnorm;
  while (std::abs(beta) < safmin && rescale < 20) {
    const double inv = 1.0 / safmin;
    scal(inv, x);
    a *= inv;
    xn = nrm2(x);
    beta = -std::copysign(std::hypot(a, xn), a);
    ++rescale;
  }
  const double tau = (beta - a) / beta;
  scal(1.0 / (a - beta), x);
  for (int r = 0; r < rescale; ++r) beta *= safmin;
  alpha = beta;
  return tau;
}

void larf_left(double tau, ConstMatrixView v_tail, MatrixView c,
               MatrixView work) {
  if (tau == 0.0) return;
  const int m = c.rows;
  const int n = c.cols;
  HQR_CHECK(v_tail.cols == 1 && v_tail.rows == m - 1, "larf shape mismatch");
  HQR_CHECK(work.rows >= n && work.cols == 1, "larf work too small");
  MatrixView w = work.block(0, 0, n, 1);

  // w = C^T * v  (v(0) = 1 implicit): the tail rows are one fused gemv,
  // then the implicit unit adds C's top row.
  if (m > 1) {
    gemv(Trans::Yes, 1.0, c.block(1, 0, m - 1, n), v_tail, 0.0, w);
    for (int j = 0; j < n; ++j) w(j, 0) += c(0, j);
  } else {
    for (int j = 0; j < n; ++j) w(j, 0) = c(0, j);
  }
  // C -= tau * v * w^T: top row explicitly, tail rows as a rank-1 ger.
  for (int j = 0; j < n; ++j) c(0, j) -= tau * w(j, 0);
  if (m > 1) ger(-tau, v_tail, w, c.block(1, 0, m - 1, n));
}

void larft_column(ConstMatrixView v, int j, double tau, MatrixView t) {
  const int m = v.rows;
  HQR_CHECK(j >= 0 && j < v.cols && t.rows >= j + 1 && t.cols >= j + 1,
            "larft shape mismatch");
  if (tau == 0.0) {
    for (int i = 0; i < j; ++i) t(i, j) = 0.0;
    t(j, j) = 0.0;
    return;
  }
  // t(0:j, j) = -tau * V(:, 0:j)^T * v_j, exploiting the unit-lower structure:
  // v_j has implicit 1 at row j and stored entries in rows j+1..m-1.
  for (int i = 0; i < j; ++i) {
    // Column i of V: implicit 1 at row i, stored entries rows i+1..m-1.
    double s = v(j, i);  // row j of column i times the implicit v_j(j) = 1
    for (int r = j + 1; r < m; ++r) s += v(r, i) * v(r, j);
    t(i, j) = -tau * s;
  }
  // t(0:j, j) = T(0:j, 0:j) * t(0:j, j)   (triangular multiply, in place).
  if (j > 0) {
    MatrixView tj = t.block(0, j, j, 1);
    trmm_left(UpLo::Upper, Trans::No, Diag::NonUnit,
              ConstMatrixView(t.data, j, j, t.ld), tj);
  }
  t(j, j) = tau;
}

void larfb_left(Trans trans, ConstMatrixView v, ConstMatrixView t, MatrixView c,
                MatrixView work, GemmWorkspace* gws) {
  const int m = c.rows;
  const int n = c.cols;
  const int k = v.cols;
  HQR_CHECK(v.rows == m && t.rows == k && t.cols == k, "larfb shape mismatch");
  HQR_CHECK(work.rows >= k && work.cols >= n, "larfb work too small");
  if (k == 0) return;
  MatrixView w = work.block(0, 0, k, n);
  const auto mm = [&](Trans ta, Trans tb, double alpha, ConstMatrixView ma,
                      ConstMatrixView mb, double beta, MatrixView mc) {
    if (gws)
      gemm(ta, tb, alpha, ma, mb, beta, mc, *gws);
    else
      gemm(ta, tb, alpha, ma, mb, beta, mc);
  };

  // W = V^T * C with V unit-lower-trapezoidal:
  // top k x k block is unit lower triangular, bottom (m-k) x k is dense.
  copy(c.block(0, 0, k, n), w);
  trmm_left(UpLo::Lower, Trans::Yes, Diag::Unit, v.block(0, 0, k, k), w);
  if (m > k) {
    mm(Trans::Yes, Trans::No, 1.0, v.block(k, 0, m - k, k),
       c.block(k, 0, m - k, n), 1.0, w);
  }
  // W = op(T) * W.
  trmm_left(UpLo::Upper, trans, Diag::NonUnit, t, w);
  // C -= V * W.
  if (m > k) {
    mm(Trans::No, Trans::No, -1.0, v.block(k, 0, m - k, k), w, 1.0,
       c.block(k, 0, m - k, n));
  }
  // Top block: C(0:k,:) -= V1 * W with V1 unit lower triangular.
  // Compute V1 * W into a temporary path: reuse w in place.
  trmm_left(UpLo::Lower, Trans::No, Diag::Unit, v.block(0, 0, k, k), w);
  axpy(-1.0, w, c.block(0, 0, k, n));
}

}  // namespace hqr
