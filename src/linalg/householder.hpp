// Householder reflector machinery (LAPACK larfg/larf/larft/larfb analogues).
//
// Conventions follow LAPACK: a reflector H = I - tau * v * v^T with v(0) = 1
// stored implicitly; block reflectors use the compact-WY form
// Q = I - V * T * V^T with V unit-lower-trapezoidal and T upper triangular.
#pragma once

#include "linalg/blas.hpp"
#include "linalg/matrix.hpp"

namespace hqr {

// Generates a Householder reflector for the vector [alpha; x] such that
// H * [alpha; x] = [beta; 0]. On return alpha holds beta, x holds v(1:) (with
// v(0) = 1 implicit), and tau is returned. x is an (n-1) x 1 view; n is the
// full vector length. If the input is already [alpha; 0], tau = 0.
double larfg(int n, double& alpha, MatrixView x);

// Applies H = I - tau * v * v^T from the left to C, where v is an m x 1 view
// with v(0) = 1 implicit (v.data points at v(1); v has m-1 stored entries).
// work must have at least C.cols entries. Implemented as one gemv (w = C^T v)
// plus one ger (C -= tau v w^T).
void larf_left(double tau, ConstMatrixView v_tail, MatrixView c,
               MatrixView work);

// Forms the j-th column of T from V (unit lower trapezoidal, m x k) and tau:
// T(0:j, j) = -tau * T(0:j, 0:j) * V(:, 0:j)^T * V(:, j), T(j,j) = tau.
// Called incrementally as factorizations progress. V(:, j) has its implicit
// unit at row j.
void larft_column(ConstMatrixView v, int j, double tau, MatrixView t);

// Applies the block reflector Q = I - V T V^T (or Q^T) from the left to C.
// V is m x k unit-lower-trapezoidal, T is k x k upper triangular.
// work must be k x C.cols. `gws` (optional) supplies reusable GEMM packing
// buffers — kernel code passes its TileWorkspace's buffers so no task
// allocates; when null a thread-local workspace is used.
void larfb_left(Trans trans, ConstMatrixView v, ConstMatrixView t, MatrixView c,
                MatrixView work, GemmWorkspace* gws = nullptr);

}  // namespace hqr
