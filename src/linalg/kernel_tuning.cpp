#include "linalg/kernel_tuning.hpp"

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>

#include "linalg/micro_kernel.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace hqr {
namespace {

constexpr const char* kSchema = "hqr-tuning-v1";

std::string cpu_brand_string() {
#if defined(__x86_64__) || defined(__i386__)
  unsigned int regs[4] = {0, 0, 0, 0};
  if (__get_cpuid(0x80000000u, &regs[0], &regs[1], &regs[2], &regs[3]) &&
      regs[0] >= 0x80000004u) {
    char brand[49] = {};
    for (unsigned int leaf = 0; leaf < 3; ++leaf) {
      __get_cpuid(0x80000002u + leaf, &regs[0], &regs[1], &regs[2], &regs[3]);
      std::memcpy(brand + leaf * 16, regs, 16);
    }
    return brand;
  }
#endif
  return "generic";
}

// Minimal flat-JSON field extraction: enough for the single-object file
// this module writes. Returns false when the key is absent.
bool json_string(const std::string& text, const std::string& key,
                 std::string& out) {
  const std::string needle = "\"" + key + "\"";
  std::size_t p = text.find(needle);
  if (p == std::string::npos) return false;
  p = text.find(':', p + needle.size());
  if (p == std::string::npos) return false;
  p = text.find('"', p);
  if (p == std::string::npos) return false;
  const std::size_t q = text.find('"', p + 1);
  if (q == std::string::npos) return false;
  out = text.substr(p + 1, q - p - 1);
  return true;
}

bool json_int(const std::string& text, const std::string& key, int& out) {
  const std::string needle = "\"" + key + "\"";
  std::size_t p = text.find(needle);
  if (p == std::string::npos) return false;
  p = text.find(':', p + needle.size());
  if (p == std::string::npos) return false;
  ++p;
  while (p < text.size() && std::isspace(static_cast<unsigned char>(text[p])))
    ++p;
  char* end = nullptr;
  const long v = std::strtol(text.c_str() + p, &end, 10);
  if (end == text.c_str() + p) return false;
  out = static_cast<int>(v);
  return true;
}

std::once_flag g_apply_once;

}  // namespace

KernelTuning default_kernel_tuning() {
  KernelTuning t;
  t.cpu = tuning_cpu_id();
  t.kernel = "";  // best supported
  t.blocking = GemmBlocking{};
  t.householder_panel = 32;
  return t;
}

std::string tuning_cpu_id() {
  const std::string brand = cpu_brand_string();
  std::string id;
  bool dash = true;  // collapse runs, no leading dash
  for (const char ch : brand) {
    const unsigned char u = static_cast<unsigned char>(ch);
    if (std::isalnum(u)) {
      id.push_back(static_cast<char>(std::tolower(u)));
      dash = false;
    } else if (!dash) {
      id.push_back('-');
      dash = true;
    }
  }
  while (!id.empty() && id.back() == '-') id.pop_back();
  return id.empty() ? "generic" : id;
}

std::string default_tuning_path() {
  if (const char* env = std::getenv("HQR_TUNING_FILE"); env && env[0])
    return env;
  std::string base;
  if (const char* xdg = std::getenv("XDG_CACHE_HOME"); xdg && xdg[0]) {
    base = xdg;
  } else if (const char* home = std::getenv("HOME"); home && home[0]) {
    base = std::string(home) + "/.cache";
  } else {
    base = ".";
  }
  return base + "/hqr/tuning-" + tuning_cpu_id() + ".json";
}

bool load_kernel_tuning(const std::string& path, KernelTuning& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  std::string schema;
  if (!json_string(text, "schema", schema) || schema != kSchema) return false;
  KernelTuning t;
  if (!json_string(text, "cpu", t.cpu)) return false;
  json_string(text, "kernel", t.kernel);
  if (!json_int(text, "mc", t.blocking.mc) ||
      !json_int(text, "kc", t.blocking.kc) ||
      !json_int(text, "nc", t.blocking.nc))
    return false;
  if (!json_int(text, "householder_panel", t.householder_panel)) return false;
  if (t.blocking.mc < 1 || t.blocking.kc < 1 || t.blocking.nc < 1 ||
      t.householder_panel < 4)
    return false;
  out = t;
  return true;
}

bool save_kernel_tuning(const std::string& path, const KernelTuning& tuning) {
  std::error_code ec;
  const std::filesystem::path p(path);
  if (p.has_parent_path())
    std::filesystem::create_directories(p.parent_path(), ec);
  std::ofstream outf(path, std::ios::trunc);
  if (!outf) return false;
  outf << "{\n"
       << "  \"schema\": \"" << kSchema << "\",\n"
       << "  \"cpu\": \"" << tuning.cpu << "\",\n"
       << "  \"kernel\": \"" << tuning.kernel << "\",\n"
       << "  \"mc\": " << tuning.blocking.mc << ",\n"
       << "  \"kc\": " << tuning.blocking.kc << ",\n"
       << "  \"nc\": " << tuning.blocking.nc << ",\n"
       << "  \"householder_panel\": " << tuning.householder_panel << "\n"
       << "}\n";
  return static_cast<bool>(outf);
}

void apply_kernel_tuning(const KernelTuning& tuning) {
  set_gemm_blocking(tuning.blocking);
  set_householder_panel(tuning.householder_panel);
  const char* isa_env = std::getenv("HQR_KERNEL_ISA");
  if ((isa_env == nullptr || isa_env[0] == '\0') && !tuning.kernel.empty())
    set_active_micro_kernel(tuning.kernel);  // no-op on unknown/unsupported
}

void ensure_tuning_applied() {
  std::call_once(g_apply_once, [] {
    const char* mode = std::getenv("HQR_TUNING");
    if (mode != nullptr && std::strcmp(mode, "off") == 0) return;
    KernelTuning t;
    if (!load_kernel_tuning(default_tuning_path(), t)) return;
    // A cache produced on another machine is stale for this one: ignore it
    // (the defaults are already in effect).
    if (t.cpu != tuning_cpu_id()) return;
    // Apply piecewise, skipping any knob already chosen deliberately
    // (tests and tools set these before constructing workspaces).
    if (!gemm_blocking_was_set()) set_gemm_blocking(t.blocking);
    if (!householder_panel_was_set())
      set_householder_panel(t.householder_panel);
    if (!micro_kernel_was_set() && !t.kernel.empty())
      set_active_micro_kernel(t.kernel);  // no-op on unknown/unsupported
  });
}

}  // namespace hqr
