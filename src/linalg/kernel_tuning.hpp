// Persistent per-host kernel tuning.
//
// The empirical tuner (core/kernel_tune.hpp, driven by tools/hqr_tune)
// searches the micro-kernel shape, GEMM cache blocking, and Householder
// panel width for the host CPU and saves the winner to a small versioned
// JSON file keyed by the CPU brand string:
//
//   {$XDG_CACHE_HOME|~/.cache}/hqr/tuning-<cpu-id>.json
//
// This module owns the file format and the consumption side: the first
// TileWorkspace construction calls ensure_tuning_applied(), which loads the
// cache (or falls back to the built-in defaults) and installs the
// parameters process-wide. Environment overrides:
//
//   HQR_TUNING=off       skip the cache entirely (built-in defaults stay)
//   HQR_TUNING_FILE=...  read this file instead of the per-host path
//   HQR_KERNEL_ISA=...   always wins over the cached micro-kernel choice
#pragma once

#include <string>

#include "linalg/gemm.hpp"

namespace hqr {

struct KernelTuning {
  std::string cpu;     // tuning_cpu_id() of the machine that produced it
  std::string kernel;  // micro-kernel name or ISA tier ("" = best supported)
  GemmBlocking blocking{};
  int householder_panel = 32;
};

// Built-in defaults: current GEMM blocking, panel width 32, best supported
// micro-kernel. Used whenever no (valid) cache file exists.
KernelTuning default_kernel_tuning();

// Stable per-host identifier derived from the CPU brand string (cpuid
// leaves 0x80000002..4), sanitized to [a-z0-9-]; "generic" off x86.
std::string tuning_cpu_id();

// The per-host cache path (HQR_TUNING_FILE > XDG_CACHE_HOME > ~/.cache).
std::string default_tuning_path();

// Reads `path`; false on missing file, schema mismatch, or parse error
// (out is left untouched). A cpu mismatch does NOT fail the load — callers
// decide whether cross-host parameters are acceptable.
bool load_kernel_tuning(const std::string& path, KernelTuning& out);

// Writes `path` (creating parent directories); false on I/O failure.
bool save_kernel_tuning(const std::string& path, const KernelTuning& tuning);

// Installs blocking + panel width + micro-kernel process-wide. The kernel
// is skipped when HQR_KERNEL_ISA is set (explicit override) or when the
// named kernel is unknown/unsupported on this CPU.
void apply_kernel_tuning(const KernelTuning& tuning);

// Idempotent startup hook: applies the cached tuning for this host if a
// valid cache matches tuning_cpu_id(), the built-in defaults otherwise.
// HQR_TUNING=off disables the cache lookup (defaults are NOT re-applied,
// so test-set blocking survives).
void ensure_tuning_applied();

}  // namespace hqr
