#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace hqr {

void copy(ConstMatrixView src, MatrixView dst) {
  HQR_CHECK(src.rows == dst.rows && src.cols == dst.cols,
            "copy shape mismatch: " << src.rows << "x" << src.cols << " vs "
                                    << dst.rows << "x" << dst.cols);
  for (int j = 0; j < src.cols; ++j) {
    const double* s = src.data + static_cast<std::size_t>(j) * src.ld;
    double* d = dst.data + static_cast<std::size_t>(j) * dst.ld;
    std::copy(s, s + src.rows, d);
  }
}

Matrix materialize(ConstMatrixView src) {
  Matrix m(src.rows, src.cols);
  copy(src, m.view());
  return m;
}

void set_zero(MatrixView dst) {
  for (int j = 0; j < dst.cols; ++j) {
    double* d = dst.data + static_cast<std::size_t>(j) * dst.ld;
    std::fill(d, d + dst.rows, 0.0);
  }
}

void set_identity(MatrixView dst) {
  set_zero(dst);
  const int n = std::min(dst.rows, dst.cols);
  for (int i = 0; i < n; ++i) dst(i, i) = 1.0;
}

void axpy(double alpha, ConstMatrixView src, MatrixView dst) {
  HQR_CHECK(src.rows == dst.rows && src.cols == dst.cols, "axpy shape mismatch");
  for (int j = 0; j < src.cols; ++j) {
    const double* s = src.data + static_cast<std::size_t>(j) * src.ld;
    double* d = dst.data + static_cast<std::size_t>(j) * dst.ld;
    for (int i = 0; i < src.rows; ++i) d[i] += alpha * s[i];
  }
}

double max_abs_diff(ConstMatrixView a, ConstMatrixView b) {
  HQR_CHECK(a.rows == b.rows && a.cols == b.cols, "diff shape mismatch");
  double m = 0.0;
  for (int j = 0; j < a.cols; ++j)
    for (int i = 0; i < a.rows; ++i)
      m = std::max(m, std::abs(a(i, j) - b(i, j)));
  return m;
}

}  // namespace hqr
