// Dense column-major matrix storage and lightweight views.
//
// `Matrix` owns its storage (leading dimension == rows). `MatrixView` /
// `ConstMatrixView` are non-owning strided references used by all kernels so
// that tiles, panels and blocks can alias owned storage without copies.
#pragma once

#include <vector>

#include "common/check.hpp"

namespace hqr {

struct ConstMatrixView;

// Non-owning mutable view of a column-major block.
struct MatrixView {
  double* data = nullptr;
  int rows = 0;
  int cols = 0;
  int ld = 0;  // leading dimension (stride between columns)

  MatrixView() = default;
  MatrixView(double* d, int r, int c, int l) : data(d), rows(r), cols(c), ld(l) {
    HQR_ASSERT(r >= 0 && c >= 0 && l >= r, "bad view shape");
  }

  double& operator()(int i, int j) const {
    HQR_ASSERT(i >= 0 && i < rows && j >= 0 && j < cols,
               "index (" << i << "," << j << ") out of " << rows << "x" << cols);
    return data[static_cast<std::size_t>(j) * ld + i];
  }

  // Sub-block of size nr x nc starting at (i0, j0).
  MatrixView block(int i0, int j0, int nr, int nc) const {
    HQR_ASSERT(i0 >= 0 && j0 >= 0 && i0 + nr <= rows && j0 + nc <= cols,
               "block out of range");
    return MatrixView(data + static_cast<std::size_t>(j0) * ld + i0, nr, nc, ld);
  }

  // Column j as an nr x 1 view starting at row i0.
  MatrixView col(int j, int i0 = 0) const { return block(i0, j, rows - i0, 1); }
};

// Non-owning read-only view.
struct ConstMatrixView {
  const double* data = nullptr;
  int rows = 0;
  int cols = 0;
  int ld = 0;

  ConstMatrixView() = default;
  ConstMatrixView(const double* d, int r, int c, int l)
      : data(d), rows(r), cols(c), ld(l) {
    HQR_ASSERT(r >= 0 && c >= 0 && l >= r, "bad view shape");
  }
  // Implicit widening from a mutable view.
  ConstMatrixView(const MatrixView& v)  // NOLINT(google-explicit-constructor)
      : data(v.data), rows(v.rows), cols(v.cols), ld(v.ld) {}

  double operator()(int i, int j) const {
    HQR_ASSERT(i >= 0 && i < rows && j >= 0 && j < cols,
               "index (" << i << "," << j << ") out of " << rows << "x" << cols);
    return data[static_cast<std::size_t>(j) * ld + i];
  }

  ConstMatrixView block(int i0, int j0, int nr, int nc) const {
    HQR_ASSERT(i0 >= 0 && j0 >= 0 && i0 + nr <= rows && j0 + nc <= cols,
               "block out of range");
    return ConstMatrixView(data + static_cast<std::size_t>(j0) * ld + i0, nr, nc,
                           ld);
  }

  ConstMatrixView col(int j, int i0 = 0) const {
    return block(i0, j, rows - i0, 1);
  }
};

// Owning dense column-major matrix, leading dimension == rows.
class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols) : rows_(rows), cols_(cols) {
    HQR_CHECK(rows >= 0 && cols >= 0, "negative dimension");
    data_.assign(static_cast<std::size_t>(rows) * cols, 0.0);
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  double& operator()(int i, int j) {
    HQR_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_, "index out of range");
    return data_[static_cast<std::size_t>(j) * rows_ + i];
  }
  double operator()(int i, int j) const {
    HQR_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_, "index out of range");
    return data_[static_cast<std::size_t>(j) * rows_ + i];
  }

  MatrixView view() { return MatrixView(data_.data(), rows_, cols_, rows_); }
  ConstMatrixView view() const {
    return ConstMatrixView(data_.data(), rows_, cols_, rows_);
  }
  MatrixView block(int i0, int j0, int nr, int nc) {
    return view().block(i0, j0, nr, nc);
  }
  ConstMatrixView block(int i0, int j0, int nr, int nc) const {
    return view().block(i0, j0, nr, nc);
  }

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

  // n x n identity.
  static Matrix identity(int n) {
    Matrix m(n, n);
    for (int i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  const std::vector<double>& storage() const { return data_; }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

// Deep copy helpers between (possibly strided) views.
void copy(ConstMatrixView src, MatrixView dst);
// Owning copy of a view.
Matrix materialize(ConstMatrixView src);
// Sets dst to zero.
void set_zero(MatrixView dst);
// Sets dst to the identity pattern (1 on diagonal, 0 elsewhere).
void set_identity(MatrixView dst);
// Elementwise dst += alpha * src.
void axpy(double alpha, ConstMatrixView src, MatrixView dst);
// Max |a(i,j) - b(i,j)|.
double max_abs_diff(ConstMatrixView a, ConstMatrixView b);

}  // namespace hqr
