#include "linalg/micro_kernel.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/check.hpp"

namespace hqr {
namespace detail {

void mk_portable_8x6(int kc, const double* ap, const double* bp, double* acc);
#if defined(HQR_HAVE_AVX2_KERNELS)
void mk_avx2_8x6(int kc, const double* ap, const double* bp, double* acc);
void mk_avx2_12x4(int kc, const double* ap, const double* bp, double* acc);
#endif
#if defined(HQR_HAVE_AVX512_KERNELS)
void mk_avx512_16x8(int kc, const double* ap, const double* bp, double* acc);
void mk_avx512_24x8(int kc, const double* ap, const double* bp, double* acc);
#endif

}  // namespace detail

namespace {

#if (defined(__GNUC__) || defined(__clang__)) && \
    (defined(__x86_64__) || defined(__i386__))
bool cpu_has_avx2_fma() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}
bool cpu_has_avx512f() { return __builtin_cpu_supports("avx512f"); }
#else
bool cpu_has_avx2_fma() { return false; }
bool cpu_has_avx512f() { return false; }
#endif

std::vector<MicroKernel> build_registry() {
  std::vector<MicroKernel> r;
  r.push_back({"portable-8x6", "portable", 8, 6, &detail::mk_portable_8x6});
#if defined(HQR_HAVE_AVX2_KERNELS)
  r.push_back({"avx2-12x4", "avx2", 12, 4, &detail::mk_avx2_12x4});
  r.push_back({"avx2-8x6", "avx2", 8, 6, &detail::mk_avx2_8x6});
#endif
#if defined(HQR_HAVE_AVX512_KERNELS)
  r.push_back({"avx512-24x8", "avx512", 24, 8, &detail::mk_avx512_24x8});
  r.push_back({"avx512-16x8", "avx512", 16, 8, &detail::mk_avx512_16x8});
#endif
  for (const MicroKernel& k : r)
    HQR_CHECK(k.mr <= kMaxMicroMR && k.nr <= kMaxMicroNR,
              "micro-kernel " << k.name << " exceeds kMaxMicro bounds");
  return r;
}

std::atomic<const MicroKernel*>& active_slot() {
  static std::atomic<const MicroKernel*> slot{nullptr};
  return slot;
}

// Best supported kernel: the last registry entry whose ISA the CPU runs
// (registry order encodes preference).
const MicroKernel& best_supported() {
  const std::vector<MicroKernel>& reg = micro_kernel_registry();
  const MicroKernel* best = &reg.front();
  for (const MicroKernel& k : reg)
    if (micro_kernel_isa_supported(k.isa)) best = &k;
  return *best;
}

const MicroKernel& initial_kernel() {
  const char* env = std::getenv("HQR_KERNEL_ISA");
  if (env != nullptr && env[0] != '\0') {
    const MicroKernel* k = find_micro_kernel(env);
    if (k == nullptr) {
      std::fprintf(stderr,
                   "hqr: HQR_KERNEL_ISA=%s names no compiled-in kernel; "
                   "using %s\n",
                   env, best_supported().name);
    } else if (!micro_kernel_isa_supported(k->isa)) {
      std::fprintf(stderr,
                   "hqr: HQR_KERNEL_ISA=%s is not supported by this CPU; "
                   "using %s\n",
                   env, best_supported().name);
    } else {
      return *k;
    }
  }
  return best_supported();
}

std::atomic<int> g_householder_panel{32};
std::atomic<bool> g_kernel_was_set{false};
std::atomic<bool> g_panel_was_set{false};

}  // namespace

const std::vector<MicroKernel>& micro_kernel_registry() {
  static const std::vector<MicroKernel> registry = build_registry();
  return registry;
}

bool micro_kernel_isa_supported(const std::string& isa) {
  if (isa == "portable") return true;
  if (isa == "avx2") return cpu_has_avx2_fma();
  if (isa == "avx512") return cpu_has_avx512f();
  return false;
}

const MicroKernel* find_micro_kernel(const std::string& name_or_isa) {
  const std::vector<MicroKernel>& reg = micro_kernel_registry();
  const MicroKernel* tier_pick = nullptr;
  for (const MicroKernel& k : reg) {
    if (name_or_isa == k.name) return &k;
    if (name_or_isa == k.isa) tier_pick = &k;  // last of tier wins
  }
  return tier_pick;
}

const MicroKernel& active_micro_kernel() {
  const MicroKernel* k = active_slot().load(std::memory_order_acquire);
  if (k == nullptr) {
    // Benign race: initial_kernel() is deterministic, so concurrent first
    // calls store the same pointer.
    k = &initial_kernel();
    active_slot().store(k, std::memory_order_release);
  }
  return *k;
}

bool set_active_micro_kernel(const std::string& name_or_isa) {
  const MicroKernel* k = find_micro_kernel(name_or_isa);
  if (k == nullptr || !micro_kernel_isa_supported(k->isa)) return false;
  active_slot().store(k, std::memory_order_release);
  g_kernel_was_set.store(true, std::memory_order_relaxed);
  return true;
}

void set_active_micro_kernel(const MicroKernel& kernel) {
  active_slot().store(&kernel, std::memory_order_release);
  g_kernel_was_set.store(true, std::memory_order_relaxed);
}

bool micro_kernel_was_set() {
  if (g_kernel_was_set.load(std::memory_order_relaxed)) return true;
  const char* env = std::getenv("HQR_KERNEL_ISA");
  return env != nullptr && env[0] != '\0';
}

bool householder_panel_was_set() {
  return g_panel_was_set.load(std::memory_order_relaxed);
}

void set_householder_panel(int width) {
  g_householder_panel.store(width < 4 ? 4 : width, std::memory_order_relaxed);
  g_panel_was_set.store(true, std::memory_order_relaxed);
}

int householder_panel() {
  return g_householder_panel.load(std::memory_order_relaxed);
}

}  // namespace hqr
