// Runtime-dispatched GEMM micro-kernels.
//
// The packed GEMM core (linalg/gemm.cpp) accumulates register blocks of
// shape MR x NR over packed panels. Different ISAs want different shapes:
// the portable GCC-vector 8x6 kernel works everywhere, but AVX2's 16 ymm
// registers and AVX-512's 32 zmm registers support wider accumulator files
// (more independent FMA chains, which is what hides FMA latency). Each
// variant lives in its own translation unit compiled with exactly the ISA
// flags it needs, so a baseline (-DHQR_NATIVE_ARCH=OFF) build still carries
// the SIMD kernels and selects them by cpuid at runtime.
//
// Selection order at startup: the HQR_KERNEL_ISA environment variable (an
// ISA tier like "avx2" or an exact kernel name like "avx512-24x8"), then
// the per-host tuning cache (linalg/kernel_tuning.hpp), then the best
// supported tier. All kernels accumulate each output element as one fused
// multiply-add chain over k in ascending order, so — given identical
// blocking — every variant produces bit-identical GEMM results on FMA
// hardware (the differential tests pin this).
#pragma once

#include <string>
#include <vector>

namespace hqr {

// acc (mr x nr, column-major, leading dimension mr, 64-byte aligned) =
// sum_l ap(:, l) * bp(l, :) over the packed panels (ap holds mr-row
// l-slices, bp holds nr-column l-slices, both zero-padded to shape).
using MicroKernelFn = void (*)(int kc, const double* ap, const double* bp,
                               double* acc);

struct MicroKernel {
  const char* name;  // e.g. "avx512-24x8"
  const char* isa;   // "portable" | "avx2" | "avx512"
  int mr;
  int nr;
  MicroKernelFn fn;
};

// Upper bounds over every registered shape: the packed core sizes its
// accumulator block and fringe handling with these.
constexpr int kMaxMicroMR = 24;
constexpr int kMaxMicroNR = 8;

// Every compiled-in variant, portable first, then ascending ISA tiers in
// ascending preference within a tier (the default pick for a tier is its
// last supported entry).
const std::vector<MicroKernel>& micro_kernel_registry();

// True when the running CPU can execute kernels of this tier ("portable"
// is always true; "avx2" requires AVX2+FMA, "avx512" requires AVX-512F).
bool micro_kernel_isa_supported(const std::string& isa);

// The kernel the packed core currently dispatches to. First call resolves
// HQR_KERNEL_ISA / best-supported as described above.
const MicroKernel& active_micro_kernel();

// Forces a kernel by exact name or ISA tier. Returns false (active kernel
// unchanged) when the name is unknown or the CPU cannot run it.
bool set_active_micro_kernel(const std::string& name_or_isa);
void set_active_micro_kernel(const MicroKernel& kernel);

// True once a kernel / panel width has been set explicitly (setter or
// HQR_KERNEL_ISA); the lazy tuning-cache hook checks these so deliberate
// choices made before the first TileWorkspace are never clobbered.
bool micro_kernel_was_set();
bool householder_panel_was_set();

// Looks up a kernel by exact name or ISA tier (best of tier); nullptr when
// unknown. Does not check CPU support.
const MicroKernel* find_micro_kernel(const std::string& name_or_isa);

// Process-wide panel width used by the full-T (ib = 0) Householder kernels
// to aggregate their reflector updates into packed rank-k GEMMs. A tuning
// knob like the GEMM blocking (mathematically invisible — the factors stay
// the same compact-WY form); clamped to >= 4.
void set_householder_panel(int width);
int householder_panel();

}  // namespace hqr
