// Shared implementation template for the GEMM micro-kernel variants.
//
// Included only by the per-ISA translation units (micro_kernels_*.cpp),
// each of which is compiled with exactly the ISA flags its instantiations
// need. MR x NR accumulators are held as MR/VL GCC extension vectors of VL
// doubles per column; with constant template bounds the loops fully unroll
// and the accumulator array lives in registers across the k loop.
//
// Determinism contract (relied on by the dispatch differential tests):
// every output element acc(i, j) is one multiply-add chain over l in
// ascending order. The per-ISA TUs are all compiled with
// -ffp-contract=fast, so on FMA hardware every variant — any MR/NR/VL —
// produces bit-identical accumulators for the same packed panels.
#pragma once

#include <cstddef>

namespace hqr {
namespace detail {

#if defined(__GNUC__) || defined(__clang__)
#define HQR_MK_RESTRICT __restrict__
#else
#define HQR_MK_RESTRICT
#endif

template <int MR, int NR, int VL>
struct MicroKernelImpl {
  static_assert(MR % VL == 0, "rows must be a whole number of vectors");
  static constexpr int kRV = MR / VL;

#if defined(__GNUC__) || defined(__clang__)
  typedef double Vec __attribute__((vector_size(VL * sizeof(double))));

  static void run(int kc, const double* HQR_MK_RESTRICT ap,
                  const double* HQR_MK_RESTRICT bp,
                  double* HQR_MK_RESTRICT acc) {
    Vec c[kRV][NR] = {};
    for (int l = 0; l < kc; ++l) {
      // Panels are 64-byte aligned and each l-slice of A is MR doubles
      // (MR % VL == 0), so every vector load below is VL*8-aligned.
      const double* HQR_MK_RESTRICT al =
          ap + static_cast<std::size_t>(l) * MR;
      const double* HQR_MK_RESTRICT bl =
          bp + static_cast<std::size_t>(l) * NR;
      Vec a[kRV];
      for (int r = 0; r < kRV; ++r)
        a[r] = *static_cast<const Vec*>(
            __builtin_assume_aligned(al + r * VL, VL * sizeof(double)));
      for (int j = 0; j < NR; ++j)
        for (int r = 0; r < kRV; ++r) c[r][j] += a[r] * bl[j];
    }
    for (int j = 0; j < NR; ++j)
      for (int r = 0; r < kRV; ++r)
        *static_cast<Vec*>(__builtin_assume_aligned(
            acc + static_cast<std::size_t>(j) * MR + r * VL,
            VL * sizeof(double))) = c[r][j];
  }
#else
  static void run(int kc, const double* HQR_MK_RESTRICT ap,
                  const double* HQR_MK_RESTRICT bp,
                  double* HQR_MK_RESTRICT acc) {
    for (int j = 0; j < MR * NR; ++j) acc[j] = 0.0;
    for (int l = 0; l < kc; ++l) {
      const double* al = ap + static_cast<std::size_t>(l) * MR;
      const double* bl = bp + static_cast<std::size_t>(l) * NR;
      for (int j = 0; j < NR; ++j) {
        const double bv = bl[j];
        for (int i = 0; i < MR; ++i) acc[j * MR + i] += al[i] * bv;
      }
    }
  }
#endif
};

}  // namespace detail
}  // namespace hqr
