// AVX2+FMA micro-kernels (this TU is compiled with -mavx2 -mfma even in
// baseline builds; runtime cpuid dispatch guards execution).
//
// 16 ymm registers budget the shapes: 8x6 uses 12 accumulators + 2 A
// vectors + 1 broadcast; 12x4 uses 12 accumulators + 3 A vectors + 1
// broadcast (a taller tile for matrices with few columns).
#include "linalg/micro_kernel_impl.hpp"

namespace hqr {
namespace detail {

void mk_avx2_8x6(int kc, const double* ap, const double* bp, double* acc) {
  MicroKernelImpl<8, 6, 4>::run(kc, ap, bp, acc);
}

void mk_avx2_12x4(int kc, const double* ap, const double* bp, double* acc) {
  MicroKernelImpl<12, 4, 4>::run(kc, ap, bp, acc);
}

}  // namespace detail
}  // namespace hqr
