// AVX-512 micro-kernels (this TU is compiled with -mavx512f -mavx512dq
// -mfma even in baseline builds; runtime cpuid dispatch guards execution).
//
// 32 zmm registers allow wide accumulator files — the portable 8x6 shape
// keeps only 6 independent FMA chains per zmm column, which stalls on FMA
// latency (4-5 cycles x 2 pipes wants >= 8-10 chains). 16x8 holds 16
// accumulators + 2 A vectors; 24x8 holds 24 accumulators + 3 A vectors
// (the classic BLIS dgemm shape for this register file).
#include "linalg/micro_kernel_impl.hpp"

namespace hqr {
namespace detail {

void mk_avx512_16x8(int kc, const double* ap, const double* bp, double* acc) {
  MicroKernelImpl<16, 8, 8>::run(kc, ap, bp, acc);
}

void mk_avx512_24x8(int kc, const double* ap, const double* bp, double* acc) {
  MicroKernelImpl<24, 8, 8>::run(kc, ap, bp, acc);
}

}  // namespace detail
}  // namespace hqr
