// Portable micro-kernel: the original 8x6 GCC-vector shape, compiled with
// the build's baseline architecture flags so it runs on any target. One
// vector_size(64) accumulator per column — the compiler lowers it to
// whatever the baseline ISA provides (4 xmm on SSE2, 2 ymm on AVX2, 1 zmm
// on AVX-512 under -march=native).
#include "linalg/micro_kernel_impl.hpp"

namespace hqr {
namespace detail {

void mk_portable_8x6(int kc, const double* ap, const double* bp, double* acc) {
  MicroKernelImpl<8, 6, 8>::run(kc, ap, bp, acc);
}

}  // namespace detail
}  // namespace hqr
