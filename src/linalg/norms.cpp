#include "linalg/norms.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "linalg/blas.hpp"

namespace hqr {

double frobenius_norm(ConstMatrixView a) {
  double scale = 0.0;
  double ssq = 1.0;
  for (int j = 0; j < a.cols; ++j) {
    for (int i = 0; i < a.rows; ++i) {
      const double v = std::abs(a(i, j));
      if (v == 0.0) continue;
      if (scale < v) {
        ssq = 1.0 + ssq * (scale / v) * (scale / v);
        scale = v;
      } else {
        ssq += (v / scale) * (v / scale);
      }
    }
  }
  return scale * std::sqrt(ssq);
}

double one_norm(ConstMatrixView a) {
  double best = 0.0;
  for (int j = 0; j < a.cols; ++j) {
    double s = 0.0;
    for (int i = 0; i < a.rows; ++i) s += std::abs(a(i, j));
    best = std::max(best, s);
  }
  return best;
}

double inf_norm(ConstMatrixView a) {
  std::vector<double> rowsum(a.rows, 0.0);
  for (int j = 0; j < a.cols; ++j)
    for (int i = 0; i < a.rows; ++i) rowsum[i] += std::abs(a(i, j));
  double best = 0.0;
  for (double s : rowsum) best = std::max(best, s);
  return best;
}

double max_norm(ConstMatrixView a) {
  double best = 0.0;
  for (int j = 0; j < a.cols; ++j)
    for (int i = 0; i < a.rows; ++i) best = std::max(best, std::abs(a(i, j)));
  return best;
}

double orthogonality_error(ConstMatrixView q) {
  HQR_CHECK(q.rows >= q.cols, "orthogonality check expects tall Q");
  Matrix g(q.cols, q.cols);
  gemm(Trans::Yes, Trans::No, 1.0, q, q, 0.0, g.view());
  for (int i = 0; i < q.cols; ++i) g(i, i) -= 1.0;
  return frobenius_norm(g.view());
}

double factorization_residual(ConstMatrixView a, ConstMatrixView q,
                              ConstMatrixView r) {
  HQR_CHECK(q.rows == a.rows && r.cols == a.cols && q.cols == r.rows,
            "residual shape mismatch");
  Matrix qr(a.rows, a.cols);
  // Zero out anything below the diagonal of R defensively: callers pass the
  // factored tile matrix whose lower part holds Householder vectors.
  Matrix rr(r.rows, r.cols);
  for (int j = 0; j < r.cols; ++j)
    for (int i = 0; i <= std::min(j, r.rows - 1); ++i) rr(i, j) = r(i, j);
  gemm(Trans::No, Trans::No, 1.0, q, rr.view(), 0.0, qr.view());
  axpy(-1.0, a, qr.view());
  const double na = frobenius_norm(a);
  return frobenius_norm(qr.view()) / (na > 0.0 ? na : 1.0);
}

}  // namespace hqr
