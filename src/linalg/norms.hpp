// Matrix norms and the residual/orthogonality checks used throughout the
// tests, examples and benches (the paper's §V-A correctness protocol).
#pragma once

#include "linalg/matrix.hpp"

namespace hqr {

double frobenius_norm(ConstMatrixView a);
double one_norm(ConstMatrixView a);   // max column sum
double inf_norm(ConstMatrixView a);   // max row sum
double max_norm(ConstMatrixView a);   // max |a_ij|

// ||Q^T Q - I||_F where Q is m x n with m >= n (orthonormal columns check).
double orthogonality_error(ConstMatrixView q);

// ||A - Q R||_F / ||A||_F. R may be rectangular; only its upper triangle is
// used. Q is m x n, R is n x cols(A).
double factorization_residual(ConstMatrixView a, ConstMatrixView q,
                              ConstMatrixView r);

}  // namespace hqr
