#include "linalg/random_matrix.hpp"

#include <cmath>

#include "linalg/blas.hpp"

namespace hqr {

Matrix random_uniform(int rows, int cols, Rng& rng) {
  Matrix m(rows, cols);
  for (int j = 0; j < cols; ++j)
    for (int i = 0; i < rows; ++i) m(i, j) = rng.uniform(-1.0, 1.0);
  return m;
}

Matrix random_gaussian(int rows, int cols, Rng& rng) {
  Matrix m(rows, cols);
  for (int j = 0; j < cols; ++j)
    for (int i = 0; i < rows; ++i) m(i, j) = rng.gaussian();
  return m;
}

Matrix random_graded(int rows, int cols, double decades, Rng& rng) {
  Matrix m = random_gaussian(rows, cols, rng);
  for (int j = 0; j < cols; ++j) {
    const double e = cols > 1 ? decades * j / (cols - 1) : 0.0;
    const double s = std::pow(10.0, -e);
    for (int i = 0; i < rows; ++i) m(i, j) *= s;
  }
  return m;
}

Matrix random_near_rank_deficient(int rows, int cols, int rank, double perturb,
                                  Rng& rng) {
  HQR_CHECK(rank >= 0 && rank <= cols, "rank out of range");
  Matrix left = random_gaussian(rows, rank, rng);
  Matrix right = random_gaussian(rank, cols, rng);
  Matrix m(rows, cols);
  gemm(Trans::No, Trans::No, 1.0, left.view(), right.view(), 0.0, m.view());
  if (perturb > 0.0) {
    for (int j = 0; j < cols; ++j)
      for (int i = 0; i < rows; ++i) m(i, j) += perturb * rng.gaussian();
  }
  return m;
}

}  // namespace hqr
