// Random test-matrix generation.
#pragma once

#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace hqr {

// Entries i.i.d. uniform in [-1, 1].
Matrix random_uniform(int rows, int cols, Rng& rng);

// Entries i.i.d. standard normal.
Matrix random_gaussian(int rows, int cols, Rng& rng);

// Matrix with geometrically graded column scales (condition ~ 10^decades):
// column j scaled by 10^(-decades * j / (cols-1)). Stresses the numerics.
Matrix random_graded(int rows, int cols, double decades, Rng& rng);

// Tall matrix whose columns are nearly linearly dependent: rank-deficient to
// within `perturb` (used to check small-R-diagonal handling; the tile QR must
// still deliver A = QR even when R is nearly singular).
Matrix random_near_rank_deficient(int rows, int cols, int rank, double perturb,
                                  Rng& rng);

}  // namespace hqr
