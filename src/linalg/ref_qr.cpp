#include "linalg/ref_qr.hpp"

#include <algorithm>

#include "linalg/blas.hpp"
#include "linalg/householder.hpp"

namespace hqr {
namespace {

// Factor columns [j0, j0+w) of `a` in place, assuming columns to the left are
// already factored; appends taus. Applies reflectors only within the panel.
void factor_panel(Matrix& a, int j0, int w, std::vector<double>& tau) {
  const int m = a.rows();
  Matrix work(a.cols(), 1);
  for (int j = j0; j < j0 + w; ++j) {
    const int rows_below = m - j;
    double alpha = a(j, j);
    MatrixView x = rows_below > 1 ? a.block(j + 1, j, rows_below - 1, 1)
                                  : MatrixView(nullptr, 0, 1, 1);
    const double t = larfg(rows_below, alpha, x);
    a(j, j) = alpha;
    tau.push_back(t);
    // Apply H_j to the remaining panel columns.
    const int trailing = j0 + w - (j + 1);
    if (trailing > 0 && t != 0.0) {
      // Temporarily treat a(j,j) as the implicit 1.
      MatrixView c = a.block(j, j + 1, rows_below, trailing);
      larf_left(t, x, c, work.view());
    }
  }
}

}  // namespace

RefQR ref_qr_unblocked(const Matrix& a) {
  RefQR qr{a, {}};
  const int k = std::min(a.rows(), a.cols());
  qr.tau.reserve(k);
  const int m = a.rows();
  const int n = a.cols();
  Matrix work(n, 1);
  for (int j = 0; j < k; ++j) {
    const int rows_below = m - j;
    double alpha = qr.a(j, j);
    MatrixView x = rows_below > 1 ? qr.a.block(j + 1, j, rows_below - 1, 1)
                                  : MatrixView(nullptr, 0, 1, 1);
    const double t = larfg(rows_below, alpha, x);
    qr.a(j, j) = alpha;
    qr.tau.push_back(t);
    if (j + 1 < n && t != 0.0) {
      MatrixView c = qr.a.block(j, j + 1, rows_below, n - j - 1);
      larf_left(t, x, c, work.view());
    }
  }
  return qr;
}

RefQR ref_qr_blocked(const Matrix& a, int nb) {
  HQR_CHECK(nb >= 1, "panel width must be >= 1");
  RefQR qr{a, {}};
  const int m = a.rows();
  const int n = a.cols();
  const int k = std::min(m, n);
  qr.tau.reserve(k);
  Matrix t(nb, nb);
  Matrix work(nb, std::max(1, n));

  for (int j0 = 0; j0 < k; j0 += nb) {
    const int w = std::min(nb, k - j0);
    factor_panel(qr.a, j0, w, qr.tau);
    const int trailing = n - (j0 + w);
    if (trailing > 0) {
      // Build T for the panel and apply the block reflector to the trailing
      // matrix: C = (I - V T V^T)^T C.
      ConstMatrixView v = qr.a.block(j0, j0, m - j0, w);
      MatrixView tw = t.block(0, 0, w, w);
      for (int j = 0; j < w; ++j)
        larft_column(v, j, qr.tau[static_cast<std::size_t>(j0) + j], tw);
      MatrixView c = qr.a.block(j0, j0 + w, m - j0, trailing);
      larfb_left(Trans::Yes, v, tw, c, work.view());
    }
  }
  return qr;
}

Matrix ref_form_q(const RefQR& qr) {
  const int m = qr.rows();
  const int k = qr.k();
  Matrix q(m, k);
  set_identity(q.view());
  Matrix work(k, 1);
  // Apply H_0 H_1 ... H_{k-1} to I by processing reflectors in reverse.
  for (int j = k - 1; j >= 0; --j) {
    const double tau = qr.tau[j];
    if (tau == 0.0) continue;
    const int rows_below = m - j;
    ConstMatrixView x = rows_below > 1 ? qr.a.block(j + 1, j, rows_below - 1, 1)
                                       : ConstMatrixView(nullptr, 0, 1, 1);
    MatrixView c = q.block(j, j, rows_below, k - j);
    larf_left(tau, x, c, work.view());
  }
  return q;
}

void ref_apply_q(const RefQR& qr, Trans trans, MatrixView c) {
  const int m = qr.rows();
  const int k = qr.k();
  HQR_CHECK(c.rows == m, "apply_q row mismatch");
  Matrix work(c.cols, 1);
  // Q = H_0 ... H_{k-1}; Q^T applies them forward, Q applies them reversed.
  const int start = trans == Trans::Yes ? 0 : k - 1;
  const int stop = trans == Trans::Yes ? k : -1;
  const int step = trans == Trans::Yes ? 1 : -1;
  for (int j = start; j != stop; j += step) {
    const double tau = qr.tau[j];
    if (tau == 0.0) continue;
    const int rows_below = m - j;
    ConstMatrixView x = rows_below > 1 ? qr.a.block(j + 1, j, rows_below - 1, 1)
                                       : ConstMatrixView(nullptr, 0, 1, 1);
    MatrixView cc = c.block(j, 0, rows_below, c.cols);
    larf_left(tau, x, cc, work.view());
  }
}

Matrix ref_extract_r(const RefQR& qr) {
  const int k = qr.k();
  const int n = qr.cols();
  Matrix r(k, n);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i <= std::min(j, k - 1); ++i) r(i, j) = qr.a(i, j);
  return r;
}

Matrix least_squares(const Matrix& a, const Matrix& b) {
  HQR_CHECK(a.rows() >= a.cols(), "least_squares expects m >= n");
  HQR_CHECK(b.rows() == a.rows(), "rhs row mismatch");
  const int n = a.cols();
  RefQR qr = ref_qr_blocked(a, std::min(32, std::max(1, n)));
  Matrix c = b;
  ref_apply_q(qr, Trans::Yes, c.view());
  Matrix x(n, b.cols());
  copy(c.block(0, 0, n, b.cols()), x.view());
  trsm_left(UpLo::Upper, Trans::No, Diag::NonUnit, qr.a.block(0, 0, n, n),
            x.view());
  return x;
}

}  // namespace hqr
