// Reference Householder QR (LAPACK-style), used as the numeric baseline the
// tile algorithms are validated against, and as the "panel algorithm" that
// underlies the ScaLAPACK comparison model.
#pragma once

#include <vector>

#include "linalg/blas.hpp"
#include "linalg/matrix.hpp"

namespace hqr {

// Result of a reference QR factorization of an m x n matrix (m >= n not
// required; k = min(m, n) reflectors are produced).
struct RefQR {
  Matrix a;                 // R in the upper triangle, V below the diagonal
  std::vector<double> tau;  // k reflector scalars

  int rows() const { return a.rows(); }
  int cols() const { return a.cols(); }
  int k() const { return static_cast<int>(tau.size()); }
};

// Unblocked Householder QR (dgeqr2 analogue).
RefQR ref_qr_unblocked(const Matrix& a);

// Blocked Householder QR with panel width nb (dgeqrf analogue).
RefQR ref_qr_blocked(const Matrix& a, int nb);

// Forms the economy Q (m x k) from a factorization (dorgqr analogue).
Matrix ref_form_q(const RefQR& qr);

// Applies Q or Q^T (from the left) to C in place (dormqr analogue).
void ref_apply_q(const RefQR& qr, Trans trans, MatrixView c);

// Extracts the k x n upper-triangular/trapezoidal R.
Matrix ref_extract_r(const RefQR& qr);

// Solves the least-squares problem min ||A x - b||_2 for full-column-rank A
// (m >= n) via QR; b is m x nrhs, the result is n x nrhs.
Matrix least_squares(const Matrix& a, const Matrix& b);

}  // namespace hqr
