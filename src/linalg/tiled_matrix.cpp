#include "linalg/tiled_matrix.hpp"

namespace hqr {

TiledMatrix::TiledMatrix(int m, int n, int b) : m_(m), n_(n), b_(b) {
  HQR_CHECK(m >= 0 && n >= 0 && b >= 1, "bad tiled matrix shape m=" << m
                                          << " n=" << n << " b=" << b);
  mt_ = (m + b - 1) / b;
  nt_ = (n + b - 1) / b;
  data_.assign(static_cast<std::size_t>(mt_) * nt_ * b * b, 0.0);
}

std::size_t TiledMatrix::tile_offset(int ti, int tj) const {
  HQR_ASSERT(ti >= 0 && ti < mt_ && tj >= 0 && tj < nt_,
             "tile (" << ti << "," << tj << ") out of " << mt_ << "x" << nt_);
  return (static_cast<std::size_t>(tj) * mt_ + ti) *
         (static_cast<std::size_t>(b_) * b_);
}

TiledMatrix TiledMatrix::from_matrix(const Matrix& a, int b) {
  TiledMatrix t(a.rows(), a.cols(), b);
  for (int j = 0; j < a.cols(); ++j)
    for (int i = 0; i < a.rows(); ++i) t.set(i, j, a(i, j));
  return t;
}

Matrix TiledMatrix::to_matrix() const {
  Matrix a(m_, n_);
  for (int j = 0; j < n_; ++j)
    for (int i = 0; i < m_; ++i) a(i, j) = at(i, j);
  return a;
}

Matrix TiledMatrix::to_padded_matrix() const {
  Matrix a(padded_m(), padded_n());
  for (int j = 0; j < padded_n(); ++j)
    for (int i = 0; i < padded_m(); ++i) a(i, j) = at(i, j);
  return a;
}

MatrixView TiledMatrix::tile(int ti, int tj) {
  return MatrixView(data_.data() + tile_offset(ti, tj), b_, b_, b_);
}

ConstMatrixView TiledMatrix::tile(int ti, int tj) const {
  return ConstMatrixView(data_.data() + tile_offset(ti, tj), b_, b_, b_);
}

double TiledMatrix::at(int i, int j) const {
  HQR_ASSERT(i >= 0 && i < padded_m() && j >= 0 && j < padded_n(),
             "element out of padded range");
  return tile(i / b_, j / b_)(i % b_, j % b_);
}

void TiledMatrix::set(int i, int j, double v) {
  HQR_ASSERT(i >= 0 && i < padded_m() && j >= 0 && j < padded_n(),
             "element out of padded range");
  tile(i / b_, j / b_)(i % b_, j % b_) = v;
}

}  // namespace hqr
