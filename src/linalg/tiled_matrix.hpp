// Tiled matrix storage: the data layout of all tile QR algorithms.
//
// An M x N element matrix is stored as an mt x nt grid of b x b tiles, each
// tile contiguous in memory (column-major within the tile). Ragged edges are
// zero-padded to a full tile: padding columns/rows are mathematically inert
// for QR (they produce tau = 0 reflectors and zero rows of R), which keeps
// every kernel a uniform b x b operation — the same simplification the
// PLASMA/DPLASMA tile layout makes when matrices divide evenly, generalized.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace hqr {

class TiledMatrix {
 public:
  TiledMatrix() = default;

  // Zero-initialized M x N element matrix with b x b tiles.
  TiledMatrix(int m, int n, int b);

  // Tiles an existing dense matrix.
  static TiledMatrix from_matrix(const Matrix& a, int b);

  // Reassembles the dense M x N matrix (padding dropped).
  Matrix to_matrix() const;

  int m() const { return m_; }    // element rows
  int n() const { return n_; }    // element cols
  int b() const { return b_; }    // tile size
  int mt() const { return mt_; }  // tile rows
  int nt() const { return nt_; }  // tile cols

  // Mutable / read-only view of tile (ti, tj); always b x b.
  MatrixView tile(int ti, int tj);
  ConstMatrixView tile(int ti, int tj) const;

  // Padded element dimensions (mt*b, nt*b).
  int padded_m() const { return mt_ * b_; }
  int padded_n() const { return nt_ * b_; }

  // Reassembles including padding (padded_m x padded_n). Useful for checks
  // that operate on the padded system the kernels actually factor.
  Matrix to_padded_matrix() const;

  // Element access through the tile layout (i, j in element coordinates,
  // must be within the padded dimensions).
  double at(int i, int j) const;
  void set(int i, int j, double v);

 private:
  std::size_t tile_offset(int ti, int tj) const;

  int m_ = 0, n_ = 0, b_ = 1, mt_ = 0, nt_ = 0;
  std::vector<double> data_;
};

}  // namespace hqr
