#include "net/clock_sync.hpp"

#include "common/check.hpp"
#include "common/stopwatch.hpp"

namespace hqr::net {
namespace {

struct Pong {
  double t0 = 0.0;  // echoed ping send time (requester clock)
  double t1 = 0.0;  // ping receive time (responder clock)
  double t2 = 0.0;  // pong send time (responder clock)
};

// Parks a non-sync message for the caller, or fails loudly: anything else
// on the wire this early is a protocol violation.
void hold(Message&& m, std::vector<Message>* held) {
  HQR_CHECK(held != nullptr, "unexpected "
                                 << tag_name(m.tag) << " frame from rank "
                                 << m.src << " during clock sync");
  held->push_back(std::move(m));
}

ClockSync serve_pings(Comm& comm, std::vector<Message>* held, int rounds,
                      double timeout_seconds) {
  long long need =
      static_cast<long long>(comm.size() - 1) * static_cast<long long>(rounds);
  Stopwatch sw;
  while (need > 0) {
    comm.pump(2, [&](Message&& m) {
      if (m.tag != Tag::SyncPing) {
        hold(std::move(m), held);
        return;
      }
      Pong p;
      p.t1 = monotonic_seconds();
      HQR_CHECK(m.payload.size() == sizeof(double),
                "malformed SyncPing from rank " << m.src);
      PayloadReader r(m.payload);
      r.f64(&p.t0, 1);
      p.t2 = monotonic_seconds();
      comm.post(m.src, Tag::SyncPong, m.id, &p, sizeof(p));
      --need;
    });
    HQR_CHECK(sw.seconds() < timeout_seconds,
              "clock sync timed out on rank 0 with " << need
                                                     << " ping(s) missing");
  }
  while (!comm.flushed()) {
    comm.pump(2, [&](Message&& m) { hold(std::move(m), held); });
    HQR_CHECK(sw.seconds() < timeout_seconds,
              "clock sync flush timed out on rank 0");
  }
  return {0.0, 0.0, rounds};
}

ClockSync probe_rank0(Comm& comm, std::vector<Message>* held, int rounds,
                      double timeout_seconds) {
  ClockSync best;
  best.rounds = rounds;
  best.min_rtt_seconds = -1.0;
  Stopwatch sw;
  for (int round = 0; round < rounds; ++round) {
    const double t0 = monotonic_seconds();
    comm.post(0, Tag::SyncPing, round, &t0, sizeof(t0));
    bool got_pong = false;
    while (!got_pong) {
      comm.pump(2, [&](Message&& m) {
        if (m.tag != Tag::SyncPong || m.src != 0) {
          hold(std::move(m), held);
          return;
        }
        const double t3 = monotonic_seconds();
        HQR_CHECK(m.payload.size() == sizeof(Pong) && m.id == round,
                  "malformed SyncPong on rank " << comm.rank());
        Pong p;
        PayloadReader r(m.payload);
        r.raw(&p, sizeof(p));
        const double rtt = (t3 - p.t0) - (p.t2 - p.t1);
        if (best.min_rtt_seconds < 0.0 || rtt < best.min_rtt_seconds) {
          best.min_rtt_seconds = rtt;
          best.offset_seconds = estimate_clock_offset(p.t0, p.t1, p.t2, t3);
        }
        got_pong = true;
      });
      HQR_CHECK(sw.seconds() < timeout_seconds,
                "clock sync timed out on rank " << comm.rank() << " (round "
                                                << round << ")");
    }
  }
  if (best.min_rtt_seconds < 0.0) best.min_rtt_seconds = 0.0;
  return best;
}

}  // namespace

double estimate_clock_offset(double t0, double t1, double t2, double t3) {
  return ((t1 - t0) + (t2 - t3)) / 2.0;
}

ClockSync sync_clocks(Comm& comm, std::vector<Message>* held, int rounds,
                      double timeout_seconds) {
  HQR_CHECK(rounds >= 1, "clock sync needs at least one round");
  if (comm.size() == 1) return {0.0, 0.0, rounds};
  if (comm.rank() == 0)
    return serve_pings(comm, held, rounds, timeout_seconds);
  return probe_rank0(comm, held, rounds, timeout_seconds);
}

}  // namespace hqr::net
