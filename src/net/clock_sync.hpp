// Clock-alignment handshake run at mesh setup, before any Data traffic
// flows: every rank estimates the offset between its monotonic clock and
// rank 0's, so per-rank trace timestamps can be fused into one causally
// consistent cluster timeline (obs::merge_rank_traces).
//
// Protocol (classic NTP-style midpoint estimator): rank r sends SyncPing
// rounds to rank 0 carrying its local send time t0; rank 0 stamps receive
// time t1 and reply time t2 into the SyncPong; r stamps arrival t3 and
// estimates
//
//   offset = ((t1 - t0) + (t2 - t3)) / 2      (rank0_clock - local_clock)
//   rtt    = (t3 - t0) - (t2 - t1)
//
// keeping the sample with the smallest round-trip (least queueing noise).
// On one host all ranks share the hardware clock, so the estimate doubles
// as a self-check: it must come out near zero, within the socket RTT.
#pragma once

#include <vector>

#include "net/comm.hpp"

namespace hqr::net {

struct ClockSync {
  // Add to a local monotonic_seconds() value to land on rank 0's clock.
  double offset_seconds = 0.0;
  // Round-trip time of the sample the offset came from; also the error
  // bound of the estimate (the true offset lies within ±rtt/2).
  double min_rtt_seconds = 0.0;
  int rounds = 0;
};

// The midpoint estimator itself, exposed for tests: offset of the
// responder's clock relative to the requester's, from one ping/pong
// exchange (t0 = ping send, t1 = pong-side receive, t2 = pong-side send,
// t3 = pong receive; t0/t3 on the requester clock, t1/t2 on the responder).
double estimate_clock_offset(double t0, double t1, double t2, double t3);

// Collective over the communicator; call on every rank before any other
// traffic. Rank 0 serves (size-1)*rounds pings and returns a zero offset;
// every other rank runs `rounds` ping/pong exchanges against rank 0 and
// returns its best-sample offset. Messages of any other tag arriving
// during the handshake (a fast peer may already be executing) are parked
// in `held` for the caller to replay; without a `held` vector they are an
// error. Throws hqr::Error on timeout or peer failure.
ClockSync sync_clocks(Comm& comm, std::vector<Message>* held = nullptr,
                      int rounds = 8, double timeout_seconds = 30.0);

}  // namespace hqr::net
