#include "net/comm.hpp"

#include <cstring>

#include <poll.h>
#include <sys/socket.h>

#include "common/check.hpp"
#include "common/stopwatch.hpp"
#include "net/control.hpp"

namespace hqr::net {

Comm::Comm(int rank, std::vector<Fd> peers)
    : rank_(rank), peers_(std::move(peers)) {
  HQR_CHECK(rank_ >= 0 && rank_ < static_cast<int>(peers_.size()),
            "rank " << rank_ << " outside communicator of size "
                    << peers_.size());
  for (int q = 0; q < size(); ++q) {
    if (q == rank_) continue;
    HQR_CHECK(peers_[q].valid(), "missing socket for peer rank " << q);
    set_nonblocking(peers_[q].get());
  }
  send_.resize(peers_.size());
  recv_.resize(peers_.size());
  down_.assign(peers_.size(), 0);
  down_epoch_.assign(peers_.size(), 0);
  epoch_.assign(peers_.size(), 0);
  paused_until_.assign(peers_.size(), 0.0);
}

void Comm::enable_fault_tolerance(int control_fd, CommFaultHooks hooks) {
  fault_mode_ = true;
  control_fd_ = control_fd;
  hooks_ = std::move(hooks);
  if (control_fd_ >= 0) set_nonblocking(control_fd_);
}

bool Comm::peer_down(int q) const {
  std::lock_guard<std::mutex> lk(send_mu_);
  return down_[static_cast<std::size_t>(q)] != 0;
}

int Comm::peer_epoch(int q) const {
  std::lock_guard<std::mutex> lk(send_mu_);
  return epoch_[static_cast<std::size_t>(q)];
}

void Comm::sever_link(int q) {
  HQR_CHECK(q >= 0 && q < size() && q != rank_, "bad link peer " << q);
  ::shutdown(peers_[static_cast<std::size_t>(q)].get(), SHUT_RDWR);
}

void Comm::pause_peer(int q, double seconds) {
  HQR_CHECK(q >= 0 && q < size() && q != rank_, "bad link peer " << q);
  std::lock_guard<std::mutex> lk(send_mu_);
  if (paused_until_[static_cast<std::size_t>(q)] == 0.0) ++paused_links_;
  paused_until_[static_cast<std::size_t>(q)] =
      monotonic_seconds() + (seconds > 0 ? seconds : 0.0);
}

void Comm::post(int dest, Tag tag, std::int32_t id, const void* payload,
                std::size_t bytes) {
  HQR_CHECK(dest >= 0 && dest < size() && dest != rank_,
            "bad destination rank " << dest);
  FrameHeader h;
  h.tag = static_cast<std::uint32_t>(tag);
  h.src = rank_;
  h.id = id;
  h.bytes = bytes;
  std::vector<std::uint8_t> frame(kFrameHeaderBytes + bytes);
  encode_header(h, frame.data());
  if (bytes > 0) std::memcpy(frame.data() + kFrameHeaderBytes, payload, bytes);
  const long long frame_bytes = static_cast<long long>(frame.size());
  std::lock_guard<std::mutex> lk(send_mu_);
  if (down_[static_cast<std::size_t>(dest)]) {
    // The peer is between death and re-wire: the frame would only error the
    // socket again. The SentTileLog replay after ReplacePeer re-delivers
    // the payloads that matter; everything else (telemetry, control) is
    // droppable by design.
    ++counters_.frames_dropped_peer_down;
    return;
  }
  send_[static_cast<std::size_t>(dest)].frames.push_back(std::move(frame));
  ++pending_frames_;
  pending_bytes_ += frame_bytes;
  if (tag == Tag::Data) {
    ++counters_.data_messages_sent;
    counters_.data_bytes_sent += static_cast<long long>(bytes);
  } else {
    ++counters_.control_messages_sent;
    counters_.control_bytes_sent += static_cast<long long>(bytes);
  }
  ++counters_.messages_sent_by_tag[static_cast<std::size_t>(tag_index(tag))];
  counters_.bytes_sent_by_tag[static_cast<std::size_t>(tag_index(tag))] +=
      static_cast<long long>(bytes);
}

bool Comm::flushed() const {
  std::lock_guard<std::mutex> lk(send_mu_);
  return pending_frames_ == 0;
}

CommCounters Comm::counters_snapshot() const {
  std::lock_guard<std::mutex> lk(send_mu_);
  return counters_;
}

long long Comm::send_queue_frames() const {
  std::lock_guard<std::mutex> lk(send_mu_);
  return pending_frames_;
}

long long Comm::send_queue_bytes() const {
  std::lock_guard<std::mutex> lk(send_mu_);
  return pending_bytes_;
}

// Caller holds send_mu_. Discards q's queued frames, keeping the pending
// gauges consistent (the front frame may be partially written).
void Comm::drop_queue_locked(int q) {
  SendState& s = send_[static_cast<std::size_t>(q)];
  for (std::size_t i = 0; i < s.frames.size(); ++i) {
    --pending_frames_;
    pending_bytes_ -= static_cast<long long>(s.frames[i].size() -
                                             (i == 0 ? s.offset : 0));
    ++counters_.frames_dropped_peer_down;
  }
  s.frames.clear();
  s.offset = 0;
}

// Caller holds send_mu_. Discards the peer's send queue (those frames can
// never be written; the replay path re-delivers what matters) and closes
// the receive side so pump() stops polling the dead descriptor.
void Comm::mark_peer_down_locked(int q) {
  if (down_[static_cast<std::size_t>(q)]) return;
  down_[static_cast<std::size_t>(q)] = 1;
  // Stamp the epoch at detection time: a LinkDown report must carry the
  // incarnation of the link that actually died, not whatever a later
  // ReplacePeer may have installed by the time the pump ships the report
  // (the launcher would mistake it for a fresh failure and re-wire twice).
  down_epoch_[static_cast<std::size_t>(q)] = epoch_[static_cast<std::size_t>(q)];
  ++counters_.peers_down;
  drop_queue_locked(q);
  RecvState& r = recv_[static_cast<std::size_t>(q)];
  r.closed = true;
  r.header_got = 0;
  r.payload.clear();
  r.payload_got = 0;
}

bool Comm::flush_peer(int q) {
  std::lock_guard<std::mutex> lk(send_mu_);
  SendState& s = send_[static_cast<std::size_t>(q)];
  while (!s.frames.empty()) {
    const std::vector<std::uint8_t>& f = s.frames.front();
    const std::size_t want = f.size() - s.offset;
    std::ptrdiff_t wrote = 0;
    if (fault_mode_) {
      try {
        wrote = write_some(peers_[static_cast<std::size_t>(q)].get(),
                           f.data() + s.offset, want);
      } catch (const std::exception&) {
        // EPIPE/ECONNRESET: the peer died under us mid-write.
        mark_peer_down_locked(q);
        return true;
      }
    } else {
      wrote = write_some(peers_[static_cast<std::size_t>(q)].get(),
                         f.data() + s.offset, want);
    }
    s.offset += static_cast<std::size_t>(wrote);
    pending_bytes_ -= static_cast<long long>(wrote);
    if (s.offset < f.size()) return false;  // kernel buffer full
    s.frames.pop_front();
    s.offset = 0;
    --pending_frames_;
  }
  return false;
}

bool Comm::drain_peer(int q, std::vector<Message>& out) {
  RecvState& r = recv_[static_cast<std::size_t>(q)];
  const int fd = peers_[static_cast<std::size_t>(q)].get();
  const auto peer_died = [&]() {
    std::lock_guard<std::mutex> lk(send_mu_);
    mark_peer_down_locked(q);
    return true;
  };
  for (;;) {
    if (r.header_got < kFrameHeaderBytes) {
      std::ptrdiff_t got = 0;
      if (fault_mode_) {
        try {
          got = read_some(fd, r.header_raw + r.header_got,
                          kFrameHeaderBytes - r.header_got);
        } catch (const std::exception&) {
          return peer_died();
        }
        if (got < 0) return peer_died();
      } else {
        got = read_some(fd, r.header_raw + r.header_got,
                        kFrameHeaderBytes - r.header_got);
        if (got < 0) {
          HQR_CHECK(eof_ok_ && r.header_got == 0,
                    "rank " << q << " closed the connection mid-stream");
          r.closed = true;
          return false;
        }
      }
      if (got == 0) return false;
      r.header_got += static_cast<std::size_t>(got);
      if (r.header_got < kFrameHeaderBytes) return false;
      r.header = decode_header(r.header_raw);
      HQR_CHECK(r.header.magic != kMagicSwapped,
                "frame magic from rank "
                    << q << " is byte-swapped: peer serialized with the "
                    << "opposite byte order (pre-v2 wire format?)");
      HQR_CHECK(r.header.magic == kMagic, "bad frame magic from rank " << q);
      HQR_CHECK(r.header.version == kWireVersion,
                "wire version mismatch: rank " << q << " speaks v"
                                               << r.header.version
                                               << ", this build speaks v"
                                               << kWireVersion);
      HQR_CHECK(r.header.header_bytes == kFrameHeaderBytes,
                "frame header size mismatch from rank "
                    << q << " (" << r.header.header_bytes << " != "
                    << kFrameHeaderBytes << ")");
      HQR_CHECK(valid_tag(r.header.tag),
                "unknown tag " << r.header.tag << " from rank " << q);
      HQR_CHECK(r.header.bytes < (1ull << 34),
                "implausible frame size from rank " << q);
      r.payload.resize(static_cast<std::size_t>(r.header.bytes));
      r.payload_got = 0;
    }
    if (r.payload_got < r.payload.size()) {
      std::ptrdiff_t got = 0;
      if (fault_mode_) {
        try {
          got = read_some(fd, r.payload.data() + r.payload_got,
                          r.payload.size() - r.payload_got);
        } catch (const std::exception&) {
          return peer_died();
        }
        if (got < 0) return peer_died();
      } else {
        got = read_some(fd, r.payload.data() + r.payload_got,
                        r.payload.size() - r.payload_got);
        HQR_CHECK(got >= 0,
                  "rank " << q << " closed the connection mid-frame");
      }
      if (got == 0) return false;
      r.payload_got += static_cast<std::size_t>(got);
      if (r.payload_got < r.payload.size()) return false;
    }
    Message m;
    m.tag = static_cast<Tag>(r.header.tag);
    m.src = r.header.src;
    m.id = r.header.id;
    m.payload = std::move(r.payload);
    r.payload.clear();
    r.header_got = 0;
    r.payload_got = 0;
    {
      // Same lock post() bumps the send counters under: the telemetry
      // heartbeat snapshots counters mid-run from another thread, and an
      // unlocked recv-side update here could be observed torn.
      std::lock_guard<std::mutex> lk(send_mu_);
      if (m.tag == Tag::Data) {
        ++counters_.data_messages_recv;
        counters_.data_bytes_recv += static_cast<long long>(m.payload.size());
      } else {
        ++counters_.control_messages_recv;
        counters_.control_bytes_recv +=
            static_cast<long long>(m.payload.size());
      }
      const auto ti = static_cast<std::size_t>(tag_index(m.tag));
      ++counters_.messages_recv_by_tag[ti];
      counters_.bytes_recv_by_tag[ti] +=
          static_cast<long long>(m.payload.size());
    }
    out.push_back(std::move(m));
  }
}

// Drains every ReplacePeer waiting on the control channel and installs the
// passed descriptors; collects the re-wired peers for the caller's hook
// invocations. Runs on the pump thread.
void Comm::handle_control(std::vector<int>& replaced) {
  for (;;) {
    pollfd p{};
    p.fd = control_fd_;
    p.events = POLLIN;
    const int rc = ::poll(&p, 1, 0);
    if (rc <= 0 || !(p.revents & (POLLIN | POLLHUP))) return;
    ControlMsg m;
    Fd passed;
    bool got = false;
    try {
      got = recv_control(control_fd_, &m, &passed, monotonic_seconds() + 5.0);
    } catch (const std::exception&) {
      // ECONNRESET: the launcher's end closed with unread data (it tore
      // down after a failure elsewhere). Same meaning as the clean EOF.
    }
    if (!got) {
      control_fd_ = -1;  // launcher gone; PDEATHSIG will reap us anyway
      return;
    }
    if (static_cast<ControlOp>(m.op) != ControlOp::ReplacePeer) continue;
    const int q = m.peer;
    HQR_CHECK(q >= 0 && q < size() && q != rank_ && passed.valid(),
              "malformed ReplacePeer control message (peer " << q << ")");
    set_nonblocking(passed.get());
    {
      std::lock_guard<std::mutex> lk(send_mu_);
      peers_[static_cast<std::size_t>(q)] = std::move(passed);
      // The other endpoint may have reported the death first: frames can
      // still be queued here even though we never observed the failure.
      // They predate the re-wire, so they drop like any down-window frame.
      drop_queue_locked(q);
      RecvState& r = recv_[static_cast<std::size_t>(q)];
      r.closed = false;
      r.header_got = 0;
      r.payload.clear();
      r.payload_got = 0;
      down_[static_cast<std::size_t>(q)] = 0;
      ++epoch_[static_cast<std::size_t>(q)];
      ++counters_.peers_replaced;
    }
    replaced.push_back(q);
  }
}

int Comm::pump(int timeout_ms, const std::function<void(Message&&)>& on_msg) {
  std::vector<pollfd> fds;
  std::vector<int> who;
  fds.reserve(peers_.size() + 1);
  who.reserve(peers_.size() + 1);
  {
    std::lock_guard<std::mutex> lk(send_mu_);
    if (paused_links_ > 0) {
      const double now = monotonic_seconds();
      for (int q = 0; q < size(); ++q) {
        double& until = paused_until_[static_cast<std::size_t>(q)];
        if (until > 0.0 && now >= until) {
          until = 0.0;
          --paused_links_;
        }
      }
    }
    for (int q = 0; q < size(); ++q) {
      if (q == rank_ || recv_[static_cast<std::size_t>(q)].closed) continue;
      pollfd p{};
      p.fd = peers_[static_cast<std::size_t>(q)].get();
      p.events = POLLIN;
      if (!send_[static_cast<std::size_t>(q)].frames.empty() &&
          paused_until_[static_cast<std::size_t>(q)] == 0.0)
        p.events |= POLLOUT;
      fds.push_back(p);
      who.push_back(q);
    }
  }
  if (fault_mode_ && control_fd_ >= 0) {
    pollfd p{};
    p.fd = control_fd_;
    p.events = POLLIN;
    fds.push_back(p);
    who.push_back(-1);  // sentinel: the control channel
  }
  if (fds.empty()) return 0;
  const int rc = ::poll(fds.data(), fds.size(), timeout_ms);
  if (rc < 0) {
    HQR_CHECK(errno == EINTR, "poll: " << std::strerror(errno));
    // A signal cut the wait short, and the pollfd snapshot above may
    // predate frames post()ed while we slept (their fds would then lack
    // POLLOUT). Flush whatever is pending now instead of stranding those
    // sends until the next unrelated wakeup.
    for (const int q : who)
      if (q >= 0) flush_peer(q);
    return 0;
  }
  if (rc == 0) return 0;

  std::vector<Message> delivered;
  std::vector<int> went_down;
  std::vector<int> replaced;
  for (std::size_t i = 0; i < fds.size(); ++i) {
    if (who[i] < 0) {
      if (fds[i].revents & (POLLIN | POLLHUP)) handle_control(replaced);
      continue;
    }
    bool dead = false;
    if (fds[i].revents & POLLOUT) dead = flush_peer(who[i]);
    if (!dead && (fds[i].revents & (POLLIN | POLLHUP | POLLERR)))
      dead = drain_peer(who[i], delivered);
    if (dead) went_down.push_back(who[i]);
  }
  for (Message& m : delivered) on_msg(std::move(m));
  for (const int q : replaced)
    if (hooks_.on_peer_replaced) hooks_.on_peer_replaced(q);
  for (const int q : went_down) {
    if (control_fd_ >= 0) {
      try {
        send_control(control_fd_, ControlOp::LinkDown, q,
                     down_epoch_[static_cast<std::size_t>(q)]);
      } catch (const std::exception&) {
        control_fd_ = -1;  // launcher gone
      }
    }
    if (hooks_.on_peer_down) hooks_.on_peer_down(q);
  }
  return static_cast<int>(delivered.size());
}

}  // namespace hqr::net
