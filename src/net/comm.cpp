#include "net/comm.hpp"

#include <cstring>

#include <poll.h>

#include "common/check.hpp"

namespace hqr::net {

Comm::Comm(int rank, std::vector<Fd> peers)
    : rank_(rank), peers_(std::move(peers)) {
  HQR_CHECK(rank_ >= 0 && rank_ < static_cast<int>(peers_.size()),
            "rank " << rank_ << " outside communicator of size "
                    << peers_.size());
  for (int q = 0; q < size(); ++q) {
    if (q == rank_) continue;
    HQR_CHECK(peers_[q].valid(), "missing socket for peer rank " << q);
    set_nonblocking(peers_[q].get());
  }
  send_.resize(peers_.size());
  recv_.resize(peers_.size());
}

void Comm::post(int dest, Tag tag, std::int32_t id, const void* payload,
                std::size_t bytes) {
  HQR_CHECK(dest >= 0 && dest < size() && dest != rank_,
            "bad destination rank " << dest);
  FrameHeader h;
  h.tag = static_cast<std::uint32_t>(tag);
  h.src = rank_;
  h.id = id;
  h.bytes = bytes;
  std::vector<std::uint8_t> frame(kFrameHeaderBytes + bytes);
  encode_header(h, frame.data());
  if (bytes > 0) std::memcpy(frame.data() + kFrameHeaderBytes, payload, bytes);
  const long long frame_bytes = static_cast<long long>(frame.size());
  std::lock_guard<std::mutex> lk(send_mu_);
  send_[static_cast<std::size_t>(dest)].frames.push_back(std::move(frame));
  ++pending_frames_;
  pending_bytes_ += frame_bytes;
  if (tag == Tag::Data) {
    ++counters_.data_messages_sent;
    counters_.data_bytes_sent += static_cast<long long>(bytes);
  } else {
    ++counters_.control_messages_sent;
    counters_.control_bytes_sent += static_cast<long long>(bytes);
  }
  ++counters_.messages_sent_by_tag[static_cast<std::size_t>(tag_index(tag))];
  counters_.bytes_sent_by_tag[static_cast<std::size_t>(tag_index(tag))] +=
      static_cast<long long>(bytes);
}

bool Comm::flushed() const {
  std::lock_guard<std::mutex> lk(send_mu_);
  return pending_frames_ == 0;
}

CommCounters Comm::counters_snapshot() const {
  std::lock_guard<std::mutex> lk(send_mu_);
  return counters_;
}

long long Comm::send_queue_frames() const {
  std::lock_guard<std::mutex> lk(send_mu_);
  return pending_frames_;
}

long long Comm::send_queue_bytes() const {
  std::lock_guard<std::mutex> lk(send_mu_);
  return pending_bytes_;
}

void Comm::flush_peer(int q) {
  std::lock_guard<std::mutex> lk(send_mu_);
  SendState& s = send_[static_cast<std::size_t>(q)];
  while (!s.frames.empty()) {
    const std::vector<std::uint8_t>& f = s.frames.front();
    const std::size_t want = f.size() - s.offset;
    const std::ptrdiff_t wrote =
        write_some(peers_[static_cast<std::size_t>(q)].get(),
                   f.data() + s.offset, want);
    s.offset += static_cast<std::size_t>(wrote);
    pending_bytes_ -= static_cast<long long>(wrote);
    if (s.offset < f.size()) return;  // kernel buffer full
    s.frames.pop_front();
    s.offset = 0;
    --pending_frames_;
  }
}

void Comm::drain_peer(int q, std::vector<Message>& out) {
  RecvState& r = recv_[static_cast<std::size_t>(q)];
  const int fd = peers_[static_cast<std::size_t>(q)].get();
  for (;;) {
    if (r.header_got < kFrameHeaderBytes) {
      const std::ptrdiff_t got = read_some(fd, r.header_raw + r.header_got,
                                           kFrameHeaderBytes - r.header_got);
      if (got == 0) return;
      if (got < 0) {
        HQR_CHECK(eof_ok_ && r.header_got == 0,
                  "rank " << q << " closed the connection mid-stream");
        r.closed = true;
        return;
      }
      r.header_got += static_cast<std::size_t>(got);
      if (r.header_got < kFrameHeaderBytes) return;
      r.header = decode_header(r.header_raw);
      HQR_CHECK(r.header.magic != kMagicSwapped,
                "frame magic from rank "
                    << q << " is byte-swapped: peer serialized with the "
                    << "opposite byte order (pre-v2 wire format?)");
      HQR_CHECK(r.header.magic == kMagic, "bad frame magic from rank " << q);
      HQR_CHECK(r.header.version == kWireVersion,
                "wire version mismatch: rank " << q << " speaks v"
                                               << r.header.version
                                               << ", this build speaks v"
                                               << kWireVersion);
      HQR_CHECK(r.header.header_bytes == kFrameHeaderBytes,
                "frame header size mismatch from rank "
                    << q << " (" << r.header.header_bytes << " != "
                    << kFrameHeaderBytes << ")");
      HQR_CHECK(valid_tag(r.header.tag),
                "unknown tag " << r.header.tag << " from rank " << q);
      HQR_CHECK(r.header.bytes < (1ull << 34),
                "implausible frame size from rank " << q);
      r.payload.resize(static_cast<std::size_t>(r.header.bytes));
      r.payload_got = 0;
    }
    if (r.payload_got < r.payload.size()) {
      const std::ptrdiff_t got =
          read_some(fd, r.payload.data() + r.payload_got,
                    r.payload.size() - r.payload_got);
      if (got == 0) return;
      HQR_CHECK(got > 0, "rank " << q << " closed the connection mid-frame");
      r.payload_got += static_cast<std::size_t>(got);
      if (r.payload_got < r.payload.size()) return;
    }
    Message m;
    m.tag = static_cast<Tag>(r.header.tag);
    m.src = r.header.src;
    m.id = r.header.id;
    m.payload = std::move(r.payload);
    r.payload.clear();
    r.header_got = 0;
    r.payload_got = 0;
    {
      // Same lock post() bumps the send counters under: the telemetry
      // heartbeat snapshots counters mid-run from another thread, and an
      // unlocked recv-side update here could be observed torn.
      std::lock_guard<std::mutex> lk(send_mu_);
      if (m.tag == Tag::Data) {
        ++counters_.data_messages_recv;
        counters_.data_bytes_recv += static_cast<long long>(m.payload.size());
      } else {
        ++counters_.control_messages_recv;
        counters_.control_bytes_recv +=
            static_cast<long long>(m.payload.size());
      }
      const auto ti = static_cast<std::size_t>(tag_index(m.tag));
      ++counters_.messages_recv_by_tag[ti];
      counters_.bytes_recv_by_tag[ti] +=
          static_cast<long long>(m.payload.size());
    }
    out.push_back(std::move(m));
  }
}

int Comm::pump(int timeout_ms, const std::function<void(Message&&)>& on_msg) {
  std::vector<pollfd> fds;
  std::vector<int> who;
  fds.reserve(peers_.size());
  who.reserve(peers_.size());
  {
    std::lock_guard<std::mutex> lk(send_mu_);
    for (int q = 0; q < size(); ++q) {
      if (q == rank_ || recv_[static_cast<std::size_t>(q)].closed) continue;
      pollfd p{};
      p.fd = peers_[static_cast<std::size_t>(q)].get();
      p.events = POLLIN;
      if (!send_[static_cast<std::size_t>(q)].frames.empty())
        p.events |= POLLOUT;
      fds.push_back(p);
      who.push_back(q);
    }
  }
  if (fds.empty()) return 0;
  const int rc = ::poll(fds.data(), fds.size(), timeout_ms);
  if (rc < 0) {
    HQR_CHECK(errno == EINTR, "poll: " << std::strerror(errno));
    // A signal cut the wait short, and the pollfd snapshot above may
    // predate frames post()ed while we slept (their fds would then lack
    // POLLOUT). Flush whatever is pending now instead of stranding those
    // sends until the next unrelated wakeup.
    for (const int q : who) flush_peer(q);
    return 0;
  }
  if (rc == 0) return 0;

  std::vector<Message> delivered;
  for (std::size_t i = 0; i < fds.size(); ++i) {
    if (fds[i].revents & POLLOUT) flush_peer(who[i]);
    if (fds[i].revents & (POLLIN | POLLHUP | POLLERR))
      drain_peer(who[i], delivered);
  }
  for (Message& m : delivered) on_msg(std::move(m));
  return static_cast<int>(delivered.size());
}

}  // namespace hqr::net
