// Rank-to-rank communicator: a fully connected mesh of stream sockets with
// framed tagged messages (net/message.hpp), eager sends and nonblocking
// poll-based progress.
//
// Threading model: any thread may post() (sends are enqueued under a
// mutex); exactly one thread at a time drives pump(), which flushes queued
// frames and delivers every completely received message to a handler. The
// distributed runtime runs pump() on a dedicated communication thread
// during DAG execution — the paper's §V-A "additional communication
// thread" — and on the main thread during the gather/shutdown phases.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "net/message.hpp"
#include "net/socket.hpp"

namespace hqr::net {

// Traffic counters, split exactly the way the cross-validation against the
// cluster simulator needs them: Data frames (the tile payloads whose count
// and dedup rule the simulator models) versus everything else (gather,
// stats, shutdown — traffic the model does not charge for). The per-tag
// arrays (indexed by the raw Tag value; slot 0 unused) break the same
// traffic down per message kind for the tracing/telemetry layer.
struct CommCounters {
  long long data_messages_sent = 0;
  long long data_bytes_sent = 0;  // payload bytes of Data frames
  long long data_messages_recv = 0;
  long long data_bytes_recv = 0;
  long long control_messages_sent = 0;
  long long control_bytes_sent = 0;
  long long control_messages_recv = 0;
  long long control_bytes_recv = 0;
  std::array<long long, kTagCount> messages_sent_by_tag{};
  std::array<long long, kTagCount> bytes_sent_by_tag{};
  std::array<long long, kTagCount> messages_recv_by_tag{};
  std::array<long long, kTagCount> bytes_recv_by_tag{};
};

class Comm {
 public:
  // peers[q] owns the socket connected to rank q (peers[rank] is ignored);
  // built by the launcher, or directly by in-process tests.
  Comm(int rank, std::vector<Fd> peers);

  int rank() const { return rank_; }
  int size() const { return static_cast<int>(peers_.size()); }

  // Enqueues one framed message to `dest` and returns immediately (eager
  // send); the next pump() flushes it. Thread-safe.
  void post(int dest, Tag tag, std::int32_t id, const void* payload,
            std::size_t bytes);

  // One progress iteration: writes queued frames until the kernel buffers
  // fill, reads whatever arrived, and invokes `on_msg` once per completely
  // received message. Blocks in poll for at most `timeout_ms` when there is
  // nothing to do. Returns the number of messages delivered. Throws
  // hqr::Error on a socket error, or on peer EOF unless eof_ok() was set
  // (the shutdown phase expects peers to disappear).
  int pump(int timeout_ms, const std::function<void(Message&&)>& on_msg);

  // True when every posted frame has been written to the kernel.
  bool flushed() const;

  // Tolerate peers closing their end (set before the shutdown flush).
  void set_eof_ok(bool ok) { eof_ok_ = ok; }

  const CommCounters& counters() const { return counters_; }

  // Locked copy of the counters, safe to take mid-run while other threads
  // post() (the telemetry heartbeat samples this; plain counters() is only
  // consistent once sends quiesce).
  CommCounters counters_snapshot() const;

  // Instantaneous send-queue depth: frames posted but not yet fully written
  // to the kernel, and the payload+header bytes they still hold. Sampled by
  // the telemetry loop as the backpressure signal. Thread-safe.
  long long send_queue_frames() const;
  long long send_queue_bytes() const;

 private:
  struct SendState {
    std::deque<std::vector<std::uint8_t>> frames;  // header+payload
    std::size_t offset = 0;                        // into frames.front()
  };
  struct RecvState {
    std::uint8_t header_raw[kFrameHeaderBytes];  // wire bytes, decoded when full
    FrameHeader header;
    std::size_t header_got = 0;
    std::vector<std::uint8_t> payload;
    std::size_t payload_got = 0;
    bool closed = false;
  };

  void flush_peer(int q);
  // Reads from peer q; appends complete messages to `out`.
  void drain_peer(int q, std::vector<Message>& out);

  int rank_;
  std::vector<Fd> peers_;
  std::vector<SendState> send_;
  std::vector<RecvState> recv_;
  // Guards send_, pending_frames_/bytes_, and every counters_ mutation:
  // send-side counters bump under it in post(), recv-side in drain_peer()
  // — so counters_snapshot() taken from the telemetry thread can never
  // observe a torn counter.
  mutable std::mutex send_mu_;
  long long pending_frames_ = 0;
  long long pending_bytes_ = 0;
  bool eof_ok_ = false;
  CommCounters counters_;
};

}  // namespace hqr::net
