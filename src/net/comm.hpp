// Rank-to-rank communicator: a fully connected mesh of stream sockets with
// framed tagged messages (net/message.hpp), eager sends and nonblocking
// poll-based progress.
//
// Threading model: any thread may post() (sends are enqueued under a
// mutex); exactly one thread at a time drives pump(), which flushes queued
// frames and delivers every completely received message to a handler. The
// distributed runtime runs pump() on a dedicated communication thread
// during DAG execution — the paper's §V-A "additional communication
// thread" — and on the main thread during the gather/shutdown phases.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "net/message.hpp"
#include "net/socket.hpp"

namespace hqr::net {

// Traffic counters, split exactly the way the cross-validation against the
// cluster simulator needs them: Data frames (the tile payloads whose count
// and dedup rule the simulator models) versus everything else (gather,
// stats, shutdown — traffic the model does not charge for). The per-tag
// arrays (indexed by the raw Tag value; slot 0 unused) break the same
// traffic down per message kind for the tracing/telemetry layer.
struct CommCounters {
  long long data_messages_sent = 0;
  long long data_bytes_sent = 0;  // payload bytes of Data frames
  long long data_messages_recv = 0;
  long long data_bytes_recv = 0;
  long long control_messages_sent = 0;
  long long control_bytes_sent = 0;
  long long control_messages_recv = 0;
  long long control_bytes_recv = 0;
  // Fault tolerance (all zero unless enable_fault_tolerance was called):
  // frames posted to a peer currently marked down are dropped — never
  // counted as sent — and tallied here; the SentTileLog replay after the
  // re-wire is what actually delivers their payloads.
  long long frames_dropped_peer_down = 0;
  long long peers_down = 0;      // peer-death events observed
  long long peers_replaced = 0;  // links re-wired by the launcher
  std::array<long long, kTagCount> messages_sent_by_tag{};
  std::array<long long, kTagCount> bytes_sent_by_tag{};
  std::array<long long, kTagCount> messages_recv_by_tag{};
  std::array<long long, kTagCount> bytes_recv_by_tag{};
};

// Callbacks of the fault-tolerant mode, both invoked on the thread driving
// pump() with no Comm lock held (posting from them is safe).
struct CommFaultHooks {
  // The stream to `peer` died (EOF or hard socket error). The peer is
  // already marked down: frames posted to it drop silently and its LinkDown
  // report has been sent to the launcher's control channel.
  std::function<void(int peer)> on_peer_down;
  // The launcher re-wired the link (ReplacePeer + passed descriptor): the
  // new socket is installed and the peer accepts traffic again. The
  // distributed runtime replays its SentTileLog from here.
  std::function<void(int peer)> on_peer_replaced;
};

class Comm {
 public:
  // peers[q] owns the socket connected to rank q (peers[rank] is ignored);
  // built by the launcher, or directly by in-process tests.
  Comm(int rank, std::vector<Fd> peers);

  int rank() const { return rank_; }
  int size() const { return static_cast<int>(peers_.size()); }

  // Enqueues one framed message to `dest` and returns immediately (eager
  // send); the next pump() flushes it. Thread-safe.
  void post(int dest, Tag tag, std::int32_t id, const void* payload,
            std::size_t bytes);

  // One progress iteration: writes queued frames until the kernel buffers
  // fill, reads whatever arrived, and invokes `on_msg` once per completely
  // received message. Blocks in poll for at most `timeout_ms` when there is
  // nothing to do. Returns the number of messages delivered. Throws
  // hqr::Error on a socket error, or on peer EOF unless eof_ok() was set
  // (the shutdown phase expects peers to disappear).
  int pump(int timeout_ms, const std::function<void(Message&&)>& on_msg);

  // True when every posted frame has been written to the kernel.
  bool flushed() const;

  // Tolerate peers closing their end (set before the shutdown flush).
  void set_eof_ok(bool ok) { eof_ok_ = ok; }

  // Switches peer death from fatal (HQR_CHECK throw) to survivable: a dead
  // peer is marked down, its queued frames are discarded (tallied in
  // frames_dropped_peer_down), a LinkDown report goes to `control_fd` (the
  // launcher's channel; -1 = detection only, no re-wiring), and
  // hooks.on_peer_down fires. pump() additionally polls control_fd for
  // ReplacePeer messages and installs the passed descriptor. Call before
  // the first pump(); the default (off) behavior is bit-identical to
  // pre-fault builds.
  void enable_fault_tolerance(int control_fd, CommFaultHooks hooks);

  // True while frames to q are being dropped (between peer death and the
  // launcher's re-wire). Thread-safe.
  bool peer_down(int q) const;

  // Times the link to q has been re-wired (the LinkDown dedup epoch).
  int peer_epoch(int q) const;

  // Chaos hook (fault/plan.hpp DropLink): hard-closes both directions of
  // the stream to q, so both endpoints observe EOF as if the link failed.
  void sever_link(int q);

  // Chaos hook (DelayLink): holds outbound frames to q for `seconds`, then
  // restores normal flushing; inbound traffic is unaffected.
  void pause_peer(int q, double seconds);

  const CommCounters& counters() const { return counters_; }

  // Locked copy of the counters, safe to take mid-run while other threads
  // post() (the telemetry heartbeat samples this; plain counters() is only
  // consistent once sends quiesce).
  CommCounters counters_snapshot() const;

  // Instantaneous send-queue depth: frames posted but not yet fully written
  // to the kernel, and the payload+header bytes they still hold. Sampled by
  // the telemetry loop as the backpressure signal. Thread-safe.
  long long send_queue_frames() const;
  long long send_queue_bytes() const;

 private:
  struct SendState {
    std::deque<std::vector<std::uint8_t>> frames;  // header+payload
    std::size_t offset = 0;                        // into frames.front()
  };
  struct RecvState {
    std::uint8_t header_raw[kFrameHeaderBytes];  // wire bytes, decoded when full
    FrameHeader header;
    std::size_t header_got = 0;
    std::vector<std::uint8_t> payload;
    std::size_t payload_got = 0;
    bool closed = false;
  };

  // Both return true when the peer died under fault mode (already marked
  // down; the caller owes the hooks an on_peer_down).
  bool flush_peer(int q);
  // Reads from peer q; appends complete messages to `out`.
  bool drain_peer(int q, std::vector<Message>& out);

  void drop_queue_locked(int q);
  void mark_peer_down_locked(int q);
  void handle_control(std::vector<int>& replaced);

  int rank_;
  std::vector<Fd> peers_;
  std::vector<SendState> send_;
  std::vector<RecvState> recv_;
  // Guards send_, pending_frames_/bytes_, and every counters_ mutation:
  // send-side counters bump under it in post(), recv-side in drain_peer()
  // — so counters_snapshot() taken from the telemetry thread can never
  // observe a torn counter.
  mutable std::mutex send_mu_;
  long long pending_frames_ = 0;
  long long pending_bytes_ = 0;
  bool eof_ok_ = false;
  CommCounters counters_;
  // Fault-tolerant mode (all guarded by send_mu_ where shared).
  bool fault_mode_ = false;
  int control_fd_ = -1;
  CommFaultHooks hooks_;
  std::vector<char> down_;
  std::vector<int> down_epoch_;  // epoch_[q] at the instant q went down
  std::vector<int> epoch_;
  std::vector<double> paused_until_;  // 0 = not paused
  int paused_links_ = 0;
};

}  // namespace hqr::net
