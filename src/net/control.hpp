// Parent<->rank control channel of the fault-tolerant launcher
// (fault/ft_launcher.hpp): a private AF_UNIX socketpair per rank, separate
// from the rank mesh, carrying tiny fixed-size messages and — for link
// re-wiring — file descriptors as SCM_RIGHTS ancillary data.
//
//   ReplacePeer  parent -> rank: "your link to `peer` has been re-wired";
//                the new socket rides along as a passed descriptor. The
//                Comm pump installs it, bumps the link epoch and invokes
//                the on_peer_replaced hook (which replays the SentTileLog).
//   LinkDown    rank -> parent: "my link to `peer` died" (EOF or hard
//                socket error), stamped with the rank's current epoch for
//                that link. The parent uses the epoch to deduplicate the
//                two reports a severed link produces (one per endpoint)
//                and to discard reports that predate a re-wire it already
//                performed.
//
// The channel is deliberately not framed like the mesh (net/message.hpp):
// descriptors can only travel as ancillary data of a sendmsg, and the
// launcher must parse it without a Comm instance.
#pragma once

#include <cstdint>

#include "net/socket.hpp"

namespace hqr::net {

enum class ControlOp : std::uint32_t {
  ReplacePeer = 1,  // parent -> rank, carries one descriptor
  LinkDown = 2,     // rank -> parent
};

struct ControlMsg {
  std::uint32_t op = 0;
  std::int32_t peer = -1;
  std::int32_t epoch = 0;
  std::int32_t reserved = 0;
};

inline void send_control(int sock, ControlOp op, int peer, int epoch,
                         int fd_to_pass = -1) {
  ControlMsg m;
  m.op = static_cast<std::uint32_t>(op);
  m.peer = peer;
  m.epoch = epoch;
  send_with_fd(sock, &m, sizeof(m), fd_to_pass);
}

// Returns false on orderly EOF (the peer process is gone).
inline bool recv_control(int sock, ControlMsg* m, Fd* fd, double deadline) {
  return recv_with_fd(sock, m, sizeof(*m), fd, deadline);
}

}  // namespace hqr::net
