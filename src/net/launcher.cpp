#include "net/launcher.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif

#include "common/check.hpp"

namespace hqr::net {

namespace {

[[noreturn]] void child_main(int rank, Transport& transport,
                             const std::function<int(Comm&)>& rank_main) {
#ifdef __linux__
  // Die with the parent: nothing a rank does should outlive the launcher.
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
  int code = 1;
  try {
    // Mesh wiring happens inside the guard: a transport that cannot reach
    // its peers (rendezvous timeout, refused connect) exits nonzero and
    // the parent reports it, instead of unwinding into the fork's copy of
    // the parent stack.
    Comm comm(rank, transport.connect_rank(rank));
    code = rank_main(comm);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[rank %d] fatal: %s\n", rank, e.what());
    std::fflush(stderr);
    code = 1;
  } catch (...) {
    std::fprintf(stderr, "[rank %d] fatal: unknown exception\n", rank);
    std::fflush(stderr);
    code = 1;
  }
  // _exit, not exit: the child shares the parent's atexit state and stdio
  // with siblings; run no global destructors in a forked worker.
  std::fflush(nullptr);
  ::_exit(code);
}

}  // namespace

int run_ranks(int nranks, const std::function<int(Comm&)>& rank_main,
              const LaunchOptions& opts) {
  HQR_CHECK(nranks >= 1, "need at least one rank, got " << nranks);
  std::unique_ptr<Transport> transport = make_transport(opts.transport);
  transport->prepare(nranks);

  std::fflush(nullptr);  // don't duplicate buffered output into children
  std::vector<pid_t> pids(static_cast<std::size_t>(nranks), -1);
  for (int r = 0; r < nranks; ++r) {
    const pid_t pid = ::fork();
    HQR_CHECK(pid >= 0, "fork failed for rank " << r);
    if (pid == 0) child_main(r, *transport, rank_main);  // never returns
    pids[static_cast<std::size_t>(r)] = pid;
  }
  transport->parent_release();  // parent holds no mesh descriptors

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(
              opts.timeout_seconds > 0 ? opts.timeout_seconds : 0));

  int alive = nranks;
  int first_failure = 0;
  bool timed_out = false;
  while (alive > 0) {
    bool reaped = false;
    for (int r = 0; r < nranks; ++r) {
      pid_t& pid = pids[static_cast<std::size_t>(r)];
      if (pid < 0) continue;
      int status = 0;
      const pid_t got = ::waitpid(pid, &status, WNOHANG);
      if (got == 0) continue;
      HQR_CHECK(got == pid, "waitpid failed for rank " << r);
      pid = -1;
      --alive;
      reaped = true;
      int code = 0;
      if (WIFEXITED(status)) {
        code = WEXITSTATUS(status);
      } else if (WIFSIGNALED(status)) {
        std::fprintf(stderr, "[launcher] rank %d killed by signal %d\n", r,
                     WTERMSIG(status));
        code = 1;
      }
      if (code != 0 && first_failure == 0) first_failure = code;
    }
    if (alive == 0) break;
    if (first_failure != 0) break;  // one rank failed: kill the rest
    if (opts.timeout_seconds > 0 &&
        std::chrono::steady_clock::now() >= deadline) {
      std::fprintf(stderr, "[launcher] timeout after %.1fs, killing %d rank(s)\n",
                   opts.timeout_seconds, alive);
      timed_out = true;
      break;
    }
    if (!reaped) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  if (alive > 0) {
    for (pid_t pid : pids)
      if (pid > 0) ::kill(pid, SIGKILL);
    for (int r = 0; r < nranks; ++r) {
      pid_t& pid = pids[static_cast<std::size_t>(r)];
      if (pid < 0) continue;
      int status = 0;
      ::waitpid(pid, &status, 0);
      pid = -1;
    }
  }
  if (timed_out && first_failure == 0) first_failure = 1;
  return first_failure;
}

}  // namespace hqr::net
