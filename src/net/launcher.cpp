#include "net/launcher.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif

#include "common/check.hpp"

namespace hqr::net {

namespace {

[[noreturn]] void child_main(int rank, Transport& transport,
                             const std::function<int(Comm&)>& rank_main) {
#ifdef __linux__
  // Die with the parent: nothing a rank does should outlive the launcher.
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
  int code = 1;
  try {
    // Mesh wiring happens inside the guard: a transport that cannot reach
    // its peers (rendezvous timeout, refused connect) exits nonzero and
    // the parent reports it, instead of unwinding into the fork's copy of
    // the parent stack.
    Comm comm(rank, transport.connect_rank(rank));
    code = rank_main(comm);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[rank %d] fatal: %s\n", rank, e.what());
    std::fflush(stderr);
    code = 1;
  } catch (...) {
    std::fprintf(stderr, "[rank %d] fatal: unknown exception\n", rank);
    std::fflush(stderr);
    code = 1;
  }
  // _exit, not exit: the child shares the parent's atexit state and stdio
  // with siblings; run no global destructors in a forked worker.
  std::fflush(nullptr);
  ::_exit(code);
}

}  // namespace

namespace detail {

void record_exit(RankExit& e, int status) {
  if (WIFEXITED(status)) {
    e.exited = true;
    e.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    e.signaled = true;
    e.term_signal = WTERMSIG(status);
  }
}

// Tears down every still-running rank. With a grace budget the group first
// gets SIGTERM (a chance to flush traces and metrics before dying); ranks
// still alive at the deadline get SIGKILL. Blocks until all are reaped.
void kill_group(std::vector<pid_t>& pids, std::vector<RankExit>& exits,
                double grace_seconds) {
  const int n = static_cast<int>(pids.size());
  bool any = false;
  for (pid_t pid : pids) any = any || pid > 0;
  if (!any) return;
  if (grace_seconds > 0) {
    for (pid_t pid : pids)
      if (pid > 0) ::kill(pid, SIGTERM);
    const auto kill_at =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(grace_seconds));
    for (;;) {
      bool alive = false;
      for (int r = 0; r < n; ++r) {
        pid_t& pid = pids[static_cast<std::size_t>(r)];
        if (pid < 0) continue;
        int status = 0;
        const pid_t got = ::waitpid(pid, &status, WNOHANG);
        if (got == pid) {
          record_exit(exits[static_cast<std::size_t>(r)], status);
          exits[static_cast<std::size_t>(r)].killed_by_launcher = true;
          pid = -1;
        } else {
          alive = true;
        }
      }
      if (!alive || std::chrono::steady_clock::now() >= kill_at) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  for (pid_t pid : pids)
    if (pid > 0) ::kill(pid, SIGKILL);
  for (int r = 0; r < n; ++r) {
    pid_t& pid = pids[static_cast<std::size_t>(r)];
    if (pid < 0) continue;
    int status = 0;
    ::waitpid(pid, &status, 0);
    record_exit(exits[static_cast<std::size_t>(r)], status);
    exits[static_cast<std::size_t>(r)].killed_by_launcher = true;
    pid = -1;
  }
}

}  // namespace detail

using detail::kill_group;
using detail::record_exit;

LaunchReport run_ranks_report(int nranks,
                              const std::function<int(Comm&)>& rank_main,
                              const LaunchOptions& opts) {
  HQR_CHECK(nranks >= 1, "need at least one rank, got " << nranks);
  std::unique_ptr<Transport> transport = make_transport(opts.transport);
  transport->prepare(nranks);

  std::fflush(nullptr);  // don't duplicate buffered output into children
  std::vector<pid_t> pids(static_cast<std::size_t>(nranks), -1);
  for (int r = 0; r < nranks; ++r) {
    const pid_t pid = ::fork();
    HQR_CHECK(pid >= 0, "fork failed for rank " << r);
    if (pid == 0) child_main(r, *transport, rank_main);  // never returns
    pids[static_cast<std::size_t>(r)] = pid;
  }
  transport->parent_release();  // parent holds no mesh descriptors

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(
              opts.timeout_seconds > 0 ? opts.timeout_seconds : 0));

  LaunchReport report;
  report.ranks.resize(static_cast<std::size_t>(nranks));
  int alive = nranks;
  while (alive > 0) {
    bool reaped = false;
    for (int r = 0; r < nranks; ++r) {
      pid_t& pid = pids[static_cast<std::size_t>(r)];
      if (pid < 0) continue;
      int status = 0;
      const pid_t got = ::waitpid(pid, &status, WNOHANG);
      if (got == 0) continue;
      HQR_CHECK(got == pid, "waitpid failed for rank " << r);
      pid = -1;
      --alive;
      reaped = true;
      RankExit& e = report.ranks[static_cast<std::size_t>(r)];
      record_exit(e, status);
      int code = 0;
      if (e.exited) {
        code = e.exit_code;
      } else if (e.signaled) {
        std::fprintf(stderr, "[launcher] rank %d killed by signal %d\n", r,
                     e.term_signal);
        code = 1;
      }
      if (code != 0 && report.first_failure == 0) {
        report.first_failure = code;
        report.failed_rank = r;
      }
    }
    if (alive == 0) break;
    if (report.first_failure != 0) break;  // one rank failed: kill the rest
    if (opts.timeout_seconds > 0 &&
        std::chrono::steady_clock::now() >= deadline) {
      std::fprintf(stderr,
                   "[launcher] timeout after %.1fs, killing %d rank(s)\n",
                   opts.timeout_seconds, alive);
      report.timed_out = true;
      break;
    }
    if (!reaped) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  kill_group(pids, report.ranks, opts.term_grace_seconds);
  if (report.timed_out && report.first_failure == 0) report.first_failure = 1;
  return report;
}

int run_ranks(int nranks, const std::function<int(Comm&)>& rank_main,
              const LaunchOptions& opts) {
  return run_ranks_report(nranks, rank_main, opts).first_failure;
}

}  // namespace hqr::net
