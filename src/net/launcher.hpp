// Rank launcher: forks R worker processes connected by a fully wired
// socketpair mesh and supervises them.
//
// The mesh (one AF_UNIX socketpair per unordered rank pair) is created in
// the parent *before* any fork, so every child inherits all descriptors;
// each child keeps only its own row of the mesh and closes the rest. The
// parent closes everything and watches the children: the first nonzero
// exit, killing signal, or deadline overrun makes it SIGKILL the whole
// group and report failure — a crashed or wedged rank can never hang the
// caller (or CI).
#pragma once

#include <functional>

#include "net/comm.hpp"

namespace hqr::net {

struct LaunchOptions {
  // Wall-clock budget for the whole run; <= 0 means no deadline.
  double timeout_seconds = 0.0;
};

// Forks `nranks` children; each runs `rank_main` with its communicator and
// exits with its return value (uncaught hqr exceptions become exit code 1).
// Returns 0 when every rank exited 0, otherwise the first failing rank's
// exit code (or 1 for signals/timeouts). Must be called before the calling
// process spawns threads — fork() only carries the calling thread into the
// child.
int run_ranks(int nranks, const std::function<int(Comm&)>& rank_main,
              const LaunchOptions& opts = {});

}  // namespace hqr::net
