// Rank launcher: forks R worker processes connected by a transport-built
// socket mesh and supervises them.
//
// The transport (net/transport.hpp) decides how the mesh exists: the
// default `unix` backend creates one AF_UNIX socketpair per unordered rank
// pair in the parent *before* any fork, so every child inherits all
// descriptors and keeps only its own row; the `tcp` backend hands children
// a rendezvous port and they wire the mesh themselves after fork. Either
// way the parent closes everything and watches the children: the first
// nonzero exit, killing signal, or deadline overrun makes it terminate the
// whole group and report failure — a crashed or wedged rank can never hang
// the caller (or CI).
#pragma once

#include <functional>
#include <vector>

#include <sys/types.h>

#include "net/comm.hpp"
#include "net/transport.hpp"

namespace hqr::net {

struct LaunchOptions {
  // Wall-clock budget for the whole run; <= 0 means no deadline.
  double timeout_seconds = 0.0;
  // When tearing the group down after a failure or timeout: > 0 sends
  // SIGTERM first and escalates to SIGKILL only after this many seconds,
  // giving ranks a chance to flush traces/metrics; 0 keeps the historical
  // immediate-SIGKILL behavior.
  double term_grace_seconds = 0.0;
  // How ranks reach each other; defaults to the AF_UNIX socketpair mesh.
  TransportOptions transport;
};

// How one rank's process ended.
struct RankExit {
  bool exited = false;     // ran to _exit()
  int exit_code = 0;       // valid when exited
  bool signaled = false;   // killed by a signal
  int term_signal = 0;     // valid when signaled
  bool killed_by_launcher = false;  // torn down during group cleanup

  bool ok() const { return exited && exit_code == 0 && !signaled; }
};

// What the supervision loop observed, rank by rank — the structured answer
// to "which rank failed, and how" that the plain exit code of run_ranks
// collapses away. The fault-tolerant launcher (fault/ft_launcher.hpp)
// builds its failure events from the same observations.
struct LaunchReport {
  int first_failure = 0;   // first failing rank's exit code (1 for signals)
  int failed_rank = -1;    // rank of that first failure; -1 when none
  bool timed_out = false;  // the wall-clock budget expired
  std::vector<RankExit> ranks;

  bool ok() const { return first_failure == 0 && !timed_out; }
};

// Forks `nranks` children; each runs `rank_main` with its communicator and
// exits with its return value (uncaught hqr exceptions — including a
// transport that cannot wire the mesh in time — become exit code 1).
// Must be called before the calling process spawns threads — fork() only
// carries the calling thread into the child.
LaunchReport run_ranks_report(int nranks,
                              const std::function<int(Comm&)>& rank_main,
                              const LaunchOptions& opts = {});

// Compact form: 0 when every rank exited 0, otherwise the first failing
// rank's exit code (or 1 for signals/timeouts).
int run_ranks(int nranks, const std::function<int(Comm&)>& rank_main,
              const LaunchOptions& opts = {});

namespace detail {

// Tears down every pid still > 0 in `pids` and reaps it into `exits`
// (marking killed_by_launcher). With grace_seconds > 0 the group gets
// SIGTERM first, SIGKILL only for stragglers past the deadline. Shared by
// the plain and fault-tolerant launchers.
void kill_group(std::vector<pid_t>& pids, std::vector<RankExit>& exits,
                double grace_seconds);

// Classifies one waitpid status into a RankExit.
void record_exit(RankExit& e, int status);

}  // namespace detail

}  // namespace hqr::net
