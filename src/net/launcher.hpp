// Rank launcher: forks R worker processes connected by a transport-built
// socket mesh and supervises them.
//
// The transport (net/transport.hpp) decides how the mesh exists: the
// default `unix` backend creates one AF_UNIX socketpair per unordered rank
// pair in the parent *before* any fork, so every child inherits all
// descriptors and keeps only its own row; the `tcp` backend hands children
// a rendezvous port and they wire the mesh themselves after fork. Either
// way the parent closes everything and watches the children: the first
// nonzero exit, killing signal, or deadline overrun makes it SIGKILL the
// whole group and report failure — a crashed or wedged rank can never hang
// the caller (or CI).
#pragma once

#include <functional>

#include "net/comm.hpp"
#include "net/transport.hpp"

namespace hqr::net {

struct LaunchOptions {
  // Wall-clock budget for the whole run; <= 0 means no deadline.
  double timeout_seconds = 0.0;
  // How ranks reach each other; defaults to the AF_UNIX socketpair mesh.
  TransportOptions transport;
};

// Forks `nranks` children; each runs `rank_main` with its communicator and
// exits with its return value (uncaught hqr exceptions — including a
// transport that cannot wire the mesh in time — become exit code 1).
// Returns 0 when every rank exited 0, otherwise the first failing rank's
// exit code (or 1 for signals/timeouts). Must be called before the calling
// process spawns threads — fork() only carries the calling thread into the
// child.
int run_ranks(int nranks, const std::function<int(Comm&)>& rank_main,
              const LaunchOptions& opts = {});

}  // namespace hqr::net
