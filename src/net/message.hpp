// Wire format of the message-passing layer: framed, tagged messages.
//
// Every frame is a fixed 32-byte header followed by `bytes` of payload.
// The header carries the message tag, the sender's rank and a 32-bit id
// whose meaning depends on the tag:
//
//   Data    id = producer task index in the (deterministically rebuilt)
//           TaskGraph. Since the graph assigns each tile version a unique
//           writer, the producer id *is* the (tile, version) key: the
//           receiver derives which tile regions the payload holds from the
//           producer's KernelOp, and which local tasks it releases from the
//           graph's successor lists. Under tree broadcasts a frame's src is
//           the rank that *forwarded* it (its tree parent), not necessarily
//           the producer's rank — the id alone identifies the payload.
//   Gather  id = sender rank; payload holds the sender's final-version tile
//           regions and T factors (the end-of-run collect onto rank 0).
//   Stats   id = sender rank; payload is a DistRankStats block.
//   Bye     id = sender rank; empty payload (rank 0's shutdown release).
//   Abort   id = sender rank; empty payload (peer hit an error; tear down).
//   SyncPing/SyncPong
//           id = round number; the clock-alignment handshake at mesh setup
//           (net/clock_sync.hpp). Ping carries the sender's local send
//           time; Pong echoes it plus the responder's receive/send times.
//   Telemetry
//           id = sender rank; payload is a DistTelemetry heartbeat shipped
//           periodically to rank 0 while the DAG executes.
//   SubmitQR .. ErrorReply
//           the QR-as-a-service request/response protocol; id = the
//           client-chosen request or stream id. Payload layouts live in
//           serve/protocol.hpp — the frame format and versioning below are
//           shared with the rank mesh unchanged.
//
// The header is serialized explicitly little-endian and carries its own
// version and size, so a peer built against a different wire revision — or
// one whose native byte order differs — is rejected loudly at the first
// frame instead of corrupting state silently. Payload scalars (tile
// doubles, POD stats blocks) still travel in native order; the transport
// handshake (net/transport.hpp) verifies both sides agree on that order
// before any frame flows.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/check.hpp"

namespace hqr::net {

enum class Tag : std::uint32_t {
  Data = 1,
  Gather = 2,
  Stats = 3,
  Bye = 4,
  Abort = 5,
  SyncPing = 6,
  SyncPong = 7,
  Telemetry = 8,
  // --- QR-as-a-service request/response tags (serve/protocol.hpp) ---
  SubmitQR = 9,      // id = request id; one factorization request
  SubmitBatch = 10,  // id = request id; many small QRs fused server-side
  StreamOpen = 11,   // id = stream id; open a streaming TSQR session
  StreamAppend = 12, // id = stream id; a block of rows for the session
  StreamQuery = 13,  // id = stream id; ask for the current R (empty payload)
  StreamClose = 14,  // id = stream id; final R then session teardown
  Cancel = 15,       // id = request id to abandon
  Shutdown = 16,     // id unused; graceful server stop (drain, then exit)
  Status = 17,       // id unused; ask for server-wide counters
  Result = 18,       // id = request id; R (and optionally Q) of one request
  BatchResult = 19,  // id = request id; the R of every problem in a batch
  StreamR = 20,      // id = stream id; R snapshot of a streaming session
  StatusReply = 21,  // id unused; ServerStatus counter block
  ErrorReply = 22,   // id = offending request id; typed error + message
};

// Number of tag slots (tag values index per-tag counters directly; slot 0
// is unused).
inline constexpr int kTagCount = 23;

inline int tag_index(Tag t) { return static_cast<int>(t); }

// True when the raw header tag names a Tag this build understands; frames
// with anything else are rejected before the value is cast to Tag.
inline bool valid_tag(std::uint32_t raw) { return raw >= 1 && raw < kTagCount; }

inline const char* tag_name(Tag t) {
  switch (t) {
    case Tag::Data: return "Data";
    case Tag::Gather: return "Gather";
    case Tag::Stats: return "Stats";
    case Tag::Bye: return "Bye";
    case Tag::Abort: return "Abort";
    case Tag::SyncPing: return "SyncPing";
    case Tag::SyncPong: return "SyncPong";
    case Tag::Telemetry: return "Telemetry";
    case Tag::SubmitQR: return "SubmitQR";
    case Tag::SubmitBatch: return "SubmitBatch";
    case Tag::StreamOpen: return "StreamOpen";
    case Tag::StreamAppend: return "StreamAppend";
    case Tag::StreamQuery: return "StreamQuery";
    case Tag::StreamClose: return "StreamClose";
    case Tag::Cancel: return "Cancel";
    case Tag::Shutdown: return "Shutdown";
    case Tag::Status: return "Status";
    case Tag::Result: return "Result";
    case Tag::BatchResult: return "BatchResult";
    case Tag::StreamR: return "StreamR";
    case Tag::StatusReply: return "StatusReply";
    case Tag::ErrorReply: return "ErrorReply";
  }
  return "Unknown";
}

inline constexpr std::uint32_t kMagic = 0x4851524d;  // "HQRM"
// What kMagic looks like when a peer serialized it with the opposite byte
// order (an old memcpy-framed build): detected and reported as an
// endianness mismatch rather than a generic bad frame.
inline constexpr std::uint32_t kMagicSwapped = 0x4d525148;

// Bumped whenever the header layout or the meaning of a field changes.
inline constexpr std::uint16_t kWireVersion = 2;
// Serialized header size; rides in the header itself so a peer with a
// larger (newer) layout is rejected instead of desynchronizing the stream.
inline constexpr std::size_t kFrameHeaderBytes = 32;

struct FrameHeader {
  std::uint32_t magic = kMagic;
  std::uint16_t version = kWireVersion;
  std::uint16_t header_bytes = static_cast<std::uint16_t>(kFrameHeaderBytes);
  std::uint32_t tag = 0;
  std::int32_t src = -1;
  std::int32_t id = -1;
  std::uint32_t reserved = 0;  // keeps `bytes` 8-aligned; always zero
  std::uint64_t bytes = 0;     // payload length
};

namespace wire {

inline void put_u16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}
inline void put_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}
inline void put_u64(std::uint8_t* p, std::uint64_t v) {
  put_u32(p, static_cast<std::uint32_t>(v));
  put_u32(p + 4, static_cast<std::uint32_t>(v >> 32));
}
inline std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}
inline std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}
inline std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

}  // namespace wire

// Explicit little-endian serialization: identical bytes on every host, so
// the header itself can never be the thing that differs between peers.
inline void encode_header(const FrameHeader& h,
                          std::uint8_t out[kFrameHeaderBytes]) {
  wire::put_u32(out + 0, h.magic);
  wire::put_u16(out + 4, h.version);
  wire::put_u16(out + 6, h.header_bytes);
  wire::put_u32(out + 8, h.tag);
  wire::put_u32(out + 12, static_cast<std::uint32_t>(h.src));
  wire::put_u32(out + 16, static_cast<std::uint32_t>(h.id));
  wire::put_u32(out + 20, h.reserved);
  wire::put_u64(out + 24, h.bytes);
}

inline FrameHeader decode_header(const std::uint8_t in[kFrameHeaderBytes]) {
  FrameHeader h;
  h.magic = wire::get_u32(in + 0);
  h.version = wire::get_u16(in + 4);
  h.header_bytes = wire::get_u16(in + 6);
  h.tag = wire::get_u32(in + 8);
  h.src = static_cast<std::int32_t>(wire::get_u32(in + 12));
  h.id = static_cast<std::int32_t>(wire::get_u32(in + 16));
  h.reserved = wire::get_u32(in + 20);
  h.bytes = wire::get_u64(in + 24);
  return h;
}

// A fully received message, as handed to the progress-loop handler.
struct Message {
  Tag tag = Tag::Data;
  int src = -1;
  std::int32_t id = -1;
  std::vector<std::uint8_t> payload;
};

// Append-only little helper for building payloads of doubles/integers.
class PayloadWriter {
 public:
  explicit PayloadWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void raw(const void* p, std::size_t n) {
    if (n == 0) return;  // p may be null for an empty matrix payload
    const auto* b = static_cast<const std::uint8_t*>(p);
    out_.insert(out_.end(), b, b + n);
  }
  void f64(const double* p, std::size_t count) {
    raw(p, count * sizeof(double));
  }
  void i64(std::int64_t v) { raw(&v, sizeof(v)); }

 private:
  std::vector<std::uint8_t>& out_;
};

// Sequential reader over a received payload. Every read is bounds-checked
// against the buffer — a truncated or malformed frame throws hqr::Error
// instead of reading past the payload; callers verify totals with
// remaining().
class PayloadReader {
 public:
  explicit PayloadReader(const std::vector<std::uint8_t>& in) : in_(in) {}

  void raw(void* p, std::size_t n) {
    HQR_CHECK(n <= in_.size() - pos_,
              "malformed payload: read of " << n << " bytes at offset " << pos_
                                            << " overruns " << in_.size()
                                            << "-byte buffer");
    if (n != 0) std::memcpy(p, in_.data() + pos_, n);  // p may be null if n==0
    pos_ += n;
  }
  void f64(double* p, std::size_t count) { raw(p, count * sizeof(double)); }
  void skip(std::size_t n) {
    HQR_CHECK(n <= in_.size() - pos_,
              "malformed payload: skip of " << n << " bytes at offset " << pos_
                                            << " overruns " << in_.size()
                                            << "-byte buffer");
    pos_ += n;
  }
  std::int64_t i64() {
    std::int64_t v;
    raw(&v, sizeof(v));
    return v;
  }
  std::size_t remaining() const { return in_.size() - pos_; }

 private:
  const std::vector<std::uint8_t>& in_;
  std::size_t pos_ = 0;
};

}  // namespace hqr::net
