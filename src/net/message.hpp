// Wire format of the message-passing layer: framed, tagged messages.
//
// Every frame is a fixed 24-byte header followed by `bytes` of payload.
// The header carries the message tag, the sender's rank and a 32-bit id
// whose meaning depends on the tag:
//
//   Data    id = producer task index in the (deterministically rebuilt)
//           TaskGraph. Since the graph assigns each tile version a unique
//           writer, the producer id *is* the (tile, version) key: the
//           receiver derives which tile regions the payload holds from the
//           producer's KernelOp, and which local tasks it releases from the
//           graph's successor lists.
//   Gather  id = sender rank; payload holds the sender's final-version tile
//           regions and T factors (the end-of-run collect onto rank 0).
//   Stats   id = sender rank; payload is a DistRankStats block.
//   Bye     id = sender rank; empty payload (rank 0's shutdown release).
//   Abort   id = sender rank; empty payload (peer hit an error; tear down).
//   SyncPing/SyncPong
//           id = round number; the clock-alignment handshake at mesh setup
//           (net/clock_sync.hpp). Ping carries the sender's local send
//           time; Pong echoes it plus the responder's receive/send times.
//   Telemetry
//           id = sender rank; payload is a DistTelemetry heartbeat shipped
//           periodically to rank 0 while the DAG executes.
//
// All ranks run the same binary on the same host (forked by the launcher),
// so scalar fields are shipped in native byte order.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

namespace hqr::net {

enum class Tag : std::uint32_t {
  Data = 1,
  Gather = 2,
  Stats = 3,
  Bye = 4,
  Abort = 5,
  SyncPing = 6,
  SyncPong = 7,
  Telemetry = 8,
};

// Number of tag slots (tag values index per-tag counters directly; slot 0
// is unused).
inline constexpr int kTagCount = 9;

inline int tag_index(Tag t) { return static_cast<int>(t); }

inline const char* tag_name(Tag t) {
  switch (t) {
    case Tag::Data: return "Data";
    case Tag::Gather: return "Gather";
    case Tag::Stats: return "Stats";
    case Tag::Bye: return "Bye";
    case Tag::Abort: return "Abort";
    case Tag::SyncPing: return "SyncPing";
    case Tag::SyncPong: return "SyncPong";
    case Tag::Telemetry: return "Telemetry";
  }
  return "Unknown";
}

inline constexpr std::uint32_t kMagic = 0x4851524d;  // "HQRM"

struct FrameHeader {
  std::uint32_t magic = kMagic;
  std::uint32_t tag = 0;
  std::int32_t src = -1;
  std::int32_t id = -1;
  std::uint64_t bytes = 0;  // payload length
};
static_assert(sizeof(FrameHeader) == 24, "wire header must be packed");

// A fully received message, as handed to the progress-loop handler.
struct Message {
  Tag tag = Tag::Data;
  int src = -1;
  std::int32_t id = -1;
  std::vector<std::uint8_t> payload;
};

// Append-only little helper for building payloads of doubles/integers.
class PayloadWriter {
 public:
  explicit PayloadWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    out_.insert(out_.end(), b, b + n);
  }
  void f64(const double* p, std::size_t count) {
    raw(p, count * sizeof(double));
  }
  void i64(std::int64_t v) { raw(&v, sizeof(v)); }

 private:
  std::vector<std::uint8_t>& out_;
};

// Sequential reader over a received payload; throws nothing, callers bound
// the reads by construction and verify totals with remaining().
class PayloadReader {
 public:
  explicit PayloadReader(const std::vector<std::uint8_t>& in) : in_(in) {}

  void raw(void* p, std::size_t n) {
    std::memcpy(p, in_.data() + pos_, n);
    pos_ += n;
  }
  void f64(double* p, std::size_t count) { raw(p, count * sizeof(double)); }
  std::int64_t i64() {
    std::int64_t v;
    raw(&v, sizeof(v));
    return v;
  }
  std::size_t remaining() const { return in_.size() - pos_; }

 private:
  const std::vector<std::uint8_t>& in_;
  std::size_t pos_ = 0;
};

}  // namespace hqr::net
