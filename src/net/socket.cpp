#include "net/socket.hpp"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/check.hpp"
#include "common/stopwatch.hpp"

namespace hqr::net {

void Fd::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

std::pair<Fd, Fd> stream_pair() {
  int fds[2];
  HQR_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0,
            "socketpair: " << std::strerror(errno));
  return {Fd(fds[0]), Fd(fds[1])};
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  HQR_CHECK(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
            "fcntl(O_NONBLOCK): " << std::strerror(errno));
}

std::ptrdiff_t write_some(int fd, const void* p, std::size_t n) {
  for (;;) {
    const ssize_t r = ::send(fd, p, n, MSG_NOSIGNAL);
    if (r >= 0) return r;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    HQR_CHECK(false, "socket write: " << std::strerror(errno));
  }
}

std::ptrdiff_t read_some(int fd, void* p, std::size_t n) {
  for (;;) {
    const ssize_t r = ::recv(fd, p, n, 0);
    if (r > 0) return r;
    if (r == 0) return -1;  // orderly EOF: the peer closed
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    HQR_CHECK(false, "socket read: " << std::strerror(errno));
  }
}

namespace {

sockaddr_in ipv4_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  HQR_CHECK(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
            "'" << host << "' is not a numeric IPv4 address");
  return addr;
}

// Remaining poll budget in whole milliseconds, at least 1 while the
// deadline has not passed (so a sub-millisecond budget still polls once).
int budget_ms(double deadline) {
  const double left = deadline - monotonic_seconds();
  if (left <= 0.0) return 0;
  const double ms = left * 1e3;
  return ms < 1.0 ? 1 : (ms > 60000.0 ? 60000 : static_cast<int>(ms));
}

void poll_for(int fd, short events, double deadline, const char* what) {
  for (;;) {
    const int ms = budget_ms(deadline);
    HQR_CHECK(ms > 0, "" << what << " timed out");
    pollfd p{};
    p.fd = fd;
    p.events = events;
    const int rc = ::poll(&p, 1, ms);
    if (rc < 0) {
      HQR_CHECK(errno == EINTR,
                "" << what << ": poll: " << std::strerror(errno));
      continue;
    }
    if (rc > 0) return;
  }
}

}  // namespace

Fd tcp_listen(const std::string& host, std::uint16_t* port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  HQR_CHECK(fd.valid(), "socket(AF_INET): " << std::strerror(errno));
  const int one = 1;
  HQR_CHECK(::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                         sizeof(one)) == 0,
            "setsockopt(SO_REUSEADDR): " << std::strerror(errno));
  sockaddr_in addr = ipv4_addr(host, *port);
  HQR_CHECK(::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)) == 0,
            "bind " << host << ":" << *port << ": " << std::strerror(errno));
  HQR_CHECK(::listen(fd.get(), SOMAXCONN) == 0,
            "listen: " << std::strerror(errno));
  // Nonblocking, so tcp_accept can never wedge past its deadline when a
  // pending connection aborts between poll and accept.
  set_nonblocking(fd.get());
  socklen_t len = sizeof(addr);
  HQR_CHECK(::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                          &len) == 0,
            "getsockname: " << std::strerror(errno));
  *port = ntohs(addr.sin_port);
  return fd;
}

Fd tcp_accept(int listener, double deadline) {
  for (;;) {
    poll_for(listener, POLLIN, deadline, "tcp accept");
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd >= 0) return Fd(fd);
    // The connection can vanish between poll and accept; keep waiting.
    HQR_CHECK(errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
                  errno == ECONNABORTED,
              "accept: " << std::strerror(errno));
  }
}

Fd tcp_connect(const std::string& host, std::uint16_t port, double deadline) {
  const sockaddr_in addr = ipv4_addr(host, port);
  for (;;) {
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    HQR_CHECK(fd.valid(), "socket(AF_INET): " << std::strerror(errno));
    set_nonblocking(fd.get());
    const int rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                             sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) {
      HQR_CHECK(errno == EINTR || errno == ECONNREFUSED,
                "connect " << host << ":" << port << ": "
                           << std::strerror(errno));
      // Refused usually means the listener is not up *yet* (the mesh wires
      // itself while ranks are still starting); retry until the deadline.
      HQR_CHECK(budget_ms(deadline) > 0,
                "connect " << host << ":" << port << " timed out");
      ::poll(nullptr, 0, 20);  // back off instead of hammering the port
      continue;
    }
    if (rc != 0) poll_for(fd.get(), POLLOUT, deadline, "tcp connect");
    int err = 0;
    socklen_t len = sizeof(err);
    HQR_CHECK(::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) == 0,
              "getsockopt(SO_ERROR): " << std::strerror(errno));
    if (err == 0) return fd;
    HQR_CHECK(err == ECONNREFUSED || err == ETIMEDOUT,
              "connect " << host << ":" << port << ": " << std::strerror(err));
    HQR_CHECK(budget_ms(deadline) > 0,
              "connect " << host << ":" << port << " timed out");
    ::poll(nullptr, 0, 20);
  }
}

void set_tcp_nodelay(int fd) {
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) == 0)
    return;
  // AF_UNIX peers reach here through the shared Comm setup; Nagle does not
  // exist there, so "not a TCP socket" is fine and anything else is not.
  HQR_CHECK(errno == EOPNOTSUPP || errno == ENOPROTOOPT || errno == EINVAL,
            "setsockopt(TCP_NODELAY): " << std::strerror(errno));
}

void write_all(int fd, const void* p, std::size_t n, double deadline) {
  const auto* b = static_cast<const std::uint8_t*>(p);
  std::size_t done = 0;
  while (done < n) {
    const std::ptrdiff_t w = write_some(fd, b + done, n - done);
    done += static_cast<std::size_t>(w);
    if (done < n && w == 0)
      poll_for(fd, POLLOUT, deadline, "handshake write");
  }
}

void read_all(int fd, void* p, std::size_t n, double deadline) {
  auto* b = static_cast<std::uint8_t*>(p);
  std::size_t done = 0;
  while (done < n) {
    const std::ptrdiff_t r = read_some(fd, b + done, n - done);
    HQR_CHECK(r >= 0, "handshake read: peer closed after " << done << " of "
                                                           << n << " bytes");
    done += static_cast<std::size_t>(r);
    if (done < n && r == 0) poll_for(fd, POLLIN, deadline, "handshake read");
  }
}

void send_with_fd(int sock, const void* p, std::size_t n, int fd_to_pass) {
  iovec iov{};
  iov.iov_base = const_cast<void*>(p);
  iov.iov_len = n;
  msghdr msg{};
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  alignas(cmsghdr) char cbuf[CMSG_SPACE(sizeof(int))];
  if (fd_to_pass >= 0) {
    std::memset(cbuf, 0, sizeof(cbuf));
    msg.msg_control = cbuf;
    msg.msg_controllen = sizeof(cbuf);
    cmsghdr* cm = CMSG_FIRSTHDR(&msg);
    cm->cmsg_level = SOL_SOCKET;
    cm->cmsg_type = SCM_RIGHTS;
    cm->cmsg_len = CMSG_LEN(sizeof(int));
    std::memcpy(CMSG_DATA(cm), &fd_to_pass, sizeof(int));
  }
  for (;;) {
    const ssize_t r = ::sendmsg(sock, &msg, MSG_NOSIGNAL);
    if (r == static_cast<ssize_t>(n)) return;
    HQR_CHECK(r < 0, "sendmsg: short control message (" << r << " of " << n
                                                        << " bytes)");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      poll_for(sock, POLLOUT, monotonic_seconds() + 10.0, "control send");
      continue;
    }
    HQR_CHECK(false, "sendmsg: " << std::strerror(errno));
  }
}

bool recv_with_fd(int sock, void* p, std::size_t n, Fd* received,
                  double deadline) {
  iovec iov{};
  iov.iov_base = p;
  iov.iov_len = n;
  for (;;) {
    msghdr msg{};
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;
    alignas(cmsghdr) char cbuf[CMSG_SPACE(sizeof(int))];
    msg.msg_control = cbuf;
    msg.msg_controllen = sizeof(cbuf);
    const ssize_t r = ::recvmsg(sock, &msg, MSG_CMSG_CLOEXEC);
    if (r == 0) return false;  // orderly EOF
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        poll_for(sock, POLLIN, deadline, "control recv");
        continue;
      }
      HQR_CHECK(false, "recvmsg: " << std::strerror(errno));
    }
    // Control messages are tiny and sent in one atomic sendmsg on an
    // AF_UNIX stream, so a partial read means a desynchronized channel.
    HQR_CHECK(r == static_cast<ssize_t>(n),
              "recvmsg: short control message (" << r << " of " << n
                                                 << " bytes)");
    for (cmsghdr* cm = CMSG_FIRSTHDR(&msg); cm != nullptr;
         cm = CMSG_NXTHDR(&msg, cm)) {
      if (cm->cmsg_level == SOL_SOCKET && cm->cmsg_type == SCM_RIGHTS) {
        int fd = -1;
        std::memcpy(&fd, CMSG_DATA(cm), sizeof(int));
        if (received != nullptr)
          *received = Fd(fd);
        else if (fd >= 0)
          ::close(fd);
      }
    }
    return true;
  }
}

}  // namespace hqr::net
