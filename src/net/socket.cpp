#include "net/socket.hpp"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/check.hpp"

namespace hqr::net {

void Fd::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

std::pair<Fd, Fd> stream_pair() {
  int fds[2];
  HQR_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0,
            "socketpair: " << std::strerror(errno));
  return {Fd(fds[0]), Fd(fds[1])};
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  HQR_CHECK(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
            "fcntl(O_NONBLOCK): " << std::strerror(errno));
}

std::ptrdiff_t write_some(int fd, const void* p, std::size_t n) {
  for (;;) {
    const ssize_t r = ::send(fd, p, n, MSG_NOSIGNAL);
    if (r >= 0) return r;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    HQR_CHECK(false, "socket write: " << std::strerror(errno));
  }
}

std::ptrdiff_t read_some(int fd, void* p, std::size_t n) {
  for (;;) {
    const ssize_t r = ::recv(fd, p, n, 0);
    if (r > 0) return r;
    if (r == 0) return -1;  // orderly EOF: the peer closed
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    HQR_CHECK(false, "socket read: " << std::strerror(errno));
  }
}

}  // namespace hqr::net
