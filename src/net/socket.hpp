// Thin RAII + error-checked wrappers over the POSIX stream sockets the
// message-passing layer runs on. Two families of primitives live here:
//
//  * AF_UNIX socketpairs (created by the launcher before fork) — reliable,
//    ordered byte streams with kernel buffering, no address setup, and
//    automatic teardown when a peer dies; the `unix` transport's mesh.
//  * TCP sockets (listen/accept/connect with deadlines, TCP_NODELAY) — the
//    `tcp` transport's rendezvous and mesh links, usable over loopback or
//    real interfaces.
//
// Everything returns the same nonblocking-friendly Fd, so Comm never knows
// which transport produced its peers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace hqr::net {

// Owning file descriptor. Move-only.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  ~Fd() { reset(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    const int f = fd_;
    fd_ = -1;
    return f;
  }
  void reset();

 private:
  int fd_ = -1;
};

// A connected AF_UNIX stream socketpair; throws hqr::Error on failure.
std::pair<Fd, Fd> stream_pair();

// Marks the descriptor nonblocking (the progress loop multiplexes with
// poll); throws hqr::Error on failure.
void set_nonblocking(int fd);

// Nonblocking write/read of up to n bytes. Returns the byte count moved
// (possibly 0 when the kernel buffer is full/empty), or -1 on EOF (read
// only). Throws hqr::Error on a hard socket error.
std::ptrdiff_t write_some(int fd, const void* p, std::size_t n);
std::ptrdiff_t read_some(int fd, void* p, std::size_t n);

// --- TCP primitives (net/transport.hpp builds the rank mesh on these) ---

// Binds a listening TCP socket on `host` (numeric IPv4, e.g. "127.0.0.1");
// `*port` selects the port (0 asks the kernel for an ephemeral one) and
// receives the port actually bound. Throws hqr::Error on failure.
Fd tcp_listen(const std::string& host, std::uint16_t* port);

// Accepts one connection, waiting at most until `deadline` (a
// monotonic_seconds() instant). Throws hqr::Error on timeout or error.
Fd tcp_accept(int listener, double deadline);

// Connects to host:port, waiting at most until `deadline`. The returned
// socket is nonblocking. Throws hqr::Error on timeout, refusal, or error.
Fd tcp_connect(const std::string& host, std::uint16_t port, double deadline);

// Disables Nagle batching. Control frames (Bye/Abort/Telemetry, tree
// forwards of small tiles) are latency-sensitive and the Comm layer writes
// whole frames at once, so there is nothing for Nagle to usefully coalesce.
// Throws hqr::Error on failure; no-op on non-TCP sockets.
void set_tcp_nodelay(int fd);

// Blocking-style exact-count transfer with a deadline, usable on sockets in
// any blocking mode (poll-driven). Setup handshakes only — the Comm pump
// keeps using the nonblocking some-variants. Throws hqr::Error on timeout,
// EOF, or error.
void write_all(int fd, const void* p, std::size_t n, double deadline);
void read_all(int fd, void* p, std::size_t n, double deadline);

// --- Descriptor passing (the fault-tolerant launcher's re-wiring path) ---

// Sends `n` bytes plus, when fd_to_pass >= 0, one file descriptor as
// SCM_RIGHTS ancillary data over an AF_UNIX socket. The message is sent
// atomically (small control payloads only). Throws hqr::Error on failure,
// including a closed peer.
void send_with_fd(int sock, const void* p, std::size_t n, int fd_to_pass);

// Receives exactly `n` bytes and any descriptor that rode along (stored in
// *received, which is left invalid when none arrived). Returns false on
// orderly EOF before any byte, true on a full message; throws on a short or
// failed read. `sock` may be nonblocking — the call polls until the message
// arrives or `deadline` passes.
bool recv_with_fd(int sock, void* p, std::size_t n, Fd* received,
                  double deadline);

}  // namespace hqr::net
