// Thin RAII + error-checked wrappers over the POSIX stream sockets the
// message-passing layer runs on. The rank mesh uses AF_UNIX socketpairs
// (created by the launcher before fork): reliable, ordered byte streams
// with kernel buffering, no address setup, and automatic teardown when a
// peer dies — exactly the transport the eager-send protocol needs on one
// machine.
#pragma once

#include <cstddef>
#include <utility>

namespace hqr::net {

// Owning file descriptor. Move-only.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  ~Fd() { reset(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    const int f = fd_;
    fd_ = -1;
    return f;
  }
  void reset();

 private:
  int fd_ = -1;
};

// A connected AF_UNIX stream socketpair; throws hqr::Error on failure.
std::pair<Fd, Fd> stream_pair();

// Marks the descriptor nonblocking (the progress loop multiplexes with
// poll); throws hqr::Error on failure.
void set_nonblocking(int fd);

// Nonblocking write/read of up to n bytes. Returns the byte count moved
// (possibly 0 when the kernel buffer is full/empty), or -1 on EOF (read
// only). Throws hqr::Error on a hard socket error.
std::ptrdiff_t write_some(int fd, const void* p, std::size_t n);
std::ptrdiff_t read_some(int fd, void* p, std::size_t n);

}  // namespace hqr::net
