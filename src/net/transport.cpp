#include "net/transport.hpp"

#include <algorithm>
#include <cstring>

#include "common/check.hpp"
#include "common/stopwatch.hpp"
#include "net/message.hpp"

namespace hqr::net {

namespace {

// Probe value shipped via memcpy in native order. Tile payloads and POD
// stats blocks travel in native order too, so two ranks whose probes
// disagree would corrupt every double they exchange — reject at handshake.
constexpr std::uint32_t kOrderProbe = 0x01020304;

// Rendezvous hello, rank -> rank 0. Everything but the probe is explicit
// little-endian so the *hello itself* parses on any host.
//   [0..3]  magic (LE)
//   [4..5]  wire version (LE)
//   [6..7]  mesh listener port (LE)
//   [8..11] sender rank (LE)
//   [12..15] native byte-order probe (memcpy)
constexpr std::size_t kHelloBytes = 16;

void encode_hello(std::uint8_t out[kHelloBytes], int rank,
                  std::uint16_t mesh_port) {
  wire::put_u32(out + 0, kMagic);
  wire::put_u16(out + 4, kWireVersion);
  wire::put_u16(out + 6, mesh_port);
  wire::put_u32(out + 8, static_cast<std::uint32_t>(rank));
  std::memcpy(out + 12, &kOrderProbe, sizeof(kOrderProbe));
}

void check_magic_version_order(const std::uint8_t* p, const char* who) {
  const std::uint32_t magic = wire::get_u32(p + 0);
  HQR_CHECK(magic == kMagic, "tcp rendezvous: bad magic from " << who);
  const std::uint16_t version = wire::get_u16(p + 4);
  HQR_CHECK(version == kWireVersion,
            "tcp rendezvous: " << who << " speaks wire v" << version
                               << ", this build speaks v" << kWireVersion);
  std::uint32_t probe = 0;
  std::memcpy(&probe, p + 12, sizeof(probe));
  HQR_CHECK(probe == kOrderProbe,
            "tcp rendezvous: " << who
                               << " has a different native byte order; "
                               << "payload doubles would corrupt silently");
}

// Address-book reply, rank 0 -> every rank: the same magic/version/probe
// header (so joiners validate rank 0 too) followed by nranks LE ports.
std::vector<std::uint8_t> encode_book(const std::vector<std::uint16_t>& ports) {
  std::vector<std::uint8_t> out(kHelloBytes + 2 * ports.size());
  encode_hello(out.data(), /*rank=*/0, /*mesh_port=*/ports[0]);
  for (std::size_t q = 0; q < ports.size(); ++q)
    wire::put_u16(out.data() + kHelloBytes + 2 * q, ports[q]);
  return out;
}

// Mesh-link hello, dialer -> acceptor: magic + dialer rank, both LE.
constexpr std::size_t kMeshHelloBytes = 8;

void send_mesh_hello(int fd, int rank, double deadline) {
  std::uint8_t buf[kMeshHelloBytes];
  wire::put_u32(buf + 0, kMagic);
  wire::put_u32(buf + 4, static_cast<std::uint32_t>(rank));
  write_all(fd, buf, sizeof(buf), deadline);
}

int recv_mesh_hello(int fd, double deadline) {
  std::uint8_t buf[kMeshHelloBytes];
  read_all(fd, buf, sizeof(buf), deadline);
  HQR_CHECK(wire::get_u32(buf + 0) == kMagic,
            "tcp mesh: bad hello magic from dialing peer");
  return static_cast<int>(wire::get_u32(buf + 4));
}

// Accept the mesh links from every rank in (rank, nranks) — dialers always
// have the *higher* rank — identifying each by its hello.
void accept_mesh_links(int listener, int rank, int nranks, double deadline,
                       std::vector<Fd>& peers) {
  for (int i = rank + 1; i < nranks; ++i) {
    Fd fd = tcp_accept(listener, deadline);
    const int who = recv_mesh_hello(fd.get(), deadline);
    HQR_CHECK(who > rank && who < nranks && !peers[static_cast<std::size_t>(who)].valid(),
              "tcp mesh: unexpected hello from rank " << who << " on rank "
                                                      << rank);
    set_tcp_nodelay(fd.get());
    peers[static_cast<std::size_t>(who)] = std::move(fd);
  }
}

class UnixTransport final : public Transport {
 public:
  const char* name() const override { return "unix"; }

  void prepare(int nranks) override {
    mesh_.resize(static_cast<std::size_t>(nranks));
    for (auto& row : mesh_) row.resize(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r)
      for (int q = r + 1; q < nranks; ++q) {
        auto [a, b] = stream_pair();
        mesh_[static_cast<std::size_t>(r)][static_cast<std::size_t>(q)] =
            std::move(a);
        mesh_[static_cast<std::size_t>(q)][static_cast<std::size_t>(r)] =
            std::move(b);
      }
  }

  std::vector<Fd> connect_rank(int rank) override {
    // The child inherited the whole mesh; keep only this rank's row.
    std::vector<Fd> peers = std::move(mesh_[static_cast<std::size_t>(rank)]);
    mesh_.clear();
    return peers;
  }

  void parent_release() override { mesh_.clear(); }

 private:
  // mesh_[r][q] is rank r's socket to rank q (invalid when r == q).
  std::vector<std::vector<Fd>> mesh_;
};

class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(const TransportOptions& opts) : opts_(opts) {}

  const char* name() const override { return "tcp"; }

  void prepare(int nranks) override {
    nranks_ = nranks;
    if (nranks > 1) {
      port_ = 0;
      listener_ = tcp_listen(opts_.host, &port_);
    }
  }

  std::vector<Fd> connect_rank(int rank) override {
    if (nranks_ <= 1) return std::vector<Fd>(1);
    if (rank == 0) return tcp_mesh_rank0(std::move(listener_), nranks_, opts_);
    listener_.reset();  // inherited rendezvous socket belongs to rank 0
    return tcp_mesh_join(rank, nranks_, opts_.host, port_, opts_);
  }

  void parent_release() override { listener_.reset(); }

 private:
  TransportOptions opts_;
  int nranks_ = 0;
  Fd listener_;
  std::uint16_t port_ = 0;
};

}  // namespace

std::vector<Fd> tcp_mesh_rank0(Fd listener, int nranks,
                               const TransportOptions& opts) {
  const double deadline =
      monotonic_seconds() + opts.connect_timeout_seconds;
  std::vector<std::uint16_t> ports(static_cast<std::size_t>(nranks), 0);
  std::uint16_t mesh_port = 0;
  Fd mesh_listener = tcp_listen(opts.host, &mesh_port);
  ports[0] = mesh_port;

  // Collect one hello per joining rank; the connections stay open until
  // every rank reported, then all receive the completed address book.
  std::vector<Fd> rendezvous(static_cast<std::size_t>(nranks));
  for (int i = 1; i < nranks; ++i) {
    Fd c = tcp_accept(listener.get(), deadline);
    std::uint8_t hello[kHelloBytes];
    read_all(c.get(), hello, sizeof(hello), deadline);
    check_magic_version_order(hello, "a joining rank");
    const int who = static_cast<int>(wire::get_u32(hello + 8));
    HQR_CHECK(who >= 1 && who < nranks &&
                  !rendezvous[static_cast<std::size_t>(who)].valid(),
              "tcp rendezvous: duplicate or out-of-range rank " << who);
    ports[static_cast<std::size_t>(who)] = wire::get_u16(hello + 6);
    rendezvous[static_cast<std::size_t>(who)] = std::move(c);
  }
  const std::vector<std::uint8_t> book = encode_book(ports);
  for (int q = 1; q < nranks; ++q)
    write_all(rendezvous[static_cast<std::size_t>(q)].get(), book.data(),
              book.size(), deadline);
  rendezvous.clear();
  listener.reset();

  // Rank 0 dials nobody: every other rank connects here.
  std::vector<Fd> peers(static_cast<std::size_t>(nranks));
  accept_mesh_links(mesh_listener.get(), 0, nranks, deadline, peers);
  return peers;
}

std::vector<Fd> tcp_mesh_join(int rank, int nranks, const std::string& host,
                              std::uint16_t port,
                              const TransportOptions& opts) {
  HQR_CHECK(rank >= 1 && rank < nranks,
            "tcp_mesh_join: bad rank " << rank << " of " << nranks);
  const double deadline =
      monotonic_seconds() + opts.connect_timeout_seconds;
  std::uint16_t mesh_port = 0;
  Fd mesh_listener = tcp_listen(opts.host, &mesh_port);

  Fd rendezvous = tcp_connect(host, port, deadline);
  std::uint8_t hello[kHelloBytes];
  encode_hello(hello, rank, mesh_port);
  write_all(rendezvous.get(), hello, sizeof(hello), deadline);

  std::vector<std::uint8_t> book(kHelloBytes +
                                 2 * static_cast<std::size_t>(nranks));
  read_all(rendezvous.get(), book.data(), book.size(), deadline);
  check_magic_version_order(book.data(), "rank 0");
  rendezvous.reset();
  std::vector<std::uint16_t> ports(static_cast<std::size_t>(nranks), 0);
  for (int q = 0; q < nranks; ++q)
    ports[static_cast<std::size_t>(q)] =
        wire::get_u16(book.data() + kHelloBytes + 2 * q);

  // Every listener already existed when rank 0 published the book (each
  // rank binds before it says hello), so dialing lower ranks cannot race.
  std::vector<Fd> peers(static_cast<std::size_t>(nranks));
  for (int q = 0; q < rank; ++q) {
    Fd fd = tcp_connect(host, ports[static_cast<std::size_t>(q)], deadline);
    send_mesh_hello(fd.get(), rank, deadline);
    set_tcp_nodelay(fd.get());
    peers[static_cast<std::size_t>(q)] = std::move(fd);
  }
  accept_mesh_links(mesh_listener.get(), rank, nranks, deadline, peers);
  return peers;
}

std::unique_ptr<Transport> make_transport(const TransportOptions& opts) {
  if (opts.kind == "unix") return std::make_unique<UnixTransport>();
  if (opts.kind == "tcp") return std::make_unique<TcpTransport>(opts);
  HQR_CHECK(false, "unknown transport '" << opts.kind << "' (want unix|tcp)");
}

}  // namespace hqr::net
