// Transport abstraction: how a rank obtains its connected peer sockets.
//
// The launcher (net/launcher.hpp) forks R rank processes and every rank
// needs peers[q] — one reliable, ordered byte stream per other rank — to
// hand to Comm. How that mesh comes to exist is the transport's business:
//
//   unix  The original backend: one AF_UNIX socketpair per unordered rank
//         pair, all created in the parent *before* fork so every child
//         inherits them; each child keeps its own row and closes the rest.
//         Zero address setup, single-host only.
//
//   tcp   A rank-0 rendezvous: the parent binds one listening socket and
//         passes its port to every child. Each rank binds its own mesh
//         listener, dials the rendezvous, and sends a hello carrying its
//         rank, mesh port, the wire version and a native byte-order probe;
//         rank 0 collects all hellos, rejects version or byte-order
//         mismatches loudly, and replies with the full port table. Ranks
//         then wire the all-pairs mesh directly (r dials q for q < r,
//         accepts q > r) with TCP_NODELAY on every link. Works over
//         loopback today and is the shape that spans real hosts: only the
//         rendezvous address must be known in advance.
//
// Both backends produce plain stream sockets, so Comm, the framing and the
// whole runtime above are transport-blind.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/socket.hpp"

namespace hqr::net {

struct TransportOptions {
  std::string kind = "unix";  // "unix" | "tcp"
  // tcp: numeric IPv4 interface the rendezvous and mesh listeners bind and
  // dialers target. Loopback keeps everything on one host; a real address
  // lets ranks span machines.
  std::string host = "127.0.0.1";
  // tcp: wall-clock budget for the whole mesh setup (rendezvous + wiring).
  // A rank that cannot reach its peers in time throws, exits nonzero, and
  // the launcher tears the job down instead of hanging.
  double connect_timeout_seconds = 20.0;
};

// Lifecycle mirrors the launcher's fork dance: prepare() in the parent
// before any fork (allocate what children must inherit), connect_rank() in
// each child (produce that rank's peers, drop everything else), and
// parent_release() in the parent once every child is running.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual const char* name() const = 0;
  virtual void prepare(int nranks) = 0;
  // Returns peers where peers[q] talks to rank q and peers[rank] is
  // invalid. Throws hqr::Error when the mesh cannot be wired in time.
  virtual std::vector<Fd> connect_rank(int rank) = 0;
  virtual void parent_release() = 0;
};

// Builds the backend named by opts.kind; throws hqr::Error on an unknown
// kind.
std::unique_ptr<Transport> make_transport(const TransportOptions& opts = {});

// --- tcp rendezvous building blocks, exposed for in-process tests and for
// --- future cross-host launchers that are not fork-based ---

// Serve the rendezvous on `listener` as rank 0 and wire rank 0's mesh row.
std::vector<Fd> tcp_mesh_rank0(Fd listener, int nranks,
                               const TransportOptions& opts);

// Join as rank `rank` (>= 1): dial the rendezvous at host:port, exchange
// hellos, and wire this rank's mesh row.
std::vector<Fd> tcp_mesh_join(int rank, int nranks, const std::string& host,
                              std::uint16_t port,
                              const TransportOptions& opts);

}  // namespace hqr::net
