#include "obs/analyzer.hpp"

#include <algorithm>
#include <array>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

#include "common/check.hpp"
#include "common/table.hpp"

namespace hqr::obs {
namespace {

// Longest dependency chain using recorded durations. Graph indices are a
// topological order by construction (kernel lists are sequentially valid),
// so one forward sweep suffices. Tasks absent from the trace get duration 0.
void realized_critical_path(const std::vector<TraceEvent>& events,
                            const TaskGraph& graph, AnalysisReport* rep) {
  const int n = graph.size();
  std::vector<double> dur(static_cast<std::size_t>(n), 0.0);
  for (const TraceEvent& e : events)
    if (e.task >= 0 && e.task < n)
      dur[static_cast<std::size_t>(e.task)] = e.end - e.start;

  std::vector<double> chain_in(static_cast<std::size_t>(n), 0.0);
  std::vector<std::int32_t> pred(static_cast<std::size_t>(n), -1);
  double best = 0.0;
  std::int32_t best_task = -1;
  for (std::int32_t i = 0; i < n; ++i) {
    const double through = chain_in[i] + dur[i];
    if (through > best) {
      best = through;
      best_task = i;
    }
    for (std::int32_t s : graph.successors(i)) {
      if (through > chain_in[s]) {
        chain_in[s] = through;
        pred[s] = i;
      }
    }
  }
  rep->realized_critical_path = best;
  for (std::int32_t t = best_task; t >= 0; t = pred[t])
    rep->critical_tasks.push_back(t);
  std::reverse(rep->critical_tasks.begin(), rep->critical_tasks.end());
}

}  // namespace

AnalysisReport analyze_trace(const TraceRecorder& trace,
                             const TaskGraph* graph, int top_k) {
  AnalysisReport rep;
  const std::vector<TraceEvent> events = trace.sorted_events();
  rep.tasks = static_cast<long long>(events.size());
  for (const TraceEvent& e : events) rep.makespan = std::max(rep.makespan, e.end);

  // Kernel-type breakdown.
  std::array<KernelStat, kKernelTypeCount> by_kernel{};
  for (const TraceEvent& e : events) {
    KernelStat& s = by_kernel[kernel_type_index(e.type)];
    s.type = e.type;
    ++s.count;
    s.total_seconds += e.end - e.start;
    rep.busy_seconds += e.end - e.start;
  }
  for (KernelStat& s : by_kernel) {
    if (s.count == 0) continue;
    s.mean_seconds = s.total_seconds / static_cast<double>(s.count);
    rep.kernels.push_back(s);
  }
  std::sort(rep.kernels.begin(), rep.kernels.end(),
            [](const KernelStat& a, const KernelStat& b) {
              return a.total_seconds > b.total_seconds;
            });
  if (static_cast<int>(rep.kernels.size()) > top_k)
    rep.kernels.resize(static_cast<std::size_t>(top_k));

  // Per-lane utilization and stall gaps. Events within one (lane, sub) are
  // already in start order (sorted_events sorts by start).
  std::map<std::pair<std::int32_t, std::int32_t>, LaneStat> lanes;
  std::map<std::pair<std::int32_t, std::int32_t>, double> lane_cursor;
  std::vector<StallGap> gaps;
  for (const TraceEvent& e : events) {
    const auto key = std::make_pair(e.lane, e.sub);
    LaneStat& ls = lanes[key];
    ls.lane = e.lane;
    ls.sub = e.sub;
    ls.accel = ls.accel || e.on_accel;
    ++ls.tasks;
    ls.busy_seconds += e.end - e.start;
    auto [it, fresh] = lane_cursor.try_emplace(key, 0.0);
    if (e.start > it->second)
      gaps.push_back({e.lane, e.sub, it->second, e.start});
    it->second = std::max(it->second, e.end);
    (void)fresh;
  }
  for (auto& [key, cursor] : lane_cursor)
    if (cursor < rep.makespan)
      gaps.push_back({key.first, key.second, cursor, rep.makespan});
  rep.lanes = static_cast<int>(lanes.size());
  for (auto& [key, ls] : lanes) {
    ls.utilization = rep.makespan > 0 ? ls.busy_seconds / rep.makespan : 0.0;
    rep.lane_stats.push_back(ls);
  }
  rep.utilization = (rep.makespan > 0 && rep.lanes > 0)
                        ? rep.busy_seconds / (rep.makespan * rep.lanes)
                        : 0.0;
  std::sort(gaps.begin(), gaps.end(), [](const StallGap& a, const StallGap& b) {
    return a.length() > b.length();
  });
  if (static_cast<int>(gaps.size()) > top_k)
    gaps.resize(static_cast<std::size_t>(top_k));
  rep.top_gaps = std::move(gaps);

  // Per-rank breakdown, only meaningful for merged distributed traces
  // (flows recorded; lane == rank there by merge_rank_traces' contract).
  const std::vector<FlowEvent> flows = trace.flows();
  if (!flows.empty()) {
    std::map<std::int32_t, RankStat> ranks;
    std::map<std::int32_t, std::set<std::int32_t>> workers;
    for (const TraceEvent& e : events) {
      RankStat& r = ranks[e.lane];
      r.rank = e.lane;
      ++r.tasks;
      r.compute_seconds += e.end - e.start;
      workers[e.lane].insert(e.sub);
    }
    for (const FlowEvent& fl : flows) {
      if (!fl.complete()) continue;
      ranks[fl.src_rank].rank = fl.src_rank;
      ranks[fl.dest_rank].rank = fl.dest_rank;
      ++ranks[fl.src_rank].messages_out;
      RankStat& in = ranks[fl.dest_rank];
      ++in.messages_in;
      in.max_message_latency_seconds = std::max(
          in.max_message_latency_seconds, fl.recv_time - fl.send_time);
    }
    for (auto& [rank, r] : ranks) {
      r.workers = static_cast<int>(workers[rank].size());
      r.idle_seconds =
          std::max(0.0, r.workers * rep.makespan - r.compute_seconds);
      rep.rank_stats.push_back(r);
    }
  }

  if (graph != nullptr) {
    realized_critical_path(events, *graph, &rep);
    rep.critical_path_fraction =
        rep.makespan > 0 ? rep.realized_critical_path / rep.makespan : 0.0;
  }
  return rep;
}

std::string AnalysisReport::to_text() const {
  std::ostringstream os;
  os.precision(6);
  os << "== trace analysis ==\n"
     << "makespan            " << makespan << " s over " << tasks
     << " tasks on " << lanes << " lanes\n"
     << "lane utilization    " << 100.0 * utilization << " %\n";
  if (realized_critical_path > 0.0) {
    os << "realized crit. path " << realized_critical_path << " s ("
       << 100.0 * critical_path_fraction << " % of makespan, "
       << critical_tasks.size() << " tasks)\n";
  }
  TextTable kt({"kernel", "tasks", "total s", "mean s", "% busy"});
  for (const KernelStat& s : kernels) {
    kt.row()
        .add(kernel_name(s.type))
        .add(s.count)
        .add(s.total_seconds, 5)
        .add(s.mean_seconds, 6)
        .add(busy_seconds > 0 ? 100.0 * s.total_seconds / busy_seconds : 0.0,
             3);
  }
  os << "\nbottleneck kernels:\n";
  kt.print(os);
  if (!top_gaps.empty()) {
    TextTable gt({"lane", "sub", "idle from", "to", "seconds"});
    for (const StallGap& g : top_gaps) {
      gt.row().add(g.lane).add(g.sub).add(g.start, 5).add(g.end, 5).add(
          g.length(), 5);
    }
    os << "\nlargest pipeline stalls:\n";
    gt.print(os);
  }
  if (!rank_stats.empty()) {
    TextTable rt({"rank", "workers", "tasks", "compute s", "idle s",
                  "msgs in", "msgs out", "max latency s"});
    for (const RankStat& r : rank_stats) {
      rt.row()
          .add(r.rank)
          .add(r.workers)
          .add(r.tasks)
          .add(r.compute_seconds, 5)
          .add(r.idle_seconds, 5)
          .add(r.messages_in)
          .add(r.messages_out)
          .add(r.max_message_latency_seconds, 6);
    }
    os << "\nper-rank breakdown:\n";
    rt.print(os);
  }
  return os.str();
}

void AnalysisReport::write_json(std::ostream& os) const {
  os.precision(17);
  os << "{\n"
     << "  \"makespan_seconds\": " << makespan << ",\n"
     << "  \"tasks\": " << tasks << ",\n"
     << "  \"lanes\": " << lanes << ",\n"
     << "  \"busy_seconds\": " << busy_seconds << ",\n"
     << "  \"utilization\": " << utilization << ",\n"
     << "  \"realized_critical_path_seconds\": " << realized_critical_path
     << ",\n"
     << "  \"critical_path_fraction\": " << critical_path_fraction << ",\n";
  os << "  \"critical_tasks\": [";
  for (std::size_t i = 0; i < critical_tasks.size(); ++i)
    os << (i ? "," : "") << critical_tasks[i];
  os << "],\n  \"kernels\": [";
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const KernelStat& s = kernels[i];
    os << (i ? "," : "") << "\n    {\"kernel\": \"" << kernel_name(s.type)
       << "\", \"count\": " << s.count
       << ", \"total_seconds\": " << s.total_seconds
       << ", \"mean_seconds\": " << s.mean_seconds << '}';
  }
  os << "\n  ],\n  \"lane_stats\": [";
  for (std::size_t i = 0; i < lane_stats.size(); ++i) {
    const LaneStat& s = lane_stats[i];
    os << (i ? "," : "") << "\n    {\"lane\": " << s.lane
       << ", \"sub\": " << s.sub << ", \"accel\": "
       << (s.accel ? "true" : "false") << ", \"tasks\": " << s.tasks
       << ", \"busy_seconds\": " << s.busy_seconds
       << ", \"utilization\": " << s.utilization << '}';
  }
  os << "\n  ],\n  \"top_gaps\": [";
  for (std::size_t i = 0; i < top_gaps.size(); ++i) {
    const StallGap& g = top_gaps[i];
    os << (i ? "," : "") << "\n    {\"lane\": " << g.lane
       << ", \"sub\": " << g.sub << ", \"start\": " << g.start
       << ", \"end\": " << g.end << '}';
  }
  os << "\n  ],\n  \"rank_stats\": [";
  for (std::size_t i = 0; i < rank_stats.size(); ++i) {
    const RankStat& r = rank_stats[i];
    os << (i ? "," : "") << "\n    {\"rank\": " << r.rank
       << ", \"workers\": " << r.workers << ", \"tasks\": " << r.tasks
       << ", \"compute_seconds\": " << r.compute_seconds
       << ", \"idle_seconds\": " << r.idle_seconds
       << ", \"messages_in\": " << r.messages_in
       << ", \"messages_out\": " << r.messages_out
       << ", \"max_message_latency_seconds\": "
       << r.max_message_latency_seconds << '}';
  }
  os << "\n  ]\n}\n";
}

void AnalysisReport::save_json(const std::string& path) const {
  std::ofstream f(path);
  HQR_CHECK(f.good(), "cannot open " << path << " for writing");
  write_json(f);
  f.flush();
  HQR_CHECK(f.good(), "write to " << path << " failed");
}

}  // namespace hqr::obs
