// Post-run bottleneck analyzer: turns a recorded trace (plus, optionally,
// the task graph that was executed) into the quantities the paper uses to
// explain its results — realized critical path, kernel-type breakdown,
// per-lane utilization and pipeline-stall gaps (§V, Figs. 5-9 discussion).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "dag/task_graph.hpp"
#include "obs/trace.hpp"

namespace hqr::obs {

struct KernelStat {
  KernelType type;
  long long count = 0;
  double total_seconds = 0.0;
  double mean_seconds = 0.0;
};

struct LaneStat {
  std::int32_t lane = 0;
  std::int32_t sub = 0;
  bool accel = false;
  long long tasks = 0;
  double busy_seconds = 0.0;
  double utilization = 0.0;  // busy / makespan
};

// An idle interval on one lane between two consecutive tasks (or before the
// first / after the last): where pipelining failed to keep the lane fed.
struct StallGap {
  std::int32_t lane = 0;
  std::int32_t sub = 0;
  double start = 0.0;
  double end = 0.0;
  double length() const { return end - start; }
};

// Per-rank comm/compute/idle breakdown of a merged distributed trace
// (merge_rank_traces output: lane == rank, sub == worker, flows recorded).
// Populated only when the trace carries flow events.
struct RankStat {
  std::int32_t rank = 0;
  int workers = 0;  // distinct worker tracks seen on the rank
  long long tasks = 0;
  double compute_seconds = 0.0;  // sum of task durations on the rank
  double idle_seconds = 0.0;     // workers * makespan - compute
  long long messages_in = 0;     // complete inbound flows
  long long messages_out = 0;
  // Largest wire latency (aligned recv - send) over inbound flows: how long
  // the slowest tile transfer into this rank spent in flight.
  double max_message_latency_seconds = 0.0;
};

struct AnalysisReport {
  double makespan = 0.0;
  long long tasks = 0;
  int lanes = 0;               // distinct (lane, sub) pairs
  double busy_seconds = 0.0;   // sum of task durations
  double utilization = 0.0;    // busy / (makespan * lanes)

  // Longest dependency chain through the *recorded* durations (needs the
  // graph; 0 when analyzed without one). On a contention-free run this
  // equals the model critical path; the excess of makespan over it is
  // scheduling/communication/queueing delay.
  double realized_critical_path = 0.0;
  double critical_path_fraction = 0.0;    // realized_cp / makespan
  std::vector<std::int32_t> critical_tasks;  // the realizing chain, in order

  std::vector<KernelStat> kernels;  // sorted by total_seconds, descending
  std::vector<LaneStat> lane_stats; // sorted by (lane, sub)
  std::vector<StallGap> top_gaps;   // largest first, at most top_k
  std::vector<RankStat> rank_stats; // distributed traces only (see RankStat)

  std::string to_text() const;
  void write_json(std::ostream& os) const;
  // Throws hqr::Error when the file cannot be written.
  void save_json(const std::string& path) const;
};

// Analyzes `trace`; pass the executed `graph` to enable the realized
// critical path (trace.task must index into it). `top_k` bounds both the
// bottleneck-kernel list and the stall-gap list.
AnalysisReport analyze_trace(const TraceRecorder& trace,
                             const TaskGraph* graph = nullptr, int top_k = 10);

}  // namespace hqr::obs
