#include "obs/metrics.hpp"

#include <cmath>
#include <fstream>
#include <ostream>

#include "common/check.hpp"

namespace hqr::obs {

double Histogram::bucket_upper(int i) {
  return kMinBucket * std::ldexp(1.0, i + 1);
}

int Histogram::bucket_of(double seconds) {
  if (!(seconds > kMinBucket)) return 0;
  const int i = std::ilogb(seconds / kMinBucket);
  return i >= kBuckets ? kBuckets - 1 : i;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  return histograms_[name];
}

void MetricsRegistry::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lk(mu_);
  os.precision(17);
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": " << c.value();
    first = false;
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": " << g.value();
    first = false;
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ",") << "\n    \"" << name
       << "\": {\"count\": " << h.count() << ", \"sum\": " << h.sum()
       << ", \"buckets\": [";
    bool bfirst = true;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      if (h.bucket_count(i) == 0) continue;
      os << (bfirst ? "" : ", ") << "{\"le\": " << Histogram::bucket_upper(i)
         << ", \"count\": " << h.bucket_count(i) << '}';
      bfirst = false;
    }
    os << "]}";
    first = false;
  }
  os << "\n  }\n}\n";
}

void MetricsRegistry::write_text(std::ostream& os) const {
  std::lock_guard<std::mutex> lk(mu_);
  os.precision(6);
  for (const auto& [name, c] : counters_) os << name << " " << c.value() << "\n";
  for (const auto& [name, g] : gauges_) os << name << " " << g.value() << "\n";
  for (const auto& [name, h] : histograms_)
    os << name << " count=" << h.count() << " sum=" << h.sum()
       << " mean=" << h.mean() << "\n";
}

void MetricsRegistry::save_json(const std::string& path) const {
  std::ofstream f(path);
  HQR_CHECK(f.good(), "cannot open " << path << " for writing");
  write_json(f);
  f.flush();
  HQR_CHECK(f.good(), "write to " << path << " failed");
}

}  // namespace hqr::obs
