// Metrics registry: named counters, gauges and fixed-bucket duration
// histograms, lock-free on the hot path.
//
// Registration (counter()/gauge()/histogram()) takes a mutex and may
// allocate; do it once before the measured region and keep the returned
// reference — updates through the reference are wait-free atomics shared by
// any number of threads. References stay valid for the registry's lifetime
// (node-based storage).
//
// Producers (executor, simulator) accept a nullable MetricsRegistry*; a
// null pointer means fully disabled, with no clock reads or atomics.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>

namespace hqr::obs {

namespace detail {

// fetch_add for doubles via CAS (libstdc++ 12 lacks lock-free FP fetch_add).
inline void atomic_add(std::atomic<double>& a, double d) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

class Counter {
 public:
  void add(long long d = 1) { v_.fetch_add(d, std::memory_order_relaxed); }
  long long value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<long long> v_{0};
};

// Accumulating double (e.g. busy seconds). `add` is atomic per call.
class Gauge {
 public:
  void add(double d) { detail::atomic_add(v_, d); }
  void set(double d) { v_.store(d, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// Duration histogram with fixed log2-spaced buckets: bucket i counts
// observations in [0.1µs * 2^i, 0.1µs * 2^(i+1)), clamped at both ends —
// the span 0.1µs .. ~3.6min covers every kernel and makespan seen here.
class Histogram {
 public:
  static constexpr int kBuckets = 32;
  static constexpr double kMinBucket = 1e-7;  // seconds

  // Upper bound of bucket `i` (inclusive upper edge used in exports).
  static double bucket_upper(int i);
  // Bucket index for a duration in seconds.
  static int bucket_of(double seconds);

  void observe(double seconds) {
    buckets_[static_cast<std::size_t>(bucket_of(seconds))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    detail::atomic_add(sum_, seconds);
  }

  long long count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const { return count() > 0 ? sum() / count() : 0.0; }
  long long bucket_count(int i) const {
    return buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<long long>, kBuckets> buckets_{};
  std::atomic<long long> count_{0};
  std::atomic<double> sum_{0.0};
};

class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // Snapshot exports. Safe to call while updates continue (values are
  // individually-consistent relaxed reads).
  void write_json(std::ostream& os) const;
  void write_text(std::ostream& os) const;
  // Throws hqr::Error when the file cannot be written.
  void save_json(const std::string& path) const;

 private:
  mutable std::mutex mu_;  // guards registration only
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace hqr::obs
