#include "obs/obs_cli.hpp"

namespace hqr::obs {

std::map<std::string, std::string> obs_flag_spec() {
  return {{"trace", ""}, {"metrics", ""}, {"report", "false"}};
}

std::map<std::string, std::string> with_obs_flags(
    std::map<std::string, std::string> spec) {
  return merge_flags(std::move(spec), obs_flag_spec());
}

ObsSession::ObsSession(const Cli& cli)
    : trace_path_(cli.str("trace")),
      metrics_path_(cli.str("metrics")),
      report_(cli.flag("report")) {
  if (!trace_path_.empty() || report_)
    trace_ = std::make_unique<TraceRecorder>();
  if (!metrics_path_.empty()) metrics_ = std::make_unique<MetricsRegistry>();
}

AnalysisReport ObsSession::finish(const TaskGraph* graph, std::ostream& log) {
  AnalysisReport rep;
  if (trace_ && !trace_path_.empty()) {
    trace_->save(trace_path_);
    log << "trace (" << trace_->size() << " events) written to "
        << trace_path_ << "\n";
  }
  if (metrics_) {
    metrics_->save_json(metrics_path_);
    log << "metrics written to " << metrics_path_ << "\n";
  }
  if (trace_ && !trace_->empty()) {
    rep = analyze_trace(*trace_, graph);
    if (report_) log << rep.to_text();
  }
  return rep;
}

}  // namespace hqr::obs
