// Standard observability command-line wiring for examples and benches.
//
// Usage:
//   Cli cli(argc, argv, obs::with_obs_flags({{"m", "600"}, ...}));
//   obs::ObsSession obs(cli);
//   opts.trace = obs.trace();      // nullptr when --trace not given
//   opts.metrics = obs.metrics();  // nullptr when --metrics not given
//   ... run ...
//   obs.finish(&graph);            // writes files, prints analyzer report
#pragma once

#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "common/cli.hpp"
#include "obs/analyzer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hqr::obs {

// The observability flag group:
//   --trace=<path>    record a per-task trace; ".json" writes Chrome/Perfetto
//                     trace-event JSON, anything else CSV
//   --metrics=<path>  write the metrics registry as JSON
//   --report          print the bottleneck-analyzer report to stdout
std::map<std::string, std::string> obs_flag_spec();

// Convenience: merge_flags(spec, obs_flag_spec()).
std::map<std::string, std::string> with_obs_flags(
    std::map<std::string, std::string> spec);

// Owns the recorder/registry selected by the flags and writes the outputs.
class ObsSession {
 public:
  explicit ObsSession(const Cli& cli);

  TraceRecorder* trace() { return trace_.get(); }
  MetricsRegistry* metrics() { return metrics_.get(); }
  bool report_requested() const { return report_; }
  bool any_enabled() const {
    return trace_ != nullptr || metrics_ != nullptr;
  }

  // Writes --trace/--metrics files and, with --report (or implied by
  // --trace), prints the analyzer summary. Pass the executed graph to get
  // the realized critical path; returns the report (empty when no trace).
  AnalysisReport finish(const TaskGraph* graph = nullptr,
                        std::ostream& log = std::cout);

 private:
  std::string trace_path_;
  std::string metrics_path_;
  bool report_ = false;
  std::unique_ptr<TraceRecorder> trace_;
  std::unique_ptr<MetricsRegistry> metrics_;
};

}  // namespace hqr::obs
