#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>

#include "common/check.hpp"

namespace hqr::obs {
namespace {

// Checked open/close so a mistyped --trace path fails loudly instead of
// silently dropping the trace.
std::ofstream open_checked(const std::string& path) {
  std::ofstream f(path);
  HQR_CHECK(f.good(), "cannot open " << path << " for writing");
  return f;
}

void close_checked(std::ofstream& f, const std::string& path) {
  f.flush();
  HQR_CHECK(f.good(), "write to " << path << " failed");
}

void json_escape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

}  // namespace

std::string event_label(const TraceEvent& e) {
  std::ostringstream os;
  os << kernel_name(e.type);
  if (e.row >= 0) {
    os << '(' << e.row << ',' << e.piv << ',' << e.k;
    if (e.j >= 0) os << ";j=" << e.j;
    os << ')';
  }
  return os.str();
}

void TraceRecorder::ensure_lanes(int n) {
  if (n > lanes()) buffers_.resize(static_cast<std::size_t>(n));
}

std::size_t TraceRecorder::size() const {
  std::size_t total = 0;
  for (const auto& b : buffers_) total += b.size();
  return total;
}

double TraceRecorder::makespan() const {
  double m = 0.0;
  for (const auto& b : buffers_)
    for (const TraceEvent& e : b) m = std::max(m, e.end);
  return m;
}

std::vector<TraceEvent> TraceRecorder::sorted_events() const {
  std::vector<TraceEvent> all;
  all.reserve(size());
  for (const auto& b : buffers_) all.insert(all.end(), b.begin(), b.end());
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start != b.start) return a.start < b.start;
              if (a.lane != b.lane) return a.lane < b.lane;
              return a.sub < b.sub;
            });
  return all;
}

void TraceRecorder::save_csv(const std::string& path) const {
  std::ofstream f = open_checked(path);
  f << "task,lane,sub,kernel,start,end,accel,row,piv,k,j\n";
  f.precision(17);
  for (const TraceEvent& e : sorted_events()) {
    f << e.task << ',' << e.lane << ',' << e.sub << ','
      << kernel_name(e.type) << ',' << e.start << ',' << e.end << ','
      << (e.on_accel ? 1 : 0) << ',' << e.row << ',' << e.piv << ',' << e.k
      << ',' << e.j << '\n';
  }
  close_checked(f, path);
}

void TraceRecorder::write_chrome_json(std::ostream& os) const {
  os.precision(17);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  const std::vector<TraceEvent> events = sorted_events();
  // Metadata: name each (lane, sub) pair so Perfetto shows "node N" process
  // rows with "core C" / "accel C" thread tracks (runtime: "worker N").
  std::set<std::int32_t> seen_lanes;
  std::set<std::pair<std::int32_t, std::int32_t>> seen_subs;
  for (const TraceEvent& e : events) {
    if (seen_lanes.insert(e.lane).second) {
      sep();
      os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << e.lane
         << ",\"args\":{\"name\":\"";
      json_escape(os, lane_label_);
      os << ' ' << e.lane << "\"}}";
      sep();
      os << "{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":" << e.lane
         << ",\"args\":{\"sort_index\":" << e.lane << "}}";
    }
    if (seen_subs.insert({e.lane, e.sub}).second) {
      sep();
      os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << e.lane
         << ",\"tid\":" << e.sub << ",\"args\":{\"name\":\"";
      json_escape(os, e.on_accel ? "accel" : sub_label_);
      os << ' ' << e.sub << "\"}}";
    }
  }
  for (const TraceEvent& e : events) {
    sep();
    os << "{\"name\":\"";
    json_escape(os, event_label(e));
    os << "\",\"cat\":\"" << kernel_name(e.type) << "\",\"ph\":\"X\",\"ts\":"
       << e.start * 1e6 << ",\"dur\":" << (e.end - e.start) * 1e6
       << ",\"pid\":" << e.lane << ",\"tid\":" << e.sub
       << ",\"args\":{\"task\":" << e.task << ",\"row\":" << e.row
       << ",\"piv\":" << e.piv << ",\"k\":" << e.k << ",\"j\":" << e.j
       << ",\"accel\":" << (e.on_accel ? "true" : "false") << "}}";
  }
  os << "\n]}\n";
}

void TraceRecorder::save_chrome_json(const std::string& path) const {
  std::ofstream f = open_checked(path);
  write_chrome_json(f);
  close_checked(f, path);
}

void TraceRecorder::save(const std::string& path) const {
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0)
    save_chrome_json(path);
  else
    save_csv(path);
}

namespace {

KernelType kernel_type_from_name(const std::string& name) {
  for (int t = 0; t < kKernelTypeCount; ++t) {
    const KernelType k = static_cast<KernelType>(t);
    if (kernel_name(k) == name) return k;
  }
  HQR_CHECK(false, "unknown kernel name '" << name << "' in trace CSV");
}

}  // namespace

TraceRecorder load_trace_csv(const std::string& path) {
  std::ifstream f(path);
  HQR_CHECK(f.good(), "cannot open " << path << " for reading");
  std::string line;
  HQR_CHECK(std::getline(f, line) &&
                line == "task,lane,sub,kernel,start,end,accel,row,piv,k,j",
            "not a trace CSV (bad header): " << path);
  TraceRecorder rec;
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string field[11];
    for (int i = 0; i < 11; ++i)
      HQR_CHECK(std::getline(ls, field[i], ','),
                "short row in " << path << ": '" << line << "'");
    TraceEvent e;
    e.task = std::stoi(field[0]);
    e.lane = std::stoi(field[1]);
    e.sub = std::stoi(field[2]);
    e.type = kernel_type_from_name(field[3]);
    e.start = std::stod(field[4]);
    e.end = std::stod(field[5]);
    e.on_accel = field[6] == "1";
    e.row = std::stoi(field[7]);
    e.piv = std::stoi(field[8]);
    e.k = std::stoi(field[9]);
    e.j = std::stoi(field[10]);
    rec.add(e);
  }
  return rec;
}

TraceRecorder merge_rank_traces(const std::vector<std::string>& csv_paths) {
  TraceRecorder merged;
  merged.set_labels("rank", "worker");
  merged.ensure_lanes(static_cast<int>(csv_paths.size()));
  for (std::size_t r = 0; r < csv_paths.size(); ++r) {
    const TraceRecorder one = load_trace_csv(csv_paths[r]);
    for (TraceEvent e : one.sorted_events()) {
      e.sub = e.lane;  // worker thread becomes the thread track
      e.lane = static_cast<std::int32_t>(r);
      merged.record(static_cast<int>(r), e);
    }
  }
  return merged;
}

}  // namespace hqr::obs
