#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <tuple>

#include "common/check.hpp"

namespace hqr::obs {
namespace {

// Checked open/close so a mistyped --trace path fails loudly instead of
// silently dropping the trace.
std::ofstream open_checked(const std::string& path) {
  std::ofstream f(path);
  HQR_CHECK(f.good(), "cannot open " << path << " for writing");
  return f;
}

void close_checked(std::ofstream& f, const std::string& path) {
  f.flush();
  HQR_CHECK(f.good(), "write to " << path << " failed");
}

void json_escape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

}  // namespace

std::string event_label(const TraceEvent& e) {
  std::ostringstream os;
  os << kernel_name(e.type);
  if (e.row >= 0) {
    os << '(' << e.row << ',' << e.piv << ',' << e.k;
    if (e.j >= 0) os << ";j=" << e.j;
    os << ')';
  }
  return os.str();
}

void TraceRecorder::ensure_lanes(int n) {
  if (n > lanes()) buffers_.resize(static_cast<std::size_t>(n));
}

void TraceRecorder::record_flow_send(std::int32_t producer,
                                     std::int32_t src_rank,
                                     std::int32_t dest_rank,
                                     double send_time) {
  FlowEvent f;
  f.producer = producer;
  f.src_rank = src_rank;
  f.dest_rank = dest_rank;
  f.send_time = send_time;
  add_flow(f);
}

void TraceRecorder::record_flow_recv(std::int32_t producer,
                                     std::int32_t src_rank,
                                     std::int32_t dest_rank,
                                     std::int32_t consumer,
                                     double recv_time) {
  FlowEvent f;
  f.producer = producer;
  f.src_rank = src_rank;
  f.dest_rank = dest_rank;
  f.consumer = consumer;
  f.recv_time = recv_time;
  add_flow(f);
}

void TraceRecorder::add_flow(const FlowEvent& f) {
  std::lock_guard<std::mutex> lk(*flow_mu_);
  flows_.push_back(f);
}

std::size_t TraceRecorder::flow_count() const {
  std::lock_guard<std::mutex> lk(*flow_mu_);
  return flows_.size();
}

std::size_t TraceRecorder::complete_flow_count() const {
  std::lock_guard<std::mutex> lk(*flow_mu_);
  std::size_t n = 0;
  for (const FlowEvent& f : flows_)
    if (f.complete()) ++n;
  return n;
}

std::vector<FlowEvent> TraceRecorder::flows() const {
  std::lock_guard<std::mutex> lk(*flow_mu_);
  return flows_;
}

std::size_t TraceRecorder::size() const {
  std::size_t total = 0;
  for (const auto& b : buffers_) total += b.size();
  return total;
}

double TraceRecorder::makespan() const {
  double m = 0.0;
  for (const auto& b : buffers_)
    for (const TraceEvent& e : b) m = std::max(m, e.end);
  return m;
}

std::vector<TraceEvent> TraceRecorder::sorted_events() const {
  std::vector<TraceEvent> all;
  all.reserve(size());
  for (const auto& b : buffers_) all.insert(all.end(), b.begin(), b.end());
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start != b.start) return a.start < b.start;
              if (a.lane != b.lane) return a.lane < b.lane;
              return a.sub < b.sub;
            });
  return all;
}

void TraceRecorder::save_csv(const std::string& path) const {
  std::ofstream f = open_checked(path);
  f << "task,lane,sub,kernel,start,end,accel,row,piv,k,j\n";
  f.precision(17);
  f << "#lanes," << lanes() << '\n';
  f << "#clock_offset," << clock_offset_ << '\n';
  for (const FlowEvent& fl : flows()) {
    f << "#flow," << fl.producer << ',' << fl.src_rank << ',' << fl.dest_rank
      << ',' << fl.consumer << ',' << fl.send_time << ',' << fl.recv_time
      << '\n';
  }
  for (const TraceEvent& e : sorted_events()) {
    f << e.task << ',' << e.lane << ',' << e.sub << ','
      << kernel_name(e.type) << ',' << e.start << ',' << e.end << ','
      << (e.on_accel ? 1 : 0) << ',' << e.row << ',' << e.piv << ',' << e.k
      << ',' << e.j << '\n';
  }
  close_checked(f, path);
}

void TraceRecorder::write_chrome_json(std::ostream& os) const {
  os.precision(17);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  const std::vector<TraceEvent> events = sorted_events();
  // Metadata: name each (lane, sub) pair so Perfetto shows "node N" process
  // rows with "core C" / "accel C" thread tracks (runtime: "worker N").
  std::set<std::int32_t> seen_lanes;
  std::set<std::pair<std::int32_t, std::int32_t>> seen_subs;
  for (const TraceEvent& e : events) {
    if (seen_lanes.insert(e.lane).second) {
      sep();
      os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << e.lane
         << ",\"args\":{\"name\":\"";
      json_escape(os, lane_label_);
      os << ' ' << e.lane << "\"}}";
      sep();
      os << "{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":" << e.lane
         << ",\"args\":{\"sort_index\":" << e.lane << "}}";
    }
    if (seen_subs.insert({e.lane, e.sub}).second) {
      sep();
      os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << e.lane
         << ",\"tid\":" << e.sub << ",\"args\":{\"name\":\"";
      json_escape(os, e.on_accel ? "accel" : sub_label_);
      os << ' ' << e.sub << "\"}}";
    }
  }
  for (const TraceEvent& e : events) {
    sep();
    os << "{\"name\":\"";
    json_escape(os, event_label(e));
    os << "\",\"cat\":\"" << kernel_name(e.type) << "\",\"ph\":\"X\",\"ts\":"
       << e.start * 1e6 << ",\"dur\":" << (e.end - e.start) * 1e6
       << ",\"pid\":" << e.lane << ",\"tid\":" << e.sub
       << ",\"args\":{\"task\":" << e.task << ",\"row\":" << e.row
       << ",\"piv\":" << e.piv << ",\"k\":" << e.k << ",\"j\":" << e.j
       << ",\"accel\":" << (e.on_accel ? "true" : "false") << "}}";
  }
  // Flow arrows: anchor the "s" step just inside the producer task's slice
  // and the "f" step (binding point "enclosing") just inside the consumer's,
  // so viewers draw the arrow from the end of the producing kernel on the
  // source rank to the start of the first releasing kernel on the
  // destination. The wire-level timestamps ride in args.
  std::map<std::int32_t, const TraceEvent*> by_task;
  for (const TraceEvent& e : events)
    if (e.task >= 0 && by_task.find(e.task) == by_task.end())
      by_task[e.task] = &e;
  const double eps_us = 1e-3;  // 1 ns, in trace microseconds
  long long flow_seq = 0;
  for (const FlowEvent& fl : flows()) {
    if (!fl.complete()) continue;
    auto pi = by_task.find(fl.producer);
    auto ci = by_task.find(fl.consumer);
    if (pi == by_task.end() || ci == by_task.end()) continue;
    const TraceEvent& p = *pi->second;
    const TraceEvent& c = *ci->second;
    double ts_s = p.end * 1e6 - eps_us;
    if (ts_s < p.start * 1e6) ts_s = (p.start + p.end) * 0.5e6;
    double ts_f = c.start * 1e6 + eps_us;
    if (ts_f > c.end * 1e6) ts_f = (c.start + c.end) * 0.5e6;
    const long long id = ++flow_seq;
    sep();
    os << "{\"name\":\"tile\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":" << id
       << ",\"ts\":" << ts_s << ",\"pid\":" << p.lane << ",\"tid\":" << p.sub
       << ",\"args\":{\"producer\":" << fl.producer
       << ",\"src_rank\":" << fl.src_rank
       << ",\"dest_rank\":" << fl.dest_rank << ",\"send\":" << fl.send_time
       << "}}";
    sep();
    os << "{\"name\":\"tile\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\","
       << "\"id\":" << id << ",\"ts\":" << ts_f << ",\"pid\":" << c.lane
       << ",\"tid\":" << c.sub << ",\"args\":{\"consumer\":" << fl.consumer
       << ",\"recv\":" << fl.recv_time << "}}";
  }
  os << "\n]}\n";
}

void TraceRecorder::save_chrome_json(const std::string& path) const {
  std::ofstream f = open_checked(path);
  write_chrome_json(f);
  close_checked(f, path);
}

void TraceRecorder::save(const std::string& path) const {
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0)
    save_chrome_json(path);
  else
    save_csv(path);
}

namespace {

KernelType kernel_type_from_name(const std::string& name) {
  for (int t = 0; t < kKernelTypeCount; ++t) {
    const KernelType k = static_cast<KernelType>(t);
    if (kernel_name(k) == name) return k;
  }
  HQR_CHECK(false, "unknown kernel name '" << name << "' in trace CSV");
}

// Splits one CSV line into exactly `n` fields.
void split_fields(const std::string& line, const std::string& path,
                  std::string* field, int n) {
  std::istringstream ls(line);
  for (int i = 0; i < n; ++i)
    HQR_CHECK(std::getline(ls, field[i], ','),
              "short row in " << path << ": '" << line << "'");
}

}  // namespace

TraceRecorder load_trace_csv(const std::string& path) {
  std::ifstream f(path);
  HQR_CHECK(f.good(), "cannot open " << path << " for reading");
  std::string line;
  HQR_CHECK(std::getline(f, line) &&
                line == "task,lane,sub,kernel,start,end,accel,row,piv,k,j",
            "not a trace CSV (bad header): " << path);
  TraceRecorder rec;
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::string field[7];
      if (line.compare(0, 7, "#lanes,") == 0) {
        split_fields(line, path, field, 2);
        rec.ensure_lanes(std::stoi(field[1]));
      } else if (line.compare(0, 14, "#clock_offset,") == 0) {
        split_fields(line, path, field, 2);
        rec.set_clock_offset(std::stod(field[1]));
      } else if (line.compare(0, 6, "#flow,") == 0) {
        split_fields(line, path, field, 7);
        FlowEvent fl;
        fl.producer = std::stoi(field[1]);
        fl.src_rank = std::stoi(field[2]);
        fl.dest_rank = std::stoi(field[3]);
        fl.consumer = std::stoi(field[4]);
        fl.send_time = std::stod(field[5]);
        fl.recv_time = std::stod(field[6]);
        rec.add_flow(fl);
      }
      // Unknown '#' lines are forward-compatible comments: skip.
      continue;
    }
    std::istringstream ls(line);
    std::string field[11];
    for (int i = 0; i < 11; ++i)
      HQR_CHECK(std::getline(ls, field[i], ','),
                "short row in " << path << ": '" << line << "'");
    TraceEvent e;
    e.task = std::stoi(field[0]);
    e.lane = std::stoi(field[1]);
    e.sub = std::stoi(field[2]);
    e.type = kernel_type_from_name(field[3]);
    e.start = std::stod(field[4]);
    e.end = std::stod(field[5]);
    e.on_accel = field[6] == "1";
    e.row = std::stoi(field[7]);
    e.piv = std::stoi(field[8]);
    e.k = std::stoi(field[9]);
    e.j = std::stoi(field[10]);
    HQR_CHECK(e.lane >= 0, "negative lane in " << path);
    rec.ensure_lanes(e.lane + 1);
    rec.record(e.lane, e);
  }
  return rec;
}

TraceRecorder merge_rank_traces(const std::vector<std::string>& csv_paths) {
  std::vector<TraceRecorder> ranks;
  ranks.reserve(csv_paths.size());
  for (const std::string& p : csv_paths)
    ranks.push_back(load_trace_csv(p));

  // Normalize the per-rank clock offsets so the merged timeline keeps its
  // origin near the earliest rank's time zero: shift rank r's timestamps by
  // (offset_r - min_offset). When no offsets were recorded (all zero, the
  // pre-clock-sync format) this is the identity.
  double min_offset = 0.0;
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    const double o = ranks[r].clock_offset();
    if (r == 0 || o < min_offset) min_offset = o;
  }

  TraceRecorder merged;
  merged.set_labels("rank", "worker");
  merged.ensure_lanes(static_cast<int>(csv_paths.size()));
  // Flow halves keyed by (producer, src, dest): every inter-rank message is
  // uniquely identified by which task's output went to which rank.
  std::map<std::tuple<std::int32_t, std::int32_t, std::int32_t>, FlowEvent>
      paired;
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    const double shift = ranks[r].clock_offset() - min_offset;
    for (TraceEvent e : ranks[r].sorted_events()) {
      e.sub = e.lane;  // worker thread becomes the thread track
      e.lane = static_cast<std::int32_t>(r);
      e.start += shift;
      e.end += shift;
      merged.record(static_cast<int>(r), e);
    }
    for (FlowEvent fl : ranks[r].flows()) {
      if (fl.send_time >= 0.0) fl.send_time += shift;
      if (fl.recv_time >= 0.0) fl.recv_time += shift;
      FlowEvent& slot = paired[{fl.producer, fl.src_rank, fl.dest_rank}];
      if (slot.producer < 0) {
        slot = fl;
        continue;
      }
      if (fl.send_time >= 0.0) slot.send_time = fl.send_time;
      if (fl.recv_time >= 0.0) slot.recv_time = fl.recv_time;
      if (fl.consumer >= 0) slot.consumer = fl.consumer;
    }
  }
  for (const auto& kv : paired) merged.add_flow(kv.second);
  return merged;
}

}  // namespace hqr::obs
