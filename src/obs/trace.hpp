// Unified execution tracing for the shared-memory runtime, the cluster
// simulator and the distributed runtime — the repository's DAGuE-profiling
// analogue (paper §V explains every win/loss through task timelines; this
// layer records them).
//
// One TraceEvent per executed task: kernel type, tile coordinates, the lane
// it ran on (worker thread in the runtime; node/core — or node/accelerator —
// in the simulator), and start/end times. Dependencies are not duplicated
// into the trace: `task` indexes the TaskGraph the run executed, which the
// analyzer (obs/analyzer.hpp) uses to recover them.
//
// Distributed runs additionally record one FlowEvent per inter-rank tile
// transfer: the sending rank stamps the Data post, the receiving rank stamps
// the arrival, and merge_rank_traces pairs the two halves (after applying
// each rank's clock offset) into arrows the Perfetto export draws from the
// producer's slice to the first consumer task on the destination rank.
//
// Recording is near-zero-cost when disabled (producers hold a nullable
// TraceRecorder*) and lock-free when enabled: each lane appends to its own
// buffer, so concurrent workers never contend. Flow events are the one
// exception — they are produced by both the worker pool and the
// communication thread, so they go through a small mutex; there are orders
// of magnitude fewer messages than tasks.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "kernels/weights.hpp"

namespace hqr::obs {

struct TraceEvent {
  std::int32_t task = -1;  // index into the executed TaskGraph (-1: unknown)
  std::int32_t lane = 0;   // worker thread (runtime) or node (simulator)
  std::int32_t sub = 0;    // core/accelerator within the lane (0 in runtime)
  KernelType type = KernelType::GEQRT;
  bool on_accel = false;
  // Tile coordinates of the kernel (KernelOp fields); -1 when not recorded.
  std::int32_t row = -1;
  std::int32_t piv = -1;
  std::int32_t k = -1;
  std::int32_t j = -1;
  double start = 0.0;  // seconds from run start (wall or simulated)
  double end = 0.0;
};

// One inter-rank message: the Data frame carrying the producer task's output
// tile regions from its owner to a rank that consumes them. Each side of the
// wire records its half (send_time on the source rank's timeline, recv_time
// plus the first released consumer task on the destination's);
// merge_rank_traces fuses the halves onto the common clock.
struct FlowEvent {
  std::int32_t producer = -1;   // producer task index (the Data frame id)
  std::int32_t src_rank = -1;   // owner of the producer task
  std::int32_t dest_rank = -1;  // rank the payload was shipped to
  std::int32_t consumer = -1;   // first dest-local task it released (-1: n/a)
  double send_time = -1.0;      // seconds; -1 marks a missing half
  double recv_time = -1.0;

  bool complete() const { return send_time >= 0.0 && recv_time >= 0.0; }
};

// Human-readable task label, e.g. "TSMQR(3,1,0;j=2)".
std::string event_label(const TraceEvent& e);

class TraceRecorder {
 public:
  TraceRecorder()
      : buffers_(1), flow_mu_(std::make_unique<std::mutex>()) {}

  // Grows the number of lane buffers (never shrinks, never drops events).
  // Call before handing the recorder to `n` concurrent producers.
  void ensure_lanes(int n);
  int lanes() const { return static_cast<int>(buffers_.size()); }

  // Display names for the lane/sub dimensions in exported traces
  // ("node"/"core" in the simulator, "worker"/"" in the runtime).
  void set_labels(std::string lane, std::string sub) {
    lane_label_ = std::move(lane);
    sub_label_ = std::move(sub);
  }
  const std::string& lane_label() const { return lane_label_; }
  const std::string& sub_label() const { return sub_label_; }

  // Offset of this trace's time zero on the cluster reference clock (rank
  // 0's): trace origin in monotonic_seconds() terms plus the clock-sync
  // offset. merge_rank_traces subtracts the smallest offset across ranks, so
  // per-rank timestamps land on one causally consistent timeline. Zero for
  // single-process traces.
  void set_clock_offset(double seconds) { clock_offset_ = seconds; }
  double clock_offset() const { return clock_offset_; }

  // Appends an event to lane buffer `lane_buf`. Safe to call concurrently
  // from different lane buffers; a single buffer must have one producer.
  void record(int lane_buf, const TraceEvent& e) {
    buffers_[static_cast<std::size_t>(lane_buf)].push_back(e);
  }
  // Single-producer convenience (buffer 0).
  void add(const TraceEvent& e) { record(0, e); }

  // Flow halves. Thread-safe (worker pool and communication thread both
  // produce them).
  void record_flow_send(std::int32_t producer, std::int32_t src_rank,
                        std::int32_t dest_rank, double send_time);
  void record_flow_recv(std::int32_t producer, std::int32_t src_rank,
                        std::int32_t dest_rank, std::int32_t consumer,
                        double recv_time);
  // Appends a flow verbatim (merge/load path).
  void add_flow(const FlowEvent& f);

  std::size_t flow_count() const;
  std::size_t complete_flow_count() const;
  // Snapshot of all flows (halves included), in recording order.
  std::vector<FlowEvent> flows() const;

  std::size_t size() const;
  bool empty() const { return size() == 0; }
  // Latest event end time (0 when empty).
  double makespan() const;

  // All events merged across lane buffers, sorted by (start, lane, sub).
  std::vector<TraceEvent> sorted_events() const;

  // CSV export, header: task,lane,sub,kernel,start,end,accel,row,piv,k,j.
  // Metadata rides in leading-'#' lines after the header: `#lanes,N`,
  // `#clock_offset,S`, and one `#flow,...` line per flow event, so a
  // save/load round-trip preserves lane identity, the clock offset and the
  // message flows. Throws hqr::Error when the file cannot be opened or the
  // write fails.
  void save_csv(const std::string& path) const;

  // Chrome trace-event JSON (load in Perfetto: https://ui.perfetto.dev or
  // chrome://tracing). One complete ("ph":"X") event per task; lanes become
  // processes, cores/accelerators become named threads. Complete flow events
  // export as "s"/"f" arrows from the producer task's slice to the consumer
  // task's slice. Throws hqr::Error on write failure.
  void save_chrome_json(const std::string& path) const;
  void write_chrome_json(std::ostream& os) const;

  // Dispatches on extension: ".json" -> Chrome/Perfetto JSON, else CSV.
  void save(const std::string& path) const;

 private:
  std::vector<std::vector<TraceEvent>> buffers_;
  std::string lane_label_ = "lane";
  std::string sub_label_ = "unit";
  double clock_offset_ = 0.0;
  // unique_ptr keeps the recorder movable (it is returned by value from the
  // load/merge helpers); flows_ is guarded by *flow_mu_.
  std::unique_ptr<std::mutex> flow_mu_;
  std::vector<FlowEvent> flows_;
};

// Parses a CSV written by TraceRecorder::save_csv back into a recorder,
// restoring per-lane buffers, the clock offset and flow events from the
// metadata lines. Throws hqr::Error on malformed input.
TraceRecorder load_trace_csv(const std::string& path);

// Merges one trace CSV per rank (csv_paths[r] = rank r's worker-lane trace)
// into a single recorder whose lane is the *rank* and whose sub is the
// source worker lane — so the Perfetto export shows one process row per
// rank with one thread track per worker. Each rank's timestamps are shifted
// by its clock offset (normalized so the earliest rank starts at its
// recorded time), and matching flow halves — send stamped by the source
// rank, receive by the destination — are paired into complete FlowEvents.
// The distributed quickstart uses this to fuse per-rank traces into one
// cluster-wide timeline.
TraceRecorder merge_rank_traces(const std::vector<std::string>& csv_paths);

}  // namespace hqr::obs
