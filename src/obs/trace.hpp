// Unified execution tracing for the shared-memory runtime and the cluster
// simulator — the repository's DAGuE-profiling analogue (paper §V explains
// every win/loss through task timelines; this layer records them).
//
// One TraceEvent per executed task: kernel type, tile coordinates, the lane
// it ran on (worker thread in the runtime; node/core — or node/accelerator —
// in the simulator), and start/end times. Dependencies are not duplicated
// into the trace: `task` indexes the TaskGraph the run executed, which the
// analyzer (obs/analyzer.hpp) uses to recover them.
//
// Recording is near-zero-cost when disabled (producers hold a nullable
// TraceRecorder*) and lock-free when enabled: each lane appends to its own
// buffer, so concurrent workers never contend.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "kernels/weights.hpp"

namespace hqr::obs {

struct TraceEvent {
  std::int32_t task = -1;  // index into the executed TaskGraph (-1: unknown)
  std::int32_t lane = 0;   // worker thread (runtime) or node (simulator)
  std::int32_t sub = 0;    // core/accelerator within the lane (0 in runtime)
  KernelType type = KernelType::GEQRT;
  bool on_accel = false;
  // Tile coordinates of the kernel (KernelOp fields); -1 when not recorded.
  std::int32_t row = -1;
  std::int32_t piv = -1;
  std::int32_t k = -1;
  std::int32_t j = -1;
  double start = 0.0;  // seconds from run start (wall or simulated)
  double end = 0.0;
};

// Human-readable task label, e.g. "TSMQR(3,1,0;j=2)".
std::string event_label(const TraceEvent& e);

class TraceRecorder {
 public:
  TraceRecorder() : buffers_(1) {}

  // Grows the number of lane buffers (never shrinks, never drops events).
  // Call before handing the recorder to `n` concurrent producers.
  void ensure_lanes(int n);
  int lanes() const { return static_cast<int>(buffers_.size()); }

  // Display names for the lane/sub dimensions in exported traces
  // ("node"/"core" in the simulator, "worker"/"" in the runtime).
  void set_labels(std::string lane, std::string sub) {
    lane_label_ = std::move(lane);
    sub_label_ = std::move(sub);
  }
  const std::string& lane_label() const { return lane_label_; }
  const std::string& sub_label() const { return sub_label_; }

  // Appends an event to lane buffer `lane_buf`. Safe to call concurrently
  // from different lane buffers; a single buffer must have one producer.
  void record(int lane_buf, const TraceEvent& e) {
    buffers_[static_cast<std::size_t>(lane_buf)].push_back(e);
  }
  // Single-producer convenience (buffer 0).
  void add(const TraceEvent& e) { record(0, e); }

  std::size_t size() const;
  bool empty() const { return size() == 0; }
  // Latest event end time (0 when empty).
  double makespan() const;

  // All events merged across lane buffers, sorted by (start, lane, sub).
  std::vector<TraceEvent> sorted_events() const;

  // CSV export, header: task,lane,sub,kernel,start,end,accel,row,piv,k,j.
  // Throws hqr::Error when the file cannot be opened or the write fails.
  void save_csv(const std::string& path) const;

  // Chrome trace-event JSON (load in Perfetto: https://ui.perfetto.dev or
  // chrome://tracing). One complete ("ph":"X") event per task; lanes become
  // processes, cores/accelerators become named threads. Throws hqr::Error
  // on write failure.
  void save_chrome_json(const std::string& path) const;
  void write_chrome_json(std::ostream& os) const;

  // Dispatches on extension: ".json" -> Chrome/Perfetto JSON, else CSV.
  void save(const std::string& path) const;

 private:
  std::vector<std::vector<TraceEvent>> buffers_;
  std::string lane_label_ = "lane";
  std::string sub_label_ = "unit";
};

// Parses a CSV written by TraceRecorder::save_csv back into a recorder
// (all events in buffer 0). Throws hqr::Error on malformed input.
TraceRecorder load_trace_csv(const std::string& path);

// Merges one trace CSV per rank (csv_paths[r] = rank r's worker-lane trace)
// into a single recorder whose lane is the *rank* and whose sub is the
// source worker lane — so the Perfetto export shows one process row per
// rank with one thread track per worker. The distributed quickstart uses
// this to fuse per-rank traces into one cluster-wide timeline.
TraceRecorder merge_rank_traces(const std::vector<std::string>& csv_paths);

}  // namespace hqr::obs
