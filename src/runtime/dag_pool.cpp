#include "runtime/dag_pool.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <queue>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/check.hpp"
#include "runtime/ready_task.hpp"

namespace hqr {

namespace {

struct DagState {
  DagId id = 0;
  std::shared_ptr<const TaskGraph> graph;
  int b = 1;
  DagPool::ExecuteFn exec;
  int priority = 0;
  std::function<void(DagId, bool)> on_done;

  std::vector<int> npred;       // outstanding predecessors per task
  std::vector<char> external;   // 1 = executed outside the pool
  std::vector<double> depth;    // critical-path priority within the DAG
  std::priority_queue<ReadyTask> ready;
  long long remaining = 0;  // local tasks not yet executed
  long long delivered = 0;  // tasks handed to workers (the fairness key)
  long long inflight = 0;   // tasks currently executing
  bool cancelled = false;
  bool done = false;
};

}  // namespace

struct DagPool::Impl {
  explicit Impl(const DagPoolOptions& o) : opts(o) {
    HQR_CHECK(opts.threads >= 1, "DagPool needs at least one worker");
    workers.reserve(static_cast<std::size_t>(opts.threads));
    for (int t = 0; t < opts.threads; ++t)
      workers.emplace_back([this] { worker(); });
  }

  ~Impl() {
    // Cancel whatever is still running, then let workers drain out.
    std::vector<std::shared_ptr<DagState>> leftover;
    {
      std::lock_guard<std::mutex> lk(mu);
      stopping = true;
      for (auto& dag : active) leftover.push_back(dag);
    }
    for (auto& dag : leftover) cancel_dag(dag->id);
    {
      std::lock_guard<std::mutex> lk(mu);
      work_cv.notify_all();
    }
    for (auto& th : workers) th.join();
  }

  // Highest admission priority first; among equals the DAG served the
  // fewest tasks so far; final tie by admission order (`active` keeps it).
  std::shared_ptr<DagState> pick_best_locked() {
    std::shared_ptr<DagState> best;
    for (auto& dag : active) {
      if (dag->ready.empty()) continue;
      if (!best || dag->priority > best->priority ||
          (dag->priority == best->priority && dag->delivered < best->delivered))
        best = dag;
    }
    return best;
  }

  void push_ready_locked(DagState& dag, std::int32_t idx) {
    dag.ready.push({dag.depth[static_cast<std::size_t>(idx)], idx});
    ++total_ready;
  }

  // Finish check; fires on_done outside the lock. `lk` must be held.
  void maybe_finish_locked(std::unique_lock<std::mutex>& lk,
                           const std::shared_ptr<DagState>& dag) {
    if (dag->done || dag->inflight > 0) return;
    if (!dag->cancelled && dag->remaining > 0) return;
    dag->done = true;
    const bool cancelled = dag->cancelled;
    live.erase(dag->id);
    active.erase(std::find(active.begin(), active.end(), dag));
    outcome.emplace(dag->id, !cancelled);
    if (cancelled)
      ++pool_stats.dags_cancelled;
    else
      ++pool_stats.dags_completed;
    if (opts.metrics) {
      opts.metrics
          ->counter(cancelled ? "dagpool.dags_cancelled"
                              : "dagpool.dags_completed")
          .add(1);
      opts.metrics->gauge("dagpool.active_dags")
          .set(static_cast<double>(active.size()));
    }
    done_cv.notify_all();
    // Wake idle workers too: at shutdown they wait for active to empty.
    work_cv.notify_all();
    auto cb = std::move(dag->on_done);
    if (cb) {
      // wait_all() must not return while a callback is mid-flight: the
      // callback may still chain a submit() or touch per-request state, and
      // callers use wait_all() as the license to tear the pool down.
      ++callbacks_inflight;
      lk.unlock();
      cb(dag->id, cancelled);
      lk.lock();
      if (--callbacks_inflight == 0) done_cv.notify_all();
    }
  }

  void worker() {
    // A few workspaces per worker, LRU by tile size — mixed-b tenants reuse
    // scratch instead of reallocating per task, but b is client-controlled,
    // so the cache is capped: a tenant rotating tile sizes cannot grow
    // O(b^2) scratch per worker without bound.
    constexpr std::size_t kMaxCachedWorkspaces = 4;
    std::vector<std::pair<int, std::unique_ptr<TileWorkspace>>> ws_cache;
    std::unique_lock<std::mutex> lk(mu);
    for (;;) {
      std::shared_ptr<DagState> dag = pick_best_locked();
      if (!dag) {
        if (stopping && active.empty()) return;
        work_cv.wait(lk);
        continue;
      }
      const std::int32_t idx = dag->ready.top().idx;
      dag->ready.pop();
      --total_ready;
      ++dag->delivered;
      ++dag->inflight;
      lk.unlock();

      bool failed = false;
      try {
        // Workspace lookup/construction sits inside the try: b is sized by
        // the client, so an allocation failure here must poison only the
        // offending DAG, exactly like a throwing kernel.
        TileWorkspace* ws = nullptr;
        for (std::size_t i = 0; i < ws_cache.size(); ++i) {
          if (ws_cache[i].first == dag->b) {
            std::rotate(ws_cache.begin() + static_cast<std::ptrdiff_t>(i),
                        ws_cache.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                        ws_cache.end());
            ws = ws_cache.back().second.get();
            break;
          }
        }
        if (!ws) {
          auto fresh = std::make_unique<TileWorkspace>(dag->b);
          if (ws_cache.size() >= kMaxCachedWorkspaces)
            ws_cache.erase(ws_cache.begin());
          ws_cache.emplace_back(dag->b, std::move(fresh));
          ws = ws_cache.back().second.get();
        }
        dag->exec(idx, *ws);
      } catch (...) {
        // A throwing kernel poisons only its own DAG, never the pool: the
        // DAG is cancelled and its waiter sees "not completed".
        failed = true;
      }

      lk.lock();
      --dag->inflight;
      ++pool_stats.tasks_executed;
      if (opts.metrics) opts.metrics->counter("dagpool.tasks").add(1);
      if (failed && !dag->cancelled) {
        dag->cancelled = true;
        total_ready -= static_cast<long long>(dag->ready.size());
        dag->ready = {};
      }
      if (!dag->cancelled) {
        --dag->remaining;
        int released = 0;
        for (std::int32_t s : dag->graph->successors(idx)) {
          if (dag->external[static_cast<std::size_t>(s)]) continue;
          if (--dag->npred[static_cast<std::size_t>(s)] == 0) {
            push_ready_locked(*dag, s);
            ++released;
          }
        }
        if (released == 1)
          work_cv.notify_one();
        else if (released > 1)
          work_cv.notify_all();
      }
      maybe_finish_locked(lk, dag);
    }
  }

  DagId submit_dag(std::shared_ptr<const TaskGraph> graph, int b,
                   ExecuteFn exec, DagSubmitOptions sopts) {
    HQR_CHECK(graph != nullptr && graph->size() > 0,
              "DagPool::submit needs a non-empty graph");
    HQR_CHECK(b >= 1, "tile size must be >= 1");
    auto dag = std::make_shared<DagState>();
    dag->graph = std::move(graph);
    dag->b = b;
    dag->exec = std::move(exec);
    dag->priority = sopts.priority;
    dag->on_done = std::move(sopts.on_done);
    const int n = dag->graph->size();
    dag->external.assign(static_cast<std::size_t>(n), 0);
    for (std::int32_t t : sopts.external_tasks) {
      HQR_CHECK(t >= 0 && t < n, "external task " << t << " outside graph of "
                                                  << n << " tasks");
      dag->external[static_cast<std::size_t>(t)] = 1;
    }
    dag->npred.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      dag->npred[static_cast<std::size_t>(i)] = dag->graph->num_predecessors(i);
    dag->graph->critical_path(unit_weight_duration, &dag->depth);
    for (int i = 0; i < n; ++i)
      if (!dag->external[static_cast<std::size_t>(i)]) ++dag->remaining;

    std::unique_lock<std::mutex> lk(mu);
    HQR_CHECK(!stopping, "DagPool is shutting down");
    if (opts.max_active_dags > 0 && !sopts.bypass_admission_limit &&
        static_cast<int>(active.size()) >= opts.max_active_dags) {
      std::ostringstream os;
      os << "DagPool overloaded: " << active.size() << " active DAGs (limit "
         << opts.max_active_dags << ")";
      throw PoolOverloaded(os.str());
    }
    dag->id = next_id++;
    int seeded = 0;
    for (int i = 0; i < n; ++i) {
      if (dag->external[static_cast<std::size_t>(i)]) continue;
      if (dag->npred[static_cast<std::size_t>(i)] == 0) {
        push_ready_locked(*dag, i);
        ++seeded;
      }
    }
    active.push_back(dag);
    live.emplace(dag->id, dag);
    ++pool_stats.dags_submitted;
    pool_stats.max_active_dags = std::max(
        pool_stats.max_active_dags, static_cast<int>(active.size()));
    if (opts.metrics) {
      opts.metrics->counter("dagpool.dags_submitted").add(1);
      opts.metrics->gauge("dagpool.active_dags")
          .set(static_cast<double>(active.size()));
    }
    if (seeded == 1)
      work_cv.notify_one();
    else if (seeded > 1)
      work_cv.notify_all();
    const DagId id = dag->id;
    // A DAG whose every task is external finishes without running anything.
    maybe_finish_locked(lk, dag);
    return id;
  }

  bool wait_dag(DagId id) {
    std::unique_lock<std::mutex> lk(mu);
    done_cv.wait(lk, [&] { return live.find(id) == live.end(); });
    auto it = outcome.find(id);
    HQR_CHECK(it != outcome.end(), "unknown DagId " << id);
    return it->second;
  }

  void wait_all_dags() {
    std::unique_lock<std::mutex> lk(mu);
    // Also wait out in-flight on_done callbacks: a callback that chains a
    // submit() re-populates `active` before callbacks_inflight drops, so
    // this predicate cannot miss chained work.
    done_cv.wait(lk, [&] { return active.empty() && callbacks_inflight == 0; });
  }

  bool cancel_dag(DagId id) {
    std::unique_lock<std::mutex> lk(mu);
    auto it = live.find(id);
    if (it == live.end()) return false;
    auto dag = it->second;
    if (!dag->cancelled) {
      dag->cancelled = true;
      total_ready -= static_cast<long long>(dag->ready.size());
      dag->ready = {};
    }
    maybe_finish_locked(lk, dag);
    return true;
  }

  void external_complete(DagId id, std::int32_t producer) {
    std::unique_lock<std::mutex> lk(mu);
    auto it = live.find(id);
    if (it == live.end()) return;  // DAG already finished: stale completion
    auto dag = it->second;
    if (dag->cancelled) return;
    const int n = dag->graph->size();
    HQR_CHECK(producer >= 0 && producer < n,
              "external completion for task " << producer
                                              << " outside graph of " << n);
    int released = 0;
    for (std::int32_t s : dag->graph->successors(producer)) {
      if (dag->external[static_cast<std::size_t>(s)]) continue;
      if (--dag->npred[static_cast<std::size_t>(s)] == 0) {
        push_ready_locked(*dag, s);
        ++released;
      }
    }
    if (released == 1)
      work_cv.notify_one();
    else if (released > 1)
      work_cv.notify_all();
  }

  // (dag, task)-namespaced external-completion port: the DAG id is bound
  // at construction, so a producer id can never land in another DAG.
  class PoolPort final : public RemotePort {
   public:
    PoolPort(Impl* impl, DagId id) : impl_(impl), id_(id) {}
    void remote_complete(std::int32_t producer) override {
      impl_->external_complete(id_, producer);
    }
    void cancel() override { impl_->cancel_dag(id_); }

   private:
    Impl* impl_;
    DagId id_;
  };

  DagPoolOptions opts;
  mutable std::mutex mu;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  std::vector<std::shared_ptr<DagState>> active;  // unfinished, in order
  std::unordered_map<DagId, std::shared_ptr<DagState>> live;
  std::unordered_map<DagId, bool> outcome;  // finished: completed?
  DagId next_id = 1;
  bool stopping = false;
  long long total_ready = 0;
  long long callbacks_inflight = 0;  // on_done invocations not yet returned
  DagPoolStats pool_stats;
  std::vector<std::thread> workers;
};

DagPool::DagPool(const DagPoolOptions& opts)
    : impl_(std::make_unique<Impl>(opts)) {}

DagPool::~DagPool() = default;

DagId DagPool::submit(std::shared_ptr<const TaskGraph> graph, int b,
                      ExecuteFn execute, DagSubmitOptions opts) {
  return impl_->submit_dag(std::move(graph), b, std::move(execute),
                           std::move(opts));
}

bool DagPool::wait(DagId id) { return impl_->wait_dag(id); }

void DagPool::wait_all() { impl_->wait_all_dags(); }

bool DagPool::cancel(DagId id) { return impl_->cancel_dag(id); }

std::unique_ptr<RemotePort> DagPool::port(DagId id) {
  return std::make_unique<Impl::PoolPort>(impl_.get(), id);
}

int DagPool::active_dags() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return static_cast<int>(impl_->active.size());
}

long long DagPool::ready_tasks() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->total_ready;
}

DagPoolStats DagPool::stats() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->pool_stats;
}

}  // namespace hqr
