// Multi-DAG worker pool: many task graphs share one set of worker threads.
//
// The single-DAG engines in runtime/executor.hpp spin up a thread pool per
// invocation and run exactly one graph to completion — the right shape for
// a batch job, the wrong one for a server that must execute many
// independent factorizations of wildly different shapes concurrently. The
// DagPool keeps `threads` workers alive for its whole lifetime and admits
// task graphs dynamically:
//
//   * per-DAG completion tracking — every submitted graph carries its own
//     dependency counters, ready queue, and remaining count; a DAG's
//     completion callback fires on the worker that ran its last task.
//   * per-DAG root injection — roots are seeded at submit() time while
//     other DAGs are mid-flight; nothing is recomputed globally.
//   * fair/priority admission — when several DAGs have ready tasks, the
//     worker takes from the highest-priority one; among equals, from the
//     DAG that has been served the fewest tasks so far (so one huge
//     factorization cannot starve a stream of small ones). Within a DAG,
//     tasks order by critical-path depth, as in the single-DAG engines.
//   * (dag, task)-namespaced external completions — the RemotePort analogue
//     for pool DAGs binds the DAG id into the port, so concurrent DAGs
//     whose task-id spaces overlap (they all start at 0) cannot collide.
//
// Scheduling is a single mutex-protected multi-queue rather than the
// work-stealing deques of the single-DAG engine: admission fairness needs a
// global view of every DAG's ready set, and the pool's throughput story for
// small problems is batch *fusion* (serve/batch.hpp) — thousands of tiny
// QRs become one DAG, amortizing scheduling to one pass. The single-DAG
// execute_parallel path is untouched and stays bit-identical (pinned by
// tests/runtime/test_dag_pool.cpp, which also pins pool-vs-single-run
// bit-identity — kernels write disjoint regions in dependency order, so any
// valid schedule produces the same bits).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "dag/task_graph.hpp"
#include "kernels/tile_kernels.hpp"
#include "obs/metrics.hpp"
#include "runtime/executor.hpp"

namespace hqr {

using DagId = std::uint64_t;

// Thrown by submit() when the pool is at max_active_dags — distinguishable
// from teardown (plain hqr::Error) so servers can answer with a typed
// "overloaded, retry later" instead of "shutting down".
class PoolOverloaded : public Error {
 public:
  using Error::Error;
};

struct DagPoolOptions {
  int threads = 1;
  // Admission bound: submit() throws PoolOverloaded while this many DAGs
  // are active (0 = unbounded). Backpressure for serving layers — a client
  // burst degrades into typed refusals instead of unbounded queue growth.
  int max_active_dags = 0;
  // Optional sinks: dagpool.* counters/gauges (tasks, completions, ready
  // depth). Null = disabled.
  obs::MetricsRegistry* metrics = nullptr;
};

struct DagSubmitOptions {
  // Admission priority: higher drains first; ties are served fairly
  // (fewest-tasks-delivered DAG first).
  int priority = 0;
  // Task ids executed outside the pool (the distributed partition case):
  // they are never run by a worker, and their successors become ready only
  // when reported through the DAG's port(). Each listed id must be a valid
  // task of the graph.
  std::vector<std::int32_t> external_tasks;
  // Invoked exactly once, on the worker that finished the DAG's last task
  // (or on the thread that observed cancellation complete). May call back
  // into the pool (e.g. submit a follow-up DAG); runs outside the pool
  // lock. A chained submit can race pool teardown — submit() throws
  // hqr::Error once the destructor has started, so callbacks that chain
  // must be prepared to catch it. wait_all() does not return while any
  // on_done is still running.
  std::function<void(DagId, bool cancelled)> on_done;
  // Skip the max_active_dags admission check: for internal continuation
  // DAGs (e.g. a server chaining Q formation onto a finished factorization)
  // that must be able to drain even when the pool refuses new work.
  bool bypass_admission_limit = false;
};

struct DagPoolStats {
  long long dags_submitted = 0;
  long long dags_completed = 0;
  long long dags_cancelled = 0;
  long long tasks_executed = 0;
  // High-watermark of DAGs simultaneously admitted and unfinished.
  int max_active_dags = 0;
};

class DagPool {
 public:
  // Runs task `idx` of the submitted graph using the worker's scratch
  // workspace (sized for the b the DAG was submitted with).
  using ExecuteFn = std::function<void(std::int32_t, TileWorkspace&)>;

  explicit DagPool(const DagPoolOptions& opts);
  // Cancels every unfinished DAG and joins the workers. Prefer wait_all()
  // (or per-DAG wait) before destruction when results matter.
  ~DagPool();

  DagPool(const DagPool&) = delete;
  DagPool& operator=(const DagPool&) = delete;

  // Admits a graph: seeds its roots and returns immediately. The graph is
  // shared-ownership because the pool reads successor lists until the DAG
  // finishes; `b` sizes the per-worker TileWorkspace handed to `execute`.
  DagId submit(std::shared_ptr<const TaskGraph> graph, int b,
               ExecuteFn execute, DagSubmitOptions opts = {});

  // Blocks until the DAG finished; true = ran to completion, false =
  // cancelled. Ids of finished DAGs stay valid indefinitely (the pool keeps
  // a per-DAG outcome record; a long-lived server retains ~tens of bytes
  // per request).
  bool wait(DagId id);
  // Blocks until no DAG is active AND every on_done callback has returned
  // (including DAGs those callbacks chained via submit()). After wait_all()
  // the pool can be destroyed without racing a late callback.
  void wait_all();

  // Best-effort cancellation: queued tasks of the DAG are dropped, running
  // ones finish. Returns true when the DAG had not already finished. The
  // on_done callback still fires (with cancelled = true).
  bool cancel(DagId id);

  // External-completion port for one DAG, namespaced by (dag id, task id):
  // remote_complete(producer) releases only this DAG's successors of
  // `producer`, never another DAG's task with the same id. Valid until the
  // pool is destroyed; calls after the DAG finished are ignored.
  std::unique_ptr<RemotePort> port(DagId id);

  // Instantaneous gauges for the serving layer.
  int active_dags() const;
  long long ready_tasks() const;

  DagPoolStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace hqr
