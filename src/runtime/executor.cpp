#include "runtime/executor.hpp"

#include <algorithm>
#include <atomic>
#include <functional>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>

#include "common/stopwatch.hpp"

namespace hqr {
namespace {

struct ReadyTask {
  double priority;
  std::int32_t idx;

  bool operator<(const ReadyTask& o) const {
    // max-heap by priority, FIFO-ish tiebreak on index.
    if (priority != o.priority) return priority < o.priority;
    return idx > o.idx;
  }
};

class Scheduler {
 public:
  // Called by a worker to run task `idx` with its private workspace.
  using ExecuteFn = std::function<void(std::int32_t, TileWorkspace&)>;

  Scheduler(const TaskGraph& graph, const ExecutorOptions& opts)
      : graph_(graph), opts_(opts), remaining_(graph.size()) {
    npred_ = std::make_unique<std::atomic<int>[]>(
        static_cast<std::size_t>(graph.size()));
    for (int i = 0; i < graph.size(); ++i)
      npred_[i].store(graph.num_predecessors(i), std::memory_order_relaxed);
    if (opts_.priority_scheduling) {
      graph_.critical_path(unit_weight_duration, &depth_);
    } else {
      depth_.assign(static_cast<std::size_t>(graph.size()), 0.0);
      // FIFO: earlier list index = higher priority.
      for (int i = 0; i < graph.size(); ++i)
        depth_[i] = static_cast<double>(graph.size() - i);
    }
    for (std::int32_t r : graph_.roots()) push(r);
  }

  void run(int b, const ExecuteFn& execute, int threads,
           std::vector<long long>& per_thread) {
    per_thread.assign(static_cast<std::size_t>(threads), 0);
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads) - 1);
    for (int t = 1; t < threads; ++t)
      pool.emplace_back([&, t] { worker(b, execute, per_thread[t]); });
    worker(b, execute, per_thread[0]);
    for (auto& th : pool) th.join();
  }

 private:
  void push(std::int32_t idx) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      ready_.push({depth_[idx], idx});
    }
    cv_.notify_one();
  }

  // Returns -1 when all tasks are done.
  std::int32_t pop() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] {
      return !ready_.empty() || remaining_.load(std::memory_order_acquire) == 0;
    });
    if (ready_.empty()) return -1;
    const std::int32_t idx = ready_.top().idx;
    ready_.pop();
    return idx;
  }

  void worker(int b, const ExecuteFn& execute, long long& executed) {
    TileWorkspace ws(b);
    std::int32_t next = -1;
    for (;;) {
      const std::int32_t idx = next >= 0 ? next : pop();
      next = -1;
      if (idx < 0) return;
      execute(idx, ws);
      ++executed;

      // Release successors; keep the best newly-ready one local.
      std::int32_t keep = -1;
      for (std::int32_t s : graph_.successors(idx)) {
        if (npred_[s].fetch_sub(1, std::memory_order_acq_rel) == 1) {
          if (opts_.data_reuse &&
              (keep < 0 || depth_[s] > depth_[keep])) {
            if (keep >= 0) push(keep);
            keep = s;
          } else {
            push(s);
          }
        }
      }
      next = keep;

      if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        cv_.notify_all();  // everything done: wake sleepers to exit
      }
    }
  }

  const TaskGraph& graph_;
  const ExecutorOptions& opts_;
  std::unique_ptr<std::atomic<int>[]> npred_;
  std::vector<double> depth_;
  std::priority_queue<ReadyTask> ready_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<long long> remaining_;
};

RunStats run_graph(const TaskGraph& graph, int b,
                   const Scheduler::ExecuteFn& execute,
                   const ExecutorOptions& opts) {
  HQR_CHECK(opts.threads >= 1, "need at least one thread");
  Stopwatch sw;
  Scheduler sched(graph, opts);
  RunStats stats;
  stats.threads = opts.threads;
  sched.run(b, execute, opts.threads, stats.tasks_per_thread);
  stats.seconds = sw.seconds();
  stats.total_tasks = graph.size();
  return stats;
}

}  // namespace

RunStats execute_parallel(QRFactors& f, const TaskGraph& graph,
                          const ExecutorOptions& opts) {
  HQR_CHECK(static_cast<int>(f.kernels().size()) == graph.size(),
            "kernel list / graph mismatch");
  return run_graph(
      graph, f.b(),
      [&](std::int32_t idx, TileWorkspace& ws) {
        execute_kernel(f.kernels()[idx], f, ws);
      },
      opts);
}

QRFactors qr_factorize_parallel(const Matrix& a, int b,
                                const EliminationList& list,
                                const ExecutorOptions& opts, RunStats* stats) {
  TiledMatrix tiled = TiledMatrix::from_matrix(a, b);
  const int mt = tiled.mt(), nt = tiled.nt();
  KernelList kernels = expand_to_kernels(list, mt, nt);
  TaskGraph graph(kernels, mt, nt);
  QRFactors f(std::move(tiled), std::move(kernels), opts.ib);
  RunStats s = execute_parallel(f, graph, opts);
  if (stats) *stats = s;
  return f;
}

Matrix build_q_parallel(const QRFactors& f, const ExecutorOptions& opts,
                        RunStats* stats) {
  TiledMatrix q(f.a().padded_m(),
                std::min(f.a().padded_m(), f.a().padded_n()), f.b());
  for (int d = 0; d < std::min(q.padded_m(), q.padded_n()); ++d)
    q.set(d, d, 1.0);
  const KernelList ops =
      q_apply_ops(f, Trans::No, q.nt(), /*economy=*/true);
  TaskGraph graph = TaskGraph::apply_graph(ops, f.mt(), q.nt());
  RunStats s = run_graph(
      graph, f.b(),
      [&](std::int32_t idx, TileWorkspace& ws) {
        execute_apply_kernel(ops[idx], f, Trans::No, q, ws);
      },
      opts);
  if (stats) *stats = s;
  return q.to_padded_matrix();
}

void apply_q_parallel(const QRFactors& f, Trans trans, TiledMatrix& c,
                      const ExecutorOptions& opts, RunStats* stats) {
  HQR_CHECK(c.mt() == f.mt() && c.b() == f.b(),
            "apply_q_parallel: tile row/size mismatch");
  const KernelList ops = q_apply_ops(f, trans, c.nt());
  TaskGraph graph = TaskGraph::apply_graph(ops, f.mt(), c.nt());
  RunStats s = run_graph(
      graph, f.b(),
      [&](std::int32_t idx, TileWorkspace& ws) {
        execute_apply_kernel(ops[idx], f, trans, c, ws);
      },
      opts);
  if (stats) *stats = s;
}

}  // namespace hqr
