#include "runtime/executor.hpp"

#include <algorithm>
#include <atomic>
#include <functional>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>

#include "common/stopwatch.hpp"

namespace hqr {
namespace {

struct ReadyTask {
  double priority;
  std::int32_t idx;

  bool operator<(const ReadyTask& o) const {
    // max-heap by priority, FIFO-ish tiebreak on index.
    if (priority != o.priority) return priority < o.priority;
    return idx > o.idx;
  }
};

// Per-worker accumulators, merged into RunStats after the join — workers
// never contend on shared stats.
struct WorkerStats {
  long long executed = 0;
  long long reuse_hits = 0;
  long long queue_pops = 0;
  long long depth_samples_sum = 0;
  std::array<long long, kKernelTypeCount> tasks_by_kernel{};
  std::array<double, kKernelTypeCount> seconds_by_kernel{};
  double busy_seconds = 0.0;
  double idle_seconds = 0.0;
};

class Scheduler {
 public:
  // Called by a worker to run task `idx` with its private workspace.
  using ExecuteFn = std::function<void(std::int32_t, TileWorkspace&)>;

  Scheduler(const TaskGraph& graph, const ExecutorOptions& opts)
      : graph_(graph),
        opts_(opts),
        timed_(opts.trace != nullptr || opts.metrics != nullptr),
        remaining_(graph.size()) {
    npred_ = std::make_unique<std::atomic<int>[]>(
        static_cast<std::size_t>(graph.size()));
    for (int i = 0; i < graph.size(); ++i)
      npred_[i].store(graph.num_predecessors(i), std::memory_order_relaxed);
    if (opts_.priority_scheduling) {
      graph_.critical_path(unit_weight_duration, &depth_);
    } else {
      depth_.assign(static_cast<std::size_t>(graph.size()), 0.0);
      // FIFO: earlier list index = higher priority.
      for (int i = 0; i < graph.size(); ++i)
        depth_[i] = static_cast<double>(graph.size() - i);
    }
    if (opts_.trace) opts_.trace->ensure_lanes(opts_.threads);
    if (opts_.metrics) {
      for (int t = 0; t < kKernelTypeCount; ++t)
        kernel_hist_[t] = &opts_.metrics->histogram(
            "exec.task_seconds." + kernel_name(static_cast<KernelType>(t)));
    }
    for (std::int32_t r : graph_.roots()) push(r);
  }

  void run(int b, const ExecuteFn& execute, int threads,
           std::vector<WorkerStats>& per_thread) {
    per_thread.assign(static_cast<std::size_t>(threads), {});
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads) - 1);
    for (int t = 1; t < threads; ++t)
      pool.emplace_back([&, t] { worker(b, execute, t, per_thread[t]); });
    worker(b, execute, 0, per_thread[0]);
    for (auto& th : pool) th.join();
  }

 private:
  void push(std::int32_t idx) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      ready_.push({depth_[idx], idx});
    }
    cv_.notify_one();
  }

  // Enqueues every newly-ready successor of one finished task under a
  // single lock acquisition, then wakes exactly as many sleepers as tasks
  // were added (a completing task used to lock + notify once per
  // successor, which serialized workers on the queue mutex).
  void push_batch(const std::vector<std::int32_t>& idxs) {
    if (idxs.empty()) return;
    {
      std::lock_guard<std::mutex> lk(mu_);
      for (std::int32_t idx : idxs) ready_.push({depth_[idx], idx});
    }
    if (idxs.size() == 1) {
      cv_.notify_one();
    } else {
      const std::size_t sleepers =
          std::min(idxs.size(), static_cast<std::size_t>(opts_.threads));
      for (std::size_t i = 0; i < sleepers; ++i) cv_.notify_one();
    }
  }

  // Returns -1 when all tasks are done; samples the queue depth on success.
  std::int32_t pop(WorkerStats& ws) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] {
      return !ready_.empty() || remaining_.load(std::memory_order_acquire) == 0;
    });
    if (ready_.empty()) return -1;
    const std::int32_t idx = ready_.top().idx;
    ready_.pop();
    ++ws.queue_pops;
    ws.depth_samples_sum += static_cast<long long>(ready_.size());
    return idx;
  }

  void worker(int b, const ExecuteFn& execute, int lane, WorkerStats& stats) {
    TileWorkspace ws(b);
    std::vector<std::int32_t> released;
    std::int32_t next = -1;
    for (;;) {
      std::int32_t idx;
      if (next >= 0) {
        idx = next;
        ++stats.reuse_hits;
      } else if (timed_) {
        const double wait0 = clock_.seconds();
        idx = pop(stats);
        stats.idle_seconds += clock_.seconds() - wait0;
      } else {
        idx = pop(stats);
      }
      next = -1;
      if (idx < 0) return;

      const KernelType type = graph_.op(idx).type;
      if (timed_) {
        const double t0 = clock_.seconds();
        execute(idx, ws);
        const double t1 = clock_.seconds();
        const double d = t1 - t0;
        stats.busy_seconds += d;
        stats.seconds_by_kernel[kernel_type_index(type)] += d;
        if (opts_.metrics) kernel_hist_[kernel_type_index(type)]->observe(d);
        if (opts_.trace) {
          const KernelOp& op = graph_.op(idx);
          opts_.trace->record(lane, {idx, lane, /*sub=*/0, type,
                                     /*on_accel=*/false, op.row, op.piv, op.k,
                                     op.j, t0, t1});
        }
      } else {
        execute(idx, ws);
      }
      ++stats.executed;
      ++stats.tasks_by_kernel[kernel_type_index(type)];

      // Release successors; keep the best newly-ready one local and hand
      // the rest to the queue in one batch (single lock acquisition).
      std::int32_t keep = -1;
      released.clear();
      for (std::int32_t s : graph_.successors(idx)) {
        if (npred_[s].fetch_sub(1, std::memory_order_acq_rel) == 1) {
          if (opts_.data_reuse && (keep < 0 || depth_[s] > depth_[keep])) {
            if (keep >= 0) released.push_back(keep);
            keep = s;
          } else {
            released.push_back(s);
          }
        }
      }
      push_batch(released);
      next = keep;

      if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        cv_.notify_all();  // everything done: wake sleepers to exit
      }
    }
  }

  const TaskGraph& graph_;
  const ExecutorOptions& opts_;
  const bool timed_;
  Stopwatch clock_;  // shared time base for trace lanes and busy/idle splits
  std::array<obs::Histogram*, kKernelTypeCount> kernel_hist_{};
  std::unique_ptr<std::atomic<int>[]> npred_;
  std::vector<double> depth_;
  std::priority_queue<ReadyTask> ready_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<long long> remaining_;
};

RunStats run_graph(const TaskGraph& graph, int b,
                   const Scheduler::ExecuteFn& execute,
                   const ExecutorOptions& opts) {
  HQR_CHECK(opts.threads >= 1, "need at least one thread");
  if (opts.trace) opts.trace->set_labels("worker", "thread");
  Stopwatch sw;
  Scheduler sched(graph, opts);
  RunStats stats;
  stats.threads = opts.threads;
  std::vector<WorkerStats> per_thread;
  sched.run(b, execute, opts.threads, per_thread);
  stats.seconds = sw.seconds();
  stats.total_tasks = graph.size();

  const bool timed = opts.trace != nullptr || opts.metrics != nullptr;
  stats.tasks_per_thread.reserve(per_thread.size());
  if (timed) {
    stats.busy_seconds_per_thread.reserve(per_thread.size());
    stats.idle_seconds_per_thread.reserve(per_thread.size());
  }
  long long depth_sum = 0;
  for (const WorkerStats& w : per_thread) {
    stats.tasks_per_thread.push_back(w.executed);
    stats.reuse_hits += w.reuse_hits;
    stats.queue_pops += w.queue_pops;
    depth_sum += w.depth_samples_sum;
    for (int t = 0; t < kKernelTypeCount; ++t) {
      stats.tasks_by_kernel[t] += w.tasks_by_kernel[t];
      stats.seconds_by_kernel[t] += w.seconds_by_kernel[t];
    }
    if (timed) {
      stats.busy_seconds_per_thread.push_back(w.busy_seconds);
      stats.idle_seconds_per_thread.push_back(w.idle_seconds);
    }
  }
  if (stats.queue_pops > 0)
    stats.avg_ready_depth =
        static_cast<double>(depth_sum) / static_cast<double>(stats.queue_pops);

  if (opts.metrics) {
    obs::MetricsRegistry& m = *opts.metrics;
    m.counter("exec.tasks").add(stats.total_tasks);
    m.counter("exec.reuse_hits").add(stats.reuse_hits);
    m.counter("exec.queue_pops").add(stats.queue_pops);
    m.gauge("exec.seconds").add(stats.seconds);
    m.gauge("exec.avg_ready_depth").set(stats.avg_ready_depth);
    for (std::size_t t = 0; t < per_thread.size(); ++t) {
      m.gauge("exec.worker." + std::to_string(t) + ".busy_seconds")
          .add(per_thread[t].busy_seconds);
      m.gauge("exec.worker." + std::to_string(t) + ".idle_seconds")
          .add(per_thread[t].idle_seconds);
    }
  }
  return stats;
}

}  // namespace

RunStats execute_parallel(QRFactors& f, const TaskGraph& graph,
                          const ExecutorOptions& opts) {
  HQR_CHECK(static_cast<int>(f.kernels().size()) == graph.size(),
            "kernel list / graph mismatch");
  return run_graph(
      graph, f.b(),
      [&](std::int32_t idx, TileWorkspace& ws) {
        execute_kernel(f.kernels()[idx], f, ws);
      },
      opts);
}

QRFactors qr_factorize_parallel(const Matrix& a, int b,
                                const EliminationList& list,
                                const ExecutorOptions& opts, RunStats* stats) {
  TiledMatrix tiled = TiledMatrix::from_matrix(a, b);
  const int mt = tiled.mt(), nt = tiled.nt();
  KernelList kernels = expand_to_kernels(list, mt, nt);
  TaskGraph graph(kernels, mt, nt);
  QRFactors f(std::move(tiled), std::move(kernels), opts.ib);
  RunStats s = execute_parallel(f, graph, opts);
  if (stats) *stats = s;
  return f;
}

Matrix build_q_parallel(const QRFactors& f, const ExecutorOptions& opts,
                        RunStats* stats) {
  TiledMatrix q(f.a().padded_m(),
                std::min(f.a().padded_m(), f.a().padded_n()), f.b());
  for (int d = 0; d < std::min(q.padded_m(), q.padded_n()); ++d)
    q.set(d, d, 1.0);
  const KernelList ops =
      q_apply_ops(f, Trans::No, q.nt(), /*economy=*/true);
  TaskGraph graph = TaskGraph::apply_graph(ops, f.mt(), q.nt());
  RunStats s = run_graph(
      graph, f.b(),
      [&](std::int32_t idx, TileWorkspace& ws) {
        execute_apply_kernel(ops[idx], f, Trans::No, q, ws);
      },
      opts);
  if (stats) *stats = s;
  return q.to_padded_matrix();
}

void apply_q_parallel(const QRFactors& f, Trans trans, TiledMatrix& c,
                      const ExecutorOptions& opts, RunStats* stats) {
  HQR_CHECK(c.mt() == f.mt() && c.b() == f.b(),
            "apply_q_parallel: tile row/size mismatch");
  const KernelList ops = q_apply_ops(f, trans, c.nt());
  TaskGraph graph = TaskGraph::apply_graph(ops, f.mt(), c.nt());
  RunStats s = run_graph(
      graph, f.b(),
      [&](std::int32_t idx, TileWorkspace& ws) {
        execute_apply_kernel(ops[idx], f, trans, c, ws);
      },
      opts);
  if (stats) *stats = s;
}

}  // namespace hqr
