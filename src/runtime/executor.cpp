#include "runtime/executor.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <thread>

#include "common/stopwatch.hpp"
#include "runtime/ready_task.hpp"
#include "runtime/steal_deque.hpp"

namespace hqr {

SchedulerKind scheduler_kind_from_name(const std::string& name) {
  if (name == "steal") return SchedulerKind::Steal;
  if (name == "global") return SchedulerKind::Global;
  HQR_CHECK(false, "unknown scheduler '" << name << "' (want steal|global)");
  return SchedulerKind::Steal;  // unreachable
}

const char* scheduler_kind_name(SchedulerKind kind) {
  return kind == SchedulerKind::Steal ? "steal" : "global";
}

namespace {

// Per-worker accumulators, merged into RunStats after the join — workers
// never contend on shared stats.
struct WorkerStats {
  long long executed = 0;
  long long reuse_hits = 0;
  long long queue_pops = 0;
  long long local_hits = 0;
  long long steals = 0;
  long long steal_fails = 0;
  long long overflow_pops = 0;
  long long locality_hits = 0;
  long long locality_misses = 0;
  long long depth_samples = 0;
  long long depth_samples_sum = 0;
  std::array<long long, kKernelTypeCount> tasks_by_kernel{};
  std::array<double, kKernelTypeCount> seconds_by_kernel{};
  double busy_seconds = 0.0;
  double idle_seconds = 0.0;
  double terminal_wait_seconds = 0.0;
};

// A scheduling policy provides ready-task storage behind four hooks:
//   seed(roots)           called before workers start (single-threaded)
//   release(lane, batch)  hand the newly-ready successors of a finished
//                         task to the scheduler (batch may be reordered)
//   acquire(lane, ws)     block until a task is available (returns its
//                         index) or every task has finished (returns -1)
//   all_done()            the last task finished; wake any sleeper
// The engine owns the dependency counters and the worker loop.

// Baseline backend: one mutex+condvar priority queue shared by all
// workers. Every acquire/release serializes on mu_, which is exactly the
// contention the stealing backend removes.
class GlobalQueuePolicy {
 public:
  GlobalQueuePolicy(const std::vector<double>& depth,
                    const ExecutorOptions& opts,
                    const std::atomic<long long>& remaining,
                    const std::atomic<bool>& cancelled)
      : depth_(depth), opts_(opts), remaining_(remaining),
        cancelled_(cancelled) {}

  void seed(const std::vector<std::int32_t>& roots) {
    for (std::int32_t r : roots) ready_.push({depth_[r], r});
  }

  // Enqueues every newly-ready successor of one finished task under a
  // single lock acquisition, then wakes exactly as many sleepers as tasks
  // were added.
  void release(int /*lane*/, std::vector<std::int32_t>& batch) {
    if (batch.empty()) return;
    {
      std::lock_guard<std::mutex> lk(mu_);
      for (std::int32_t idx : batch) ready_.push({depth_[idx], idx});
    }
    if (batch.size() == 1) {
      cv_.notify_one();
    } else {
      const std::size_t sleepers =
          std::min(batch.size(), static_cast<std::size_t>(opts_.threads));
      for (std::size_t i = 0; i < sleepers; ++i) cv_.notify_one();
    }
  }

  std::int32_t acquire(int /*lane*/, WorkerStats& ws) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] {
      return !ready_.empty() ||
             remaining_.load(std::memory_order_acquire) == 0 ||
             cancelled_.load(std::memory_order_acquire);
    });
    if (cancelled_.load(std::memory_order_acquire) || ready_.empty())
      return -1;
    const std::int32_t idx = ready_.top().idx;
    ready_.pop();
    ++ws.queue_pops;
    ++ws.depth_samples;
    ws.depth_samples_sum += static_cast<long long>(ready_.size());
    return idx;
  }

  void all_done() {
    // Taking the lock orders this notify after any waiter's predicate
    // check, so the wakeup cannot be lost between check and block.
    { std::lock_guard<std::mutex> lk(mu_); }
    cv_.notify_all();
  }

 private:
  const std::vector<double>& depth_;
  const ExecutorOptions& opts_;
  const std::atomic<long long>& remaining_;
  const std::atomic<bool>& cancelled_;
  std::priority_queue<ReadyTask> ready_;
  std::mutex mu_;
  std::condition_variable cv_;
};

// Work-stealing backend: each worker owns a fixed-capacity Chase–Lev
// deque fed by the successors it releases. Released batches are pushed in
// ascending priority so the owner's LIFO pop always takes its
// highest-priority ready task; thieves steal the oldest (lowest-priority)
// end. Tasks that do not fit the deque — and the graph roots, which no
// worker owns — go to a small mutex-protected priority heap shared by all
// workers, preserving the critical-path ordering across workers for
// anything that spills. Idle workers try: own deque, overflow heap,
// randomized victims; only after a full failed sweep do they block
// (timed, so a missed wakeup costs microseconds, never a deadlock).
class StealPolicy {
 public:
  StealPolicy(const std::vector<double>& depth, const ExecutorOptions& opts,
              const std::atomic<long long>& remaining,
              const std::atomic<bool>& cancelled)
      : depth_(depth),
        opts_(opts),
        remaining_(remaining),
        cancelled_(cancelled),
        deques_(static_cast<std::size_t>(opts.threads)),
        lanes_(static_cast<std::size_t>(opts.threads)) {
    for (std::size_t t = 0; t < lanes_.size(); ++t)
      lanes_[t].rng = 0x9e3779b97f4a7c15ULL * (t + 1) + 1;
    // Producer lane per task, written at release time. Roots and external
    // (remote) releases keep -1: no local producer, never a locality hit.
    producer_ = std::make_unique<std::atomic<int>[]>(depth.size());
    for (std::size_t i = 0; i < depth.size(); ++i)
      producer_[i].store(-1, std::memory_order_relaxed);
    if (opts.locality_stealing && opts.threads > 1) {
      if (opts.topology != nullptr && opts.topology->workers == opts.threads) {
        topo_ = opts.topology;
      } else if (opts.topology == nullptr) {
        host_topo_ = WorkerTopology::build(CpuTopology::detect(), opts.threads);
        topo_ = &host_topo_;
      }
      // On a single-domain machine the near-first order cannot differ from
      // the plain randomized sweep, so keep the latter (topo_ still feeds
      // the locality counters).
      use_victim_order_ = topo_ != nullptr && topo_->multi_domain;
    }
  }

  void seed(const std::vector<std::int32_t>& roots) {
    std::lock_guard<std::mutex> lk(overflow_mu_);
    for (std::int32_t r : roots) overflow_.push({depth_[r], r});
    overflow_size_.store(static_cast<std::int64_t>(overflow_.size()),
                         std::memory_order_release);
  }

  void release(int lane, std::vector<std::int32_t>& batch) {
    if (batch.empty()) return;
    if (lane < 0) {
      // External release (a remote producer's payload arrived on the
      // communication thread): no worker owns the batch, so it goes to the
      // shared priority heap.
      {
        std::lock_guard<std::mutex> lk(overflow_mu_);
        for (std::int32_t idx : batch) overflow_.push({depth_[idx], idx});
        overflow_size_.store(static_cast<std::int64_t>(overflow_.size()),
                             std::memory_order_release);
      }
      if (sleepers_.load(std::memory_order_acquire) > 0) cv_.notify_all();
      return;
    }
    // Ascending priority: the best task ends up on top of the LIFO deque.
    std::sort(batch.begin(), batch.end(),
              [&](std::int32_t x, std::int32_t y) {
                if (depth_[x] != depth_[y]) return depth_[x] < depth_[y];
                return x > y;
              });
    // Tag each task with its producing lane before it becomes visible to
    // thieves; the tag drives the locality hit/miss accounting at acquire.
    for (std::int32_t idx : batch)
      producer_[idx].store(lane, std::memory_order_release);
    StealDeque& own = deques_[static_cast<std::size_t>(lane)];
    for (std::int32_t idx : batch)
      if (!own.push(idx)) spill(idx);
    if (sleepers_.load(std::memory_order_acquire) > 0) {
      if (batch.size() > 1)
        cv_.notify_all();
      else
        cv_.notify_one();
    }
  }

  std::int32_t acquire(int lane, WorkerStats& ws) {
    StealDeque& own = deques_[static_cast<std::size_t>(lane)];
    const int nw = opts_.threads;
    for (;;) {
      std::int32_t idx = own.pop();
      if (idx >= 0) {
        ++ws.local_hits;
        ++ws.queue_pops;
        ++ws.depth_samples;
        ws.depth_samples_sum += own.size();
        count_locality(lane, idx, ws);
        return idx;
      }
      if (remaining_.load(std::memory_order_acquire) == 0 ||
          cancelled_.load(std::memory_order_acquire))
        return -1;
      if (overflow_size_.load(std::memory_order_acquire) > 0 &&
          (idx = pop_overflow(lane, ws)) >= 0)
        return idx;
      // Steal sweep: topology-near victims first when the machine has
      // distinct cache domains, the plain randomized order otherwise; a
      // couple of passes over the other workers before giving up and
      // blocking.
      const std::vector<int>* order =
          use_victim_order_
              ? &topo_->victim_order[static_cast<std::size_t>(lane)]
              : nullptr;
      for (int attempt = 0; nw > 1 && attempt < 2 * nw; ++attempt) {
        if (remaining_.load(std::memory_order_acquire) == 0 ||
            cancelled_.load(std::memory_order_acquire))
          return -1;
        const int victim =
            order ? (*order)[static_cast<std::size_t>(attempt) % order->size()]
                  : pick_victim(lane, nw);
        idx = deques_[static_cast<std::size_t>(victim)].steal();
        if (idx >= 0) {
          ++ws.steals;
          ++ws.queue_pops;
          count_locality(lane, idx, ws);
          return idx;
        }
        ++ws.steal_fails;
        if (overflow_size_.load(std::memory_order_acquire) > 0 &&
            (idx = pop_overflow(lane, ws)) >= 0)
          return idx;
      }
      // Nothing visible anywhere: block until a release (or completion)
      // wakes us. The timeout is a backstop against the benign
      // release-vs-register race — it bounds a missed wakeup, the common
      // path is an explicit notify.
      std::unique_lock<std::mutex> lk(mu_);
      sleepers_.fetch_add(1, std::memory_order_acq_rel);
      if (remaining_.load(std::memory_order_acquire) > 0 &&
          !cancelled_.load(std::memory_order_acquire))
        cv_.wait_for(lk, std::chrono::microseconds(200));
      sleepers_.fetch_sub(1, std::memory_order_acq_rel);
    }
  }

  void all_done() {
    { std::lock_guard<std::mutex> lk(mu_); }
    cv_.notify_all();
  }

 private:
  struct alignas(64) LaneState {
    std::uint64_t rng = 0;
  };

  int pick_victim(int lane, int nw) {
    std::uint64_t& s = lanes_[static_cast<std::size_t>(lane)].rng;
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    const int v = static_cast<int>(s % static_cast<std::uint64_t>(nw - 1));
    return v >= lane ? v + 1 : v;  // uniform over the other workers
  }

  void spill(std::int32_t idx) {
    std::lock_guard<std::mutex> lk(overflow_mu_);
    overflow_.push({depth_[idx], idx});
    overflow_size_.store(static_cast<std::int64_t>(overflow_.size()),
                         std::memory_order_release);
  }

  std::int32_t pop_overflow(int lane, WorkerStats& ws) {
    std::int32_t idx = -1;
    {
      std::lock_guard<std::mutex> lk(overflow_mu_);
      if (overflow_.empty()) return -1;
      idx = overflow_.top().idx;
      overflow_.pop();
      overflow_size_.store(static_cast<std::int64_t>(overflow_.size()),
                           std::memory_order_release);
    }
    ++ws.overflow_pops;
    ++ws.queue_pops;
    count_locality(lane, idx, ws);
    return idx;
  }

  // Every successful pop is classified: hit when the producing lane shares
  // the acquirer's LLC domain, miss otherwise (untagged tasks — roots and
  // remote releases — always miss).
  void count_locality(int lane, std::int32_t idx, WorkerStats& ws) {
    if (topo_ == nullptr) return;
    const int p = producer_[idx].load(std::memory_order_acquire);
    if (p >= 0 && topo_->near(lane, p))
      ++ws.locality_hits;
    else
      ++ws.locality_misses;
  }

  const std::vector<double>& depth_;
  const ExecutorOptions& opts_;
  const std::atomic<long long>& remaining_;
  const std::atomic<bool>& cancelled_;
  std::vector<StealDeque> deques_;
  std::vector<LaneState> lanes_;
  std::unique_ptr<std::atomic<int>[]> producer_;
  const WorkerTopology* topo_ = nullptr;
  WorkerTopology host_topo_;
  bool use_victim_order_ = false;

  std::mutex overflow_mu_;
  std::priority_queue<ReadyTask> overflow_;
  std::atomic<std::int64_t> overflow_size_{0};

  // Sleep/wake machinery for workers that found no work anywhere.
  std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<int> sleepers_{0};
};

// Dependency tracking, priority assignment, timing/trace capture and the
// worker loop, parameterized over the ready-task storage policy.
template <class Policy>
class Engine {
 public:
  // Called by a worker to run task `idx` with its private workspace.
  using ExecuteFn = std::function<void(std::int32_t, TileWorkspace&)>;

  Engine(const TaskGraph& graph, const ExecutorOptions& opts,
         const PartitionView* view = nullptr)
      : graph_(graph),
        opts_(opts),
        view_(view),
        timed_(opts.trace != nullptr || opts.metrics != nullptr),
        remaining_(0) {
    if (opts.trace_origin >= 0.0) clock_.set_origin(opts.trace_origin);
    local_tasks_ = graph.size();
    if (view_) {
      local_tasks_ = 0;
      for (int i = 0; i < graph.size(); ++i)
        if (is_local(i)) ++local_tasks_;
    }
    remaining_.store(local_tasks_, std::memory_order_relaxed);
    npred_ = std::make_unique<std::atomic<int>[]>(
        static_cast<std::size_t>(graph.size()));
    for (int i = 0; i < graph.size(); ++i)
      npred_[i].store(graph.num_predecessors(i), std::memory_order_relaxed);
    if (opts_.priority_scheduling) {
      // Priorities come from the critical path of the FULL graph even in
      // partition mode, matching what the cluster simulator assumes every
      // node schedules by.
      graph_.critical_path(unit_weight_duration, &depth_);
    } else {
      depth_.assign(static_cast<std::size_t>(graph.size()), 0.0);
      // FIFO: earlier list index = higher priority.
      for (int i = 0; i < graph.size(); ++i)
        depth_[i] = static_cast<double>(graph.size() - i);
    }
    if (opts_.trace) opts_.trace->ensure_lanes(opts_.threads);
    if (opts_.metrics) {
      for (int t = 0; t < kKernelTypeCount; ++t)
        kernel_hist_[t] = &opts_.metrics->histogram(
            "exec.task_seconds." + kernel_name(static_cast<KernelType>(t)));
    }
    policy_.emplace(depth_, opts_, remaining_, cancelled_);
    if (view_) {
      std::vector<std::int32_t> local_roots;
      for (std::int32_t r : graph_.roots())
        if (is_local(r)) local_roots.push_back(r);
      policy_->seed(local_roots);
    } else {
      policy_->seed(graph_.roots());
    }
  }

  long long local_tasks() const { return local_tasks_; }

  // Remote producer done (payload applied): release its local successors.
  // Called from the communication thread while workers run.
  void remote_complete(std::int32_t producer) {
    std::vector<std::int32_t> batch;
    for (std::int32_t s : graph_.successors(producer)) {
      if (!is_local(s)) continue;
      if (npred_[s].fetch_sub(1, std::memory_order_acq_rel) == 1)
        batch.push_back(s);
    }
    policy_->release(/*lane=*/-1, batch);
  }

  void cancel() {
    cancelled_.store(true, std::memory_order_release);
    policy_->all_done();
  }

  void run(int b, const ExecuteFn& execute, int threads,
           std::vector<WorkerStats>& per_thread) {
    per_thread.assign(static_cast<std::size_t>(threads), {});
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads) - 1);
    for (int t = 1; t < threads; ++t)
      pool.emplace_back([&, t] { worker(b, execute, t, per_thread[t]); });
    worker(b, execute, 0, per_thread[0]);
    for (auto& th : pool) th.join();
  }

 private:
  void worker(int b, const ExecuteFn& execute, int lane, WorkerStats& stats) {
    TileWorkspace ws(b);
    std::vector<std::int32_t> released;
    std::int32_t next = -1;
    for (;;) {
      std::int32_t idx;
      if (next >= 0) {
        idx = next;
        ++stats.reuse_hits;
      } else if (timed_) {
        const double wait0 = clock_.seconds();
        idx = policy_->acquire(lane, stats);
        const double waited = clock_.seconds() - wait0;
        // The acquire that observes completion is the termination barrier,
        // not a stall — book it separately so idle stays a contention
        // signal.
        if (idx >= 0)
          stats.idle_seconds += waited;
        else
          stats.terminal_wait_seconds += waited;
      } else {
        idx = policy_->acquire(lane, stats);
      }
      next = -1;
      if (idx < 0) return;
      if (cancelled_.load(std::memory_order_acquire)) return;

      const KernelType type = graph_.op(idx).type;
      if (timed_) {
        const double t0 = clock_.seconds();
        execute(idx, ws);
        const double t1 = clock_.seconds();
        const double d = t1 - t0;
        stats.busy_seconds += d;
        stats.seconds_by_kernel[kernel_type_index(type)] += d;
        if (opts_.metrics) kernel_hist_[kernel_type_index(type)]->observe(d);
        if (opts_.trace) {
          const KernelOp& op = graph_.op(idx);
          opts_.trace->record(lane, {idx, lane, /*sub=*/0, type,
                                     /*on_accel=*/false, op.row, op.piv, op.k,
                                     op.j, t0, t1});
        }
      } else {
        execute(idx, ws);
      }
      ++stats.executed;
      ++stats.tasks_by_kernel[kernel_type_index(type)];

      // Partition mode: hand the finished task to the caller (it packs the
      // output regions onto the wire) before any successor can run and
      // overwrite them.
      if (view_ && view_->on_complete) view_->on_complete(idx);

      // Release successors; keep the best newly-ready one local and hand
      // the rest to the scheduler in one batch. Remote-owned successors are
      // skipped: their owner releases them when this task's payload lands.
      std::int32_t keep = -1;
      released.clear();
      for (std::int32_t s : graph_.successors(idx)) {
        if (view_ && !is_local(s)) continue;
        if (npred_[s].fetch_sub(1, std::memory_order_acq_rel) == 1) {
          if (opts_.data_reuse && (keep < 0 || depth_[s] > depth_[keep])) {
            if (keep >= 0) released.push_back(keep);
            keep = s;
          } else {
            released.push_back(s);
          }
        }
      }
      policy_->release(lane, released);
      next = keep;

      if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        policy_->all_done();  // everything done: wake sleepers to exit
      }
    }
  }

  bool is_local(std::int32_t i) const {
    return (*view_->task_rank)[static_cast<std::size_t>(i)] == view_->my_rank;
  }

  const TaskGraph& graph_;
  const ExecutorOptions& opts_;
  const PartitionView* view_;
  const bool timed_;
  long long local_tasks_ = 0;
  Stopwatch clock_;  // shared time base for trace lanes and busy/idle splits
  std::array<obs::Histogram*, kKernelTypeCount> kernel_hist_{};
  std::unique_ptr<std::atomic<int>[]> npred_;
  std::vector<double> depth_;
  std::atomic<long long> remaining_;
  std::atomic<bool> cancelled_{false};
  std::optional<Policy> policy_;  // constructed once depth_ is final
};

// Adapts one concrete Engine<Policy> to the policy-agnostic RemotePort the
// distributed runtime holds.
template <class Policy>
class EnginePort final : public RemotePort {
 public:
  explicit EnginePort(Engine<Policy>& e) : e_(e) {}
  void remote_complete(std::int32_t producer) override {
    e_.remote_complete(producer);
  }
  void cancel() override { e_.cancel(); }

 private:
  Engine<Policy>& e_;
};

template <class Policy>
RunStats run_graph_impl(const TaskGraph& graph, int b,
                        const std::function<void(std::int32_t, TileWorkspace&)>&
                            execute,
                        const ExecutorOptions& opts,
                        const PartitionView* view = nullptr,
                        const std::function<void(RemotePort&)>& port_ready =
                            {},
                        const std::function<void()>& before_teardown = {}) {
  Stopwatch sw;
  Engine<Policy> engine(graph, opts, view);
  EnginePort<Policy> port(engine);
  if (port_ready) port_ready(port);
  RunStats stats;
  stats.threads = opts.threads;
  std::vector<WorkerStats> per_thread;
  engine.run(b, execute, opts.threads, per_thread);
  // The port must outlive every thread that can call into it.
  if (before_teardown) before_teardown();
  stats.seconds = sw.seconds();
  stats.total_tasks = engine.local_tasks();

  const bool timed = opts.trace != nullptr || opts.metrics != nullptr;
  stats.tasks_per_thread.reserve(per_thread.size());
  if (timed) {
    stats.busy_seconds_per_thread.reserve(per_thread.size());
    stats.idle_seconds_per_thread.reserve(per_thread.size());
    stats.terminal_wait_seconds_per_thread.reserve(per_thread.size());
  }
  long long depth_sum = 0, depth_samples = 0;
  for (const WorkerStats& w : per_thread) {
    stats.tasks_per_thread.push_back(w.executed);
    stats.reuse_hits += w.reuse_hits;
    stats.queue_pops += w.queue_pops;
    stats.local_hits += w.local_hits;
    stats.steals += w.steals;
    stats.steal_fails += w.steal_fails;
    stats.overflow_pops += w.overflow_pops;
    stats.locality_hits += w.locality_hits;
    stats.locality_misses += w.locality_misses;
    depth_sum += w.depth_samples_sum;
    depth_samples += w.depth_samples;
    for (int t = 0; t < kKernelTypeCount; ++t) {
      stats.tasks_by_kernel[t] += w.tasks_by_kernel[t];
      stats.seconds_by_kernel[t] += w.seconds_by_kernel[t];
    }
    if (timed) {
      stats.busy_seconds_per_thread.push_back(w.busy_seconds);
      stats.idle_seconds_per_thread.push_back(w.idle_seconds);
      stats.terminal_wait_seconds_per_thread.push_back(
          w.terminal_wait_seconds);
    }
  }
  if (depth_samples > 0)
    stats.avg_ready_depth =
        static_cast<double>(depth_sum) / static_cast<double>(depth_samples);

  if (opts.metrics) {
    obs::MetricsRegistry& m = *opts.metrics;
    m.counter("exec.tasks").add(stats.total_tasks);
    m.counter("exec.reuse_hits").add(stats.reuse_hits);
    m.counter("exec.queue_pops").add(stats.queue_pops);
    m.counter("exec.local_hits").add(stats.local_hits);
    m.counter("exec.steals").add(stats.steals);
    m.counter("exec.steal_fails").add(stats.steal_fails);
    m.counter("exec.overflow_pops").add(stats.overflow_pops);
    m.counter("exec.locality_hits").add(stats.locality_hits);
    m.counter("exec.locality_misses").add(stats.locality_misses);
    m.gauge("exec.seconds").add(stats.seconds);
    m.gauge("exec.avg_ready_depth").set(stats.avg_ready_depth);
    for (std::size_t t = 0; t < per_thread.size(); ++t) {
      m.gauge("exec.worker." + std::to_string(t) + ".busy_seconds")
          .add(per_thread[t].busy_seconds);
      m.gauge("exec.worker." + std::to_string(t) + ".idle_seconds")
          .add(per_thread[t].idle_seconds);
      m.gauge("exec.worker." + std::to_string(t) + ".terminal_wait_seconds")
          .add(per_thread[t].terminal_wait_seconds);
    }
  }
  return stats;
}

RunStats run_graph(const TaskGraph& graph, int b,
                   const std::function<void(std::int32_t, TileWorkspace&)>&
                       execute,
                   const ExecutorOptions& opts) {
  HQR_CHECK(opts.threads >= 1, "need at least one thread");
  if (opts.trace) opts.trace->set_labels("worker", "thread");
  if (opts.scheduler == SchedulerKind::Global)
    return run_graph_impl<GlobalQueuePolicy>(graph, b, execute, opts);
  return run_graph_impl<StealPolicy>(graph, b, execute, opts);
}

}  // namespace

RunStats execute_parallel(QRFactors& f, const TaskGraph& graph,
                          const ExecutorOptions& opts) {
  HQR_CHECK(static_cast<int>(f.kernels().size()) == graph.size(),
            "kernel list / graph mismatch");
  return run_graph(
      graph, f.b(),
      [&](std::int32_t idx, TileWorkspace& ws) {
        execute_kernel(f.kernels()[idx], f, ws);
      },
      opts);
}

RunStats execute_partition(QRFactors& f, const TaskGraph& graph,
                           const ExecutorOptions& opts,
                           const PartitionView& view,
                           const std::function<void(RemotePort&)>& port_ready,
                           const std::function<void()>& before_teardown) {
  HQR_CHECK(static_cast<int>(f.kernels().size()) == graph.size(),
            "kernel list / graph mismatch");
  HQR_CHECK(view.task_rank != nullptr &&
                static_cast<int>(view.task_rank->size()) == graph.size(),
            "partition view task_rank must cover the graph");
  HQR_CHECK(opts.threads >= 1, "need at least one thread");
  if (opts.trace) opts.trace->set_labels("worker", "thread");
  const auto execute = [&](std::int32_t idx, TileWorkspace& ws) {
    execute_kernel(f.kernels()[idx], f, ws);
  };
  if (opts.scheduler == SchedulerKind::Global)
    return run_graph_impl<GlobalQueuePolicy>(graph, f.b(), execute, opts,
                                             &view, port_ready,
                                             before_teardown);
  return run_graph_impl<StealPolicy>(graph, f.b(), execute, opts, &view,
                                     port_ready, before_teardown);
}

QRFactors qr_factorize_parallel(const Matrix& a, int b,
                                const EliminationList& list,
                                const ExecutorOptions& opts, RunStats* stats) {
  TiledMatrix tiled = TiledMatrix::from_matrix(a, b);
  const int mt = tiled.mt(), nt = tiled.nt();
  KernelList kernels = expand_to_kernels(list, mt, nt);
  TaskGraph graph(kernels, mt, nt);
  QRFactors f(std::move(tiled), std::move(kernels), opts.ib);
  RunStats s = execute_parallel(f, graph, opts);
  if (stats) *stats = s;
  return f;
}

Matrix build_q_parallel(const QRFactors& f, const ExecutorOptions& opts,
                        RunStats* stats) {
  TiledMatrix q(f.a().padded_m(),
                std::min(f.a().padded_m(), f.a().padded_n()), f.b());
  for (int d = 0; d < std::min(q.padded_m(), q.padded_n()); ++d)
    q.set(d, d, 1.0);
  const KernelList ops =
      q_apply_ops(f, Trans::No, q.nt(), /*economy=*/true);
  TaskGraph graph = TaskGraph::apply_graph(ops, f.mt(), q.nt());
  RunStats s = run_graph(
      graph, f.b(),
      [&](std::int32_t idx, TileWorkspace& ws) {
        execute_apply_kernel(ops[idx], f, Trans::No, q, ws);
      },
      opts);
  if (stats) *stats = s;
  return q.to_padded_matrix();
}

void apply_q_parallel(const QRFactors& f, Trans trans, TiledMatrix& c,
                      const ExecutorOptions& opts, RunStats* stats) {
  HQR_CHECK(c.mt() == f.mt() && c.b() == f.b(),
            "apply_q_parallel: tile row/size mismatch");
  const KernelList ops = q_apply_ops(f, trans, c.nt());
  TaskGraph graph = TaskGraph::apply_graph(ops, f.mt(), c.nt());
  RunStats s = run_graph(
      graph, f.b(),
      [&](std::int32_t idx, TileWorkspace& ws) {
        execute_apply_kernel(ops[idx], f, trans, c, ws);
      },
      opts);
  if (stats) *stats = s;
}

}  // namespace hqr
