// Shared-memory task executor ("DAGuE-lite", paper §IV-C).
//
// Executes the real numeric kernels of a QR factorization following the
// task-graph dependencies with a pool of worker threads. Scheduling policy
// mirrors the paper's description: ready tasks are ordered by a priority
// (critical-path depth), and a worker preferentially continues with a
// successor of the task it just finished (data-reuse heuristic), falling
// back to the shared ready queue.
#pragma once

#include <vector>

#include "core/factorization.hpp"
#include "dag/task_graph.hpp"

namespace hqr {

struct RunStats {
  double seconds = 0.0;
  int threads = 0;
  std::vector<long long> tasks_per_thread;
  long long total_tasks = 0;
};

struct ExecutorOptions {
  int threads = 1;
  // Use critical-path depth as priority (true) or FIFO order (false) —
  // the scheduler-priority ablation bench flips this.
  bool priority_scheduling = true;
  // Data-reuse heuristic: keep one ready successor local to the worker.
  bool data_reuse = true;
  // Inner block size for the kernels (0 = plain full-T kernels).
  int ib = 0;
};

// Executes all kernels of `f` (its kernel list must match `graph`'s ops) in
// dependency order using `opts.threads` workers. Thread-safe: kernels on
// dependent tiles are ordered by the graph; independent kernels touch
// disjoint tiles.
RunStats execute_parallel(QRFactors& f, const TaskGraph& graph,
                          const ExecutorOptions& opts);

// Convenience: factorize with the parallel runtime.
QRFactors qr_factorize_parallel(const Matrix& a, int b,
                                const EliminationList& list,
                                const ExecutorOptions& opts,
                                RunStats* stats = nullptr);

// Parallel Q formation (dorgqr analogue): builds the economy Q through the
// runtime using the Q-application task graph.
Matrix build_q_parallel(const QRFactors& f, const ExecutorOptions& opts,
                        RunStats* stats = nullptr);

// Parallel Q / Q^T application (dormqr analogue) to a tiled matrix in
// place; c must share tile rows and tile size with the factorization.
void apply_q_parallel(const QRFactors& f, Trans trans, TiledMatrix& c,
                      const ExecutorOptions& opts, RunStats* stats = nullptr);

}  // namespace hqr
