// Shared-memory task executor ("DAGuE-lite", paper §IV-C).
//
// Executes the real numeric kernels of a QR factorization following the
// task-graph dependencies with a pool of worker threads. Scheduling policy
// mirrors the paper's description: ready tasks are ordered by a priority
// (critical-path depth), and a worker preferentially continues with a
// successor of the task it just finished (data-reuse heuristic), falling
// back to the shared ready queue.
#pragma once

#include <array>
#include <vector>

#include "core/factorization.hpp"
#include "dag/task_graph.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hqr {

struct RunStats {
  double seconds = 0.0;
  int threads = 0;
  std::vector<long long> tasks_per_thread;
  long long total_tasks = 0;

  // Scheduler counters (always collected; no clock reads involved).
  long long reuse_hits = 0;   // tasks taken via the data-reuse keep
  long long queue_pops = 0;   // tasks taken from the shared ready queue
  double avg_ready_depth = 0.0;  // mean ready-queue depth sampled at pops
  std::array<long long, kKernelTypeCount> tasks_by_kernel{};

  // Fraction of tasks whose input tiles stayed warm in the worker.
  double reuse_hit_rate() const {
    return total_tasks > 0
               ? static_cast<double>(reuse_hits) / static_cast<double>(total_tasks)
               : 0.0;
  }

  // Timing breakdowns — populated only when the run was observed (a trace
  // or metrics sink was attached), so the unobserved hot path never reads
  // the clock per task.
  std::array<double, kKernelTypeCount> seconds_by_kernel{};
  std::vector<double> busy_seconds_per_thread;  // executing kernels
  std::vector<double> idle_seconds_per_thread;  // waiting for ready work
};

struct ExecutorOptions {
  int threads = 1;
  // Use critical-path depth as priority (true) or FIFO order (false) —
  // the scheduler-priority ablation bench flips this.
  bool priority_scheduling = true;
  // Data-reuse heuristic: keep one ready successor local to the worker.
  bool data_reuse = true;
  // Inner block size for the kernels (0 = plain full-T kernels).
  int ib = 0;
  // Observability sinks (obs/). Null = disabled; enabling costs two clock
  // reads per task plus lock-free per-lane appends / atomic updates.
  obs::TraceRecorder* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

// Executes all kernels of `f` (its kernel list must match `graph`'s ops) in
// dependency order using `opts.threads` workers. Thread-safe: kernels on
// dependent tiles are ordered by the graph; independent kernels touch
// disjoint tiles.
RunStats execute_parallel(QRFactors& f, const TaskGraph& graph,
                          const ExecutorOptions& opts);

// Convenience: factorize with the parallel runtime.
QRFactors qr_factorize_parallel(const Matrix& a, int b,
                                const EliminationList& list,
                                const ExecutorOptions& opts,
                                RunStats* stats = nullptr);

// Parallel Q formation (dorgqr analogue): builds the economy Q through the
// runtime using the Q-application task graph.
Matrix build_q_parallel(const QRFactors& f, const ExecutorOptions& opts,
                        RunStats* stats = nullptr);

// Parallel Q / Q^T application (dormqr analogue) to a tiled matrix in
// place; c must share tile rows and tile size with the factorization.
void apply_q_parallel(const QRFactors& f, Trans trans, TiledMatrix& c,
                      const ExecutorOptions& opts, RunStats* stats = nullptr);

}  // namespace hqr
