// Shared-memory task executor ("DAGuE-lite", paper §IV-C).
//
// Executes the real numeric kernels of a QR factorization following the
// task-graph dependencies with a pool of worker threads. Scheduling policy
// mirrors the paper's description: ready tasks are ordered by a priority
// (critical-path depth), and a worker preferentially continues with a
// successor of the task it just finished (data-reuse heuristic), falling
// back to its own ready deque and stealing from other workers when that
// runs dry. A single locked priority queue is retained as an ablation
// baseline (SchedulerKind::Global).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "core/factorization.hpp"
#include "dag/task_graph.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hqr {

// Ready-task management backend (the --sched={steal,global} ablation).
enum class SchedulerKind {
  // Per-worker Chase–Lev deques with randomized stealing and a shared
  // priority overflow heap (default; decentralized, scales with workers).
  Steal,
  // One mutex+condvar priority queue shared by all workers (the original
  // scheduler, kept as the differential baseline).
  Global,
};

// Parses "steal"/"global"; throws hqr::Error on anything else.
SchedulerKind scheduler_kind_from_name(const std::string& name);
const char* scheduler_kind_name(SchedulerKind kind);

struct RunStats {
  double seconds = 0.0;
  int threads = 0;
  std::vector<long long> tasks_per_thread;
  long long total_tasks = 0;

  // Scheduler counters (always collected; no clock reads involved).
  // Invariant: reuse_hits + queue_pops == total_tasks under both backends;
  // under SchedulerKind::Steal, queue_pops further splits into
  // local_hits + steals + overflow_pops (all zero under Global).
  long long reuse_hits = 0;   // tasks taken via the data-reuse keep
  long long queue_pops = 0;   // tasks acquired from any ready queue/deque
  long long local_hits = 0;     // popped from the worker's own deque
  long long steals = 0;         // stolen from another worker's deque
  long long steal_fails = 0;    // empty-victim or lost-race steal attempts
  long long overflow_pops = 0;  // taken from the shared overflow heap
  double avg_ready_depth = 0.0;  // mean ready-depth sampled at local pops
  std::array<long long, kKernelTypeCount> tasks_by_kernel{};

  // Fraction of tasks whose input tiles stayed warm in the worker.
  double reuse_hit_rate() const {
    return total_tasks > 0
               ? static_cast<double>(reuse_hits) / static_cast<double>(total_tasks)
               : 0.0;
  }

  // Timing breakdowns — populated only when the run was observed (a trace
  // or metrics sink was attached), so the unobserved hot path never reads
  // the clock per task.
  std::array<double, kKernelTypeCount> seconds_by_kernel{};
  std::vector<double> busy_seconds_per_thread;  // executing kernels
  std::vector<double> idle_seconds_per_thread;  // waiting for ready work
  // Wait in the final acquire that observed "all tasks done" — the
  // termination barrier. Reported separately so it never inflates idle
  // (stall) numbers in the analyzer.
  std::vector<double> terminal_wait_seconds_per_thread;
};

struct ExecutorOptions {
  int threads = 1;
  // Use critical-path depth as priority (true) or FIFO order (false) —
  // the scheduler-priority ablation bench flips this.
  bool priority_scheduling = true;
  // Data-reuse heuristic: keep one ready successor local to the worker.
  bool data_reuse = true;
  // Inner block size for the kernels (0 = plain full-T kernels).
  int ib = 0;
  // Ready-task backend: per-worker stealing deques (default) or the single
  // locked priority queue baseline.
  SchedulerKind scheduler = SchedulerKind::Steal;
  // Observability sinks (obs/). Null = disabled; enabling costs two clock
  // reads per task plus lock-free per-lane appends / atomic updates.
  obs::TraceRecorder* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

// Executes all kernels of `f` (its kernel list must match `graph`'s ops) in
// dependency order using `opts.threads` workers. Thread-safe: kernels on
// dependent tiles are ordered by the graph; independent kernels touch
// disjoint tiles.
RunStats execute_parallel(QRFactors& f, const TaskGraph& graph,
                          const ExecutorOptions& opts);

// Convenience: factorize with the parallel runtime.
QRFactors qr_factorize_parallel(const Matrix& a, int b,
                                const EliminationList& list,
                                const ExecutorOptions& opts,
                                RunStats* stats = nullptr);

// Parallel Q formation (dorgqr analogue): builds the economy Q through the
// runtime using the Q-application task graph.
Matrix build_q_parallel(const QRFactors& f, const ExecutorOptions& opts,
                        RunStats* stats = nullptr);

// Parallel Q / Q^T application (dormqr analogue) to a tiled matrix in
// place; c must share tile rows and tile size with the factorization.
void apply_q_parallel(const QRFactors& f, Trans trans, TiledMatrix& c,
                      const ExecutorOptions& opts, RunStats* stats = nullptr);

}  // namespace hqr
