// Shared-memory task executor ("DAGuE-lite", paper §IV-C).
//
// Executes the real numeric kernels of a QR factorization following the
// task-graph dependencies with a pool of worker threads. Scheduling policy
// mirrors the paper's description: ready tasks are ordered by a priority
// (critical-path depth), and a worker preferentially continues with a
// successor of the task it just finished (data-reuse heuristic), falling
// back to its own ready deque and stealing from other workers when that
// runs dry. A single locked priority queue is retained as an ablation
// baseline (SchedulerKind::Global).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/factorization.hpp"
#include "dag/task_graph.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/topology.hpp"

namespace hqr {

// Ready-task management backend (the --sched={steal,global} ablation).
enum class SchedulerKind {
  // Per-worker Chase–Lev deques with randomized stealing and a shared
  // priority overflow heap (default; decentralized, scales with workers).
  Steal,
  // One mutex+condvar priority queue shared by all workers (the original
  // scheduler, kept as the differential baseline).
  Global,
};

// Parses "steal"/"global"; throws hqr::Error on anything else.
SchedulerKind scheduler_kind_from_name(const std::string& name);
const char* scheduler_kind_name(SchedulerKind kind);

struct RunStats {
  double seconds = 0.0;
  int threads = 0;
  std::vector<long long> tasks_per_thread;
  long long total_tasks = 0;

  // Scheduler counters (always collected; no clock reads involved).
  // Invariant: reuse_hits + queue_pops == total_tasks under both backends;
  // under SchedulerKind::Steal, queue_pops further splits into
  // local_hits + steals + overflow_pops (all zero under Global).
  long long reuse_hits = 0;   // tasks taken via the data-reuse keep
  long long queue_pops = 0;   // tasks acquired from any ready queue/deque
  long long local_hits = 0;     // popped from the worker's own deque
  long long steals = 0;         // stolen from another worker's deque
  long long steal_fails = 0;    // empty-victim or lost-race steal attempts
  long long overflow_pops = 0;  // taken from the shared overflow heap

  // Locality accounting (Steal backend only): every queue pop is a hit when
  // the task's producing worker shares the acquiring worker's LLC domain
  // (own-deque pops included), a miss otherwise (including tasks with no
  // local producer, e.g. roots and remote releases).
  long long locality_hits = 0;
  long long locality_misses = 0;
  double locality_hit_rate() const {
    const long long total = locality_hits + locality_misses;
    return total > 0
               ? static_cast<double>(locality_hits) / static_cast<double>(total)
               : 0.0;
  }
  double avg_ready_depth = 0.0;  // mean ready-depth sampled at local pops
  std::array<long long, kKernelTypeCount> tasks_by_kernel{};

  // Fraction of tasks whose input tiles stayed warm in the worker.
  double reuse_hit_rate() const {
    return total_tasks > 0
               ? static_cast<double>(reuse_hits) / static_cast<double>(total_tasks)
               : 0.0;
  }

  // Timing breakdowns — populated only when the run was observed (a trace
  // or metrics sink was attached), so the unobserved hot path never reads
  // the clock per task.
  std::array<double, kKernelTypeCount> seconds_by_kernel{};
  std::vector<double> busy_seconds_per_thread;  // executing kernels
  std::vector<double> idle_seconds_per_thread;  // waiting for ready work
  // Wait in the final acquire that observed "all tasks done" — the
  // termination barrier. Reported separately so it never inflates idle
  // (stall) numbers in the analyzer.
  std::vector<double> terminal_wait_seconds_per_thread;
};

struct ExecutorOptions {
  int threads = 1;
  // Use critical-path depth as priority (true) or FIFO order (false) —
  // the scheduler-priority ablation bench flips this.
  bool priority_scheduling = true;
  // Data-reuse heuristic: keep one ready successor local to the worker.
  bool data_reuse = true;
  // Inner block size for the kernels (0 = plain full-T kernels).
  int ib = 0;
  // Ready-task backend: per-worker stealing deques (default) or the single
  // locked priority queue baseline.
  SchedulerKind scheduler = SchedulerKind::Steal;
  // Locality-aware stealing (Steal backend): order steal victims
  // topology-near-first so stolen tasks are more likely to have warm tiles.
  // Degrades to the plain randomized sweep on single-domain machines.
  bool locality_stealing = true;
  // Worker topology override for tests/benchmarks; null = detect the host
  // topology once and pin lanes round-robin.
  const WorkerTopology* topology = nullptr;
  // Observability sinks (obs/). Null = disabled; enabling costs two clock
  // reads per task plus lock-free per-lane appends / atomic updates.
  obs::TraceRecorder* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  // Time zero for trace timestamps, as a monotonic_seconds() value; < 0
  // (default) uses engine construction time. The distributed runtime pins
  // every component of a rank — executor lanes and the communication
  // thread's flow events — to one shared origin so the per-rank trace is
  // internally consistent before clock alignment shifts it cluster-wide.
  double trace_origin = -1.0;
};

// Executes all kernels of `f` (its kernel list must match `graph`'s ops) in
// dependency order using `opts.threads` workers. Thread-safe: kernels on
// dependent tiles are ordered by the graph; independent kernels touch
// disjoint tiles.
RunStats execute_parallel(QRFactors& f, const TaskGraph& graph,
                          const ExecutorOptions& opts);

// ---- Partitioned execution (the distributed runtime's per-rank engine) ---

// Restricts a run to the slice of the graph owned by one rank. The engine
// seeds/executes only tasks with task_rank[i] == my_rank; a task whose
// predecessors include remote tasks becomes ready only after the caller
// reports those producers done through RemotePort::remote_complete (i.e.
// after their payload arrived over the wire and was applied).
struct PartitionView {
  // Owning rank per task (CommPlan::node()); size must match the graph.
  const std::vector<std::int32_t>* task_rank = nullptr;
  int my_rank = 0;
  // Invoked on the executing worker after a local task's kernel ran and
  // *before* its successors are released. At that point the task's output
  // regions are stable (any later writer is a successor), so the callback
  // may pack them onto the wire without copying under a lock.
  std::function<void(std::int32_t)> on_complete;
};

// Thread-safe handle into a running partitioned engine, valid until
// execute_partition returns.
class RemotePort {
 public:
  virtual ~RemotePort() = default;
  // A remote producer finished and its payload was applied to local tiles:
  // release its local successors into the ready set.
  virtual void remote_complete(std::int32_t producer) = 0;
  // Abort the run: workers stop picking up tasks and drain out.
  virtual void cancel() = 0;
};

// Runs the my_rank slice of `graph` on `opts.threads` workers. `port_ready`
// is called once, before workers start, with the port the communication
// thread uses to feed remote completions in. `before_teardown` is called
// after the last local task finished but while the engine (and thus the
// port) is still alive — join any thread that might touch the port there.
// Returns when every local task ran (or the run was cancelled);
// RunStats::total_tasks counts local tasks only.
RunStats execute_partition(QRFactors& f, const TaskGraph& graph,
                           const ExecutorOptions& opts,
                           const PartitionView& view,
                           const std::function<void(RemotePort&)>& port_ready,
                           const std::function<void()>& before_teardown = {});

// Convenience: factorize with the parallel runtime.
QRFactors qr_factorize_parallel(const Matrix& a, int b,
                                const EliminationList& list,
                                const ExecutorOptions& opts,
                                RunStats* stats = nullptr);

// Parallel Q formation (dorgqr analogue): builds the economy Q through the
// runtime using the Q-application task graph.
Matrix build_q_parallel(const QRFactors& f, const ExecutorOptions& opts,
                        RunStats* stats = nullptr);

// Parallel Q / Q^T application (dormqr analogue) to a tiled matrix in
// place; c must share tile rows and tile size with the factorization.
void apply_q_parallel(const QRFactors& f, Trans trans, TiledMatrix& c,
                      const ExecutorOptions& opts, RunStats* stats = nullptr);

}  // namespace hqr
