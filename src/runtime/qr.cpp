#include "runtime/qr.hpp"

#include <algorithm>

#include "runtime/executor.hpp"
#include "trees/validate.hpp"

namespace hqr {

QROptions default_qr_options(int m, int n, int threads) {
  QROptions o;
  o.threads = std::max(1, threads);
  // Tile size: large enough for kernel efficiency, small enough to expose
  // tasks; cap so a tall-skinny matrix still has several tile rows.
  const int k = std::max(1, std::min(m, n));
  o.b = std::clamp(k / 4, 8, 64);
  o.b = std::min({o.b, std::max(1, m), std::max(1, n) * 4});
  o.ib = std::max(1, o.b / 4);

  const int mt = (m + o.b - 1) / o.b;
  const int nt = (n + o.b - 1) / o.b;
  // Virtual clusters: one per worker caps inter-"cluster" reductions at the
  // parallelism we actually have; domains once each cluster has >= 4 rows.
  o.tree.p = std::clamp(o.threads, 1, std::max(1, mt / 2));
  o.tree.a = (mt / std::max(1, o.tree.p) >= 4) ? 2 : 1;
  o.tree.low = TreeKind::Greedy;
  o.tree.high = TreeKind::Fibonacci;
  // Few tile columns -> starved for parallelism -> couple the trees.
  o.tree.domino = nt <= std::max(4, mt / 8);
  o.auto_tree = false;
  return o;
}

QRResult qr(const Matrix& a, const QROptions& opts_in) {
  HQR_CHECK(a.rows() >= 1 && a.cols() >= 1, "empty matrix");
  QROptions o = opts_in;
  if (o.b <= 0 || o.auto_tree) {
    QROptions d = default_qr_options(a.rows(), a.cols(), o.threads);
    if (o.b <= 0) o.b = d.b;
    if (o.ib <= 0) o.ib = d.ib;
    if (o.auto_tree) o.tree = d.tree;
  }
  o.ib = std::clamp(o.ib, 1, o.b);

  TiledMatrix probe = TiledMatrix::from_matrix(a, o.b);
  EliminationList list = hqr_elimination_list(probe.mt(), probe.nt(), o.tree);
  HQR_ASSERT(validate_elimination_list(list, probe.mt(), probe.nt()).ok,
             "generator produced an invalid list");

  ExecutorOptions exec;
  exec.threads = o.threads;
  exec.ib = o.ib;
  QRFactors f = qr_factorize_parallel(a, o.b, list, exec);

  QRResult out;
  Matrix q_padded = build_q_parallel(f, exec);
  const int k = std::min(a.rows(), a.cols());
  out.q = materialize(q_padded.block(0, 0, a.rows(), k));
  out.r = extract_r(f);
  out.tree = o.tree;
  out.b = o.b;
  out.ib = o.ib;
  return out;
}

Matrix qr_solve(const Matrix& a, const Matrix& rhs, const QROptions& opts_in) {
  HQR_CHECK(a.rows() >= a.cols(), "qr_solve expects m >= n");
  HQR_CHECK(rhs.rows() == a.rows(), "rhs row mismatch");
  QROptions o = opts_in;
  QROptions d = default_qr_options(a.rows(), a.cols(), o.threads);
  if (o.b <= 0) o.b = d.b;
  if (o.ib <= 0) o.ib = d.ib;
  if (o.auto_tree) o.tree = d.tree;
  o.ib = std::clamp(o.ib, 1, o.b);

  TiledMatrix probe = TiledMatrix::from_matrix(a, o.b);
  EliminationList list = hqr_elimination_list(probe.mt(), probe.nt(), o.tree);
  ExecutorOptions exec;
  exec.threads = o.threads;
  exec.ib = o.ib;
  QRFactors f = qr_factorize_parallel(a, o.b, list, exec);

  TiledMatrix c = TiledMatrix::from_matrix(rhs, o.b);
  apply_q_parallel(f, Trans::Yes, c, exec);
  Matrix qtb = c.to_matrix();
  const int n = a.cols();
  Matrix x = materialize(qtb.block(0, 0, n, rhs.cols()));
  Matrix r = extract_r(f);
  trsm_left(UpLo::Upper, Trans::No, Diag::NonUnit,
            ConstMatrixView(r.block(0, 0, n, n)), x.view());
  return x;
}

}  // namespace hqr
