// One-call convenience API: hierarchical tile QR with sensible defaults.
//
// Picks the tile size, inner block and reduction trees from the matrix
// shape following the paper's guidance (§V-C: parallel low-level trees and
// the domino coupling for tall-skinny shapes; TS domains once column
// parallelism is plentiful), then factors through the shared-memory
// runtime. For full control use trees/hqr_tree.hpp + runtime/executor.hpp
// directly.
#pragma once

#include "core/factorization.hpp"
#include "trees/hqr_tree.hpp"

namespace hqr {

struct QROptions {
  int b = 0;        // tile size; 0 = choose from the shape
  int ib = 0;       // inner block; 0 = b/4 (clamped), production kernels
  int threads = 1;  // runtime workers
  // Override the automatic tree choice (used when auto_tree is false).
  bool auto_tree = true;
  HqrConfig tree{};
};

struct QRResult {
  Matrix q;          // m x min(m, n), orthonormal columns
  Matrix r;          // min(m, n) x n, upper triangular/trapezoidal
  HqrConfig tree;    // the configuration actually used
  int b = 0;
  int ib = 0;
};

// Economy QR factorization of a (any shape).
QRResult qr(const Matrix& a, const QROptions& opts = {});

// Least-squares solve min ||A x - rhs||_2 (m >= n, full column rank);
// rhs is m x nrhs.
Matrix qr_solve(const Matrix& a, const Matrix& rhs,
                const QROptions& opts = {});

// The defaults qr() would pick for an m x n problem (exposed for tests and
// for callers who want to start from the heuristic and tweak).
QROptions default_qr_options(int m, int n, int threads = 1);

}  // namespace hqr
