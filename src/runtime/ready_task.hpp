// Ready-task heap entry shared by the scheduling backends: the single-DAG
// engine's policies (runtime/executor.cpp) and the multi-DAG pool
// (runtime/dag_pool.cpp) order ready tasks the same way — max-heap by
// critical-path priority, FIFO-ish tiebreak on task index.
#pragma once

#include <cstdint>

namespace hqr {

struct ReadyTask {
  double priority;
  std::int32_t idx;

  bool operator<(const ReadyTask& o) const {
    if (priority != o.priority) return priority < o.priority;
    return idx > o.idx;
  }
};

}  // namespace hqr
