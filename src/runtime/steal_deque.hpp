// Fixed-capacity Chase–Lev work-stealing deque of task indices.
//
// One owner thread pushes and pops at the bottom (LIFO); any number of
// thieves steal from the top (FIFO). Lock-free: the only synchronizing
// write contention is the top CAS between a thief and either another thief
// or the owner taking the last element. Memory orderings follow Lê,
// Pop, Cohen & Zappa Nardelli, "Correct and Efficient Work-Stealing for
// Weak Memory Models" (PPoPP'13), which proved this fence placement for
// the C11 memory model — except that every bottom_ store is `release`
// rather than the paper's fence+relaxed. The strengthening is free on
// x86 and gives ThreadSanitizer (which does not model
// atomic_thread_fence) a visible happens-before edge from the owner's
// task-payload writes to a thief's reads; the seq_cst fences stay for
// the store->load orderings the take-last race needs.
//
// The buffer is fixed (kCapacity slots) rather than growable: a full push
// fails and the scheduler spills the task to its shared overflow heap,
// which sidesteps the hard part of Chase–Lev (safe buffer reclamation
// while thieves hold references). Task indices are non-negative; the
// negative sentinels kEmpty/kAbort are therefore unambiguous.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace hqr {

class StealDeque {
 public:
  static constexpr int kCapacityLog2 = 10;
  static constexpr std::int64_t kCapacity = std::int64_t{1} << kCapacityLog2;
  static constexpr std::int32_t kEmpty = -1;  // nothing to take
  static constexpr std::int32_t kAbort = -2;  // lost a steal race; retry

  // Owner only. Returns false when the deque is full (caller spills).
  bool push(std::int32_t v) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    if (b - t >= kCapacity) return false;
    buf_[static_cast<std::size_t>(b & kMask)].store(v,
                                                    std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_release);
    return true;
  }

  // Owner only. LIFO: returns the most recently pushed element, or kEmpty.
  std::int32_t pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    std::int32_t v = kEmpty;
    if (t <= b) {
      v = buf_[static_cast<std::size_t>(b & kMask)].load(
          std::memory_order_relaxed);
      if (t == b) {
        // Last element: race the thieves for it via the top CAS.
        if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                          std::memory_order_relaxed))
          v = kEmpty;
        bottom_.store(b + 1, std::memory_order_release);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_release);
    }
    return v;
  }

  // Any thread. FIFO: returns the oldest element, kEmpty when none is
  // visible, or kAbort when another taker won the race.
  std::int32_t steal() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return kEmpty;
    const std::int32_t v =
        buf_[static_cast<std::size_t>(t & kMask)].load(
            std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed))
      return kAbort;
    return v;
  }

  // Approximate (racy) element count; exact when only the owner is active.
  std::int64_t size() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? b - t : 0;
  }

 private:
  static constexpr std::int64_t kMask = kCapacity - 1;

  // top/bottom on separate cache lines: thieves hammer top, the owner
  // bottom.
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  alignas(64) std::array<std::atomic<std::int32_t>, kCapacity> buf_{};
};

}  // namespace hqr
