#include "runtime/topology.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <thread>

namespace hqr {
namespace {

bool read_int_file(const std::string& path, int& out) {
  std::ifstream in(path);
  if (!in) return false;
  int v = -1;
  in >> v;
  if (!in || v < 0) return false;
  out = v;
  return true;
}

bool read_line_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::getline(in, out);
  return !out.empty();
}

std::string cpu_dir(int cpu) {
  return "/sys/devices/system/cpu/cpu" + std::to_string(cpu);
}

// LLC domain id for one cpu: the smallest cpu id sharing the deepest
// cache level (index3 if present, else index2). -1 when unreadable.
int llc_domain(int cpu) {
  for (const char* index : {"/cache/index3", "/cache/index2"}) {
    std::string text;
    if (!read_line_file(cpu_dir(cpu) + index + "/shared_cpu_list", text))
      continue;
    const std::vector<int> shared = parse_cpulist(text);
    if (!shared.empty()) return *std::min_element(shared.begin(), shared.end());
  }
  return -1;
}

}  // namespace

std::vector<int> parse_cpulist(const std::string& text) {
  std::vector<int> cpus;
  std::stringstream ss(text);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    while (!tok.empty() &&
           std::isspace(static_cast<unsigned char>(tok.back())))
      tok.pop_back();
    if (tok.empty()) return {};
    const std::size_t dash = tok.find('-');
    try {
      if (dash == std::string::npos) {
        cpus.push_back(std::stoi(tok));
      } else {
        const int lo = std::stoi(tok.substr(0, dash));
        const int hi = std::stoi(tok.substr(dash + 1));
        if (lo > hi || hi - lo > 4096) return {};
        for (int c = lo; c <= hi; ++c) cpus.push_back(c);
      }
    } catch (...) {
      return {};
    }
  }
  return cpus;
}

CpuTopology CpuTopology::detect() {
  const unsigned hw = std::thread::hardware_concurrency();
  const int n = hw > 0 ? static_cast<int>(hw) : 1;
  CpuTopology topo;
  topo.package.assign(static_cast<std::size_t>(n), 0);
  topo.llc.assign(static_cast<std::size_t>(n), 0);
  for (int c = 0; c < n; ++c) {
    int pkg = 0;
    read_int_file(cpu_dir(c) + "/topology/physical_package_id", pkg);
    topo.package[static_cast<std::size_t>(c)] = pkg;
    const int llc = llc_domain(c);
    topo.llc[static_cast<std::size_t>(c)] = llc >= 0 ? llc : pkg;
  }
  return topo;
}

WorkerTopology WorkerTopology::build(const CpuTopology& topo, int workers) {
  WorkerTopology wt;
  wt.workers = workers;
  if (workers <= 0) return wt;
  const int ncpu = std::max(topo.cpus(), 1);
  const auto cpu_of = [&](int lane) { return lane % ncpu; };
  const auto pkg = [&](int cpu) {
    return topo.cpus() > 0 ? topo.package[static_cast<std::size_t>(cpu)] : 0;
  };
  const auto llc = [&](int cpu) {
    return topo.cpus() > 0 ? topo.llc[static_cast<std::size_t>(cpu)] : 0;
  };

  wt.distance.assign(
      static_cast<std::size_t>(workers) * static_cast<std::size_t>(workers),
      0);
  for (int a = 0; a < workers; ++a) {
    for (int b = 0; b < workers; ++b) {
      const int ca = cpu_of(a), cb = cpu_of(b);
      int d = 3;
      if (ca == cb)
        d = 0;
      else if (llc(ca) == llc(cb) && pkg(ca) == pkg(cb))
        d = 1;
      else if (pkg(ca) == pkg(cb))
        d = 2;
      wt.distance[static_cast<std::size_t>(a) *
                      static_cast<std::size_t>(workers) +
                  static_cast<std::size_t>(b)] = d;
    }
  }

  wt.victim_order.resize(static_cast<std::size_t>(workers));
  for (int a = 0; a < workers; ++a) {
    std::vector<int>& order = wt.victim_order[static_cast<std::size_t>(a)];
    order.reserve(static_cast<std::size_t>(workers) - 1);
    for (int off = 1; off < workers; ++off)
      order.push_back((a + off) % workers);  // ring: stable within a class
    std::stable_sort(order.begin(), order.end(), [&](int x, int y) {
      return wt.dist(a, x) < wt.dist(a, y);
    });
    if (!order.empty() &&
        wt.dist(a, order.front()) != wt.dist(a, order.back()))
      wt.multi_domain = true;
  }
  return wt;
}

}  // namespace hqr
