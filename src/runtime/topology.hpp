// CPU topology detection for locality-aware stealing.
//
// The stealing executor prefers victims whose deque is topology-near the
// thief: a task produced on a core sharing the thief's last-level cache
// still has warm tiles, while a cross-socket steal pays coherence traffic
// for every tile it touches. Topology comes from sysfs
// (/sys/devices/system/cpu/cpuN/topology + cache/index*); on machines
// where it cannot be read — or that have a single cache domain — the
// policy degrades to the plain randomized sweep.
#pragma once

#include <string>
#include <vector>

namespace hqr {

// Per-logical-cpu locality domains. Parallel arrays indexed by cpu id;
// tests build these directly to emulate multi-socket machines.
struct CpuTopology {
  std::vector<int> package;  // physical package (socket) per cpu
  std::vector<int> llc;      // last-level-cache domain per cpu (CCX/L3)

  int cpus() const { return static_cast<int>(package.size()); }

  // Reads sysfs; falls back to a single-domain topology (every cpu in
  // package 0 / llc 0) when the files are absent (non-Linux, containers).
  static CpuTopology detect();
};

// Distance classes between two worker lanes (round-robin pinned onto the
// cpus of a CpuTopology): 0 = same cpu, 1 = same LLC domain, 2 = same
// package, 3 = remote package.
struct WorkerTopology {
  int workers = 0;
  // distance[a][b]: flattened workers x workers matrix.
  std::vector<int> distance;
  // Per lane: every other lane ordered nearest-first (stable within a
  // distance class so near victims are swept in a deterministic ring).
  std::vector<std::vector<int>> victim_order;
  // True when at least two lanes are in different distance classes from
  // some thief — i.e. locality ordering can change a decision at all.
  bool multi_domain = false;

  int dist(int a, int b) const {
    return distance[static_cast<std::size_t>(a) *
                        static_cast<std::size_t>(workers) +
                    static_cast<std::size_t>(b)];
  }
  // Near = shares this lane's LLC (distance <= 1): the granularity at
  // which a stolen task's tiles can still be cache-warm.
  bool near(int a, int b) const { return dist(a, b) <= 1; }

  // Lanes are assigned to cpus round-robin (lane i -> cpu i % cpus).
  static WorkerTopology build(const CpuTopology& topo, int workers);
};

// Parses a sysfs cpulist string ("0-3,8,10-11") into cpu ids; returns an
// empty vector on malformed input. Exposed for tests.
std::vector<int> parse_cpulist(const std::string& text);

}  // namespace hqr
