#include "serve/batch.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "linalg/tiled_matrix.hpp"

namespace hqr::serve {

FusedBatch::FusedBatch(const std::vector<Matrix>& problems, int b,
                       TreeChoice tree, int ib)
    : b_(b) {
  HQR_CHECK(!problems.empty(), "FusedBatch needs at least one problem");
  HQR_CHECK(b >= 1, "tile size must be >= 1");

  factors_.reserve(problems.size());
  op_offset_.reserve(problems.size() + 1);

  KernelList fused;
  int row_offset = 0;
  int fused_nt = 0;
  for (const Matrix& a : problems) {
    TiledMatrix ta = TiledMatrix::from_matrix(a, b);
    const int mt = ta.mt();
    const int nt = ta.nt();
    KernelList kernels = expand_to_kernels(elimination_for(tree, mt, nt),
                                           mt, nt);
    op_offset_.push_back(fused.size());
    fused.reserve(fused.size() + kernels.size());
    for (const KernelOp& op : kernels) {
      KernelOp shifted = op;
      shifted.row += row_offset;
      shifted.piv += row_offset;
      fused.push_back(shifted);
    }
    factors_.emplace_back(std::move(ta), std::move(kernels), ib);
    row_offset += mt;
    fused_nt = std::max(fused_nt, nt);
  }
  op_offset_.push_back(fused.size());

  graph_ = std::make_shared<const TaskGraph>(fused, row_offset, fused_nt);
}

void FusedBatch::execute(std::int32_t idx, TileWorkspace& ws) {
  HQR_CHECK(idx >= 0 && static_cast<std::size_t>(idx) < op_offset_.back(),
            "fused task " << idx << " out of range");
  // Owning problem: the last offset <= idx (per-problem ops are contiguous).
  const auto it = std::upper_bound(op_offset_.begin(), op_offset_.end(),
                                   static_cast<std::size_t>(idx));
  const std::size_t p = static_cast<std::size_t>(it - op_offset_.begin()) - 1;
  QRFactors& f = factors_[p];
  const std::size_t local = static_cast<std::size_t>(idx) - op_offset_[p];
  execute_kernel(f.kernels()[local], f, ws);
}

Matrix FusedBatch::r(std::size_t p) const {
  HQR_CHECK(p < factors_.size(), "problem index " << p << " out of range");
  return extract_r(factors_[p]);
}

}  // namespace hqr::serve
