// Batched small problems: thousands of independent small QRs fused into
// ONE task graph scheduled in ONE pass over the shared worker pool.
//
// The fusion trick is a tile-namespace shift. Problem p's tiles live in
// rows [row_offset_p, row_offset_p + mt_p) of a virtual
// (sum mt_p) x (max nt_p) tile grid: every kernel op of problem p has its
// `row`/`piv` shifted by row_offset_p while `k`/`j` stay put. Tile-row
// ranges are disjoint across problems, so every tile access of problem p is
// disjoint from every access of problem q != p — the TaskGraph built over
// the concatenated kernel list is exactly the union of the per-problem
// graphs with zero cross edges. One DagPool submission then schedules all
// problems at once: no per-problem submission latency, no per-problem
// graph-admission lock traffic, and tail tasks of one problem overlap head
// tasks of the next.
//
// Each problem is still factored by its own QRFactors with its own
// unshifted kernel list, so fused results are bit-identical to running the
// problems one by one (the kernels and their relative order per problem are
// unchanged; kernels of different problems touch disjoint memory).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/factorization.hpp"
#include "dag/task_graph.hpp"
#include "serve/protocol.hpp"

namespace hqr::serve {

class FusedBatch {
 public:
  // All problems share tile size b, inner block ib and tree choice (the
  // homogeneity that makes one scheduler pass and one workspace per worker
  // possible). Throws hqr::Error on an empty batch; shapes are expected to
  // be pre-validated (validate_shape).
  FusedBatch(const std::vector<Matrix>& problems, int b, TreeChoice tree,
             int ib);

  std::size_t size() const { return factors_.size(); }
  int b() const { return b_; }

  // The fused dependency graph over all problems' kernels.
  const std::shared_ptr<const TaskGraph>& graph() const { return graph_; }

  // Executes fused task `idx` against the owning problem's factors.
  // Thread-safe for concurrent distinct indices (disjoint tiles).
  void execute(std::int32_t idx, TileWorkspace& ws);

  // R of problem p, valid once every task has executed.
  Matrix r(std::size_t p) const;

 private:
  int b_ = 1;
  std::vector<QRFactors> factors_;
  std::vector<std::size_t> op_offset_;  // per-problem start in the fused
                                        // list, plus end sentinel
  std::shared_ptr<const TaskGraph> graph_;
};

}  // namespace hqr::serve
