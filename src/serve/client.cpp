#include "serve/client.hpp"

#include <unordered_map>
#include <utility>

#include "common/stopwatch.hpp"
#include "net/message.hpp"
#include "net/socket.hpp"

namespace hqr::serve {

namespace {

using net::FrameHeader;
using net::Tag;

struct Frame {
  Tag tag;
  std::int32_t id;
  std::vector<std::uint8_t> payload;
};

}  // namespace

struct Client::Impl {
  explicit Impl(const ClientOptions& o) : opts(o) {
    fd = net::tcp_connect(opts.host, opts.port,
                          monotonic_seconds() + opts.timeout_seconds);
    net::set_tcp_nodelay(fd.get());
  }

  std::int32_t next_id() { return id_counter++; }

  void send(Tag tag, std::int32_t id,
            const std::vector<std::uint8_t>& payload) {
    FrameHeader h;
    h.tag = static_cast<std::uint32_t>(tag);
    h.src = -1;
    h.id = id;
    h.bytes = payload.size();
    std::uint8_t hb[net::kFrameHeaderBytes];
    net::encode_header(h, hb);
    const double deadline = monotonic_seconds() + opts.timeout_seconds;
    net::write_all(fd.get(), hb, sizeof(hb), deadline);
    if (!payload.empty())
      net::write_all(fd.get(), payload.data(), payload.size(), deadline);
  }

  Frame recv() {
    const double deadline = monotonic_seconds() + opts.timeout_seconds;
    std::uint8_t hb[net::kFrameHeaderBytes];
    net::read_all(fd.get(), hb, sizeof(hb), deadline);
    const FrameHeader h = net::decode_header(hb);
    HQR_CHECK(h.magic == net::kMagic && h.version == net::kWireVersion &&
                  h.header_bytes == net::kFrameHeaderBytes &&
                  net::valid_tag(h.tag),
              "malformed response frame from server");
    Frame f;
    f.tag = static_cast<Tag>(h.tag);
    f.id = h.id;
    f.payload.resize(static_cast<std::size_t>(h.bytes));
    if (h.bytes > 0)
      net::read_all(fd.get(), f.payload.data(), f.payload.size(), deadline);
    return f;
  }

  // Blocks until a frame for `id` arrives; frames for other ids are
  // buffered (each id gets exactly one response, so the key is unique).
  Frame recv_for(std::int32_t id) {
    auto it = inbox.find(id);
    if (it != inbox.end()) {
      Frame f = std::move(it->second);
      inbox.erase(it);
      return f;
    }
    for (;;) {
      Frame f = recv();
      if (f.id == id) return f;
      inbox.emplace(f.id, std::move(f));
    }
  }

  // Unwraps a Result-or-ErrorReply frame.
  QROutcome expect_result(Frame f) {
    if (f.tag == Tag::ErrorReply) throw ServeError(decode_error(f.payload));
    HQR_CHECK(f.tag == Tag::Result,
              "unexpected " << net::tag_name(f.tag) << " response");
    return decode_result(f.payload);
  }

  Matrix expect_stream_r(Frame f) {
    if (f.tag == Tag::ErrorReply) throw ServeError(decode_error(f.payload));
    HQR_CHECK(f.tag == Tag::StreamR,
              "unexpected " << net::tag_name(f.tag) << " response");
    return decode_stream_r(f.payload);
  }

  ClientOptions opts;
  net::Fd fd;
  std::int32_t id_counter = 1;
  std::unordered_map<std::int32_t, Frame> inbox;
};

Client::Client(const ClientOptions& opts)
    : impl_(std::make_unique<Impl>(opts)) {}

Client::~Client() = default;

std::int32_t Client::submit_qr_async(const Matrix& a, int b, int ib,
                                     TreeChoice tree, int priority,
                                     bool want_q) {
  QRJob job;
  job.tenant = impl_->opts.tenant;
  job.b = b;
  job.ib = ib;
  job.tree = tree;
  job.priority = priority;
  job.want_q = want_q;
  job.a = a;
  std::vector<std::uint8_t> payload;
  encode_submit_qr(job, payload);
  const std::int32_t id = impl_->next_id();
  impl_->send(Tag::SubmitQR, id, payload);
  return id;
}

QROutcome Client::wait_result(std::int32_t id) {
  return impl_->expect_result(impl_->recv_for(id));
}

QROutcome Client::submit_qr(const Matrix& a, int b, int ib, TreeChoice tree,
                            int priority, bool want_q) {
  return wait_result(submit_qr_async(a, b, ib, tree, priority, want_q));
}

std::vector<Matrix> Client::submit_batch(const std::vector<Matrix>& problems,
                                         int b, int ib, TreeChoice tree,
                                         int priority) {
  BatchJob job;
  job.tenant = impl_->opts.tenant;
  job.b = b;
  job.ib = ib;
  job.tree = tree;
  job.priority = priority;
  job.problems = problems;
  std::vector<std::uint8_t> payload;
  encode_submit_batch(job, payload);
  const std::int32_t id = impl_->next_id();
  impl_->send(Tag::SubmitBatch, id, payload);
  Frame f = impl_->recv_for(id);
  if (f.tag == Tag::ErrorReply) throw ServeError(decode_error(f.payload));
  HQR_CHECK(f.tag == Tag::BatchResult,
            "unexpected " << net::tag_name(f.tag) << " response");
  return decode_batch_result(f.payload);
}

std::int32_t Client::stream_open(int n, int b) {
  StreamOpenReq req;
  req.tenant = impl_->opts.tenant;
  req.n = n;
  req.b = b;
  std::vector<std::uint8_t> payload;
  encode_stream_open(req, payload);
  const std::int32_t id = impl_->next_id();
  impl_->send(Tag::StreamOpen, id, payload);
  impl_->expect_stream_r(impl_->recv_for(id));  // open ack
  return id;
}

void Client::stream_append(std::int32_t stream, const Matrix& rows) {
  std::vector<std::uint8_t> payload;
  encode_stream_append(rows, payload);
  impl_->send(Tag::StreamAppend, stream, payload);
  impl_->expect_stream_r(impl_->recv_for(stream));  // append ack
}

Matrix Client::stream_query(std::int32_t stream) {
  impl_->send(Tag::StreamQuery, stream, {});
  return impl_->expect_stream_r(impl_->recv_for(stream));
}

Matrix Client::stream_close(std::int32_t stream) {
  impl_->send(Tag::StreamClose, stream, {});
  return impl_->expect_stream_r(impl_->recv_for(stream));
}

void Client::cancel(std::int32_t id) { impl_->send(Tag::Cancel, id, {}); }

ServerStatus Client::status() {
  const std::int32_t id = impl_->next_id();
  impl_->send(Tag::Status, id, {});
  Frame f = impl_->recv_for(id);
  if (f.tag == Tag::ErrorReply) throw ServeError(decode_error(f.payload));
  HQR_CHECK(f.tag == Tag::StatusReply,
            "unexpected " << net::tag_name(f.tag) << " response");
  return decode_status(f.payload);
}

void Client::shutdown_server() {
  const std::int32_t id = impl_->next_id();
  impl_->send(Tag::Shutdown, id, {});
  Frame f = impl_->recv_for(id);
  HQR_CHECK(f.tag == Tag::Bye,
            "unexpected " << net::tag_name(f.tag) << " response");
}

}  // namespace hqr::serve
