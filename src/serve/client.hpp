// Synchronous client for the QR-as-a-service protocol.
//
// One Client owns one connection. Request ids are assigned monotonically
// per connection; responses arriving out of order (the server completes
// small requests before large ones) are buffered by id, so several
// submit_qr_async() calls can be in flight and waited on in any order —
// that is how one connection keeps many DAGs on the server's pool at once.
// A Client is NOT thread-safe; use one per thread (the server handles any
// number of concurrent connections).
//
// Server-side rejections surface as ServeError carrying the typed
// ErrorCode from the wire; transport failures surface as plain hqr::Error.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "serve/protocol.hpp"

namespace hqr::serve {

// A typed error response from the server.
class ServeError : public Error {
 public:
  explicit ServeError(ErrorInfo info)
      : Error(std::string(error_code_name(info.code)) + ": " + info.message),
        info_(std::move(info)) {}

  ErrorCode code() const { return info_.code; }
  const std::string& message() const { return info_.message; }

 private:
  ErrorInfo info_;
};

struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  double timeout_seconds = 120.0;  // per blocking receive
  std::int64_t tenant = 0;         // stamped on every request
};

class Client {
 public:
  // Connects immediately; throws hqr::Error on refusal/timeout.
  explicit Client(const ClientOptions& opts);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // One QR round-trip: returns R (and Q when want_q).
  QROutcome submit_qr(const Matrix& a, int b, int ib = 0,
                      TreeChoice tree = TreeChoice::FlatTs, int priority = 0,
                      bool want_q = false);

  // Pipelined submission: returns the request id without waiting.
  std::int32_t submit_qr_async(const Matrix& a, int b, int ib = 0,
                               TreeChoice tree = TreeChoice::FlatTs,
                               int priority = 0, bool want_q = false);
  // Blocks until the result for `id` arrives (in-flight responses for
  // other ids are buffered). Throws ServeError on a typed rejection,
  // including ErrorCode::Cancelled after cancel(id) won the race.
  QROutcome wait_result(std::int32_t id);

  // Many small problems fused into one scheduler pass server-side;
  // returns one R per problem, in submission order.
  std::vector<Matrix> submit_batch(const std::vector<Matrix>& problems, int b,
                                   int ib = 0,
                                   TreeChoice tree = TreeChoice::FlatTs,
                                   int priority = 0);

  // Streaming TSQR session: open, push row blocks, query the running R,
  // close (returns the final R). The handle is a request id.
  std::int32_t stream_open(int n, int b);
  void stream_append(std::int32_t stream, const Matrix& rows);
  Matrix stream_query(std::int32_t stream);
  Matrix stream_close(std::int32_t stream);

  // Asks the server to abandon a pending request. Fire-and-forget: the
  // request's wait_result() resolves to either the Result (cancel lost the
  // race) or ServeError{Cancelled}.
  void cancel(std::int32_t id);

  ServerStatus status();

  // Graceful server stop; returns once the server acknowledged (Bye).
  void shutdown_server();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace hqr::serve
