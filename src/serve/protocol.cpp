#include "serve/protocol.hpp"

#include <cstring>

#include "common/check.hpp"
#include "trees/single_level.hpp"

namespace hqr::serve {

namespace {

using net::PayloadReader;
using net::PayloadWriter;

// Payload scalars travel native-order like every other payload; the frame
// header's explicit little-endian handshake already rejects a peer whose
// byte order differs.
void put_i32(PayloadWriter& w, std::int32_t v) { w.raw(&v, sizeof(v)); }

std::int32_t get_i32(PayloadReader& r) {
  std::int32_t v;
  r.raw(&v, sizeof(v));
  return v;
}

void put_matrix(PayloadWriter& w, const Matrix& a) {
  put_i32(w, a.rows());
  put_i32(w, a.cols());
  w.f64(a.storage().data(),
        static_cast<std::size_t>(a.rows()) * static_cast<std::size_t>(a.cols()));
}

// Reads a rows/cols/data block whose dimensions were already validated.
Matrix get_matrix_data(PayloadReader& r, std::int32_t rows, std::int32_t cols) {
  Matrix a(rows, cols);
  r.f64(a.view().data,
        static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols));
  return a;
}

// Response decoders trust the server; dimensions still get a sanity bound
// so a corrupt frame throws instead of allocating absurdly.
Matrix get_matrix(PayloadReader& r) {
  const std::int32_t rows = get_i32(r);
  const std::int32_t cols = get_i32(r);
  HQR_CHECK(rows >= 0 && cols >= 0, "malformed matrix block: " << rows << "x"
                                                               << cols);
  const std::size_t need = static_cast<std::size_t>(rows) *
                           static_cast<std::size_t>(cols) * sizeof(double);
  HQR_CHECK(need <= r.remaining(), "malformed matrix block: " << rows << "x"
                                                              << cols
                                                              << " overruns payload");
  return get_matrix_data(r, rows, cols);
}

std::optional<ErrorInfo> err(ErrorCode code, std::string msg) {
  return ErrorInfo{code, std::move(msg)};
}

std::optional<ErrorInfo> check_tree(std::int32_t raw) {
  if (raw < 0 || raw > static_cast<std::int32_t>(TreeChoice::Fibonacci))
    return err(ErrorCode::BadTree,
               "unknown tree choice " + std::to_string(raw));
  return std::nullopt;
}

// The declared element count of an m x n block must match what is actually
// left in the payload (after `trailing` more bytes of fixed fields).
std::optional<ErrorInfo> check_data_bytes(std::int64_t elements,
                                          std::size_t remaining) {
  const std::uint64_t need =
      static_cast<std::uint64_t>(elements) * sizeof(double);
  if (need > remaining)
    return err(ErrorCode::Malformed, "payload truncated: matrix data needs " +
                                         std::to_string(need) + " bytes, " +
                                         std::to_string(remaining) + " left");
  return std::nullopt;
}

}  // namespace

const char* tree_choice_name(TreeChoice t) {
  switch (t) {
    case TreeChoice::FlatTs: return "flatts";
    case TreeChoice::FlatTt: return "flattt";
    case TreeChoice::Binary: return "binary";
    case TreeChoice::Greedy: return "greedy";
    case TreeChoice::Fibonacci: return "fibonacci";
  }
  return "unknown";
}

TreeChoice tree_choice_from_name(const std::string& name) {
  for (std::int32_t v = 0; v <= static_cast<std::int32_t>(TreeChoice::Fibonacci);
       ++v) {
    const auto t = static_cast<TreeChoice>(v);
    if (name == tree_choice_name(t)) return t;
  }
  HQR_CHECK(false, "unknown tree choice '"
                       << name
                       << "' (flatts|flattt|binary|greedy|fibonacci)");
}

EliminationList elimination_for(TreeChoice t, int mt, int nt) {
  switch (t) {
    case TreeChoice::FlatTs: return flat_ts_list(mt, nt);
    case TreeChoice::FlatTt: return per_panel_tree_list(TreeKind::Flat, mt, nt);
    case TreeChoice::Binary:
      return per_panel_tree_list(TreeKind::Binary, mt, nt);
    case TreeChoice::Greedy:
      return per_panel_tree_list(TreeKind::Greedy, mt, nt);
    case TreeChoice::Fibonacci:
      return per_panel_tree_list(TreeKind::Fibonacci, mt, nt);
  }
  HQR_CHECK(false, "unknown tree choice " << static_cast<int>(t));
}

const char* error_code_name(ErrorCode c) {
  switch (c) {
    case ErrorCode::BadDimensions: return "BadDimensions";
    case ErrorCode::BadTileSize: return "BadTileSize";
    case ErrorCode::BadInnerBlock: return "BadInnerBlock";
    case ErrorCode::TooLarge: return "TooLarge";
    case ErrorCode::BadTree: return "BadTree";
    case ErrorCode::Malformed: return "Malformed";
    case ErrorCode::UnknownRequest: return "UnknownRequest";
    case ErrorCode::UnknownStream: return "UnknownStream";
    case ErrorCode::BadBatch: return "BadBatch";
    case ErrorCode::ShuttingDown: return "ShuttingDown";
    case ErrorCode::Cancelled: return "Cancelled";
    case ErrorCode::Internal: return "Internal";
    case ErrorCode::Overloaded: return "Overloaded";
  }
  return "Unknown";
}

std::optional<ErrorInfo> validate_shape(std::int32_t m, std::int32_t n,
                                        std::int32_t b, std::int32_t ib,
                                        const ServerLimits& limits) {
  if (m < 1 || n < 1)
    return err(ErrorCode::BadDimensions, "matrix must be at least 1x1, got " +
                                             std::to_string(m) + "x" +
                                             std::to_string(n));
  if (b < 1)
    return err(ErrorCode::BadTileSize,
               "tile size must be >= 1, got " + std::to_string(b));
  if (ib < 0 || ib >= b)
    return err(ErrorCode::BadInnerBlock,
               "inner block must be 0 (plain kernels) or in [1, b), got ib=" +
                   std::to_string(ib) + " with b=" + std::to_string(b));
  if (m > limits.max_dimension || n > limits.max_dimension)
    return err(ErrorCode::TooLarge,
               "dimension exceeds server limit of " +
                   std::to_string(limits.max_dimension));
  if (b > limits.max_dimension)
    return err(ErrorCode::TooLarge,
               "tile size " + std::to_string(b) +
                   " exceeds server limit of " +
                   std::to_string(limits.max_dimension));
  if (static_cast<std::int64_t>(m) * n > limits.max_elements)
    return err(ErrorCode::TooLarge,
               "matrix of " + std::to_string(static_cast<std::int64_t>(m) * n) +
                   " elements exceeds server limit of " +
                   std::to_string(limits.max_elements));
  // The server pads every matrix to whole b x b tiles, so the element cap
  // must hold for the PADDED shape too — otherwise a tiny matrix with a
  // huge b (1x1 at b = 2^30) passes the raw check and then forces an
  // O(b^2) allocation. pn >= 1, and pm <= 2 * max_dimension, so the
  // division form below cannot overflow where the product could.
  const std::int64_t pm =
      (static_cast<std::int64_t>(m) + b - 1) / b * static_cast<std::int64_t>(b);
  const std::int64_t pn =
      (static_cast<std::int64_t>(n) + b - 1) / b * static_cast<std::int64_t>(b);
  if (pm > limits.max_elements / pn)
    return err(ErrorCode::TooLarge,
               "matrix padded to " + std::to_string(pm) + "x" +
                   std::to_string(pn) + " tiles of b=" + std::to_string(b) +
                   " exceeds server limit of " +
                   std::to_string(limits.max_elements) + " elements");
  return std::nullopt;
}

void encode_submit_qr(const QRJob& job, std::vector<std::uint8_t>& out) {
  PayloadWriter w(out);
  w.i64(job.tenant);
  put_i32(w, job.a.rows());
  put_i32(w, job.a.cols());
  put_i32(w, job.b);
  put_i32(w, job.ib);
  put_i32(w, static_cast<std::int32_t>(job.tree));
  put_i32(w, job.priority);
  put_i32(w, job.want_q ? 1 : 0);
  w.f64(job.a.storage().data(), job.a.storage().size());
}

std::optional<ErrorInfo> decode_submit_qr(
    const std::vector<std::uint8_t>& payload, const ServerLimits& limits,
    QRJob* job) {
  PayloadReader r(payload);
  job->tenant = r.i64();
  const std::int32_t m = get_i32(r);
  const std::int32_t n = get_i32(r);
  job->b = get_i32(r);
  job->ib = get_i32(r);
  const std::int32_t tree_raw = get_i32(r);
  job->priority = get_i32(r);
  job->want_q = get_i32(r) != 0;
  // Validate before sizing any allocation by client-controlled numbers.
  if (auto e = validate_shape(m, n, job->b, job->ib, limits)) return e;
  if (auto e = check_tree(tree_raw)) return e;
  job->tree = static_cast<TreeChoice>(tree_raw);
  if (auto e = check_data_bytes(static_cast<std::int64_t>(m) * n,
                                r.remaining()))
    return e;
  job->a = get_matrix_data(r, m, n);
  if (r.remaining() != 0)
    return err(ErrorCode::Malformed,
               std::to_string(r.remaining()) + " trailing bytes after matrix");
  return std::nullopt;
}

void encode_result(const QROutcome& res, std::vector<std::uint8_t>& out) {
  PayloadWriter w(out);
  put_matrix(w, res.r);
  put_i32(w, res.has_q ? 1 : 0);
  if (res.has_q) put_matrix(w, res.q);
}

QROutcome decode_result(const std::vector<std::uint8_t>& payload) {
  PayloadReader r(payload);
  QROutcome res;
  res.r = get_matrix(r);
  res.has_q = get_i32(r) != 0;
  if (res.has_q) res.q = get_matrix(r);
  return res;
}

void encode_submit_batch(const BatchJob& job, std::vector<std::uint8_t>& out) {
  PayloadWriter w(out);
  w.i64(job.tenant);
  put_i32(w, job.b);
  put_i32(w, job.ib);
  put_i32(w, static_cast<std::int32_t>(job.tree));
  put_i32(w, job.priority);
  put_i32(w, static_cast<std::int32_t>(job.problems.size()));
  for (const Matrix& a : job.problems) put_matrix(w, a);
}

std::optional<ErrorInfo> decode_submit_batch(
    const std::vector<std::uint8_t>& payload, const ServerLimits& limits,
    BatchJob* job) {
  PayloadReader r(payload);
  job->tenant = r.i64();
  job->b = get_i32(r);
  job->ib = get_i32(r);
  const std::int32_t tree_raw = get_i32(r);
  job->priority = get_i32(r);
  const std::int32_t count = get_i32(r);
  if (auto e = check_tree(tree_raw)) return e;
  job->tree = static_cast<TreeChoice>(tree_raw);
  if (count < 1 || count > limits.max_batch_problems)
    return err(ErrorCode::BadBatch,
               "batch count must be in [1, " +
                   std::to_string(limits.max_batch_problems) + "], got " +
                   std::to_string(count));
  job->problems.clear();
  job->problems.reserve(static_cast<std::size_t>(count));
  for (std::int32_t p = 0; p < count; ++p) {
    const std::int32_t m = get_i32(r);
    const std::int32_t n = get_i32(r);
    if (auto e = validate_shape(m, n, job->b, job->ib, limits)) {
      e->message = "problem " + std::to_string(p) + ": " + e->message;
      return e;
    }
    if (auto e = check_data_bytes(static_cast<std::int64_t>(m) * n,
                                  r.remaining()))
      return e;
    job->problems.push_back(get_matrix_data(r, m, n));
  }
  if (r.remaining() != 0)
    return err(ErrorCode::Malformed, std::to_string(r.remaining()) +
                                         " trailing bytes after last problem");
  return std::nullopt;
}

void encode_batch_result(const std::vector<Matrix>& rs,
                         std::vector<std::uint8_t>& out) {
  PayloadWriter w(out);
  put_i32(w, static_cast<std::int32_t>(rs.size()));
  for (const Matrix& r : rs) put_matrix(w, r);
}

std::vector<Matrix> decode_batch_result(
    const std::vector<std::uint8_t>& payload) {
  PayloadReader r(payload);
  const std::int32_t count = get_i32(r);
  HQR_CHECK(count >= 0, "malformed batch result count " << count);
  std::vector<Matrix> rs;
  rs.reserve(static_cast<std::size_t>(count));
  for (std::int32_t p = 0; p < count; ++p) rs.push_back(get_matrix(r));
  return rs;
}

void encode_stream_open(const StreamOpenReq& req,
                        std::vector<std::uint8_t>& out) {
  PayloadWriter w(out);
  w.i64(req.tenant);
  put_i32(w, req.n);
  put_i32(w, req.b);
}

std::optional<ErrorInfo> decode_stream_open(
    const std::vector<std::uint8_t>& payload, const ServerLimits& limits,
    StreamOpenReq* req) {
  PayloadReader r(payload);
  req->tenant = r.i64();
  req->n = get_i32(r);
  req->b = get_i32(r);
  if (req->n < 1)
    return err(ErrorCode::BadDimensions, "stream needs n >= 1 columns, got " +
                                             std::to_string(req->n));
  if (req->b < 1)
    return err(ErrorCode::BadTileSize,
               "tile size must be >= 1, got " + std::to_string(req->b));
  if (req->n > limits.max_dimension)
    return err(ErrorCode::TooLarge,
               "stream width exceeds server limit of " +
                   std::to_string(limits.max_dimension));
  if (req->b > limits.max_dimension)
    return err(ErrorCode::TooLarge,
               "stream tile size " + std::to_string(req->b) +
                   " exceeds server limit of " +
                   std::to_string(limits.max_dimension));
  // The running triangle is nt x nt tiles = pn x pn elements (pn = n
  // padded to whole tiles); bound that allocation like any other matrix.
  const std::int64_t pn = (static_cast<std::int64_t>(req->n) + req->b - 1) /
                          req->b * static_cast<std::int64_t>(req->b);
  if (pn > limits.max_elements / pn)
    return err(ErrorCode::TooLarge,
               "stream triangle of " + std::to_string(pn) + "x" +
                   std::to_string(pn) + " padded elements (b=" +
                   std::to_string(req->b) + ") exceeds server limit of " +
                   std::to_string(limits.max_elements));
  return std::nullopt;
}

void encode_stream_append(const Matrix& rows, std::vector<std::uint8_t>& out) {
  PayloadWriter w(out);
  put_i32(w, rows.rows());
  w.f64(rows.storage().data(), rows.storage().size());
}

std::optional<ErrorInfo> decode_stream_append(
    const std::vector<std::uint8_t>& payload, std::int32_t n,
    const ServerLimits& limits, Matrix* rows) {
  PayloadReader r(payload);
  const std::int32_t nr = get_i32(r);
  if (nr < 1)
    return err(ErrorCode::BadDimensions,
               "append needs at least 1 row, got " + std::to_string(nr));
  if (nr > limits.max_dimension ||
      static_cast<std::int64_t>(nr) * n > limits.max_elements)
    return err(ErrorCode::TooLarge,
               "append of " + std::to_string(nr) + "x" + std::to_string(n) +
                   " exceeds server limits");
  if (auto e = check_data_bytes(static_cast<std::int64_t>(nr) * n,
                                r.remaining()))
    return e;
  *rows = get_matrix_data(r, nr, n);
  if (r.remaining() != 0)
    return err(ErrorCode::Malformed,
               std::to_string(r.remaining()) + " trailing bytes after rows");
  return std::nullopt;
}

void encode_stream_r(const Matrix& r, std::vector<std::uint8_t>& out) {
  PayloadWriter w(out);
  put_matrix(w, r);
}

Matrix decode_stream_r(const std::vector<std::uint8_t>& payload) {
  PayloadReader r(payload);
  return get_matrix(r);
}

void encode_status(const ServerStatus& s, std::vector<std::uint8_t>& out) {
  PayloadWriter w(out);
  w.i64(s.requests_accepted);
  w.i64(s.requests_completed);
  w.i64(s.requests_rejected);
  w.i64(s.requests_cancelled);
  w.i64(s.batches_accepted);
  w.i64(s.batch_problems);
  w.i64(s.streams_opened);
  w.i64(s.stream_rows);
  w.i64(s.active_dags);
  w.i64(s.ready_tasks);
  w.i64(s.max_active_dags);
  w.i64(s.open_sessions);
  w.i64(s.requests_overloaded);
}

ServerStatus decode_status(const std::vector<std::uint8_t>& payload) {
  PayloadReader r(payload);
  ServerStatus s;
  s.requests_accepted = r.i64();
  s.requests_completed = r.i64();
  s.requests_rejected = r.i64();
  s.requests_cancelled = r.i64();
  s.batches_accepted = r.i64();
  s.batch_problems = r.i64();
  s.streams_opened = r.i64();
  s.stream_rows = r.i64();
  s.active_dags = r.i64();
  s.ready_tasks = r.i64();
  s.max_active_dags = r.i64();
  s.open_sessions = r.i64();
  s.requests_overloaded = r.i64();
  return s;
}

void encode_error(const ErrorInfo& e, std::vector<std::uint8_t>& out) {
  PayloadWriter w(out);
  put_i32(w, static_cast<std::int32_t>(e.code));
  put_i32(w, static_cast<std::int32_t>(e.message.size()));
  w.raw(e.message.data(), e.message.size());
}

ErrorInfo decode_error(const std::vector<std::uint8_t>& payload) {
  PayloadReader r(payload);
  ErrorInfo e;
  e.code = static_cast<ErrorCode>(get_i32(r));
  const std::int32_t len = get_i32(r);
  HQR_CHECK(len >= 0 && static_cast<std::size_t>(len) <= r.remaining(),
            "malformed error message length " << len);
  e.message.resize(static_cast<std::size_t>(len));
  if (len > 0) r.raw(e.message.data(), static_cast<std::size_t>(len));
  return e;
}

}  // namespace hqr::serve
