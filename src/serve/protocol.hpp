// QR-as-a-service wire protocol: payload layouts, typed errors, and
// server-side validation (DESIGN.md §13).
//
// The serving protocol rides on the same framed, versioned, tagged wire
// format as the rank mesh (net/message.hpp): every request and response is
// one frame whose header `id` is the client-chosen request or stream id,
// echoed verbatim in the response so clients can pipeline. Payload scalars
// travel in native byte order like every other payload in the system (the
// frame header itself is explicitly little-endian and rejects a
// wrong-endian peer at the first frame).
//
// Request lifecycle:
//   SubmitQR     -> Result | ErrorReply
//   SubmitBatch  -> BatchResult | ErrorReply
//   StreamOpen   -> StreamR (empty R ack) | ErrorReply
//   StreamAppend -> StreamR (row count ack, no data) | ErrorReply
//   StreamQuery  -> StreamR (current R)  | ErrorReply
//   StreamClose  -> StreamR (final R)    | ErrorReply
//   Cancel       -> resolves the target request to ErrorReply{Cancelled};
//                   unknown ids answer ErrorReply{UnknownRequest}
//   Status       -> StatusReply
//   Shutdown     -> Bye, then the server drains and exits
//
// Validation happens here, at the protocol layer: malformed or
// out-of-contract requests (zero/negative dimensions, b = 0, ib > b,
// oversized payloads) produce a typed ErrorReply on the wire and leave the
// server process — and the offending connection — alive.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "net/message.hpp"
#include "trees/elimination.hpp"

namespace hqr::serve {

// Elimination-tree variant selectable per request (the tiled-QR taxonomy of
// Bouwmeester et al.: any valid elimination list is a correct algorithm;
// the tree shape trades panel parallelism against update pipelining).
enum class TreeChoice : std::int32_t {
  FlatTs = 0,     // diagonal kills everything below with TS kernels
  FlatTt = 1,     // per-panel flat tree, TT kernels
  Binary = 2,     // per-panel binary tree
  Greedy = 3,     // per-panel greedy tree
  Fibonacci = 4,  // per-panel Fibonacci tree
};

const char* tree_choice_name(TreeChoice t);
// Parses the names above (lowercase); throws hqr::Error on anything else.
TreeChoice tree_choice_from_name(const std::string& name);
// The elimination list a choice denotes for an mt x nt tile grid.
EliminationList elimination_for(TreeChoice t, int mt, int nt);

enum class ErrorCode : std::int32_t {
  BadDimensions = 1,   // m or n < 1
  BadTileSize = 2,     // b < 1
  BadInnerBlock = 3,   // ib < 0 or ib >= b (0 = plain kernels is valid)
  TooLarge = 4,        // matrix or payload exceeds the server's limits
  BadTree = 5,         // unknown TreeChoice value
  Malformed = 6,       // payload does not parse / wrong length
  UnknownRequest = 7,  // Cancel for an id the server does not know
  UnknownStream = 8,   // Stream* for an unopened stream id
  BadBatch = 9,        // batch count out of range
  ShuttingDown = 10,   // submit after Shutdown was requested
  Cancelled = 11,      // the request was cancelled before completing
  Internal = 12,       // unexpected server-side failure
  Overloaded = 13,     // admission limit hit — back off and retry later
};

const char* error_code_name(ErrorCode c);

struct ErrorInfo {
  ErrorCode code = ErrorCode::Internal;
  std::string message;
};

// Server-side admission limits, enforced before any allocation sized by
// client-controlled numbers.
struct ServerLimits {
  std::int32_t max_dimension = 1 << 20;     // rows, cols, or tile size b
  // Doubles per matrix (128 MiB), enforced on the TILE-PADDED shape
  // (ceil(m/b)*b x ceil(n/b)*b) — what the server actually allocates.
  std::int64_t max_elements = 16ll << 20;
  std::int32_t max_batch_problems = 100000;
  std::int64_t max_payload_bytes = 1ll << 30;  // per frame
  // Concurrency admission (0 = unbounded). max_active_dags bounds the DAGs
  // the worker pool will hold simultaneously; max_inflight_per_tenant bounds
  // one tenant's unfinished SubmitQR/SubmitBatch requests. Either limit
  // trips a typed ErrorReply{Overloaded} — the client backs off and retries
  // instead of growing the server's queues without bound.
  std::int32_t max_active_dags = 0;
  std::int32_t max_inflight_per_tenant = 0;
};

// Shared shape validation: returns the typed error a request with these
// parameters must be answered with, or nullopt when acceptable.
std::optional<ErrorInfo> validate_shape(std::int32_t m, std::int32_t n,
                                        std::int32_t b, std::int32_t ib,
                                        const ServerLimits& limits);

// ---- SubmitQR ----

struct QRJob {
  std::int64_t tenant = 0;  // accounting key (per-tenant counters)
  std::int32_t b = 32;
  std::int32_t ib = 0;
  TreeChoice tree = TreeChoice::FlatTs;
  std::int32_t priority = 0;
  bool want_q = false;
  Matrix a;  // m x n, column-major on the wire
};

void encode_submit_qr(const QRJob& job, std::vector<std::uint8_t>& out);
// Parses and validates; on success fills `job` and returns nullopt. Shape
// and size violations come back as typed errors; structurally broken
// payloads throw hqr::Error (callers map that to ErrorCode::Malformed).
std::optional<ErrorInfo> decode_submit_qr(
    const std::vector<std::uint8_t>& payload, const ServerLimits& limits,
    QRJob* job);

// ---- Result ----

struct QROutcome {
  Matrix r;
  bool has_q = false;
  Matrix q;
};

void encode_result(const QROutcome& res, std::vector<std::uint8_t>& out);
QROutcome decode_result(const std::vector<std::uint8_t>& payload);

// ---- SubmitBatch ----

struct BatchJob {
  std::int64_t tenant = 0;
  std::int32_t b = 8;
  std::int32_t ib = 0;
  TreeChoice tree = TreeChoice::FlatTs;
  std::int32_t priority = 0;
  std::vector<Matrix> problems;
};

void encode_submit_batch(const BatchJob& job, std::vector<std::uint8_t>& out);
std::optional<ErrorInfo> decode_submit_batch(
    const std::vector<std::uint8_t>& payload, const ServerLimits& limits,
    BatchJob* job);

void encode_batch_result(const std::vector<Matrix>& rs,
                         std::vector<std::uint8_t>& out);
std::vector<Matrix> decode_batch_result(
    const std::vector<std::uint8_t>& payload);

// ---- Streaming TSQR ----

struct StreamOpenReq {
  std::int64_t tenant = 0;
  std::int32_t n = 0;  // columns
  std::int32_t b = 8;  // tile size
};

void encode_stream_open(const StreamOpenReq& req,
                        std::vector<std::uint8_t>& out);
std::optional<ErrorInfo> decode_stream_open(
    const std::vector<std::uint8_t>& payload, const ServerLimits& limits,
    StreamOpenReq* req);

// StreamAppend carries the row block; n comes from the open session.
void encode_stream_append(const Matrix& rows, std::vector<std::uint8_t>& out);
std::optional<ErrorInfo> decode_stream_append(
    const std::vector<std::uint8_t>& payload, std::int32_t n,
    const ServerLimits& limits, Matrix* rows);

// StreamR responses reuse the plain matrix block (possibly 0 x n for the
// open ack / append ack).
void encode_stream_r(const Matrix& r, std::vector<std::uint8_t>& out);
Matrix decode_stream_r(const std::vector<std::uint8_t>& payload);

// ---- Status / errors ----

struct ServerStatus {
  std::int64_t requests_accepted = 0;   // SubmitQR admitted to the pool
  std::int64_t requests_completed = 0;  // Results sent
  std::int64_t requests_rejected = 0;   // typed ErrorReply sent
  std::int64_t requests_cancelled = 0;
  std::int64_t batches_accepted = 0;
  std::int64_t batch_problems = 0;  // small QRs fused across all batches
  std::int64_t streams_opened = 0;
  std::int64_t stream_rows = 0;  // rows reduced across all sessions
  std::int64_t active_dags = 0;
  std::int64_t ready_tasks = 0;
  std::int64_t max_active_dags = 0;  // concurrency high-watermark
  // Live connections: dead sessions are reaped by the accept loop, so this
  // tracks currently-connected clients, not connections ever accepted.
  std::int64_t open_sessions = 0;
  // Submits refused with ErrorCode::Overloaded (pool or per-tenant limit).
  std::int64_t requests_overloaded = 0;
};

void encode_status(const ServerStatus& s, std::vector<std::uint8_t>& out);
ServerStatus decode_status(const std::vector<std::uint8_t>& payload);

void encode_error(const ErrorInfo& e, std::vector<std::uint8_t>& out);
ErrorInfo decode_error(const std::vector<std::uint8_t>& payload);

}  // namespace hqr::serve
