#include "serve/server.hpp"

#include <poll.h>

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/stopwatch.hpp"
#include "core/factorization.hpp"
#include "core/incremental_tsqr.hpp"
#include "dag/task_graph.hpp"
#include "linalg/tiled_matrix.hpp"
#include "net/message.hpp"
#include "net/socket.hpp"
#include "runtime/dag_pool.hpp"
#include "serve/batch.hpp"

namespace hqr::serve {

namespace {

using net::FrameHeader;
using net::Tag;

constexpr double kIoDeadlineSeconds = 60.0;

struct Response {
  Tag tag;
  std::int32_t id;
  std::vector<std::uint8_t> payload;
};

// Waits up to `ms` for the socket to become readable; false on timeout.
bool wait_readable(int fd, int ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLIN;
  pfd.revents = 0;
  return ::poll(&pfd, 1, ms) > 0;
}

}  // namespace

// Connection state shared between the reader thread and the pool's
// completion callbacks. Kept behind a shared_ptr so a callback firing after
// the connection died just drops its response.
struct SessionShared {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Response> outbox;
  bool closed = false;  // reader gone: drop new responses, writer drains out
  std::unordered_map<std::int32_t, DagId> pending;  // request id -> DAG

  void push(Tag tag, std::int32_t id, std::vector<std::uint8_t> payload) {
    {
      std::lock_guard<std::mutex> lk(mu);
      if (closed) return;
      outbox.push_back({tag, id, std::move(payload)});
    }
    cv.notify_one();
  }
};

struct Server::Impl {
  explicit Impl(const ServerOptions& o) : opts(o) {
    DagPoolOptions popts;
    popts.threads = opts.threads;
    popts.max_active_dags = opts.limits.max_active_dags;
    popts.metrics = opts.metrics;
    pool = std::make_unique<DagPool>(popts);
    bound_port = opts.port;
    listener = net::tcp_listen(opts.host, &bound_port);
    accept_thread = std::thread([this] { accept_loop(); });
  }

  ~Impl() { stop_all(); }

  // ---- lifecycle ----

  void accept_loop() {
    while (!stopping.load(std::memory_order_acquire)) {
      reap_dead_sessions();
      if (!wait_readable(listener.get(), 200)) continue;
      net::Fd fd;
      try {
        fd = net::tcp_accept(listener.get(), monotonic_seconds() + 1.0);
      } catch (const Error&) {
        continue;  // raced with a client that gave up, or a spurious wake
      }
      net::set_tcp_nodelay(fd.get());
      auto session = std::make_unique<Session>();
      session->shared = std::make_shared<SessionShared>();
      session->fd = std::move(fd);
      Session* s = session.get();
      session->writer = std::thread([this, s] {
        writer_loop(s);
        s->writer_done.store(true, std::memory_order_release);
      });
      session->reader = std::thread([this, s] { reader_loop(s); });
      std::lock_guard<std::mutex> lk(sessions_mu);
      sessions.push_back(std::move(session));
    }
  }

  // Joins and frees sessions whose connection already died, so a
  // long-running server does not keep one fd and two thread handles per
  // connection ever accepted. Runs on the accept thread between accepts.
  // Draining (Shutdown) sessions are left for stop_all(), which flushes
  // their in-flight results before closing the outbox.
  void reap_dead_sessions() {
    std::vector<std::unique_ptr<Session>> done;
    {
      std::lock_guard<std::mutex> lk(sessions_mu);
      auto it = sessions.begin();
      while (it != sessions.end()) {
        Session& s = **it;
        if (s.dead.load(std::memory_order_acquire) &&
            s.writer_done.load(std::memory_order_acquire) &&
            !s.draining.load(std::memory_order_acquire)) {
          done.push_back(std::move(*it));
          it = sessions.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (auto& s : done) {
      if (s->reader.joinable()) s->reader.join();
      if (s->writer.joinable()) s->writer.join();
    }
  }

  void stop_all() {
    bool expected = false;
    if (!stop_once.compare_exchange_strong(expected, true)) return;
    stopping.store(true, std::memory_order_release);
    request_stop();  // unblock wait()
    if (accept_thread.joinable()) accept_thread.join();
    std::vector<std::unique_ptr<Session>> doomed;
    {
      std::lock_guard<std::mutex> lk(sessions_mu);
      doomed.swap(sessions);
    }
    // Readers stop FIRST so nothing can be admitted after the drain below
    // (a reader stopped this way keeps its pending DAGs running — see
    // reader_loop's graceful path).
    for (auto& s : doomed) {
      s->stop.store(true, std::memory_order_release);
      if (s->reader.joinable()) s->reader.join();
    }
    // Drain in-flight DAGs AND their completion callbacks: wait_all()
    // returns only once every on_done has run, so each accepted request's
    // reply is in its outbox and no late callback (e.g. the chained
    // Q-formation submit) can race pool destruction.
    pool->wait_all();
    for (auto& s : doomed) {
      // Everything in flight has been delivered to the outbox by now;
      // close it so the writer exits once the tail is flushed.
      {
        std::lock_guard<std::mutex> lk(s->shared->mu);
        s->shared->closed = true;
      }
      s->shared->cv.notify_all();
      if (s->writer.joinable()) s->writer.join();
    }
    pool.reset();
  }

  void request_stop() {
    {
      std::lock_guard<std::mutex> lk(stop_mu);
      stop_requested = true;
    }
    stop_cv.notify_all();
  }

  void wait_stop() {
    std::unique_lock<std::mutex> lk(stop_mu);
    stop_cv.wait(lk, [&] { return stop_requested; });
  }

  // ---- per-connection threads ----

  struct Session {
    net::Fd fd;
    std::shared_ptr<SessionShared> shared;
    std::thread reader;
    std::thread writer;
    std::atomic<bool> stop{false};
    // Set when the reader exits because of a Shutdown request: in-flight
    // DAGs drain and their results flush instead of being cancelled.
    std::atomic<bool> draining{false};
    // Reader exited (connection gone or stop requested): the session is a
    // candidate for reaping once the writer finished too.
    std::atomic<bool> dead{false};
    std::atomic<bool> writer_done{false};
  };

  void writer_loop(Session* s) {
    auto& sh = *s->shared;
    for (;;) {
      Response r;
      {
        std::unique_lock<std::mutex> lk(sh.mu);
        sh.cv.wait(lk, [&] { return !sh.outbox.empty() || sh.closed; });
        if (sh.outbox.empty()) return;  // closed and fully drained
        r = std::move(sh.outbox.front());
        sh.outbox.pop_front();
      }
      FrameHeader h;
      h.tag = static_cast<std::uint32_t>(r.tag);
      h.src = 0;
      h.id = r.id;
      h.bytes = r.payload.size();
      std::uint8_t hb[net::kFrameHeaderBytes];
      net::encode_header(h, hb);
      try {
        const double deadline = monotonic_seconds() + kIoDeadlineSeconds;
        net::write_all(s->fd.get(), hb, sizeof(hb), deadline);
        if (!r.payload.empty())
          net::write_all(s->fd.get(), r.payload.data(), r.payload.size(),
                         deadline);
      } catch (const Error&) {
        // Peer gone mid-write: stop flushing, reader will notice EOF too.
        std::lock_guard<std::mutex> lk(sh.mu);
        sh.closed = true;
        sh.outbox.clear();
        return;
      }
    }
  }

  void reader_loop(Session* s) {
    // Streaming TSQR sessions are handled inline on this thread, so the
    // map needs no lock.
    struct StreamSession {
      std::unique_ptr<IncrementalTSQR> tsqr;
      std::int64_t tenant = 0;
    };
    std::unordered_map<std::int32_t, StreamSession> streams;

    while (!s->stop.load(std::memory_order_acquire)) {
      if (!wait_readable(s->fd.get(), 200)) continue;
      FrameHeader h;
      std::vector<std::uint8_t> payload;
      try {
        std::uint8_t hb[net::kFrameHeaderBytes];
        net::read_all(s->fd.get(), hb, sizeof(hb),
                      monotonic_seconds() + kIoDeadlineSeconds);
        h = net::decode_header(hb);
        if (h.magic != net::kMagic || h.version != net::kWireVersion ||
            h.header_bytes != net::kFrameHeaderBytes ||
            !net::valid_tag(h.tag))
          break;  // protocol desync: the stream cannot be trusted anymore
        if (h.bytes > static_cast<std::uint64_t>(opts.limits.max_payload_bytes)) {
          drain_payload(s, h.bytes);
          reject(s, h.id,
                 {ErrorCode::TooLarge,
                  "payload of " + std::to_string(h.bytes) +
                      " bytes exceeds server limit of " +
                      std::to_string(opts.limits.max_payload_bytes)});
          continue;
        }
        payload.resize(static_cast<std::size_t>(h.bytes));
        if (h.bytes > 0)
          net::read_all(s->fd.get(), payload.data(), payload.size(),
                        monotonic_seconds() + kIoDeadlineSeconds);
      } catch (const Error&) {
        break;  // EOF or read timeout: connection is gone
      }

      try {
        if (!dispatch(s, static_cast<Tag>(h.tag), h.id, payload, streams))
          break;  // Shutdown
      } catch (const Error& e) {
        // decode_* throws only on structurally broken payloads; anything
        // else reaching here is still a per-request failure, never fatal
        // to the server.
        reject(s, h.id, {ErrorCode::Malformed, e.what()});
      } catch (const std::exception& e) {
        reject(s, h.id, {ErrorCode::Internal, e.what()});
      }
    }

    // Connection died (EOF/desync): cancel what it still has in flight and
    // let the writer drain. The graceful paths — a Shutdown request or a
    // server-side stop() — instead leave the DAGs running: stop_all()
    // drains the pool, the completion callbacks enqueue their results, and
    // only then is the outbox closed.
    const bool graceful = s->draining.load(std::memory_order_acquire) ||
                          s->stop.load(std::memory_order_acquire);
    if (!graceful) {
      std::vector<DagId> orphans;
      {
        std::lock_guard<std::mutex> lk(s->shared->mu);
        s->shared->closed = true;
        for (const auto& [id, dag] : s->shared->pending)
          orphans.push_back(dag);
        s->shared->pending.clear();
      }
      for (DagId d : orphans) pool->cancel(d);
    }
    s->shared->cv.notify_all();
    s->dead.store(true, std::memory_order_release);
  }

  // Reads and discards an oversized declared payload in bounded chunks so
  // the frame boundary is preserved without allocating `bytes`.
  void drain_payload(Session* s, std::uint64_t bytes) {
    std::vector<std::uint8_t> chunk(64 * 1024);
    while (bytes > 0) {
      const std::size_t n =
          static_cast<std::size_t>(std::min<std::uint64_t>(bytes, chunk.size()));
      net::read_all(s->fd.get(), chunk.data(), n,
                    monotonic_seconds() + kIoDeadlineSeconds);
      bytes -= n;
    }
  }

  void reject(Session* s, std::int32_t id, const ErrorInfo& e) {
    std::vector<std::uint8_t> payload;
    encode_error(e, payload);
    s->shared->push(Tag::ErrorReply, id, std::move(payload));
    if (e.code != ErrorCode::Cancelled)
      requests_rejected.fetch_add(1, std::memory_order_relaxed);
  }

  // ---- request handlers ----

  template <class Streams>
  bool dispatch(Session* s, Tag tag, std::int32_t id,
                const std::vector<std::uint8_t>& payload, Streams& streams) {
    switch (tag) {
      case Tag::SubmitQR: handle_submit_qr(s, id, payload); return true;
      case Tag::SubmitBatch: handle_submit_batch(s, id, payload); return true;
      case Tag::StreamOpen: handle_stream_open(s, id, payload, streams); return true;
      case Tag::StreamAppend: handle_stream_append(s, id, payload, streams); return true;
      case Tag::StreamQuery: handle_stream_query(s, id, streams); return true;
      case Tag::StreamClose: handle_stream_close(s, id, streams); return true;
      case Tag::Cancel: handle_cancel(s, id); return true;
      case Tag::Status: handle_status(s, id); return true;
      case Tag::Shutdown:
        s->draining.store(true, std::memory_order_release);
        s->shared->push(Tag::Bye, id, {});
        request_stop();
        return false;
      default:
        reject(s, id, {ErrorCode::Malformed,
                       std::string("unexpected request tag ") +
                           net::tag_name(tag)});
        return true;
    }
  }

  void note_tenant(std::int64_t tenant) {
    if (opts.metrics)
      opts.metrics
          ->counter("serve.tenant." + std::to_string(tenant) + ".requests")
          .add(1);
  }

  // Per-tenant admission: false (nothing recorded) when the tenant already
  // has max_inflight_per_tenant unfinished submits; otherwise records one.
  bool tenant_admit(std::int64_t tenant) {
    if (opts.limits.max_inflight_per_tenant <= 0) return true;
    std::lock_guard<std::mutex> lk(tenant_mu);
    int& n = tenant_inflight[tenant];
    if (n >= opts.limits.max_inflight_per_tenant) return false;
    ++n;
    return true;
  }

  // Pairs with every successful tenant_admit(), on whichever path resolves
  // the request (result, cancel, error, refused pool admission).
  void tenant_release(std::int64_t tenant) {
    if (opts.limits.max_inflight_per_tenant <= 0) return;
    std::lock_guard<std::mutex> lk(tenant_mu);
    auto it = tenant_inflight.find(tenant);
    if (it != tenant_inflight.end() && --it->second <= 0)
      tenant_inflight.erase(it);
  }

  void update_queue_gauges() {
    if (!opts.metrics) return;
    opts.metrics->gauge("serve.queue_depth")
        .set(static_cast<double>(pool->ready_tasks()));
    opts.metrics->gauge("serve.active_dags")
        .set(static_cast<double>(pool->active_dags()));
  }

  void observe_latency(const char* kind, double t0) {
    if (!opts.metrics) return;
    opts.metrics->histogram(std::string("serve.request_seconds.") + kind)
        .observe(monotonic_seconds() - t0);
  }

  bool admission_closed(Session* s, std::int32_t id) {
    if (!stopping.load(std::memory_order_acquire)) return false;
    reject(s, id, {ErrorCode::ShuttingDown, "server is shutting down"});
    return true;
  }

  void handle_submit_qr(Session* s, std::int32_t id,
                        const std::vector<std::uint8_t>& payload) {
    auto job = std::make_shared<QRJob>();
    if (auto e = decode_submit_qr(payload, opts.limits, job.get())) {
      reject(s, id, *e);
      return;
    }
    if (admission_closed(s, id)) return;
    if (!tenant_admit(job->tenant)) {
      requests_overloaded.fetch_add(1, std::memory_order_relaxed);
      reject(s, id,
             {ErrorCode::Overloaded,
              "tenant " + std::to_string(job->tenant) + " is at " +
                  std::to_string(opts.limits.max_inflight_per_tenant) +
                  " in-flight requests"});
      return;
    }
    note_tenant(job->tenant);

    auto tiled = TiledMatrix::from_matrix(job->a, job->b);
    const int mt = tiled.mt();
    const int nt = tiled.nt();
    KernelList kernels =
        expand_to_kernels(elimination_for(job->tree, mt, nt), mt, nt);
    auto graph = std::make_shared<const TaskGraph>(kernels, mt, nt);
    auto f = std::make_shared<QRFactors>(std::move(tiled), std::move(kernels),
                                         job->ib);

    const double t0 = monotonic_seconds();
    auto shared = s->shared;
    DagSubmitOptions sopts;
    sopts.priority = job->priority;
    sopts.on_done = [this, shared, id, f, job, t0](DagId, bool cancelled) {
      finish_qr_factor(shared, id, f, job, t0, cancelled);
    };
    // Register before submit: on_done can fire (and erase the entry) before
    // submit() even returns. A placeholder DagId 0 is never live, so a
    // Cancel racing this window is a harmless no-op. The accepted counter
    // also bumps pre-submit so completion can never outrun it in a Status
    // snapshot.
    {
      std::lock_guard<std::mutex> lk(shared->mu);
      shared->pending.emplace(id, DagId{0});
    }
    requests_accepted.fetch_add(1, std::memory_order_relaxed);
    DagId dag{0};
    try {
      dag = pool->submit(
          graph, job->b,
          [f](std::int32_t idx, TileWorkspace& ws) {
            execute_kernel(f->kernels()[static_cast<std::size_t>(idx)], *f, ws);
          },
          std::move(sopts));
    } catch (const PoolOverloaded& e) {
      requests_overloaded.fetch_add(1, std::memory_order_relaxed);
      finish_request_error(shared, id, job->tenant,
                           {ErrorCode::Overloaded, e.what()});
      return;
    } catch (const Error&) {
      // The pool refused admission (teardown raced this request).
      finish_request_error(shared, id, job->tenant,
                           {ErrorCode::ShuttingDown, "server is shutting down"});
      return;
    }
    {
      std::lock_guard<std::mutex> lk(shared->mu);
      auto it = shared->pending.find(id);
      if (it != shared->pending.end()) it->second = dag;
    }
    update_queue_gauges();
  }

  // Factor DAG finished: reply with R, or chain the Q-formation DAG.
  void finish_qr_factor(const std::shared_ptr<SessionShared>& shared,
                        std::int32_t id, const std::shared_ptr<QRFactors>& f,
                        const std::shared_ptr<QRJob>& job, double t0,
                        bool cancelled) {
    if (cancelled) {
      finish_request(shared, id, job->tenant, /*cancelled=*/true, {});
      return;
    }
    if (!job->want_q) {
      QROutcome res;
      res.r = extract_r(*f);
      std::vector<std::uint8_t> payload;
      encode_result(res, payload);
      observe_latency("qr", t0);
      finish_request(shared, id, job->tenant, /*cancelled=*/false,
                     std::move(payload));
      return;
    }
    // Q formation as a second DAG on the same pool (build_q, parallel): C
    // starts as the identity pattern, the factor kernels apply reversed.
    auto c = std::make_shared<TiledMatrix>(
        f->a().padded_m(), std::min(f->a().padded_m(), f->a().padded_n()),
        f->b());
    for (int d = 0; d < std::min(c->padded_m(), c->padded_n()); ++d)
      c->set(d, d, 1.0);
    auto ops = std::make_shared<const KernelList>(
        q_apply_ops(*f, Trans::No, c->nt(), /*economy=*/true));
    auto graph = std::make_shared<const TaskGraph>(
        TaskGraph::apply_graph(*ops, f->mt(), c->nt()));
    DagSubmitOptions sopts;
    sopts.priority = job->priority;
    // The Q DAG is the tail of an already-admitted request: it must drain
    // even when the pool is at max_active_dags refusing new submits.
    sopts.bypass_admission_limit = true;
    sopts.on_done = [this, shared, id, f, job, c, t0](DagId, bool q_cancelled) {
      if (q_cancelled) {
        finish_request(shared, id, job->tenant, /*cancelled=*/true, {});
        return;
      }
      QROutcome res;
      res.r = extract_r(*f);
      res.has_q = true;
      const Matrix padded = c->to_padded_matrix();
      const int qm = f->m();
      const int qn = std::min(f->m(), f->n());
      res.q = materialize(padded.block(0, 0, qm, qn));
      std::vector<std::uint8_t> payload;
      encode_result(res, payload);
      observe_latency("qr", t0);
      finish_request(shared, id, job->tenant, /*cancelled=*/false,
                     std::move(payload));
    };
    DagId dag{0};
    try {
      dag = pool->submit(
          graph, f->b(),
          [f, c, ops](std::int32_t idx, TileWorkspace& ws) {
            execute_apply_kernel((*ops)[static_cast<std::size_t>(idx)], *f,
                                 Trans::No, *c, ws);
          },
          std::move(sopts));
    } catch (const Error&) {
      // This chained submit runs inside the factor DAG's on_done, on a pool
      // worker: if the pool is being torn down, submit() throws — answer
      // with a typed error instead of letting it escape the worker thread
      // (which would std::terminate the whole server).
      finish_request_error(shared, id, job->tenant,
                           {ErrorCode::ShuttingDown, "server is shutting down"});
      return;
    }
    // Re-point the pending entry so Cancel aims at the live DAG.
    std::lock_guard<std::mutex> lk(shared->mu);
    auto it = shared->pending.find(id);
    if (it != shared->pending.end()) it->second = dag;
  }

  void finish_request(const std::shared_ptr<SessionShared>& shared,
                      std::int32_t id, std::int64_t tenant, bool cancelled,
                      std::vector<std::uint8_t> result_payload) {
    if (cancelled) {
      finish_request_error(shared, id, tenant,
                           {ErrorCode::Cancelled, "request was cancelled"});
      return;
    }
    tenant_release(tenant);
    {
      std::lock_guard<std::mutex> lk(shared->mu);
      shared->pending.erase(id);
    }
    requests_completed.fetch_add(1, std::memory_order_relaxed);
    shared->push(Tag::Result, id, std::move(result_payload));
    update_queue_gauges();
  }

  // Resolves a pending request to a typed ErrorReply (Cancelled,
  // ShuttingDown, ...) from a completion callback or a failed admission.
  void finish_request_error(const std::shared_ptr<SessionShared>& shared,
                            std::int32_t id, std::int64_t tenant,
                            const ErrorInfo& e) {
    tenant_release(tenant);
    {
      std::lock_guard<std::mutex> lk(shared->mu);
      shared->pending.erase(id);
    }
    if (e.code == ErrorCode::Cancelled)
      requests_cancelled.fetch_add(1, std::memory_order_relaxed);
    else
      requests_rejected.fetch_add(1, std::memory_order_relaxed);
    std::vector<std::uint8_t> payload;
    encode_error(e, payload);
    shared->push(Tag::ErrorReply, id, std::move(payload));
    update_queue_gauges();
  }

  void handle_submit_batch(Session* s, std::int32_t id,
                           const std::vector<std::uint8_t>& payload) {
    auto job = std::make_shared<BatchJob>();
    if (auto e = decode_submit_batch(payload, opts.limits, job.get())) {
      reject(s, id, *e);
      return;
    }
    if (admission_closed(s, id)) return;
    if (!tenant_admit(job->tenant)) {
      requests_overloaded.fetch_add(1, std::memory_order_relaxed);
      reject(s, id,
             {ErrorCode::Overloaded,
              "tenant " + std::to_string(job->tenant) + " is at " +
                  std::to_string(opts.limits.max_inflight_per_tenant) +
                  " in-flight requests"});
      return;
    }
    note_tenant(job->tenant);

    // ONE fused DAG, ONE scheduler pass for the whole batch.
    auto fused = std::make_shared<FusedBatch>(job->problems, job->b, job->tree,
                                              job->ib);
    const double t0 = monotonic_seconds();
    auto shared = s->shared;
    DagSubmitOptions sopts;
    sopts.priority = job->priority;
    sopts.on_done = [this, shared, id, fused, job, t0](DagId, bool cancelled) {
      if (cancelled) {
        finish_request(shared, id, job->tenant, /*cancelled=*/true, {});
        return;
      }
      std::vector<Matrix> rs;
      rs.reserve(fused->size());
      for (std::size_t p = 0; p < fused->size(); ++p) rs.push_back(fused->r(p));
      std::vector<std::uint8_t> out;
      encode_batch_result(rs, out);
      observe_latency("batch", t0);
      batch_problems.fetch_add(static_cast<long long>(fused->size()),
                               std::memory_order_relaxed);
      tenant_release(job->tenant);
      {
        std::lock_guard<std::mutex> lk(shared->mu);
        shared->pending.erase(id);
      }
      requests_completed.fetch_add(1, std::memory_order_relaxed);
      shared->push(Tag::BatchResult, id, std::move(out));
      update_queue_gauges();
    };
    {
      std::lock_guard<std::mutex> lk(shared->mu);
      shared->pending.emplace(id, DagId{0});
    }
    // A batch is one request (and one DAG): it counts in both ledgers, and
    // pre-submit so completion can never outrun acceptance in a snapshot.
    requests_accepted.fetch_add(1, std::memory_order_relaxed);
    batches_accepted.fetch_add(1, std::memory_order_relaxed);
    DagId dag{0};
    try {
      dag = pool->submit(
          fused->graph(), fused->b(),
          [fused](std::int32_t idx, TileWorkspace& ws) {
            fused->execute(idx, ws);
          },
          std::move(sopts));
    } catch (const PoolOverloaded& e) {
      requests_overloaded.fetch_add(1, std::memory_order_relaxed);
      finish_request_error(shared, id, job->tenant,
                           {ErrorCode::Overloaded, e.what()});
      return;
    } catch (const Error&) {
      finish_request_error(shared, id, job->tenant,
                           {ErrorCode::ShuttingDown, "server is shutting down"});
      return;
    }
    {
      std::lock_guard<std::mutex> lk(shared->mu);
      auto it = shared->pending.find(id);
      if (it != shared->pending.end()) it->second = dag;
    }
    update_queue_gauges();
  }

  template <class Streams>
  void handle_stream_open(Session* s, std::int32_t id,
                          const std::vector<std::uint8_t>& payload,
                          Streams& streams) {
    StreamOpenReq req;
    if (auto e = decode_stream_open(payload, opts.limits, &req)) {
      reject(s, id, *e);
      return;
    }
    if (admission_closed(s, id)) return;
    if (streams.count(id) != 0) {
      reject(s, id, {ErrorCode::Malformed,
                     "stream " + std::to_string(id) + " is already open"});
      return;
    }
    auto& st = streams[id];
    st.tsqr = std::make_unique<IncrementalTSQR>(req.n, req.b);
    st.tenant = req.tenant;
    note_tenant(req.tenant);
    streams_opened.fetch_add(1, std::memory_order_relaxed);
    std::vector<std::uint8_t> out;
    encode_stream_r(Matrix(0, req.n), out);  // open ack: empty R
    s->shared->push(Tag::StreamR, id, std::move(out));
  }

  template <class Streams>
  void handle_stream_append(Session* s, std::int32_t id,
                            const std::vector<std::uint8_t>& payload,
                            Streams& streams) {
    auto it = streams.find(id);
    if (it == streams.end()) {
      reject(s, id, {ErrorCode::UnknownStream,
                     "stream " + std::to_string(id) + " is not open"});
      return;
    }
    Matrix rows;
    if (auto e = decode_stream_append(payload, it->second.tsqr->cols(),
                                      opts.limits, &rows)) {
      reject(s, id, *e);
      return;
    }
    it->second.tsqr->add_rows(rows);
    stream_rows.fetch_add(rows.rows(), std::memory_order_relaxed);
    std::vector<std::uint8_t> out;
    encode_stream_r(Matrix(0, it->second.tsqr->cols()), out);  // append ack
    s->shared->push(Tag::StreamR, id, std::move(out));
  }

  template <class Streams>
  void handle_stream_query(Session* s, std::int32_t id, Streams& streams) {
    auto it = streams.find(id);
    if (it == streams.end()) {
      reject(s, id, {ErrorCode::UnknownStream,
                     "stream " + std::to_string(id) + " is not open"});
      return;
    }
    std::vector<std::uint8_t> out;
    encode_stream_r(it->second.tsqr->r(), out);
    s->shared->push(Tag::StreamR, id, std::move(out));
  }

  template <class Streams>
  void handle_stream_close(Session* s, std::int32_t id, Streams& streams) {
    auto it = streams.find(id);
    if (it == streams.end()) {
      reject(s, id, {ErrorCode::UnknownStream,
                     "stream " + std::to_string(id) + " is not open"});
      return;
    }
    std::vector<std::uint8_t> out;
    encode_stream_r(it->second.tsqr->r(), out);
    streams.erase(it);
    s->shared->push(Tag::StreamR, id, std::move(out));
  }

  void handle_cancel(Session* s, std::int32_t id) {
    DagId dag = 0;
    bool known = false;
    {
      std::lock_guard<std::mutex> lk(s->shared->mu);
      auto it = s->shared->pending.find(id);
      if (it != s->shared->pending.end()) {
        dag = it->second;
        known = true;
      }
    }
    if (!known) {
      reject(s, id, {ErrorCode::UnknownRequest,
                     "no pending request with id " + std::to_string(id)});
      return;
    }
    // If the DAG already finished, the Result beat the Cancel — the reply
    // is already on its way and the cancel is a harmless no-op.
    pool->cancel(dag);
  }

  void handle_status(Session* s, std::int32_t id) {
    std::vector<std::uint8_t> out;
    encode_status(snapshot(), out);
    s->shared->push(Tag::StatusReply, id, std::move(out));
  }

  ServerStatus snapshot() const {
    ServerStatus st;
    st.requests_accepted = requests_accepted.load(std::memory_order_relaxed);
    st.requests_completed = requests_completed.load(std::memory_order_relaxed);
    st.requests_rejected = requests_rejected.load(std::memory_order_relaxed);
    st.requests_cancelled = requests_cancelled.load(std::memory_order_relaxed);
    st.batches_accepted = batches_accepted.load(std::memory_order_relaxed);
    st.batch_problems = batch_problems.load(std::memory_order_relaxed);
    st.streams_opened = streams_opened.load(std::memory_order_relaxed);
    st.stream_rows = stream_rows.load(std::memory_order_relaxed);
    st.active_dags = pool->active_dags();
    st.ready_tasks = pool->ready_tasks();
    st.max_active_dags = pool->stats().max_active_dags;
    st.requests_overloaded =
        requests_overloaded.load(std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(sessions_mu);
      st.open_sessions = static_cast<std::int64_t>(sessions.size());
    }
    return st;
  }

  ServerOptions opts;
  std::uint16_t bound_port = 0;
  net::Fd listener;
  std::unique_ptr<DagPool> pool;

  mutable std::mutex sessions_mu;
  std::vector<std::unique_ptr<Session>> sessions;
  std::thread accept_thread;

  std::atomic<bool> stopping{false};
  std::atomic<bool> stop_once{false};
  std::mutex stop_mu;
  std::condition_variable stop_cv;
  bool stop_requested = false;

  std::atomic<long long> requests_accepted{0};
  std::atomic<long long> requests_completed{0};
  std::atomic<long long> requests_rejected{0};
  std::atomic<long long> requests_cancelled{0};
  std::atomic<long long> batches_accepted{0};
  std::atomic<long long> batch_problems{0};
  std::atomic<long long> streams_opened{0};
  std::atomic<long long> stream_rows{0};
  std::atomic<long long> requests_overloaded{0};

  // Per-tenant in-flight SubmitQR/SubmitBatch counts (admission control).
  std::mutex tenant_mu;
  std::unordered_map<std::int64_t, int> tenant_inflight;
};

Server::Server(const ServerOptions& opts)
    : impl_(std::make_unique<Impl>(opts)) {}

Server::~Server() = default;

std::uint16_t Server::port() const { return impl_->bound_port; }

void Server::wait() { impl_->wait_stop(); }

void Server::stop() { impl_->stop_all(); }

ServerStatus Server::status() const { return impl_->snapshot(); }

}  // namespace hqr::serve
