// QR-as-a-service server: a long-running TCP process that accepts
// factorization requests from many clients and executes them concurrently
// on ONE shared worker pool (runtime/dag_pool.hpp).
//
// Threading model: one accept thread (which also reaps sessions whose
// connection died, so fds and thread handles do not accumulate); per
// connection a reader thread (frame parse -> validate -> submit to the
// pool) and a writer thread (drains an outbox of encoded responses).
// Factorization DAGs never run on connection threads — every SubmitQR,
// fused batch and Q formation is a DAG submitted to the shared DagPool,
// whose completion callback encodes the response and enqueues it on the
// owning connection's outbox. Requests from different connections and
// tenants therefore interleave at task granularity, and a large request
// does not block a small one behind it.
//
// One deliberate exception: streaming TSQR reductions (StreamAppend) run
// inline on the connection's reader thread — stream state is
// single-threaded by construction and needs no locking. A large append
// (bounded by ServerLimits) therefore serializes with other requests
// pipelined on the SAME connection, including Cancel; clients with heavy
// streams should give them a dedicated connection.
//
// Validation happens before admission (serve/protocol.hpp): a malformed or
// out-of-contract request gets a typed ErrorReply and the connection — and
// the server — keep going.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "serve/protocol.hpp"

namespace hqr::serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ask the kernel for an ephemeral port
  int threads = 4;         // shared worker pool size
  ServerLimits limits;
  obs::MetricsRegistry* metrics = nullptr;  // optional instrumentation
};

class Server {
 public:
  // Binds and starts accepting immediately; throws hqr::Error when the
  // address cannot be bound.
  explicit Server(const ServerOptions& opts);
  ~Server();  // equivalent to stop()

  // The port actually bound (useful with port = 0).
  std::uint16_t port() const;

  // Blocks until a client sends Shutdown or another thread calls stop().
  void wait();

  // Graceful stop: reject new submissions, drain in-flight DAGs, flush
  // outboxes, join all threads. Idempotent.
  void stop();

  // Server-wide counters (same data a Status request returns).
  ServerStatus status() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace hqr::serve
