#include "simcluster/platform.hpp"

#include <sstream>

namespace hqr {

std::string Platform::describe() const {
  std::ostringstream os;
  os << nodes << " nodes x " << cores_per_node << " cores, peak "
     << theoretical_peak_gflops() << " GFlop/s, latency " << latency * 1e6
     << " us, bandwidth " << bandwidth / 1e9 << " GB/s";
  return os.str();
}

Platform Platform::edel() { return Platform{}; }

}  // namespace hqr
