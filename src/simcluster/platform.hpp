// Platform model for the cluster simulator.
//
// Calibrated against the paper's §V-A measurements on the Grid'5000 edel
// cluster: 60 nodes x 8 cores, per-core theoretical peak 9.08 GFlop/s,
// dTSMQR measured at 7.21 GFlop/s/core (79.4% of peak), dTTMQR at 6.28
// (69.2%), Infiniband 20G interconnect.
#pragma once

#include <string>

#include "kernels/weights.hpp"

namespace hqr {

// Per-core execution rates (GFlop/s) for each kernel class.
struct KernelRates {
  double geqrt = 5.80;
  double unmqr = 7.00;
  double tsqrt = 6.30;
  double tsmqr = 7.21;  // measured in the paper
  double ttqrt = 4.50;
  double ttmqr = 6.28;  // measured in the paper

  double rate(KernelType k) const {
    switch (k) {
      case KernelType::GEQRT:
        return geqrt;
      case KernelType::UNMQR:
        return unmqr;
      case KernelType::TSQRT:
        return tsqrt;
      case KernelType::TSMQR:
        return tsmqr;
      case KernelType::TTQRT:
        return ttqrt;
      case KernelType::TTMQR:
        return ttmqr;
    }
    return 1.0;
  }
};

struct Platform {
  int nodes = 60;
  int cores_per_node = 8;
  double peak_per_core_gflops = 9.08;
  KernelRates rates;
  double latency = 1.5e-6;       // seconds per message (Infiniband-class)
  double bandwidth = 1.8e9;      // bytes/second effective per link

  // Accelerators (the paper's §VI future work): each node may carry
  // `accels_per_node` devices that execute *update* kernels (UNMQR, TSMQR,
  // TTMQR — the GEMM-rich work GPUs are good at) at `accel_rates`; factor
  // kernels stay on the CPU cores (panel factorization is latency-bound and
  // a poor fit for accelerators). accel_rates defaults are an order of
  // magnitude above the CPU, 2011-era GPU-vs-socket.
  int accels_per_node = 0;
  KernelRates accel_rates{/*geqrt=*/0, /*unmqr=*/55.0, /*tsqrt=*/0,
                          /*tsmqr=*/70.0, /*ttqrt=*/0, /*ttmqr=*/50.0};

  double theoretical_peak_gflops() const {
    return nodes * cores_per_node * peak_per_core_gflops;
  }

  // Wall-clock seconds for one kernel on b x b tiles on one core.
  double kernel_seconds(KernelType k, int b) const {
    return kernel_flops(k, b) / (rates.rate(k) * 1e9);
  }

  // True when `k` may execute on an accelerator of this platform.
  bool accel_eligible(KernelType k) const {
    return accels_per_node > 0 && !is_factor_kernel(k) &&
           accel_rates.rate(k) > 0;
  }

  // Wall-clock seconds for one update kernel on one accelerator.
  double accel_kernel_seconds(KernelType k, int b) const {
    return kernel_flops(k, b) / (accel_rates.rate(k) * 1e9);
  }

  // Transfer time for `bytes` between two distinct nodes.
  double transfer_seconds(double bytes) const {
    return latency + bytes / bandwidth;
  }

  std::string describe() const;

  // The paper's experimental platform (Grid'5000 edel, §V-A).
  static Platform edel();
};

}  // namespace hqr
