#include "simcluster/simulator.hpp"

#include <algorithm>
#include <queue>
#include <string>

#include "common/check.hpp"
#include "dag/partition.hpp"

namespace hqr {
namespace {

// task_node (the owner-computes task->node map) lives in dag/partition.hpp,
// shared with the real distributed runtime so both place every task on the
// same node by construction.

struct Event {
  double time;
  std::int32_t task;
  bool is_completion;  // false: data-ready

  bool operator>(const Event& o) const {
    if (time != o.time) return time > o.time;
    if (is_completion != o.is_completion)
      return is_completion;  // ready events before completions at equal time
    return task > o.task;
  }
};

struct ReadyEntry {
  double priority;
  std::int32_t task;
  bool operator<(const ReadyEntry& o) const {
    if (priority != o.priority) return priority < o.priority;
    return task > o.task;
  }
};

}  // namespace

double qr_useful_flops(long long m, long long n) {
  const double dm = static_cast<double>(m), dn = static_cast<double>(n);
  return 2.0 * dm * dn * dn - 2.0 * dn * dn * dn / 3.0;
}

SimResult simulate_qr(const TaskGraph& graph, const Distribution& dist,
                      long long m, long long n, const SimOptions& opts) {
  const std::int32_t ntasks = graph.size();
  const int nnodes = dist.nodes();
  const double tile_bytes =
      static_cast<double>(opts.b) * opts.b * sizeof(double);

  // Static per-task data.
  const int naccel = opts.platform.accels_per_node;
  std::vector<std::int32_t> node(static_cast<std::size_t>(ntasks));
  std::vector<float> dur(static_cast<std::size_t>(ntasks));
  std::vector<float> dur_accel;
  std::vector<char> accel_ok(static_cast<std::size_t>(ntasks), 0);
  if (naccel > 0) dur_accel.assign(static_cast<std::size_t>(ntasks), 0.0f);
  for (std::int32_t i = 0; i < ntasks; ++i) {
    const KernelOp& op = graph.op(i);
    node[i] = static_cast<std::int32_t>(task_node(op, dist));
    dur[i] = static_cast<float>(opts.platform.kernel_seconds(op.type, opts.b));
    if (naccel > 0 && opts.platform.accel_eligible(op.type)) {
      accel_ok[i] = 1;
      dur_accel[i] = static_cast<float>(
          opts.platform.accel_kernel_seconds(op.type, opts.b));
    }
  }

  // Priorities: critical-path depth in seconds (or FIFO).
  std::vector<double> depth;
  if (opts.priority_scheduling) {
    graph.critical_path(
        [&](const KernelOp& op) {
          return opts.platform.kernel_seconds(op.type, opts.b);
        },
        &depth);
  } else {
    depth.assign(static_cast<std::size_t>(ntasks), 0.0);
    for (std::int32_t i = 0; i < ntasks; ++i)
      depth[i] = static_cast<double>(ntasks - i);
  }

  std::vector<double> ready_time(static_cast<std::size_t>(ntasks), 0.0);
  std::vector<std::int32_t> npred(static_cast<std::size_t>(ntasks));
  for (std::int32_t i = 0; i < ntasks; ++i)
    npred[i] = graph.num_predecessors(i);

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  // Two ready pools per node: CPU-only tasks (factor kernels) and
  // accelerator-eligible updates (which cores may also take).
  std::vector<std::priority_queue<ReadyEntry>> ready(
      static_cast<std::size_t>(nnodes));
  std::vector<std::priority_queue<ReadyEntry>> ready_upd(
      static_cast<std::size_t>(nnodes));
  std::vector<int> idle(static_cast<std::size_t>(nnodes),
                        opts.platform.cores_per_node);
  std::vector<int> idle_accel(static_cast<std::size_t>(nnodes), naccel);
  std::vector<double> busy(static_cast<std::size_t>(nnodes), 0.0);
  std::vector<double> busy_accel(static_cast<std::size_t>(nnodes), 0.0);
  // Which resource a running task occupies (0 = core, 1 = accelerator).
  std::vector<char> resource(static_cast<std::size_t>(ntasks), 0);

  // Tracing needs stable (node, core) lanes, so keep a free-id pool per node
  // (cores: 0..C-1; accelerators: C..C+A-1) and remember each running
  // task's unit to return it on completion.
  const int cores = opts.platform.cores_per_node;
  std::vector<std::vector<std::int32_t>> free_units;
  std::vector<std::int32_t> unit_of;
  if (opts.trace != nullptr) {
    opts.trace->set_labels("node", "core");
    free_units.resize(static_cast<std::size_t>(nnodes));
    for (int nd = 0; nd < nnodes; ++nd) {
      // pop_back yields the lowest id first.
      for (int c = cores + naccel; c-- > 0;)
        free_units[nd].push_back(c);
    }
    unit_of.assign(static_cast<std::size_t>(ntasks), 0);
  }
  auto claim_unit = [&](int nd, bool accel) -> std::int32_t {
    auto& pool = free_units[static_cast<std::size_t>(nd)];
    for (std::size_t i = pool.size(); i-- > 0;) {
      const bool is_accel = pool[i] >= cores;
      if (is_accel == accel) {
        const std::int32_t u = pool[i];
        pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(i));
        return u;
      }
    }
    HQR_CHECK(false, "no free " << (accel ? "accelerator" : "core")
                                << " on node " << nd);
  };

  SimResult res;
  res.tasks = ntasks;

  // ---- Fault model state (inert unless the plan has actions) -------------
  // The kill model mirrors the runtime's recovery protocol: the victim's
  // k-th local completion dies in on_complete (its output never leaves),
  // every completed-but-victim-local result is rolled back (the replacement
  // re-executes the whole partition), remote consumers keep what they
  // already received, and at t_kill + fault_restart_seconds the survivors
  // replay the victim's inbound history. One approximation: broadcast trees
  // are pre-scheduled at completion time, so frames still in flight at the
  // kill count as delivered (the real runtime re-delivers them via replay
  // at nearly the same instant).
  const bool faulty = !opts.fault_plan.empty();
  struct ArmedAction {
    fault::FaultAction a;
    bool fired = false;
  };
  std::vector<std::vector<ArmedAction>> armed;  // per node
  std::vector<long long> completions_on;        // 1-based trigger counters
  std::vector<int> gen;    // node incarnation; bumped on kill
  std::vector<int> evgen;  // incarnation stamped on each queued event
  std::vector<char> completed;  // per task; only maintained when faulty
  std::vector<char> redo;  // completion rolled back by a kill; re-executes
  struct LinkBlock {
    int from, to;
    double until;
  };
  std::vector<LinkBlock> link_blocks;
  struct PendingRestart {
    int victim = -1;  // -1: no death window open
    double t_restart = 0.0;
    std::vector<std::int32_t> replay;    // producers completed pre-kill
    std::vector<std::int32_t> deferred;  // producers completed while dead
  };
  PendingRestart restart;
  std::vector<char> def_mask;  // per-node scratch: delivery deferred
  if (faulty) {
    armed.assign(static_cast<std::size_t>(nnodes), {});
    for (const fault::FaultAction& a : opts.fault_plan.actions) {
      HQR_CHECK(a.rank >= 0 && a.rank < nnodes,
                "fault plan rank " << a.rank << " out of range for " << nnodes
                                   << " simulated nodes");
      if (a.kind != fault::FaultKind::KillRank)
        HQR_CHECK(a.peer >= 0 && a.peer < nnodes && a.peer != a.rank,
                  "fault plan peer " << a.peer << " invalid for rank "
                                     << a.rank);
      armed[static_cast<std::size_t>(a.rank)].push_back({a, false});
    }
    completions_on.assign(static_cast<std::size_t>(nnodes), 0);
    gen.assign(static_cast<std::size_t>(nnodes), 0);
    evgen.assign(static_cast<std::size_t>(ntasks), 0);
    completed.assign(static_cast<std::size_t>(ntasks), 0);
    redo.assign(static_cast<std::size_t>(ntasks), 0);
    def_mask.assign(static_cast<std::size_t>(nnodes), 0);
  }
  const auto push_event = [&](double t, std::int32_t task, bool completion) {
    if (faulty) evgen[task] = gen[node[task]];
    events.push({t, task, completion});
  };

  for (std::int32_t r : graph.roots())
    push_event(0.0, r, /*completion=*/false);

  double now = 0.0;
  // Scratch for per-producer broadcast dedup: arrival time per dest node.
  std::vector<double> arrival(static_cast<std::size_t>(nnodes), -1.0);
  std::vector<std::int32_t> touched;
  touched.reserve(16);
  // Per-node NIC occupancy (one send channel, one receive channel).
  std::vector<double> send_free(static_cast<std::size_t>(nnodes), 0.0);
  std::vector<double> recv_free(static_cast<std::size_t>(nnodes), 0.0);
  res.nic_send_busy_seconds.assign(static_cast<std::size_t>(nnodes), 0.0);
  res.nic_recv_busy_seconds.assign(static_cast<std::size_t>(nnodes), 0.0);
  res.node_messages_sent.assign(static_cast<std::size_t>(nnodes), 0);
  res.node_messages_recv.assign(static_cast<std::size_t>(nnodes), 0);
  const double wire = tile_bytes / opts.platform.bandwidth;
  // Outstanding communication-thread CPU debt per node (seconds); drained by
  // stretching running kernels, capped at one core's share of node time.
  std::vector<double> comm_debt(static_cast<std::size_t>(nnodes), 0.0);
  const double msg_cpu =
      opts.comm_cpu_per_msg + tile_bytes * opts.comm_cpu_per_byte;

  // Schedule one tile transfer from `from` to `to` starting no earlier than
  // `avail`; charges NICs, counters and comm-thread CPU on both endpoints
  // and returns the arrival time.
  auto charge_edge = [&](int from, int to, double avail) {
    // A blocked link (severed or delayed by a chaos action) holds frames
    // until it is repaired/expired.
    if (!link_blocks.empty()) {
      for (const LinkBlock& lb : link_blocks)
        if (lb.from == from && lb.to == to && lb.until > avail)
          avail = lb.until;
    }
    double arr;
    if (opts.nic_contention) {
      const double start = std::max({avail, send_free[from], recv_free[to]});
      arr = start + opts.platform.latency + wire;
      send_free[from] = start + wire;
      recv_free[to] = start + wire;
    } else {
      arr = avail + opts.platform.transfer_seconds(tile_bytes);
    }
    ++res.messages;
    ++res.node_messages_sent[static_cast<std::size_t>(from)];
    ++res.node_messages_recv[static_cast<std::size_t>(to)];
    res.volume_gbytes += tile_bytes / 1e9;
    // Wire time occupies both endpoints' NICs whether or not the contention
    // model serializes it.
    res.nic_send_busy_seconds[static_cast<std::size_t>(from)] += wire;
    res.nic_recv_busy_seconds[static_cast<std::size_t>(to)] += wire;
    comm_debt[static_cast<std::size_t>(from)] += msg_cpu;  // pack + progress
    comm_debt[static_cast<std::size_t>(to)] += msg_cpu;    // match + unpack
    res.comm_cpu_charged_seconds += 2.0 * msg_cpu;
    return arr;
  };

  auto record = [&](std::int32_t t, int nd, double start, double finish,
                    bool accel) {
    res.tasks_by_kernel[kernel_type_index(graph.op(t).type)] += 1;
    res.seconds_by_kernel[kernel_type_index(graph.op(t).type)] +=
        finish - start;
    if (opts.trace == nullptr) return;
    const std::int32_t u = claim_unit(nd, accel);
    unit_of[t] = u;
    const KernelOp& op = graph.op(t);
    opts.trace->add({t, nd, u, op.type, accel, op.row, op.piv, op.k, op.j,
                     start, finish});
  };

  auto dispatch = [&](int nd) {
    // Accelerators drain the update pool first (they run those faster).
    while (idle_accel[nd] > 0 && !ready_upd[nd].empty()) {
      const std::int32_t t = ready_upd[nd].top().task;
      ready_upd[nd].pop();
      --idle_accel[nd];
      resource[t] = 1;
      const double d = dur_accel[t];
      const double finish = now + d;
      busy_accel[nd] += d;
      record(t, nd, now, finish, /*accel=*/true);
      push_event(finish, t, /*completion=*/true);
    }
    // Cores take the highest-priority task across both pools.
    while (idle[nd] > 0) {
      std::priority_queue<ReadyEntry>* q = nullptr;
      if (!ready[nd].empty()) q = &ready[nd];
      if (!ready_upd[nd].empty() &&
          (!q || ready_upd[nd].top().priority > q->top().priority))
        q = &ready_upd[nd];
      if (!q) break;
      const std::int32_t t = q->top().task;
      q->pop();
      --idle[nd];
      resource[t] = 0;
      double d = dur[t];
      if (opts.comm_thread_steal && comm_debt[nd] > 0.0) {
        // The communication thread steals at most one core's worth of time
        // from the running kernels.
        const double steal = std::min(
            comm_debt[nd], d / opts.platform.cores_per_node);
        comm_debt[nd] -= steal;
        res.comm_cpu_stolen_seconds += steal;
        d += steal;
      }
      const double finish = now + d;
      busy[nd] += d;
      record(t, nd, now, finish, /*accel=*/false);
      push_event(finish, t, /*completion=*/true);
    }
  };

  long long done = 0;

  // ---- Fault model procedures -------------------------------------------
  // Distinct remote consumer nodes of p, ascending — CommPlan's group order,
  // used to rebuild p's broadcast tree deterministically at recovery time.
  std::vector<std::int32_t> cons;
  const auto consumer_nodes_of = [&](std::int32_t p,
                                     std::vector<std::int32_t>& out) {
    out.clear();
    for (std::int32_t s : graph.successors(p)) {
      const std::int32_t sn = node[s];
      if (sn != node[p] && std::find(out.begin(), out.end(), sn) == out.end())
        out.push_back(sn);
    }
    std::sort(out.begin(), out.end());
  };

  const auto do_kill = [&](int nd) {
    HQR_CHECK(restart.victim < 0,
              "fault plan: rank " << nd << " killed while another recovery "
                                  << "window was still open");
    ++res.faults_injected;
    res.kill_seconds = now;
    restart.victim = nd;
    restart.t_restart = now + opts.fault_restart_seconds;
    restart.replay.clear();
    restart.deferred.clear();
    ++gen[nd];           // every in-flight event on the victim is now a ghost
    long long lost = 1;  // the completion that triggered the kill dies too
    for (std::int32_t i = 0; i < ntasks; ++i) {
      if (node[i] != nd) continue;
      if (completed[i]) {
        // Output already reached its remote consumers; the replacement still
        // re-executes it (redo: duplicates dropped at the receivers).
        completed[i] = 0;
        redo[i] = 1;
        --done;
        ++lost;
      }
      npred[i] = graph.num_predecessors(i);
      ready_time[i] = restart.t_restart;
      ++res.tasks_reexecuted;
    }
    res.tasks_lost += lost;
    // Frames the victim had been shipped before dying; survivors keep them
    // in their SentTileLogs and replay at re-wire.
    for (std::int32_t p = 0; p < ntasks; ++p) {
      if (!completed[p] || node[p] == nd) continue;
      for (std::int32_t s : graph.successors(p)) {
        if (node[s] == nd) {
          restart.replay.push_back(p);
          break;
        }
      }
    }
    // The replacement process starts with fresh resources and arms no
    // further chaos actions.
    idle[nd] = opts.platform.cores_per_node;
    idle_accel[nd] = naccel;
    comm_debt[nd] = 0.0;
    ready[nd] = {};
    ready_upd[nd] = {};
    if (opts.trace != nullptr) {
      free_units[nd].clear();
      for (int c = cores + naccel; c-- > 0;) free_units[nd].push_back(c);
    }
    armed[nd].clear();
  };

  // The replacement joins at t_restart: survivors replay the victim's
  // inbound history, deliveries the death window starved get relayed down
  // the victim's subtrees, and the partition's roots restart.
  const auto process_restart = [&]() {
    const int vic = restart.victim;
    now = restart.t_restart;
    for (std::int32_t p : restart.replay) {
      consumer_nodes_of(p, cons);
      double arr;
      if (opts.broadcast == BroadcastKind::Binomial) {
        const int g = static_cast<int>(cons.size()) + 1;
        const int vv =
            1 + static_cast<int>(std::lower_bound(cons.begin(), cons.end(),
                                                  vic) -
                                 cons.begin());
        // Each frame re-arrives from the sender the plan used originally:
        // the victim's parent in p's broadcast tree.
        const int parent = vv - (vv & -vv);
        arr = charge_edge(parent == 0 ? node[p]
                                      : cons[static_cast<std::size_t>(parent -
                                                                      1)],
                          vic, restart.t_restart);
        ++res.messages_replayed;
        // The replacement relays the replayed frame to its tree children,
        // which already hold it and drop the duplicate.
        for_each_binomial_child(vv, g, [&](int c) {
          charge_edge(vic, cons[static_cast<std::size_t>(c - 1)], arr);
          ++res.messages_resent;
        });
      } else {
        arr = charge_edge(node[p], vic, restart.t_restart);
        ++res.messages_replayed;
      }
      for (std::int32_t s : graph.successors(p)) {
        if (node[s] != vic) continue;
        ready_time[s] = std::max(ready_time[s], arr);
        if (--npred[s] == 0) push_event(ready_time[s], s, false);
      }
    }
    for (std::int32_t p : restart.deferred) {
      consumer_nodes_of(p, cons);
      if (opts.broadcast == BroadcastKind::Binomial) {
        const int g = static_cast<int>(cons.size()) + 1;
        const int vv =
            1 + static_cast<int>(std::lower_bound(cons.begin(), cons.end(),
                                                  vic) -
                                 cons.begin());
        const auto node_at = [&](int v) -> int {
          return v == 0 ? node[p] : cons[static_cast<std::size_t>(v - 1)];
        };
        const int parent = vv - (vv & -vv);
        std::vector<double> arr_v(static_cast<std::size_t>(g), 0.0);
        std::vector<char> in_sub(static_cast<std::size_t>(g), 0);
        in_sub[vv] = 1;
        arr_v[vv] = charge_edge(node_at(parent), vic, restart.t_restart);
        ++res.messages_replayed;
        // Children have higher virtual indices than their parent, so one
        // ascending scan visits the subtree parents-first.
        for (int v = vv; v < g; ++v) {
          if (!in_sub[v]) continue;
          for_each_binomial_child(v, g, [&](int c) {
            in_sub[c] = 1;
            arr_v[c] = charge_edge(node_at(v), node_at(c), arr_v[v]);
          });
        }
        for (std::int32_t s : graph.successors(p)) {
          const std::int32_t sn = node[s];
          if (sn == node[p]) continue;
          const int v =
              1 + static_cast<int>(std::lower_bound(cons.begin(), cons.end(),
                                                    sn) -
                                   cons.begin());
          if (!in_sub[v]) continue;
          ready_time[s] = std::max(ready_time[s], arr_v[v]);
          if (--npred[s] == 0) push_event(ready_time[s], s, false);
        }
      } else {
        const double arr = charge_edge(node[p], vic, restart.t_restart);
        ++res.messages_replayed;
        for (std::int32_t s : graph.successors(p)) {
          if (node[s] != vic) continue;
          ready_time[s] = std::max(ready_time[s], arr);
          if (--npred[s] == 0) push_event(ready_time[s], s, false);
        }
      }
    }
    for (std::int32_t i = 0; i < ntasks; ++i) {
      if (node[i] != vic || graph.num_predecessors(i) != 0) continue;
      push_event(ready_time[i], i, false);
    }
    restart.victim = -1;
  };

  while (!events.empty() || (faulty && restart.victim >= 0)) {
    if (faulty && restart.victim >= 0 &&
        (events.empty() || restart.t_restart <= events.top().time)) {
      process_restart();
      continue;
    }
    const Event ev = events.top();
    events.pop();
    now = ev.time;
    const int nd = node[ev.task];
    // Events stamped by a dead incarnation of their node are ghosts: the
    // kill rolled their effects back.
    if (faulty && evgen[ev.task] != gen[nd]) continue;
    if (!ev.is_completion) {
      if (accel_ok[ev.task])
        ready_upd[nd].push({depth[ev.task], ev.task});
      else
        ready[nd].push({depth[ev.task], ev.task});
      dispatch(nd);
      continue;
    }

    // Chaos triggers fire on the node's k-th local completion, like the
    // runtime's on_complete hook; a kill discards the completion itself.
    if (faulty && !armed[nd].empty()) {
      const long long k = ++completions_on[nd];
      bool killed = false;
      for (ArmedAction& aa : armed[nd]) {
        if (aa.fired || aa.a.at_task != k) continue;
        aa.fired = true;
        if (aa.a.kind == fault::FaultKind::KillRank) {
          do_kill(nd);
          killed = true;
          break;
        }
        ++res.faults_injected;
        const double until =
            now + (aa.a.kind == fault::FaultKind::DelayLink
                       ? aa.a.delay_seconds
                       : opts.fault_restart_seconds);
        link_blocks.push_back({nd, aa.a.peer, until});
        if (aa.a.kind == fault::FaultKind::DropLink)
          link_blocks.push_back({aa.a.peer, nd, until});  // severed both ways
      }
      if (killed) continue;
    }

    // Task completion: free the resource, release successors.
    ++done;
    if (resource[ev.task])
      ++idle_accel[nd];
    else
      ++idle[nd];
    if (opts.trace != nullptr) free_units[nd].push_back(unit_of[ev.task]);
    if (faulty && redo[ev.task]) {
      // Re-execution of rolled-back work whose output already reached every
      // remote consumer before the kill: the replacement re-posts (direct
      // tree children only — receivers drop the duplicate without
      // forwarding) and only victim-local successors are gated on it.
      redo[ev.task] = 0;
      completed[ev.task] = 1;
      consumer_nodes_of(ev.task, cons);
      if (!cons.empty()) {
        if (opts.broadcast == BroadcastKind::Binomial) {
          const int g = static_cast<int>(cons.size()) + 1;
          for_each_binomial_child(0, g, [&](int c) {
            charge_edge(nd, cons[static_cast<std::size_t>(c - 1)], now);
            ++res.messages_resent;
          });
        } else {
          for (std::int32_t cn : cons) {
            charge_edge(nd, cn, now);
            ++res.messages_resent;
          }
        }
      }
      for (std::int32_t s : graph.successors(ev.task)) {
        if (node[s] != nd) continue;
        ready_time[s] = std::max(ready_time[s], now);
        if (--npred[s] == 0) push_event(ready_time[s], s, false);
      }
      dispatch(nd);
      continue;
    }
    if (faulty) completed[ev.task] = 1;
    // While a death window is open, deliveries into the victim (and, under
    // Binomial, through it to its subtree) defer to the restart: the frame
    // is dropped at the dead peer but logged, and the replacement relays it
    // after replay.
    const bool window = faulty && restart.victim >= 0;
    bool any_deferred = false;
    if (opts.broadcast == BroadcastKind::Binomial) {
      // Pre-schedule the whole broadcast tree: collect the distinct
      // consumer nodes (ascending, CommPlan's group order), then walk
      // parents in tree order so no edge starts before its parent's
      // arrival; each parent's sends still serialize on its NIC.
      for (std::int32_t s : graph.successors(ev.task)) {
        const int sn = node[s];
        if (sn != nd && arrival[sn] < 0.0) {
          arrival[sn] = 0.0;
          touched.push_back(sn);
        }
      }
      std::sort(touched.begin(), touched.end());
      const int g = static_cast<int>(touched.size()) + 1;
      const auto node_at = [&](int v) -> int {
        return v == 0 ? nd : touched[static_cast<std::size_t>(v - 1)];
      };
      if (window) {
        int vv = -1;
        for (int v = 1; v < g; ++v)
          if (node_at(v) == restart.victim) {
            vv = v;
            break;
          }
        if (vv > 0) {
          // The victim heads a subtree of this broadcast: defer its node
          // set's deliveries to the restart.
          any_deferred = true;
          restart.deferred.push_back(ev.task);
          std::vector<char> in_sub(static_cast<std::size_t>(g), 0);
          in_sub[vv] = 1;
          for (int v = vv; v < g; ++v) {
            if (!in_sub[v]) continue;
            def_mask[node_at(v)] = 1;
            for_each_binomial_child(v, g, [&](int c) { in_sub[c] = 1; });
          }
        }
      }
      for (int v = 0; v < g; ++v) {
        if (any_deferred && def_mask[node_at(v)]) continue;
        const double avail = v == 0 ? now : arrival[node_at(v)];
        for_each_binomial_child(v, g, [&](int c) {
          if (any_deferred && def_mask[node_at(c)]) return;
          arrival[node_at(c)] = charge_edge(node_at(v), node_at(c), avail);
        });
      }
    }
    for (std::int32_t s : graph.successors(ev.task)) {
      const int sn = node[s];
      if (window && sn == restart.victim && !def_mask[sn]) {
        // Eager reaches here with no pre-scheduled tree: defer the
        // victim's (sole) deferred delivery the same way.
        any_deferred = true;
        def_mask[sn] = 1;
        restart.deferred.push_back(ev.task);
      }
      if (any_deferred && def_mask[sn]) continue;  // held until the restart
      double avail = now;
      if (sn != nd) {
        if (arrival[sn] < 0.0) {  // Eager: lazy per-dest dedup
          arrival[sn] = charge_edge(nd, sn, now);
          touched.push_back(sn);
        }
        avail = arrival[sn];
      }
      ready_time[s] = std::max(ready_time[s], avail);
      if (--npred[s] == 0)
        push_event(ready_time[s], s, /*completion=*/false);
    }
    if (any_deferred) {
      for (std::int32_t t : touched) def_mask[t] = 0;
      def_mask[restart.victim] = 0;
    }
    for (std::int32_t t : touched) arrival[t] = -1.0;
    touched.clear();
    dispatch(nd);
  }

  HQR_CHECK(done == ntasks, "simulation deadlock: " << done << " of "
                                                    << ntasks << " completed");

  res.seconds = now;
  res.useful_gflop = qr_useful_flops(m, n) / 1e9;
  res.gflops = res.seconds > 0 ? res.useful_gflop / res.seconds : 0.0;
  res.peak_fraction = res.gflops / opts.platform.theoretical_peak_gflops();
  double total_busy = 0.0;
  res.node_busy_fraction.reserve(busy.size());
  const double node_capacity = res.seconds * opts.platform.cores_per_node;
  for (double b : busy) {
    total_busy += b;
    res.node_busy_fraction.push_back(node_capacity > 0 ? b / node_capacity
                                                       : 0.0);
  }
  const double capacity = node_capacity * nnodes;
  res.core_utilization = capacity > 0 ? total_busy / capacity : 0.0;
  if (naccel > 0) {
    double total_accel = 0.0;
    for (double b : busy_accel) total_accel += b;
    const double accel_capacity = res.seconds * naccel * nnodes;
    res.accel_utilization =
        accel_capacity > 0 ? total_accel / accel_capacity : 0.0;
  }
  res.critical_path_seconds = graph.critical_path([&](const KernelOp& op) {
    return opts.platform.kernel_seconds(op.type, opts.b);
  });

  if (opts.metrics != nullptr) {
    obs::MetricsRegistry& m = *opts.metrics;
    m.counter("sim.tasks").add(res.tasks);
    m.counter("sim.messages").add(res.messages);
    m.counter("sim.bytes").add(
        static_cast<long long>(res.volume_gbytes * 1e9 + 0.5));
    m.gauge("sim.makespan_seconds").add(res.seconds);
    m.gauge("sim.comm_cpu_charged_seconds").add(res.comm_cpu_charged_seconds);
    m.gauge("sim.comm_cpu_stolen_seconds").add(res.comm_cpu_stolen_seconds);
    double nic_send = 0.0, nic_recv = 0.0;
    for (double s : res.nic_send_busy_seconds) nic_send += s;
    for (double s : res.nic_recv_busy_seconds) nic_recv += s;
    m.gauge("sim.nic_send_busy_seconds").add(nic_send);
    m.gauge("sim.nic_recv_busy_seconds").add(nic_recv);
    for (int t = 0; t < kKernelTypeCount; ++t) {
      if (res.tasks_by_kernel[t] == 0) continue;
      const std::string kname = kernel_name(static_cast<KernelType>(t));
      m.counter("sim.tasks." + kname).add(res.tasks_by_kernel[t]);
      m.gauge("sim.task_seconds." + kname).add(res.seconds_by_kernel[t]);
    }
    if (faulty) {
      m.counter("sim.fault.injected").add(res.faults_injected);
      m.counter("sim.fault.tasks_lost").add(res.tasks_lost);
      m.counter("sim.fault.tasks_reexecuted").add(res.tasks_reexecuted);
      m.counter("sim.fault.messages_replayed").add(res.messages_replayed);
      m.counter("sim.fault.messages_resent").add(res.messages_resent);
      m.gauge("sim.fault.kill_seconds").add(res.kill_seconds);
    }
  }
  return res;
}

}  // namespace hqr
