#include "simcluster/simulator.hpp"

#include <algorithm>
#include <queue>
#include <string>

#include "common/check.hpp"
#include "dag/partition.hpp"

namespace hqr {
namespace {

// task_node (the owner-computes task->node map) lives in dag/partition.hpp,
// shared with the real distributed runtime so both place every task on the
// same node by construction.

struct Event {
  double time;
  std::int32_t task;
  bool is_completion;  // false: data-ready

  bool operator>(const Event& o) const {
    if (time != o.time) return time > o.time;
    if (is_completion != o.is_completion)
      return is_completion;  // ready events before completions at equal time
    return task > o.task;
  }
};

struct ReadyEntry {
  double priority;
  std::int32_t task;
  bool operator<(const ReadyEntry& o) const {
    if (priority != o.priority) return priority < o.priority;
    return task > o.task;
  }
};

}  // namespace

double qr_useful_flops(long long m, long long n) {
  const double dm = static_cast<double>(m), dn = static_cast<double>(n);
  return 2.0 * dm * dn * dn - 2.0 * dn * dn * dn / 3.0;
}

SimResult simulate_qr(const TaskGraph& graph, const Distribution& dist,
                      long long m, long long n, const SimOptions& opts) {
  const std::int32_t ntasks = graph.size();
  const int nnodes = dist.nodes();
  const double tile_bytes =
      static_cast<double>(opts.b) * opts.b * sizeof(double);

  // Static per-task data.
  const int naccel = opts.platform.accels_per_node;
  std::vector<std::int32_t> node(static_cast<std::size_t>(ntasks));
  std::vector<float> dur(static_cast<std::size_t>(ntasks));
  std::vector<float> dur_accel;
  std::vector<char> accel_ok(static_cast<std::size_t>(ntasks), 0);
  if (naccel > 0) dur_accel.assign(static_cast<std::size_t>(ntasks), 0.0f);
  for (std::int32_t i = 0; i < ntasks; ++i) {
    const KernelOp& op = graph.op(i);
    node[i] = static_cast<std::int32_t>(task_node(op, dist));
    dur[i] = static_cast<float>(opts.platform.kernel_seconds(op.type, opts.b));
    if (naccel > 0 && opts.platform.accel_eligible(op.type)) {
      accel_ok[i] = 1;
      dur_accel[i] = static_cast<float>(
          opts.platform.accel_kernel_seconds(op.type, opts.b));
    }
  }

  // Priorities: critical-path depth in seconds (or FIFO).
  std::vector<double> depth;
  if (opts.priority_scheduling) {
    graph.critical_path(
        [&](const KernelOp& op) {
          return opts.platform.kernel_seconds(op.type, opts.b);
        },
        &depth);
  } else {
    depth.assign(static_cast<std::size_t>(ntasks), 0.0);
    for (std::int32_t i = 0; i < ntasks; ++i)
      depth[i] = static_cast<double>(ntasks - i);
  }

  std::vector<double> ready_time(static_cast<std::size_t>(ntasks), 0.0);
  std::vector<std::int32_t> npred(static_cast<std::size_t>(ntasks));
  for (std::int32_t i = 0; i < ntasks; ++i)
    npred[i] = graph.num_predecessors(i);

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  // Two ready pools per node: CPU-only tasks (factor kernels) and
  // accelerator-eligible updates (which cores may also take).
  std::vector<std::priority_queue<ReadyEntry>> ready(
      static_cast<std::size_t>(nnodes));
  std::vector<std::priority_queue<ReadyEntry>> ready_upd(
      static_cast<std::size_t>(nnodes));
  std::vector<int> idle(static_cast<std::size_t>(nnodes),
                        opts.platform.cores_per_node);
  std::vector<int> idle_accel(static_cast<std::size_t>(nnodes), naccel);
  std::vector<double> busy(static_cast<std::size_t>(nnodes), 0.0);
  std::vector<double> busy_accel(static_cast<std::size_t>(nnodes), 0.0);
  // Which resource a running task occupies (0 = core, 1 = accelerator).
  std::vector<char> resource(static_cast<std::size_t>(ntasks), 0);

  // Tracing needs stable (node, core) lanes, so keep a free-id pool per node
  // (cores: 0..C-1; accelerators: C..C+A-1) and remember each running
  // task's unit to return it on completion.
  const int cores = opts.platform.cores_per_node;
  std::vector<std::vector<std::int32_t>> free_units;
  std::vector<std::int32_t> unit_of;
  if (opts.trace != nullptr) {
    opts.trace->set_labels("node", "core");
    free_units.resize(static_cast<std::size_t>(nnodes));
    for (int nd = 0; nd < nnodes; ++nd) {
      // pop_back yields the lowest id first.
      for (int c = cores + naccel; c-- > 0;)
        free_units[nd].push_back(c);
    }
    unit_of.assign(static_cast<std::size_t>(ntasks), 0);
  }
  auto claim_unit = [&](int nd, bool accel) -> std::int32_t {
    auto& pool = free_units[static_cast<std::size_t>(nd)];
    for (std::size_t i = pool.size(); i-- > 0;) {
      const bool is_accel = pool[i] >= cores;
      if (is_accel == accel) {
        const std::int32_t u = pool[i];
        pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(i));
        return u;
      }
    }
    HQR_CHECK(false, "no free " << (accel ? "accelerator" : "core")
                                << " on node " << nd);
  };

  SimResult res;
  res.tasks = ntasks;

  for (std::int32_t r : graph.roots())
    events.push({0.0, r, /*is_completion=*/false});

  double now = 0.0;
  // Scratch for per-producer broadcast dedup: arrival time per dest node.
  std::vector<double> arrival(static_cast<std::size_t>(nnodes), -1.0);
  std::vector<std::int32_t> touched;
  touched.reserve(16);
  // Per-node NIC occupancy (one send channel, one receive channel).
  std::vector<double> send_free(static_cast<std::size_t>(nnodes), 0.0);
  std::vector<double> recv_free(static_cast<std::size_t>(nnodes), 0.0);
  res.nic_send_busy_seconds.assign(static_cast<std::size_t>(nnodes), 0.0);
  res.nic_recv_busy_seconds.assign(static_cast<std::size_t>(nnodes), 0.0);
  res.node_messages_sent.assign(static_cast<std::size_t>(nnodes), 0);
  res.node_messages_recv.assign(static_cast<std::size_t>(nnodes), 0);
  const double wire = tile_bytes / opts.platform.bandwidth;
  // Outstanding communication-thread CPU debt per node (seconds); drained by
  // stretching running kernels, capped at one core's share of node time.
  std::vector<double> comm_debt(static_cast<std::size_t>(nnodes), 0.0);
  const double msg_cpu =
      opts.comm_cpu_per_msg + tile_bytes * opts.comm_cpu_per_byte;

  // Schedule one tile transfer from `from` to `to` starting no earlier than
  // `avail`; charges NICs, counters and comm-thread CPU on both endpoints
  // and returns the arrival time.
  auto charge_edge = [&](int from, int to, double avail) {
    double arr;
    if (opts.nic_contention) {
      const double start = std::max({avail, send_free[from], recv_free[to]});
      arr = start + opts.platform.latency + wire;
      send_free[from] = start + wire;
      recv_free[to] = start + wire;
    } else {
      arr = avail + opts.platform.transfer_seconds(tile_bytes);
    }
    ++res.messages;
    ++res.node_messages_sent[static_cast<std::size_t>(from)];
    ++res.node_messages_recv[static_cast<std::size_t>(to)];
    res.volume_gbytes += tile_bytes / 1e9;
    // Wire time occupies both endpoints' NICs whether or not the contention
    // model serializes it.
    res.nic_send_busy_seconds[static_cast<std::size_t>(from)] += wire;
    res.nic_recv_busy_seconds[static_cast<std::size_t>(to)] += wire;
    comm_debt[static_cast<std::size_t>(from)] += msg_cpu;  // pack + progress
    comm_debt[static_cast<std::size_t>(to)] += msg_cpu;    // match + unpack
    res.comm_cpu_charged_seconds += 2.0 * msg_cpu;
    return arr;
  };

  auto record = [&](std::int32_t t, int nd, double start, double finish,
                    bool accel) {
    res.tasks_by_kernel[kernel_type_index(graph.op(t).type)] += 1;
    res.seconds_by_kernel[kernel_type_index(graph.op(t).type)] +=
        finish - start;
    if (opts.trace == nullptr) return;
    const std::int32_t u = claim_unit(nd, accel);
    unit_of[t] = u;
    const KernelOp& op = graph.op(t);
    opts.trace->add({t, nd, u, op.type, accel, op.row, op.piv, op.k, op.j,
                     start, finish});
  };

  auto dispatch = [&](int nd) {
    // Accelerators drain the update pool first (they run those faster).
    while (idle_accel[nd] > 0 && !ready_upd[nd].empty()) {
      const std::int32_t t = ready_upd[nd].top().task;
      ready_upd[nd].pop();
      --idle_accel[nd];
      resource[t] = 1;
      const double d = dur_accel[t];
      const double finish = now + d;
      busy_accel[nd] += d;
      record(t, nd, now, finish, /*accel=*/true);
      events.push({finish, t, /*is_completion=*/true});
    }
    // Cores take the highest-priority task across both pools.
    while (idle[nd] > 0) {
      std::priority_queue<ReadyEntry>* q = nullptr;
      if (!ready[nd].empty()) q = &ready[nd];
      if (!ready_upd[nd].empty() &&
          (!q || ready_upd[nd].top().priority > q->top().priority))
        q = &ready_upd[nd];
      if (!q) break;
      const std::int32_t t = q->top().task;
      q->pop();
      --idle[nd];
      resource[t] = 0;
      double d = dur[t];
      if (opts.comm_thread_steal && comm_debt[nd] > 0.0) {
        // The communication thread steals at most one core's worth of time
        // from the running kernels.
        const double steal = std::min(
            comm_debt[nd], d / opts.platform.cores_per_node);
        comm_debt[nd] -= steal;
        res.comm_cpu_stolen_seconds += steal;
        d += steal;
      }
      const double finish = now + d;
      busy[nd] += d;
      record(t, nd, now, finish, /*accel=*/false);
      events.push({finish, t, /*is_completion=*/true});
    }
  };

  long long done = 0;
  while (!events.empty()) {
    const Event ev = events.top();
    events.pop();
    now = ev.time;
    const int nd = node[ev.task];
    if (!ev.is_completion) {
      if (accel_ok[ev.task])
        ready_upd[nd].push({depth[ev.task], ev.task});
      else
        ready[nd].push({depth[ev.task], ev.task});
      dispatch(nd);
      continue;
    }

    // Task completion: free the resource, release successors.
    ++done;
    if (resource[ev.task])
      ++idle_accel[nd];
    else
      ++idle[nd];
    if (opts.trace != nullptr) free_units[nd].push_back(unit_of[ev.task]);
    if (opts.broadcast == BroadcastKind::Binomial) {
      // Pre-schedule the whole broadcast tree: collect the distinct
      // consumer nodes (ascending, CommPlan's group order), then walk
      // parents in tree order so no edge starts before its parent's
      // arrival; each parent's sends still serialize on its NIC.
      for (std::int32_t s : graph.successors(ev.task)) {
        const int sn = node[s];
        if (sn != nd && arrival[sn] < 0.0) {
          arrival[sn] = 0.0;
          touched.push_back(sn);
        }
      }
      std::sort(touched.begin(), touched.end());
      const int g = static_cast<int>(touched.size()) + 1;
      const auto node_at = [&](int v) -> int {
        return v == 0 ? nd : touched[static_cast<std::size_t>(v - 1)];
      };
      for (int v = 0; v < g; ++v) {
        const double avail = v == 0 ? now : arrival[node_at(v)];
        for_each_binomial_child(v, g, [&](int c) {
          arrival[node_at(c)] = charge_edge(node_at(v), node_at(c), avail);
        });
      }
    }
    for (std::int32_t s : graph.successors(ev.task)) {
      const int sn = node[s];
      double avail = now;
      if (sn != nd) {
        if (arrival[sn] < 0.0) {  // Eager: lazy per-dest dedup
          arrival[sn] = charge_edge(nd, sn, now);
          touched.push_back(sn);
        }
        avail = arrival[sn];
      }
      ready_time[s] = std::max(ready_time[s], avail);
      if (--npred[s] == 0)
        events.push({ready_time[s], s, /*is_completion=*/false});
    }
    for (std::int32_t t : touched) arrival[t] = -1.0;
    touched.clear();
    dispatch(nd);
  }

  HQR_CHECK(done == ntasks, "simulation deadlock: " << done << " of "
                                                    << ntasks << " completed");

  res.seconds = now;
  res.useful_gflop = qr_useful_flops(m, n) / 1e9;
  res.gflops = res.seconds > 0 ? res.useful_gflop / res.seconds : 0.0;
  res.peak_fraction = res.gflops / opts.platform.theoretical_peak_gflops();
  double total_busy = 0.0;
  res.node_busy_fraction.reserve(busy.size());
  const double node_capacity = res.seconds * opts.platform.cores_per_node;
  for (double b : busy) {
    total_busy += b;
    res.node_busy_fraction.push_back(node_capacity > 0 ? b / node_capacity
                                                       : 0.0);
  }
  const double capacity = node_capacity * nnodes;
  res.core_utilization = capacity > 0 ? total_busy / capacity : 0.0;
  if (naccel > 0) {
    double total_accel = 0.0;
    for (double b : busy_accel) total_accel += b;
    const double accel_capacity = res.seconds * naccel * nnodes;
    res.accel_utilization =
        accel_capacity > 0 ? total_accel / accel_capacity : 0.0;
  }
  res.critical_path_seconds = graph.critical_path([&](const KernelOp& op) {
    return opts.platform.kernel_seconds(op.type, opts.b);
  });

  if (opts.metrics != nullptr) {
    obs::MetricsRegistry& m = *opts.metrics;
    m.counter("sim.tasks").add(res.tasks);
    m.counter("sim.messages").add(res.messages);
    m.counter("sim.bytes").add(
        static_cast<long long>(res.volume_gbytes * 1e9 + 0.5));
    m.gauge("sim.makespan_seconds").add(res.seconds);
    m.gauge("sim.comm_cpu_charged_seconds").add(res.comm_cpu_charged_seconds);
    m.gauge("sim.comm_cpu_stolen_seconds").add(res.comm_cpu_stolen_seconds);
    double nic_send = 0.0, nic_recv = 0.0;
    for (double s : res.nic_send_busy_seconds) nic_send += s;
    for (double s : res.nic_recv_busy_seconds) nic_recv += s;
    m.gauge("sim.nic_send_busy_seconds").add(nic_send);
    m.gauge("sim.nic_recv_busy_seconds").add(nic_recv);
    for (int t = 0; t < kKernelTypeCount; ++t) {
      if (res.tasks_by_kernel[t] == 0) continue;
      const std::string kname = kernel_name(static_cast<KernelType>(t));
      m.counter("sim.tasks." + kname).add(res.tasks_by_kernel[t]);
      m.gauge("sim.task_seconds." + kname).add(res.seconds_by_kernel[t]);
    }
  }
  return res;
}

}  // namespace hqr
