// Discrete-event simulation of a tile QR factorization on a cluster of
// multicore nodes — the reproduction substrate for the paper's Figures 6-9.
//
// Model:
//  * every task executes on the node owning the tile it zeroes/updates
//    (owner-computes): GEQRT/UNMQR on owner(row, k/j), the pencil kernels on
//    the victim row's tile owner;
//  * each node runs `cores_per_node` cores; ready tasks are dispatched to
//    idle cores by priority (critical-path depth), mirroring the DAGuE
//    scheduler;
//  * a dependency crossing nodes costs one message of one tile
//    (latency + b^2*8/bandwidth); a producer's output is sent to each
//    consuming node once (broadcast dedup); each node has one send and one
//    receive channel, so heavy traffic serializes at the NICs (this is what
//    penalizes distribution-unaware algorithms, §V-C);
//  * kernel durations come from per-kernel GFlop/s rates calibrated to the
//    paper's measured dTSMQR/dTTMQR numbers.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "dag/partition.hpp"
#include "dag/task_graph.hpp"
#include "dist/distribution.hpp"
#include "fault/plan.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "simcluster/platform.hpp"

namespace hqr {

// Execution traces of simulated runs use the unified observability layer
// (obs/trace.hpp): one TraceEvent per task with lane = node, sub = core (or
// accelerator, offset past the cores). Export to CSV or Chrome/Perfetto
// JSON through TraceRecorder; analyze with obs/analyzer.hpp.
using TraceEvent = obs::TraceEvent;
using SimTrace = obs::TraceRecorder;

struct SimOptions {
  Platform platform;
  int b = 280;                     // tile size (elements)
  bool priority_scheduling = true; // false: FIFO (scheduler ablation)
  // Serialize transfers on per-node NICs (one send + one receive channel
  // per node). Without it bandwidth is infinite and only per-message
  // pipeline delay remains (network-model ablation).
  bool nic_contention = true;
  // Model the DAGuE communication thread competing with compute threads for
  // cores (§V-A: "an additional communication thread ... allowed to run on
  // any core"). Every message charges CPU time (packing, matching, MPI
  // progress) on both endpoints; the steal rate is capped at one core's
  // worth, and it is what penalizes distribution-unaware algorithms whose
  // traffic is large (§V-C on [BBD+10]).
  bool comm_thread_steal = true;
  double comm_cpu_per_msg = 5e-6;       // fixed per-message CPU cost (s)
  double comm_cpu_per_byte = 1.0 / 1e9; // pack/unpack cost (s per byte)
  // How a producer's output reaches its consuming nodes (dag/partition.hpp).
  // Eager serializes every transfer on the producer's send NIC; Binomial
  // forwards through intermediate consumers (same total message count, the
  // sends redistribute across the broadcast tree). Must match the
  // distributed runtime's DistOptions::broadcast for per-rank
  // cross-validation to hold.
  BroadcastKind broadcast = BroadcastKind::Eager;
  // Deterministic fault schedule, executed with the same logical triggers
  // as the distributed runtime (fault/plan.hpp: a node's k-th local task
  // completion). KillRank rolls the victim's completed-but-unconsumed work
  // back and models the recovery protocol: restart after
  // fault_restart_seconds, survivors replay every frame the victim was
  // sent, the replacement re-executes its whole partition and re-posts
  // (duplicates charged, dropped at receivers). DropLink/DelayLink block
  // the link's edges until repair/expiry. Empty = fault-free (bit-identical
  // to pre-fault builds).
  fault::FaultPlan fault_plan;
  // Death window: delay between a kill and the replacement joining
  // (launcher detection + fork + deterministic rebuild).
  double fault_restart_seconds = 0.05;
  // When non-null, receives one TraceEvent per executed task (use only for
  // runs small enough to hold the trace).
  SimTrace* trace = nullptr;
  // When non-null, receives simulator counters/histograms (sim.* names):
  // messages, bytes, NIC busy, comm-CPU steal, per-kernel task durations.
  obs::MetricsRegistry* metrics = nullptr;
};

struct SimResult {
  double seconds = 0.0;            // simulated makespan
  double gflops = 0.0;             // useful flops / makespan
  double useful_gflop = 0.0;       // 2MN^2 - 2/3 N^3, in GFlop
  double peak_fraction = 0.0;      // gflops / platform peak
  long long messages = 0;          // inter-node messages
  double volume_gbytes = 0.0;      // inter-node traffic
  double core_utilization = 0.0;   // busy time / (makespan * cores)
  double accel_utilization = 0.0;  // busy time / (makespan * accels), 0 if none
  double critical_path_seconds = 0.0;  // zero-communication lower bound
  long long tasks = 0;
  std::vector<double> node_busy_fraction;  // per-node busy / makespan*cores

  // Observability breakdowns (always filled; simulated time is free).
  std::array<long long, kKernelTypeCount> tasks_by_kernel{};
  std::array<double, kKernelTypeCount> seconds_by_kernel{};
  std::vector<double> nic_send_busy_seconds;  // per-node send-channel busy
  std::vector<double> nic_recv_busy_seconds;  // per-node receive-channel busy
  // Per-node message counts; totals equal `messages` and, by construction,
  // CommPlan::sent_by/received_by under the same BroadcastKind.
  std::vector<long long> node_messages_sent;
  std::vector<long long> node_messages_recv;
  double comm_cpu_charged_seconds = 0.0;  // comm-thread CPU debt incurred
  double comm_cpu_stolen_seconds = 0.0;   // debt actually drained from cores

  // Fault model (SimOptions::fault_plan; all zero on fault-free runs).
  int faults_injected = 0;
  double kill_seconds = 0.0;       // simulated instant of the (last) kill
  long long tasks_lost = 0;        // victim completions the kill discarded
  // Victim-partition tasks the replacement re-executes — deterministic:
  // equals CommPlan::tasks_on(victim) and the replacement's measured task
  // count in the real runtime (the cross-validation invariant).
  long long tasks_reexecuted = 0;
  // Frames survivors re-ship from their SentTileLogs (includes deliveries
  // the death window deferred); bounded by CommPlan::received_by(victim).
  long long messages_replayed = 0;
  // Duplicate frames the replacement re-posts while re-executing (dropped
  // at the receivers); bounded by CommPlan::sent_by(victim).
  long long messages_resent = 0;
};

// Simulates the execution of `graph` (built for an mt x nt tile grid) under
// `dist`; m and n are the *element* dimensions used for the useful-flops
// figure of merit.
SimResult simulate_qr(const TaskGraph& graph, const Distribution& dist,
                      long long m, long long n, const SimOptions& opts);

// Useful flops of an m x n QR factorization (m >= n): 2mn^2 - 2n^3/3.
double qr_useful_flops(long long m, long long n);

}  // namespace hqr
