#include "trees/elimination.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace hqr {

KernelList expand_to_kernels(const EliminationList& list, int mt, int nt) {
  HQR_CHECK(mt >= 1 && nt >= 1, "empty tile grid");
  const int kmax = std::min(mt, nt);
  KernelList out;
  // Generous reserve: each elimination yields <= 2 GEQRT + 1 factor kernel,
  // each followed by <= nt updates.
  out.reserve(list.size() * 3 * static_cast<std::size_t>(nt));

  // geqrt_done[k * mt + r]: GEQRT(r, k) already emitted.
  std::vector<char> geqrt_done(static_cast<std::size_t>(mt) * kmax, 0);

  auto emit_geqrt = [&](int r, int k) {
    char& done = geqrt_done[static_cast<std::size_t>(k) * mt + r];
    if (done) return;
    done = 1;
    out.push_back({KernelType::GEQRT, r, r, k, -1});
    for (int j = k + 1; j < nt; ++j)
      out.push_back({KernelType::UNMQR, r, r, k, j});
  };

  for (const Elimination& e : list) {
    HQR_CHECK(e.k >= 0 && e.k < kmax && e.row > e.k && e.row < mt &&
                  e.piv >= e.k && e.piv < mt && e.piv != e.row,
              "malformed elimination (" << e.row << "," << e.piv << ","
                                        << e.k << ")");
    emit_geqrt(e.piv, e.k);
    if (e.ts) {
      out.push_back({KernelType::TSQRT, e.row, e.piv, e.k, -1});
      for (int j = e.k + 1; j < nt; ++j)
        out.push_back({KernelType::TSMQR, e.row, e.piv, e.k, j});
    } else {
      emit_geqrt(e.row, e.k);
      out.push_back({KernelType::TTQRT, e.row, e.piv, e.k, -1});
      for (int j = e.k + 1; j < nt; ++j)
        out.push_back({KernelType::TTMQR, e.row, e.piv, e.k, j});
    }
  }

  // Panels whose diagonal tile was never used as a killer (e.g. the last
  // panel of a square matrix) still need their GEQRT to finish R.
  for (int k = 0; k < kmax; ++k) emit_geqrt(k, k);

  return out;
}

long long total_weight(const KernelList& kernels) {
  long long w = 0;
  for (const KernelOp& op : kernels) w += kernel_weight(op.type);
  return w;
}

KernelList factor_kernels_only(const KernelList& kernels) {
  KernelList out;
  for (const KernelOp& op : kernels)
    if (is_factor_kernel(op.type)) out.push_back(op);
  return out;
}

}  // namespace hqr
