// Elimination lists: the complete characterization of a tiled QR algorithm
// (paper §II). An algorithm *is* its ordered list of eliminations
// elim(i, killer(i,k), k); everything else (kernels, updates, DAG) derives
// from it mechanically.
#pragma once

#include <vector>

#include "kernels/weights.hpp"

namespace hqr {

// One orthogonal transformation zeroing tile (row, k) using row piv.
struct Elimination {
  int row;  // i   — the row whose tile (i, k) is zeroed
  int piv;  // killer(i, k)
  int k;    // panel index
  bool ts;  // true: TS kernels (victim square), false: TT kernels

  friend bool operator==(const Elimination&, const Elimination&) = default;
};

using EliminationList = std::vector<Elimination>;

// One tile kernel invocation. For GEQRT: (row=piv=r, j unused). For factor
// kernels TSQRT/TTQRT: j unused. For updates, j > k is the trailing column.
struct KernelOp {
  KernelType type;
  int row;  // victim row (or the GEQRT'd row)
  int piv;  // killer row (== row for GEQRT/UNMQR)
  int k;    // panel
  int j;    // trailing column for updates, -1 otherwise

  friend bool operator==(const KernelOp&, const KernelOp&) = default;
};

using KernelList = std::vector<KernelOp>;

// Expands an elimination list into the full sequentially-valid kernel list:
// GEQRT for every row that participates in a TT elimination or acts as a TS
// killer (lazily, before first such use), each factor kernel followed by its
// trailing updates on columns k+1 .. nt-1. Executing this list in order on a
// tiled matrix performs the factorization.
KernelList expand_to_kernels(const EliminationList& list, int mt, int nt);

// Sum of kernel_weight over a kernel list; equals 6 mt nt^2 - 2 nt^3 for any
// valid algorithm (paper §II invariant).
long long total_weight(const KernelList& kernels);

// Convenience: kills-only view (factor kernels) of a kernel list.
KernelList factor_kernels_only(const KernelList& kernels);

}  // namespace hqr
