#include "trees/hqr_tree.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"

namespace hqr {
namespace {

// Per-node geometry for panel k: local row ranges in node r's coordinates
// (global row g = r + lm * p).
struct NodePanel {
  bool active = false;
  int lt = 0;    // top tile local row (level 3)
  int last = 0;  // last local row
  int dloc = 0;  // local diagonal row: min(k, last)
};

NodePanel node_panel(int r, int k, int mt, int p) {
  NodePanel np;
  if (r >= mt) return np;
  const int last = (mt - 1 - r) / p;
  // Smallest lm with r + lm*p >= k.
  const int lt = std::max(0, (k - r + p - 1) / p);
  if (lt > last) return np;
  np.active = true;
  np.lt = lt;
  np.last = last;
  np.dloc = std::min(k, last);
  return np;
}

}  // namespace

std::string HqrConfig::describe() const {
  std::ostringstream os;
  os << "hqr(p=" << p << ", a=" << a << ", low=" << tree_name(low)
     << ", high=" << tree_name(high) << ", domino=" << (domino ? "on" : "off")
     << ")";
  return os.str();
}

EliminationList hqr_elimination_list(int mt, int nt, const HqrConfig& cfg) {
  HQR_CHECK(mt >= 1 && nt >= 1, "empty tile grid");
  HQR_CHECK(cfg.p >= 1 && cfg.a >= 1, "bad HQR parameters p=" << cfg.p
                                        << " a=" << cfg.a);
  const int p = cfg.p;
  const int a = cfg.a;
  const int kmax = std::min(mt, nt);
  EliminationList out;

  for (int k = 0; k < kmax; ++k) {
    std::vector<int> tops;  // global rows of the p top tiles, for the high tree
    for (int r = 0; r < p; ++r) {
      const NodePanel np = node_panel(r, k, mt, p);
      if (!np.active) continue;
      auto g = [&](int lm) { return r + lm * p; };
      tops.push_back(g(np.lt));

      // Level 0: TS chains. Domains are `a` consecutive local rows aligned
      // on multiples of a (absolute alignment, paper Fig. 5: with a = 2
      // "the killer is always the tile above it in the local view" — so a
      // top tile or a level-2 tile can be the TS killer of its domain).
      // Victims are the non-head domain rows strictly below the local
      // diagonal; the effective head of a domain clipped by the top tile
      // is the top tile itself.
      std::vector<int> heads;  // local rows of level-1 heads (below dloc)
      if (np.dloc < np.last) {
        const int d_first = np.lt / a;
        const int d_last = np.last / a;
        for (int d = d_first; d <= d_last; ++d) {
          const int head = std::max(np.lt, d * a);
          const int end = std::min(np.last, (d + 1) * a - 1);
          if (head > np.dloc && head <= end) heads.push_back(head);
          for (int lm = std::max(np.dloc, head) + 1; lm <= end; ++lm)
            out.push_back({g(lm), g(head), k, /*ts=*/true});
        }
      }

      if (cfg.domino) {
        // Low-level tree over {dloc} U heads, rooted at the local diagonal.
        std::vector<int> subset;
        subset.push_back(g(np.dloc));
        for (int h : heads) subset.push_back(g(h));
        for (const ReductionPair& pr : reduce_subset(cfg.low, subset))
          out.push_back({pr.victim, pr.killer, k, /*ts=*/false});
        // Coupling level: domino chain, each level-2 tile killed by the
        // local row directly above it. Listed bottom-up so each killer is
        // still alive at its use.
        for (int lm = np.dloc; lm > np.lt; --lm)
          out.push_back({g(lm), g(lm - 1), k, /*ts=*/false});
      } else {
        // No coupling level: one local tree over all rows [lt, dloc] plus
        // the domain heads, rooted at the top tile.
        std::vector<int> subset;
        for (int lm = np.lt; lm <= np.dloc; ++lm) subset.push_back(g(lm));
        for (int h : heads) subset.push_back(g(h));
        for (const ReductionPair& pr : reduce_subset(cfg.low, subset))
          out.push_back({pr.victim, pr.killer, k, /*ts=*/false});
      }
    }

    // High-level tree across the top tiles, rooted at the diagonal row k.
    std::sort(tops.begin(), tops.end());
    HQR_ASSERT(!tops.empty() && tops.front() == k,
               "high tree root must be the diagonal row");
    for (const ReductionPair& pr : reduce_subset(cfg.high, tops))
      out.push_back({pr.victim, pr.killer, k, /*ts=*/false});
  }
  return out;
}

int tile_level(int i, int k, int mt, const HqrConfig& cfg) {
  HQR_CHECK(i >= 0 && i < mt && k >= 0, "tile out of range");
  if (i < k) return -1;
  const int p = cfg.p;
  const int r = i % p;
  const int lm = i / p;
  const NodePanel np = node_panel(r, k, mt, p);
  HQR_ASSERT(np.active && lm >= np.lt && lm <= np.last, "inconsistent geometry");
  if (lm == np.lt) return 3;
  if (lm <= np.dloc) return 2;
  const int head = std::max(np.lt, (lm / cfg.a) * cfg.a);
  return lm == head ? 1 : 0;
}

HqrConfig slhd10_config(int mt, int nodes) {
  HQR_CHECK(nodes >= 1, "need at least one node");
  HqrConfig cfg;
  cfg.p = 1;
  cfg.a = std::max(1, (mt + nodes - 1) / nodes);
  cfg.low = TreeKind::Binary;
  cfg.high = TreeKind::Binary;  // irrelevant with p = 1
  cfg.domino = false;
  return cfg;
}

}  // namespace hqr
