// The hierarchical HQR elimination-list generator (paper §IV).
//
// Rows of the tile matrix are distributed round-robin over the p rows of the
// virtual cluster grid (2D block-cyclic awareness: for a p x q grid, the
// panel-column reduction only involves the p grid rows). Within node r and
// panel k (all indices in the node's *local* row coordinates lm, where the
// global row is g = r + lm * p):
//
//   level 3 (top tile):  the first local row lt with g >= k. The p top tiles
//                        are reduced across nodes by the HIGH-level tree,
//                        rooted at global row k.
//   level 2 (domino):    local rows in (lt, dloc], where dloc = min(k, last
//                        local row) is the local diagonal. Each is killed by
//                        the local row directly above it (the coupling
//                        level); the chain unlocks top-down as inter-node
//                        reductions of previous panels ripple (§IV-B).
//   level 1 (heads):     domain heads strictly below the local diagonal
//                        (domains of `a` consecutive local rows aligned on
//                        multiples of a, clipped at dloc+1), reduced by the
//                        LOW-level tree rooted at the local diagonal tile.
//   level 0 (TS):        remaining rows below the local diagonal, killed by
//                        their domain head through a flat TS chain.
//
// With the coupling level disabled, levels 2 and 1 merge: the low-level tree
// reduces all of (lt, dloc] plus the domain heads, rooted at the top tile.
#pragma once

#include <string>

#include "trees/elimination.hpp"
#include "trees/panel_trees.hpp"

namespace hqr {

struct HqrConfig {
  int p = 1;                           // virtual grid rows (clusters)
  int a = 1;                           // TS domain size (1 = no TS level)
  TreeKind low = TreeKind::Greedy;     // intra-node tree (TT kernels)
  TreeKind high = TreeKind::Fibonacci; // inter-node tree (TT kernels)
  bool domino = true;                  // coupling level (level-2 chain)

  std::string describe() const;
};

// Generates the full elimination list, panels in ascending order.
EliminationList hqr_elimination_list(int mt, int nt, const HqrConfig& cfg);

// Reduction level of tile (i, k) for i >= k (paper Figure 5): 3 = top tile,
// 2 = domino, 1 = domain head below the local diagonal, 0 = TS-killed.
// Returns -1 for tiles above the diagonal (i < k).
int tile_level(int i, int k, int mt, const HqrConfig& cfg);

// The [SLHD10] comparator expressed as an HQR parameterization (paper §V-A):
// virtual grid p = 1, domains of size a = ceil(mt / nodes), low-level binary
// tree (the 1D block data distribution is a property of the simulator
// mapping, not of the elimination structure).
HqrConfig slhd10_config(int mt, int nodes);

}  // namespace hqr
