#include "trees/models.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace hqr {

int panel_tree_depth(TreeKind kind, int n) {
  HQR_CHECK(n >= 1, "need at least the root");
  switch (kind) {
    case TreeKind::Flat:
      return n - 1;
    case TreeKind::Binary: {
      int d = 0;
      while ((1 << d) < n) ++d;
      return d;
    }
    case TreeKind::Greedy: {
      int d = 0;
      int alive = n;
      while (alive > 1) {
        alive -= alive / 2;
        ++d;
      }
      return d;
    }
    case TreeKind::Fibonacci: {
      int d = 0;
      int alive = n;
      long long fa = 1, fb = 1;
      while (alive > 1) {
        ++d;
        long long wave;
        if (d <= 2) {
          wave = 1;
        } else {
          wave = fa + fb;
          fa = fb;
          fb = wave;
        }
        alive -= static_cast<int>(
            std::min<long long>(wave, alive / 2));
      }
      return d;
    }
  }
  HQR_CHECK(false, "unreachable tree kind");
}

double column_cp_flat(int m, int n) { return m + 2.0 * n; }

double column_cp_greedy(int m, int n) {
  return std::log2(std::max(2, m)) + 2.0 * n;
}

long long geqrt_count(int mt, int nt, long long tt_kills) {
  return std::min(mt, nt) + tt_kills;
}

}  // namespace hqr
