// Closed-form analytic models for reduction-tree depths and critical paths.
//
// These are the formulas the paper reasons with (§III, §V-B): they are
// checked against the actual generators in the tests, and the benches print
// model-vs-measured columns.
#pragma once

#include "trees/panel_trees.hpp"

namespace hqr {

// Number of rounds reduce_subset(kind, rows) takes for |rows| = n (n >= 1).
//   flat:      n - 1                  (fully serial)
//   binary:    ceil(log2 n)
//   greedy:    halving rounds (n -> ceil(n/2)) until one row remains
//   fibonacci: waves of size min(F_s, floor(alive/2))
int panel_tree_depth(TreeKind kind, int n);

// The paper's §V-B single-column critical-path model, in elimination units:
// a panel of m tiles with n trailing updates costs ~(m + 2n) under a flat
// tree and ~(log2(m) + 2n) under greedy. The paper evaluates the ratio on
// the 68 x 16 local matrix and gets ~2.6.
double column_cp_flat(int m, int n);
double column_cp_greedy(int m, int n);

// Exact number of GEQRT kernels in any valid algorithm on an mt x nt grid
// with `tt_kills` TT eliminations: min(mt, nt) diagonal tiles plus one per
// TT victim (every other triangularized tile is accounted for by a later
// kill of itself; TS victims stay square). Checked against expanded kernel
// lists in the tests — it is why a = 1 maximizes GEQRT/TTQRT work and
// larger a shifts flops into the faster TS kernels (paper §V-B).
long long geqrt_count(int mt, int nt, long long tt_kills);

}  // namespace hqr
