#include "trees/panel_trees.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace hqr {

std::string tree_name(TreeKind k) {
  switch (k) {
    case TreeKind::Flat:
      return "flat";
    case TreeKind::Binary:
      return "binary";
    case TreeKind::Greedy:
      return "greedy";
    case TreeKind::Fibonacci:
      return "fibonacci";
  }
  HQR_CHECK(false, "unreachable tree kind");
}

TreeKind tree_from_name(const std::string& name) {
  if (name == "flat") return TreeKind::Flat;
  if (name == "binary") return TreeKind::Binary;
  if (name == "greedy") return TreeKind::Greedy;
  if (name == "fibonacci") return TreeKind::Fibonacci;
  HQR_CHECK(false, "unknown tree kind '" << name << "'");
}

namespace {

std::vector<ReductionPair> reduce_flat(const std::vector<int>& rows) {
  std::vector<ReductionPair> out;
  for (std::size_t i = 1; i < rows.size(); ++i)
    out.push_back({rows[i], rows[0], static_cast<int>(i)});
  return out;
}

std::vector<ReductionPair> reduce_binary(const std::vector<int>& rows) {
  const int n = static_cast<int>(rows.size());
  std::vector<ReductionPair> out;
  int round = 1;
  for (int half = 1; half < n; half *= 2, ++round) {
    const int stride = 2 * half;
    for (int q = 0; q + half < n; q += stride)
      out.push_back({rows[q + half], rows[q], round});
  }
  return out;
}

// Shared wave engine for Greedy and Fibonacci: at each round, kill `z`
// bottom-most alive rows using the `z` alive rows directly above them,
// paired in natural order. `wave_size(round, alive)` picks z.
template <typename WaveSize>
std::vector<ReductionPair> reduce_waves(const std::vector<int>& rows,
                                        WaveSize wave_size) {
  std::vector<int> alive = rows;
  std::vector<ReductionPair> out;
  int round = 1;
  while (alive.size() > 1) {
    const int cnt = static_cast<int>(alive.size());
    const int z = std::min(wave_size(round, cnt), cnt / 2);
    HQR_CHECK(z >= 1, "wave size must be positive");
    const int vic0 = cnt - z;    // first victim position
    const int kil0 = cnt - 2 * z;  // first killer position
    for (int t = 0; t < z; ++t)
      out.push_back({alive[vic0 + t], alive[kil0 + t], round});
    alive.resize(static_cast<std::size_t>(vic0));
    ++round;
  }
  return out;
}

}  // namespace

std::vector<ReductionPair> reduce_subset(TreeKind kind,
                                         const std::vector<int>& rows) {
  HQR_CHECK(!rows.empty(), "reduce_subset needs at least the root row");
  HQR_CHECK(std::is_sorted(rows.begin(), rows.end()) &&
                std::adjacent_find(rows.begin(), rows.end()) == rows.end(),
            "rows must be sorted and unique");
  switch (kind) {
    case TreeKind::Flat:
      return reduce_flat(rows);
    case TreeKind::Binary:
      return reduce_binary(rows);
    case TreeKind::Greedy:
      // As many kills as possible per round: z = floor(alive / 2).
      return reduce_waves(rows, [](int, int alive) { return alive / 2; });
    case TreeKind::Fibonacci: {
      // Wave sizes follow the Fibonacci sequence 1, 1, 2, 3, 5, ...
      return reduce_waves(rows, [fa = 1, fb = 1](int round, int) mutable {
        if (round <= 2) return 1;
        const int f = fa + fb;
        fa = fb;
        fb = f;
        return fb;
      });
    }
  }
  HQR_CHECK(false, "unreachable tree kind");
}

}  // namespace hqr
