// Per-subset reduction trees (paper §III-A): FLATTREE, BINARYTREE, GREEDY,
// FIBONACCI, each reducing an ordered set of rows to its first element.
//
// These are the building blocks of the hierarchical algorithm: the low-level
// tree reduces domain heads inside a node, the high-level tree reduces the p
// top tiles across nodes; both can be any of the four kinds (paper §IV-A).
#pragma once

#include <string>
#include <vector>

namespace hqr {

enum class TreeKind { Flat, Binary, Greedy, Fibonacci };

std::string tree_name(TreeKind k);
// Parses "flat" / "binary" / "greedy" / "fibonacci" (case-sensitive).
TreeKind tree_from_name(const std::string& name);

// One internal node of a reduction tree: `victim` is eliminated by `killer`;
// `round` is the tree level (1-based) used to order eliminations so that the
// returned list is sequentially valid (killer of any pair is itself killed
// in a later entry, or survives).
struct ReductionPair {
  int victim;
  int killer;
  int round;

  friend bool operator==(const ReductionPair&, const ReductionPair&) = default;
};

// Reduces rows[1..] into rows[0] (the root survives). `rows` must be sorted
// ascending and non-empty; returns exactly rows.size()-1 pairs in a
// sequentially valid order.
//
//  - Flat:      rows[0] kills rows[1], rows[2], ... sequentially (paper
//               Fig. 1).
//  - Binary:    neighbor pairing at distances 1, 2, 4, ... (paper Fig. 2).
//  - Greedy:    at each round, the bottom floor(alive/2) rows are killed by
//               the alive rows directly above them, paired in natural order
//               (the per-column wave of the paper's GREEDY, §III-B).
//  - Fibonacci: bottom-up waves whose sizes grow like the Fibonacci
//               sequence 1, 1, 2, 3, 5, ... (Modi–Clarke style ordering);
//               each wave is killed by the rows directly above it.
std::vector<ReductionPair> reduce_subset(TreeKind kind,
                                         const std::vector<int>& rows);

}  // namespace hqr
