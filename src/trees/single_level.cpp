#include "trees/single_level.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"

namespace hqr {

EliminationList flat_ts_list(int mt, int nt) {
  HQR_CHECK(mt >= 1 && nt >= 1, "empty tile grid");
  EliminationList out;
  const int kmax = std::min(mt, nt);
  for (int k = 0; k < kmax; ++k)
    for (int i = k + 1; i < mt; ++i) out.push_back({i, k, k, /*ts=*/true});
  return out;
}

EliminationList per_panel_tree_list(TreeKind kind, int mt, int nt) {
  HQR_CHECK(mt >= 1 && nt >= 1, "empty tile grid");
  EliminationList out;
  const int kmax = std::min(mt, nt);
  for (int k = 0; k < kmax; ++k) {
    std::vector<int> rows(static_cast<std::size_t>(mt - k));
    std::iota(rows.begin(), rows.end(), k);
    for (const ReductionPair& pr : reduce_subset(kind, rows))
      out.push_back({pr.victim, pr.killer, k, /*ts=*/false});
  }
  return out;
}

SteppedList greedy_global_list(int mt, int nt) {
  HQR_CHECK(mt >= 1 && nt >= 1, "empty tile grid");
  const int kmax = std::min(mt, nt);

  // killed_at[k][i]: step at which tile (i, k) was zeroed; 0 = not yet.
  std::vector<std::vector<int>> killed_at(
      static_cast<std::size_t>(kmax), std::vector<int>(static_cast<std::size_t>(mt), 0));
  long long remaining = 0;
  for (int k = 0; k < kmax; ++k) remaining += mt - 1 - k;

  struct Timed {
    Elimination e;
    int step;
  };
  std::vector<Timed> acc;
  acc.reserve(static_cast<std::size_t>(remaining));

  for (int step = 1; remaining > 0; ++step) {
    std::vector<char> busy(static_cast<std::size_t>(mt), 0);
    bool progress = false;
    for (int k = 0; k < kmax && remaining > 0; ++k) {
      // Ready rows for panel k: alive in panel k (or the diagonal row k),
      // zeroed in panel k-1 before this step, and not yet busy this step.
      std::vector<int> ready;
      for (int i = k; i < mt; ++i) {
        if (busy[i]) continue;
        if (i > k && killed_at[k][i] != 0) continue;  // already dead here
        if (k > 0) {
          const int done = killed_at[k - 1][i];
          if (done == 0 || done >= step) continue;  // row not ready yet
        }
        ready.push_back(i);
      }
      const int cnt = static_cast<int>(ready.size());
      const int z = cnt / 2;
      if (z == 0) continue;
      // Bottom z rows killed by the z ready rows directly above them.
      for (int t = 0; t < z; ++t) {
        const int victim = ready[cnt - z + t];
        const int killer = ready[cnt - 2 * z + t];
        HQR_ASSERT(victim > k, "greedy victim must be below the diagonal");
        acc.push_back({{victim, killer, k, /*ts=*/false}, step});
        killed_at[k][victim] = step;
        busy[victim] = 1;
        busy[killer] = 1;
        --remaining;
        progress = true;
      }
    }
    HQR_CHECK(progress || remaining == 0,
              "greedy simulation stalled at step " << step);
  }

  // Emit in (step, panel, row) order: sequentially valid by construction.
  std::stable_sort(acc.begin(), acc.end(), [](const Timed& x, const Timed& y) {
    if (x.step != y.step) return x.step < y.step;
    if (x.e.k != y.e.k) return x.e.k < y.e.k;
    return x.e.row < y.e.row;
  });
  SteppedList out;
  out.list.reserve(acc.size());
  out.step.reserve(acc.size());
  for (const Timed& t : acc) {
    out.list.push_back(t.e);
    out.step.push_back(t.step);
  }
  return out;
}

}  // namespace hqr
