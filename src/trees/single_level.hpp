// Whole-matrix single-level tiled QR algorithms from the literature
// (paper §III): the baselines HQR is compared against, and the per-panel
// building blocks of Tables I-IV.
#pragma once

#include "trees/elimination.hpp"
#include "trees/panel_trees.hpp"

namespace hqr {

// Sameh-Kuck / PLASMA / [BBD+10] ordering: in every panel the diagonal tile
// kills all tiles below it with TS kernels (flat tree, Table I / II).
EliminationList flat_ts_list(int mt, int nt);

// Generic per-panel tree with TT kernels: the panel-k subset is
// {k, k+1, ..., mt-1} reduced by `kind` (Table III for Binary).
EliminationList per_panel_tree_list(TreeKind kind, int mt, int nt);

// An elimination list together with the coarse-model step at which each
// elimination executes (unit-time eliminations).
struct SteppedList {
  EliminationList list;
  std::vector<int> step;  // parallel to list
};

// The GREEDY algorithm of [12], [13] in its tiled form (paper §III-B,
// Table IV): a global unit-step simulation where, at every step and in every
// panel (in order), the bottom floor(ready/2) ready-and-free rows are killed
// by the ready rows directly above them. Rows are "ready" for panel k once
// zeroed in panel k-1 and not busy in the current step. TT kernels.
SteppedList greedy_global_list(int mt, int nt);

}  // namespace hqr
