#include "trees/steps.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace hqr {

std::vector<int> asap_steps(const EliminationList& list, int mt, int nt) {
  const int kmax = std::min(mt, nt);
  // finish[k * mt + i]: completion step of the elimination zeroing (i, k).
  std::vector<int> finish(static_cast<std::size_t>(mt) * kmax, 0);
  // last_use[k * mt + piv]: last step at which piv killed in panel k.
  std::vector<int> last_use(static_cast<std::size_t>(mt) * kmax, 0);

  std::vector<int> steps;
  steps.reserve(list.size());
  for (const Elimination& e : list) {
    HQR_CHECK(e.k >= 0 && e.k < kmax && e.row < mt && e.piv < mt,
              "elimination out of range for step model");
    int ready = 0;
    if (e.k > 0) {
      const int fi = finish[static_cast<std::size_t>(e.k - 1) * mt + e.row];
      const int fp = finish[static_cast<std::size_t>(e.k - 1) * mt + e.piv];
      HQR_CHECK(fi > 0 && fp > 0,
                "rows not zeroed in previous panel; invalid list order");
      ready = std::max(fi, fp);
    }
    ready = std::max(ready, last_use[static_cast<std::size_t>(e.k) * mt + e.piv]);
    const int s = ready + 1;
    steps.push_back(s);
    finish[static_cast<std::size_t>(e.k) * mt + e.row] = s;
    last_use[static_cast<std::size_t>(e.k) * mt + e.piv] = s;
  }
  return steps;
}

KillerStepTable killer_step_table(const EliminationList& list,
                                  const std::vector<int>& steps, int mt,
                                  int panels) {
  HQR_CHECK(steps.size() == list.size(), "steps/list size mismatch");
  KillerStepTable t;
  t.mt = mt;
  t.panels = panels;
  t.killer.assign(static_cast<std::size_t>(mt) * panels, -1);
  t.step.assign(static_cast<std::size_t>(mt) * panels, -1);
  for (std::size_t idx = 0; idx < list.size(); ++idx) {
    const Elimination& e = list[idx];
    if (e.k >= panels) continue;
    t.killer[static_cast<std::size_t>(e.k) * mt + e.row] = e.piv;
    t.step[static_cast<std::size_t>(e.k) * mt + e.row] = steps[idx];
  }
  return t;
}

int coarse_makespan(const std::vector<int>& steps) {
  int m = 0;
  for (int s : steps) m = std::max(m, s);
  return m;
}

}  // namespace hqr
