// The coarse-grain unit-time step model of the paper's §III tables.
//
// Each elimination takes one time unit. An elimination elim(i, piv, k) can
// start once (a) row i finished panel k-1, (b) row piv finished panel k-1,
// and (c) any earlier use of piv as a killer in panel k completed. This is
// exactly the model generating Tables I, II and III (it deliberately does
// not serialize a row's own elimination against its killer duties — see
// Table III where row 3 of panel 1 is killed at the same step it kills
// row 4; DESIGN.md discusses this).
#pragma once

#include <vector>

#include "trees/elimination.hpp"

namespace hqr {

// ASAP step for each elimination (parallel to `list`). The list must be
// valid (panel-readiness is looked up from earlier entries).
std::vector<int> asap_steps(const EliminationList& list, int mt, int nt);

// Per-(row, panel) killer/step table for rendering the paper's tables.
// Entries are -1 where a row has no elimination in a panel.
struct KillerStepTable {
  int mt = 0;
  int panels = 0;
  std::vector<int> killer;  // killer[k * mt + i]
  std::vector<int> step;    // step[k * mt + i]

  int killer_of(int i, int k) const { return killer[static_cast<std::size_t>(k) * mt + i]; }
  int step_of(int i, int k) const { return step[static_cast<std::size_t>(k) * mt + i]; }
};

KillerStepTable killer_step_table(const EliminationList& list,
                                  const std::vector<int>& steps, int mt,
                                  int panels);

// Total schedule length under the coarse model (max step).
int coarse_makespan(const std::vector<int>& steps);

}  // namespace hqr
