#include "trees/validate.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/check.hpp"

namespace hqr {
namespace {

std::string describe(const Elimination& e, std::size_t pos) {
  std::ostringstream os;
  os << "elim #" << pos << " (row=" << e.row << ", piv=" << e.piv
     << ", k=" << e.k << ", " << (e.ts ? "TS" : "TT") << ")";
  return os.str();
}

}  // namespace

ValidationResult validate_elimination_list(const EliminationList& list, int mt,
                                           int nt) {
  const int kmax = std::min(mt, nt);
  auto fail = [&](const Elimination& e, std::size_t pos, const std::string& why) {
    ValidationResult r;
    r.ok = false;
    r.message = describe(e, pos) + ": " + why;
    return r;
  };

  // zeroed_count[i]: number of panels in which row i has been zeroed so far;
  // rows are zeroed in panel order (0, 1, 2, ...) in any valid list, so a
  // single counter encodes "which panels are done" — but we must verify that
  // property rather than assume it, so keep the full bitmap.
  std::vector<char> zeroed(static_cast<std::size_t>(mt) * kmax, 0);
  auto is_zeroed = [&](int i, int k) {
    return zeroed[static_cast<std::size_t>(k) * mt + i] != 0;
  };
  // touched_in_panel: row appeared in panel k already (killer or victim) —
  // a TS victim must be pristine (square).
  std::vector<char> touched(static_cast<std::size_t>(mt) * kmax, 0);
  auto touch = [&](int i, int k) {
    touched[static_cast<std::size_t>(k) * mt + i] = 1;
  };

  for (std::size_t pos = 0; pos < list.size(); ++pos) {
    const Elimination& e = list[pos];
    if (e.k < 0 || e.k >= kmax) return fail(e, pos, "panel out of range");
    if (e.row <= e.k || e.row >= mt) return fail(e, pos, "victim out of range");
    if (e.piv < e.k || e.piv >= mt) return fail(e, pos, "killer out of range");
    if (e.piv == e.row) return fail(e, pos, "killer equals victim");
    for (int kp = 0; kp < e.k; ++kp) {
      if (!is_zeroed(e.row, kp))
        return fail(e, pos, "victim row not ready: tile (" +
                                std::to_string(e.row) + "," +
                                std::to_string(kp) + ") not zeroed");
      if (e.piv > kp && !is_zeroed(e.piv, kp))
        return fail(e, pos, "killer row not ready: tile (" +
                                std::to_string(e.piv) + "," +
                                std::to_string(kp) + ") not zeroed");
    }
    if (is_zeroed(e.piv, e.k))
      return fail(e, pos, "killer already zeroed in this panel");
    if (is_zeroed(e.row, e.k))
      return fail(e, pos, "victim already zeroed in this panel");
    if (e.ts && touched[static_cast<std::size_t>(e.k) * mt + e.row])
      return fail(e, pos, "TS victim is not square (already used in panel)");
    zeroed[static_cast<std::size_t>(e.k) * mt + e.row] = 1;
    touch(e.row, e.k);
    touch(e.piv, e.k);
  }

  // Completeness: every below-diagonal tile zeroed.
  for (int k = 0; k < kmax; ++k)
    for (int i = k + 1; i < mt; ++i)
      if (!is_zeroed(i, k)) {
        ValidationResult r;
        r.ok = false;
        r.message = "tile (" + std::to_string(i) + "," + std::to_string(k) +
                    ") never zeroed";
        return r;
      }
  return {};
}

void check_valid(const EliminationList& list, int mt, int nt) {
  ValidationResult r = validate_elimination_list(list, mt, nt);
  HQR_CHECK(r.ok, "" << r.message);
}

}  // namespace hqr
