// Ground-truth validity checking of elimination lists (paper §II).
//
// A list is valid iff (scanning in order):
//  * every elimination references existing tiles: 0 <= k < min(mt,nt),
//    k < row < mt, k <= piv < mt, piv != row;
//  * both rows are "ready": tiles (row, k') and (piv, k') are already zeroed
//    for every k' < k;
//  * the killer is a potential annihilator: tile (piv, k) not yet zeroed;
//  * the victim tile (row, k) not yet zeroed;
//  * TS eliminations have a square victim: row has not previously appeared
//    in panel k (as a killer it would have been triangularized);
//  * at the end, every tile (i, k) with i > k is zeroed exactly once.
#pragma once

#include <string>

#include "trees/elimination.hpp"

namespace hqr {

struct ValidationResult {
  bool ok = true;
  std::string message;  // first violation, empty when ok

  explicit operator bool() const { return ok; }
};

ValidationResult validate_elimination_list(const EliminationList& list, int mt,
                                           int nt);

// Throws hqr::Error with the violation message unless valid.
void check_valid(const EliminationList& list, int mt, int nt);

}  // namespace hqr
