#include "common/cli.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"

namespace hqr {
namespace {

Cli make(std::vector<std::string> args,
         std::map<std::string, std::string> spec) {
  std::vector<char*> argv;
  static std::vector<std::string> storage;  // keep c_str() alive
  storage = std::move(args);
  argv.push_back(const_cast<char*>("prog"));
  for (auto& s : storage) argv.push_back(const_cast<char*>(s.c_str()));
  return Cli(static_cast<int>(argv.size()), argv.data(), std::move(spec));
}

TEST(Cli, DefaultsApply) {
  Cli c = make({}, {{"m", "100"}, {"tree", "greedy"}});
  EXPECT_EQ(c.integer("m"), 100);
  EXPECT_EQ(c.str("tree"), "greedy");
}

TEST(Cli, EqualsSyntax) {
  Cli c = make({"--m=7"}, {{"m", "1"}});
  EXPECT_EQ(c.integer("m"), 7);
}

TEST(Cli, SpaceSyntax) {
  Cli c = make({"--m", "9"}, {{"m", "1"}});
  EXPECT_EQ(c.integer("m"), 9);
}

TEST(Cli, BooleanFlagWithoutValue) {
  Cli c = make({"--domino"}, {{"domino", "false"}});
  EXPECT_TRUE(c.flag("domino"));
}

TEST(Cli, BooleanFlagExplicitValue) {
  Cli c = make({"--domino=false"}, {{"domino", "true"}});
  EXPECT_FALSE(c.flag("domino"));
}

TEST(Cli, BooleanFlagConsumesDetachedFalse) {
  // `--domino false` must set the flag to false, not leave it true with a
  // stray "false" positional.
  Cli c = make({"--domino", "false"}, {{"domino", "true"}});
  EXPECT_FALSE(c.flag("domino"));
  EXPECT_TRUE(c.positional().empty());
}

TEST(Cli, BooleanFlagConsumesDetachedTrue) {
  Cli c = make({"--domino", "true"}, {{"domino", "false"}});
  EXPECT_TRUE(c.flag("domino"));
  EXPECT_TRUE(c.positional().empty());
}

TEST(Cli, BooleanFlagLeavesOtherTokensAlone) {
  // Only the literal tokens true/false bind to a bare boolean flag.
  Cli c = make({"--domino", "input.csv"}, {{"domino", "false"}});
  EXPECT_TRUE(c.flag("domino"));
  ASSERT_EQ(c.positional().size(), 1u);
  EXPECT_EQ(c.positional()[0], "input.csv");
}

TEST(Cli, BooleanFlagAtEndOfArgv) {
  Cli c = make({"--domino"}, {{"domino", "false"}, {"m", "1"}});
  EXPECT_TRUE(c.flag("domino"));
}

TEST(Cli, UnknownFlagThrows) {
  EXPECT_THROW(make({"--nope=1"}, {{"m", "1"}}), Error);
}

TEST(Cli, HasReportsOnlyUserProvidedFlags) {
  // Defaults pre-populate the value map; has() must still distinguish
  // "declared" from "explicitly passed".
  Cli c = make({"--m=2"}, {{"m", "1"}, {"csv", ""}});
  EXPECT_TRUE(c.has("m"));
  EXPECT_FALSE(c.has("csv"));
  EXPECT_FALSE(c.has("undeclared"));
  EXPECT_EQ(c.str("csv"), "");  // default still readable
}

TEST(Cli, HasSeesSpaceAndBareBooleanForms) {
  Cli c = make({"--m", "3", "--domino"}, {{"m", "1"}, {"domino", "false"}});
  EXPECT_TRUE(c.has("m"));
  EXPECT_TRUE(c.has("domino"));
}

TEST(Cli, UndeclaredHelpPrintsUsageAndExits) {
  EXPECT_EXIT(make({"--help"}, {{"m", "1"}}), ::testing::ExitedWithCode(0),
              "");
}

TEST(Cli, MissingValueThrows) {
  EXPECT_THROW(make({"--m"}, {{"m", "1"}}), Error);
}

TEST(Cli, NonIntegerThrows) {
  Cli c = make({"--m=abc"}, {{"m", "1"}});
  EXPECT_THROW(c.integer("m"), Error);
}

TEST(Cli, RealParsing) {
  Cli c = make({"--alpha=2.5e-6"}, {{"alpha", "1.0"}});
  EXPECT_DOUBLE_EQ(c.real("alpha"), 2.5e-6);
}

TEST(Cli, PositionalCollected) {
  Cli c = make({"file1", "--m=2", "file2"}, {{"m", "1"}});
  ASSERT_EQ(c.positional().size(), 2u);
  EXPECT_EQ(c.positional()[0], "file1");
  EXPECT_EQ(c.positional()[1], "file2");
}

TEST(Cli, UsageListsFlags) {
  Cli c = make({}, {{"m", "1"}});
  EXPECT_NE(c.usage("prog").find("--m=1"), std::string::npos);
}

}  // namespace
}  // namespace hqr
