#include "common/cli.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"

namespace hqr {
namespace {

Cli make(std::vector<std::string> args,
         std::map<std::string, std::string> spec) {
  std::vector<char*> argv;
  static std::vector<std::string> storage;  // keep c_str() alive
  storage = std::move(args);
  argv.push_back(const_cast<char*>("prog"));
  for (auto& s : storage) argv.push_back(const_cast<char*>(s.c_str()));
  return Cli(static_cast<int>(argv.size()), argv.data(), std::move(spec));
}

TEST(Cli, DefaultsApply) {
  Cli c = make({}, {{"m", "100"}, {"tree", "greedy"}});
  EXPECT_EQ(c.integer("m"), 100);
  EXPECT_EQ(c.str("tree"), "greedy");
}

TEST(Cli, EqualsSyntax) {
  Cli c = make({"--m=7"}, {{"m", "1"}});
  EXPECT_EQ(c.integer("m"), 7);
}

TEST(Cli, SpaceSyntax) {
  Cli c = make({"--m", "9"}, {{"m", "1"}});
  EXPECT_EQ(c.integer("m"), 9);
}

TEST(Cli, BooleanFlagWithoutValue) {
  Cli c = make({"--domino"}, {{"domino", "false"}});
  EXPECT_TRUE(c.flag("domino"));
}

TEST(Cli, BooleanFlagExplicitValue) {
  Cli c = make({"--domino=false"}, {{"domino", "true"}});
  EXPECT_FALSE(c.flag("domino"));
}

TEST(Cli, UnknownFlagThrows) {
  EXPECT_THROW(make({"--nope=1"}, {{"m", "1"}}), Error);
}

TEST(Cli, MissingValueThrows) {
  EXPECT_THROW(make({"--m"}, {{"m", "1"}}), Error);
}

TEST(Cli, NonIntegerThrows) {
  Cli c = make({"--m=abc"}, {{"m", "1"}});
  EXPECT_THROW(c.integer("m"), Error);
}

TEST(Cli, RealParsing) {
  Cli c = make({"--alpha=2.5e-6"}, {{"alpha", "1.0"}});
  EXPECT_DOUBLE_EQ(c.real("alpha"), 2.5e-6);
}

TEST(Cli, PositionalCollected) {
  Cli c = make({"file1", "--m=2", "file2"}, {{"m", "1"}});
  ASSERT_EQ(c.positional().size(), 2u);
  EXPECT_EQ(c.positional()[0], "file1");
  EXPECT_EQ(c.positional()[1], "file2");
}

TEST(Cli, UsageListsFlags) {
  Cli c = make({}, {{"m", "1"}});
  EXPECT_NE(c.usage("prog").find("--m=1"), std::string::npos);
}

}  // namespace
}  // namespace hqr
