#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace hqr {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformInHalfOpenUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng r(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng r(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, GaussianMomentsApproximatelyStandard) {
  Rng r(5);
  const int n = 200000;
  double mean = 0.0, m2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = r.gaussian();
    mean += g;
    m2 += g * g;
  }
  mean /= n;
  m2 /= n;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(m2, 1.0, 0.02);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng base(9);
  Rng s1 = base.split(1);
  Rng s2 = base.split(2);
  Rng s1again = base.split(1);
  int equal12 = 0;
  for (int i = 0; i < 64; ++i) {
    const auto a = s1();
    EXPECT_EQ(a, s1again());
    equal12 += (a == s2());
  }
  EXPECT_LT(equal12, 4);
}

}  // namespace
}  // namespace hqr
