#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"

namespace hqr {
namespace {

TEST(TextTable, BuildsAndRenders) {
  TextTable t({"name", "value"});
  t.row().add("alpha").add(1);
  t.row().add("beta").add(2.5, 3);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.cell(0, 0), "alpha");
  EXPECT_EQ(t.cell(1, 1), "2.5");

  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("value"), std::string::npos);
}

TEST(TextTable, CsvOutput) {
  TextTable t({"a", "b"});
  t.row().add(1).add(2);
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TextTable, CsvQuotesCommas) {
  TextTable t({"a"});
  t.row().add("x,y");
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "a\n\"x,y\"\n");
}

TEST(TextTable, RejectsOverflowingRow) {
  TextTable t({"only"});
  t.row().add(1);
  EXPECT_THROW(t.add(2), Error);
}

TEST(TextTable, RejectsAddBeforeRow) {
  TextTable t({"only"});
  EXPECT_THROW(t.add(1), Error);
}

TEST(TextTable, RejectsIncompleteRowOnNewRow) {
  TextTable t({"a", "b"});
  t.row().add(1);
  EXPECT_THROW(t.row(), Error);
}

TEST(TextTable, CellRangeChecked) {
  TextTable t({"a"});
  t.row().add(1);
  EXPECT_THROW(t.cell(1, 0), Error);
  EXPECT_THROW(t.cell(0, 1), Error);
}

}  // namespace
}  // namespace hqr
