#include "core/autotune.hpp"

#include <gtest/gtest.h>

namespace hqr {
namespace {

SimOptions opts_for_test() {
  SimOptions o;
  o.platform = Platform::edel();
  o.b = 64;
  return o;
}

TEST(Autotune, BestIsFirstAndSorted) {
  auto r = autotune_hqr(32, 4, 32 * 64, 4 * 64, 6, opts_for_test());
  ASSERT_FALSE(r.explored.empty());
  for (std::size_t i = 1; i < r.explored.size(); ++i)
    EXPECT_GE(r.explored[i - 1].result.gflops, r.explored[i].result.gflops);
  EXPECT_DOUBLE_EQ(r.best.result.gflops, r.explored.front().result.gflops);
}

TEST(Autotune, GridFactorizationsRespectNodeCount) {
  auto r = autotune_hqr(24, 6, 24 * 64, 6 * 64, 6, opts_for_test());
  for (const auto& c : r.explored)
    EXPECT_EQ(c.config.p * c.grid_q, 6);
}

TEST(Autotune, BestBeatsDefaultConfigByConstruction) {
  // The default-ish (p = nodes, a = 1, greedy/fibonacci...) configuration is
  // in the candidate set whenever feasible, so the winner is at least as
  // good as it.
  SimOptions o = opts_for_test();
  const int mt = 64, nt = 4, nodes = 6;
  auto r = autotune_hqr(mt, nt, mt * 64, nt * 64, nodes, o);
  HqrConfig manual{nodes, 1, TreeKind::Greedy, TreeKind::Flat, true};
  SimResult manual_res =
      simulate_algorithm(make_hqr_run(mt, nt, manual, 1), mt * 64, nt * 64, o);
  EXPECT_GE(r.best.result.gflops, manual_res.gflops - 1e-9);
}

TEST(Autotune, TallSkinnyPrefersDominoOrParallelTrees) {
  // On a very tall-skinny problem the winner should not be the fully
  // sequential configuration (flat low tree, no domino, a = 8).
  auto r = autotune_hqr(96, 2, 96 * 64, 2 * 64, 6, opts_for_test());
  const auto& cfg = r.best.config;
  const bool fully_serial =
      cfg.low == TreeKind::Flat && !cfg.domino && cfg.p == 1;
  EXPECT_FALSE(fully_serial);
}

TEST(Autotune, InfeasibleTsDomainsSkipped) {
  // mt = 4 with p = 2 leaves no room for a = 8 domains: candidates with
  // a * p > mt are not explored.
  auto r = autotune_hqr(4, 2, 4 * 64, 2 * 64, 2, opts_for_test());
  for (const auto& c : r.explored)
    EXPECT_LE(static_cast<long long>(c.config.a) * c.config.p, 4 * 8);
}

TEST(Autotune, SingleNodeStillWorks) {
  auto r = autotune_hqr(16, 4, 16 * 64, 4 * 64, 1, opts_for_test());
  EXPECT_EQ(r.best.config.p, 1);
  EXPECT_GT(r.best.result.gflops, 0.0);
}

}  // namespace
}  // namespace hqr
