// End-to-end numeric validation: every elimination-list algorithm must
// deliver A = QR with orthonormal Q at machine precision — the paper's §V-A
// correctness protocol ("all checks were satisfactory up to machine
// precision").
#include "core/factorization.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "common/rng.hpp"
#include "linalg/norms.hpp"
#include "linalg/random_matrix.hpp"
#include "linalg/ref_qr.hpp"
#include "trees/hqr_tree.hpp"
#include "trees/single_level.hpp"
#include "trees/validate.hpp"

namespace hqr {
namespace {

constexpr double kTol = 1e-12;

EliminationList make_list(const std::string& algo, int mt, int nt) {
  if (algo == "flat_ts") return flat_ts_list(mt, nt);
  if (algo == "binary") return per_panel_tree_list(TreeKind::Binary, mt, nt);
  if (algo == "fibonacci")
    return per_panel_tree_list(TreeKind::Fibonacci, mt, nt);
  if (algo == "greedy") return greedy_global_list(mt, nt).list;
  if (algo == "hqr") {
    HqrConfig cfg{3, 2, TreeKind::Greedy, TreeKind::Fibonacci, true};
    return hqr_elimination_list(mt, nt, cfg);
  }
  if (algo == "hqr_nodomino") {
    HqrConfig cfg{2, 2, TreeKind::Binary, TreeKind::Flat, false};
    return hqr_elimination_list(mt, nt, cfg);
  }
  if (algo == "slhd10") {
    return hqr_elimination_list(mt, nt, slhd10_config(mt, 3));
  }
  HQR_CHECK(false, "unknown algo " << algo);
}

void expect_exact_qr(const Matrix& a0, const QRFactors& f) {
  Matrix q = build_q(f);
  // Padded orthogonality, then unpadded residual.
  EXPECT_LT(orthogonality_error(q.view()), kTol);
  const int k = std::min(f.m(), f.n());
  Matrix q_slice = materialize(q.block(0, 0, a0.rows(), k));
  Matrix r = extract_r(f);
  EXPECT_LT(factorization_residual(a0.view(), q_slice.view(), r.view()), kTol);
}

// (m, n, b, algorithm)
class FactorizationSweep
    : public ::testing::TestWithParam<
          std::tuple<std::tuple<int, int, int>, std::string>> {};

TEST_P(FactorizationSweep, ExactAndOrthogonal) {
  auto [shape, algo] = GetParam();
  auto [m, n, b] = shape;
  Rng rng(static_cast<std::uint64_t>(m) * 7919 + n * 131 + b);
  Matrix a0 = random_gaussian(m, n, rng);
  TiledMatrix probe = TiledMatrix::from_matrix(a0, b);
  auto list = make_list(algo, probe.mt(), probe.nt());
  check_valid(list, probe.mt(), probe.nt());
  QRFactors f = qr_factorize_sequential(a0, b, list);
  expect_exact_qr(a0, f);
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsAndShapes, FactorizationSweep,
    ::testing::Combine(
        ::testing::Values(std::tuple{12, 12, 4}, std::tuple{24, 8, 4},
                          std::tuple{30, 10, 3}, std::tuple{13, 7, 4},
                          std::tuple{40, 12, 5}, std::tuple{9, 9, 3},
                          std::tuple{21, 6, 2}, std::tuple{8, 20, 4},
                          std::tuple{10, 31, 3}),
        ::testing::Values("flat_ts", "binary", "fibonacci", "greedy", "hqr",
                          "hqr_nodomino", "slhd10")));

TEST(Factorization, RMatchesReferenceUpToSigns) {
  Rng rng(5);
  Matrix a0 = random_gaussian(20, 12, rng);
  HqrConfig cfg{2, 2, TreeKind::Greedy, TreeKind::Binary, true};
  TiledMatrix probe = TiledMatrix::from_matrix(a0, 4);
  QRFactors f = qr_factorize_sequential(
      a0, 4, hqr_elimination_list(probe.mt(), probe.nt(), cfg));
  Matrix r = extract_r(f);
  RefQR ref = ref_qr_blocked(a0, 4);
  for (int j = 0; j < 12; ++j)
    for (int i = 0; i <= j; ++i)
      EXPECT_NEAR(std::abs(r(i, j)), std::abs(ref.a(i, j)), 1e-10)
          << "(" << i << "," << j << ")";
}

TEST(Factorization, ApplyQTransposeGivesR) {
  Rng rng(7);
  Matrix a0 = random_gaussian(16, 8, rng);
  QRFactors f = qr_factorize_sequential(a0, 4, flat_ts_list(4, 2));
  TiledMatrix c = TiledMatrix::from_matrix(a0, 4);
  apply_q(f, Trans::Yes, c);
  Matrix qta = c.to_matrix();
  Matrix r = extract_r(f);
  for (int j = 0; j < 8; ++j)
    for (int i = 0; i < 16; ++i)
      EXPECT_NEAR(qta(i, j), (i <= j && i < 8) ? r(i, j) : 0.0, kTol);
}

TEST(Factorization, ApplyQRoundTrip) {
  Rng rng(8);
  Matrix a0 = random_gaussian(12, 12, rng);
  QRFactors f = qr_factorize_sequential(
      a0, 3, per_panel_tree_list(TreeKind::Greedy, 4, 4));
  Matrix c0 = random_gaussian(12, 5, rng);
  TiledMatrix c = TiledMatrix::from_matrix(c0, 3);
  apply_q(f, Trans::Yes, c);
  apply_q(f, Trans::No, c);
  Matrix back = c.to_matrix();
  EXPECT_LT(max_abs_diff(back.view(), c0.view()), kTol);
}

TEST(Factorization, LeastSquaresMatchesReference) {
  Rng rng(9);
  const int m = 36, n = 10;
  Matrix a = random_gaussian(m, n, rng);
  Matrix b = random_gaussian(m, 2, rng);
  HqrConfig cfg{3, 2, TreeKind::Greedy, TreeKind::Greedy, true};
  TiledMatrix probe = TiledMatrix::from_matrix(a, 4);
  Matrix x_tile = tile_least_squares(
      a, b, 4, hqr_elimination_list(probe.mt(), probe.nt(), cfg));
  Matrix x_ref = least_squares(a, b);
  EXPECT_LT(max_abs_diff(x_tile.view(), x_ref.view()), 1e-9);
}

TEST(Factorization, RaggedEdgesArePaddedCorrectly) {
  // m, n not multiples of b: padding must not leak into Q or R.
  Rng rng(10);
  Matrix a0 = random_gaussian(17, 9, rng);
  QRFactors f = qr_factorize_sequential(a0, 4, flat_ts_list(5, 3));
  expect_exact_qr(a0, f);
}

TEST(Factorization, GradedMatrixStaysAccurate) {
  Rng rng(11);
  Matrix a0 = random_graded(24, 8, 8.0, rng);
  QRFactors f = qr_factorize_sequential(
      a0, 4, per_panel_tree_list(TreeKind::Binary, 6, 2));
  expect_exact_qr(a0, f);
}

TEST(Factorization, NearRankDeficientStaysAccurate) {
  Rng rng(12);
  Matrix a0 = random_near_rank_deficient(24, 8, 3, 1e-11, rng);
  QRFactors f = qr_factorize_sequential(a0, 4, flat_ts_list(6, 2));
  expect_exact_qr(a0, f);
}

TEST(Factorization, ZeroMatrix) {
  Matrix a0(12, 8);
  QRFactors f = qr_factorize_sequential(a0, 4, flat_ts_list(3, 2));
  Matrix r = extract_r(f);
  EXPECT_EQ(max_norm(r.view()), 0.0);
  Matrix q = build_q(f);
  EXPECT_LT(orthogonality_error(q.view()), kTol);
}

TEST(Factorization, SingleTile) {
  Rng rng(13);
  Matrix a0 = random_gaussian(4, 4, rng);
  QRFactors f = qr_factorize_sequential(a0, 4, flat_ts_list(1, 1));
  expect_exact_qr(a0, f);
}

TEST(Factorization, TileSizeLargerThanMatrix) {
  Rng rng(14);
  Matrix a0 = random_gaussian(3, 2, rng);
  QRFactors f = qr_factorize_sequential(a0, 8, flat_ts_list(1, 1));
  expect_exact_qr(a0, f);
}

TEST(Factorization, DifferentTreesGiveSameRMagnitudes) {
  // R is unique up to signs: all algorithms must agree.
  Rng rng(15);
  Matrix a0 = random_gaussian(24, 12, rng);
  auto r1 = extract_r(qr_factorize_sequential(a0, 4, flat_ts_list(6, 3)));
  auto r2 = extract_r(qr_factorize_sequential(
      a0, 4, greedy_global_list(6, 3).list));
  HqrConfig cfg{3, 1, TreeKind::Binary, TreeKind::Greedy, true};
  auto r3 = extract_r(
      qr_factorize_sequential(a0, 4, hqr_elimination_list(6, 3, cfg)));
  for (int j = 0; j < 12; ++j)
    for (int i = 0; i <= j; ++i) {
      EXPECT_NEAR(std::abs(r1(i, j)), std::abs(r2(i, j)), 1e-10);
      EXPECT_NEAR(std::abs(r1(i, j)), std::abs(r3(i, j)), 1e-10);
    }
}

TEST(Factorization, ApplyQRejectsMismatchedTiles) {
  Rng rng(16);
  Matrix a0 = random_gaussian(8, 8, rng);
  QRFactors f = qr_factorize_sequential(a0, 4, flat_ts_list(2, 2));
  TiledMatrix c(8, 2, 2);  // wrong tile size
  EXPECT_THROW(apply_q(f, Trans::Yes, c), Error);
}

}  // namespace
}  // namespace hqr
