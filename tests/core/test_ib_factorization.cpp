// End-to-end factorization with the inner-blocked production kernels: every
// path (sequential, parallel, Q build/apply, least squares) must stay at
// machine precision for any ib, and R must agree with the plain kernels.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.hpp"
#include "core/factorization.hpp"
#include "linalg/norms.hpp"
#include "linalg/random_matrix.hpp"
#include "runtime/executor.hpp"
#include "trees/hqr_tree.hpp"
#include "trees/single_level.hpp"

namespace hqr {
namespace {

constexpr double kTol = 1e-12;

// (m, n, b, ib)
class IbFactorization
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(IbFactorization, SequentialExactness) {
  auto [m, n, b, ib] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m) * 37 + n * 5 + b + ib);
  Matrix a0 = random_gaussian(m, n, rng);
  TiledMatrix probe = TiledMatrix::from_matrix(a0, b);
  HqrConfig cfg{3, 2, TreeKind::Greedy, TreeKind::Fibonacci, true};
  auto list = hqr_elimination_list(probe.mt(), probe.nt(), cfg);
  QRFactors f = qr_factorize_sequential(a0, b, list, ib);
  EXPECT_EQ(f.ib(), ib);

  Matrix q = build_q(f);
  EXPECT_LT(orthogonality_error(q.view()), kTol);
  const int k = std::min(m, n);
  Matrix qs = materialize(q.block(0, 0, m, k));
  Matrix r = extract_r(f);
  EXPECT_LT(factorization_residual(a0.view(), qs.view(), r.view()), kTol);
}

TEST_P(IbFactorization, RMatchesPlainKernels) {
  auto [m, n, b, ib] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m) * 41 + n * 3 + b + ib);
  Matrix a0 = random_gaussian(m, n, rng);
  TiledMatrix probe = TiledMatrix::from_matrix(a0, b);
  auto list = flat_ts_list(probe.mt(), probe.nt());
  Matrix r_ib = extract_r(qr_factorize_sequential(a0, b, list, ib));
  Matrix r_pl = extract_r(qr_factorize_sequential(a0, b, list, 0));
  for (int j = 0; j < r_ib.cols(); ++j)
    for (int i = 0; i <= std::min(j, r_ib.rows() - 1); ++i)
      EXPECT_NEAR(std::abs(r_ib(i, j)), std::abs(r_pl(i, j)), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, IbFactorization,
    ::testing::Values(std::tuple{24, 12, 4, 2}, std::tuple{30, 18, 6, 3},
                      std::tuple{20, 20, 5, 2}, std::tuple{27, 9, 4, 3},
                      std::tuple{16, 16, 8, 4}, std::tuple{33, 11, 6, 4}));

TEST(IbFactorizationRuntime, ParallelMatchesSequentialBitwise) {
  Rng rng(71);
  Matrix a0 = random_gaussian(32, 16, rng);
  auto list = greedy_global_list(8, 4).list;
  QRFactors seq = qr_factorize_sequential(a0, 4, list, 2);
  ExecutorOptions opts{4, true, true, /*ib=*/2};
  QRFactors par = qr_factorize_parallel(a0, 4, list, opts);
  Matrix rs = extract_r(seq);
  Matrix rp = extract_r(par);
  EXPECT_EQ(max_abs_diff(rs.view(), rp.view()), 0.0);
}

TEST(IbFactorizationRuntime, ParallelQBuildWithIb) {
  Rng rng(72);
  Matrix a0 = random_gaussian(24, 16, rng);
  TiledMatrix probe = TiledMatrix::from_matrix(a0, 4);
  HqrConfig cfg{2, 2, TreeKind::Binary, TreeKind::Flat, true};
  auto list = hqr_elimination_list(probe.mt(), probe.nt(), cfg);
  ExecutorOptions opts{4, true, true, /*ib=*/2};
  QRFactors f = qr_factorize_parallel(a0, 4, list, opts);
  Matrix q = build_q_parallel(f, opts);
  EXPECT_LT(orthogonality_error(q.view()), kTol);
  Matrix qs = materialize(q.block(0, 0, 24, 16));
  Matrix r = extract_r(f);
  EXPECT_LT(factorization_residual(a0.view(), qs.view(), r.view()), kTol);
}

TEST(IbFactorizationRuntime, LeastSquaresWithIb) {
  Rng rng(73);
  const int m = 30, n = 8;
  Matrix a = random_gaussian(m, n, rng);
  Matrix x_true = random_gaussian(n, 1, rng);
  Matrix b(m, 1);
  gemm(Trans::No, Trans::No, 1.0, a.view(), x_true.view(), 0.0, b.view());
  TiledMatrix probe = TiledMatrix::from_matrix(a, 5);
  auto list = flat_ts_list(probe.mt(), probe.nt());
  QRFactors f = qr_factorize_sequential(a, 5, list, 2);
  TiledMatrix c = TiledMatrix::from_matrix(b, 5);
  apply_q(f, Trans::Yes, c);
  Matrix qtb = c.to_matrix();
  Matrix x = materialize(qtb.block(0, 0, n, 1));
  Matrix r = extract_r(f);
  trsm_left(UpLo::Upper, Trans::No, Diag::NonUnit,
            ConstMatrixView(r.block(0, 0, n, n)), x.view());
  EXPECT_LT(max_abs_diff(x.view(), x_true.view()), 1e-9);
}

TEST(IbFactorizationRuntime, InvalidIbThrows) {
  Rng rng(74);
  Matrix a0 = random_gaussian(8, 8, rng);
  EXPECT_THROW(qr_factorize_sequential(a0, 4, flat_ts_list(2, 2), 5), Error);
  EXPECT_THROW(qr_factorize_sequential(a0, 4, flat_ts_list(2, 2), -1), Error);
}

TEST(IbFactorizationRuntime, IbEqualToTileSizeUsesStackedLayout) {
  // ib == b is allowed: a single panel per tile; still exact.
  Rng rng(75);
  Matrix a0 = random_gaussian(16, 8, rng);
  QRFactors f = qr_factorize_sequential(a0, 4, flat_ts_list(4, 2), 4);
  Matrix q = build_q(f);
  EXPECT_LT(orthogonality_error(q.view()), kTol);
}

}  // namespace
}  // namespace hqr
