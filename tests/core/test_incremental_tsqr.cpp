#include "core/incremental_tsqr.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "linalg/norms.hpp"
#include "linalg/random_matrix.hpp"
#include "linalg/ref_qr.hpp"

namespace hqr {
namespace {

// |R| must match the reference R of the stacked matrix (R is unique up to
// column signs for full-rank inputs).
void expect_r_matches(const Matrix& stacked, const Matrix& r, double tol) {
  RefQR ref = ref_qr_blocked(stacked, 8);
  Matrix rref = ref_extract_r(ref);
  ASSERT_EQ(r.rows(), rref.rows());
  ASSERT_EQ(r.cols(), rref.cols());
  for (int j = 0; j < r.cols(); ++j)
    for (int i = 0; i <= std::min(j, r.rows() - 1); ++i)
      EXPECT_NEAR(std::abs(r(i, j)), std::abs(rref(i, j)), tol)
          << "(" << i << "," << j << ")";
}

TEST(IncrementalTsqr, SingleBlockMatchesReference) {
  Rng rng(1);
  Matrix a = random_gaussian(40, 12, rng);
  IncrementalTSQR tsqr(12, 4);
  tsqr.add_rows(a);
  expect_r_matches(a, tsqr.r(), 1e-11);
}

TEST(IncrementalTsqr, ManyBlocksMatchStackedReference) {
  Rng rng(2);
  const int n = 10, b = 4;
  IncrementalTSQR tsqr(n, b);
  Matrix stacked(0, n);
  std::vector<Matrix> blocks;
  int total = 0;
  for (int rep = 0; rep < 6; ++rep) {
    const int rows = 3 + static_cast<int>(rng.below(20));
    blocks.push_back(random_gaussian(rows, n, rng));
    tsqr.add_rows(blocks.back());
    total += rows;
  }
  EXPECT_EQ(tsqr.rows_seen(), total);
  Matrix all(total, n);
  int at = 0;
  for (const auto& blk : blocks) {
    copy(blk.view(), all.block(at, 0, blk.rows(), n));
    at += blk.rows();
  }
  expect_r_matches(all, tsqr.r(), 1e-10);
}

TEST(IncrementalTsqr, FrobeniusNormPreserved) {
  // Orthogonal reductions preserve ||.||_F: ||R|| == ||A||.
  Rng rng(3);
  const int n = 8;
  IncrementalTSQR tsqr(n, 4);
  double ssq = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    Matrix blk = random_gaussian(15, n, rng);
    const double f = frobenius_norm(blk.view());
    ssq += f * f;
    tsqr.add_rows(blk);
  }
  Matrix r = tsqr.r();
  EXPECT_NEAR(frobenius_norm(r.view()), std::sqrt(ssq), 1e-9);
}

TEST(IncrementalTsqr, FewerRowsThanColumnsGivesTrapezoid) {
  Rng rng(4);
  Matrix a = random_gaussian(3, 8, rng);
  IncrementalTSQR tsqr(8, 4);
  tsqr.add_rows(a);
  Matrix r = tsqr.r();
  EXPECT_EQ(r.rows(), 3);
  EXPECT_EQ(r.cols(), 8);
  expect_r_matches(a, r, 1e-11);
}

TEST(IncrementalTsqr, BlockSmallerThanTile) {
  Rng rng(5);
  IncrementalTSQR tsqr(6, 8);  // b > n: single ragged tile column
  Matrix a1 = random_gaussian(2, 6, rng);
  Matrix a2 = random_gaussian(9, 6, rng);
  tsqr.add_rows(a1);
  tsqr.add_rows(a2);
  Matrix all(11, 6);
  copy(a1.view(), all.block(0, 0, 2, 6));
  copy(a2.view(), all.block(2, 0, 9, 6));
  expect_r_matches(all, tsqr.r(), 1e-11);
}

TEST(IncrementalTsqr, OrderOfBlocksDoesNotChangeRMagnitudes) {
  Rng rng(6);
  const int n = 6;
  Matrix b1 = random_gaussian(12, n, rng);
  Matrix b2 = random_gaussian(7, n, rng);
  IncrementalTSQR t12(n, 3), t21(n, 3);
  t12.add_rows(b1);
  t12.add_rows(b2);
  t21.add_rows(b2);
  t21.add_rows(b1);
  Matrix r12 = t12.r();
  Matrix r21 = t21.r();
  for (int j = 0; j < n; ++j)
    for (int i = 0; i <= j; ++i)
      EXPECT_NEAR(std::abs(r12(i, j)), std::abs(r21(i, j)), 1e-10);
}

TEST(IncrementalTsqr, RejectsWrongColumnCount) {
  IncrementalTSQR tsqr(5, 4);
  Matrix bad(3, 4);
  EXPECT_THROW(tsqr.add_rows(bad), Error);
}

TEST(IncrementalTsqr, RejectsEmptyBlock) {
  IncrementalTSQR tsqr(5, 4);
  Matrix empty(0, 5);
  EXPECT_THROW(tsqr.add_rows(empty), Error);
}

TEST(IncrementalTsqr, BadConstructionThrows) {
  EXPECT_THROW(IncrementalTSQR(0, 4), Error);
  EXPECT_THROW(IncrementalTSQR(4, 0), Error);
}

TEST(IncrementalTsqr, InterleavedAppendAndQueryIsNonDestructive) {
  // r() mid-stream must be a pure read: it matches the reference of the
  // rows seen so far, repeated calls are bit-identical, and appending
  // after a query behaves exactly as if the query never happened.
  Rng rng(8);
  const int n = 9, b = 4;
  IncrementalTSQR queried(n, b), untouched(n, b);
  Matrix stacked(0, n);
  for (int rep = 0; rep < 7; ++rep) {
    const int rows = 1 + static_cast<int>(rng.below(11));
    Matrix blk = random_gaussian(rows, n, rng);
    Matrix grown(stacked.rows() + rows, n);
    if (stacked.rows() > 0)
      copy(stacked.view(), grown.block(0, 0, stacked.rows(), n));
    copy(blk.view(), grown.block(stacked.rows(), 0, rows, n));
    stacked = std::move(grown);

    queried.add_rows(blk);
    untouched.add_rows(blk);

    Matrix r1 = queried.r();
    Matrix r2 = queried.r();
    EXPECT_EQ(max_abs_diff(r1.view(), r2.view()), 0.0) << "rep " << rep;
    expect_r_matches(stacked, r1, 1e-10);
  }
  // Querying every step vs never querying: same final state, bit for bit.
  EXPECT_EQ(max_abs_diff(queried.r().view(), untouched.r().view()), 0.0);
}

TEST(IncrementalTsqr, AgreesWithOneShotAcrossBlockSizes) {
  // The streaming reduction and the one-shot factorization of the full
  // stacked matrix must produce the same R magnitudes for every tile size
  // (different b means a different kernel sequence, so only |R| is pinned).
  Rng rng(9);
  const int n = 12;
  std::vector<Matrix> blocks;
  int total = 0;
  for (int rep = 0; rep < 5; ++rep) {
    blocks.push_back(random_gaussian(5 + 3 * rep, n, rng));
    total += blocks.back().rows();
  }
  Matrix all(total, n);
  int at = 0;
  for (const auto& blk : blocks) {
    copy(blk.view(), all.block(at, 0, blk.rows(), n));
    at += blk.rows();
  }
  for (int b : {2, 3, 4, 6, 12, 16}) {
    IncrementalTSQR tsqr(n, b);
    for (const auto& blk : blocks) tsqr.add_rows(blk);
    expect_r_matches(all, tsqr.r(), 1e-10);
  }
}

TEST(IncrementalTsqr, ManySmallSingleRowBlocks) {
  Rng rng(7);
  const int n = 5;
  IncrementalTSQR tsqr(n, 2);
  Matrix all(30, n);
  for (int i = 0; i < 30; ++i) {
    Matrix row = random_gaussian(1, n, rng);
    copy(row.view(), all.block(i, 0, 1, n));
    tsqr.add_rows(row);
  }
  expect_r_matches(all, tsqr.r(), 1e-10);
}

}  // namespace
}  // namespace hqr
