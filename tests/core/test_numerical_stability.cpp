// Backward-stability battery: Householder-based tile QR is unconditionally
// backward stable, so every tree, tile size and kernel variant must keep
// the orthogonality and residual at O(eps) even on ill-conditioned,
// graded and adversarial inputs — not just on friendly Gaussian matrices.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "common/rng.hpp"
#include "core/factorization.hpp"
#include "linalg/norms.hpp"
#include "linalg/random_matrix.hpp"
#include "linalg/ref_qr.hpp"
#include "trees/hqr_tree.hpp"
#include "trees/single_level.hpp"

namespace hqr {
namespace {

EliminationList list_for(const std::string& algo, int mt, int nt) {
  if (algo == "flat_ts") return flat_ts_list(mt, nt);
  if (algo == "greedy") return greedy_global_list(mt, nt).list;
  HqrConfig cfg{3, 2, TreeKind::Greedy, TreeKind::Fibonacci, true};
  return hqr_elimination_list(mt, nt, cfg);
}

void expect_stable(const Matrix& a0, const QRFactors& f, double tol) {
  Matrix q = build_q(f);
  EXPECT_LT(orthogonality_error(q.view()), tol);
  const int k = std::min(f.m(), f.n());
  Matrix qs = materialize(q.block(0, 0, a0.rows(), k));
  Matrix r = extract_r(f);
  EXPECT_LT(factorization_residual(a0.view(), qs.view(), r.view()), tol);
}

// (algo, ib)
class Stability
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(Stability, GradedMatrixTenDecades) {
  auto [algo, ib] = GetParam();
  Rng rng(31);
  Matrix a0 = random_graded(36, 12, 10.0, rng);
  TiledMatrix probe = TiledMatrix::from_matrix(a0, 4);
  QRFactors f = qr_factorize_sequential(
      a0, 4, list_for(algo, probe.mt(), probe.nt()), ib);
  expect_stable(a0, f, 1e-12);
}

TEST_P(Stability, NearRankDeficient) {
  auto [algo, ib] = GetParam();
  Rng rng(32);
  Matrix a0 = random_near_rank_deficient(36, 12, 4, 1e-13, rng);
  TiledMatrix probe = TiledMatrix::from_matrix(a0, 4);
  QRFactors f = qr_factorize_sequential(
      a0, 4, list_for(algo, probe.mt(), probe.nt()), ib);
  expect_stable(a0, f, 1e-12);
}

TEST_P(Stability, HugeAndTinyScales) {
  // Entries spanning 10^+150 ... the scaled norms must not overflow.
  auto [algo, ib] = GetParam();
  Rng rng(33);
  Matrix a0 = random_gaussian(24, 8, rng);
  for (int j = 0; j < 8; ++j)
    for (int i = 0; i < 24; ++i) a0(i, j) *= (j % 2 ? 1e150 : 1e-150);
  TiledMatrix probe = TiledMatrix::from_matrix(a0, 4);
  QRFactors f = qr_factorize_sequential(
      a0, 4, list_for(algo, probe.mt(), probe.nt()), ib);
  Matrix r = extract_r(f);
  for (int j = 0; j < r.cols(); ++j)
    for (int i = 0; i < r.rows(); ++i) EXPECT_TRUE(std::isfinite(r(i, j)));
  expect_stable(a0, f, 1e-12);
}

TEST_P(Stability, FrobeniusNormPreservedInR) {
  auto [algo, ib] = GetParam();
  Rng rng(34);
  Matrix a0 = random_gaussian(32, 12, rng);
  TiledMatrix probe = TiledMatrix::from_matrix(a0, 4);
  QRFactors f = qr_factorize_sequential(
      a0, 4, list_for(algo, probe.mt(), probe.nt()), ib);
  Matrix r = extract_r(f);
  EXPECT_NEAR(frobenius_norm(r.view()) / frobenius_norm(a0.view()), 1.0,
              1e-13);
}

TEST_P(Stability, OrthonormalInputGivesUnitDiagonalR) {
  auto [algo, ib] = GetParam();
  Rng rng(35);
  Matrix g = random_gaussian(32, 12, rng);
  RefQR ref = ref_qr_blocked(g, 4);
  Matrix a0 = ref_form_q(ref);  // 32 x 12 orthonormal columns
  TiledMatrix probe = TiledMatrix::from_matrix(a0, 4);
  QRFactors f = qr_factorize_sequential(
      a0, 4, list_for(algo, probe.mt(), probe.nt()), ib);
  Matrix r = extract_r(f);
  for (int i = 0; i < 12; ++i) EXPECT_NEAR(std::abs(r(i, i)), 1.0, 1e-13);
  for (int j = 0; j < 12; ++j)
    for (int i = 0; i < j; ++i) EXPECT_NEAR(r(i, j), 0.0, 1e-13);
}

TEST_P(Stability, NoElementGrowthBeyondColumnNorms) {
  // |r_ij| <= ||a_j||_2: each column of R is an orthogonal image of the
  // corresponding column of A.
  auto [algo, ib] = GetParam();
  Rng rng(36);
  Matrix a0 = random_gaussian(40, 10, rng);
  TiledMatrix probe = TiledMatrix::from_matrix(a0, 5);
  QRFactors f = qr_factorize_sequential(
      a0, 5, list_for(algo, probe.mt(), probe.nt()), ib);
  Matrix r = extract_r(f);
  for (int j = 0; j < 10; ++j) {
    const double colnorm = nrm2(a0.block(0, j, 40, 1));
    for (int i = 0; i <= j; ++i)
      EXPECT_LE(std::abs(r(i, j)), colnorm * (1.0 + 1e-12));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsAndIb, Stability,
    ::testing::Combine(::testing::Values("flat_ts", "greedy", "hqr"),
                       ::testing::Values(0, 2)));

TEST(StabilityMisc, IdentityInputIsFixedPoint) {
  Matrix a0 = Matrix::identity(16);
  QRFactors f = qr_factorize_sequential(a0, 4, flat_ts_list(4, 4));
  Matrix r = extract_r(f);
  for (int j = 0; j < 16; ++j)
    for (int i = 0; i <= j; ++i)
      EXPECT_NEAR(std::abs(r(i, j)), i == j ? 1.0 : 0.0, 1e-14);
}

TEST(StabilityMisc, DuplicatedColumnsGiveZeroDiagonal) {
  Rng rng(37);
  Matrix a0(24, 8);
  Matrix col = random_gaussian(24, 1, rng);
  for (int j = 0; j < 8; ++j)
    for (int i = 0; i < 24; ++i) a0(i, j) = col(i, 0);
  QRFactors f = qr_factorize_sequential(a0, 4, flat_ts_list(6, 2));
  Matrix r = extract_r(f);
  // Rank 1: only the first row of R is nonzero.
  for (int j = 0; j < 8; ++j)
    for (int i = 1; i <= std::min(j, 7); ++i)
      EXPECT_NEAR(r(i, j), 0.0, 1e-12 * frobenius_norm(a0.view()));
}

}  // namespace
}  // namespace hqr
