// Property-based fuzzing of the elimination-list abstraction (paper §II):
// ANY valid elimination list — including randomly generated ones no human
// would design — must produce an exact QR factorization, and the validity
// checker must accept exactly the lists the random generator constructs.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "core/factorization.hpp"
#include "linalg/norms.hpp"
#include "linalg/random_matrix.hpp"
#include "trees/validate.hpp"

namespace hqr {
namespace {

// Generates a random valid elimination list: panels in order; within each
// panel, repeatedly pick a random alive non-diagonal row as victim and a
// random alive row above... any alive row with smaller index as killer
// would bias to triangles; the killer may be ANY alive row of the panel
// except the victim, as long as it is not yet zeroed. Kernel type: TS if
// the victim is pristine in this panel and a coin flip says so.
EliminationList random_valid_list(int mt, int nt, Rng& rng) {
  EliminationList out;
  const int kmax = std::min(mt, nt);
  for (int k = 0; k < kmax; ++k) {
    std::vector<int> alive;
    for (int i = k; i < mt; ++i) alive.push_back(i);
    std::vector<char> touched(static_cast<std::size_t>(mt), 0);
    // The diagonal row k must survive: eliminate until only it remains.
    while (alive.size() > 1) {
      // Pick a victim among alive rows other than the diagonal.
      const std::size_t vi =
          1 + static_cast<std::size_t>(rng.below(alive.size() - 1));
      const int victim = alive[vi];
      // Pick any other alive row as the killer. Killers above the victim
      // keep the reduction tree shape conventional; allow any index to
      // stress the checker's generality — but the paper's model requires
      // killer != victim and both alive, nothing more.
      std::size_t ki;
      do {
        ki = static_cast<std::size_t>(rng.below(alive.size()));
      } while (ki == vi);
      const int killer = alive[ki];
      const bool ts = !touched[victim] && rng.below(2) == 0;
      out.push_back({victim, killer, k, ts});
      touched[victim] = 1;
      touched[killer] = 1;
      alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(vi));
    }
  }
  return out;
}

class RandomTrees : public ::testing::TestWithParam<int> {};

TEST_P(RandomTrees, RandomValidListsPassTheChecker) {
  Rng rng(1000 + GetParam());
  for (int rep = 0; rep < 20; ++rep) {
    const int mt = 2 + static_cast<int>(rng.below(12));
    const int nt = 1 + static_cast<int>(rng.below(12));
    auto list = random_valid_list(mt, nt, rng);
    auto r = validate_elimination_list(list, mt, nt);
    ASSERT_TRUE(r.ok) << "mt=" << mt << " nt=" << nt << ": " << r.message;
  }
}

TEST_P(RandomTrees, RandomValidListsFactorExactly) {
  Rng rng(2000 + GetParam());
  const int mt = 3 + static_cast<int>(rng.below(6));
  const int nt = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(mt)));
  const int b = 3;
  auto list = random_valid_list(mt, nt, rng);
  check_valid(list, mt, nt);

  Matrix a0 = random_gaussian(mt * b, nt * b, rng);
  QRFactors f = qr_factorize_sequential(a0, b, list);
  Matrix q = build_q(f);
  EXPECT_LT(orthogonality_error(q.view()), 1e-11);
  const int kcols = std::min(f.m(), f.n());
  Matrix qs = materialize(q.block(0, 0, a0.rows(), kcols));
  Matrix r = extract_r(f);
  EXPECT_LT(factorization_residual(a0.view(), qs.view(), r.view()), 1e-11)
      << "mt=" << mt << " nt=" << nt;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTrees, ::testing::Range(0, 25));

TEST(RandomTrees, MutatedListsAreRejected) {
  // Fuzz the checker the other way: random single-field mutations of a
  // valid list are (almost always) detected; when they happen to still be
  // valid, the factorization must still be exact.
  Rng rng(77);
  const int mt = 8, nt = 4, b = 3;
  auto base = random_valid_list(mt, nt, rng);
  Matrix a0 = random_gaussian(mt * b, nt * b, rng);
  int rejected = 0, accepted = 0;
  for (int rep = 0; rep < 200; ++rep) {
    EliminationList list = base;
    auto& e = list[rng.below(list.size())];
    switch (rng.below(3)) {
      case 0:
        e.row = static_cast<int>(rng.below(static_cast<std::uint64_t>(mt)));
        break;
      case 1:
        e.piv = static_cast<int>(rng.below(static_cast<std::uint64_t>(mt)));
        break;
      default:
        e.k = static_cast<int>(rng.below(static_cast<std::uint64_t>(nt)));
        break;
    }
    if (validate_elimination_list(list, mt, nt)) {
      ++accepted;
      QRFactors f = qr_factorize_sequential(a0, b, list);
      Matrix q = build_q(f);
      Matrix qs = materialize(q.block(0, 0, a0.rows(), f.n()));
      Matrix r = extract_r(f);
      ASSERT_LT(factorization_residual(a0.view(), qs.view(), r.view()), 1e-11);
    } else {
      ++rejected;
    }
  }
  EXPECT_EQ(rejected + accepted, 200);
  EXPECT_GT(rejected, 150);  // most random mutations break validity
}

}  // namespace
}  // namespace hqr
