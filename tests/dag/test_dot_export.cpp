#include "dag/dot_export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "dag/partition.hpp"
#include "trees/single_level.hpp"

namespace hqr {
namespace {

TaskGraph small_graph() {
  auto kernels = expand_to_kernels(flat_ts_list(3, 2), 3, 2);
  return TaskGraph(kernels, 3, 2);
}

TEST(DotExport, EmitsValidDigraphSkeleton) {
  std::ostringstream os;
  write_dot(os, small_graph());
  const std::string s = os.str();
  EXPECT_EQ(s.rfind("digraph tile_qr {", 0), 0u);
  EXPECT_NE(s.find("}\n"), std::string::npos);
  EXPECT_NE(s.find("GEQRT(0,0)"), std::string::npos);
  EXPECT_NE(s.find("TSQRT(1,0,0)"), std::string::npos);
  EXPECT_NE(s.find("->"), std::string::npos);
}

TEST(DotExport, NodeCountMatchesGraph) {
  TaskGraph g = small_graph();
  std::ostringstream os;
  write_dot(os, g);
  const std::string s = os.str();
  int nodes = 0;
  for (std::size_t p = s.find("[label="); p != std::string::npos;
       p = s.find("[label=", p + 1))
    ++nodes;
  EXPECT_EQ(nodes, g.size());
}

TEST(DotExport, EdgeCountMatchesGraph) {
  TaskGraph g = small_graph();
  std::ostringstream os;
  write_dot(os, g);
  const std::string s = os.str();
  long long arrows = 0;
  for (std::size_t p = s.find("->"); p != std::string::npos;
       p = s.find("->", p + 2))
    ++arrows;
  EXPECT_EQ(arrows, g.num_edges());
}

TEST(DotExport, FactorOnlySkeletonContractsUpdates) {
  TaskGraph g = small_graph();
  DotOptions opts;
  opts.include_updates = false;
  std::ostringstream os;
  write_dot(os, g, opts);
  const std::string s = os.str();
  EXPECT_EQ(s.find("UNMQR"), std::string::npos);
  EXPECT_EQ(s.find("TSMQR"), std::string::npos);
  EXPECT_NE(s.find("GEQRT"), std::string::npos);
  // The contracted skeleton still chains the factor kernels.
  EXPECT_NE(s.find("->"), std::string::npos);
}

TEST(DotExport, PanelClustersPresent) {
  std::ostringstream os;
  write_dot(os, small_graph());
  const std::string s = os.str();
  EXPECT_NE(s.find("cluster_panel0"), std::string::npos);
  EXPECT_NE(s.find("cluster_panel1"), std::string::npos);
}

TEST(DotExport, NoClustersWhenDisabled) {
  DotOptions opts;
  opts.cluster_by_panel = false;
  std::ostringstream os;
  write_dot(os, small_graph(), opts);
  EXPECT_EQ(os.str().find("subgraph"), std::string::npos);
}

TEST(DotExport, RankAnnotationsOnCommunicationView) {
  // 3x3 tile graph over a 2-node cyclic distribution: every task label
  // carries its owning rank and every cross-rank edge is colored by the
  // destination rank.
  auto kernels = expand_to_kernels(flat_ts_list(3, 3), 3, 3);
  TaskGraph g(kernels, 3, 3);
  const Distribution dist = Distribution::cyclic_1d(2);
  DotOptions opts;
  opts.dist = &dist;
  std::ostringstream os;
  write_dot(os, g, opts);
  const std::string s = os.str();

  // Owner-computes: GEQRT(0,0) zeroes tile (0,0) -> rank 0; TSQRT(1,0,0)
  // zeroes tile (1,0) -> rank 1.
  EXPECT_NE(s.find("GEQRT(0,0)@0"), std::string::npos);
  EXPECT_NE(s.find("TSQRT(1,0,0)@1"), std::string::npos);
  // Cross-rank edges exist and use the palette (rank 0 = red, rank 1 =
  // blue); same-rank edges stay uncolored.
  EXPECT_NE(s.find("color=red"), std::string::npos);
  EXPECT_NE(s.find("color=blue"), std::string::npos);

  // Every colored edge really crosses ranks, with the destination's color.
  std::vector<int> rank(static_cast<std::size_t>(g.size()));
  for (int i = 0; i < g.size(); ++i) rank[i] = task_node(g.op(i), dist);
  for (std::size_t p = s.find(" [color="); p != std::string::npos;
       p = s.find(" [color=", p + 1)) {
    const std::size_t line = s.rfind('\n', p) + 1;
    int from = -1, to = -1;
    ASSERT_EQ(std::sscanf(s.c_str() + line, "  t%d -> t%d", &from, &to), 2);
    EXPECT_NE(rank[from], rank[to]);
    const std::string want = rank[to] == 0 ? "color=red" : "color=blue";
    EXPECT_EQ(s.compare(p + 2, want.size(), want), 0);
  }
}

TEST(DotExport, NoRankAnnotationsWithoutDistribution) {
  std::ostringstream os;
  write_dot(os, small_graph());
  const std::string s = os.str();
  EXPECT_EQ(s.find("@"), std::string::npos);
  EXPECT_EQ(s.find("color="), std::string::npos);
}

TEST(DotExport, SaveDotWritesFile) {
  const std::string path = ::testing::TempDir() + "/graph.dot";
  save_dot(path, small_graph());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first, "digraph tile_qr {");
}

}  // namespace
}  // namespace hqr
