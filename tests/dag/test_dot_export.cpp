#include "dag/dot_export.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "trees/single_level.hpp"

namespace hqr {
namespace {

TaskGraph small_graph() {
  auto kernels = expand_to_kernels(flat_ts_list(3, 2), 3, 2);
  return TaskGraph(kernels, 3, 2);
}

TEST(DotExport, EmitsValidDigraphSkeleton) {
  std::ostringstream os;
  write_dot(os, small_graph());
  const std::string s = os.str();
  EXPECT_EQ(s.rfind("digraph tile_qr {", 0), 0u);
  EXPECT_NE(s.find("}\n"), std::string::npos);
  EXPECT_NE(s.find("GEQRT(0,0)"), std::string::npos);
  EXPECT_NE(s.find("TSQRT(1,0,0)"), std::string::npos);
  EXPECT_NE(s.find("->"), std::string::npos);
}

TEST(DotExport, NodeCountMatchesGraph) {
  TaskGraph g = small_graph();
  std::ostringstream os;
  write_dot(os, g);
  const std::string s = os.str();
  int nodes = 0;
  for (std::size_t p = s.find("[label="); p != std::string::npos;
       p = s.find("[label=", p + 1))
    ++nodes;
  EXPECT_EQ(nodes, g.size());
}

TEST(DotExport, EdgeCountMatchesGraph) {
  TaskGraph g = small_graph();
  std::ostringstream os;
  write_dot(os, g);
  const std::string s = os.str();
  long long arrows = 0;
  for (std::size_t p = s.find("->"); p != std::string::npos;
       p = s.find("->", p + 2))
    ++arrows;
  EXPECT_EQ(arrows, g.num_edges());
}

TEST(DotExport, FactorOnlySkeletonContractsUpdates) {
  TaskGraph g = small_graph();
  DotOptions opts;
  opts.include_updates = false;
  std::ostringstream os;
  write_dot(os, g, opts);
  const std::string s = os.str();
  EXPECT_EQ(s.find("UNMQR"), std::string::npos);
  EXPECT_EQ(s.find("TSMQR"), std::string::npos);
  EXPECT_NE(s.find("GEQRT"), std::string::npos);
  // The contracted skeleton still chains the factor kernels.
  EXPECT_NE(s.find("->"), std::string::npos);
}

TEST(DotExport, PanelClustersPresent) {
  std::ostringstream os;
  write_dot(os, small_graph());
  const std::string s = os.str();
  EXPECT_NE(s.find("cluster_panel0"), std::string::npos);
  EXPECT_NE(s.find("cluster_panel1"), std::string::npos);
}

TEST(DotExport, NoClustersWhenDisabled) {
  DotOptions opts;
  opts.cluster_by_panel = false;
  std::ostringstream os;
  write_dot(os, small_graph(), opts);
  EXPECT_EQ(os.str().find("subgraph"), std::string::npos);
}

TEST(DotExport, SaveDotWritesFile) {
  const std::string path = ::testing::TempDir() + "/graph.dot";
  save_dot(path, small_graph());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first, "digraph tile_qr {");
}

}  // namespace
}  // namespace hqr
